#include "votes/ranking.h"

#include <gtest/gtest.h>

#include <unordered_map>

#include "util/random.h"

namespace l1hh {
namespace {

TEST(RankingTest, IdentityValid) {
  const Ranking r = Ranking::Identity(5);
  EXPECT_TRUE(r.IsValid());
  for (uint32_t i = 0; i < 5; ++i) EXPECT_EQ(r.At(i), i);
}

TEST(RankingTest, RandomIsValidPermutation) {
  Rng rng(1);
  for (int t = 0; t < 100; ++t) {
    const Ranking r = Ranking::Random(20, rng);
    EXPECT_TRUE(r.IsValid());
  }
}

TEST(RankingTest, RandomIsUniformish) {
  // Position of candidate 0 should be uniform over [0, n).
  Rng rng(2);
  const uint32_t n = 6;
  std::unordered_map<uint32_t, int> pos_counts;
  const int trials = 60000;
  for (int t = 0; t < trials; ++t) {
    const Ranking r = Ranking::Random(n, rng);
    pos_counts[r.Positions()[0]]++;
  }
  for (uint32_t p = 0; p < n; ++p) {
    EXPECT_NEAR(pos_counts[p], trials / n, 6 * std::sqrt(trials / n));
  }
}

TEST(RankingTest, InvalidDetected) {
  EXPECT_FALSE(Ranking({0, 0, 2}).IsValid());   // duplicate
  EXPECT_FALSE(Ranking({0, 5, 1}).IsValid());   // out of range
  EXPECT_TRUE(Ranking({2, 0, 1}).IsValid());
}

TEST(RankingTest, PositionsInverse) {
  const Ranking r({3, 1, 0, 2});
  const auto pos = r.Positions();
  EXPECT_EQ(pos[3], 0u);
  EXPECT_EQ(pos[1], 1u);
  EXPECT_EQ(pos[0], 2u);
  EXPECT_EQ(pos[2], 3u);
}

TEST(RankingTest, Prefers) {
  const Ranking r({3, 1, 0, 2});
  EXPECT_TRUE(r.Prefers(3, 0));
  EXPECT_TRUE(r.Prefers(1, 2));
  EXPECT_FALSE(r.Prefers(2, 1));
}

TEST(RankingTest, BordaPoints) {
  const Ranking r({3, 1, 0, 2});
  EXPECT_EQ(r.BordaPoints(0), 3u);  // top gets n-1
  EXPECT_EQ(r.BordaPoints(3), 0u);  // bottom gets 0
}

TEST(RankingTest, CompactEncodeRoundTrip) {
  Rng rng(3);
  for (uint32_t n : {2u, 5u, 17u, 100u}) {
    const Ranking r = Ranking::Random(n, rng);
    BitWriter w;
    r.CompactEncode(w);
    // Exactly n * ceil(log2 n) bits.
    EXPECT_EQ(w.size_bits(),
              static_cast<size_t>(n) * CeilLog2(std::max<uint64_t>(n, 2)));
    BitReader reader(w);
    const Ranking r2 = Ranking::CompactDecode(reader, n);
    EXPECT_EQ(r, r2);
  }
}

TEST(RankingTest, LehmerCodeRoundTrip) {
  Rng rng(4);
  for (int t = 0; t < 200; ++t) {
    const Ranking r = Ranking::Random(12, rng);
    const auto code = r.LehmerCode();
    const Ranking r2 = Ranking::FromLehmerCode(code);
    EXPECT_EQ(r, r2);
  }
}

TEST(RankingTest, LehmerCodeBounds) {
  // code[i] <= n-1-i (mixed radix): this is what makes the encoding
  // information-theoretically log2(n!) bits.
  Rng rng(5);
  const Ranking r = Ranking::Random(10, rng);
  const auto code = r.LehmerCode();
  for (uint32_t i = 0; i < 10; ++i) {
    EXPECT_LE(code[i], 9 - i);
  }
}

TEST(RankingTest, LehmerIdentityIsZero) {
  const auto code = Ranking::Identity(6).LehmerCode();
  for (const uint32_t c : code) EXPECT_EQ(c, 0u);
}

}  // namespace
}  // namespace l1hh
