#include "core/maximin.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/borda.h"
#include "stream/vote_generator.h"
#include "votes/election.h"

namespace l1hh {
namespace {

StreamingMaximin::Options MakeOptions(double eps, uint32_t n, uint64_t m,
                                      double phi = 0.0) {
  StreamingMaximin::Options opt;
  opt.epsilon = eps;
  opt.phi = phi;
  opt.delta = 0.1;
  opt.num_candidates = n;
  opt.stream_length = m;
  return opt;
}

// Theorem 6's contract: every candidate's maximin score within eps*m.
TEST(StreamingMaximinTest, AllScoresWithinEpsM) {
  const double eps = 0.1;
  const uint32_t n = 8;
  const uint64_t m = 20000;
  int failures = 0;
  const int trials = 8;
  for (int t = 0; t < trials; ++t) {
    const auto votes = MakeMallowsVotes(n, m, 0.9, 60 + t);
    StreamingMaximin sketch(MakeOptions(eps, n, m), 70 + t);
    Election exact(n);
    for (const auto& v : votes) {
      sketch.InsertVote(v);
      exact.AddVote(v);
    }
    const auto est = sketch.Scores();
    const auto truth = exact.MaximinScores();
    bool ok = true;
    for (uint32_t c = 0; c < n; ++c) {
      if (std::abs(est[c] - static_cast<double>(truth[c])) >
          eps * static_cast<double>(m)) {
        ok = false;
      }
    }
    if (!ok) ++failures;
  }
  EXPECT_LE(failures, 2);
}

TEST(StreamingMaximinTest, FindsPlantedWinner) {
  const uint32_t n = 6;
  const uint64_t m = 15000;
  const auto votes = MakePlantedWinnerVotes(n, m, /*winner=*/2, 0.4, 3);
  StreamingMaximin sketch(MakeOptions(0.08, n, m), 5);
  for (const auto& v : votes) sketch.InsertVote(v);
  EXPECT_EQ(sketch.MaxScore().item, 2u);
}

TEST(StreamingMaximinTest, ExactWhenSamplingEverything) {
  const uint32_t n = 5;
  const uint64_t m = 40;
  const auto votes = MakeUniformVotes(n, m, 7);
  StreamingMaximin sketch(MakeOptions(0.2, n, m), 9);
  Election exact(n);
  for (const auto& v : votes) {
    sketch.InsertVote(v);
    exact.AddVote(v);
  }
  EXPECT_EQ(sketch.samples_taken(), m);
  const auto est = sketch.Scores();
  const auto truth = exact.MaximinScores();
  for (uint32_t c = 0; c < n; ++c) {
    EXPECT_DOUBLE_EQ(est[c], static_cast<double>(truth[c]));
  }
}

// Definition 8: the (eps, phi)-List maximin contract.
TEST(StreamingMaximinTest, ListAboveThreshold) {
  const uint32_t n = 6;
  const uint64_t m = 12000;
  // Planted winner ranks first in ~60% of votes: maximin ~0.6m; the rest
  // hover around m/2 pairwise symmetric, maximin well below 0.5m.
  const auto votes = MakePlantedWinnerVotes(n, m, /*winner=*/1, 0.6, 31);
  StreamingMaximin sketch(MakeOptions(0.08, n, m, /*phi=*/0.55), 32);
  Election exact(n);
  for (const auto& v : votes) {
    sketch.InsertVote(v);
    exact.AddVote(v);
  }
  const auto listed = sketch.ListAbove();
  const auto truth = exact.MaximinScores();
  // Everything listed clears (phi - eps) m in truth.
  for (const auto& hh : listed) {
    EXPECT_GT(static_cast<double>(truth[hh.item]),
              (0.55 - 0.08) * static_cast<double>(m));
  }
  // Every candidate with true maximin >= phi m is listed.
  for (uint32_t c = 0; c < n; ++c) {
    if (static_cast<double>(truth[c]) >= 0.55 * static_cast<double>(m)) {
      bool found = false;
      for (const auto& hh : listed) {
        if (hh.item == c) found = true;
      }
      EXPECT_TRUE(found) << "candidate " << c;
    }
  }
}

TEST(StreamingMaximinTest, SampledPairwiseMatchesStoredVotes) {
  const uint32_t n = 4;
  StreamingMaximin sketch(MakeOptions(0.2, n, 10), 11);
  sketch.InsertVote(Ranking({0, 1, 2, 3}));
  sketch.InsertVote(Ranking({1, 0, 2, 3}));
  sketch.InsertVote(Ranking({0, 2, 1, 3}));
  EXPECT_EQ(sketch.SampledPairwise(0, 1), 2u);
  EXPECT_EQ(sketch.SampledPairwise(1, 0), 1u);
  EXPECT_EQ(sketch.SampledPairwise(0, 3), 3u);
  EXPECT_EQ(sketch.SampledPairwise(3, 0), 0u);
}

TEST(StreamingMaximinTest, SpaceChargedPerStoredVote) {
  const uint32_t n = 16;
  StreamingMaximin sketch(MakeOptions(0.2, n, 10000), 13);
  Rng rng(15);
  const size_t before = sketch.SpaceBits();
  // Force some sampled votes.
  for (int i = 0; i < 500; ++i) sketch.InsertVote(Ranking::Random(n, rng));
  const size_t after = sketch.SpaceBits();
  EXPECT_GT(after, before);
  // Each stored vote costs n * ceil(log2 n) = 64 bits here (plus a few
  // bits of sampler/counter drift).
  const double per_vote =
      static_cast<double>(after - before) /
      static_cast<double>(sketch.samples_taken());
  EXPECT_NEAR(per_vote, 64.0, 2.0);
}

TEST(StreamingMaximinTest, SerializeRoundTripAndResume) {
  const uint32_t n = 5;
  StreamingMaximin alice(MakeOptions(0.15, n, 600), 17);
  Rng rng(19);
  for (int i = 0; i < 300; ++i) alice.InsertVote(Ranking::Random(n, rng));
  BitWriter w;
  alice.Serialize(w);
  BitReader r(w);
  StreamingMaximin bob = StreamingMaximin::Deserialize(r, 21);
  EXPECT_EQ(bob.samples_taken(), alice.samples_taken());
  for (int i = 0; i < 300; ++i) bob.InsertVote(Ranking({4, 3, 2, 1, 0}));
  // Candidate 4 now beats everyone in half the votes.
  const auto scores = bob.Scores();
  EXPECT_GT(scores[4], scores[0]);
}

TEST(StreamingMaximinTest, MaximinSpaceLargerThanBorda) {
  // The paper's headline for voting: maximin costs ~n/eps^2 log n, Borda
  // costs ~n log.  Verify the gap on equal parameters.
  const uint32_t n = 16;
  const uint64_t m = 5000;
  const double eps = 0.1;
  StreamingMaximin mm(MakeOptions(eps, n, m), 23);
  Rng rng(25);
  std::vector<Ranking> votes;
  for (uint64_t i = 0; i < m; ++i) votes.push_back(Ranking::Random(n, rng));
  for (const auto& v : votes) mm.InsertVote(v);
  // Compare against Borda on the same stream.
  StreamingBorda::Options bopt;
  bopt.epsilon = eps;
  bopt.delta = 0.1;
  bopt.num_candidates = n;
  bopt.stream_length = m;
  StreamingBorda borda(bopt, 27);
  for (const auto& v : votes) borda.InsertVote(v);
  EXPECT_GT(mm.SpaceBits(), 4 * borda.SpaceBits());
}

}  // namespace
}  // namespace l1hh
