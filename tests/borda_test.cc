#include "core/borda.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "stream/vote_generator.h"
#include "votes/election.h"

namespace l1hh {
namespace {

StreamingBorda::Options MakeOptions(double eps, uint32_t n, uint64_t m,
                                    double phi = 0.0) {
  StreamingBorda::Options opt;
  opt.epsilon = eps;
  opt.phi = phi;
  opt.delta = 0.1;
  opt.num_candidates = n;
  opt.stream_length = m;
  return opt;
}

// Theorem 5's contract: every candidate's Borda score within eps*m*n.
TEST(StreamingBordaTest, AllScoresWithinEpsMN) {
  const double eps = 0.05;
  const uint32_t n = 12;
  const uint64_t m = 20000;
  int failures = 0;
  const int trials = 10;
  for (int t = 0; t < trials; ++t) {
    const auto votes = MakeMallowsVotes(n, m, 0.8, 50 + t);
    StreamingBorda sketch(MakeOptions(eps, n, m), 100 + t);
    Election exact(n);
    for (const auto& v : votes) {
      sketch.InsertVote(v);
      exact.AddVote(v);
    }
    const auto est = sketch.Scores();
    const auto truth = exact.BordaScores();
    bool ok = true;
    for (uint32_t c = 0; c < n; ++c) {
      if (std::abs(est[c] - static_cast<double>(truth[c])) >
          eps * static_cast<double>(m) * n) {
        ok = false;
      }
    }
    if (!ok) ++failures;
  }
  EXPECT_LE(failures, 2);
}

TEST(StreamingBordaTest, FindsPlantedWinner) {
  const uint32_t n = 10;
  const uint64_t m = 30000;
  const auto votes = MakePlantedWinnerVotes(n, m, /*winner=*/6, 0.3, 3);
  StreamingBorda sketch(MakeOptions(0.03, n, m), 5);
  for (const auto& v : votes) sketch.InsertVote(v);
  EXPECT_EQ(sketch.MaxScore().item, 6u);
}

TEST(StreamingBordaTest, ListAboveThreshold) {
  const uint32_t n = 6;
  const uint64_t m = 10000;
  // Mallows: candidate 0 scores highest, near (n-1)/n * mn ... descending.
  const auto votes = MakeMallowsVotes(n, m, 0.4, 7);
  StreamingBorda sketch(MakeOptions(0.05, n, m, /*phi=*/0.5), 9);
  Election exact(n);
  for (const auto& v : votes) {
    sketch.InsertVote(v);
    exact.AddVote(v);
  }
  const auto listed = sketch.ListAbove();
  const auto truth = exact.BordaScores();
  const double mn = static_cast<double>(m) * n;
  for (const auto& hh : listed) {
    // Nothing below (phi - eps) m n may appear.
    EXPECT_GT(static_cast<double>(truth[hh.item]), (0.5 - 0.05) * mn);
  }
  for (uint32_t c = 0; c < n; ++c) {
    if (static_cast<double>(truth[c]) >= 0.5 * mn) {
      bool found = false;
      for (const auto& hh : listed) {
        if (hh.item == c) found = true;
      }
      EXPECT_TRUE(found) << "candidate " << c;
    }
  }
}

TEST(StreamingBordaTest, ExactWhenSamplingRateIsOne) {
  const uint32_t n = 5;
  const uint64_t m = 50;  // far below the sample budget
  const auto votes = MakeUniformVotes(n, m, 11);
  StreamingBorda sketch(MakeOptions(0.1, n, m), 13);
  Election exact(n);
  for (const auto& v : votes) {
    sketch.InsertVote(v);
    exact.AddVote(v);
  }
  EXPECT_EQ(sketch.samples_taken(), m);
  const auto est = sketch.Scores();
  const auto truth = exact.BordaScores();
  for (uint32_t c = 0; c < n; ++c) {
    EXPECT_DOUBLE_EQ(est[c], static_cast<double>(truth[c]));
  }
}

TEST(StreamingBordaTest, SpaceLinearInCandidatesNotVotes) {
  const uint32_t n = 64;
  const uint64_t m = 1 << 18;
  StreamingBorda sketch(MakeOptions(0.05, n, m), 17);
  Rng rng(19);
  for (uint64_t i = 0; i < 2000; ++i) {
    sketch.InsertVote(Ranking::Random(n, rng));
  }
  // O(n log(n l)) bits: for n=64 this is a few kilobits.
  EXPECT_LT(sketch.SpaceBits(), 64u * 64u + 1024u);
}

TEST(StreamingBordaTest, SerializeRoundTripAndResume) {
  const uint32_t n = 6;
  const uint64_t m = 1000;
  StreamingBorda alice(MakeOptions(0.05, n, m), 21);
  Rng rng(23);
  for (int i = 0; i < 500; ++i) alice.InsertVote(Ranking::Random(n, rng));
  BitWriter w;
  alice.Serialize(w);
  BitReader r(w);
  StreamingBorda bob = StreamingBorda::Deserialize(r, 25);
  EXPECT_EQ(bob.samples_taken(), alice.samples_taken());
  for (int i = 0; i < 500; ++i) {
    bob.InsertVote(Ranking({3, 0, 1, 2, 4, 5}));
  }
  EXPECT_EQ(bob.MaxScore().item, 3u);
}

class BordaEpsSweep : public ::testing::TestWithParam<double> {};

TEST_P(BordaEpsSweep, WinnerIsEpsWinner) {
  const double eps = GetParam();
  const uint32_t n = 8;
  const uint64_t m = 20000;
  int failures = 0;
  const int trials = 8;
  for (int t = 0; t < trials; ++t) {
    const auto votes = MakeMallowsVotes(n, m, 0.9, 300 + t);
    StreamingBorda sketch(MakeOptions(eps, n, m), 400 + t);
    Election exact(n);
    for (const auto& v : votes) {
      sketch.InsertVote(v);
      exact.AddVote(v);
    }
    const auto truth = exact.BordaScores();
    const uint64_t best =
        *std::max_element(truth.begin(), truth.end());
    const uint32_t mine = static_cast<uint32_t>(sketch.MaxScore().item);
    // eps-winner: within eps*m*n of the true maximum.
    if (static_cast<double>(best) - static_cast<double>(truth[mine]) >
        eps * static_cast<double>(m) * n) {
      ++failures;
    }
  }
  EXPECT_LE(failures, 2);
}

INSTANTIATE_TEST_SUITE_P(Sweep, BordaEpsSweep,
                         ::testing::Values(0.02, 0.05, 0.1, 0.2));

}  // namespace
}  // namespace l1hh
