#include "core/epsilon_maximum.h"

#include <gtest/gtest.h>

#include <cmath>

#include "stream/stream_generator.h"
#include "summary/exact_counter.h"

namespace l1hh {
namespace {

EpsilonMaximum::Options MakeOptions(double eps, uint64_t m,
                                    uint64_t n = uint64_t{1} << 24) {
  EpsilonMaximum::Options opt;
  opt.epsilon = eps;
  opt.delta = 0.1;
  opt.universe_size = n;
  opt.stream_length = m;
  return opt;
}

TEST(EpsilonMaximumTest, FindsClearMaximum) {
  const uint64_t m = 40000;
  const PlantedSpec spec{{0.4, 0.2}, 1 << 24, m};
  const PlantedStream s = MakePlantedStream(spec, 1);
  EpsilonMaximum sketch(MakeOptions(0.05, m), 2);
  for (const uint64_t x : s.items) sketch.Insert(x);
  const HeavyHitter hh = sketch.Report();
  EXPECT_EQ(hh.item, s.planted_ids[0]);
  EXPECT_NEAR(hh.estimated_fraction, 0.4, 0.05);
}

// The Definition 4 guarantee: estimated max within eps*m of the true max.
TEST(EpsilonMaximumTest, MaxFrequencyWithinEpsM) {
  const double eps = 0.02;
  const uint64_t m = 60000;
  int failures = 0;
  const int trials = 15;
  for (int t = 0; t < trials; ++t) {
    const auto stream = MakeZipfStream(1 << 14, 1.2, m, 100 + t);
    EpsilonMaximum sketch(MakeOptions(eps, m), 200 + t);
    ExactCounter exact;
    for (const uint64_t x : stream) {
      sketch.Insert(x);
      exact.Insert(x);
    }
    const double est = sketch.EstimateMaxCount();
    const double truth = static_cast<double>(exact.Max().count);
    if (std::abs(est - truth) > eps * static_cast<double>(m)) ++failures;
  }
  EXPECT_LE(failures, 3);
}

TEST(EpsilonMaximumTest, ReturnedItemIsNearMaximal) {
  // The returned item's true frequency must be within eps*m of the max
  // (the epsilon-winner condition of [DB15]).
  const double eps = 0.03;
  const uint64_t m = 50000;
  int failures = 0;
  const int trials = 12;
  for (int t = 0; t < trials; ++t) {
    const auto stream = MakeZipfStream(1 << 12, 1.0, m, 400 + t);
    EpsilonMaximum sketch(MakeOptions(eps, m), 500 + t);
    ExactCounter exact;
    for (const uint64_t x : stream) {
      sketch.Insert(x);
      exact.Insert(x);
    }
    const HeavyHitter hh = sketch.Report();
    const double truth_max = static_cast<double>(exact.Max().count);
    const double mine = static_cast<double>(exact.Count(hh.item));
    if (truth_max - mine > eps * static_cast<double>(m)) ++failures;
  }
  EXPECT_LE(failures, 3);
}

TEST(EpsilonMaximumTest, TieStreamReturnsSomeTopItem) {
  const uint64_t m = 30000;
  EpsilonMaximum sketch(MakeOptions(0.05, m), 7);
  for (uint64_t i = 0; i < m; ++i) sketch.Insert(i % 2);
  const HeavyHitter hh = sketch.Report();
  EXPECT_LE(hh.item, 1u);
  EXPECT_NEAR(hh.estimated_fraction, 0.5, 0.05);
}

TEST(EpsilonMaximumTest, SmallUniverseUsesExactTable) {
  // n < 1/eps: the table never decrements, counts are exact samples.
  const uint64_t m = 20000;
  EpsilonMaximum sketch(MakeOptions(0.01, m, /*n=*/16), 9);
  for (uint64_t i = 0; i < m; ++i) sketch.Insert(i % 16 == 0 ? 3 : i % 16);
  const HeavyHitter hh = sketch.Report();
  EXPECT_EQ(hh.item, 3u);  // doubled frequency
}

TEST(EpsilonMaximumTest, EmptyStreamReportsZero) {
  EpsilonMaximum sketch(MakeOptions(0.1, 1000), 11);
  const HeavyHitter hh = sketch.Report();
  EXPECT_DOUBLE_EQ(hh.estimated_count, 0.0);
}

TEST(EpsilonMaximumTest, SerializeRoundTripAndResume) {
  const uint64_t m = 20000;
  EpsilonMaximum alice(MakeOptions(0.05, m), 13);
  for (uint64_t i = 0; i < m / 2; ++i) alice.Insert(i % 5);
  BitWriter w;
  alice.Serialize(w);
  BitReader r(w);
  EpsilonMaximum bob = EpsilonMaximum::Deserialize(r, 15);
  for (uint64_t i = 0; i < m / 2; ++i) bob.Insert(99);  // new clear max
  EXPECT_EQ(bob.Report().item, 99u);
}

TEST(EpsilonMaximumTest, SpaceSmallerThanListVariant) {
  // Theorem 3 drops the phi^-1 log n term; the max-tracker holds one id.
  const uint64_t m = 1 << 18;
  EpsilonMaximum sketch(MakeOptions(0.01, m), 17);
  Rng rng(19);
  for (uint64_t i = 0; i < m; ++i) sketch.Insert(rng.UniformU64(1 << 20));
  // Sanity bound: well under MG-with-ids territory.
  EXPECT_LT(sketch.SpaceBits(), 60000u);
}

}  // namespace
}  // namespace l1hh
