// Columnar differential battery: UpdateColumn must be STATE-IDENTICAL to
// the item-at-a-time Update loop for every registered algorithm — not
// approximately equal, bit-for-bit equal, PRNG draws included.  The
// comparison is each structure's own SaveTo bit stream, so any divergence
// (a reordered sketch increment, a candidate pruned against a future
// table state, a PRNG consumed out of order) fails loudly.
//
// The battery fuzzes the slicing, not just the data: the same seeded
// stream is replayed through slice sizes 0/1/odd/4096, a mixed schedule,
// and columns aliasing one key, because slicing is exactly what an
// UpdateColumn override could get wrong while looking correct on
// whole-stream feeds.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/sharded_engine.h"
#include "stream/stream_generator.h"
#include "summary/summary.h"
#include "util/bit_stream.h"

namespace l1hh {
namespace {

struct SnapshotBits {
  std::vector<uint64_t> words;
  size_t bits = 0;

  bool operator==(const SnapshotBits& other) const = default;
};

SnapshotBits Capture(const Summary& summary) {
  BitWriter out;
  const Status s = summary.SaveTo(out);
  EXPECT_TRUE(s.ok()) << summary.Name() << ": " << s.ToString();
  return {out.words(), out.size_bits()};
}

SummaryOptions TestOptions(uint64_t stream_length) {
  SummaryOptions o;
  o.epsilon = 0.02;
  o.phi = 0.05;
  o.delta = 0.05;
  o.universe_size = uint64_t{1} << 16;
  o.stream_length = stream_length;
  o.seed = 7;
  o.window_size = 8192;
  o.window_buckets = 4;
  return o;
}

std::vector<std::string> AllAlgorithms() {
  std::vector<std::string> names = RegisteredSummaryNames();
  // The windowed container chunks columns at bucket boundaries; cover a
  // deterministic and a PRNG-bearing inner structure.
  names.push_back("windowed:misra_gries");
  names.push_back("windowed:count_min");
  return names;
}

// Feeds `stream` through UpdateColumn in slices drawn round-robin from
// `slice_sizes` and asserts the result is indistinguishable from the
// scalar Update loop.
void ExpectColumnarEqualsScalar(const std::string& name,
                                const std::vector<uint64_t>& stream,
                                const std::vector<size_t>& slice_sizes,
                                const char* schedule_label) {
  SCOPED_TRACE(name + " / " + schedule_label);
  const SummaryOptions options = TestOptions(stream.size());
  auto scalar = MakeSummary(name, options);
  auto columnar = MakeSummary(name, options);
  ASSERT_NE(scalar, nullptr);
  ASSERT_NE(columnar, nullptr);

  for (const uint64_t item : stream) scalar->Update(item, 1);

  size_t offset = 0;
  size_t next_size = 0;
  while (offset < stream.size()) {
    size_t take = slice_sizes[next_size % slice_sizes.size()];
    ++next_size;
    take = std::min(take, stream.size() - offset);
    columnar->UpdateColumn(stream.data() + offset, take);
    offset += take;
    // A schedule of all-zero slices must still terminate.
    if (take == 0 && slice_sizes.size() == 1) {
      columnar->UpdateColumn(stream.data() + offset, stream.size() - offset);
      offset = stream.size();
    }
  }

  EXPECT_EQ(scalar->ItemsProcessed(), columnar->ItemsProcessed());
  ASSERT_TRUE(scalar->SupportsSnapshot()) << name;
  EXPECT_EQ(Capture(*scalar), Capture(*columnar))
      << name << ": UpdateColumn diverged from the scalar Update loop";
  // Redundant with the bit compare, but pins the user-visible surface
  // too (and covers any state a structure might not serialize).
  EXPECT_EQ(scalar->HeavyHitters(options.phi).size(),
            columnar->HeavyHitters(options.phi).size());
  for (uint64_t probe = 0; probe < 64; ++probe) {
    EXPECT_EQ(scalar->Estimate(probe), columnar->Estimate(probe)) << probe;
  }
}

TEST(ColumnarDifferentialTest, WholeStreamSlice) {
  const auto stream =
      MakeZipfStream(uint64_t{1} << 16, 1.2, 20000, /*seed=*/11);
  for (const auto& name : AllAlgorithms()) {
    ExpectColumnarEqualsScalar(name, stream, {stream.size()}, "whole");
  }
}

TEST(ColumnarDifferentialTest, SingleItemSlices) {
  const auto stream =
      MakeZipfStream(uint64_t{1} << 16, 1.2, 4000, /*seed=*/13);
  for (const auto& name : AllAlgorithms()) {
    ExpectColumnarEqualsScalar(name, stream, {1}, "ones");
  }
}

TEST(ColumnarDifferentialTest, OddSlices) {
  const auto stream =
      MakeZipfStream(uint64_t{1} << 16, 1.1, 20000, /*seed=*/17);
  for (const auto& name : AllAlgorithms()) {
    ExpectColumnarEqualsScalar(name, stream, {7}, "sevens");
    ExpectColumnarEqualsScalar(name, stream, {13, 255, 3}, "mixed-odd");
  }
}

TEST(ColumnarDifferentialTest, LargeAndEmptySlices) {
  const auto stream =
      MakeZipfStream(uint64_t{1} << 16, 1.3, 24000, /*seed=*/19);
  for (const auto& name : AllAlgorithms()) {
    ExpectColumnarEqualsScalar(name, stream, {4096}, "4096");
    // Zero-length slices sprinkled through the schedule must be no-ops.
    ExpectColumnarEqualsScalar(name, stream, {0, 1, 0, 7, 4096},
                               "with-zeros");
  }
}

TEST(ColumnarDifferentialTest, SlicesAliasingOneKey) {
  // Columns where one key repeats back to back: the regime where a
  // columnar hash pre-pass touches the same cells many times per tile
  // and where Misra-Gries-style decrements cascade.
  std::vector<uint64_t> stream;
  for (int rep = 0; rep < 300; ++rep) {
    for (int i = 0; i < 20; ++i) stream.push_back(42);
    for (int i = 0; i < 10; ++i) {
      stream.push_back(static_cast<uint64_t>(rep * 31 + i) % 997);
    }
    for (int i = 0; i < 5; ++i) stream.push_back(42);
  }
  for (const auto& name : AllAlgorithms()) {
    ExpectColumnarEqualsScalar(name, stream, {64}, "aliasing-64");
    ExpectColumnarEqualsScalar(name, stream, {stream.size()},
                               "aliasing-whole");
  }
}

// The engine's partition-pass route (UpdateColumn) must land exactly the
// same per-shard substreams as the per-item scatter route (UpdateBatch):
// every occurrence of an item on the same shard, in stream order.
TEST(ColumnarDifferentialTest, EnginePartitionPassMatchesScatter) {
  const auto stream =
      MakeZipfStream(uint64_t{1} << 16, 1.2, 60000, /*seed=*/23);
  for (const std::string name :
       {"exact", "misra_gries", "count_min", "bdw_optimal"}) {
    SCOPED_TRACE(name);
    ShardedEngineOptions options;
    options.algorithm = name;
    options.summary = TestOptions(stream.size());
    options.num_shards = 4;
    options.num_threads = 2;
    auto scatter = ShardedEngine::Create(options);
    auto partition = ShardedEngine::Create(options);
    ASSERT_NE(scatter, nullptr);
    ASSERT_NE(partition, nullptr);

    // Mixed slice sizes so tile boundaries land mid-stream.
    scatter->UpdateBatch(stream);
    size_t offset = 0;
    const size_t sizes[] = {1, 7, 4096, 513};
    size_t i = 0;
    while (offset < stream.size()) {
      const size_t take =
          std::min(sizes[i++ % 4], stream.size() - offset);
      partition->UpdateColumn(stream.data() + offset, take);
      offset += take;
    }

    scatter->Flush();
    partition->Flush();
    EXPECT_EQ(scatter->ItemsProcessed(), partition->ItemsProcessed());
    EXPECT_EQ(scatter->ShardItemCounts(), partition->ShardItemCounts());
    const auto a = scatter->HeavyHitters(options.summary.phi);
    const auto b = partition->HeavyHitters(options.summary.phi);
    ASSERT_EQ(a.size(), b.size());
    for (size_t k = 0; k < a.size(); ++k) {
      EXPECT_EQ(a[k].item, b[k].item);
      EXPECT_EQ(a[k].estimate, b[k].estimate);
    }
  }
}

}  // namespace
}  // namespace l1hh
