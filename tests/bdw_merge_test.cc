// Epoch-reconciliation suite for BdwOptimal's distributed merge (ISSUE 3):
//   * merging instances parked at different epochs of the shared schedule
//     fast-forwards the behind one and stays accurate;
//   * FastForwardToEpoch only ever raises the epoch, clamps at max_epoch,
//     and never perturbs estimates (it trades space for variance only);
//   * Compatible/MergeFrom reject mismatched options and seeds, leaving
//     the target untouched;
//   * K-way shard-then-merge preserves the Definition 1 contract over a
//     seed battery within the binomial failure budget (the core-level
//     twin of the engine conformance suite).
//
// ctest label: conformance (runs under the CI sanitizer matrix).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/bdw_optimal.h"
#include "stream/stream_generator.h"
#include "summary/exact_counter.h"
#include "summary/summary.h"
#include "util/random.h"

namespace l1hh {
namespace {

BdwOptimal::Options MakeOptions(double eps, double phi, uint64_t m,
                                uint64_t n = uint64_t{1} << 24) {
  BdwOptimal::Options opt;
  opt.epsilon = eps;
  opt.phi = phi;
  opt.delta = 0.1;
  opt.universe_size = n;
  opt.stream_length = m;
  return opt;
}

// A stream where item 7 occurs every 4th position and the rest is
// near-distinct background — item 7 is 0.25-heavy wherever you cut it.
void IngestPattern(BdwOptimal& sketch, uint64_t from, uint64_t to) {
  for (uint64_t i = from; i < to; ++i) {
    sketch.Insert(i % 4 == 0 ? 7 : 1000 + i % 9973);
  }
}

TEST(BdwMergeTest, MergeReconcilesInstancesAtDifferentEpochs) {
  const uint64_t m = 45000;
  const auto opt = MakeOptions(0.02, 0.1, m);
  BdwOptimal big(opt, 3), small(opt, 3);
  IngestPattern(big, 0, 40000);      // most of the schedule walked
  IngestPattern(small, 40000, m);    // barely past epoch 0
  ASSERT_GT(big.current_epoch(), small.current_epoch())
      << "test needs genuinely different epochs to exercise reconciliation";

  const uint64_t total_samples = big.samples_taken() + small.samples_taken();
  // Merge the BEHIND instance into the AHEAD one's state: small must
  // fast-forward to the common epoch during MergeFrom.
  ASSERT_TRUE(small.MergeFrom(big).ok());
  EXPECT_GE(small.current_epoch(), big.current_epoch());
  // No manual fast-forwards happened, so the merged epoch is exactly the
  // schedule at the combined sample position.
  EXPECT_EQ(small.current_epoch(), small.EpochAtSample(total_samples));
  EXPECT_EQ(small.samples_taken(), total_samples);
  EXPECT_EQ(small.items_processed(), m);

  // Accuracy over the union stream: item 7 has exactly m/4 arrivals
  // (positions 0, 4, ..., 44996 -> 11250).
  const double truth = std::ceil(static_cast<double>(m) / 4.0);
  EXPECT_NEAR(small.EstimateCount(7), truth,
              1.5 * opt.epsilon * static_cast<double>(m));
  bool reported = false;
  for (const auto& hh : small.Report()) reported |= hh.item == 7;
  EXPECT_TRUE(reported);
}

TEST(BdwMergeTest, MergePropagatesFastForwardFloors) {
  const uint64_t m = 60000;
  const auto opt = MakeOptions(0.02, 0.1, m);
  BdwOptimal a(opt, 5), b(opt, 5);
  IngestPattern(a, 0, 1000);
  IngestPattern(b, 1000, 2000);
  a.FastForwardToEpoch(a.max_epoch());
  ASSERT_EQ(a.current_epoch(), a.max_epoch());
  // b merges a: a's floor (carried in its current epoch) must win over
  // b's own schedule position, so a later merge chain can never count at
  // a probability below anything either side already reached.
  ASSERT_TRUE(b.MergeFrom(a).ok());
  EXPECT_EQ(b.current_epoch(), b.max_epoch());
}

TEST(BdwMergeTest, FastForwardOnlyRaisesAndClampsAtMaxEpoch) {
  const uint64_t m = 50000;
  BdwOptimal sketch(MakeOptions(0.02, 0.1, m), 9);
  IngestPattern(sketch, 0, 20000);
  const int mid = sketch.current_epoch();
  sketch.FastForwardToEpoch(0);  // behind the present: must be a no-op
  EXPECT_EQ(sketch.current_epoch(), mid);
  sketch.FastForwardToEpoch(mid + 2);
  EXPECT_EQ(sketch.current_epoch(), std::min(mid + 2, sketch.max_epoch()));
  sketch.FastForwardToEpoch(1 << 20);  // far past the cap: clamps
  EXPECT_EQ(sketch.current_epoch(), sketch.max_epoch());
}

TEST(BdwMergeTest, FastForwardDoesNotBiasEstimates) {
  const uint64_t m = 50000;
  const auto opt = MakeOptions(0.02, 0.1, m);
  BdwOptimal plain(opt, 11), forwarded(opt, 11);
  IngestPattern(plain, 0, m);
  IngestPattern(forwarded, 0, m / 2);
  // Jump straight to the top of the schedule mid-stream: the remaining
  // arrivals are counted at probability 1-ish instead of the scheduled
  // rate.  Estimates must stay on target (only variance/space change).
  forwarded.FastForwardToEpoch(forwarded.max_epoch());
  IngestPattern(forwarded, m / 2, m);
  const double truth = std::ceil(static_cast<double>(m) / 4.0);
  const double tol = 1.5 * opt.epsilon * static_cast<double>(m);
  EXPECT_NEAR(plain.EstimateCount(7), truth, tol);
  EXPECT_NEAR(forwarded.EstimateCount(7), truth, tol);
}

TEST(BdwMergeTest, CompatibleRequiresSameOptionsAndSeed) {
  const uint64_t m = 40000;
  const BdwOptimal base(MakeOptions(0.02, 0.1, m), 21);
  const BdwOptimal twin(MakeOptions(0.02, 0.1, m), 21);
  EXPECT_TRUE(BdwOptimal::Compatible(base, twin));

  const BdwOptimal other_seed(MakeOptions(0.02, 0.1, m), 22);
  EXPECT_FALSE(BdwOptimal::Compatible(base, other_seed))
      << "different seed draws different hash functions";
  const BdwOptimal other_eps(MakeOptions(0.05, 0.1, m), 21);
  EXPECT_FALSE(BdwOptimal::Compatible(base, other_eps));
  const BdwOptimal other_phi(MakeOptions(0.02, 0.2, m), 21);
  EXPECT_FALSE(BdwOptimal::Compatible(base, other_phi));
  const BdwOptimal other_m(MakeOptions(0.02, 0.1, 2 * m), 21);
  EXPECT_FALSE(BdwOptimal::Compatible(base, other_m))
      << "different m means a different sampling rate and schedule";
}

TEST(BdwMergeTest, MergeFromRejectsIncompatibleAndLeavesTargetUntouched) {
  const uint64_t m = 40000;
  BdwOptimal target(MakeOptions(0.02, 0.1, m), 31);
  IngestPattern(target, 0, 10000);
  const uint64_t samples_before = target.samples_taken();
  const int epoch_before = target.current_epoch();

  BdwOptimal mismatched(MakeOptions(0.02, 0.1, m), 32);
  IngestPattern(mismatched, 10000, 20000);
  EXPECT_FALSE(target.MergeFrom(mismatched).ok());
  EXPECT_EQ(target.samples_taken(), samples_before);
  EXPECT_EQ(target.current_epoch(), epoch_before);
}

TEST(BdwMergeTest, AdapterMergeRejectsMismatchedSeedAndOptions) {
  SummaryOptions base;
  base.epsilon = 0.02;
  base.phi = 0.1;
  base.universe_size = uint64_t{1} << 20;
  base.stream_length = 40000;
  base.seed = 7;

  auto a = MakeSummary("bdw_optimal", base);
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->SupportsMerge());

  SummaryOptions other_seed = base;
  other_seed.seed = 8;
  auto b = MakeSummary("bdw_optimal", other_seed);
  EXPECT_FALSE(a->Merge(*b).ok());

  SummaryOptions other_eps = base;
  other_eps.epsilon = 0.05;
  auto c = MakeSummary("bdw_optimal", other_eps);
  EXPECT_FALSE(a->Merge(*c).ok());

  auto d = MakeSummary("misra_gries", base);
  EXPECT_FALSE(a->Merge(*d).ok()) << "cross-structure merge must fail";

  auto e = MakeSummary("bdw_optimal", base);
  EXPECT_TRUE(a->Merge(*e).ok());
}

// Definition 1 over a seed battery for K-way shard-then-merge, the
// core-level statement behind "the optimal algorithm, sharded": items are
// hash-partitioned (every occurrence on one shard, like the engine), all
// shards share options and seed, and the epoch-reconciled merge must keep
// recall, soundness, and estimate error within the same binomial failure
// budget the single-instance conformance suite uses.
TEST(BdwMergeTest, ShardThenMergeKeepsDefinitionOneOverSeeds) {
  constexpr double kEps = 0.02, kPhi = 0.05, kDelta = 0.05;
  constexpr uint64_t kM = 40000;
  constexpr size_t kShards = 4;
  constexpr int kRuns = 8;
  // mean + 3 sigma of Binomial(kRuns, kDelta).
  const int budget = static_cast<int>(std::ceil(
      kRuns * kDelta + 3.0 * std::sqrt(kRuns * kDelta * (1.0 - kDelta))));

  int failures = 0;
  for (int run = 0; run < kRuns; ++run) {
    const uint64_t seed = 4000 + 13 * static_cast<uint64_t>(run);
    PlantedSpec spec;
    // Straddle the contract thresholds: two clear heavies, one just above
    // phi, one below (phi - eps) that must never be reported.
    spec.planted_fractions = {0.12, 0.08, kPhi + 0.006,
                              kPhi - kEps - 0.005};
    spec.universe_size = uint64_t{1} << 20;
    spec.stream_length = kM;
    spec.order = StreamOrder::kHeaviesLast;
    const PlantedStream s = MakePlantedStream(spec, seed);

    const auto opt = MakeOptions(kEps, kPhi, kM, uint64_t{1} << 20);
    std::vector<BdwOptimal> shards;
    for (size_t k = 0; k < kShards; ++k) shards.emplace_back(opt, seed + 1);
    ExactCounter exact;
    for (const uint64_t x : s.items) {
      shards[static_cast<size_t>(Mix64(x) % kShards)].Insert(x);
      exact.Insert(x);
    }
    BdwOptimal& merged = shards[0];
    for (size_t k = 1; k < kShards; ++k) {
      ASSERT_TRUE(merged.MergeFrom(shards[k]).ok());
    }

    bool ok = true;
    const double m = static_cast<double>(kM);
    std::unordered_set<uint64_t> reported;
    for (const auto& hh : merged.Report()) {
      reported.insert(hh.item);
      // Soundness + estimate accuracy of everything reported.
      if (exact.Count(hh.item) <
          static_cast<uint64_t>((kPhi - kEps) * m) - 1) {
        ok = false;
      }
      if (std::abs(hh.estimated_count -
                   static_cast<double>(exact.Count(hh.item))) >
          1.5 * kEps * m) {
        ok = false;
      }
    }
    // Recall of everything above phi*m (the first three planted items).
    for (const auto& t :
         exact.HeavyHitters(static_cast<uint64_t>(kPhi * m) + 1)) {
      if (reported.count(t.item) == 0) ok = false;
    }
    if (!ok) ++failures;
  }
  EXPECT_LE(failures, budget);
}

}  // namespace
}  // namespace l1hh
