// Merge-algebra property tests for every mergeable registered summary:
//   * commutativity   — Merge(A,B) ≈ Merge(B,A),
//   * associativity   — Merge(Merge(A,B),C) ≈ Merge(A,Merge(B,C)),
//   * shard-and-merge — partitioned ingest + merge ≈ single-summary
//                       ingest of the whole stream (the ShardedEngine's
//                       correctness argument),
// each within the structure's documented additive error (exact equality
// for the ground-truth counter).  Substreams are disjoint item
// partitions, matching the engine's hash partitioning and the
// disjoint-substream precondition of the sampling-based merges.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "engine/sharded_engine.h"
#include "stream/stream_generator.h"
#include "summary/summary.h"
#include "summary_test_util.h"
#include "util/random.h"

namespace l1hh {
namespace {

constexpr double kEpsilon = 0.02;
constexpr double kPhi = 0.05;
constexpr uint64_t kStreamLength = 60000;

SummaryOptions Options() {
  SummaryOptions o;
  o.epsilon = kEpsilon;
  o.phi = kPhi;
  o.delta = 0.05;
  o.universe_size = uint64_t{1} << 20;
  o.stream_length = kStreamLength;
  o.seed = 7;
  return o;
}

std::vector<std::string> MergeableNames() {
  return MergeableSummaryNames(Options());
}

class MergePropertyTest : public testing::TestWithParam<std::string> {
 protected:
  static std::unique_ptr<Summary> Make() {
    auto summary = MakeSummary(GetParam(), Options());
    EXPECT_NE(summary, nullptr) << GetParam();
    return summary;
  }

  /// The shared workload: planted heavies well above phi plus background,
  /// so every structure has unambiguous items to agree on.
  static const PlantedStream& Stream() {
    static const PlantedStream* stream = [] {
      PlantedSpec spec;
      spec.planted_fractions = {0.18, 0.10, 0.07};
      spec.universe_size = uint64_t{1} << 20;
      spec.stream_length = kStreamLength;
      spec.order = StreamOrder::kShuffled;
      return new PlantedStream(MakePlantedStream(spec, /*seed=*/5));
    }();
    return *stream;
  }

  /// Disjoint item partitions (every occurrence of an item stays in one
  /// part), like the engine's hash partitioning.
  static const std::vector<std::vector<uint64_t>>& Parts() {
    static const std::vector<std::vector<uint64_t>>* parts = [] {
      auto* p = new std::vector<std::vector<uint64_t>>(3);
      for (const uint64_t x : Stream().items) {
        (*p)[static_cast<size_t>(Mix64(x) % 3)].push_back(x);
      }
      return p;
    }();
    return *parts;
  }

  static std::unique_ptr<Summary> Ingest(const std::vector<uint64_t>& part) {
    auto summary = Make();
    summary->UpdateBatch(part);
    return summary;
  }

  /// Estimate-agreement tolerance between two summaries over the same
  /// stream: both carry at most ~eps*m additive error (deterministically
  /// or at the fixed seeds used here), so they agree within 2*eps*m; the
  /// exact counter must agree exactly.
  static double Tolerance() {
    if (GetParam() == "exact") return 0.0;
    return 2.0 * kEpsilon * static_cast<double>(kStreamLength);
  }

  static void ExpectAgree(const Summary& a, const Summary& b) {
    ASSERT_EQ(a.ItemsProcessed(), b.ItemsProcessed()) << GetParam();
    for (const uint64_t id : Stream().planted_ids) {
      EXPECT_NEAR(a.Estimate(id), b.Estimate(id), Tolerance())
          << GetParam() << " disagrees on planted item " << id;
    }
    // Both reports must recall every planted heavy (all are > phi*m).
    for (const Summary* s : {&a, &b}) {
      const auto report = s->HeavyHitters(kPhi);
      for (const uint64_t id : Stream().planted_ids) {
        EXPECT_TRUE(std::any_of(
            report.begin(), report.end(),
            [id](const ItemEstimate& e) { return e.item == id; }))
            << GetParam() << " report missed planted item " << id;
      }
    }
  }
};

// Pins the tentpole of ISSUE 3: the paper's space-optimal Algorithm 2 is
// mergeable (epoch-reconciled MergeFrom) and therefore swept by every
// property below and shardable by the engine.  If a refactor silently
// drops SupportsMerge, the parameterized suite would just shrink — this
// test makes that a failure instead.
TEST(MergeableSetTest, PaperAlgorithmsAreMergeable) {
  const auto names = MergeableNames();
  for (const char* required : {"bdw_simple", "bdw_optimal"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), required), names.end())
        << required << " must support Merge";
  }
}

TEST_P(MergePropertyTest, MergeIsCommutative) {
  auto ab = Ingest(Parts()[0]);
  auto b_for_ab = Ingest(Parts()[1]);
  ASSERT_TRUE(ab->Merge(*b_for_ab).ok()) << GetParam();

  auto ba = Ingest(Parts()[1]);
  auto a_for_ba = Ingest(Parts()[0]);
  ASSERT_TRUE(ba->Merge(*a_for_ba).ok()) << GetParam();

  ExpectAgree(*ab, *ba);
}

TEST_P(MergePropertyTest, MergeIsAssociative) {
  // left = (A + B) + C
  auto left = Ingest(Parts()[0]);
  ASSERT_TRUE(left->Merge(*Ingest(Parts()[1])).ok()) << GetParam();
  ASSERT_TRUE(left->Merge(*Ingest(Parts()[2])).ok()) << GetParam();
  // right = A + (B + C)
  auto bc = Ingest(Parts()[1]);
  ASSERT_TRUE(bc->Merge(*Ingest(Parts()[2])).ok()) << GetParam();
  auto right = Ingest(Parts()[0]);
  ASSERT_TRUE(right->Merge(*bc).ok()) << GetParam();

  ExpectAgree(*left, *right);
}

TEST_P(MergePropertyTest, ShardedIngestThenMergeMatchesSingleIngest) {
  // Manual shard-and-merge over the disjoint partitions...
  auto merged = Ingest(Parts()[0]);
  ASSERT_TRUE(merged->Merge(*Ingest(Parts()[1])).ok()) << GetParam();
  ASSERT_TRUE(merged->Merge(*Ingest(Parts()[2])).ok()) << GetParam();
  // ...versus one summary ingesting the whole stream.
  auto single = Ingest(Stream().items);
  ExpectAgree(*merged, *single);
}

TEST_P(MergePropertyTest, EngineMatchesSingleIngest) {
  ShardedEngineOptions engine_options;
  engine_options.algorithm = GetParam();
  engine_options.summary = Options();
  engine_options.num_shards = 4;
  auto engine = ShardedEngine::Create(engine_options);
  ASSERT_NE(engine, nullptr) << GetParam();
  engine->UpdateBatch(Stream().items);

  auto single = Ingest(Stream().items);
  for (size_t i = 0; i < Stream().planted_ids.size(); ++i) {
    const uint64_t id = Stream().planted_ids[i];
    const double truth = static_cast<double>(Stream().planted_counts[i]);
    // Both views sit within ~eps*m of the exact count (fixed seeds).
    EXPECT_NEAR(engine->Estimate(id), truth, Tolerance() + 1.0)
        << GetParam();
    EXPECT_NEAR(single->Estimate(id), truth, Tolerance() + 1.0)
        << GetParam();
  }
  const auto report = engine->HeavyHitters(kPhi);
  for (const uint64_t id : Stream().planted_ids) {
    EXPECT_TRUE(std::any_of(
        report.begin(), report.end(),
        [id](const ItemEstimate& e) { return e.item == id; }))
        << GetParam() << " engine report missed planted item " << id;
  }
  EXPECT_EQ(engine->ItemsProcessed(), single->ItemsProcessed());
}

INSTANTIATE_TEST_SUITE_P(
    AllMergeable, MergePropertyTest, testing::ValuesIn(MergeableNames()),
    [](const testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

}  // namespace
}  // namespace l1hh
