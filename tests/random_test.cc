#include "util/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace l1hh {
namespace {

TEST(RandomTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RandomTest, UniformU64InRange) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.UniformU64(bound), bound);
    }
  }
}

TEST(RandomTest, UniformU64Unbiased) {
  Rng rng(11);
  const uint64_t bound = 10;
  std::vector<int> counts(bound, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.UniformU64(bound)];
  for (const int c : counts) {
    EXPECT_NEAR(c, n / 10.0, 5 * std::sqrt(n / 10.0));
  }
}

TEST(RandomTest, UniformDoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.UniformDouble();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000, 0.5, 0.01);
}

TEST(RandomTest, AllZeroBitsProbability) {
  Rng rng(17);
  // P(AllZeroBits(k)) = 2^-k: this is the Lemma-1 coin.
  for (int k : {1, 3, 6}) {
    const int n = 200000;
    int hits = 0;
    for (int i = 0; i < n; ++i) {
      if (rng.AllZeroBits(k)) ++hits;
    }
    const double expected = std::ldexp(n, -k);
    EXPECT_NEAR(hits, expected, 6 * std::sqrt(expected));
  }
}

TEST(RandomTest, AllZeroBitsZeroExponentAlwaysTrue) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(rng.AllZeroBits(0));
}

TEST(RandomTest, AllZeroBitsWideExponent) {
  Rng rng(23);
  // k > 64 exercises the multi-word path; success is astronomically rare.
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(rng.AllZeroBits(128));
}

TEST(RandomTest, GeometricMean) {
  Rng rng(29);
  // E[Geometric(p)] = (1-p)/p.
  for (double p : {0.5, 0.1, 0.01}) {
    const int n = 50000;
    double sum = 0;
    for (int i = 0; i < n; ++i) {
      sum += static_cast<double>(rng.Geometric(p));
    }
    const double mean = sum / n;
    const double expected = (1 - p) / p;
    EXPECT_NEAR(mean, expected, 0.1 * expected + 0.05);
  }
}

TEST(RandomTest, GeometricP1IsZero) {
  Rng rng(31);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.Geometric(1.0), 0u);
}

TEST(RandomTest, BitAccounting) {
  Rng rng(37);
  const uint64_t before = rng.words_drawn();
  rng.NextU64();
  rng.NextU64();
  EXPECT_EQ(rng.words_drawn(), before + 2);
  EXPECT_EQ(rng.bits_drawn(), (before + 2) * 64);
}

TEST(RandomTest, Mix64Stateless) {
  EXPECT_EQ(Mix64(42), Mix64(42));
  EXPECT_NE(Mix64(42), Mix64(43));
}

}  // namespace
}  // namespace l1hh
