// Failure injection: deserialization must survive hostile bytes.
//
// A sketch travels over the network in the communication games and in the
// telemetry example; a production library cannot crash or balloon its
// allocations on a truncated or bit-flipped message.  These tests feed
// every Deserialize() (a) truncated prefixes of valid messages and (b)
// messages with payload bit flips, and assert we neither crash nor
// allocate absurdly (the CheckedCount guards), with overflow detectable.
#include <gtest/gtest.h>

#include "core/bdw_simple.h"
#include "core/borda.h"
#include "core/epsilon_minimum.h"
#include "core/maximin.h"
#include "count/compact_counter_array.h"
#include "summary/count_min_sketch.h"
#include "summary/lossy_counting.h"
#include "summary/misra_gries.h"
#include "util/bit_stream.h"
#include "util/random.h"

namespace l1hh {
namespace {

// Rebuilds a writer holding the first `bits` bits of `src`.
BitWriter Truncate(const BitWriter& src, size_t bits) {
  BitWriter out;
  BitReader r(src);
  size_t left = bits;
  while (left >= 64) {
    out.WriteU64(r.ReadU64());
    left -= 64;
  }
  if (left > 0) out.WriteBits(r.ReadBits(static_cast<int>(left)),
                              static_cast<int>(left));
  return out;
}

// Copies `src` and flips one bit at `pos`.
BitWriter FlipBit(const BitWriter& src, size_t pos) {
  BitWriter out;
  BitReader r(src);
  size_t left = src.size_bits();
  size_t offset = 0;
  while (left > 0) {
    const int chunk = static_cast<int>(std::min<size_t>(left, 64));
    uint64_t word = r.ReadBits(chunk);
    if (pos >= offset && pos < offset + static_cast<size_t>(chunk)) {
      word ^= uint64_t{1} << (pos - offset);
    }
    out.WriteBits(word, chunk);
    offset += static_cast<size_t>(chunk);
    left -= static_cast<size_t>(chunk);
  }
  return out;
}

TEST(CorruptionTest, MisraGriesTruncation) {
  Rng rng(1);
  MisraGries mg(16, 24);
  for (int i = 0; i < 5000; ++i) mg.Insert(rng.UniformU64(64));
  BitWriter w;
  mg.Serialize(w);
  for (const double frac : {0.0, 0.1, 0.5, 0.9, 0.999}) {
    const BitWriter t = Truncate(w, static_cast<size_t>(
                                        frac * w.size_bits()));
    BitReader r(t);
    const MisraGries broken = MisraGries::Deserialize(r);
    // Must not crash; the result is allowed to be anything sane.
    EXPECT_LE(broken.tracked(), broken.k() + 1);
  }
}

TEST(CorruptionTest, CompactCounterArrayTruncation) {
  CompactCounterArray a(100);
  Rng rng(2);
  for (int i = 0; i < 3000; ++i) a.Increment(rng.UniformU64(100));
  BitWriter w;
  a.Serialize(w);
  for (const size_t bits : {size_t{0}, size_t{3}, w.size_bits() / 2}) {
    const BitWriter t = Truncate(w, bits);
    BitReader r(t);
    CompactCounterArray broken;
    broken.Deserialize(r);
    // CheckedCount caps the element count at the message size.
    EXPECT_LE(broken.size(), t.size_bits() + 64);
  }
  // The sparse snapshot format: a truncated payload either fails the
  // size echo (no allocation) or stops mid-cells; both must leave the
  // reader flagged.
  BitWriter sparse;
  a.SerializeSparse(sparse);
  for (const size_t bits :
       {size_t{0}, size_t{3}, sparse.size_bits() / 2}) {
    const BitWriter t = Truncate(sparse, bits);
    BitReader r(t);
    CompactCounterArray broken;
    broken.DeserializeSparse(r, a.size());
    EXPECT_TRUE(r.overflow());
    EXPECT_LE(broken.size(), a.size());
  }
}

TEST(CorruptionTest, BdwSimpleTruncation) {
  BdwSimple::Options opt;
  opt.epsilon = 0.05;
  opt.phi = 0.2;
  opt.universe_size = 1 << 20;
  opt.stream_length = 10000;
  BdwSimple sketch(opt, 3);
  for (int i = 0; i < 10000; ++i) sketch.Insert(static_cast<uint64_t>(i % 7));
  BitWriter w;
  sketch.Serialize(w);
  for (const double frac : {0.1, 0.4, 0.7, 0.95}) {
    const BitWriter t = Truncate(w, static_cast<size_t>(
                                        frac * w.size_bits()));
    BitReader r(t);
    BdwSimple broken = BdwSimple::Deserialize(r, 4);
    EXPECT_TRUE(r.overflow());
    broken.Insert(1);  // must still be usable
    (void)broken.Report();
  }
}

TEST(CorruptionTest, BdwSimplePayloadBitFlips) {
  BdwSimple::Options opt;
  opt.epsilon = 0.1;
  opt.phi = 0.3;
  opt.universe_size = 1 << 16;
  opt.stream_length = 5000;
  BdwSimple sketch(opt, 5);
  for (int i = 0; i < 5000; ++i) sketch.Insert(static_cast<uint64_t>(i % 5));
  BitWriter w;
  sketch.Serialize(w);
  // Flip bits in the payload (past the 5 fixed-width option fields).
  const size_t start = 64 * 5;
  Rng rng(6);
  for (int t = 0; t < 50; ++t) {
    const size_t pos =
        start + rng.UniformU64(w.size_bits() - start);
    const BitWriter flipped = FlipBit(w, pos);
    BitReader r(flipped);
    BdwSimple broken = BdwSimple::Deserialize(r, 7);
    broken.Insert(1);
    (void)broken.Report();  // no crash, no unbounded allocation
  }
}

TEST(CorruptionTest, EpsilonMinimumHostileHeader) {
  EpsilonMinimum::Options opt;
  opt.epsilon = 0.1;
  opt.universe_size = 8;
  opt.stream_length = 1000;
  EpsilonMinimum sketch(opt, 8);
  for (int i = 0; i < 1000; ++i) sketch.Insert(static_cast<uint64_t>(i % 8));
  BitWriter w;
  sketch.Serialize(w);
  // Flip bits everywhere, including the header doubles and the universe
  // size: the deserializer must reject implausible values instead of
  // allocating universe-sized vectors.
  Rng rng(9);
  for (int t = 0; t < 100; ++t) {
    const size_t pos = rng.UniformU64(w.size_bits());
    const BitWriter flipped = FlipBit(w, pos);
    BitReader r(flipped);
    EpsilonMinimum broken = EpsilonMinimum::Deserialize(r, 10);
    (void)broken.Report();
  }
}

TEST(CorruptionTest, CountMinTruncation) {
  CountMinSketch cms(CountMinSketch::Options{64, 3, false}, 11);
  Rng rng(12);
  for (int i = 0; i < 2000; ++i) cms.Insert(rng.UniformU64(100));
  BitWriter w;
  cms.Serialize(w);
  const BitWriter t = Truncate(w, w.size_bits() / 3);
  BitReader r(t);
  const CountMinSketch broken = CountMinSketch::Deserialize(r);
  EXPECT_TRUE(r.overflow());
  (void)broken.Estimate(1);
}

TEST(CorruptionTest, LossyCountingTruncation) {
  LossyCounting lc(0.05, 20);
  Rng rng(13);
  for (int i = 0; i < 3000; ++i) lc.Insert(rng.UniformU64(40));
  BitWriter w;
  lc.Serialize(w);
  const BitWriter t = Truncate(w, w.size_bits() / 4);
  BitReader r(t);
  const LossyCounting broken = LossyCounting::Deserialize(r);
  EXPECT_TRUE(r.overflow());
  (void)broken.Entries();
}

TEST(CorruptionTest, MaximinTruncation) {
  StreamingMaximin::Options opt;
  opt.epsilon = 0.2;
  opt.num_candidates = 6;
  opt.stream_length = 100;
  StreamingMaximin sketch(opt, 14);
  Rng rng(15);
  for (int i = 0; i < 100; ++i) {
    sketch.InsertVote(Ranking::Random(6, rng));
  }
  BitWriter w;
  sketch.Serialize(w);
  for (const double frac : {0.2, 0.6, 0.9}) {
    const BitWriter t = Truncate(w, static_cast<size_t>(
                                        frac * w.size_bits()));
    BitReader r(t);
    StreamingMaximin broken = StreamingMaximin::Deserialize(r, 16);
    (void)broken.Scores();
  }
}

TEST(CorruptionTest, BordaTruncation) {
  StreamingBorda::Options opt;
  opt.epsilon = 0.1;
  opt.num_candidates = 8;
  opt.stream_length = 200;
  StreamingBorda sketch(opt, 17);
  Rng rng(18);
  for (int i = 0; i < 200; ++i) sketch.InsertVote(Ranking::Random(8, rng));
  BitWriter w;
  sketch.Serialize(w);
  const BitWriter t = Truncate(w, w.size_bits() / 2);
  BitReader r(t);
  StreamingBorda broken = StreamingBorda::Deserialize(r, 19);
  EXPECT_TRUE(r.overflow());
  (void)broken.Scores();
}

TEST(CorruptionTest, EmptyMessage) {
  BitWriter empty;
  {
    BitReader r(empty);
    const MisraGries broken = MisraGries::Deserialize(r);
    EXPECT_TRUE(r.overflow());
    EXPECT_EQ(broken.tracked(), 0u);
  }
  {
    BitReader r(empty);
    CompactCounterArray broken;
    broken.Deserialize(r);
    EXPECT_EQ(broken.size(), 0u);
  }
  {
    BitReader r(empty);
    CompactCounterArray broken;
    broken.DeserializeSparse(r, 100);
    EXPECT_TRUE(r.overflow());
    EXPECT_EQ(broken.size(), 0u);
  }
}

}  // namespace
}  // namespace l1hh
