#include "summary/count_sketch.h"

#include <gtest/gtest.h>

#include <cmath>

#include "stream/stream_generator.h"
#include "summary/exact_counter.h"
#include "util/random.h"

namespace l1hh {
namespace {

TEST(CountSketchTest, ApproximatelyUnbiased) {
  // Mean estimate over independent sketches should approach the truth.
  const uint64_t target = 77;
  const int trials = 300;
  double sum = 0;
  for (int t = 0; t < trials; ++t) {
    CountSketch cs(64, 1, 1000 + t);  // single row: exactly unbiased
    Rng rng(t);
    for (int i = 0; i < 2000; ++i) cs.Insert(rng.UniformU64(500));
    for (int i = 0; i < 100; ++i) cs.Insert(target);
    sum += static_cast<double>(cs.Estimate(target));
  }
  const double mean = sum / trials;
  // Noise per row ~ ||f||_2/sqrt(64) ~ 2000/ (big margin below).
  EXPECT_NEAR(mean, 100.0, 30.0);
}

TEST(CountSketchTest, MedianReducesError) {
  ExactCounter exact;
  const auto stream = MakeZipfStream(1 << 14, 1.2, 50000, 3);
  CountSketch shallow(256, 1, 5);
  CountSketch deep(256, 9, 5);
  for (const uint64_t x : stream) {
    shallow.Insert(x);
    deep.Insert(x);
    exact.Insert(x);
  }
  double err_shallow = 0, err_deep = 0;
  for (uint64_t x = 0; x < 2000; ++x) {
    const double t = static_cast<double>(exact.Count(x));
    err_shallow += std::abs(static_cast<double>(shallow.Estimate(x)) - t);
    err_deep += std::abs(static_cast<double>(deep.Estimate(x)) - t);
  }
  EXPECT_LE(err_deep, err_shallow * 1.05);
}

TEST(CountSketchTest, HeavyItemsRecoverable) {
  const PlantedSpec spec{{0.3, 0.15}, 1 << 16, 40000};
  const PlantedStream s = MakePlantedStream(spec, 9);
  CountSketch cs = CountSketch::ForError(0.05, 0.01, 21);
  for (const uint64_t x : s.items) cs.Insert(x);
  for (size_t i = 0; i < s.planted_ids.size(); ++i) {
    const double est = static_cast<double>(cs.Estimate(s.planted_ids[i]));
    EXPECT_NEAR(est, static_cast<double>(s.planted_counts[i]),
                0.05 * 40000);
  }
}

TEST(CountSketchTest, SupportsDeletions) {
  // CountSketch is a linear sketch; insert then delete cancels.
  CountSketch cs(128, 5, 33);
  for (int i = 0; i < 100; ++i) cs.Insert(7, 1);
  for (int i = 0; i < 100; ++i) cs.Insert(7, -1);
  EXPECT_EQ(cs.Estimate(7), 0);
}

TEST(CountSketchTest, DepthForcedOdd) {
  CountSketch cs(64, 4, 1);
  EXPECT_EQ(cs.depth() % 2, 1u);
}

TEST(CountSketchTest, SerializeRoundTrip) {
  Rng rng(4);
  CountSketch cs(128, 5, 19);
  for (int i = 0; i < 20000; ++i) cs.Insert(rng.UniformU64(700));
  BitWriter w;
  cs.Serialize(w);
  BitReader r(w);
  const CountSketch cs2 = CountSketch::Deserialize(r);
  for (uint64_t x = 0; x < 700; ++x) {
    EXPECT_EQ(cs2.Estimate(x), cs.Estimate(x));
  }
}

}  // namespace
}  // namespace l1hh
