// The K x P ring grid's concurrency battery (ctest label: engine; CI
// also runs it under TSan, where it is the main event).  Properties:
//
//   * P producers ingesting a DISJOINT ITEM PARTITION of a stream are
//     equivalent to one producer ingesting the whole stream — exactly
//     (report-identical) for the exact structure, within the (eps, phi)
//     contract for every mergeable sketch (each shard receives the same
//     multiset either way; only the interleaving differs).
//   * Producer handles can be registered and released mid-stream, slots
//     are recycled, and exhaustion is a clean FailedPrecondition.
//   * Flush and queries from a non-producer thread during live ingest
//     see quiescent, monotone state (snapshot isolation).
//   * Tiny rings with P > 1 producers exercise backpressure on every
//     push without losing or duplicating a single item.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/sharded_engine.h"
#include "stream/stream_generator.h"
#include "summary/evaluation.h"
#include "summary/exact_counter.h"
#include "summary/summary.h"
#include "summary_test_util.h"

namespace l1hh {
namespace {

ShardedEngineOptions GridOptions(const std::string& algorithm, size_t shards,
                                 size_t producers, uint64_t stream_length) {
  ShardedEngineOptions o;
  o.algorithm = algorithm;
  o.num_shards = shards;
  o.max_producers = producers + 1;  // + the engine's own slot 0
  o.summary.epsilon = 0.02;
  o.summary.phi = 0.05;
  o.summary.delta = 0.05;
  o.summary.universe_size = uint64_t{1} << 20;
  o.summary.stream_length = stream_length;
  o.summary.seed = 7;
  return o;
}

PlantedStream TestStream(uint64_t m = 60000) {
  PlantedSpec spec;
  spec.planted_fractions = {0.20, 0.12, 0.08};
  spec.universe_size = uint64_t{1} << 20;
  spec.stream_length = m;
  spec.order = StreamOrder::kShuffled;
  return MakePlantedStream(spec, /*seed=*/11);
}

bool Reported(const std::vector<ItemEstimate>& report, uint64_t item) {
  return std::any_of(report.begin(), report.end(),
                     [item](const ItemEstimate& e) { return e.item == item; });
}

// Splits a stream into P substreams by ITEM IDENTITY (id mod P), so no
// two producers ever ingest occurrences of the same item and each item's
// occurrence order is preserved within its producer.
std::vector<std::vector<uint64_t>> PartitionByItem(
    const std::vector<uint64_t>& stream, size_t parts) {
  std::vector<std::vector<uint64_t>> partition(parts);
  for (const uint64_t item : stream) {
    partition[static_cast<size_t>(item % parts)].push_back(item);
  }
  return partition;
}

// Runs `partition.size()` concurrent producers, one per substream.
void IngestConcurrently(ShardedEngine& engine,
                        const std::vector<std::vector<uint64_t>>& partition) {
  std::vector<std::thread> threads;
  threads.reserve(partition.size());
  for (const auto& chunk : partition) {
    Status status;
    auto producer = engine.RegisterProducer(&status);
    ASSERT_NE(producer, nullptr) << status.ToString();
    threads.emplace_back(
        [&chunk, producer = std::move(producer)]() mutable {
          // Mix per-item and batched pushes so both fast paths race.
          const size_t half = chunk.size() / 2;
          for (size_t i = 0; i < half; ++i) producer->Update(chunk[i]);
          producer->UpdateBatch(
              {chunk.data() + half, chunk.size() - half});
          producer.reset();
        });
  }
  for (auto& t : threads) t.join();
}

// --------------------------------------------------------------------------
// Equivalence: P producers over a disjoint item partition == 1 producer
// == 1 summary.

TEST(MultiProducerTest, DisjointPartitionMatchesSingleProducerExactly) {
  const auto planted = TestStream();
  const auto partition = PartitionByItem(planted.items, 4);

  auto grid = ShardedEngine::Create(
      GridOptions("exact", 4, 4, planted.items.size()));
  ASSERT_NE(grid, nullptr);
  IngestConcurrently(*grid, partition);
  grid->Flush();
  ASSERT_EQ(grid->ItemsProcessed(), planted.items.size());

  // Reference 1: the same engine shape fed by the single controller.
  auto single = ShardedEngine::Create(
      GridOptions("exact", 4, 0, planted.items.size()));
  ASSERT_NE(single, nullptr);
  single->UpdateBatch(planted.items);

  // Reference 2: one bare summary, no engine at all.
  ExactCounter truth;
  for (const uint64_t x : planted.items) truth.Insert(x);

  const auto report = grid->HeavyHitters(0.05);
  const auto report_single = single->HeavyHitters(0.05);
  const auto report_truth = truth.HeavyHitters(
      static_cast<uint64_t>(0.05 * static_cast<double>(planted.items.size())) +
      1);
  ASSERT_EQ(report.size(), report_single.size());
  ASSERT_EQ(report.size(), report_truth.size());
  for (size_t i = 0; i < report.size(); ++i) {
    EXPECT_EQ(report[i].item, report_single[i].item);
    EXPECT_EQ(report[i].estimate, report_single[i].estimate);
    EXPECT_EQ(report[i].item, report_truth[i].item);
    EXPECT_EQ(report[i].estimate,
              static_cast<double>(report_truth[i].count));
  }
  // Point queries are exact too.
  for (size_t i = 0; i < planted.planted_ids.size(); ++i) {
    EXPECT_EQ(grid->Estimate(planted.planted_ids[i]),
              static_cast<double>(planted.planted_counts[i]));
  }
}

TEST(MultiProducerTest, EveryMergeableSketchKeepsTheContractUnderP4) {
  const auto planted = TestStream();
  const double m = static_cast<double>(planted.items.size());
  const auto options =
      GridOptions("exact", 4, 4, planted.items.size()).summary;
  for (const std::string& name : MergeableSummaryNames(options)) {
    const SummaryRunResult r = RunMultiProducerSummary(
        name, options, planted.items, /*phi=*/0.05, /*num_shards=*/4,
        /*num_producers=*/4);
    ASSERT_TRUE(r.ok) << name << ": " << r.error;
    // Definition 1: every planted (phi + eps)-heavy item is recalled and
    // nothing lighter than (phi - eps) m is reported.
    EXPECT_EQ(r.recalled, r.true_heavies) << name;
    EXPECT_EQ(r.precision, 1.0) << name;
    // Estimates stay within the merged-summary error budget (1.5x covers
    // bdw_optimal's sharded epoch schedule, as in sharded_engine_test).
    EXPECT_LE(r.max_abs_err, 1.5 * 0.02 * m + 1.0) << name;
  }
}

// --------------------------------------------------------------------------
// Slot lifecycle.

TEST(MultiProducerTest, RegisterUnregisterMidStreamRecyclesSlots) {
  auto engine = ShardedEngine::Create(GridOptions("exact", 2, 2, 10000));
  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(engine->max_producers(), 3u);
  EXPECT_EQ(engine->active_producers(), 0u);

  Status status;
  auto a = engine->RegisterProducer(&status);
  ASSERT_NE(a, nullptr);
  auto b = engine->RegisterProducer(&status);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(engine->active_producers(), 2u);

  // Both slots live: the next claim must fail cleanly...
  EXPECT_EQ(engine->RegisterProducer(&status), nullptr);
  EXPECT_FALSE(status.ok());

  a->Update(1, 10);
  b->Update(2, 20);
  a.reset();  // ...until a handle is released mid-stream.
  EXPECT_EQ(engine->active_producers(), 1u);
  auto c = engine->RegisterProducer(&status);
  ASSERT_NE(c, nullptr) << status.ToString();
  c->Update(3, 30);
  // The controller's slot 0 keeps working alongside live handles.
  engine->Update(4, 40);
  b.reset();
  c.reset();

  engine->Flush();
  EXPECT_EQ(engine->ItemsProcessed(), 100u);
  EXPECT_EQ(engine->Estimate(1), 10.0);
  EXPECT_EQ(engine->Estimate(2), 20.0);
  EXPECT_EQ(engine->Estimate(3), 30.0);
  EXPECT_EQ(engine->Estimate(4), 40.0);
}

TEST(MultiProducerTest, DefaultEngineHasNoExternalSlots) {
  auto engine = ShardedEngine::Create(
      GridOptions("exact", 2, /*producers=*/0, 1000));
  ASSERT_NE(engine, nullptr);
  Status status;
  EXPECT_EQ(engine->RegisterProducer(&status), nullptr);
  EXPECT_FALSE(status.ok());
}

TEST(MultiProducerTest, RejectsZeroAndAbsurdMaxProducers) {
  auto opts = GridOptions("exact", 2, 0, 1000);
  opts.max_producers = 0;
  Status status;
  EXPECT_EQ(ShardedEngine::Create(opts, &status), nullptr);
  EXPECT_FALSE(status.ok());
  opts.max_producers = size_t{1} << 20;  // would be 2^20 rings per shard
  EXPECT_EQ(ShardedEngine::Create(opts, &status), nullptr);
  EXPECT_FALSE(status.ok());
}

// --------------------------------------------------------------------------
// Flush / query quiescence during live ingest (the TSan centerpiece:
// queries from a non-producer thread race two producer threads).

TEST(MultiProducerTest, FlushDuringIngestSeesQuiescentMonotoneState) {
  constexpr uint64_t kPerProducer = 40000;
  auto engine = ShardedEngine::Create(
      GridOptions("exact", 4, 2, 2 * kPerProducer));
  ASSERT_NE(engine, nullptr);

  std::atomic<bool> done{false};
  std::vector<std::thread> producers;
  for (uint64_t p = 0; p < 2; ++p) {
    Status status;
    auto producer = engine->RegisterProducer(&status);
    ASSERT_NE(producer, nullptr) << status.ToString();
    producers.emplace_back(
        [p, producer = std::move(producer)]() mutable {
          // Producer p ingests items {2p, 2p+1}: known final counts.
          for (uint64_t i = 0; i < kPerProducer; ++i) {
            producer->Update(2 * p + (i & 1));
          }
          producer.reset();
        });
  }

  // Meanwhile, hammer the read side from this (non-producer) thread.
  uint64_t last_seen = 0;
  while (!done.load(std::memory_order_relaxed)) {
    engine->Flush();
    const uint64_t now = engine->ItemsProcessed();
    EXPECT_GE(now, last_seen);  // applied count is monotone
    last_seen = now;
    // A report taken mid-ingest must be internally consistent: only the
    // four planted items can ever appear, with sane partial counts.
    for (const auto& hh : engine->HeavyHitters(0.05)) {
      EXPECT_LT(hh.item, 4u);
      EXPECT_LE(hh.estimate, static_cast<double>(kPerProducer));
    }
    if (now >= 2 * kPerProducer) done.store(true);
  }
  for (auto& t : producers) t.join();

  engine->Flush();
  EXPECT_EQ(engine->ItemsProcessed(), 2 * kPerProducer);
  for (uint64_t item = 0; item < 4; ++item) {
    EXPECT_EQ(engine->Estimate(item), kPerProducer / 2.0);
  }
}

// --------------------------------------------------------------------------
// Backpressure: tiny rings, P > 1.

TEST(MultiProducerTest, TinyRingBackpressureWithThreeProducersLosesNothing) {
  const auto planted = TestStream(90000);
  auto opts = GridOptions("exact", 4, 3, planted.items.size());
  opts.queue_capacity = 64;  // force constant ring-full stalls on 12 rings
  opts.drain_batch = 16;
  opts.num_threads = 2;
  auto engine = ShardedEngine::Create(opts);
  ASSERT_NE(engine, nullptr);

  // Contiguous thirds (NOT item-disjoint): heavies race into the same
  // shard ring set from all three producers at once.
  std::vector<std::vector<uint64_t>> thirds(3);
  const size_t chunk = planted.items.size() / 3;
  for (size_t p = 0; p < 3; ++p) {
    const size_t first = p * chunk;
    const size_t last = p == 2 ? planted.items.size() : first + chunk;
    thirds[p].assign(planted.items.begin() + static_cast<long>(first),
                     planted.items.begin() + static_cast<long>(last));
  }
  IngestConcurrently(*engine, thirds);

  engine->Flush();
  EXPECT_EQ(engine->ItemsProcessed(), planted.items.size());
  for (size_t p = 0; p < planted.planted_ids.size(); ++p) {
    EXPECT_EQ(engine->Estimate(planted.planted_ids[p]),
              static_cast<double>(planted.planted_counts[p]));
  }
  EXPECT_TRUE(Reported(engine->HeavyHitters(0.05), planted.planted_ids[0]));
}

// --------------------------------------------------------------------------
// Restore honors exec.max_producers (the checkpoint clock test lives in
// sharded_engine_test; here only the slot plumbing).

TEST(MultiProducerTest, RestoreGrantsProducerSlotsFromExecOptions) {
  const std::string dir =
      testing::TempDir() + "/multi_producer_restore_ckpt";
  {
    auto engine = ShardedEngine::Create(GridOptions("exact", 2, 1, 1000));
    ASSERT_NE(engine, nullptr);
    engine->Update(9, 5);
    ASSERT_TRUE(engine->Checkpoint(dir).ok());
  }
  ShardedEngineOptions exec;
  exec.max_producers = 3;  // two external slots, regardless of the source
  Status status;
  auto restored = ShardedEngine::Restore(dir, exec, &status);
  ASSERT_NE(restored, nullptr) << status.ToString();
  EXPECT_EQ(restored->max_producers(), 3u);
  auto a = restored->RegisterProducer(&status);
  ASSERT_NE(a, nullptr);
  auto b = restored->RegisterProducer(&status);
  ASSERT_NE(b, nullptr);
  a->Update(9, 2);
  b->Update(9, 3);
  a.reset();
  b.reset();
  restored->Flush();
  EXPECT_EQ(restored->Estimate(9), 10.0);
}

}  // namespace
}  // namespace l1hh
