#include <gtest/gtest.h>

#include "stream/stream_generator.h"
#include "summary/exact_counter.h"
#include "summary/lossy_counting.h"
#include "summary/sticky_sampling.h"
#include "util/random.h"

namespace l1hh {
namespace {

// Lossy Counting guarantee: estimates undercount by at most eps*m and
// every item with f >= eps*m is retained.
TEST(LossyCountingTest, UndercountBounded) {
  const double eps = 0.01;
  LossyCounting lc(eps);
  ExactCounter exact;
  const uint64_t m = 100000;
  const auto stream = MakeZipfStream(1 << 14, 1.1, m, 3);
  for (const uint64_t x : stream) {
    lc.Insert(x);
    exact.Insert(x);
  }
  for (uint64_t x = 0; x < 3000; ++x) {
    const uint64_t est = lc.Estimate(x);
    const uint64_t truth = exact.Count(x);
    EXPECT_LE(est, truth);
    if (truth > static_cast<uint64_t>(eps * m)) {
      EXPECT_GT(est, 0u) << "heavy item " << x << " dropped";
      EXPECT_LE(truth - est, static_cast<uint64_t>(eps * m) + 1);
    }
  }
}

TEST(LossyCountingTest, SpaceStaysBounded) {
  const double eps = 0.01;
  LossyCounting lc(eps);
  Rng rng(1);
  for (int i = 0; i < 200000; ++i) lc.Insert(rng.UniformU64(1 << 20));
  // Classic bound: at most (1/eps) log(eps m) entries.
  const double bound = (1.0 / eps) * std::log(eps * 200000) * 1.5 + 10;
  EXPECT_LE(static_cast<double>(lc.tracked()), bound);
}

TEST(LossyCountingTest, EntriesAboveFindsPlanted) {
  const PlantedSpec spec{{0.2, 0.1}, 1 << 16, 50000};
  const PlantedStream s = MakePlantedStream(spec, 5);
  LossyCounting lc(0.02);
  for (const uint64_t x : s.items) lc.Insert(x);
  const auto heavy = lc.EntriesAbove(static_cast<uint64_t>(0.05 * 50000));
  bool found0 = false, found1 = false;
  for (const auto& e : heavy) {
    if (e.item == s.planted_ids[0]) found0 = true;
    if (e.item == s.planted_ids[1]) found1 = true;
  }
  EXPECT_TRUE(found0);
  EXPECT_TRUE(found1);
}

TEST(LossyCountingTest, SerializeRoundTrip) {
  Rng rng(2);
  LossyCounting lc(0.05);
  for (int i = 0; i < 30000; ++i) lc.Insert(rng.UniformU64(400));
  BitWriter w;
  lc.Serialize(w);
  BitReader r(w);
  const LossyCounting lc2 = LossyCounting::Deserialize(r);
  for (uint64_t x = 0; x < 400; ++x) {
    EXPECT_EQ(lc2.Estimate(x), lc.Estimate(x));
  }
}

TEST(StickySamplingTest, HeavyItemsReportedWithUndercount) {
  const double eps = 0.01, support = 0.05, delta = 0.05;
  StickySampling st(eps, support, delta, 7);
  ExactCounter exact;
  const PlantedSpec spec{{0.2, 0.1, 0.07}, 1 << 16, 80000};
  const PlantedStream s = MakePlantedStream(spec, 11);
  for (const uint64_t x : s.items) {
    st.Insert(x);
    exact.Insert(x);
  }
  const uint64_t m = 80000;
  const auto reported =
      st.EntriesAbove(static_cast<uint64_t>(support * m));
  for (size_t i = 0; i < s.planted_ids.size(); ++i) {
    bool found = false;
    for (const auto& e : reported) {
      if (e.item == s.planted_ids[i]) {
        found = true;
        // Sticky sampling never overcounts.
        EXPECT_LE(e.count, exact.Count(e.item));
      }
    }
    EXPECT_TRUE(found) << "planted " << i;
  }
}

TEST(StickySamplingTest, SpaceIndependentOfStreamLength) {
  const double eps = 0.02, support = 0.05, delta = 0.1;
  StickySampling a(eps, support, delta, 1);
  StickySampling b(eps, support, delta, 1);
  Rng rng(9);
  for (int i = 0; i < 20000; ++i) a.Insert(rng.UniformU64(1 << 18));
  Rng rng2(9);
  for (int i = 0; i < 200000; ++i) b.Insert(rng2.UniformU64(1 << 18));
  // 10x the stream should not mean 10x the entries (expected 2/eps * t).
  EXPECT_LE(b.tracked(), 4 * a.tracked() + 200);
}

TEST(StickySamplingTest, EstimateNeverOvercounts) {
  StickySampling st(0.05, 0.1, 0.1, 3);
  ExactCounter exact;
  Rng rng(4);
  for (int i = 0; i < 50000; ++i) {
    const uint64_t x = rng.UniformU64(100);
    st.Insert(x);
    exact.Insert(x);
  }
  for (uint64_t x = 0; x < 100; ++x) {
    EXPECT_LE(st.Estimate(x), exact.Count(x));
  }
}

}  // namespace
}  // namespace l1hh
