// Parameterized contract test: every structure registered in the Summary
// factory is driven through the same Zipf-stream harness and must satisfy
// the (eps, phi)-List heavy hitters contract (Definition 1 of the paper):
//   * recall  — every item with f > phi*m appears in HeavyHitters(phi);
//   * precision — nothing reported has f < (phi - eps)*m;
//   * estimates of true heavy items are within ~eps*m of the truth;
// plus the interface's own invariants (batch==loop, weighted==repeated,
// merge-where-supported, memory accounting).
//
// Everything runs with fixed seeds, so the randomized structures are
// deterministic here; the probabilistic guarantees themselves are
// exercised over trial batteries in the accuracy benches.
#include "summary/summary.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "stream/stream_generator.h"
#include "summary/exact_counter.h"

namespace l1hh {
namespace {

constexpr double kEpsilon = 0.02;
constexpr double kPhi = 0.05;
constexpr uint64_t kUniverse = uint64_t{1} << 20;
constexpr uint64_t kStreamLength = 100000;

class SummaryInterfaceTest : public testing::TestWithParam<std::string> {
 protected:
  static SummaryOptions Options(uint64_t stream_length = kStreamLength) {
    SummaryOptions opt;
    opt.epsilon = kEpsilon;
    opt.phi = kPhi;
    opt.delta = 0.05;
    opt.universe_size = kUniverse;
    opt.stream_length = stream_length;
    opt.seed = 7;
    return opt;
  }

  static std::unique_ptr<Summary> Make(uint64_t stream_length = kStreamLength) {
    auto summary = MakeSummary(GetParam(), Options(stream_length));
    EXPECT_NE(summary, nullptr) << GetParam();
    return summary;
  }

  static const std::vector<uint64_t>& Stream() {
    static const std::vector<uint64_t>* stream = new std::vector<uint64_t>(
        MakeZipfStream(kUniverse, /*alpha=*/1.3, kStreamLength, /*seed=*/3));
    return *stream;
  }

  static const ExactCounter& Truth() {
    static const ExactCounter* exact = [] {
      auto* e = new ExactCounter();
      for (const uint64_t x : Stream()) e->Insert(x);
      return e;
    }();
    return *exact;
  }

  static bool Reported(const std::vector<ItemEstimate>& report,
                       uint64_t item) {
    return std::any_of(
        report.begin(), report.end(),
        [item](const ItemEstimate& e) { return e.item == item; });
  }
};

TEST_P(SummaryInterfaceTest, FactoryReportsItsOwnName) {
  auto summary = Make();
  EXPECT_EQ(summary->Name(), GetParam());
}

TEST_P(SummaryInterfaceTest, RecallAndPrecisionOnZipfStream) {
  auto summary = Make();
  summary->UpdateBatch(Stream());
  EXPECT_EQ(summary->ItemsProcessed(), kStreamLength);

  const double m = static_cast<double>(kStreamLength);
  const auto report = summary->HeavyHitters(kPhi);

  // Recall: every true phi-heavy item is reported.
  for (const auto& t : Truth().HeavyHitters(
           static_cast<uint64_t>(kPhi * m) + 1)) {
    EXPECT_TRUE(Reported(report, t.item))
        << GetParam() << " missed item " << t.item << " with f=" << t.count;
  }
  // Precision: nothing below (phi - eps)*m is reported.
  for (const auto& r : report) {
    EXPECT_GE(static_cast<double>(Truth().Count(r.item)),
              (kPhi - kEpsilon) * m - 1.0)
        << GetParam() << " reported light item " << r.item;
  }
}

TEST_P(SummaryInterfaceTest, EstimatesOfHeavyItemsWithinContract) {
  auto summary = Make();
  summary->UpdateBatch(Stream());
  const double m = static_cast<double>(kStreamLength);
  for (const auto& t : Truth().HeavyHitters(
           static_cast<uint64_t>(kPhi * m) + 1)) {
    // The per-structure contracts are all "within eps*m" (some w.h.p.);
    // allow 1.5x for the sampling-based estimators' fixed-seed noise.
    EXPECT_NEAR(summary->Estimate(t.item), static_cast<double>(t.count),
                1.5 * kEpsilon * m)
        << GetParam() << " item " << t.item;
  }
}

TEST_P(SummaryInterfaceTest, UpdateBatchMatchesUpdateLoop) {
  auto batched = Make();
  auto looped = Make();
  batched->UpdateBatch(Stream());
  for (const uint64_t x : Stream()) looped->Update(x);

  EXPECT_EQ(batched->ItemsProcessed(), looped->ItemsProcessed());
  const auto a = batched->HeavyHitters(kPhi);
  const auto b = looped->HeavyHitters(kPhi);
  ASSERT_EQ(a.size(), b.size()) << GetParam();
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].item, b[i].item) << GetParam();
    EXPECT_DOUBLE_EQ(a[i].estimate, b[i].estimate) << GetParam();
  }
}

TEST_P(SummaryInterfaceTest, WeightedUpdateMatchesRepeatedUpdate) {
  const uint64_t kWeight = 5;
  const uint64_t kItem = 42;
  auto weighted = Make(2 * kWeight);
  auto repeated = Make(2 * kWeight);
  weighted->Update(kItem, kWeight);
  for (uint64_t i = 0; i < kWeight; ++i) repeated->Update(kItem);
  EXPECT_EQ(weighted->ItemsProcessed(), repeated->ItemsProcessed())
      << GetParam();
  EXPECT_DOUBLE_EQ(weighted->Estimate(kItem), repeated->Estimate(kItem))
      << GetParam();
}

TEST_P(SummaryInterfaceTest, MemoryUsageIsPositiveAndSublinearIshForSketches) {
  auto summary = Make();
  summary->UpdateBatch(Stream());
  EXPECT_GT(summary->MemoryUsageBytes(), 0u) << GetParam();
}

TEST_P(SummaryInterfaceTest, MergeCombinesDisjointHalves) {
  auto summary = Make();
  if (!summary->SupportsMerge()) {
    GTEST_SKIP() << GetParam() << " does not support Merge";
  }
  auto left = Make();
  auto right = Make();
  const auto& stream = Stream();
  const size_t half = stream.size() / 2;
  left->UpdateBatch({stream.data(), half});
  right->UpdateBatch({stream.data() + half, stream.size() - half});
  ASSERT_TRUE(left->Merge(*right).ok()) << GetParam();

  const double m = static_cast<double>(kStreamLength);
  const auto report = left->HeavyHitters(kPhi);
  for (const auto& t : Truth().HeavyHitters(
           static_cast<uint64_t>(kPhi * m) + 1)) {
    EXPECT_TRUE(Reported(report, t.item))
        << GetParam() << " merge missed item " << t.item;
  }
}

TEST_P(SummaryInterfaceTest, MergeWithDifferentStructureFails) {
  auto summary = Make();
  if (!summary->SupportsMerge()) {
    GTEST_SKIP() << GetParam() << " does not support Merge";
  }
  // Any registered structure of a different type is incompatible.
  const std::string other_name =
      GetParam() == "misra_gries" ? "space_saving" : "misra_gries";
  auto other = MakeSummary(other_name, Options());
  ASSERT_NE(other, nullptr);
  EXPECT_FALSE(summary->Merge(*other).ok()) << GetParam();
}

// Same structure but different accuracy options must be rejected: merging
// a k=100 table into a k=10 contract would silently loosen eps.
TEST(SummaryMergeCompatTest, MismatchedOptionsRejected) {
  for (const char* name : {"misra_gries", "space_saving", "bdw_optimal"}) {
    SummaryOptions tight;
    tight.epsilon = 0.01;
    tight.stream_length = kStreamLength;
    SummaryOptions loose;
    loose.epsilon = 0.1;
    loose.stream_length = kStreamLength;
    auto a = MakeSummary(name, tight);
    auto b = MakeSummary(name, loose);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_FALSE(a->Merge(*b).ok()) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllRegistered, SummaryInterfaceTest,
    testing::ValuesIn(RegisteredSummaryNames()),
    [](const testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

}  // namespace
}  // namespace l1hh
