#include "core/epsilon_minimum.h"

#include <gtest/gtest.h>

#include "stream/stream_generator.h"
#include "summary/exact_counter.h"

namespace l1hh {
namespace {

EpsilonMinimum::Options MakeOptions(double eps, uint64_t n, uint64_t m) {
  EpsilonMinimum::Options opt;
  opt.epsilon = eps;
  opt.delta = 0.1;
  opt.universe_size = n;
  opt.stream_length = m;
  return opt;
}

TEST(EpsilonMinimumTest, LargeUniverseShortCircuits) {
  // n >> 1/eps: branch 1, no state, random answer is correct whp because
  // almost all items have frequency ~0.
  const auto opt = MakeOptions(0.1, /*n=*/1 << 20, /*m=*/10000);
  EpsilonMinimum sketch(opt, 1);
  for (uint64_t i = 0; i < 10000; ++i) sketch.Insert(i % 100);
  const auto r = sketch.Report();
  EXPECT_EQ(r.branch, EpsilonMinimum::ReportBranch::kLargeUniverse);
  EXPECT_LT(sketch.SpaceBits(), 64u);
}

TEST(EpsilonMinimumTest, UnseenItemWins) {
  // Universe of 16, but only items 0..14 ever occur: item 15 has f = 0 and
  // must be found via the S1 bit vector (branch 2).  eps = 0.05 keeps
  // n = 16 under the branch-1 cutoff 1/((1-delta) eps) = 22.
  const uint64_t m = 50000;
  const auto opt = MakeOptions(0.05, /*n=*/16, m);
  EpsilonMinimum sketch(opt, 3);
  for (uint64_t i = 0; i < m; ++i) sketch.Insert(i % 15);
  const auto r = sketch.Report();
  EXPECT_EQ(r.item, 15u);
  EXPECT_EQ(r.branch, EpsilonMinimum::ReportBranch::kUnsampledItem);
}

// Contract (Definition 5): reported item's frequency within eps*m of the
// true minimum, over trials.
TEST(EpsilonMinimumTest, MinimumContractSmallUniverse) {
  const double eps = 0.05;
  const uint64_t n = 12;
  const uint64_t m = 60000;
  int failures = 0;
  const int trials = 15;
  for (int t = 0; t < trials; ++t) {
    Rng rng(100 + t);
    // Skewed frequencies over a tiny universe; every item occurs.
    std::vector<uint64_t> stream;
    stream.reserve(m);
    for (uint64_t i = 0; i < m; ++i) {
      const uint64_t r = rng.UniformU64(100);
      // item k gets roughly (k+1)/78 of the mass.
      uint64_t x = 0;
      uint64_t acc = 0;
      for (uint64_t k = 0; k < n; ++k) {
        acc += k + 1;
        if (r * 78 < acc * 100) {
          x = k;
          break;
        }
      }
      stream.push_back(x);
    }
    EpsilonMinimum sketch(MakeOptions(eps, n, m), 200 + t);
    ExactCounter exact;
    for (const uint64_t x : stream) {
      sketch.Insert(x);
      exact.Insert(x);
    }
    const auto r = sketch.Report();
    const uint64_t truth_min = exact.MinOverUniverse(n).count;
    const uint64_t mine = exact.Count(r.item);
    if (mine > truth_min + static_cast<uint64_t>(eps * m)) ++failures;
  }
  EXPECT_LE(failures, 3);
}

TEST(EpsilonMinimumTest, FewDistinctUsesExactBranch) {
  // Tiny eps so the distinct threshold is large: branch 3 (S2).
  const double eps = 0.02;
  const uint64_t n = 8;
  const uint64_t m = 30000;
  EpsilonMinimum sketch(MakeOptions(eps, n, m), 5);
  ExactCounter exact;
  Rng rng(6);
  for (uint64_t i = 0; i < m; ++i) {
    // Item 7 is rare (~0.5%), others uniform.
    const uint64_t x = rng.UniformU64(200) == 0
                           ? 7
                           : rng.UniformU64(7);
    sketch.Insert(x);
    exact.Insert(x);
  }
  const auto r = sketch.Report();
  EXPECT_EQ(r.branch, EpsilonMinimum::ReportBranch::kFewDistinct);
  EXPECT_EQ(r.item, 7u);
}

TEST(EpsilonMinimumTest, TruncatedBranchFiresWhenManyDistinct) {
  // eps = 0.065: n = 16 stays below the branch-1 cutoff (17.1), while the
  // distinct threshold 1/(eps ln(1/eps)) ~ 5.6 < 16 distinct items shuts
  // off S2, forcing branch 4 — as long as every universe item occurs (so
  // branch 2 can't fire either).
  const double eps = 0.065;
  const uint64_t n = 16;
  const uint64_t m = 60000;
  EpsilonMinimum sketch(MakeOptions(eps, n, m), 7);
  for (uint64_t i = 0; i < m; ++i) sketch.Insert(i % n);
  EXPECT_GT(sketch.distinct_items(), 0u);
  const auto r = sketch.Report();
  // With p1 ~ 1 every item lands in S1, so we reach S3.
  EXPECT_EQ(r.branch, EpsilonMinimum::ReportBranch::kTruncatedCounters);
  EXPECT_LT(r.item, n);
}

TEST(EpsilonMinimumTest, TruncationCapIsPolylog) {
  const auto opt = MakeOptions(0.05, 16, 1 << 20);
  EpsilonMinimum sketch(opt, 9);
  // Cap is polylog(1/(eps delta)) — each S3 counter needs only
  // O(log log) bits — and in particular far below the stream length.
  EXPECT_LT(sketch.truncation_cap(), 1u << 18);
  EXPECT_GE(sketch.truncation_cap(), 16u);
  // Growing m by 16x must not move the cap (it is m-independent).
  const auto opt2 = MakeOptions(0.05, 16, 1 << 24);
  EpsilonMinimum sketch2(opt2, 10);
  EXPECT_EQ(sketch.truncation_cap(), sketch2.truncation_cap());
}

TEST(EpsilonMinimumTest, SerializeRoundTripAndResume) {
  const uint64_t n = 10, m = 20000;
  EpsilonMinimum alice(MakeOptions(0.05, n, m), 11);
  for (uint64_t i = 0; i < m / 2; ++i) alice.Insert(i % (n - 1));
  BitWriter w;
  alice.Serialize(w);
  BitReader r(w);
  EpsilonMinimum bob = EpsilonMinimum::Deserialize(r, 13);
  for (uint64_t i = 0; i < m / 2; ++i) bob.Insert(i % (n - 1));
  // Item n-1 never occurred.
  EXPECT_EQ(bob.Report().item, n - 1);
}

TEST(EpsilonMinimumTest, LargeUniverseSerializeRoundTrip) {
  const auto opt = MakeOptions(0.1, /*n=*/1 << 20, /*m=*/10000);
  EpsilonMinimum alice(opt, 21);
  for (int i = 0; i < 100; ++i) alice.Insert(static_cast<uint64_t>(i));
  ASSERT_EQ(alice.Report().branch,
            EpsilonMinimum::ReportBranch::kLargeUniverse);
  BitWriter w;
  alice.Serialize(w);
  BitReader r(w);
  const EpsilonMinimum bob = EpsilonMinimum::Deserialize(r, 22);
  EXPECT_EQ(bob.Report().item, alice.Report().item);
  EXPECT_EQ(bob.Report().branch,
            EpsilonMinimum::ReportBranch::kLargeUniverse);
}

TEST(EpsilonMinimumTest, AllEqualFrequencies) {
  // Any answer is correct; just verify it terminates and returns in-range.
  const uint64_t n = 8, m = 16000;
  EpsilonMinimum sketch(MakeOptions(0.1, n, m), 15);
  for (uint64_t i = 0; i < m; ++i) sketch.Insert(i % n);
  EXPECT_LT(sketch.Report().item, n);
}

class MinimumEpsSweep : public ::testing::TestWithParam<double> {};

TEST_P(MinimumEpsSweep, ContractAcrossEps) {
  const double eps = GetParam();
  const uint64_t n = 10, m = 40000;
  int failures = 0;
  const int trials = 8;
  for (int t = 0; t < trials; ++t) {
    Rng rng(1000 + t);
    EpsilonMinimum sketch(MakeOptions(eps, n, m), 2000 + t);
    ExactCounter exact;
    for (uint64_t i = 0; i < m; ++i) {
      // Heavily skewed: item 0 rare.
      const uint64_t x = rng.UniformU64(1000) < 3 ? 0 : 1 + rng.UniformU64(9);
      sketch.Insert(x);
      exact.Insert(x);
    }
    const auto r = sketch.Report();
    const uint64_t truth_min = exact.MinOverUniverse(n).count;
    if (exact.Count(r.item) >
        truth_min + static_cast<uint64_t>(eps * m)) {
      ++failures;
    }
  }
  EXPECT_LE(failures, 2);
}

INSTANTIATE_TEST_SUITE_P(Sweep, MinimumEpsSweep,
                         ::testing::Values(0.02, 0.05, 0.1, 0.2));

}  // namespace
}  // namespace l1hh
