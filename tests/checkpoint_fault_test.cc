// Crash-safety contract of the checkpoint path (ctest label: io):
//
//   * a simulated crash at EVERY write point of a checkpoint — before the
//     tmp file, mid-tmp (torn), after the tmp but before the rename — for
//     every file in the generation, leaves a directory from which Restore
//     lands on the newest COMPLETE generation, answering exactly as it
//     did when that generation was written;
//   * stray .tmp leftovers are invisible to Restore and collected by the
//     next successful checkpoint;
//   * a manifest whose referenced files are missing (a "stale" higher
//     generation) falls back to the previous complete generation;
//   * an incremental checkpoint after touching 1 of K shards writes O(one
//     shard) bytes, not O(K);
//   * a chain of delta checkpoints restores to exactly the live engine's
//     answers;
//   * I/O failures surface as Status::IOError (with errno text), distinct
//     from Corruption (bad bytes) and InvalidArgument (caller bug).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "engine/sharded_engine.h"
#include "io/durable_file.h"
#include "io/snapshot.h"
#include "stream/stream_generator.h"
#include "util/status.h"
#include "window/sliding_window_summary.h"

namespace l1hh {
namespace {

SummaryOptions Options() {
  SummaryOptions o;
  o.epsilon = 0.02;
  o.phi = 0.05;
  o.delta = 0.1;
  o.universe_size = uint64_t{1} << 20;
  o.stream_length = 40000;
  o.seed = 11;
  return o;
}

std::vector<uint64_t> TestStream() {
  return MakeZipfStream(Options().universe_size, 1.2,
                        Options().stream_length, /*seed=*/5);
}

std::vector<uint64_t> ProbeIds(const std::vector<uint64_t>& stream) {
  std::vector<uint64_t> probes(
      stream.begin(),
      stream.begin() + std::min<size_t>(stream.size(), 64));
  probes.push_back(0);
  probes.push_back(Options().universe_size - 1);
  return probes;
}

void ExpectSameEngineAnswers(ShardedEngine& a, ShardedEngine& b,
                             const std::vector<uint64_t>& probes) {
  EXPECT_EQ(a.ItemsProcessed(), b.ItemsProcessed());
  for (const uint64_t id : probes) {
    EXPECT_EQ(a.Estimate(id), b.Estimate(id)) << "item " << id;
  }
  const auto ha = a.HeavyHitters(Options().phi);
  const auto hb = b.HeavyHitters(Options().phi);
  ASSERT_EQ(ha.size(), hb.size());
  for (size_t i = 0; i < ha.size(); ++i) {
    EXPECT_EQ(ha[i].item, hb[i].item);
    EXPECT_EQ(ha[i].estimate, hb[i].estimate);
  }
}

std::set<std::string> DirFiles(const std::string& dir) {
  std::set<std::string> names;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    names.insert(entry.path().filename().string());
  }
  return names;
}

uint64_t FileBytes(const std::string& path) {
  return static_cast<uint64_t>(std::filesystem::file_size(path));
}

// RAII disarm so a failed ASSERT cannot leave the injection armed for
// the next test.
struct FaultGuard {
  ~FaultGuard() { SetDurableWriteFailure(DurableFailMode::kNone, 0); }
};

// ---- The crash battery -------------------------------------------------

// Simulate a crash at every write point x every failure mode of a full
// checkpoint over a live directory.  After each crash, Restore must land
// on the last COMPLETE generation and answer exactly as it did then.
TEST(CheckpointFaultTest, CrashAtEveryWritePointRestoresLastGood) {
  FaultGuard guard;
  const auto stream = TestStream();
  const size_t half = stream.size() / 2;
  ShardedEngineOptions opt;
  opt.algorithm = "space_saving";
  opt.summary = Options();
  opt.num_shards = 3;
  Status status;
  auto engine = ShardedEngine::Create(opt, &status);
  ASSERT_NE(engine, nullptr) << status.ToString();

  const std::string dir = testing::TempDir() + "/fault_battery";
  std::filesystem::remove_all(dir);
  engine->UpdateBatch({stream.data(), half});
  ASSERT_TRUE(engine->Checkpoint(dir).ok());

  // The reference: what generation 1 answers.
  auto reference = ShardedEngine::Restore(dir, &status);
  ASSERT_NE(reference, nullptr) << status.ToString();
  const auto probes = ProbeIds(stream);

  // More ingest, so generation 2 would genuinely differ from 1.
  engine->UpdateBatch({stream.data() + half, stream.size() - half});

  // A full checkpoint writes num_shards shard files + 1 manifest.  Crash
  // at every one of those write points, in every mode.
  const int write_points = static_cast<int>(opt.num_shards) + 1;
  for (const DurableFailMode mode :
       {DurableFailMode::kBeforeTmp, DurableFailMode::kPartialTmp,
        DurableFailMode::kAfterTmp}) {
    for (int crash_at = 0; crash_at < write_points; ++crash_at) {
      SetDurableWriteFailure(mode, crash_at);
      const Status failed = engine->Checkpoint(dir);
      SetDurableWriteFailure(DurableFailMode::kNone, 0);
      ASSERT_FALSE(failed.ok())
          << "mode " << static_cast<int>(mode) << " point " << crash_at;
      EXPECT_TRUE(failed.IsIOError()) << failed.ToString();

      // The directory must still restore — to generation 1's answers,
      // because no later manifest ever completed.
      auto recovered = ShardedEngine::Restore(dir, &status);
      ASSERT_NE(recovered, nullptr)
          << "mode " << static_cast<int>(mode) << " point " << crash_at
          << ": " << status.ToString();
      ExpectSameEngineAnswers(*reference, *recovered, probes);
    }
  }

  // With the injection disarmed the checkpoint completes, and Restore
  // now sees the full stream.
  ASSERT_TRUE(engine->Checkpoint(dir).ok());
  auto final_restore = ShardedEngine::Restore(dir, &status);
  ASSERT_NE(final_restore, nullptr) << status.ToString();
  ExpectSameEngineAnswers(*engine, *final_restore, probes);
  std::filesystem::remove_all(dir);
}

// Same battery over the INCREMENTAL path of a windowed engine: deltas
// and the manifest each get their crash, and the survivor is always the
// previous complete generation.
TEST(CheckpointFaultTest, CrashDuringDeltaCheckpointRestoresLastGood) {
  FaultGuard guard;
  const auto stream = TestStream();
  ShardedEngineOptions opt;
  opt.algorithm = "windowed:space_saving";
  opt.summary = Options();
  opt.summary.window_size = 16384;
  opt.summary.window_buckets = 8;
  opt.num_shards = 2;
  Status status;
  auto engine = ShardedEngine::Create(opt, &status);
  ASSERT_NE(engine, nullptr) << status.ToString();

  const std::string dir = testing::TempDir() + "/fault_battery_delta";
  std::filesystem::remove_all(dir);
  engine->UpdateBatch({stream.data(), 10000});
  ASSERT_TRUE(engine->Checkpoint(dir).ok());
  auto reference = ShardedEngine::Restore(dir, &status);
  ASSERT_NE(reference, nullptr) << status.ToString();
  const auto probes = ProbeIds(stream);

  engine->UpdateBatch({stream.data() + 10000, 3000});

  // Both shards are dirty (the window clock moved), so the delta
  // checkpoint writes 2 delta files + 1 manifest.
  const int write_points = static_cast<int>(opt.num_shards) + 1;
  for (const DurableFailMode mode :
       {DurableFailMode::kBeforeTmp, DurableFailMode::kPartialTmp,
        DurableFailMode::kAfterTmp}) {
    for (int crash_at = 0; crash_at < write_points; ++crash_at) {
      SetDurableWriteFailure(mode, crash_at);
      const Status failed = engine->CheckpointDelta(dir);
      SetDurableWriteFailure(DurableFailMode::kNone, 0);
      ASSERT_FALSE(failed.ok())
          << "mode " << static_cast<int>(mode) << " point " << crash_at;
      EXPECT_TRUE(failed.IsIOError()) << failed.ToString();

      auto recovered = ShardedEngine::Restore(dir, &status);
      ASSERT_NE(recovered, nullptr)
          << "mode " << static_cast<int>(mode) << " point " << crash_at
          << ": " << status.ToString();
      ExpectSameEngineAnswers(*reference, *recovered, probes);
    }
  }

  ASSERT_TRUE(engine->CheckpointDelta(dir).ok());
  auto final_restore = ShardedEngine::Restore(dir, &status);
  ASSERT_NE(final_restore, nullptr) << status.ToString();
  ExpectSameEngineAnswers(*engine, *final_restore, probes);
  std::filesystem::remove_all(dir);
}

// ---- Torn tmp files and stale manifests --------------------------------

TEST(CheckpointFaultTest, TornTmpLeftoversAreIgnoredAndCollected) {
  const auto stream = TestStream();
  ShardedEngineOptions opt;
  opt.algorithm = "misra_gries";
  opt.summary = Options();
  opt.num_shards = 2;
  Status status;
  auto engine = ShardedEngine::Create(opt, &status);
  ASSERT_NE(engine, nullptr) << status.ToString();

  const std::string dir = testing::TempDir() + "/torn_tmp";
  std::filesystem::remove_all(dir);
  engine->UpdateBatch(stream);
  ASSERT_TRUE(engine->Checkpoint(dir).ok());

  // Plant the wreckage an interrupted writer leaves: torn tmp files for
  // a would-be next generation.
  for (const char* name :
       {"MANIFEST.000002.tmp", "shard-0000.g000002.l1hh.tmp",
        "shard-0001.g000002.delta.tmp"}) {
    std::ofstream torn(dir + "/" + name, std::ios::binary);
    torn << "torn partial write";
  }

  // Restore never looks at them...
  auto restored = ShardedEngine::Restore(dir, &status);
  ASSERT_NE(restored, nullptr) << status.ToString();
  EXPECT_EQ(restored->ItemsProcessed(), stream.size());

  // ...and the next checkpoint's retention sweeps them out.
  ASSERT_TRUE(engine->Checkpoint(dir).ok());
  const auto files = DirFiles(dir);
  for (const std::string& name : files) {
    EXPECT_FALSE(name.ends_with(".tmp")) << "stray tmp survived: " << name;
  }
  std::filesystem::remove_all(dir);
}

TEST(CheckpointFaultTest, ManifestOverMissingFilesFallsBackToPreviousGen) {
  const auto stream = TestStream();
  ShardedEngineOptions opt;
  opt.algorithm = "windowed:space_saving";
  opt.summary = Options();
  opt.summary.window_size = 16384;
  opt.summary.window_buckets = 8;
  opt.num_shards = 2;
  Status status;
  auto engine = ShardedEngine::Create(opt, &status);
  ASSERT_NE(engine, nullptr) << status.ToString();

  const std::string dir = testing::TempDir() + "/stale_manifest";
  std::filesystem::remove_all(dir);
  engine->UpdateBatch({stream.data(), 10000});
  ASSERT_TRUE(engine->Checkpoint(dir).ok());
  const uint64_t gen1_items = engine->ItemsProcessed();

  engine->UpdateBatch({stream.data() + 10000, 3000});
  ASSERT_TRUE(engine->CheckpointDelta(dir).ok());

  // Lose generation 2's delta files (disk trouble after the manifest
  // landed).  The gen-2 manifest is now stale: it references files that
  // do not exist.
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.ends_with(".delta")) std::filesystem::remove(entry.path());
  }

  // Restore must fall back to generation 1, not fail and not lie.
  auto restored = ShardedEngine::Restore(dir, &status);
  ASSERT_NE(restored, nullptr) << status.ToString();
  EXPECT_EQ(restored->ItemsProcessed(), gen1_items);

  // A hand-planted far-future manifest over nonexistent files must not
  // shadow the real generations either.
  {
    std::ofstream stale(dir + "/MANIFEST.000042");
    stale << "l1hh-checkpoint v2\n"
          << "algorithm=windowed:space_saving\n"
          << "num_shards=2\n"
          << "generation=42\n"
          << "shard=0 1 0 shard-0000.g000042.l1hh\n"
          << "shard=1 1 0 shard-0001.g000042.l1hh\n";
  }
  restored = ShardedEngine::Restore(dir, &status);
  ASSERT_NE(restored, nullptr) << status.ToString();
  EXPECT_EQ(restored->ItemsProcessed(), gen1_items);
  std::filesystem::remove_all(dir);
}

// ---- Incrementality ----------------------------------------------------

// Touching 1 of K shards and delta-checkpointing writes bytes for that
// one shard plus a manifest — the clean shards' files are not rewritten.
TEST(CheckpointFaultTest, DeltaCheckpointWritesOneDirtyShardOnly) {
  const auto stream = TestStream();
  ShardedEngineOptions opt;
  opt.algorithm = "windowed:space_saving";
  opt.summary = Options();
  opt.summary.window_size = 40960;  // bucket width 5120: no rotation below
  opt.summary.window_buckets = 8;
  opt.num_shards = 4;
  Status status;
  auto engine = ShardedEngine::Create(opt, &status);
  ASSERT_NE(engine, nullptr) << status.ToString();

  const std::string dir = testing::TempDir() + "/delta_bytes";
  std::filesystem::remove_all(dir);
  engine->UpdateBatch({stream.data(), 12000});
  ASSERT_TRUE(engine->Checkpoint(dir).ok());
  const auto gen1_files = DirFiles(dir);
  uint64_t full_shard_bytes = ~uint64_t{0};
  for (const std::string& name : gen1_files) {
    if (name.ends_with(".l1hh")) {
      full_shard_bytes =
          std::min(full_shard_bytes, FileBytes(dir + "/" + name));
    }
  }

  // Touch ONE shard, few enough items that no bucket boundary is crossed
  // (so the other shards' clocks do not move).
  std::vector<uint64_t> shard0_items;
  for (uint64_t id = 0; shard0_items.size() < 100; ++id) {
    if (engine->ShardOf(id) == 0) shard0_items.push_back(id);
  }
  engine->UpdateBatch(shard0_items);
  ASSERT_TRUE(engine->CheckpointDelta(dir).ok());

  // Exactly two new files: shard 0's delta and the new manifest.
  const auto gen2_files = DirFiles(dir);
  std::vector<std::string> added;
  for (const std::string& name : gen2_files) {
    if (gen1_files.count(name) == 0) added.push_back(name);
  }
  ASSERT_EQ(added.size(), 2u) << "delta checkpoint rewrote clean shards";
  uint64_t delta_bytes = 0;
  bool saw_delta = false;
  for (const std::string& name : added) {
    if (name.ends_with(".delta")) {
      saw_delta = true;
      EXPECT_EQ(name.rfind("shard-0000.", 0), 0u) << name;
      delta_bytes = FileBytes(dir + "/" + name);
    } else {
      EXPECT_EQ(name.rfind("MANIFEST.", 0), 0u) << name;
    }
  }
  ASSERT_TRUE(saw_delta);
  // The one-bucket delta is strictly smaller than even the smallest full
  // shard snapshot (which carries all 8 buckets).
  EXPECT_LT(delta_bytes, full_shard_bytes);

  // And the chain restores to exactly the live answers.
  auto restored = ShardedEngine::Restore(dir, &status);
  ASSERT_NE(restored, nullptr) << status.ToString();
  ExpectSameEngineAnswers(*engine, *restored, ProbeIds(stream));
  std::filesystem::remove_all(dir);
}

// A plain (non-windowed) structure cannot delta, but incrementality
// still holds at file granularity: only the dirty shard is rewritten.
TEST(CheckpointFaultTest, PlainDeltaCheckpointRewritesOnlyDirtyShard) {
  const auto stream = TestStream();
  ShardedEngineOptions opt;
  opt.algorithm = "space_saving";
  opt.summary = Options();
  opt.num_shards = 4;
  Status status;
  auto engine = ShardedEngine::Create(opt, &status);
  ASSERT_NE(engine, nullptr) << status.ToString();

  const std::string dir = testing::TempDir() + "/plain_delta";
  std::filesystem::remove_all(dir);
  engine->UpdateBatch(stream);
  ASSERT_TRUE(engine->Checkpoint(dir).ok());
  const auto gen1_files = DirFiles(dir);

  std::vector<uint64_t> shard2_items;
  for (uint64_t id = 0; shard2_items.size() < 50; ++id) {
    if (engine->ShardOf(id) == 2) shard2_items.push_back(id);
  }
  engine->UpdateBatch(shard2_items);
  ASSERT_TRUE(engine->CheckpointDelta(dir).ok());

  std::vector<std::string> added;
  for (const std::string& name : DirFiles(dir)) {
    if (gen1_files.count(name) == 0) added.push_back(name);
  }
  ASSERT_EQ(added.size(), 2u);
  for (const std::string& name : added) {
    EXPECT_TRUE(name.rfind("shard-0002.", 0) == 0 ||
                name.rfind("MANIFEST.", 0) == 0)
        << name;
  }
  auto restored = ShardedEngine::Restore(dir, &status);
  ASSERT_NE(restored, nullptr) << status.ToString();
  ExpectSameEngineAnswers(*engine, *restored, ProbeIds(stream));
  std::filesystem::remove_all(dir);
}

// A chain of delta checkpoints across rotations restores exactly, round
// after round — including when the chain cap forces a full rewrite.
TEST(CheckpointFaultTest, DeltaChainRestoresExactlyAcrossRounds) {
  const auto stream = TestStream();
  ShardedEngineOptions opt;
  opt.algorithm = "windowed:misra_gries";
  opt.summary = Options();
  opt.summary.window_size = 4096;  // bucket width 512: chunks rotate
  opt.summary.window_buckets = 8;
  opt.num_shards = 2;
  Status status;
  auto engine = ShardedEngine::Create(opt, &status);
  ASSERT_NE(engine, nullptr) << status.ToString();

  const std::string dir = testing::TempDir() + "/delta_chain";
  std::filesystem::remove_all(dir);
  const auto probes = ProbeIds(stream);
  size_t pos = 0;
  ASSERT_TRUE(engine->Checkpoint(dir).ok());
  for (int round = 0; round < 6 && pos + 1500 <= stream.size(); ++round) {
    engine->UpdateBatch({stream.data() + pos, 1500});
    pos += 1500;
    ASSERT_TRUE(engine->CheckpointDelta(dir).ok()) << "round " << round;
    auto restored = ShardedEngine::Restore(dir, &status);
    ASSERT_NE(restored, nullptr)
        << "round " << round << ": " << status.ToString();
    ExpectSameEngineAnswers(*engine, *restored, probes);
  }
  // At least one generation actually used the delta path.
  bool saw_delta = false;
  for (const std::string& name : DirFiles(dir)) {
    if (name.ends_with(".delta")) saw_delta = true;
  }
  EXPECT_TRUE(saw_delta);
  std::filesystem::remove_all(dir);
}

// ---- Status taxonomy ---------------------------------------------------

TEST(CheckpointFaultTest, IOErrorIsDistinctFromCorruptionAndCallerBugs) {
  // Unwritable target: IOError with the errno text, not InvalidArgument.
  auto summary = MakeSummary("space_saving", Options());
  ASSERT_NE(summary, nullptr);
  const Status unwritable = SaveSummaryToFile(
      *summary, testing::TempDir() + "/no_such_dir_xyz/file.l1hh");
  EXPECT_TRUE(unwritable.IsIOError()) << unwritable.ToString();
  EXPECT_NE(unwritable.ToString().find("file.l1hh"), std::string::npos);

  // Unreadable source: IOError.
  Status status;
  EXPECT_EQ(LoadSummaryFromFile(testing::TempDir() + "/absent.l1hh", &status),
            nullptr);
  EXPECT_TRUE(status.IsIOError()) << status.ToString();

  // Bad bytes under a readable path: Corruption, NOT IOError.
  const std::string garbage_path = testing::TempDir() + "/garbage.l1hh";
  {
    std::ofstream garbage(garbage_path, std::ios::binary);
    garbage << "not a snapshot at all";
  }
  EXPECT_EQ(LoadSummaryFromFile(garbage_path, &status), nullptr);
  EXPECT_TRUE(status.IsCorruption()) << status.ToString();
  std::filesystem::remove(garbage_path);

  // An injected crash reports IOError too (it models a dying write).
  FaultGuard guard;
  SetDurableWriteFailure(DurableFailMode::kBeforeTmp, 0);
  const Status injected =
      SaveSummaryToFile(*summary, testing::TempDir() + "/injected.l1hh");
  SetDurableWriteFailure(DurableFailMode::kNone, 0);
  EXPECT_TRUE(injected.IsIOError()) << injected.ToString();
}

// ---- Delta container unit surface --------------------------------------

TEST(CheckpointFaultTest, DeltaContainerRoundTripsAndRefusesWrongBase) {
  SummaryOptions opt = Options();
  opt.window_size = 4096;
  opt.window_buckets = 8;
  const auto stream = TestStream();

  auto live = MakeSummary("windowed:space_saving", opt);
  ASSERT_NE(live, nullptr);
  live->UpdateBatch({stream.data(), 3000});

  // Clone the base via a full snapshot.
  std::vector<uint8_t> base_bytes;
  ASSERT_TRUE(SaveSummary(*live, &base_bytes).ok());
  Status status;
  auto follower = LoadSummary(base_bytes, &status);
  ASSERT_NE(follower, nullptr) << status.ToString();
  const auto* base_window =
      dynamic_cast<const SlidingWindowSummary*>(follower.get());
  ASSERT_NE(base_window, nullptr);
  const uint64_t base_rotations = base_window->rotations();
  const uint64_t base_items = follower->ItemsProcessed();

  // Advance the live side across a couple of rotations and delta.
  live->UpdateBatch({stream.data() + 3000, 1200});
  std::vector<uint8_t> delta_bytes;
  ASSERT_TRUE(
      SaveSummaryDelta(*live, base_rotations, base_items, &delta_bytes).ok());
  EXPECT_LT(delta_bytes.size(), base_bytes.size());

  // Applying to the exact base catches the follower up bit-exactly.
  ASSERT_TRUE(ApplySummaryDelta(delta_bytes, follower.get()).ok());
  EXPECT_EQ(follower->ItemsProcessed(), live->ItemsProcessed());
  for (const uint64_t id : ProbeIds(stream)) {
    EXPECT_EQ(follower->Estimate(id), live->Estimate(id)) << "item " << id;
  }

  // Applying the same delta AGAIN is a wrong-base Corruption, not a
  // silent double-count.
  const Status reapplied = ApplySummaryDelta(delta_bytes, follower.get());
  EXPECT_TRUE(reapplied.IsCorruption()) << reapplied.ToString();

  // A non-windowed structure cannot source or sink deltas.
  auto plain = MakeSummary("space_saving", Options());
  ASSERT_NE(plain, nullptr);
  std::vector<uint8_t> unused;
  EXPECT_TRUE(SaveSummaryDelta(*plain, 0, 0, &unused).IsFailedPrecondition());
  EXPECT_FALSE(ApplySummaryDelta(delta_bytes, plain.get()).ok());

  // A tail spanning the whole ring is "write a full snapshot instead".
  auto wrapped = MakeSummary("windowed:space_saving", opt);
  ASSERT_NE(wrapped, nullptr);
  wrapped->UpdateBatch({stream.data(), 8000});  // > 8 rotations past base 0
  EXPECT_TRUE(SaveSummaryDelta(*wrapped, 0, 0, &unused).IsInvalidArgument());

  // Flipping a payload bit is a CRC Corruption before anything mutates.
  std::vector<uint8_t> corrupt = delta_bytes;
  corrupt[corrupt.size() / 2] ^= 0x10;
  auto pristine = LoadSummary(base_bytes, &status);
  ASSERT_NE(pristine, nullptr);
  const Status refused = ApplySummaryDelta(corrupt, pristine.get());
  EXPECT_TRUE(refused.IsCorruption()) << refused.ToString();
  EXPECT_EQ(pristine->ItemsProcessed(), base_items);
}

}  // namespace
}  // namespace l1hh
