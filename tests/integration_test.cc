// End-to-end scenarios crossing module boundaries: generators -> core
// algorithms -> reports, on the workloads the paper's introduction
// motivates (network flows, voting).
#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "core/bdw_optimal.h"
#include "core/bdw_simple.h"
#include "core/epsilon_maximum.h"
#include "core/epsilon_minimum.h"
#include "core/borda.h"
#include "core/maximin.h"
#include "core/unknown_length.h"
#include "stream/stream_generator.h"
#include "stream/vote_generator.h"
#include "summary/count_min_sketch.h"
#include "summary/exact_counter.h"
#include "summary/misra_gries.h"
#include "summary/space_saving.h"
#include "votes/election.h"

namespace l1hh {
namespace {

// "Elephant flow detection": heavy-tailed traffic, all five sketch families
// must agree on the elephants.
TEST(IntegrationTest, AllSketchesAgreeOnElephants) {
  const uint64_t m = 100000;
  const double phi = 0.1, eps = 0.02;
  const PlantedSpec spec{{0.3, 0.15}, uint64_t{1} << 32, m};
  const PlantedStream s = MakePlantedStream(spec, 1);

  BdwSimple::Options so;
  so.epsilon = eps;
  so.phi = phi;
  so.universe_size = uint64_t{1} << 32;
  so.stream_length = m;
  BdwSimple simple(so, 2);

  BdwOptimal::Options oo;
  oo.epsilon = eps;
  oo.phi = phi;
  oo.universe_size = uint64_t{1} << 32;
  oo.stream_length = m;
  BdwOptimal optimal(oo, 3);

  MisraGries mg(static_cast<size_t>(2 / eps), 32);
  SpaceSaving ss(static_cast<size_t>(2 / eps), 32);
  CountMinSketch cms = CountMinSketch::ForError(eps / 2, 0.01, 4);

  for (const uint64_t x : s.items) {
    simple.Insert(x);
    optimal.Insert(x);
    mg.Insert(x);
    ss.Insert(x);
    cms.Insert(x);
  }

  const uint64_t threshold = static_cast<uint64_t>(phi * m);
  for (const uint64_t elephant : s.planted_ids) {
    bool in_simple = false, in_optimal = false;
    for (const auto& hh : simple.Report()) {
      if (hh.item == elephant) in_simple = true;
    }
    for (const auto& hh : optimal.Report()) {
      if (hh.item == elephant) in_optimal = true;
    }
    EXPECT_TRUE(in_simple);
    EXPECT_TRUE(in_optimal);
    EXPECT_GE(mg.Estimate(elephant) + m / (2 / eps + 1), threshold);
    EXPECT_GE(ss.Estimate(elephant), threshold);
    EXPECT_GE(cms.Estimate(elephant), threshold);
  }
}

// Streaming election: plurality (via eps-Maximum over top choices), Borda,
// and maximin all pick the planted winner.
TEST(IntegrationTest, StreamingElectionAllRulesAgree) {
  const uint32_t n = 8;
  const uint64_t m = 30000;
  const uint32_t winner = 5;
  const auto votes = MakePlantedWinnerVotes(n, m, winner, 0.45, 5);

  EpsilonMaximum::Options mo;
  mo.epsilon = 0.05;
  mo.universe_size = n;
  mo.stream_length = m;
  EpsilonMaximum plurality(mo, 6);

  StreamingBorda::Options bo;
  bo.epsilon = 0.05;
  bo.num_candidates = n;
  bo.stream_length = m;
  StreamingBorda borda(bo, 7);

  StreamingMaximin::Options xo;
  xo.epsilon = 0.1;
  xo.num_candidates = n;
  xo.stream_length = m;
  StreamingMaximin maximin(xo, 8);

  for (const auto& v : votes) {
    plurality.Insert(v.At(0));  // plurality sees only top choices
    borda.InsertVote(v);
    maximin.InsertVote(v);
  }
  EXPECT_EQ(plurality.Report().item, winner);
  EXPECT_EQ(borda.MaxScore().item, winner);
  EXPECT_EQ(maximin.MaxScore().item, winner);
}

// The "complaints portal": fewest-dislikes item via epsilon-Minimum, where
// dislikes arrive as a stream and one product has almost none.
TEST(IntegrationTest, FewestComplaintsProduct) {
  const uint64_t n_products = 10;
  const uint64_t m = 50000;
  EpsilonMinimum::Options opt;
  opt.epsilon = 0.05;
  opt.universe_size = n_products;
  opt.stream_length = m;
  EpsilonMinimum sketch(opt, 9);
  ExactCounter exact;
  Rng rng(10);
  for (uint64_t i = 0; i < m; ++i) {
    // Product 4 receives ~0.2% of complaints; the rest split the bulk.
    const uint64_t x =
        rng.UniformU64(500) == 0 ? 4 : (rng.UniformU64(9) >= 4 ? 1 : 0) +
                                           rng.UniformU64(9);
    const uint64_t clamped = std::min<uint64_t>(x, n_products - 1);
    sketch.Insert(clamped == 4 && x != 4 ? 5 : clamped);
    exact.Insert(clamped == 4 && x != 4 ? 5 : clamped);
  }
  const auto r = sketch.Report();
  const auto truth = exact.MinOverUniverse(n_products);
  EXPECT_LE(exact.Count(r.item),
            truth.count + static_cast<uint64_t>(0.05 * m));
}

// Unknown-length pipe: a long Zipf stream through the Theorem 7 wrapper,
// compared to the known-length sketch on the same data.
TEST(IntegrationTest, UnknownLengthMatchesKnownLength) {
  const double eps = 0.05, phi = 0.2;
  const uint64_t m = 150000;
  const auto stream = MakeZipfStream(1 << 16, 1.4, m, 11);

  BdwSimple::Options base;
  base.epsilon = eps;
  base.phi = phi;
  base.universe_size = uint64_t{1} << 20;
  base.stream_length = m;
  BdwSimple known(base, 12);

  BdwSimple::Options unknown_base = base;
  unknown_base.stream_length = 0;
  auto unknown =
      MakeUnknownLengthListHeavyHitters(unknown_base, 1 << 22, 13);

  ExactCounter exact;
  for (const uint64_t x : stream) {
    known.Insert(x);
    unknown.Insert(x);
    exact.Insert(x);
  }
  std::unordered_set<uint64_t> known_set, unknown_set;
  for (const auto& hh : known.Report()) known_set.insert(hh.item);
  for (const auto& hh : unknown.Reporter().Report()) {
    unknown_set.insert(hh.item);
  }
  // Must-report items appear in both.
  for (const auto& e : exact.SortedByCountDesc()) {
    if (e.count >= static_cast<uint64_t>((phi + eps) * m)) {
      EXPECT_TRUE(known_set.count(e.item) == 1);
      EXPECT_TRUE(unknown_set.count(e.item) == 1);
    }
  }
}

// Serialization interoperability: a sketch built on one "node" finishes on
// another, mimicking a router handing off to a collector.
TEST(IntegrationTest, HandoffAcrossSerialization) {
  const uint64_t m = 40000;
  BdwOptimal::Options opt;
  opt.epsilon = 0.05;
  opt.phi = 0.2;
  opt.universe_size = uint64_t{1} << 24;
  opt.stream_length = m;

  BdwOptimal node_a(opt, 14);
  const PlantedSpec spec{{0.4}, uint64_t{1} << 24, m};
  const PlantedStream s = MakePlantedStream(spec, 15);
  for (uint64_t i = 0; i < m / 2; ++i) node_a.Insert(s.items[i]);

  BitWriter wire;
  node_a.Serialize(wire);
  BitReader r(wire);
  BdwOptimal node_b = BdwOptimal::Deserialize(r, 16);
  for (uint64_t i = m / 2; i < m; ++i) node_b.Insert(s.items[i]);

  bool found = false;
  for (const auto& hh : node_b.Report()) {
    if (hh.item == s.planted_ids[0]) found = true;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace l1hh
