#include <gtest/gtest.h>

#include <cmath>
#include <unordered_map>
#include <vector>

#include "sampling/coin_flip_sampler.h"
#include "sampling/geometric_skip.h"
#include "sampling/reservoir_sampler.h"

namespace l1hh {
namespace {

TEST(CoinFlipSamplerTest, AcceptanceRateMatchesExponent) {
  // Lemma 1: accept with probability exactly 2^-k.
  Rng rng(1);
  for (int k : {1, 4, 7}) {
    const auto s = CoinFlipSampler::FromExponent(k);
    const int n = 400000;
    int hits = 0;
    for (int i = 0; i < n; ++i) {
      if (s.Sample(rng)) ++hits;
    }
    const double expected = std::ldexp(n, -k);
    EXPECT_NEAR(hits, expected, 6 * std::sqrt(expected));
  }
}

TEST(CoinFlipSamplerTest, FromProbabilityRoundsDownToPow2) {
  // Footnote 3: probability 0.3 becomes 1/4.
  const auto s = CoinFlipSampler::FromProbability(0.3);
  EXPECT_EQ(s.exponent(), 2);
  EXPECT_DOUBLE_EQ(s.probability(), 0.25);
}

TEST(CoinFlipSamplerTest, SpaceIsLogLog) {
  // Proposition 2: the sampler state is the exponent, O(log k) bits, i.e.
  // O(log log m) for p = 1/m.
  const auto s = CoinFlipSampler::FromProbability(1.0 / (1 << 30));
  EXPECT_EQ(s.exponent(), 30);
  EXPECT_LE(s.SpaceBits(), 6);
}

TEST(CoinFlipSamplerTest, RandomnessBudget) {
  // One trial at probability 2^-k consumes at most ceil(k/64) words.
  Rng rng(2);
  const auto s = CoinFlipSampler::FromExponent(10);
  const uint64_t before = rng.words_drawn();
  s.Sample(rng);
  EXPECT_LE(rng.words_drawn() - before, 1u);
}

TEST(CoinFlipSamplerTest, SerializeRoundTrip) {
  const auto s = CoinFlipSampler::FromExponent(13);
  BitWriter w;
  s.Serialize(w);
  BitReader r(w);
  CoinFlipSampler s2;
  s2.Deserialize(r);
  EXPECT_EQ(s2.exponent(), 13);
}

TEST(GeometricSkipTest, LongRunRateMatchesProbability) {
  Rng rng(3);
  for (int k : {1, 3, 6}) {
    auto s = GeometricSkipSampler::FromExponent(k, rng);
    const int n = 400000;
    int hits = 0;
    for (int i = 0; i < n; ++i) {
      if (s.Offer(rng)) ++hits;
    }
    const double expected = std::ldexp(n, -k);
    EXPECT_NEAR(hits, expected, 6 * std::sqrt(expected));
  }
}

TEST(GeometricSkipTest, GapsAreGeometric) {
  Rng rng(4);
  auto s = GeometricSkipSampler::FromExponent(4, rng);  // p = 1/16
  std::vector<int> gaps;
  int gap = 0;
  for (int i = 0; i < 200000; ++i) {
    if (s.Offer(rng)) {
      gaps.push_back(gap);
      gap = 0;
    } else {
      ++gap;
    }
  }
  double mean = 0;
  for (const int g : gaps) mean += g;
  mean /= static_cast<double>(gaps.size());
  // E[failures between successes] = (1-p)/p = 15.
  EXPECT_NEAR(mean, 15.0, 0.5);
}

TEST(GeometricSkipTest, ProbabilityOneSamplesEverything) {
  Rng rng(5);
  auto s = GeometricSkipSampler::FromProbability(1.0, rng);
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(s.Offer(rng));
}

TEST(GeometricSkipTest, SerializeRoundTripPreservesSkip) {
  Rng rng(6);
  auto s = GeometricSkipSampler::FromExponent(5, rng);
  for (int i = 0; i < 17; ++i) s.Offer(rng);
  BitWriter w;
  s.Serialize(w);
  BitReader r(w);
  GeometricSkipSampler s2;
  s2.Deserialize(r);
  EXPECT_EQ(s2.exponent(), s.exponent());
  // Both must agree on the next accepted offer position.
  Rng rng_a(7), rng_b(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(s.Offer(rng_a), s2.Offer(rng_b));
  }
}

TEST(ReservoirSamplerTest, HoldsAtMostCapacity) {
  ReservoirSampler s(10, 8);
  for (uint64_t i = 0; i < 1000; ++i) s.Offer(i);
  EXPECT_EQ(s.sample().size(), 10u);
  EXPECT_EQ(s.items_seen(), 1000u);
}

TEST(ReservoirSamplerTest, KeepsAllWhenUnderCapacity) {
  ReservoirSampler s(100, 9);
  for (uint64_t i = 0; i < 50; ++i) s.Offer(i);
  EXPECT_EQ(s.sample().size(), 50u);
}

TEST(ReservoirSamplerTest, UniformInclusion) {
  // Every item should appear with probability capacity/n.
  const int trials = 2000;
  const uint64_t n = 100;
  const size_t capacity = 10;
  std::unordered_map<uint64_t, int> inclusion;
  for (int t = 0; t < trials; ++t) {
    ReservoirSampler s(capacity, 1000 + t);
    for (uint64_t i = 0; i < n; ++i) s.Offer(i);
    for (const uint64_t v : s.sample()) ++inclusion[v];
  }
  const double expected = trials * static_cast<double>(capacity) / n;
  for (uint64_t i = 0; i < n; ++i) {
    EXPECT_NEAR(inclusion[i], expected, 6 * std::sqrt(expected));
  }
}

// Parameterized acceptance-rate sweep for the geometric-skip sampler.
class SkipRateSweep : public ::testing::TestWithParam<int> {};

TEST_P(SkipRateSweep, RateWithinTolerance) {
  const int k = GetParam();
  Rng rng(100 + k);
  auto s = GeometricSkipSampler::FromExponent(k, rng);
  const int n = 1 << 19;
  int hits = 0;
  for (int i = 0; i < n; ++i) {
    if (s.Offer(rng)) ++hits;
  }
  const double expected = std::ldexp(n, -k);
  EXPECT_NEAR(hits, expected, 6 * std::sqrt(expected) + 2);
}

INSTANTIATE_TEST_SUITE_P(Exponents, SkipRateSweep,
                         ::testing::Values(0, 1, 2, 4, 8, 12));

}  // namespace
}  // namespace l1hh
