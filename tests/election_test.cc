#include "votes/election.h"

#include <gtest/gtest.h>

#include "stream/vote_generator.h"
#include "util/random.h"

namespace l1hh {
namespace {

TEST(ElectionTest, SingleVoteBorda) {
  Election e(4);
  e.AddVote(Ranking({2, 0, 3, 1}));
  const auto scores = e.BordaScores();
  EXPECT_EQ(scores[2], 3u);
  EXPECT_EQ(scores[0], 2u);
  EXPECT_EQ(scores[3], 1u);
  EXPECT_EQ(scores[1], 0u);
}

TEST(ElectionTest, BordaTotalIsInvariant) {
  // Sum of Borda scores = m * n(n-1)/2 always.
  Rng rng(1);
  Election e(6);
  const uint64_t m = 500;
  for (uint64_t i = 0; i < m; ++i) e.AddVote(Ranking::Random(6, rng));
  uint64_t total = 0;
  for (const uint64_t s : e.BordaScores()) total += s;
  EXPECT_EQ(total, m * 6 * 5 / 2);
}

TEST(ElectionTest, PairwiseAntisymmetric) {
  Rng rng(2);
  Election e(5);
  const uint64_t m = 300;
  for (uint64_t i = 0; i < m; ++i) e.AddVote(Ranking::Random(5, rng));
  for (uint32_t i = 0; i < 5; ++i) {
    for (uint32_t j = i + 1; j < 5; ++j) {
      EXPECT_EQ(e.Pairwise(i, j) + e.Pairwise(j, i), m);
    }
  }
}

TEST(ElectionTest, BordaEqualsPairwiseSum) {
  // Borda(i) = sum_j != i Pairwise(i, j): a classical identity.
  Rng rng(3);
  Election e(7);
  for (int v = 0; v < 200; ++v) e.AddVote(Ranking::Random(7, rng));
  const auto borda = e.BordaScores();
  for (uint32_t i = 0; i < 7; ++i) {
    uint64_t sum = 0;
    for (uint32_t j = 0; j < 7; ++j) {
      if (j != i) sum += e.Pairwise(i, j);
    }
    EXPECT_EQ(borda[i], sum);
  }
}

TEST(ElectionTest, MaximinOfUnanimousElection) {
  Election e(4);
  for (int v = 0; v < 10; ++v) e.AddVote(Ranking({1, 0, 2, 3}));
  const auto mm = e.MaximinScores();
  EXPECT_EQ(mm[1], 10u);  // winner beats everyone in all votes
  EXPECT_EQ(mm[3], 0u);   // loser beats no one
  EXPECT_EQ(e.MaximinWinner(), 1u);
}

TEST(ElectionTest, CondorcetParadoxMaximin) {
  // Rock-paper-scissors profile: 3 candidates, cyclic majorities.
  Election e(3);
  e.AddVote(Ranking({0, 1, 2}));
  e.AddVote(Ranking({1, 2, 0}));
  e.AddVote(Ranking({2, 0, 1}));
  const auto mm = e.MaximinScores();
  // Perfect symmetry: every candidate's worst pairwise is 1.
  EXPECT_EQ(mm[0], 1u);
  EXPECT_EQ(mm[1], 1u);
  EXPECT_EQ(mm[2], 1u);
}

TEST(ElectionTest, PluralityAndVeto) {
  Election e(3);
  e.AddVote(Ranking({0, 1, 2}));
  e.AddVote(Ranking({0, 2, 1}));
  e.AddVote(Ranking({1, 0, 2}));
  EXPECT_EQ(e.PluralityScores()[0], 2u);
  EXPECT_EQ(e.PluralityScores()[1], 1u);
  EXPECT_EQ(e.VetoScores()[2], 2u);
  EXPECT_EQ(e.PluralityWinner(), 0u);
}

TEST(ElectionTest, PlantedWinnerWinsBorda) {
  const auto votes = MakePlantedWinnerVotes(8, 400, /*winner=*/5,
                                            /*boost=*/0.5, 7);
  Election e(8);
  for (const auto& v : votes) e.AddVote(v);
  EXPECT_EQ(e.BordaWinner(), 5u);
  EXPECT_EQ(e.MaximinWinner(), 5u);
}

}  // namespace
}  // namespace l1hh
