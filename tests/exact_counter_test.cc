#include "summary/exact_counter.h"

#include <gtest/gtest.h>

namespace l1hh {
namespace {

TEST(ExactCounterTest, CountsExactly) {
  ExactCounter c;
  c.Insert(1);
  c.Insert(1);
  c.Insert(2);
  EXPECT_EQ(c.Count(1), 2u);
  EXPECT_EQ(c.Count(2), 1u);
  EXPECT_EQ(c.Count(3), 0u);
  EXPECT_EQ(c.total(), 3u);
  EXPECT_EQ(c.distinct(), 2u);
}

TEST(ExactCounterTest, WeightedInsert) {
  ExactCounter c;
  c.Insert(5, 100);
  EXPECT_EQ(c.Count(5), 100u);
  EXPECT_EQ(c.total(), 100u);
}

TEST(ExactCounterTest, HeavyHittersThreshold) {
  ExactCounter c;
  c.Insert(1, 50);
  c.Insert(2, 30);
  c.Insert(3, 10);
  const auto hh = c.HeavyHitters(30);
  ASSERT_EQ(hh.size(), 2u);
  EXPECT_EQ(hh[0].item, 1u);
  EXPECT_EQ(hh[1].item, 2u);
}

TEST(ExactCounterTest, Max) {
  ExactCounter c;
  c.Insert(9, 7);
  c.Insert(4, 12);
  c.Insert(6, 3);
  EXPECT_EQ(c.Max().item, 4u);
  EXPECT_EQ(c.Max().count, 12u);
}

TEST(ExactCounterTest, MaxOnEmpty) {
  ExactCounter c;
  EXPECT_EQ(c.Max().count, 0u);
}

TEST(ExactCounterTest, MinOverUniversePrefersUnseen) {
  ExactCounter c;
  c.Insert(0, 5);
  c.Insert(1, 5);
  // Universe {0,1,2}: item 2 has frequency zero.
  const auto min_entry = c.MinOverUniverse(3);
  EXPECT_EQ(min_entry.item, 2u);
  EXPECT_EQ(min_entry.count, 0u);
}

TEST(ExactCounterTest, MinOverUniverseAllSeen) {
  ExactCounter c;
  c.Insert(0, 5);
  c.Insert(1, 2);
  c.Insert(2, 9);
  const auto min_entry = c.MinOverUniverse(3);
  EXPECT_EQ(min_entry.item, 1u);
  EXPECT_EQ(min_entry.count, 2u);
}

TEST(ExactCounterTest, SortedByCountDesc) {
  ExactCounter c;
  c.Insert(1, 3);
  c.Insert(2, 9);
  c.Insert(3, 6);
  const auto sorted = c.SortedByCountDesc();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].item, 2u);
  EXPECT_EQ(sorted[1].item, 3u);
  EXPECT_EQ(sorted[2].item, 1u);
}

}  // namespace
}  // namespace l1hh
