#include "summary/hashed_misra_gries.h"

#include <gtest/gtest.h>

#include "stream/stream_generator.h"
#include "summary/exact_counter.h"
#include "util/random.h"

namespace l1hh {
namespace {

HashedMisraGries Make(size_t counters, size_t top, uint64_t seed,
                      uint64_t range = 1 << 20) {
  Rng rng(seed);
  return HashedMisraGries(counters, top, UniversalHash::Draw(rng, range),
                          /*id_bits=*/32);
}

TEST(HashedMisraGriesTest, TracksTopTrueIds) {
  auto t = Make(32, 3, 1);
  // Three clear heavies plus noise.
  Rng rng(2);
  for (int i = 0; i < 3000; ++i) t.Insert(100);
  for (int i = 0; i < 2000; ++i) t.Insert(200);
  for (int i = 0; i < 1000; ++i) t.Insert(300);
  for (int i = 0; i < 500; ++i) t.Insert(rng.UniformU64(1 << 30));
  const auto top = t.TopEntries();
  ASSERT_GE(top.size(), 3u);
  EXPECT_EQ(top[0].item, 100u);
  EXPECT_EQ(top[1].item, 200u);
  EXPECT_EQ(top[2].item, 300u);
}

TEST(HashedMisraGriesTest, TopCapacityRespected) {
  auto t = Make(64, 2, 3);
  for (uint64_t x = 0; x < 10; ++x) {
    for (int c = 0; c < 100; ++c) t.Insert(x);
  }
  EXPECT_LE(t.TopEntries().size(), 2u);
}

TEST(HashedMisraGriesTest, LateRiserDisplacesWeaker) {
  auto t = Make(32, 1, 4);
  for (int i = 0; i < 100; ++i) t.Insert(1);
  for (int i = 0; i < 500; ++i) t.Insert(2);  // overtakes item 1
  const auto top = t.TopEntries();
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].item, 2u);
}

TEST(HashedMisraGriesTest, EstimateByHashMatchesInnerTable) {
  auto t = Make(16, 4, 5);
  for (int i = 0; i < 77; ++i) t.Insert(9);
  EXPECT_EQ(t.EstimateByHash(9), 77u);
}

TEST(HashedMisraGriesTest, CountsTrackTruthOnPlantedStream) {
  const PlantedSpec spec{{0.3, 0.2}, 1 << 20, 20000};
  const PlantedStream s = MakePlantedStream(spec, 6);
  auto t = Make(64, 4, 7, 1 << 24);
  ExactCounter exact;
  for (const uint64_t x : s.items) {
    t.Insert(x);
    exact.Insert(x);
  }
  for (const auto& e : t.TopEntries()) {
    // MG undercounts by at most m/(k+1); hashing adds nothing unless a
    // collision occurred (improbable at this range).
    EXPECT_LE(e.count, exact.Count(e.item) + 1);
    EXPECT_GE(e.count + 20000 / 65 + 1, exact.Count(e.item));
  }
}

TEST(HashedMisraGriesTest, SerializeRoundTrip) {
  auto t = Make(16, 3, 8);
  Rng rng(9);
  for (int i = 0; i < 5000; ++i) t.Insert(rng.UniformU64(50));
  BitWriter w;
  t.Serialize(w);
  BitReader r(w);
  const HashedMisraGries t2 = HashedMisraGries::Deserialize(r);
  const auto top1 = t.TopEntries();
  const auto top2 = t2.TopEntries();
  ASSERT_EQ(top1.size(), top2.size());
  for (size_t i = 0; i < top1.size(); ++i) {
    EXPECT_EQ(top1[i].item, top2[i].item);
    EXPECT_EQ(top1[i].count, top2[i].count);
  }
  for (uint64_t x = 0; x < 50; ++x) {
    EXPECT_EQ(t.EstimateByHash(x), t2.EstimateByHash(x));
  }
}

TEST(HashedMisraGriesTest, SpaceBitsChargesTopIdsAtLogN) {
  auto small = Make(16, 2, 10);
  auto large = Make(16, 20, 10);
  // T2 is charged id_bits per slot regardless of content.
  EXPECT_GT(large.SpaceBits(), small.SpaceBits());
  EXPECT_EQ(large.SpaceBits() - small.SpaceBits(), 18u * 32u);
}

}  // namespace
}  // namespace l1hh
