#include "count/compact_counter_array.h"

#include <gtest/gtest.h>

#include <vector>

#include "count/saturating_counter.h"
#include "util/random.h"

namespace l1hh {
namespace {

TEST(CompactCounterArrayTest, StartsAtZero) {
  CompactCounterArray a(100);
  for (size_t i = 0; i < 100; ++i) EXPECT_EQ(a.Get(i), 0u);
  EXPECT_EQ(a.Total(), 0u);
}

TEST(CompactCounterArrayTest, IncrementWithinNibble) {
  CompactCounterArray a(10);
  for (int i = 0; i < 14; ++i) a.Increment(3);
  EXPECT_EQ(a.Get(3), 14u);
  EXPECT_EQ(a.Get(2), 0u);
  EXPECT_EQ(a.Get(4), 0u);
}

TEST(CompactCounterArrayTest, OverflowsIntoSpill) {
  CompactCounterArray a(10);
  for (int i = 0; i < 1000; ++i) a.Increment(7);
  EXPECT_EQ(a.Get(7), 1000u);
  EXPECT_EQ(a.Total(), 1000u);
}

TEST(CompactCounterArrayTest, AddLargeDelta) {
  CompactCounterArray a(4);
  a.Add(0, 5);
  a.Add(0, 1000000);
  a.Add(1, 14);
  a.Add(1, 1);  // exactly to the nibble boundary
  EXPECT_EQ(a.Get(0), 1000005u);
  EXPECT_EQ(a.Get(1), 15u);
}

TEST(CompactCounterArrayTest, AdjacentNibblesIndependent) {
  CompactCounterArray a(16);
  for (size_t i = 0; i < 16; ++i) {
    for (size_t k = 0; k <= i; ++k) a.Increment(i);
  }
  for (size_t i = 0; i < 16; ++i) EXPECT_EQ(a.Get(i), i + 1);
}

TEST(CompactCounterArrayTest, MatchesReferenceOnRandomOps) {
  Rng rng(1);
  const size_t n = 257;
  CompactCounterArray a(n);
  std::vector<uint64_t> ref(n, 0);
  for (int op = 0; op < 100000; ++op) {
    const size_t i = rng.UniformU64(n);
    const uint64_t d = 1 + rng.UniformU64(20);
    a.Add(i, d);
    ref[i] += d;
  }
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(a.Get(i), ref[i]);
}

TEST(CompactCounterArrayTest, SpaceBitsGrowsWithContent) {
  CompactCounterArray a(64);
  const size_t empty_bits = a.SpaceBits();
  EXPECT_EQ(empty_bits, 64u);  // one bit per empty slot
  a.Add(0, 1000);
  EXPECT_GT(a.SpaceBits(), empty_bits);
}

TEST(CompactCounterArrayTest, SerializeRoundTrip) {
  Rng rng(2);
  CompactCounterArray a(50);
  for (int op = 0; op < 5000; ++op) a.Increment(rng.UniformU64(50));
  BitWriter w;
  a.Serialize(w);
  BitReader r(w);
  CompactCounterArray b;
  b.Deserialize(r);
  ASSERT_EQ(b.size(), a.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(b.Get(i), a.Get(i));
}

TEST(CompactCounterArrayTest, SparseSerializeRoundTrip) {
  Rng rng(5);
  CompactCounterArray a(300);
  for (int op = 0; op < 500; ++op) a.Increment(rng.UniformU64(40));
  BitWriter w;
  a.SerializeSparse(w);
  BitReader r(w);
  CompactCounterArray b;
  b.DeserializeSparse(r, a.size());
  ASSERT_FALSE(r.overflow());
  ASSERT_EQ(b.size(), a.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(b.Get(i), a.Get(i));
}

TEST(CompactCounterArrayTest, SparseSerializeSkipsZeroRuns) {
  // One nonzero cell in a huge, otherwise-empty array: the sparse
  // encoding must cost O(log size) bits, not one bit per empty cell
  // (which is what the dense message format pays).
  CompactCounterArray a(100000);
  a.Add(73611, 9);
  BitWriter sparse;
  a.SerializeSparse(sparse);
  EXPECT_LT(sparse.size_bits(), 128u);
  BitWriter dense;
  a.Serialize(dense);
  EXPECT_GT(dense.size_bits(), 100000u);
  BitReader r(sparse);
  CompactCounterArray b;
  b.DeserializeSparse(r, a.size());
  ASSERT_FALSE(r.overflow());
  EXPECT_EQ(b.Get(73611), 9u);
  EXPECT_EQ(b.Total(), 9u);
}

TEST(CompactCounterArrayTest, SparseDeserializeRejectsUnexpectedSize) {
  CompactCounterArray a(50);
  a.Add(3, 7);
  BitWriter w;
  a.SerializeSparse(w);
  BitReader r(w);
  CompactCounterArray b;
  // Wrong expectation: the payload's size field (50) must be refused
  // without allocating, leaving the reader in an overflow state.
  b.DeserializeSparse(r, 49);
  EXPECT_TRUE(r.overflow());
  EXPECT_EQ(b.size(), 0u);
}

TEST(CompactCounterArrayTest, ResetClears) {
  CompactCounterArray a(8);
  a.Add(2, 500);
  a.Reset(8);
  EXPECT_EQ(a.Get(2), 0u);
  EXPECT_EQ(a.Total(), 0u);
}

TEST(SaturatingCounterTest, CapsAtThreshold) {
  SaturatingCounter c(5);
  for (int i = 0; i < 100; ++i) c.Increment();
  EXPECT_EQ(c.value(), 5u);
  EXPECT_TRUE(c.saturated());
  EXPECT_EQ(c.SpaceBits(), 3);  // values in [0,5] fit in 3 bits
}

TEST(SaturatingCounterTest, ExactBelowCap) {
  SaturatingCounter c(100);
  for (int i = 0; i < 42; ++i) c.Increment();
  EXPECT_EQ(c.value(), 42u);
  EXPECT_FALSE(c.saturated());
}

}  // namespace
}  // namespace l1hh
