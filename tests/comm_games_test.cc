#include <gtest/gtest.h>

#include "comm/greater_than_game.h"
#include "comm/indexing_game.h"
#include "comm/maximin_game.h"
#include "comm/perm_game.h"

namespace l1hh {
namespace {

TEST(IndexingGameTest, HeavyHittersReductionSucceeds) {
  HeavyHittersIndexingParams p;
  p.epsilon = 0.05;
  p.phi = 0.25;
  p.stream_length = 100000;
  const GameStats stats =
      RepeatGame(RunHeavyHittersIndexingGame, p, /*trials=*/10, 1);
  // Theorem 9 requires success prob >= 1 - delta; allow sampling noise.
  EXPECT_GE(stats.success_rate(), 0.7);
  EXPECT_GT(stats.message_bits, 0u);
}

TEST(IndexingGameTest, HeavyHittersReductionWithAlgorithm1) {
  HeavyHittersIndexingParams p;
  p.epsilon = 0.05;
  p.phi = 0.25;
  p.stream_length = 100000;
  p.use_optimal = false;
  const GameStats stats =
      RepeatGame(RunHeavyHittersIndexingGame, p, /*trials=*/10, 2);
  EXPECT_GE(stats.success_rate(), 0.7);
}

TEST(IndexingGameTest, MessageGrowsWithOneOverEps) {
  // The Omega(eps^-1 log phi^-1) shape: quadrupling 1/eps must grow the
  // message substantially.
  HeavyHittersIndexingParams coarse, fine;
  coarse.epsilon = 0.1;
  coarse.phi = 0.3;
  coarse.stream_length = 50000;
  fine = coarse;
  fine.epsilon = 0.025;
  const GameResult rc = RunHeavyHittersIndexingGame(coarse, 3);
  const GameResult rf = RunHeavyHittersIndexingGame(fine, 3);
  EXPECT_GT(rf.message_bits, 2 * rc.message_bits);
}

TEST(IndexingGameTest, MaximumReductionSucceeds) {
  MaximumIndexingParams p;
  p.epsilon = 0.1;
  p.stream_length = 100000;
  const GameStats stats =
      RepeatGame(RunMaximumIndexingGame, p, /*trials=*/10, 4);
  EXPECT_GE(stats.success_rate(), 0.7);
}

TEST(IndexingGameTest, MinimumReductionSucceeds) {
  MinimumIndexingParams p;
  p.epsilon = 0.1;
  const GameStats stats =
      RepeatGame(RunMinimumIndexingGame, p, /*trials=*/20, 5);
  // This reduction is essentially deterministic at our parameters.
  EXPECT_GE(stats.success_rate(), 0.9);
}

TEST(IndexingGameTest, MinimumMessageLinearInOneOverEps) {
  MinimumIndexingParams small, large;
  small.epsilon = 0.2;   // t = 25
  large.epsilon = 0.05;  // t = 100
  const GameResult rs = RunMinimumIndexingGame(small, 6);
  const GameResult rl = RunMinimumIndexingGame(large, 6);
  EXPECT_GT(rl.message_bits, 2 * rs.message_bits);
}

TEST(GreaterThanGameTest, Succeeds) {
  GreaterThanParams p;
  p.max_exponent = 16;
  int successes = 0;
  const int trials = 8;
  for (int t = 0; t < trials; ++t) {
    const GameResult r = RunGreaterThanGame(p, 100 + t);
    if (r.success) ++successes;
    EXPECT_GT(r.message_bits, 0u);
  }
  EXPECT_GE(successes, trials - 2);
}

TEST(PermGameTest, DecodesBlocks) {
  PermGameParams p;
  p.n = 64;
  p.blocks = 8;
  int successes = 0;
  const int trials = 10;
  for (int t = 0; t < trials; ++t) {
    const GameResult r = RunPermGame(p, 200 + t);
    if (r.success) ++successes;
  }
  // Exact at these parameters (sampling rate 1).
  EXPECT_GE(successes, 9);
}

TEST(PermGameTest, MessageLinearInN) {
  PermGameParams small, large;
  small.n = 32;
  small.blocks = 8;
  large.n = 256;
  large.blocks = 8;
  const GameResult rs = RunPermGame(small, 7);
  const GameResult rl = RunPermGame(large, 7);
  // Omega(n log(1/eps)): n scaled 8x.
  EXPECT_GT(rl.message_bits, 4 * rs.message_bits);
}

TEST(MaximinGameTest, DecodesPlantedBit) {
  MaximinGameParams p;
  p.n = 32;
  p.gamma = 256;
  int successes = 0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    const GameResult r = RunMaximinGame(p, 300 + t);
    if (r.success) ++successes;
  }
  // Lemma 8 holds with probability ~0.84 per side; require > 2/3 overall.
  EXPECT_GE(successes, 14);
}

TEST(MaximinGameTest, MessageGrowsWithGamma) {
  MaximinGameParams small, large;
  small.n = 32;
  small.gamma = 64;
  large.n = 32;
  large.gamma = 512;  // 8x more votes = 8x the eps^-2 term
  const GameResult rs = RunMaximinGame(small, 8);
  const GameResult rl = RunMaximinGame(large, 8);
  EXPECT_GT(rl.message_bits, 4 * rs.message_bits);
}

}  // namespace
}  // namespace l1hh
