#include "stream/vote_generator.h"

#include <gtest/gtest.h>

#include "votes/election.h"

namespace l1hh {
namespace {

TEST(VoteGeneratorTest, UniformVotesValid) {
  const auto votes = MakeUniformVotes(10, 200, 1);
  ASSERT_EQ(votes.size(), 200u);
  for (const auto& v : votes) EXPECT_TRUE(v.IsValid());
}

TEST(VoteGeneratorTest, MallowsVotesValid) {
  const auto votes = MakeMallowsVotes(12, 100, 0.7, 2);
  for (const auto& v : votes) EXPECT_TRUE(v.IsValid());
}

TEST(VoteGeneratorTest, MallowsConcentratesAroundIdentity) {
  // Low dispersion => votes close to the identity ranking; candidate 0
  // should win Borda easily.
  const auto votes = MakeMallowsVotes(8, 500, 0.3, 3);
  Election e(8);
  for (const auto& v : votes) e.AddVote(v);
  EXPECT_EQ(e.BordaWinner(), 0u);
  const auto scores = e.BordaScores();
  // Scores should be monotone decreasing in candidate index (roughly);
  // check the extremes decisively.
  EXPECT_GT(scores[0], scores[7] * 2);
}

TEST(VoteGeneratorTest, MallowsDispersionOneIsUniformish) {
  const auto votes = MakeMallowsVotes(6, 3000, 1.0, 4);
  Election e(6);
  for (const auto& v : votes) e.AddVote(v);
  const auto scores = e.BordaScores();
  const double expected = 3000.0 * 5 / 2;  // mean Borda score
  for (const uint64_t s : scores) {
    EXPECT_NEAR(static_cast<double>(s), expected, expected * 0.1);
  }
}

TEST(VoteGeneratorTest, PlackettLuceFavorsLowIndices) {
  const auto votes = MakePlackettLuceVotes(8, 500, 0.6, 5);
  Election e(8);
  for (const auto& v : votes) e.AddVote(v);
  const auto scores = e.BordaScores();
  EXPECT_GT(scores[0], scores[7]);
  EXPECT_EQ(e.BordaWinner(), 0u);
}

TEST(VoteGeneratorTest, PlantedWinnerValidAndBoosted) {
  const uint32_t winner = 3;
  const auto votes = MakePlantedWinnerVotes(6, 1000, winner, 0.4, 6);
  int tops = 0;
  for (const auto& v : votes) {
    EXPECT_TRUE(v.IsValid());
    if (v.At(0) == winner) ++tops;
  }
  // ~0.4 + 0.6/6 = 50% of votes have the winner on top.
  EXPECT_NEAR(tops, 500, 100);
}

TEST(VoteGeneratorTest, Deterministic) {
  const auto a = MakeUniformVotes(5, 50, 42);
  const auto b = MakeUniformVotes(5, 50, 42);
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

}  // namespace
}  // namespace l1hh
