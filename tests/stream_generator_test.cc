#include "stream/stream_generator.h"

#include <gtest/gtest.h>

#include <cmath>
#include <unordered_map>

#include "summary/exact_counter.h"

namespace l1hh {
namespace {

TEST(ZipfTest, ProbabilitiesSumToOne) {
  ZipfDistribution z(1000, 1.2);
  double sum = 0;
  for (uint64_t k = 0; k < z.n(); ++k) sum += z.Probability(k);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfTest, FrequenciesFollowPowerLaw) {
  const uint64_t n = 1000;
  const double alpha = 1.0;
  ZipfDistribution z(n, alpha);
  Rng rng(1);
  const int m = 400000;
  std::unordered_map<uint64_t, int> counts;
  for (int i = 0; i < m; ++i) ++counts[z.Sample(rng)];
  // Head items should match expectation.
  for (uint64_t k = 0; k < 5; ++k) {
    const double expected = z.Probability(k) * m;
    EXPECT_NEAR(counts[k], expected, 6 * std::sqrt(expected));
  }
}

TEST(ZipfTest, AlphaZeroIsUniform) {
  ZipfDistribution z(100, 0.0);
  for (uint64_t k = 0; k < 100; ++k) {
    EXPECT_NEAR(z.Probability(k), 0.01, 1e-12);
  }
}

TEST(AliasTableTest, RespectsWeights) {
  AliasTable t({1.0, 3.0});
  Rng rng(2);
  int ones = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    if (t.Sample(rng) == 1) ++ones;
  }
  EXPECT_NEAR(ones, 0.75 * n, 6 * std::sqrt(0.25 * 0.75 * n));
}

TEST(PlantedStreamTest, ExactPlantedFrequencies) {
  const PlantedSpec spec{{0.25, 0.1, 0.05}, 1 << 20, 40000};
  const PlantedStream s = MakePlantedStream(spec, 3);
  ASSERT_EQ(s.items.size(), 40000u);
  ExactCounter exact;
  for (const uint64_t x : s.items) exact.Insert(x);
  for (size_t i = 0; i < s.planted_ids.size(); ++i) {
    EXPECT_EQ(exact.Count(s.planted_ids[i]), s.planted_counts[i]);
  }
  EXPECT_EQ(s.planted_counts[0], 10000u);
}

TEST(PlantedStreamTest, PlantedIdsDistinct) {
  const PlantedSpec spec{{0.1, 0.1, 0.1, 0.1}, 1 << 16, 10000};
  const PlantedStream s = MakePlantedStream(spec, 5);
  for (size_t i = 0; i < s.planted_ids.size(); ++i) {
    for (size_t j = i + 1; j < s.planted_ids.size(); ++j) {
      EXPECT_NE(s.planted_ids[i], s.planted_ids[j]);
    }
  }
}

TEST(PlantedStreamTest, OrderVariantsPreserveFrequencies) {
  for (const StreamOrder order :
       {StreamOrder::kShuffled, StreamOrder::kHeaviesFirst,
        StreamOrder::kHeaviesLast, StreamOrder::kBursty}) {
    PlantedSpec spec{{0.2, 0.1}, 1 << 16, 20000};
    spec.order = order;
    const PlantedStream s = MakePlantedStream(spec, 7);
    ExactCounter exact;
    for (const uint64_t x : s.items) exact.Insert(x);
    EXPECT_EQ(exact.Count(s.planted_ids[0]), s.planted_counts[0]);
    EXPECT_EQ(exact.Count(s.planted_ids[1]), s.planted_counts[1]);
  }
}

TEST(PlantedStreamTest, HeaviesLastReallyLast) {
  PlantedSpec spec{{0.5}, 1 << 16, 10000};
  spec.order = StreamOrder::kHeaviesLast;
  const PlantedStream s = MakePlantedStream(spec, 9);
  // The final 5000 positions must all be the planted item.
  for (size_t i = 5000; i < 10000; ++i) {
    EXPECT_EQ(s.items[i], s.planted_ids[0]);
  }
}

TEST(UniformStreamTest, CoversUniverse) {
  const auto s = MakeUniformStream(16, 10000, 11);
  ExactCounter exact;
  for (const uint64_t x : s) {
    ASSERT_LT(x, 16u);
    exact.Insert(x);
  }
  EXPECT_EQ(exact.distinct(), 16u);
}

TEST(StreamDeterminism, SameSeedSameStream) {
  const auto a = MakeZipfStream(100, 1.1, 1000, 42);
  const auto b = MakeZipfStream(100, 1.1, 1000, 42);
  EXPECT_EQ(a, b);
  const auto c = MakeZipfStream(100, 1.1, 1000, 43);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace l1hh
