// GroupedSummary battery: per-group Definition-1 conformance on planted
// multi-tenant streams, columnar/scalar state equality, LRU + budget
// eviction accounting, "L1HHGRUP" save -> load -> continue-ingesting
// bit-equivalence (per-group PRNG seeds must re-derive exactly), and the
// hostile-container fuzz the other snapshot formats already pass:
// truncation, bit flips, version bumps, CRC-resealed header tampering,
// and hand-forged payloads with broken group framing.
#include <algorithm>
#include <cstdint>
#include <cstring>
#include <limits>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "group/grouped_summary.h"
#include "io/snapshot.h"
#include "stream/stream_generator.h"
#include "summary/summary.h"
#include "util/bit_stream.h"
#include "util/crc32.h"
#include "util/random.h"
#include "util/status.h"

namespace l1hh {
namespace {

struct Row {
  uint64_t group;
  uint64_t item;
};

SummaryOptions BaseOptions() {
  SummaryOptions o;
  o.epsilon = 0.02;
  o.phi = 0.05;
  o.delta = 0.05;
  o.universe_size = uint64_t{1} << 16;
  // Every per-group summary is constructed from these options, so the
  // planted tenants below all carry kPerTenantItems items — the bdw
  // adapters size their thresholds from stream_length.
  o.stream_length = 8192;
  o.seed = 9;
  o.window_size = 8192;
  o.window_buckets = 4;
  return o;
}

GroupedSummaryOptions GroupedOptions(const std::string& algorithm) {
  GroupedSummaryOptions o;
  o.algorithm = algorithm;
  o.summary = BaseOptions();
  return o;
}

constexpr uint64_t kPerTenantItems = 8192;  // == BaseOptions stream_length

// A multi-tenant stream: each tenant gets its own Zipf stream (distinct
// seed, so per-group heavy sets differ), rows then interleaved
// round-robin so no group arrives as one contiguous run.
std::vector<Row> MultiTenantStream(const std::vector<uint64_t>& tenants,
                                   uint64_t per_tenant_items,
                                   uint64_t stream_seed) {
  std::vector<std::vector<uint64_t>> streams;
  for (size_t t = 0; t < tenants.size(); ++t) {
    streams.push_back(MakeZipfStream(/*n=*/4096, 1.2, per_tenant_items,
                                     stream_seed + t * 101));
  }
  std::vector<Row> rows;
  std::vector<size_t> cursor(tenants.size(), 0);
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (size_t t = 0; t < tenants.size(); ++t) {
      for (int k = 0; k < 3 && cursor[t] < streams[t].size(); ++k) {
        rows.push_back({tenants[t], streams[t][cursor[t]++]});
        progressed = true;
      }
    }
  }
  return rows;
}

std::vector<uint8_t> MustSave(const GroupedSummary& grouped) {
  std::vector<uint8_t> bytes;
  const Status s = SaveGrouped(grouped, &bytes);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return bytes;
}

void Reseal(std::vector<uint8_t>& bytes) {
  const uint32_t crc = Crc32(bytes.data(), bytes.size() - 4);
  for (int i = 0; i < 4; ++i) {
    bytes[bytes.size() - 4 + static_cast<size_t>(i)] =
        static_cast<uint8_t>(crc >> (8 * i));
  }
}

// ---- Conformance ------------------------------------------------------

TEST(GroupedSummaryTest, PerGroupDefinitionOneConformance) {
  // Definition 1, per tenant: every item with frequency > phi * m_g in
  // group g's OWN substream must be reported for g, and nothing reported
  // may fall below (phi - eps) * m_g.  Cross-tenant traffic must not
  // bleed: tenant 1's elephant is invisible to tenant 2.
  const std::vector<uint64_t> tenants = {3, 17, 4242, 900001};
  const auto rows = MultiTenantStream(tenants, kPerTenantItems, 1);
  for (const std::string algorithm :
       {"space_saving", "misra_gries", "count_min", "bdw_optimal"}) {
    SCOPED_TRACE(algorithm);
    auto grouped = GroupedSummary::Create(GroupedOptions(algorithm));
    ASSERT_NE(grouped, nullptr);
    std::map<uint64_t, std::map<uint64_t, uint64_t>> truth;
    std::map<uint64_t, uint64_t> totals;
    for (const Row& r : rows) {
      grouped->Update(r.group, r.item);
      ++truth[r.group][r.item];
      ++totals[r.group];
    }
    EXPECT_EQ(grouped->ItemsProcessed(), rows.size());
    EXPECT_EQ(grouped->group_count(), tenants.size());

    const double phi = BaseOptions().phi;
    const double eps = BaseOptions().epsilon;
    for (const uint64_t g : tenants) {
      const double m = static_cast<double>(totals[g]);
      const auto reported = grouped->HeavyHitters(g, phi);
      std::map<uint64_t, double> reported_by_item;
      for (const auto& e : reported) reported_by_item[e.item] = e.estimate;
      for (const auto& [item, count] : truth[g]) {
        if (static_cast<double>(count) > phi * m) {
          EXPECT_TRUE(reported_by_item.count(item))
              << "group " << g << " missed heavy item " << item;
        }
      }
      for (const auto& e : reported) {
        const auto it = truth[g].find(e.item);
        const double true_count =
            it == truth[g].end() ? 0.0 : static_cast<double>(it->second);
        EXPECT_GE(true_count, (phi - eps) * m - 1e-9)
            << "group " << g << " reported light item " << e.item;
      }
    }
    // Unknown groups answer empty, not garbage.
    EXPECT_EQ(grouped->Find(55555), nullptr);
    EXPECT_EQ(grouped->Estimate(55555, 0), 0.0);
    EXPECT_TRUE(grouped->HeavyHitters(55555, phi).empty());
  }
}

TEST(GroupedSummaryTest, ColumnarMatchesScalarBitForBit) {
  // Same differential contract as tests/columnar_differential_test.cc,
  // lifted to (group, item) pairs: the run-detecting UpdateColumn must be
  // state-identical to the scalar Update loop, PRNG draws included.
  const std::vector<uint64_t> tenants = {1, 2, 3, 4, 5, 6, 7};
  const auto rows = MultiTenantStream(tenants, 2048, 2);
  std::vector<uint64_t> groups, items;
  for (const Row& r : rows) {
    groups.push_back(r.group);
    items.push_back(r.item);
  }
  for (const std::string algorithm :
       {"space_saving", "sticky_sampling", "count_min", "bdw_simple",
        "bdw_optimal", "windowed:misra_gries"}) {
    SCOPED_TRACE(algorithm);
    auto scalar = GroupedSummary::Create(GroupedOptions(algorithm));
    auto columnar = GroupedSummary::Create(GroupedOptions(algorithm));
    ASSERT_NE(scalar, nullptr);
    ASSERT_NE(columnar, nullptr);
    for (const Row& r : rows) scalar->Update(r.group, r.item);
    size_t offset = 0;
    const size_t sizes[] = {1, 7, 0, 333, 4096};
    size_t s = 0;
    while (offset < rows.size()) {
      const size_t take =
          std::min(sizes[s++ % 5], rows.size() - offset);
      columnar->UpdateColumn(groups.data() + offset, items.data() + offset,
                             take);
      offset += take;
    }
    EXPECT_EQ(scalar->ItemsProcessed(), columnar->ItemsProcessed());
    EXPECT_EQ(scalar->GroupKeys(), columnar->GroupKeys());
    EXPECT_EQ(MustSave(*scalar), MustSave(*columnar))
        << algorithm << ": grouped UpdateColumn diverged from Update";
  }
}

TEST(GroupedSummaryTest, TopGroupsOrdersByItemsThenKey) {
  auto grouped = GroupedSummary::Create(GroupedOptions("exact"));
  ASSERT_NE(grouped, nullptr);
  // Loads: group 10 -> 50 items, 20 -> 80, 30 -> 50, 40 -> 10.
  const std::vector<std::pair<uint64_t, int>> loads = {
      {10, 50}, {20, 80}, {30, 50}, {40, 10}};
  for (const auto& [g, n] : loads) {
    for (int i = 0; i < n; ++i) grouped->Update(g, static_cast<uint64_t>(i));
  }
  const auto all = grouped->TopGroups(0);
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[0].group, 20u);
  EXPECT_EQ(all[0].items, 80u);
  // 50-item tie breaks by key ascending.
  EXPECT_EQ(all[1].group, 10u);
  EXPECT_EQ(all[2].group, 30u);
  EXPECT_EQ(all[3].group, 40u);
  const auto top2 = grouped->TopGroups(2);
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_EQ(top2[0].group, 20u);
  EXPECT_EQ(top2[1].group, 10u);
  EXPECT_EQ(grouped->GroupKeys(),
            (std::vector<uint64_t>{10, 20, 30, 40}));
}

// ---- Eviction ---------------------------------------------------------

TEST(GroupedSummaryTest, MaxGroupsEvictsLeastRecentlyUpdated) {
  GroupedSummaryOptions options = GroupedOptions("space_saving");
  options.max_groups = 3;
  auto grouped = GroupedSummary::Create(options);
  ASSERT_NE(grouped, nullptr);
  for (uint64_t g = 1; g <= 3; ++g) {
    for (int i = 0; i < 10; ++i) grouped->Update(g, 7);
  }
  // Recency now 3 > 2 > 1; refresh group 1 so 2 becomes the LRU tail.
  grouped->Update(1, 7);
  grouped->Update(4, 7);  // 4th group -> evict group 2
  EXPECT_EQ(grouped->group_count(), 3u);
  EXPECT_EQ(grouped->Find(2), nullptr);
  EXPECT_NE(grouped->Find(1), nullptr);
  EXPECT_NE(grouped->Find(3), nullptr);
  EXPECT_NE(grouped->Find(4), nullptr);
  EXPECT_EQ(grouped->evicted_groups(), 1u);
  EXPECT_EQ(grouped->evicted_items(), 10u);
  // ItemsProcessed stays monotonic across the eviction.
  EXPECT_EQ(grouped->ItemsProcessed(), 32u);

  // An evicted key that returns starts from scratch as the MRU.
  grouped->Update(2, 7);
  EXPECT_EQ(grouped->group_count(), 3u);
  EXPECT_EQ(grouped->evicted_groups(), 2u);  // group 3 was the tail
  EXPECT_EQ(grouped->Find(3), nullptr);
  ASSERT_NE(grouped->Find(2), nullptr);
  EXPECT_EQ(grouped->Find(2)->ItemsProcessed(), 1u);
}

TEST(GroupedSummaryTest, MemoryBudgetEvictsUntilUnderOrOneGroup) {
  GroupedSummaryOptions options = GroupedOptions("space_saving");
  // Roughly two groups' worth of charge: entry overhead + a small
  // structure.  The exact constant doesn't matter, only that feeding many
  // groups forces evictions and charged_bytes() converges under budget.
  auto probe = GroupedSummary::Create(options);
  ASSERT_NE(probe, nullptr);
  probe->Update(1, 1);
  const size_t one_group = probe->charged_bytes();
  ASSERT_GT(one_group, 0u);
  options.memory_budget_bytes = one_group * 5 / 2;

  auto grouped = GroupedSummary::Create(options);
  ASSERT_NE(grouped, nullptr);
  Rng rng(77);
  for (int i = 0; i < 5000; ++i) {
    grouped->Update(rng.UniformU64(64), rng.UniformU64(1000));
  }
  EXPECT_GT(grouped->evicted_groups(), 0u);
  EXPECT_GE(grouped->group_count(), 1u);
  EXPECT_LE(grouped->charged_bytes(), options.memory_budget_bytes);
  EXPECT_GE(grouped->MemoryUsageBytes(), grouped->charged_bytes());
  // Totals still account for every ingested item, evicted or not.
  EXPECT_EQ(grouped->ItemsProcessed(), 5000u);
}

// ---- Snapshots --------------------------------------------------------

TEST(GroupedSummaryTest, SaveLoadContinueIsBitExact) {
  // The strongest statement a reload can make: ingesting the second half
  // after a save/load produces the same bytes as never having saved.
  // This only holds if per-group seeds re-derive exactly (bdw_optimal's
  // PRNG replays) and MRU->LRU order survives the trip.
  //
  // Byte-level comparisons apply only to canonically-serialized
  // algorithms: sticky_sampling and count_min's candidate set write a
  // std::unordered_map in iteration order, and a reloaded map's bucket
  // history legitimately differs from the incrementally-grown original,
  // so those re-saves permute entries while answering identically.  The
  // kByteExact flag switches between the bit-level and the
  // answer-level equivalence claim per algorithm.
  const std::vector<uint64_t> tenants = {11, 22, 33, 44, 55};
  const auto rows = MultiTenantStream(tenants, 2048, 3);
  const size_t half = rows.size() / 2;
  const std::vector<std::pair<std::string, bool>> cases = {
      {"space_saving", true},
      {"bdw_optimal", true},
      {"sticky_sampling", false},
      {"windowed:count_min", false}};
  for (const auto& [algorithm, byte_exact] : cases) {
    SCOPED_TRACE(algorithm);
    GroupedSummaryOptions options = GroupedOptions(algorithm);
    options.max_groups = 4;  // one tenant gets evicted along the way
    auto straight = GroupedSummary::Create(options);
    auto reloaded_src = GroupedSummary::Create(options);
    ASSERT_NE(straight, nullptr);
    ASSERT_NE(reloaded_src, nullptr);
    for (size_t i = 0; i < half; ++i) {
      straight->Update(rows[i].group, rows[i].item);
      reloaded_src->Update(rows[i].group, rows[i].item);
    }
    const std::vector<uint8_t> mid = MustSave(*reloaded_src);
    Status status;
    auto reloaded = LoadGrouped(mid, &status);
    ASSERT_NE(reloaded, nullptr) << status.ToString();
    EXPECT_EQ(reloaded->ItemsProcessed(), straight->ItemsProcessed());
    EXPECT_EQ(reloaded->GroupKeys(), straight->GroupKeys());
    if (byte_exact) {
      EXPECT_EQ(MustSave(*reloaded), mid) << "immediate re-save differs";
    }

    for (size_t i = half; i < rows.size(); ++i) {
      straight->Update(rows[i].group, rows[i].item);
      reloaded->Update(rows[i].group, rows[i].item);
    }
    if (byte_exact) {
      EXPECT_EQ(MustSave(*straight), MustSave(*reloaded))
          << algorithm << ": post-reload ingest diverged from never-saved";
    }
    // The answer-level claim holds for every algorithm: same groups,
    // same recency totals, and identical per-group reports (canonical
    // order), item estimates included.
    EXPECT_EQ(straight->GroupKeys(), reloaded->GroupKeys());
    EXPECT_EQ(straight->evicted_groups(), reloaded->evicted_groups());
    EXPECT_EQ(straight->evicted_items(), reloaded->evicted_items());
    for (const uint64_t g : straight->GroupKeys()) {
      const auto a = straight->HeavyHitters(g, options.summary.phi);
      const auto b = reloaded->HeavyHitters(g, options.summary.phi);
      ASSERT_EQ(a.size(), b.size()) << "group " << g;
      for (size_t k = 0; k < a.size(); ++k) {
        EXPECT_EQ(a[k].item, b[k].item) << "group " << g;
        EXPECT_EQ(a[k].estimate, b[k].estimate) << "group " << g;
      }
    }
  }
}

// ---- Hostile containers ----------------------------------------------

class GroupedHostileTest : public testing::Test {
 protected:
  void SetUp() override {
    GroupedSummaryOptions options = GroupedOptions("space_saving");
    auto grouped = GroupedSummary::Create(options);
    ASSERT_NE(grouped, nullptr);
    const auto rows = MultiTenantStream({5, 6, 7}, 512, 4);
    for (const Row& r : rows) grouped->Update(r.group, r.item);
    bytes_ = MustSave(*grouped);
    ASSERT_GT(bytes_.size(), 24u);
  }

  std::vector<uint8_t> bytes_;
};

TEST_F(GroupedHostileTest, TruncationAlwaysErrorsNeverUB) {
  std::vector<size_t> cuts = {0, 1, 7, 8, 11, 12, 19, 20, 23, 24,
                              bytes_.size() - 4, bytes_.size() - 1};
  Rng rng(41);
  for (int i = 0; i < 24; ++i) cuts.push_back(rng.UniformU64(bytes_.size()));
  for (const size_t cut : cuts) {
    const std::vector<uint8_t> trunc(bytes_.begin(),
                                     bytes_.begin() + cut);
    Status status;
    EXPECT_EQ(LoadGrouped(trunc, &status), nullptr) << "cut=" << cut;
    EXPECT_FALSE(status.ok()) << "cut=" << cut;
  }
  // Over-long input must fail the length consistency check too.
  std::vector<uint8_t> padded = bytes_;
  padded.resize(padded.size() + 16, 0);
  Status status;
  EXPECT_EQ(LoadGrouped(padded, &status), nullptr);
  EXPECT_FALSE(status.ok());
}

TEST_F(GroupedHostileTest, BitFlipsAreCaughtByCrc) {
  Rng rng(43);
  for (int t = 0; t < 48; ++t) {
    std::vector<uint8_t> flipped = bytes_;
    const size_t byte = rng.UniformU64(flipped.size());
    flipped[byte] ^= static_cast<uint8_t>(1u << rng.UniformU64(8));
    Status status;
    EXPECT_EQ(LoadGrouped(flipped, &status), nullptr) << "byte=" << byte;
    EXPECT_FALSE(status.ok());
  }
  // Untouched bytes still load, so the fuzz above is not vacuous.
  Status status;
  EXPECT_NE(LoadGrouped(bytes_, &status), nullptr) << status.ToString();
}

TEST_F(GroupedHostileTest, VersionBumpIsRejectedWithVersionError) {
  std::vector<uint8_t> bumped = bytes_;
  bumped[8] = static_cast<uint8_t>(kGroupedFormatVersion + 1);
  Reseal(bumped);
  Status status;
  EXPECT_EQ(LoadGrouped(bumped, &status), nullptr);
  EXPECT_NE(status.ToString().find("version"), std::string::npos)
      << status.ToString();
}

TEST_F(GroupedHostileTest, ResealedHostileEpsilonIsRejected) {
  // Past the CRC, domain validation must still hold: epsilon lives right
  // after the 1-byte name length + name chars in the bit stream.
  const size_t epsilon_offset = 20 + 1 + std::strlen("space_saving");
  for (const double hostile :
       {5e-324, 0.0, -0.25, std::numeric_limits<double>::quiet_NaN(),
        std::numeric_limits<double>::infinity()}) {
    std::vector<uint8_t> tampered = bytes_;
    uint64_t pattern;
    std::memcpy(&pattern, &hostile, sizeof(pattern));
    for (int i = 0; i < 8; ++i) {
      tampered[epsilon_offset + static_cast<size_t>(i)] =
          static_cast<uint8_t>(pattern >> (8 * i));
    }
    Reseal(tampered);
    Status status;
    EXPECT_EQ(LoadGrouped(tampered, &status), nullptr)
        << "epsilon=" << hostile;
    EXPECT_FALSE(status.ok());
  }
}

TEST_F(GroupedHostileTest, ResealedRandomHeaderTamperIsSafe) {
  const size_t options_start = 20 + 1 + std::strlen("space_saving");
  Rng rng(47);
  for (int t = 0; t < 16; ++t) {
    std::vector<uint8_t> tampered = bytes_;
    const size_t byte = options_start + rng.UniformU64(8 * 8);
    tampered[byte] ^= static_cast<uint8_t>(1u << rng.UniformU64(8));
    Reseal(tampered);
    Status status;
    auto loaded = LoadGrouped(tampered, &status);
    if (loaded != nullptr) {
      // Usable without UB is the bar; answers may legitimately differ.
      (void)loaded->TopGroups(0);
      for (const uint64_t g : loaded->GroupKeys()) {
        (void)loaded->HeavyHitters(g, 0.05);
      }
    } else {
      EXPECT_FALSE(status.ok());
    }
  }
}

// Forges a complete "L1HHGRUP" container from scratch so the group-table
// framing checks (not just the CRC) are what rejects it.
std::vector<uint8_t> ForgeGroupedContainer(
    uint64_t live_count, const std::vector<uint64_t>& keys,
    uint64_t payload_bits_delta) {
  const std::string name = "space_saving";
  const SummaryOptions base = BaseOptions();
  BitWriter stream;
  stream.WriteBits(name.size(), 8);
  for (const char c : name) stream.WriteBits(static_cast<uint8_t>(c), 8);
  stream.WriteDouble(base.epsilon);
  stream.WriteDouble(base.phi);
  stream.WriteDouble(base.delta);
  stream.WriteU64(base.universe_size);
  stream.WriteU64(base.stream_length);
  stream.WriteU64(base.seed);
  stream.WriteU64(base.window_size);
  stream.WriteU64(base.window_buckets);
  stream.WriteCounter(0);  // max_groups
  stream.WriteCounter(0);  // memory_budget_bytes
  // SaveGroups payload: totals, then the forged group table.
  stream.WriteCounter(keys.size() * 3);  // items_processed
  stream.WriteCounter(0);                // evicted_groups
  stream.WriteCounter(0);                // evicted_items
  stream.WriteCounter(live_count);
  auto donor = MakeSummary(name, base);
  for (int i = 0; i < 3; ++i) donor->Update(9, 1);
  BitWriter payload;
  EXPECT_TRUE(donor->SaveTo(payload).ok());
  for (const uint64_t key : keys) {
    stream.WriteU64(key);
    stream.WriteCounter(3);  // items
    stream.WriteCounter(payload.size_bits() + payload_bits_delta);
    for (size_t bit = 0; bit < payload.size_bits(); bit += 64) {
      const int nbits =
          static_cast<int>(std::min<size_t>(64, payload.size_bits() - bit));
      const uint64_t mask =
          nbits == 64 ? ~uint64_t{0} : ((uint64_t{1} << nbits) - 1);
      stream.WriteBits(payload.words()[bit / 64] & mask, nbits);
    }
  }
  std::vector<uint8_t> out;
  const char magic[8] = {'L', '1', 'H', 'H', 'G', 'R', 'U', 'P'};
  out.insert(out.end(), magic, magic + 8);
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<uint8_t>(kGroupedFormatVersion >> (8 * i)));
  }
  const uint64_t stream_bits = stream.size_bits();
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<uint8_t>(stream_bits >> (8 * i)));
  }
  for (const uint64_t word : stream.words()) {
    for (int i = 0; i < 8; ++i) {
      out.push_back(static_cast<uint8_t>(word >> (8 * i)));
    }
  }
  const uint32_t crc = Crc32(out.data(), out.size());
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<uint8_t>(crc >> (8 * i)));
  }
  return out;
}

TEST(GroupedHostilePayloadTest, WellFormedForgeryLoads) {
  // Sanity-check the forge itself: a consistent container must load, so
  // the rejections below are attributable to the specific defect planted.
  const auto bytes = ForgeGroupedContainer(2, {100, 200}, 0);
  Status status;
  auto loaded = LoadGrouped(bytes, &status);
  ASSERT_NE(loaded, nullptr) << status.ToString();
  EXPECT_EQ(loaded->group_count(), 2u);
  EXPECT_EQ(loaded->GroupKeys(), (std::vector<uint64_t>{100, 200}));
}

TEST(GroupedHostilePayloadTest, DuplicateGroupKeyIsRejected) {
  Status status;
  EXPECT_EQ(LoadGrouped(ForgeGroupedContainer(2, {100, 100}, 0), &status),
            nullptr);
  EXPECT_NE(status.ToString().find("duplicate"), std::string::npos)
      << status.ToString();
}

TEST(GroupedHostilePayloadTest, OverdeclaredPayloadLengthIsRejected) {
  // Declared group-payload length runs past the container end.
  Status status;
  EXPECT_EQ(
      LoadGrouped(ForgeGroupedContainer(1, {100}, 1u << 20), &status),
      nullptr);
  EXPECT_FALSE(status.ok());
}

TEST(GroupedHostilePayloadTest, MisdeclaredPayloadLengthIsRejected) {
  // Payload length off by a few bits, with a second group on the wire so
  // the over-declared length still fits inside the container: the first
  // group's summary will not consume exactly its declared framing ->
  // clean rejection (the length-mismatch check, not the bounds check).
  for (const uint64_t delta : {uint64_t{3}, uint64_t{64}}) {
    Status status;
    EXPECT_EQ(
        LoadGrouped(ForgeGroupedContainer(2, {100, 200}, delta), &status),
        nullptr)
        << "delta=" << delta;
    EXPECT_FALSE(status.ok());
  }
}

TEST(GroupedHostilePayloadTest, OverdeclaredGroupCountIsRejected) {
  // live_count says 5 groups but only 2 are on the wire.
  Status status;
  EXPECT_EQ(LoadGrouped(ForgeGroupedContainer(5, {100, 200}, 0), &status),
            nullptr);
  EXPECT_FALSE(status.ok());
}

}  // namespace
}  // namespace l1hh
