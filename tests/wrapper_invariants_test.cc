// Invariants of the unknown-length wrapper and a few residual substrate
// edges not covered by the per-module suites.
#include <gtest/gtest.h>

#include <cmath>

#include "core/unknown_length.h"
#include "count/morris_counter.h"
#include "stream/zipf.h"
#include "votes/election.h"

namespace l1hh {
namespace {

BdwSimple::Options HHBase() {
  BdwSimple::Options opt;
  opt.epsilon = 0.1;
  opt.phi = 0.4;
  opt.delta = 0.1;
  opt.universe_size = uint64_t{1} << 20;
  opt.stream_length = 0;
  return opt;
}

// The rotation level grows like log_W(m): at window W = 1/eps = 10, a
// stream of 10^5 items must sit within +-2 levels of log10(10^5) = 5
// (Morris noise absorbs the rest).
TEST(WrapperInvariantsTest, LevelTracksLogOfLength) {
  auto w = MakeUnknownLengthListHeavyHitters(HHBase(), 1 << 22, 3);
  for (int i = 0; i < 100000; ++i) w.Insert(uint64_t{1});
  EXPECT_GE(w.level(), 3);
  EXPECT_LE(w.level(), 7);
}

// The wrapper never reports from the fresh instance: the reporter's
// sample must cover the bulk of the stream, so its Report() on a
// half-heavy stream can never be empty after warm-up.
TEST(WrapperInvariantsTest, ReporterAlwaysWarm) {
  auto w = MakeUnknownLengthListHeavyHitters(HHBase(), 1 << 22, 5);
  Rng rng(6);
  for (int i = 0; i < 50000; ++i) {
    w.Insert((rng.NextU64() & 1) != 0 ? 9 : 100 + rng.UniformU64(1000));
    if (i > 1000 && i % 5000 == 0) {
      EXPECT_FALSE(w.Reporter().Report().empty()) << "at " << i;
    }
  }
}

TEST(MorrisEdgeTest, NonDefaultBaseStillUnbiasedish) {
  Rng rng(7);
  const int trials = 800;
  const int count = 500;
  double sum = 0;
  for (int t = 0; t < trials; ++t) {
    MorrisCounter c(1.5);
    for (int i = 0; i < count; ++i) c.Increment(rng);
    sum += c.Estimate();
  }
  EXPECT_NEAR(sum / trials, count, 60);
}

TEST(ZipfEdgeTest, ProbabilitiesMonotoneDecreasing) {
  ZipfDistribution z(500, 1.3);
  for (uint64_t k = 1; k < 500; ++k) {
    EXPECT_LE(z.Probability(k), z.Probability(k - 1));
  }
}

TEST(ElectionEdgeTest, PairwiseDiagonalUnusedAndZero) {
  Election e(3);
  e.AddVote(Ranking({0, 1, 2}));
  EXPECT_EQ(e.Pairwise(0, 0), 0u);
  EXPECT_EQ(e.Pairwise(2, 2), 0u);
}

TEST(ElectionEdgeTest, SingleCandidateElection) {
  Election e(1);
  e.AddVote(Ranking({0}));
  e.AddVote(Ranking({0}));
  EXPECT_EQ(e.BordaScores()[0], 0u);     // no opponents to defeat
  EXPECT_EQ(e.MaximinScores()[0], 0u);
  EXPECT_EQ(e.PluralityScores()[0], 2u);
}

}  // namespace
}  // namespace l1hh
