// Windowed guarantee-conformance battery (ctest label `window`): every
// mergeable registered structure, wrapped in the sliding-window container
// (src/window/), is run over planted-DRIFT streams — the heavy set
// switches at scheduled switchpoints — and held to the windowed contract
// from docs/WINDOWS.md, with the window of W items as the reference:
//
//   * eviction   — a heavy item that stops occurring must leave the
//                  report within one window of its last occurrence;
//   * recall     — every item with >= (phi + 1/B) fraction of the last W
//                  items is reported (the one-partial-bucket slack);
//   * soundness  — nothing reported has last-W frequency below
//                  (phi - eps')*W, eps' = eps + 1/B;
//   * estimates  — reported items are estimated within ~(eps' * W).
//
// Randomized structures get the same binomial failure budget as the
// whole-stream conformance suite; deterministic ones must never fail.
// The battery also pins the cross-layer claims: a K-sharded windowed
// engine obeys the same contract (global-clock rotation), and a snapshot
// taken MID-BUCKET restores to a run indistinguishable from an
// uninterrupted one.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "engine/sharded_engine.h"
#include "io/snapshot.h"
#include "stream/stream_generator.h"
#include "summary/exact_counter.h"
#include "summary/summary.h"
#include "summary_test_util.h"
#include "window/sliding_window_summary.h"

namespace l1hh {
namespace {

constexpr double kEpsilon = 0.02;
constexpr double kPhi = 0.06;
constexpr double kDelta = 0.05;
constexpr uint64_t kUniverse = uint64_t{1} << 18;
constexpr uint64_t kWindow = 8192;
constexpr uint64_t kBuckets = 32;  // 1/B = 0.03125 window slack
constexpr size_t kPhases = 3;
constexpr uint64_t kPhaseLength = 12288;  // > W + q: full turnover per phase
constexpr int kRuns = 6;
// Same calibration as guarantee_conformance_test: sampling-based
// estimators carry constant-factor noise at any fixed seed.
constexpr double kEstimateSlack = 1.5;

double EpsPrime() { return kEpsilon + 1.0 / static_cast<double>(kBuckets); }

int AllowedFailures(int runs, double delta) {
  const double mean = runs * delta;
  const double sigma = std::sqrt(runs * delta * (1.0 - mean / runs));
  return static_cast<int>(std::ceil(mean + 3.0 * sigma));
}

bool IsDeterministic(const std::string& inner) {
  return inner == "misra_gries" || inner == "space_saving" ||
         inner == "exact";
}

SummaryOptions WindowedOptions(uint64_t seed) {
  SummaryOptions options;
  options.epsilon = kEpsilon;
  options.phi = kPhi;
  options.delta = kDelta;
  options.universe_size = kUniverse;
  options.stream_length = kPhases * kPhaseLength;
  options.seed = seed;
  options.window_size = kWindow;
  options.window_buckets = kBuckets;
  return options;
}

DriftStream MakeDrift(uint64_t seed) {
  DriftSpec spec;
  // Final-phase heavies sit well above phi + 1/B (recall must hold even
  // against the fixed last-W reference); both clear the threshold.
  spec.planted_fractions = {0.16, 0.12};
  spec.phases = kPhases;
  spec.universe_size = kUniverse;
  spec.stream_length = kPhases * kPhaseLength;
  return MakePlantedDriftStream(spec, seed);
}

/// Exact counts over the last `window` items of `stream` (the fixed-W
/// reference truth the windowed contract is stated against).
ExactCounter LastWindowTruth(const std::vector<uint64_t>& stream,
                             uint64_t window) {
  ExactCounter truth;
  const size_t start =
      stream.size() > window ? stream.size() - window : 0;
  for (size_t i = start; i < stream.size(); ++i) truth.Insert(stream[i]);
  return truth;
}

struct Verdict {
  bool ok = true;
  std::string detail;
};

void Check(Verdict& v, bool condition, const std::string& detail) {
  if (!condition && v.ok) {
    v.ok = false;
    v.detail = detail;
  }
}

/// Applies the windowed contract to `report` given the drift stream's
/// `prefix` (everything ingested so far) and the expired heavy ids.
Verdict CheckWindowedContract(const std::vector<ItemEstimate>& report,
                              const std::vector<uint64_t>& prefix,
                              const std::vector<uint64_t>& fresh_heavies,
                              const std::vector<uint64_t>& expired_heavies) {
  Verdict v;
  ExactCounter truth = LastWindowTruth(prefix, kWindow);
  const double w = static_cast<double>(kWindow);

  // Recall: the fresh planted heavies are above (phi + 1/B) of the last
  // W items by construction.
  for (const uint64_t heavy : fresh_heavies) {
    const bool reported =
        std::any_of(report.begin(), report.end(),
                    [heavy](const ItemEstimate& e) {
                      return e.item == heavy;
                    });
    Check(v, reported,
          "fresh heavy " + std::to_string(heavy) + " (last-W count " +
              std::to_string(truth.Count(heavy)) + ") missing from report");
  }
  // Eviction: expired heavies have last-W frequency zero — far below the
  // (phi - eps')*W soundness floor — and must be gone.
  for (const uint64_t expired : expired_heavies) {
    const bool reported =
        std::any_of(report.begin(), report.end(),
                    [expired](const ItemEstimate& e) {
                      return e.item == expired;
                    });
    Check(v, !reported,
          "expired heavy " + std::to_string(expired) +
              " still reported one window after its last occurrence");
  }
  // Soundness + estimates for everything reported.
  const double soundness_floor = (kPhi - EpsPrime()) * w - 1.0;
  const double estimate_budget =
      (kEstimateSlack * kEpsilon + 1.0 / static_cast<double>(kBuckets)) * w +
      1.0;
  for (const auto& e : report) {
    const double f = static_cast<double>(truth.Count(e.item));
    Check(v, f >= soundness_floor,
          "reported item " + std::to_string(e.item) + " has last-W count " +
              std::to_string(truth.Count(e.item)) + " < soundness floor");
    Check(v, std::abs(e.estimate - f) <= estimate_budget,
          "estimate " + std::to_string(e.estimate) + " for item " +
              std::to_string(e.item) + " off true last-W count " +
              std::to_string(truth.Count(e.item)) + " by more than " +
              std::to_string(estimate_budget));
  }
  return v;
}

class WindowedDriftConformanceTest
    : public ::testing::TestWithParam<std::string> {};

// One full drift run with a mid-stream checkpoint: after the last
// switchpoint plus one window (+ one bucket for the partial-bucket
// slack), the previous phases' heavies must already be evicted and the
// final phase's heavies recalled; the same must hold at end of stream.
TEST_P(WindowedDriftConformanceTest, EvictsExpiredAndRecallsFreshHeavies) {
  const std::string inner = GetParam();
  const std::string name = "windowed:" + inner;
  int failures = 0;
  std::string first_failure;
  for (int run = 0; run < kRuns; ++run) {
    const uint64_t seed = 1000 + 17 * run;
    const DriftStream drift = MakeDrift(seed);
    auto summary = MakeSummary(name, WindowedOptions(seed));
    ASSERT_NE(summary, nullptr) << name;

    // Ingest up to one window (+ one bucket of slack) past the final
    // switchpoint, then demand full turnover.
    const size_t check_at = static_cast<size_t>(
        drift.phase_starts[kPhases - 1] + kWindow + kWindow / kBuckets);
    ASSERT_LT(check_at, drift.items.size());
    summary->UpdateBatch(
        {drift.items.data(), check_at});
    std::vector<uint64_t> expired;
    for (size_t p = 0; p + 1 < kPhases; ++p) {
      expired.insert(expired.end(), drift.planted_ids[p].begin(),
                     drift.planted_ids[p].end());
    }
    const std::vector<uint64_t> prefix(drift.items.begin(),
                                       drift.items.begin() + check_at);
    Verdict mid = CheckWindowedContract(summary->HeavyHitters(kPhi), prefix,
                                        drift.planted_ids[kPhases - 1],
                                        expired);

    // Finish the stream and re-check at the end.
    summary->UpdateBatch({drift.items.data() + check_at,
                          drift.items.size() - check_at});
    Verdict end = CheckWindowedContract(summary->HeavyHitters(kPhi),
                                        drift.items,
                                        drift.planted_ids[kPhases - 1],
                                        expired);
    if (!mid.ok || !end.ok) {
      ++failures;
      if (first_failure.empty()) {
        first_failure = "seed " + std::to_string(seed) + ": " +
                        (mid.ok ? end.detail : mid.detail);
      }
    }
  }
  const int budget =
      IsDeterministic(inner) ? 0 : AllowedFailures(kRuns, kDelta);
  EXPECT_LE(failures, budget)
      << name << ": " << failures << " of " << kRuns
      << " drift runs violated the windowed contract; first: "
      << first_failure;
}

// The same contract through a 4-shard windowed engine: per-shard rings
// rotate on the GLOBAL enqueued count, so the merged view answers for
// the same global window a single ring would.
TEST_P(WindowedDriftConformanceTest, ShardedEngineKeepsTheContract) {
  const std::string inner = GetParam();
  const std::string name = "windowed:" + inner;
  int failures = 0;
  std::string first_failure;
  const int runs = 3;  // the engine adds no randomness; fewer seeds
  for (int run = 0; run < runs; ++run) {
    const uint64_t seed = 2000 + 29 * run;
    const DriftStream drift = MakeDrift(seed);
    ShardedEngineOptions engine_options;
    engine_options.algorithm = name;
    engine_options.summary = WindowedOptions(seed);
    engine_options.num_shards = 4;
    engine_options.num_threads = 2;
    Status status;
    auto engine = ShardedEngine::Create(engine_options, &status);
    ASSERT_NE(engine, nullptr) << status.ToString();
    ASSERT_TRUE(engine->windowed());
    engine->UpdateBatch(drift.items);
    std::vector<uint64_t> expired;
    for (size_t p = 0; p + 1 < kPhases; ++p) {
      expired.insert(expired.end(), drift.planted_ids[p].begin(),
                     drift.planted_ids[p].end());
    }
    const Verdict v = CheckWindowedContract(
        engine->HeavyHitters(kPhi), drift.items,
        drift.planted_ids[kPhases - 1], expired);
    if (!v.ok) {
      ++failures;
      if (first_failure.empty()) {
        first_failure = "seed " + std::to_string(seed) + ": " + v.detail;
      }
    }
  }
  const int budget =
      IsDeterministic(inner) ? 0 : AllowedFailures(runs, kDelta);
  EXPECT_LE(failures, budget)
      << name << " through a 4-shard engine: " << failures << " of "
      << runs << " runs violated the contract; first: " << first_failure;
}

// Snapshot mid-bucket, restore, continue: the restored run must be
// indistinguishable from the uninterrupted one — same rotations, same
// coverage, element-wise identical reports (the per-bucket payloads
// carry live PRNG state, so even the randomized structures match).
TEST_P(WindowedDriftConformanceTest, RestoreMidBucketEqualsUninterrupted) {
  const std::string inner = GetParam();
  const std::string name = "windowed:" + inner;
  const uint64_t seed = 4242;
  const DriftStream drift = MakeDrift(seed);
  // A split point deliberately NOT on a bucket boundary.
  const size_t split = static_cast<size_t>(kWindow + kWindow / kBuckets / 2);
  ASSERT_NE((split % (kWindow / kBuckets)), 0u);

  auto uninterrupted = MakeSummary(name, WindowedOptions(seed));
  ASSERT_NE(uninterrupted, nullptr) << name;
  uninterrupted->UpdateBatch(drift.items);

  auto first_half = MakeSummary(name, WindowedOptions(seed));
  first_half->UpdateBatch({drift.items.data(), split});
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(SaveSummary(*first_half, &bytes).ok()) << name;
  Status status;
  auto resumed = LoadSummary(bytes, &status);
  ASSERT_NE(resumed, nullptr) << name << ": " << status.ToString();
  resumed->UpdateBatch(
      {drift.items.data() + split, drift.items.size() - split});

  auto* a = dynamic_cast<SlidingWindowSummary*>(uninterrupted.get());
  auto* b = dynamic_cast<SlidingWindowSummary*>(resumed.get());
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->rotations(), b->rotations());
  EXPECT_EQ(a->window_items(), b->window_items());
  EXPECT_EQ(a->ItemsProcessed(), b->ItemsProcessed());
  const auto report_a = uninterrupted->HeavyHitters(kPhi);
  const auto report_b = resumed->HeavyHitters(kPhi);
  ASSERT_EQ(report_a.size(), report_b.size()) << name;
  for (size_t i = 0; i < report_a.size(); ++i) {
    EXPECT_EQ(report_a[i].item, report_b[i].item) << name;
    EXPECT_EQ(report_a[i].estimate, report_b[i].estimate) << name;
  }
  for (const uint64_t heavy : drift.planted_ids[kPhases - 1]) {
    EXPECT_EQ(uninterrupted->Estimate(heavy), resumed->Estimate(heavy))
        << name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMergeable, WindowedDriftConformanceTest,
    ::testing::ValuesIn(MergeableSummaryNames(WindowedOptions(1))),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

// ---------------------------------------------------------------------------
// Cross-layer identities that need no failure budget.

TEST(WindowedEngineTest, ShardedExactWindowEqualsSingleRing) {
  // windowed:exact is fully deterministic, so the K-sharded engine must
  // reproduce the single ring bit-for-bit: same rotations (global
  // clock), same coverage, identical estimates.
  const DriftStream drift = MakeDrift(7);
  auto single = MakeSummary("windowed:exact", WindowedOptions(7));
  single->UpdateBatch(drift.items);

  ShardedEngineOptions engine_options;
  engine_options.algorithm = "windowed:exact";
  engine_options.summary = WindowedOptions(7);
  engine_options.num_shards = 4;
  Status status;
  auto engine = ShardedEngine::Create(engine_options, &status);
  ASSERT_NE(engine, nullptr) << status.ToString();
  engine->UpdateBatch(drift.items);

  const auto& merged = engine->MergedView();
  const auto* merged_ring =
      dynamic_cast<const SlidingWindowSummary*>(&merged);
  const auto* single_ring =
      dynamic_cast<const SlidingWindowSummary*>(single.get());
  ASSERT_NE(merged_ring, nullptr);
  ASSERT_NE(single_ring, nullptr);
  EXPECT_EQ(merged_ring->rotations(), single_ring->rotations());
  EXPECT_EQ(merged_ring->window_items(), single_ring->window_items());
  const auto report_single = single->HeavyHitters(kPhi);
  const auto report_engine = engine->HeavyHitters(kPhi);
  ASSERT_EQ(report_single.size(), report_engine.size());
  for (size_t i = 0; i < report_single.size(); ++i) {
    EXPECT_EQ(report_single[i].item, report_engine[i].item);
    EXPECT_EQ(report_single[i].estimate, report_engine[i].estimate);
  }
}

TEST(WindowedEngineTest, CheckpointRestoreResumesTheGlobalClock) {
  const DriftStream drift = MakeDrift(11);
  const std::string dir =
      (std::filesystem::temp_directory_path() / "l1hh_windowed_ckpt")
          .string();
  ShardedEngineOptions engine_options;
  engine_options.algorithm = "windowed:count_min";
  engine_options.summary = WindowedOptions(11);
  engine_options.num_shards = 3;
  Status status;
  auto original = ShardedEngine::Create(engine_options, &status);
  ASSERT_NE(original, nullptr) << status.ToString();

  // Stop mid-bucket, checkpoint, restore, and continue BOTH engines over
  // the identical suffix: reports must match element-wise.
  const size_t split = static_cast<size_t>(kWindow + 3 * kWindow / kBuckets / 2);
  original->UpdateBatch({drift.items.data(), split});
  ASSERT_TRUE(original->Checkpoint(dir).ok());
  auto restored = ShardedEngine::Restore(dir, &status);
  ASSERT_NE(restored, nullptr) << status.ToString();
  ASSERT_TRUE(restored->windowed());
  EXPECT_EQ(restored->ItemsProcessed(), original->ItemsProcessed());

  std::span<const uint64_t> suffix{drift.items.data() + split,
                                   drift.items.size() - split};
  original->UpdateBatch(suffix);
  restored->UpdateBatch(suffix);
  const auto report_a = original->HeavyHitters(kPhi);
  const auto report_b = restored->HeavyHitters(kPhi);
  ASSERT_EQ(report_a.size(), report_b.size());
  for (size_t i = 0; i < report_a.size(); ++i) {
    EXPECT_EQ(report_a[i].item, report_b[i].item);
    EXPECT_EQ(report_a[i].estimate, report_b[i].estimate);
  }
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Multi-producer variants: the K x P ring grid must inherit the windowed
// contract, not dodge it.

// Drives `stream` through P producer threads taking STRICT TURNS: chunk
// i is pushed by producer i % P only after chunk i - 1 returned, so the
// global position claims replay canonical stream order exactly — while
// every slot, ring, and the boundary-rotation protocol still run on real
// threads.  Deterministic structures must then answer bit-for-bit like a
// single ring.
void IngestLockstep(ShardedEngine& engine, std::span<const uint64_t> stream,
                    size_t producers, size_t chunk) {
  std::mutex mutex;
  std::condition_variable cv;
  size_t next_chunk = 0;
  const size_t total_chunks = (stream.size() + chunk - 1) / chunk;
  std::vector<std::thread> threads;
  threads.reserve(producers);
  for (size_t p = 0; p < producers; ++p) {
    Status status;
    auto producer = engine.RegisterProducer(&status);
    ASSERT_NE(producer, nullptr) << status.ToString();
    threads.emplace_back([&, p, producer = std::move(producer)]() mutable {
      while (true) {
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock, [&] {
          return next_chunk >= total_chunks || next_chunk % producers == p;
        });
        if (next_chunk >= total_chunks) break;
        const size_t first = next_chunk * chunk;
        const size_t count = std::min(chunk, stream.size() - first);
        producer->UpdateBatch(stream.subspan(first, count));
        ++next_chunk;
        cv.notify_all();
      }
      producer.reset();
    });
  }
  for (auto& thread : threads) thread.join();
}

TEST(WindowedEngineTest, LockstepProducersEqualSingleRing) {
  const DriftStream drift = MakeDrift(17);
  auto single = MakeSummary("windowed:exact", WindowedOptions(17));
  ASSERT_NE(single, nullptr);
  single->UpdateBatch(drift.items);

  ShardedEngineOptions engine_options;
  engine_options.algorithm = "windowed:exact";
  engine_options.summary = WindowedOptions(17);
  engine_options.num_shards = 4;
  engine_options.num_threads = 2;
  engine_options.max_producers = 5;  // 4 external + slot 0
  Status status;
  auto engine = ShardedEngine::Create(engine_options, &status);
  ASSERT_NE(engine, nullptr) << status.ToString();
  // 384 is deliberately NOT a multiple of the 256-item bucket width, so
  // rotation boundaries land mid-chunk and every producer thread ends up
  // performing rotations of its own.
  IngestLockstep(*engine, drift.items, /*producers=*/4, /*chunk=*/384);
  engine->Flush();
  ASSERT_EQ(engine->ItemsProcessed(), drift.items.size());

  const auto* merged_ring =
      dynamic_cast<const SlidingWindowSummary*>(&engine->MergedView());
  const auto* single_ring =
      dynamic_cast<const SlidingWindowSummary*>(single.get());
  ASSERT_NE(merged_ring, nullptr);
  ASSERT_NE(single_ring, nullptr);
  EXPECT_EQ(merged_ring->rotations(), single_ring->rotations());
  EXPECT_EQ(merged_ring->window_items(), single_ring->window_items());
  const auto report_single = single->HeavyHitters(kPhi);
  const auto report_engine = engine->HeavyHitters(kPhi);
  ASSERT_EQ(report_single.size(), report_engine.size());
  for (size_t i = 0; i < report_single.size(); ++i) {
    EXPECT_EQ(report_single[i].item, report_engine[i].item);
    EXPECT_EQ(report_single[i].estimate, report_engine[i].estimate);
  }
}

TEST(WindowedEngineTest, RacyProducersUnderDriftEvictExpiredHeavies) {
  // Planted drift under P = 4 genuinely RACING producers.  The global
  // interleaving inside each phase is nondeterministic, so the exact
  // window contents cannot be predicted — but the contract's
  // interleaving-invariant clauses can still be demanded outright:
  // phases are separated by joins, the final phase is longer than the
  // window, so (a) heavies of earlier phases must have left the report
  // entirely, (b) final-phase heavies occupy ~16%/12% of ANY
  // interleaving's last-W suffix, far above kPhi, and must be reported,
  // (c) the global clock must have performed a consistent rotation count.
  const DriftStream drift = MakeDrift(19);
  ShardedEngineOptions engine_options;
  engine_options.algorithm = "windowed:exact";
  engine_options.summary = WindowedOptions(19);
  engine_options.num_shards = 4;
  engine_options.num_threads = 2;
  engine_options.max_producers = 5;
  Status status;
  auto engine = ShardedEngine::Create(engine_options, &status);
  ASSERT_NE(engine, nullptr) << status.ToString();

  for (size_t phase = 0; phase < kPhases; ++phase) {
    const size_t first = static_cast<size_t>(drift.phase_starts[phase]);
    const size_t last = phase + 1 < kPhases
                            ? static_cast<size_t>(drift.phase_starts[phase + 1])
                            : drift.items.size();
    std::vector<std::thread> threads;
    const size_t span = last - first;
    for (size_t p = 0; p < 4; ++p) {
      auto producer = engine->RegisterProducer(&status);
      ASSERT_NE(producer, nullptr) << status.ToString();
      const size_t begin = first + p * span / 4;
      const size_t end = first + (p + 1) * span / 4;
      threads.emplace_back(
          [&drift, begin, end, producer = std::move(producer)]() mutable {
            // Small sub-batches maximize cross-producer interleaving.
            size_t i = begin;
            while (i < end) {
              const size_t chunk = std::min<size_t>(777, end - i);
              producer->UpdateBatch({drift.items.data() + i, chunk});
              i += chunk;
            }
            producer.reset();
          });
    }
    for (auto& thread : threads) thread.join();
  }
  engine->Flush();
  ASSERT_EQ(engine->ItemsProcessed(), drift.items.size());

  const auto report = engine->HeavyHitters(kPhi);
  for (size_t p = 0; p + 1 < kPhases; ++p) {
    for (const uint64_t expired : drift.planted_ids[p]) {
      EXPECT_FALSE(std::any_of(
          report.begin(), report.end(),
          [expired](const ItemEstimate& e) { return e.item == expired; }))
          << "phase-" << p << " heavy " << expired
          << " survived a full final phase under racing producers";
    }
  }
  for (const uint64_t fresh : drift.planted_ids[kPhases - 1]) {
    EXPECT_TRUE(std::any_of(
        report.begin(), report.end(),
        [fresh](const ItemEstimate& e) { return e.item == fresh; }))
        << "final-phase heavy " << fresh << " missing from the report";
  }
  // The clock: T items at stride W/B admit exactly floor((T-1)/stride)
  // completed rotations once everything is applied and no producer is
  // mid-claim (the at-boundary +1 state is transient).
  const auto* ring =
      dynamic_cast<const SlidingWindowSummary*>(&engine->MergedView());
  ASSERT_NE(ring, nullptr);
  const uint64_t stride = kWindow / kBuckets;
  EXPECT_EQ(ring->rotations(), (drift.items.size() - 1) / stride);
}

TEST(WindowedEngineTest, CheckpointWithLiveProducersRestoresValidClock) {
  // Checkpoints taken from a third thread WHILE two producers race must
  // each restore cleanly: the manifest clock, the per-shard rotation
  // counts, and the widened rotation-vs-count validation (a checkpoint
  // can catch the instant where a boundary rotation fired but its
  // boundary item is not yet applied) all have to line up.
  const DriftStream drift = MakeDrift(23);
  const std::string dir =
      (std::filesystem::temp_directory_path() / "l1hh_live_producer_ckpt")
          .string();
  ShardedEngineOptions engine_options;
  engine_options.algorithm = "windowed:exact";
  engine_options.summary = WindowedOptions(23);
  engine_options.num_shards = 3;
  engine_options.num_threads = 2;
  engine_options.max_producers = 3;
  Status status;
  auto engine = ShardedEngine::Create(engine_options, &status);
  ASSERT_NE(engine, nullptr) << status.ToString();

  const size_t total = drift.items.size();
  std::vector<std::thread> producers;
  for (size_t p = 0; p < 2; ++p) {
    auto producer = engine->RegisterProducer(&status);
    ASSERT_NE(producer, nullptr) << status.ToString();
    const size_t begin = p * total / 2;
    const size_t end = (p + 1) * total / 2;
    producers.emplace_back(
        [&drift, begin, end, producer = std::move(producer)]() mutable {
          size_t i = begin;
          while (i < end) {
            const size_t chunk = std::min<size_t>(512, end - i);
            producer->UpdateBatch({drift.items.data() + i, chunk});
            i += chunk;
          }
          producer.reset();
        });
  }

  int checkpoints = 0;
  while (engine->ItemsProcessed() < total && checkpoints < 8) {
    ASSERT_TRUE(engine->Checkpoint(dir).ok());
    auto restored = ShardedEngine::Restore(dir, &status);
    ASSERT_NE(restored, nullptr)
        << "mid-ingest checkpoint " << checkpoints
        << " failed to restore: " << status.ToString();
    EXPECT_TRUE(restored->windowed());
    EXPECT_LE(restored->ItemsProcessed(), total);
    ++checkpoints;
  }
  for (auto& thread : producers) thread.join();

  // After the producers retire, a final checkpoint must restore to a
  // clock that resumes exactly: same applied count, same report.
  ASSERT_TRUE(engine->Checkpoint(dir).ok());
  auto restored = ShardedEngine::Restore(dir, &status);
  ASSERT_NE(restored, nullptr) << status.ToString();
  EXPECT_EQ(restored->ItemsProcessed(), total);
  const auto report_a = engine->HeavyHitters(kPhi);
  const auto report_b = restored->HeavyHitters(kPhi);
  ASSERT_EQ(report_a.size(), report_b.size());
  for (size_t i = 0; i < report_a.size(); ++i) {
    EXPECT_EQ(report_a[i].item, report_b[i].item);
    EXPECT_EQ(report_a[i].estimate, report_b[i].estimate);
  }
  std::filesystem::remove_all(dir);
}

TEST(WindowedEngineTest, SinceTimeZeroSummaryKeepsStaleHeavies) {
  // The motivating contrast: over a drifting stream, the whole-stream
  // summary still reports phase-1 heavies at the end — the windowed view
  // is what makes the report current.
  const DriftStream drift = MakeDrift(13);
  SummaryOptions options = WindowedOptions(13);
  auto whole = MakeSummary("exact", options);
  auto windowed = MakeSummary("windowed:exact", options);
  whole->UpdateBatch(drift.items);
  windowed->UpdateBatch(drift.items);
  const double stale_phi = 0.04;  // 0.12 per phase / 3 phases = 0.04
  const auto whole_report = whole->HeavyHitters(stale_phi);
  const uint64_t stale = drift.planted_ids[0][0];
  EXPECT_TRUE(std::any_of(
      whole_report.begin(), whole_report.end(),
      [stale](const ItemEstimate& e) { return e.item == stale; }));
  EXPECT_EQ(windowed->Estimate(stale), 0.0);
}

}  // namespace
}  // namespace l1hh
