#include "hash/universal_hash.h"

#include <gtest/gtest.h>

#include <cmath>
#include <unordered_set>
#include <vector>

#include "hash/multiply_shift.h"
#include "hash/tabulation_hash.h"
#include "util/bit_stream.h"

namespace l1hh {
namespace {

TEST(UniversalHashTest, InRange) {
  Rng rng(1);
  for (uint64_t range : {2ull, 7ull, 100ull, 1ull << 20}) {
    const UniversalHash h = UniversalHash::Draw(rng, range);
    for (uint64_t x = 0; x < 1000; ++x) {
      EXPECT_LT(h(x), range);
    }
  }
}

TEST(UniversalHashTest, Deterministic) {
  Rng rng(2);
  const UniversalHash h = UniversalHash::Draw(rng, 1 << 16);
  for (uint64_t x = 0; x < 100; ++x) {
    EXPECT_EQ(h(x), h(x));
  }
}

// Definition 2: Pr[h(a) = h(b)] ~ 1/range for a != b.
TEST(UniversalHashTest, PairwiseCollisionProbability) {
  Rng rng(3);
  const uint64_t range = 64;
  const int draws = 40000;
  int collisions = 0;
  for (int i = 0; i < draws; ++i) {
    const UniversalHash h = UniversalHash::Draw(rng, range);
    if (h(12345) == h(67890)) ++collisions;
  }
  const double expected = static_cast<double>(draws) / range;
  EXPECT_NEAR(collisions, expected, 6 * std::sqrt(expected));
}

// Lemma 2: with range >= |S|^2/delta, a fixed S has no collisions whp.
TEST(UniversalHashTest, Lemma2CollisionFreeOnSmallSets) {
  Rng rng(4);
  const size_t s = 100;
  const double delta = 0.1;
  const uint64_t range = static_cast<uint64_t>(s * s / delta);
  int failures = 0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    const UniversalHash h = UniversalHash::Draw(rng, range);
    std::unordered_set<uint64_t> seen;
    bool collided = false;
    for (size_t x = 0; x < s; ++x) {
      if (!seen.insert(h(x * 7919 + 13)).second) collided = true;
    }
    if (collided) ++failures;
  }
  // Expected failure rate <= delta = 10%; allow generous margin.
  EXPECT_LT(failures, static_cast<int>(trials * 2 * delta));
}

TEST(UniversalHashTest, ExtremeInputsStayInRange) {
  Rng rng(99);
  const UniversalHash h = UniversalHash::Draw(rng, 1000);
  // Inputs above the Mersenne prime exercise the pre-reduction path.
  for (const uint64_t x :
       {UINT64_MAX, UINT64_MAX - 1, UniversalHash::kPrime,
        UniversalHash::kPrime + 1, uint64_t{1} << 63}) {
    EXPECT_LT(h(x), 1000u);
    EXPECT_EQ(h(x), h(x));
  }
  // The prime reduction wraps: x and x + p collide by construction — they
  // are the same field element.  Universality is over [p], as in the paper.
  EXPECT_EQ(h(5), h(5 + UniversalHash::kPrime));
}

TEST(UniversalHashTest, SerializeRoundTrip) {
  Rng rng(5);
  const UniversalHash h = UniversalHash::Draw(rng, 12345);
  BitWriter w;
  h.Serialize(w);
  BitReader r(w);
  const UniversalHash h2 = UniversalHash::Deserialize(r);
  EXPECT_EQ(h, h2);
  for (uint64_t x = 0; x < 100; ++x) EXPECT_EQ(h(x), h2(x));
}

TEST(UniversalHashTest, SeedBitsIsOLogN) {
  Rng rng(6);
  const UniversalHash h = UniversalHash::Draw(rng, 1000);
  EXPECT_LE(h.SeedBits(), 2 * 61 + 64);
  EXPECT_GE(h.SeedBits(), 2 * 61);
}

TEST(MultiplyShiftTest, InRangeAndDeterministic) {
  Rng rng(7);
  const MultiplyShiftHash h = MultiplyShiftHash::Draw(rng, 10);
  for (uint64_t x = 0; x < 1000; ++x) {
    EXPECT_LT(h(x), 1024u);
    EXPECT_EQ(h(x), h(x));
  }
}

TEST(MultiplyShiftTest, CollisionProbability) {
  Rng rng(8);
  const int log2r = 6;  // range 64
  const int draws = 40000;
  int collisions = 0;
  for (int i = 0; i < draws; ++i) {
    const MultiplyShiftHash h = MultiplyShiftHash::Draw(rng, log2r);
    if (h(555) == h(999)) ++collisions;
  }
  const double expected = static_cast<double>(draws) / 64;
  // 2-universal guarantee is <= 2/range for plain multiply-shift; the
  // add-shift variant used here achieves ~1/range.
  EXPECT_LT(collisions, 2.5 * expected);
}

TEST(MultiplyShiftTest, SerializeRoundTrip) {
  Rng rng(9);
  const MultiplyShiftHash h = MultiplyShiftHash::Draw(rng, 12);
  BitWriter w;
  h.Serialize(w);
  BitReader r(w);
  const MultiplyShiftHash h2 = MultiplyShiftHash::Deserialize(r);
  for (uint64_t x = 0; x < 200; ++x) EXPECT_EQ(h(x), h2(x));
}

TEST(TabulationHashTest, SignIsBalanced) {
  Rng rng(10);
  const TabulationHash h = TabulationHash::Draw(rng);
  int sum = 0;
  const int n = 100000;
  for (int x = 0; x < n; ++x) sum += h.Sign(static_cast<uint64_t>(x));
  EXPECT_NEAR(sum, 0, 6 * std::sqrt(n));
}

TEST(TabulationHashTest, AvalancheOnSingleBitFlips) {
  Rng rng(11);
  const TabulationHash h = TabulationHash::Draw(rng);
  for (int bit = 0; bit < 64; ++bit) {
    const uint64_t a = 0xabcdef0123456789ULL;
    const uint64_t b = a ^ (uint64_t{1} << bit);
    EXPECT_NE(h(a), h(b));
  }
}

// Property sweep: collision rates near 1/range across ranges.
class HashRangeSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HashRangeSweep, CollisionRateMatchesUniversality) {
  const uint64_t range = GetParam();
  Rng rng(100 + range);
  const int draws = 20000;
  int collisions = 0;
  for (int i = 0; i < draws; ++i) {
    const UniversalHash h = UniversalHash::Draw(rng, range);
    if (h(42) == h(43 + range)) ++collisions;
  }
  const double expected = static_cast<double>(draws) / range;
  EXPECT_NEAR(collisions, expected, 6 * std::sqrt(expected) + 3);
}

INSTANTIATE_TEST_SUITE_P(Ranges, HashRangeSweep,
                         ::testing::Values(2, 3, 16, 101, 1024, 65536));

}  // namespace
}  // namespace l1hh
