// Cross-module property tests: invariants that tie different components
// together, checked over randomized instances.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/bdw_optimal.h"
#include "core/bdw_simple.h"
#include "core/unknown_length.h"
#include "stream/stream_generator.h"
#include "stream/vote_generator.h"
#include "summary/exact_counter.h"
#include "summary/misra_gries.h"
#include "summary/space_saving.h"
#include "votes/election.h"

namespace l1hh {
namespace {

// Truth is bracketed by the two deterministic summaries:
// MG(x) <= f(x) <= SS(x) for tracked x (same k, same stream).
TEST(PropertiesTest, MisraGriesAndSpaceSavingBracketTruth) {
  Rng rng(1);
  for (int trial = 0; trial < 5; ++trial) {
    const size_t k = 16 + 8 * trial;
    MisraGries mg(k);
    SpaceSaving ss(k);
    ExactCounter exact;
    const auto stream =
        MakeZipfStream(1 << 12, 0.7 + 0.2 * trial, 40000, 10 + trial);
    for (const uint64_t x : stream) {
      mg.Insert(x);
      ss.Insert(x);
      exact.Insert(x);
    }
    for (const auto& e : ss.Entries()) {
      const uint64_t truth = exact.Count(e.item);
      EXPECT_LE(mg.Estimate(e.item), truth);
      EXPECT_GE(e.count, truth);
    }
  }
}

// Election identities: Borda(i) = sum_j Pairwise(i,j);
// maximin(i) >= plurality(i); maximin(i)*(n-1) <= Borda(i).
TEST(PropertiesTest, ElectionScoreIdentities) {
  Rng rng(2);
  for (int trial = 0; trial < 8; ++trial) {
    const uint32_t n = 4 + trial;
    Election e(n);
    const auto votes = MakeMallowsVotes(n, 500, 0.3 + 0.08 * trial,
                                        20 + trial);
    for (const auto& v : votes) e.AddVote(v);
    const auto borda = e.BordaScores();
    const auto maximin = e.MaximinScores();
    const auto plurality = e.PluralityScores();
    for (uint32_t i = 0; i < n; ++i) {
      uint64_t pairwise_sum = 0;
      for (uint32_t j = 0; j < n; ++j) {
        if (j != i) pairwise_sum += e.Pairwise(i, j);
      }
      EXPECT_EQ(borda[i], pairwise_sum);
      // A top-ranked vote defeats every opponent.
      EXPECT_GE(maximin[i], plurality[i]);
      // The worst pairwise is at most the average pairwise.
      EXPECT_LE(maximin[i] * (n - 1), borda[i]);
    }
  }
}

// Lemma 3, empirically: Bernoulli(2^-k) thinning preserves all relative
// frequencies within eps for r >~ 2 eps^-2 log(2/delta) samples.
TEST(PropertiesTest, SamplingPreservesFrequencies) {
  Rng rng(3);
  const uint64_t m = 1 << 19;
  const auto stream = MakeZipfStream(256, 1.0, m, 30);
  ExactCounter full;
  ExactCounter sampled;
  const int k = 4;  // p = 1/16 -> r ~ 32k samples -> eps ~ 0.02 whp
  for (const uint64_t x : stream) {
    full.Insert(x);
    if (rng.AllZeroBits(k)) sampled.Insert(x);
  }
  const double r = static_cast<double>(sampled.total());
  ASSERT_GT(r, 1000);
  for (uint64_t x = 0; x < 256; ++x) {
    const double rel_full =
        static_cast<double>(full.Count(x)) / static_cast<double>(m);
    const double rel_sample = static_cast<double>(sampled.Count(x)) / r;
    EXPECT_NEAR(rel_sample, rel_full, 0.02);
  }
}

// Serialization idempotence: deserialize(serialize(x)) serializes to the
// identical bit string.
TEST(PropertiesTest, SerializationIdempotent) {
  BdwSimple::Options opt;
  opt.epsilon = 0.05;
  opt.phi = 0.2;
  opt.universe_size = 1 << 20;
  opt.stream_length = 20000;
  BdwSimple sketch(opt, 40);
  Rng rng(41);
  for (int i = 0; i < 20000; ++i) sketch.Insert(rng.UniformU64(100));
  BitWriter first;
  sketch.Serialize(first);
  BitReader r(first);
  const BdwSimple copy = BdwSimple::Deserialize(r, 42);
  BitWriter second;
  copy.Serialize(second);
  ASSERT_EQ(first.size_bits(), second.size_bits());
  EXPECT_EQ(first.words(), second.words());
}

// Randomized soak: random (eps, phi, order, skew) configurations, checking
// the full Definition 1 contract each time.  Catches parameter-dependent
// corner cases the fixed grids miss.
TEST(PropertiesTest, RandomConfigSoak) {
  Rng meta(4);
  int failures = 0;
  const int trials = 12;
  for (int t = 0; t < trials; ++t) {
    const double eps = 0.01 + 0.04 * meta.UniformDouble();
    const double phi = 4 * eps + 0.2 * meta.UniformDouble();
    const uint64_t m = 20000 + meta.UniformU64(40000);
    PlantedSpec spec{{phi * 1.4, phi + 2 * eps}, uint64_t{1} << 22, m};
    spec.order = static_cast<StreamOrder>(meta.UniformU64(4));
    const PlantedStream s = MakePlantedStream(spec, 100 + t);

    const bool use_optimal = (meta.NextU64() & 1) != 0;
    ExactCounter exact;
    std::vector<HeavyHitter> report;
    if (use_optimal) {
      BdwOptimal::Options opt;
      opt.epsilon = eps;
      opt.phi = phi;
      opt.universe_size = uint64_t{1} << 22;
      opt.stream_length = m;
      BdwOptimal sketch(opt, 200 + t);
      for (const uint64_t x : s.items) {
        sketch.Insert(x);
        exact.Insert(x);
      }
      report = sketch.Report();
    } else {
      BdwSimple::Options opt;
      opt.epsilon = eps;
      opt.phi = phi;
      opt.universe_size = uint64_t{1} << 22;
      opt.stream_length = m;
      BdwSimple sketch(opt, 200 + t);
      for (const uint64_t x : s.items) {
        sketch.Insert(x);
        exact.Insert(x);
      }
      report = sketch.Report();
    }
    bool ok = true;
    int found = 0;
    for (const auto& hh : report) {
      const double truth = static_cast<double>(exact.Count(hh.item));
      if (truth <= (phi - eps) * static_cast<double>(m)) ok = false;
      if (std::abs(hh.estimated_count - truth) >
          eps * static_cast<double>(m)) {
        ok = false;
      }
      if (hh.item == s.planted_ids[0] || hh.item == s.planted_ids[1]) {
        ++found;
      }
    }
    if (found < 2) ok = false;
    if (!ok) ++failures;
  }
  EXPECT_LE(failures, 3);  // delta = 0.1 per trial
}

// A heavy item that appears only in the final tenth of the stream must
// still be caught by the unknown-length wrapper (its reporter window
// always covers all but an eps-fraction *prefix*).
TEST(PropertiesTest, UnknownLengthLateHeavyCaught) {
  BdwSimple::Options base;
  base.epsilon = 0.05;
  base.phi = 0.05;  // phi <= late item's 10% share
  base.delta = 0.1;
  base.universe_size = uint64_t{1} << 20;
  base.stream_length = 0;
  int failures = 0;
  for (int t = 0; t < 4; ++t) {
    auto w = MakeUnknownLengthListHeavyHitters(base, 1 << 22, 50 + t);
    Rng rng(60 + t);
    const uint64_t m = 200000;
    for (uint64_t i = 0; i < m; ++i) {
      if (i >= 9 * m / 10) {
        w.Insert(uint64_t{7});  // last 10% all one item
      } else {
        w.Insert(1000 + rng.UniformU64(100000));
      }
    }
    bool found = false;
    for (const auto& hh : w.Reporter().Report()) {
      if (hh.item == 7) found = true;
    }
    if (!found) ++failures;
  }
  EXPECT_LE(failures, 1);
}

// Space accounting sanity: every sketch's SpaceBits is dominated by (and
// usually far below) the serialized size plus hash-seed overhead, and is
// stable across identical runs.
TEST(PropertiesTest, SpaceAccountingDeterministic) {
  BdwOptimal::Options opt;
  opt.epsilon = 0.05;
  opt.phi = 0.2;
  opt.universe_size = 1 << 20;
  opt.stream_length = 30000;
  BdwOptimal a(opt, 70), b(opt, 70);
  const auto stream = MakeZipfStream(1 << 16, 1.2, 30000, 71);
  for (const uint64_t x : stream) {
    a.Insert(x);
    b.Insert(x);
  }
  EXPECT_EQ(a.SpaceBits(), b.SpaceBits());
  BitWriter w;
  a.Serialize(w);
  EXPECT_GT(w.size_bits(), 0u);
}

}  // namespace
}  // namespace l1hh
