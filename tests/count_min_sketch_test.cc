#include "summary/count_min_sketch.h"

#include <gtest/gtest.h>

#include "stream/stream_generator.h"
#include "summary/exact_counter.h"
#include "util/random.h"

namespace l1hh {
namespace {

TEST(CountMinTest, NeverUnderestimates) {
  Rng rng(1);
  CountMinSketch cms(CountMinSketch::Options{256, 4, false}, 99);
  ExactCounter exact;
  for (int i = 0; i < 50000; ++i) {
    const uint64_t x = rng.UniformU64(2000);
    cms.Insert(x);
    exact.Insert(x);
  }
  for (uint64_t x = 0; x < 2000; ++x) {
    EXPECT_GE(cms.Estimate(x), exact.Count(x));
  }
}

TEST(CountMinTest, ErrorBoundedByEpsM) {
  // ForError(eps, delta): estimate <= f + eps*m whp per item.
  const double eps = 0.01;
  CountMinSketch cms = CountMinSketch::ForError(eps, 0.01, 7);
  ExactCounter exact;
  const uint64_t m = 100000;
  const auto stream = MakeZipfStream(1 << 16, 1.1, m, 5);
  for (const uint64_t x : stream) {
    cms.Insert(x);
    exact.Insert(x);
  }
  int violations = 0;
  for (uint64_t x = 0; x < 5000; ++x) {
    if (cms.Estimate(x) > exact.Count(x) + static_cast<uint64_t>(eps * m)) {
      ++violations;
    }
  }
  EXPECT_LE(violations, 5000 * 0.02);
}

TEST(CountMinTest, ConservativeNeverWorse) {
  Rng rng(2);
  CountMinSketch plain(CountMinSketch::Options{128, 4, false}, 31);
  CountMinSketch cons(CountMinSketch::Options{128, 4, true}, 31);
  ExactCounter exact;
  for (int i = 0; i < 40000; ++i) {
    const uint64_t x = rng.UniformU64(3000);
    plain.Insert(x);
    cons.Insert(x);
    exact.Insert(x);
  }
  for (uint64_t x = 0; x < 3000; ++x) {
    EXPECT_GE(cons.Estimate(x), exact.Count(x));
    EXPECT_LE(cons.Estimate(x), plain.Estimate(x));
  }
}

TEST(CountMinTest, WeightedInsert) {
  CountMinSketch cms(CountMinSketch::Options{64, 3, false}, 11);
  cms.Insert(5, 100);
  cms.Insert(5, 23);
  EXPECT_GE(cms.Estimate(5), 123u);
}

TEST(CountMinTest, EmptySketchEstimatesZero) {
  CountMinSketch cms(CountMinSketch::Options{64, 3, false}, 13);
  EXPECT_EQ(cms.Estimate(42), 0u);
}

TEST(CountMinTest, SerializeRoundTrip) {
  Rng rng(3);
  CountMinSketch cms(CountMinSketch::Options{128, 5, true}, 17);
  for (int i = 0; i < 20000; ++i) cms.Insert(rng.UniformU64(500));
  BitWriter w;
  cms.Serialize(w);
  BitReader r(w);
  const CountMinSketch cms2 = CountMinSketch::Deserialize(r);
  for (uint64_t x = 0; x < 500; ++x) {
    EXPECT_EQ(cms2.Estimate(x), cms.Estimate(x));
  }
}

TEST(CountMinHeavyHittersTest, FindsPlantedHeavies) {
  const double eps = 0.02, phi = 0.1;
  const uint64_t m = 60000;
  const PlantedSpec spec{{2 * phi, phi}, 1 << 20, m};
  const PlantedStream s = MakePlantedStream(spec, 21);
  CountMinHeavyHitters hh(eps, phi, 0.05, 23);
  for (const uint64_t x : s.items) hh.Insert(x);
  const auto report = hh.Report();
  bool found0 = false, found1 = false;
  for (const auto& e : report) {
    if (e.item == s.planted_ids[0]) found0 = true;
    if (e.item == s.planted_ids[1]) found1 = true;
  }
  EXPECT_TRUE(found0);
  EXPECT_TRUE(found1);
}

TEST(CountMinHeavyHittersTest, NoDeepFalsePositives) {
  const double eps = 0.05, phi = 0.25;
  const uint64_t m = 40000;
  CountMinHeavyHitters hh(eps, phi, 0.05, 29);
  ExactCounter exact;
  const auto stream = MakeZipfStream(1 << 16, 1.0, m, 31);
  for (const uint64_t x : stream) {
    hh.Insert(x);
    exact.Insert(x);
  }
  for (const auto& e : hh.Report()) {
    EXPECT_GT(exact.Count(e.item),
              static_cast<uint64_t>((phi - eps) * m));
  }
}

TEST(CountMinHeavyHittersTest, CandidateSetStaysBounded) {
  CountMinHeavyHitters hh(0.05, 0.2, 0.05, 37);
  Rng rng(41);
  for (int i = 0; i < 100000; ++i) hh.Insert(rng.UniformU64(50));
  // Candidates pruned to O(1/phi): sane space.
  EXPECT_LT(hh.SpaceBits(), 200000u);
}

TEST(CountMinTest, ForErrorSizing) {
  const CountMinSketch cms = CountMinSketch::ForError(0.001, 0.01, 1);
  EXPECT_GE(cms.width() * 1.0, std::exp(1.0) / 0.001 * 0.9);
  EXPECT_GE(cms.depth(), 4u);
}

}  // namespace
}  // namespace l1hh
