#include "util/bit_stream.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/random.h"

namespace l1hh {
namespace {

TEST(BitStreamTest, RoundTripFixedWidth) {
  BitWriter w;
  w.WriteBits(0b101, 3);
  w.WriteBits(0xdeadbeef, 32);
  w.WriteBits(1, 1);
  w.WriteU64(0x0123456789abcdefULL);
  EXPECT_EQ(w.size_bits(), 3u + 32u + 1u + 64u);

  BitReader r(w);
  EXPECT_EQ(r.ReadBits(3), 0b101u);
  EXPECT_EQ(r.ReadBits(32), 0xdeadbeefu);
  EXPECT_EQ(r.ReadBits(1), 1u);
  EXPECT_EQ(r.ReadU64(), 0x0123456789abcdefULL);
  EXPECT_FALSE(r.overflow());
}

TEST(BitStreamTest, RoundTripGamma) {
  BitWriter w;
  std::vector<uint64_t> values = {1, 2, 3, 4, 5, 100, 1000, 123456789,
                                  (uint64_t{1} << 40) + 7};
  for (const uint64_t v : values) w.WriteGamma(v);
  BitReader r(w);
  for (const uint64_t v : values) EXPECT_EQ(r.ReadGamma(), v);
  EXPECT_FALSE(r.overflow());
}

TEST(BitStreamTest, RoundTripCounterIncludesZero) {
  BitWriter w;
  for (uint64_t v = 0; v < 300; ++v) w.WriteCounter(v);
  BitReader r(w);
  for (uint64_t v = 0; v < 300; ++v) EXPECT_EQ(r.ReadCounter(), v);
}

TEST(BitStreamTest, RoundTripDouble) {
  BitWriter w;
  w.WriteDouble(3.14159);
  w.WriteDouble(-0.0);
  w.WriteDouble(1e-300);
  BitReader r(w);
  EXPECT_DOUBLE_EQ(r.ReadDouble(), 3.14159);
  EXPECT_DOUBLE_EQ(r.ReadDouble(), -0.0);
  EXPECT_DOUBLE_EQ(r.ReadDouble(), 1e-300);
}

TEST(BitStreamTest, OverflowDetected) {
  BitWriter w;
  w.WriteBits(0b11, 2);
  BitReader r(w);
  EXPECT_EQ(r.ReadBits(2), 0b11u);
  EXPECT_EQ(r.ReadBits(1), 0u);
  EXPECT_TRUE(r.overflow());
}

TEST(BitStreamTest, RandomizedMixedRoundTrip) {
  Rng rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    BitWriter w;
    std::vector<std::pair<uint64_t, int>> fixed;
    std::vector<uint64_t> gammas;
    for (int i = 0; i < 200; ++i) {
      if (rng.NextU64() & 1) {
        const int nbits = 1 + static_cast<int>(rng.UniformU64(64));
        uint64_t v = rng.NextU64();
        if (nbits < 64) v &= (uint64_t{1} << nbits) - 1;
        fixed.push_back({v, nbits});
        w.WriteBits(v, nbits);
        gammas.push_back(UINT64_MAX);  // marker
      } else {
        const uint64_t v = 1 + rng.UniformU64(1 << 20);
        gammas.push_back(v);
        fixed.push_back({0, 0});
        w.WriteGamma(v);
      }
    }
    BitReader r(w);
    for (int i = 0; i < 200; ++i) {
      if (gammas[i] == UINT64_MAX) {
        EXPECT_EQ(r.ReadBits(fixed[i].second), fixed[i].first);
      } else {
        EXPECT_EQ(r.ReadGamma(), gammas[i]);
      }
    }
    EXPECT_FALSE(r.overflow());
  }
}

TEST(BitReaderTest, OverflowRecordsPositionAndStatus) {
  BitWriter w;
  w.WriteBits(0x2A, 10);
  BitReader r(w);
  EXPECT_TRUE(r.status().ok());
  EXPECT_EQ(r.ReadBits(8), 0x2Au);
  EXPECT_EQ(r.ReadBits(8), 0u);  // only 2 bits left: out of bounds
  EXPECT_TRUE(r.overflow());
  EXPECT_EQ(r.overflow_position(), 8u);  // where the bad read began
  const Status s = r.status();
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("bit 8"), std::string::npos) << s.ToString();
  // Subsequent failures keep the FIRST offending position.
  (void)r.ReadU64();
  EXPECT_EQ(r.overflow_position(), 8u);
}

TEST(BitReaderTest, ExternalBufferConstructorReadsAndClampsLimit) {
  const uint64_t words[2] = {0x0123456789ABCDEFULL, 0xFEDCBA9876543210ULL};
  {
    BitReader r(words, 2, 128);
    EXPECT_EQ(r.ReadU64(), words[0]);
    EXPECT_EQ(r.ReadU64(), words[1]);
    EXPECT_FALSE(r.overflow());
  }
  {
    // A limit beyond the buffer must be clamped, not trusted: reading the
    // claimed 200 bits stops cleanly at 128.
    BitReader r(words, 2, 200);
    EXPECT_EQ(r.remaining_bits(), 128u);
    (void)r.ReadU64();
    (void)r.ReadU64();
    (void)r.ReadBits(1);
    EXPECT_TRUE(r.overflow());
  }
  {
    // Bit-level limit below a word boundary.
    BitReader r(words, 1, 12);
    EXPECT_EQ(r.ReadBits(12), 0xDEFu);
    EXPECT_FALSE(r.overflow());
    (void)r.ReadBits(1);
    EXPECT_TRUE(r.overflow());
  }
}

}  // namespace
}  // namespace l1hh
