#include "core/bdw_simple.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "stream/stream_generator.h"
#include "summary/exact_counter.h"

namespace l1hh {
namespace {

BdwSimple::Options MakeOptions(double eps, double phi, uint64_t m,
                               uint64_t n = uint64_t{1} << 24) {
  BdwSimple::Options opt;
  opt.epsilon = eps;
  opt.phi = phi;
  opt.delta = 0.1;
  opt.universe_size = n;
  opt.stream_length = m;
  return opt;
}

TEST(BdwSimpleTest, OptionsValidate) {
  EXPECT_TRUE(MakeOptions(0.01, 0.05, 1000).Validate().ok());
  EXPECT_FALSE(MakeOptions(0.0, 0.05, 1000).Validate().ok());
  EXPECT_FALSE(MakeOptions(0.1, 0.05, 1000).Validate().ok());  // eps >= phi
  EXPECT_FALSE(MakeOptions(0.01, 0.05, 0).Validate().ok());
}

// Definition 1's contract, checked over independent trials: every phi-heavy
// item reported, nothing below (phi-eps)m reported, and |est - f| <= eps*m.
TEST(BdwSimpleTest, HeavyHitterContractOnPlantedStream) {
  const double eps = 0.02, phi = 0.1;
  const uint64_t m = 60000;
  int contract_failures = 0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    // Heavies at phi*m and 2*phi*m; decoys safely below (phi-eps)m.
    const PlantedSpec spec{{2 * phi, phi, phi - 2 * eps}, 1 << 24, m};
    const PlantedStream s = MakePlantedStream(spec, 100 + t);
    BdwSimple sketch(MakeOptions(eps, phi, m), 900 + t);
    ExactCounter exact;
    for (const uint64_t x : s.items) {
      sketch.Insert(x);
      exact.Insert(x);
    }
    bool ok = true;
    const auto report = sketch.Report();
    std::unordered_set<uint64_t> reported;
    for (const auto& hh : report) {
      reported.insert(hh.item);
      // No false positives below (phi - eps) m.
      if (exact.Count(hh.item) <= static_cast<uint64_t>((phi - eps) * m)) {
        ok = false;
      }
      // Estimates within eps*m.
      if (std::abs(hh.estimated_count -
                   static_cast<double>(exact.Count(hh.item))) >
          eps * static_cast<double>(m)) {
        ok = false;
      }
    }
    // Both planted heavies (f >= phi*m) must be present.
    if (reported.count(s.planted_ids[0]) == 0) ok = false;
    if (reported.count(s.planted_ids[1]) == 0) ok = false;
    if (!ok) ++contract_failures;
  }
  // delta = 0.1; allow a small-sample margin.
  EXPECT_LE(contract_failures, 4);
}

TEST(BdwSimpleTest, NoFalsePositivesOnUniformStream) {
  const double eps = 0.05, phi = 0.2;
  const uint64_t m = 40000;
  // Uniform over 1000 items: max frequency ~ m/1000 << (phi-eps)m.
  const auto stream = MakeUniformStream(1000, m, 3);
  BdwSimple sketch(MakeOptions(eps, phi, m), 17);
  for (const uint64_t x : stream) sketch.Insert(x);
  EXPECT_TRUE(sketch.Report().empty());
}

TEST(BdwSimpleTest, SingleItemStreamIsTheHeavyHitter) {
  const uint64_t m = 20000;
  BdwSimple sketch(MakeOptions(0.05, 0.5, m), 5);
  for (uint64_t i = 0; i < m; ++i) sketch.Insert(1234);
  const auto report = sketch.Report();
  ASSERT_EQ(report.size(), 1u);
  EXPECT_EQ(report[0].item, 1234u);
  EXPECT_NEAR(report[0].estimated_fraction, 1.0, 0.05);
}

TEST(BdwSimpleTest, AdversarialOrdersDoNotBreakContract) {
  const double eps = 0.04, phi = 0.15;
  const uint64_t m = 50000;
  for (const StreamOrder order :
       {StreamOrder::kHeaviesFirst, StreamOrder::kHeaviesLast,
        StreamOrder::kBursty}) {
    PlantedSpec spec{{0.3, 0.2}, 1 << 24, m};
    spec.order = order;
    const PlantedStream s = MakePlantedStream(spec, 77);
    BdwSimple sketch(MakeOptions(eps, phi, m), 23);
    for (const uint64_t x : s.items) sketch.Insert(x);
    std::unordered_set<uint64_t> reported;
    for (const auto& hh : sketch.Report()) reported.insert(hh.item);
    EXPECT_TRUE(reported.count(s.planted_ids[0]) == 1)
        << "order " << static_cast<int>(order);
    EXPECT_TRUE(reported.count(s.planted_ids[1]) == 1)
        << "order " << static_cast<int>(order);
  }
}

TEST(BdwSimpleTest, ShortStreamSamplesEverything) {
  // m below the sample budget: p = 1, sketch is exact-ish.
  const uint64_t m = 200;
  BdwSimple sketch(MakeOptions(0.1, 0.4, m), 7);
  for (uint64_t i = 0; i < m / 2; ++i) sketch.Insert(1);
  for (uint64_t i = 0; i < m / 2; ++i) sketch.Insert(2);
  EXPECT_EQ(sketch.samples_taken(), m);
  const auto report = sketch.Report();
  EXPECT_EQ(report.size(), 2u);
}

TEST(BdwSimpleTest, SpaceBitsSublinearInStream) {
  const uint64_t m = 1 << 20;
  BdwSimple sketch(MakeOptions(0.01, 0.05, m), 9);
  Rng rng(10);
  for (uint64_t i = 0; i < m; ++i) sketch.Insert(rng.UniformU64(1 << 20));
  // Space must be tiny compared to the stream (this is the whole point).
  EXPECT_LT(sketch.SpaceBits(), 200000u);
  EXPECT_GT(sketch.SpaceBits(), 100u);
}

TEST(BdwSimpleTest, SerializeRoundTripAndResume) {
  const uint64_t m = 30000;
  BdwSimple alice(MakeOptions(0.05, 0.2, m), 13);
  for (uint64_t i = 0; i < m / 2; ++i) alice.Insert(42);
  BitWriter w;
  alice.Serialize(w);
  BitReader r(w);
  BdwSimple bob = BdwSimple::Deserialize(r, 14);
  EXPECT_EQ(bob.samples_taken(), alice.samples_taken());
  for (uint64_t i = 0; i < m / 2; ++i) bob.Insert(42);
  const auto report = bob.Report();
  ASSERT_EQ(report.size(), 1u);
  EXPECT_EQ(report[0].item, 42u);
}

TEST(BdwSimpleTest, TopKOrderedAndBounded) {
  const uint64_t m = 40000;
  const PlantedSpec spec{{0.3, 0.2, 0.1}, 1 << 24, m};
  const PlantedStream s = MakePlantedStream(spec, 33);
  BdwSimple sketch(MakeOptions(0.02, 0.08, m), 34);
  for (const uint64_t x : s.items) sketch.Insert(x);
  const auto top2 = sketch.TopK(2);
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_EQ(top2[0].item, s.planted_ids[0]);
  EXPECT_EQ(top2[1].item, s.planted_ids[1]);
  EXPECT_GE(top2[0].estimated_count, top2[1].estimated_count);
  EXPECT_LE(sketch.TopK(1000).size(), 1000u);
}

TEST(BdwSimpleTest, EstimateCountTracksTruth) {
  const uint64_t m = 50000;
  BdwSimple sketch(MakeOptions(0.02, 0.1, m), 19);
  for (uint64_t i = 0; i < m; ++i) sketch.Insert(i % 4);  // each 25%
  for (uint64_t x = 0; x < 4; ++x) {
    EXPECT_NEAR(sketch.EstimateCount(x), m / 4.0, 0.02 * m);
  }
}

TEST(BdwSimpleTest, PaperConstantsAlsoWork) {
  // Structural smoke test with the literal paper constants (huge tables).
  BdwSimple::Options opt = MakeOptions(0.1, 0.3, 10000);
  opt.constants = Constants::Paper();
  BdwSimple sketch(opt, 21);
  for (uint64_t i = 0; i < 10000; ++i) sketch.Insert(i % 3);
  const auto report = sketch.Report();
  EXPECT_EQ(report.size(), 3u);  // all three at 33% > phi
}

// Sweep the (eps, phi) grid: recall of must-report items must hold with
// at most delta failures.
struct GridParam {
  double eps;
  double phi;
};

class BdwSimpleGrid : public ::testing::TestWithParam<GridParam> {};

TEST_P(BdwSimpleGrid, RecallHolds) {
  const auto [eps, phi] = GetParam();
  const uint64_t m = 40000;
  int failures = 0;
  const int trials = 10;
  for (int t = 0; t < trials; ++t) {
    const PlantedSpec spec{{phi * 1.5, phi * 1.1}, 1 << 24, m};
    const PlantedStream s = MakePlantedStream(spec, 1000 + t);
    BdwSimple sketch(MakeOptions(eps, phi, m), 2000 + t);
    for (const uint64_t x : s.items) sketch.Insert(x);
    std::unordered_set<uint64_t> reported;
    for (const auto& hh : sketch.Report()) reported.insert(hh.item);
    if (reported.count(s.planted_ids[0]) == 0 ||
        reported.count(s.planted_ids[1]) == 0) {
      ++failures;
    }
  }
  EXPECT_LE(failures, 2);
}

// Note: the two planted items use 1.5*phi + 1.1*phi = 2.6*phi of the
// stream, so phi must stay below ~0.35 for the spec to be satisfiable.
INSTANTIATE_TEST_SUITE_P(Grid, BdwSimpleGrid,
                         ::testing::Values(GridParam{0.01, 0.05},
                                           GridParam{0.02, 0.1},
                                           GridParam{0.05, 0.2},
                                           GridParam{0.1, 0.3},
                                           GridParam{0.03, 0.15}));

}  // namespace
}  // namespace l1hh
