// Snapshot subsystem contract (ctest label `io`):
//   * save -> load preserves Estimate / HeavyHitters / MemoryUsageBytes
//     EXACTLY for every registered algorithm;
//   * save -> load -> continue ingesting is bit-identical to an
//     uninterrupted run (PRNG state travels with the snapshot);
//   * merging loaded snapshots == merging the in-memory summaries;
//   * ShardedEngine::Checkpoint -> Restore -> continue == uninterrupted;
//   * corrupted / truncated / version-bumped containers are rejected with
//     a clean Status — never a crash (run under ASan/UBSan in CI).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/sharded_engine.h"
#include "io/snapshot.h"
#include "stream/stream_generator.h"
#include "summary_test_util.h"
#include "util/crc32.h"
#include "util/random.h"

namespace l1hh {
namespace {

SummaryOptions Options() {
  SummaryOptions o;
  o.epsilon = 0.02;
  o.phi = 0.05;
  o.delta = 0.1;
  o.universe_size = uint64_t{1} << 20;
  o.stream_length = 40000;
  o.seed = 11;
  return o;
}

std::vector<uint64_t> TestStream() {
  return MakeZipfStream(Options().universe_size, 1.2,
                        Options().stream_length, /*seed=*/5);
}

std::vector<uint64_t> ProbeIds(const std::vector<uint64_t>& stream) {
  std::vector<uint64_t> probes(stream.begin(),
                               stream.begin() + std::min<size_t>(
                                                    stream.size(), 64));
  probes.push_back(0);
  probes.push_back(Options().universe_size - 1);  // absent ids too
  return probes;
}

void ExpectSameAnswers(const Summary& a, const Summary& b,
                       const std::vector<uint64_t>& probes) {
  EXPECT_EQ(a.ItemsProcessed(), b.ItemsProcessed());
  EXPECT_EQ(a.MemoryUsageBytes(), b.MemoryUsageBytes());
  for (const uint64_t id : probes) {
    EXPECT_EQ(a.Estimate(id), b.Estimate(id)) << "item " << id;
  }
  const auto ha = a.HeavyHitters(Options().phi);
  const auto hb = b.HeavyHitters(Options().phi);
  ASSERT_EQ(ha.size(), hb.size());
  for (size_t i = 0; i < ha.size(); ++i) {
    EXPECT_EQ(ha[i].item, hb[i].item);
    EXPECT_EQ(ha[i].estimate, hb[i].estimate);
  }
}

class SnapshotRoundTripTest : public testing::TestWithParam<std::string> {};

TEST_P(SnapshotRoundTripTest, EveryAdapterSupportsSnapshots) {
  auto summary = MakeSummary(GetParam(), Options());
  ASSERT_NE(summary, nullptr);
  EXPECT_TRUE(summary->SupportsSnapshot()) << GetParam();
}

// Regression: a PRISTINE (zero-item) state must round-trip too.  The
// counter-groups family used to apply the bits-per-element plausibility
// clamp to its capacity field — a shape declaration, not stream content
// — so an empty misra_gries/space_saving/hashed_misra_gries snapshot
// (or any windowed ring of them, which a warm standby full-syncs from an
// idle primary) was spuriously rejected as Corruption.
TEST_P(SnapshotRoundTripTest, PristineStateRoundTrips) {
  const std::string names[] = {GetParam(), "windowed:" + GetParam()};
  for (const std::string& name : names) {
    SummaryOptions opt = Options();
    opt.window_size = 4096;
    opt.window_buckets = 8;
    auto pristine = MakeSummary(name, opt);
    if (pristine == nullptr) continue;  // non-mergeable: no windowed form
    std::vector<uint8_t> bytes;
    ASSERT_TRUE(SaveSummary(*pristine, &bytes).ok()) << name;
    Status status;
    auto loaded = LoadSummary(bytes, &status);
    ASSERT_NE(loaded, nullptr) << name << ": " << status.ToString();
    EXPECT_EQ(loaded->ItemsProcessed(), 0u) << name;
    EXPECT_EQ(loaded->Estimate(7), 0.0) << name;
    // The restored instance must be fully usable, not just loadable.
    loaded->Update(7, 1);
    EXPECT_EQ(loaded->ItemsProcessed(), 1u) << name;
  }
}

TEST_P(SnapshotRoundTripTest, SaveLoadPreservesAnswersExactly) {
  const auto stream = TestStream();
  auto original = MakeSummary(GetParam(), Options());
  ASSERT_NE(original, nullptr);
  original->UpdateBatch(stream);

  std::vector<uint8_t> bytes;
  ASSERT_TRUE(SaveSummary(*original, &bytes).ok());
  Status status;
  auto loaded = LoadSummary(bytes, &status);
  ASSERT_NE(loaded, nullptr) << status.ToString();
  EXPECT_EQ(loaded->Name(), GetParam());
  ExpectSameAnswers(*original, *loaded, ProbeIds(stream));
}

TEST_P(SnapshotRoundTripTest, ContinueAfterRestoreMatchesUninterrupted) {
  const auto stream = TestStream();
  const size_t half = stream.size() / 2;
  auto uninterrupted = MakeSummary(GetParam(), Options());
  ASSERT_NE(uninterrupted, nullptr);
  uninterrupted->UpdateBatch({stream.data(), half});

  std::vector<uint8_t> bytes;
  ASSERT_TRUE(SaveSummary(*uninterrupted, &bytes).ok());
  Status status;
  auto restored = LoadSummary(bytes, &status);
  ASSERT_NE(restored, nullptr) << status.ToString();

  // Both continue over the second half; the restored one must track the
  // uninterrupted one bit for bit (PRNG state included).
  uninterrupted->UpdateBatch({stream.data() + half, stream.size() - half});
  restored->UpdateBatch({stream.data() + half, stream.size() - half});
  ExpectSameAnswers(*uninterrupted, *restored, ProbeIds(stream));
}

TEST_P(SnapshotRoundTripTest, SnapshotInfoEchoesConstruction) {
  const auto stream = TestStream();
  auto summary = MakeSummary(GetParam(), Options());
  ASSERT_NE(summary, nullptr);
  summary->UpdateBatch(stream);

  std::vector<uint8_t> bytes;
  ASSERT_TRUE(SaveSummary(*summary, &bytes).ok());
  SnapshotInfo info;
  ASSERT_TRUE(ReadSnapshotInfo(bytes, &info).ok());
  EXPECT_EQ(info.algorithm, GetParam());
  EXPECT_EQ(info.options.epsilon, Options().epsilon);
  EXPECT_EQ(info.options.phi, Options().phi);
  EXPECT_EQ(info.options.delta, Options().delta);
  EXPECT_EQ(info.options.universe_size, Options().universe_size);
  EXPECT_EQ(info.options.stream_length, Options().stream_length);
  EXPECT_EQ(info.options.seed, Options().seed);
  EXPECT_EQ(info.items_processed, stream.size());
  EXPECT_EQ(info.total_bytes, bytes.size());
  EXPECT_GT(info.payload_bits, 0u);
}

TEST_P(SnapshotRoundTripTest, FileRoundTrip) {
  const auto stream = TestStream();
  auto summary = MakeSummary(GetParam(), Options());
  ASSERT_NE(summary, nullptr);
  summary->UpdateBatch(stream);

  const std::string path =
      testing::TempDir() + "/snap_" + GetParam() + ".l1hh";
  ASSERT_TRUE(SaveSummaryToFile(*summary, path).ok());
  Status status;
  auto loaded = LoadSummaryFromFile(path, &status);
  ASSERT_NE(loaded, nullptr) << status.ToString();
  ExpectSameAnswers(*summary, *loaded, ProbeIds(stream));
  std::filesystem::remove(path);
}

// Fuzz-ish hostility battery: every truncation and random multi-bit
// corruption of a valid snapshot must be rejected with a clean error.
TEST_P(SnapshotRoundTripTest, CorruptInputIsRejectedCleanly) {
  const auto stream = TestStream();
  auto summary = MakeSummary(GetParam(), Options());
  ASSERT_NE(summary, nullptr);
  summary->UpdateBatch({stream.data(), stream.size() / 4});

  std::vector<uint8_t> bytes;
  ASSERT_TRUE(SaveSummary(*summary, &bytes).ok());

  Rng rng(GetParam().size() * 1000003 + 17);
  std::vector<size_t> truncations = {0, 1, 7, 8, 11, 12, 19, 20, 23, 24,
                                     bytes.size() - 4, bytes.size() - 1};
  for (int t = 0; t < 24; ++t) {
    truncations.push_back(rng.UniformU64(bytes.size()));
  }
  for (const size_t cut : truncations) {
    std::vector<uint8_t> truncated(bytes.begin(), bytes.begin() + cut);
    Status status;
    auto broken = LoadSummary(truncated, &status);
    EXPECT_EQ(broken, nullptr) << "cut=" << cut;
    EXPECT_FALSE(status.ok()) << "cut=" << cut;
  }

  for (int t = 0; t < 48; ++t) {
    std::vector<uint8_t> flipped = bytes;
    const size_t byte = rng.UniformU64(flipped.size());
    flipped[byte] ^= static_cast<uint8_t>(1u << rng.UniformU64(8));
    Status status;
    auto broken = LoadSummary(flipped, &status);
    // A single bit flip is always caught (CRC-32 detects all 1-bit
    // errors, and flips inside the trailer mismatch the intact body).
    EXPECT_EQ(broken, nullptr) << "flip in byte " << byte;
    EXPECT_FALSE(status.ok());
  }

  // Over-long input: appending bytes breaks the length/CRC consistency.
  std::vector<uint8_t> padded = bytes;
  padded.insert(padded.end(), {0xAB, 0xCD});
  Status status;
  EXPECT_EQ(LoadSummary(padded, &status), nullptr);
  EXPECT_FALSE(status.ok());

  // And the untouched container still loads (the battery above would be
  // vacuous otherwise).
  EXPECT_NE(LoadSummary(bytes, &status), nullptr) << status.ToString();
}

TEST_P(SnapshotRoundTripTest, VersionBumpIsRejectedWithVersionError) {
  auto summary = MakeSummary(GetParam(), Options());
  ASSERT_NE(summary, nullptr);
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(SaveSummary(*summary, &bytes).ok());
  // Bump the version field and re-seal the CRC so ONLY the version check
  // can reject it.
  bytes[8] = static_cast<uint8_t>(kSnapshotFormatVersion + 1);
  const uint32_t crc = Crc32(bytes.data(), bytes.size() - 4);
  for (int i = 0; i < 4; ++i) {
    bytes[bytes.size() - 4 + static_cast<size_t>(i)] =
        static_cast<uint8_t>(crc >> (8 * i));
  }
  Status status;
  EXPECT_EQ(LoadSummary(bytes, &status), nullptr);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("version"), std::string::npos)
      << status.ToString();
}

TEST_P(SnapshotRoundTripTest, ResealedHeaderTamperIsSafe) {
  // An adversary who can recompute the CRC gets past the integrity check;
  // the remaining defense is the header/payload consistency checks in the
  // adapters.  Flip bits inside the embedded options block (the bit
  // stream maps LSB-first to bytes, so the options start at byte
  // 20 + 1 + name length) and re-seal: the loader must either reject with
  // a clean Status or produce a summary that answers queries without UB.
  auto summary = MakeSummary(GetParam(), Options());
  ASSERT_NE(summary, nullptr);
  const auto stream = TestStream();
  summary->UpdateBatch({stream.data(), stream.size() / 4});
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(SaveSummary(*summary, &bytes).ok());

  const size_t options_start = 20 + 1 + GetParam().size();
  Rng rng(GetParam().size() * 7919 + 3);
  for (int t = 0; t < 16; ++t) {
    std::vector<uint8_t> tampered = bytes;
    const size_t byte = options_start + rng.UniformU64(6 * 8);
    tampered[byte] ^= static_cast<uint8_t>(1u << rng.UniformU64(8));
    const uint32_t crc = Crc32(tampered.data(), tampered.size() - 4);
    for (int i = 0; i < 4; ++i) {
      tampered[tampered.size() - 4 + static_cast<size_t>(i)] =
          static_cast<uint8_t>(crc >> (8 * i));
    }
    Status status;
    auto loaded = LoadSummary(tampered, &status);
    if (loaded != nullptr) {
      (void)loaded->HeavyHitters(Options().phi);  // usable, no UB
    } else {
      EXPECT_FALSE(status.ok());
    }
  }
}

TEST_P(SnapshotRoundTripTest, HostileHeaderEpsilonIsRejectedNotUB) {
  // A CRC-resealed container whose epsilon is a denormal / NaN / negative
  // must come back as Corruption — the adapter constructors divide by it
  // and cast the result, so letting it through would be a length_error or
  // float-cast UB, not a Status.
  auto summary = MakeSummary(GetParam(), Options());
  ASSERT_NE(summary, nullptr);
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(SaveSummary(*summary, &bytes).ok());
  const size_t epsilon_offset = 20 + 1 + GetParam().size();
  for (const double hostile :
       {5e-324, 0.0, -0.25, std::numeric_limits<double>::quiet_NaN(),
        std::numeric_limits<double>::infinity()}) {
    std::vector<uint8_t> tampered = bytes;
    uint64_t pattern;
    std::memcpy(&pattern, &hostile, sizeof(pattern));
    for (int i = 0; i < 8; ++i) {
      tampered[epsilon_offset + static_cast<size_t>(i)] =
          static_cast<uint8_t>(pattern >> (8 * i));
    }
    const uint32_t crc = Crc32(tampered.data(), tampered.size() - 4);
    for (int i = 0; i < 4; ++i) {
      tampered[tampered.size() - 4 + static_cast<size_t>(i)] =
          static_cast<uint8_t>(crc >> (8 * i));
    }
    Status status;
    EXPECT_EQ(LoadSummary(tampered, &status), nullptr)
        << "epsilon=" << hostile;
    EXPECT_FALSE(status.ok());
  }
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, SnapshotRoundTripTest,
                         testing::ValuesIn(RegisteredSummaryNames()),
                         [](const auto& info) { return info.param; });

// ---------------------------------------------------------------------------
// Merge-of-loaded-snapshots == in-memory merge, for every mergeable
// algorithm (same split discipline as merge_property_test: disjoint
// position ranges of one stream, combined length == options.stream_length).

class SnapshotMergeTest : public testing::TestWithParam<std::string> {};

TEST_P(SnapshotMergeTest, MergeOfLoadedSnapshotsEqualsInMemoryMerge) {
  const auto stream = TestStream();
  const size_t half = stream.size() / 2;
  auto a = MakeSummary(GetParam(), Options());
  auto b = MakeSummary(GetParam(), Options());
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  a->UpdateBatch({stream.data(), half});
  b->UpdateBatch({stream.data() + half, stream.size() - half});

  std::vector<uint8_t> bytes_a, bytes_b;
  ASSERT_TRUE(SaveSummary(*a, &bytes_a).ok());
  ASSERT_TRUE(SaveSummary(*b, &bytes_b).ok());
  Status status;
  auto loaded_a = LoadSummary(bytes_a, &status);
  ASSERT_NE(loaded_a, nullptr) << status.ToString();
  auto loaded_b = LoadSummary(bytes_b, &status);
  ASSERT_NE(loaded_b, nullptr) << status.ToString();

  ASSERT_TRUE(a->Merge(*b).ok());
  ASSERT_TRUE(loaded_a->Merge(*loaded_b).ok());
  ExpectSameAnswers(*a, *loaded_a, ProbeIds(stream));
}

INSTANTIATE_TEST_SUITE_P(Mergeable, SnapshotMergeTest,
                         testing::ValuesIn(MergeableSummaryNames(Options())),
                         [](const auto& info) { return info.param; });

// ---------------------------------------------------------------------------
// Engine checkpoint / restore.

class EngineCheckpointTest : public testing::TestWithParam<std::string> {};

TEST_P(EngineCheckpointTest, CheckpointRestoreContinueEqualsUninterrupted) {
  const auto stream = TestStream();
  const size_t half = stream.size() / 2;
  ShardedEngineOptions opt;
  opt.algorithm = GetParam();
  opt.summary = Options();
  opt.num_shards = 4;
  opt.num_threads = 2;
  Status status;
  auto uninterrupted = ShardedEngine::Create(opt, &status);
  ASSERT_NE(uninterrupted, nullptr) << status.ToString();
  uninterrupted->UpdateBatch({stream.data(), half});

  const std::string dir =
      testing::TempDir() + "/ckpt_" + GetParam();
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(uninterrupted->Checkpoint(dir).ok());

  auto restored = ShardedEngine::Restore(dir, &status);
  ASSERT_NE(restored, nullptr) << status.ToString();
  EXPECT_EQ(restored->algorithm(), GetParam());
  EXPECT_EQ(restored->num_shards(), 4u);
  EXPECT_EQ(restored->ItemsProcessed(), half);

  uninterrupted->UpdateBatch({stream.data() + half, stream.size() - half});
  restored->UpdateBatch({stream.data() + half, stream.size() - half});
  // ItemsProcessed is only exact after a Flush (it reads the applied
  // counters, which lag ingestion while the workers drain).
  uninterrupted->Flush();
  restored->Flush();
  EXPECT_EQ(uninterrupted->ItemsProcessed(), restored->ItemsProcessed());
  EXPECT_EQ(uninterrupted->ItemsProcessed(), stream.size());
  for (const uint64_t id : ProbeIds(stream)) {
    EXPECT_EQ(uninterrupted->Estimate(id), restored->Estimate(id));
  }
  const auto hu = uninterrupted->HeavyHitters(Options().phi);
  const auto hr = restored->HeavyHitters(Options().phi);
  ASSERT_EQ(hu.size(), hr.size());
  for (size_t i = 0; i < hu.size(); ++i) {
    EXPECT_EQ(hu[i].item, hr[i].item);
    EXPECT_EQ(hu[i].estimate, hr[i].estimate);
  }
  std::filesystem::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(Mergeable, EngineCheckpointTest,
                         testing::ValuesIn(MergeableSummaryNames(Options())),
                         [](const auto& info) { return info.param; });

TEST(EngineCheckpointEdgeTest, SingleShardNonMergeableRoundTrips) {
  // sticky_sampling cannot shard (K>1) but a K=1 engine of it must still
  // checkpoint and restore exactly — including its PRNG state.
  const auto stream = TestStream();
  const size_t half = stream.size() / 2;
  ShardedEngineOptions opt;
  opt.algorithm = "sticky_sampling";
  opt.summary = Options();
  opt.num_shards = 1;
  Status status;
  auto engine = ShardedEngine::Create(opt, &status);
  ASSERT_NE(engine, nullptr) << status.ToString();
  engine->UpdateBatch({stream.data(), half});

  const std::string dir = testing::TempDir() + "/ckpt_sticky_k1";
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(engine->Checkpoint(dir).ok());
  auto restored = ShardedEngine::Restore(dir, &status);
  ASSERT_NE(restored, nullptr) << status.ToString();

  engine->UpdateBatch({stream.data() + half, stream.size() - half});
  restored->UpdateBatch({stream.data() + half, stream.size() - half});
  for (const uint64_t id : ProbeIds(stream)) {
    EXPECT_EQ(engine->Estimate(id), restored->Estimate(id));
  }
  std::filesystem::remove_all(dir);
}

TEST(EngineCheckpointEdgeTest, RestoreRejectsMissingAndCorruptCheckpoints) {
  Status status;
  EXPECT_EQ(ShardedEngine::Restore(testing::TempDir() + "/no_such_ckpt",
                                   &status),
            nullptr);
  EXPECT_FALSE(status.ok());

  // Manifest present but a shard file corrupted: refused, not UB.
  const auto stream = TestStream();
  ShardedEngineOptions opt;
  opt.algorithm = "misra_gries";
  opt.summary = Options();
  opt.num_shards = 2;
  auto engine = ShardedEngine::Create(opt, &status);
  ASSERT_NE(engine, nullptr);
  engine->UpdateBatch(stream);
  const std::string dir = testing::TempDir() + "/ckpt_corrupt";
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(engine->Checkpoint(dir).ok());
  // A fresh directory's first checkpoint is generation 1.
  {
    std::ofstream shard(dir + "/shard-0001.g000001.l1hh",
                        std::ios::binary | std::ios::trunc);
    shard << "garbage";
  }
  EXPECT_EQ(ShardedEngine::Restore(dir, &status), nullptr);
  EXPECT_FALSE(status.ok());

  // Unknown manifest keys are future versions, not noise to skip.
  {
    std::ofstream manifest(dir + "/MANIFEST.000001", std::ios::app);
    manifest << "compression=zstd\n";
  }
  EXPECT_EQ(ShardedEngine::Restore(dir, &status), nullptr);
  EXPECT_FALSE(status.ok());

  // A manifest whose shard records repeat an index would double-count
  // that shard's items; records must appear in index order.
  {
    std::ofstream manifest(dir + "/MANIFEST.000001", std::ios::trunc);
    manifest << "l1hh-checkpoint v2\n"
             << "algorithm=misra_gries\n"
             << "num_shards=2\n"
             << "generation=1\n"
             << "shard=0 10 0 shard-0000.g000001.l1hh\n"
             << "shard=0 10 0 shard-0000.g000001.l1hh\n";
  }
  EXPECT_EQ(ShardedEngine::Restore(dir, &status), nullptr);
  EXPECT_FALSE(status.ok());
  std::filesystem::remove_all(dir);
}

TEST(EngineCheckpointEdgeTest, RecheckpointIntoSameDirRestoresLatestState) {
  // Checkpointing over an old checkpoint must supersede it: the new
  // generation's manifest outranks the old one at Restore.
  const auto stream = TestStream();
  const size_t half = stream.size() / 2;
  ShardedEngineOptions opt;
  opt.algorithm = "space_saving";
  opt.summary = Options();
  opt.num_shards = 2;
  Status status;
  auto engine = ShardedEngine::Create(opt, &status);
  ASSERT_NE(engine, nullptr);
  const std::string dir = testing::TempDir() + "/ckpt_twice";
  std::filesystem::remove_all(dir);

  engine->UpdateBatch({stream.data(), half});
  ASSERT_TRUE(engine->Checkpoint(dir).ok());
  engine->UpdateBatch({stream.data() + half, stream.size() - half});
  ASSERT_TRUE(engine->Checkpoint(dir).ok());

  auto restored = ShardedEngine::Restore(dir, &status);
  ASSERT_NE(restored, nullptr) << status.ToString();
  EXPECT_EQ(restored->ItemsProcessed(), stream.size());
  std::filesystem::remove_all(dir);
}

TEST(EngineCheckpointEdgeTest, ForeignSeedShardFileIsRefusedAtRestore) {
  // A shard file spliced in from a checkpoint taken with a different seed
  // must fail Restore with a Status — not pass and abort on the first
  // query when the merged view discovers the incompatibility.
  const auto stream = TestStream();
  ShardedEngineOptions opt;
  opt.algorithm = "count_min";
  opt.summary = Options();
  opt.num_shards = 2;
  Status status;
  auto engine_a = ShardedEngine::Create(opt, &status);
  opt.summary.seed = Options().seed + 1;
  auto engine_b = ShardedEngine::Create(opt, &status);
  ASSERT_NE(engine_a, nullptr);
  ASSERT_NE(engine_b, nullptr);
  engine_a->UpdateBatch(stream);
  engine_b->UpdateBatch(stream);

  const std::string dir_a = testing::TempDir() + "/ckpt_splice_a";
  const std::string dir_b = testing::TempDir() + "/ckpt_splice_b";
  std::filesystem::remove_all(dir_a);
  std::filesystem::remove_all(dir_b);
  ASSERT_TRUE(engine_a->Checkpoint(dir_a).ok());
  ASSERT_TRUE(engine_b->Checkpoint(dir_b).ok());
  std::filesystem::copy_file(dir_b + "/shard-0001.g000001.l1hh",
                             dir_a + "/shard-0001.g000001.l1hh",
                             std::filesystem::copy_options::overwrite_existing);

  EXPECT_EQ(ShardedEngine::Restore(dir_a, &status), nullptr);
  EXPECT_FALSE(status.ok());
  std::filesystem::remove_all(dir_a);
  std::filesystem::remove_all(dir_b);
}

// ---------------------------------------------------------------------------
// The end-to-end distributed workflow at library level: N workers, each
// over a disjoint item partition of one stream, snapshots merged by a
// coordinator — the merged report must obey Definition 1 against the FULL
// stream, and bit-match the single-process run for the structures whose
// merge is exact under item-disjoint partitions.

TEST(DistributedSnapshotFlowTest, TwoWorkerMergeIsDefinitionOneConformant) {
  const auto stream = TestStream();
  for (const std::string name : {"bdw_optimal", "bdw_simple", "count_min",
                                 "misra_gries", "exact"}) {
    auto worker_a = MakeSummary(name, Options());
    auto worker_b = MakeSummary(name, Options());
    auto single = MakeSummary(name, Options());
    ASSERT_NE(worker_a, nullptr);
    // Item-disjoint partition: every occurrence of an id goes to the same
    // worker, like the engine's hash partitioning.
    for (const uint64_t x : stream) {
      (x % 2 == 0 ? worker_a : worker_b)->Update(x);
      single->Update(x);
    }
    std::vector<uint8_t> bytes_a, bytes_b;
    ASSERT_TRUE(SaveSummary(*worker_a, &bytes_a).ok()) << name;
    ASSERT_TRUE(SaveSummary(*worker_b, &bytes_b).ok()) << name;
    Status status;
    auto merged = LoadSummary(bytes_a, &status);
    ASSERT_NE(merged, nullptr) << name << ": " << status.ToString();
    auto other = LoadSummary(bytes_b, &status);
    ASSERT_NE(other, nullptr) << name << ": " << status.ToString();
    ASSERT_TRUE(merged->Merge(*other).ok()) << name;

    // Definition 1 against exact counts of the full stream.
    std::unordered_map<uint64_t, uint64_t> exact;
    for (const uint64_t x : stream) ++exact[x];
    const double m = static_cast<double>(stream.size());
    const auto report = merged->HeavyHitters(Options().phi);
    for (const auto& [item, f] : exact) {
      if (static_cast<double>(f) > Options().phi * m) {
        EXPECT_TRUE(std::any_of(report.begin(), report.end(),
                                [item = item](const ItemEstimate& e) {
                                  return e.item == item;
                                }))
            << name << " missed heavy item " << item;
      }
    }
    for (const auto& e : report) {
      EXPECT_GE(static_cast<double>(exact[e.item]),
                (Options().phi - Options().epsilon) * m - 1.0)
          << name << " reported light item " << e.item;
    }

    // Structures whose merge is exact under item-disjoint partitions must
    // match the single-process run element-wise ("exact" trivially;
    // count_min because the sketch is linear and every candidate
    // qualifies no later on a worker than in the single run).
    if (name == "exact" || name == "count_min") {
      const auto single_report = single->HeavyHitters(Options().phi);
      ASSERT_EQ(report.size(), single_report.size()) << name;
      for (size_t i = 0; i < report.size(); ++i) {
        EXPECT_EQ(report[i].item, single_report[i].item) << name;
        EXPECT_EQ(report[i].estimate, single_report[i].estimate) << name;
      }
    }
  }
}

}  // namespace
}  // namespace l1hh
