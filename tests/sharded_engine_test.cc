// ShardedEngine correctness: routing, quiescence, merged-view semantics,
// the merge-epoch cache, backpressure under a tiny ring, and the
// refuse-to-shard rule for non-mergeable structures.  These are the
// concurrency tests CI also runs under ASan+UBSan (ctest label: engine).
#include "engine/sharded_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/spsc_ring.h"
#include "stream/stream_generator.h"
#include "summary/exact_counter.h"
#include "summary/summary.h"

namespace l1hh {
namespace {

ShardedEngineOptions EngineOptions(const std::string& algorithm,
                                   size_t shards, uint64_t stream_length) {
  ShardedEngineOptions o;
  o.algorithm = algorithm;
  o.num_shards = shards;
  o.summary.epsilon = 0.02;
  o.summary.phi = 0.05;
  o.summary.delta = 0.05;
  o.summary.universe_size = uint64_t{1} << 20;
  o.summary.stream_length = stream_length;
  o.summary.seed = 7;
  return o;
}

PlantedStream TestStream(uint64_t m = 60000,
                         StreamOrder order = StreamOrder::kShuffled) {
  PlantedSpec spec;
  spec.planted_fractions = {0.20, 0.12, 0.08};
  spec.universe_size = uint64_t{1} << 20;
  spec.stream_length = m;
  spec.order = order;
  return MakePlantedStream(spec, /*seed=*/11);
}

bool Reported(const std::vector<ItemEstimate>& report, uint64_t item) {
  return std::any_of(report.begin(), report.end(),
                     [item](const ItemEstimate& e) { return e.item == item; });
}

// --------------------------------------------------------------------------
// SpscRing basics (single-threaded edge cases; the engine tests below
// exercise the cross-thread path).

TEST(SpscRingTest, PushPopRoundTripWithWraparound) {
  SpscRing<uint64_t> ring(8);
  EXPECT_EQ(ring.capacity(), 8u);
  uint64_t out[8];
  for (uint64_t round = 0; round < 10; ++round) {
    // Fill to capacity, then one more push must fail.
    for (uint64_t i = 0; i < 8; ++i) {
      EXPECT_TRUE(ring.TryPush(round * 100 + i));
    }
    EXPECT_FALSE(ring.TryPush(999));
    EXPECT_EQ(ring.ApproxSize(), 8u);
    // Drain in two batches, preserving order.
    EXPECT_EQ(ring.PopBatch(out, 5), 5u);
    for (uint64_t i = 0; i < 5; ++i) EXPECT_EQ(out[i], round * 100 + i);
    EXPECT_EQ(ring.PopBatch(out, 8), 3u);
    for (uint64_t i = 0; i < 3; ++i) EXPECT_EQ(out[i], round * 100 + 5 + i);
    EXPECT_EQ(ring.PopBatch(out, 8), 0u);
  }
}

TEST(SpscRingTest, PushSomeAcceptsPartialBatches) {
  SpscRing<uint64_t> ring(4);
  const uint64_t data[6] = {1, 2, 3, 4, 5, 6};
  EXPECT_EQ(ring.PushSome(data, 6), 4u);  // only capacity fits
  uint64_t out[6];
  EXPECT_EQ(ring.PopBatch(out, 2), 2u);
  EXPECT_EQ(ring.PushSome(data + 4, 2), 2u);  // room again after the pop
  EXPECT_EQ(ring.PopBatch(out, 6), 4u);
  EXPECT_EQ(out[0], 3u);
  EXPECT_EQ(out[3], 6u);
}

// --------------------------------------------------------------------------
// Engine construction rules.

TEST(ShardedEngineTest, RefusesToShardNonMergeableStructures) {
  for (const char* name : {"lossy_counting", "sticky_sampling"}) {
    Status status;
    auto engine =
        ShardedEngine::Create(EngineOptions(name, 4, 60000), &status);
    EXPECT_EQ(engine, nullptr) << name;
    EXPECT_FALSE(status.ok()) << name;
    // K == 1 is the degenerate single-summary engine and always allowed.
    auto single =
        ShardedEngine::Create(EngineOptions(name, 1, 60000), &status);
    ASSERT_NE(single, nullptr) << name;
    EXPECT_TRUE(status.ok()) << name;
  }
}

TEST(ShardedEngineTest, RejectsUnknownAlgorithmAndZeroShards) {
  Status status;
  EXPECT_EQ(ShardedEngine::Create(EngineOptions("no_such_algo", 2, 1000),
                                  &status),
            nullptr);
  EXPECT_FALSE(status.ok());
  auto opts = EngineOptions("misra_gries", 1, 1000);
  opts.num_shards = 0;
  EXPECT_EQ(ShardedEngine::Create(opts, &status), nullptr);
  EXPECT_FALSE(status.ok());
}

TEST(ShardedEngineTest, ZeroDrainBatchIsClampedNotHung) {
  auto opts = EngineOptions("exact", 2, 100);
  opts.drain_batch = 0;  // would spin forever if taken literally
  auto engine = ShardedEngine::Create(opts);
  ASSERT_NE(engine, nullptr);
  engine->Update(1);
  engine->Update(1);
  engine->Flush();
  EXPECT_EQ(engine->Estimate(1), 2.0);
}

TEST(ShardedEngineTest, ThreadCountIsClampedToShardCount) {
  auto opts = EngineOptions("misra_gries", 3, 1000);
  opts.num_threads = 16;
  auto engine = ShardedEngine::Create(opts);
  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(engine->num_shards(), 3u);
  EXPECT_EQ(engine->num_threads(), 3u);
}

// --------------------------------------------------------------------------
// Routing and quiescence.

TEST(ShardedEngineTest, RoutingIsStableAndCountsAddUp) {
  const auto planted = TestStream();
  auto engine = ShardedEngine::Create(
      EngineOptions("exact", 4, planted.items.size()));
  ASSERT_NE(engine, nullptr);
  engine->UpdateBatch(planted.items);
  engine->Flush();
  EXPECT_EQ(engine->ItemsProcessed(), planted.items.size());

  const auto counts = engine->ShardItemCounts();
  ASSERT_EQ(counts.size(), 4u);
  uint64_t total = 0;
  for (const uint64_t c : counts) total += c;
  EXPECT_EQ(total, planted.items.size());
  // Every occurrence of an item must land on the same shard.
  for (const uint64_t id : planted.planted_ids) {
    EXPECT_EQ(engine->ShardOf(id), engine->ShardOf(id));
    EXPECT_LT(engine->ShardOf(id), 4u);
  }
}

TEST(ShardedEngineTest, ExactShardingMatchesGroundTruth) {
  const auto planted = TestStream();
  auto engine = ShardedEngine::Create(
      EngineOptions("exact", 4, planted.items.size()));
  ASSERT_NE(engine, nullptr);
  engine->UpdateBatch(planted.items);

  ExactCounter truth;
  for (const uint64_t x : planted.items) truth.Insert(x);

  // Point queries: exact sharded counting is exact counting.
  for (size_t i = 0; i < planted.planted_ids.size(); ++i) {
    EXPECT_EQ(engine->Estimate(planted.planted_ids[i]),
              static_cast<double>(planted.planted_counts[i]));
  }
  // The merged report equals the ground-truth report element-wise.
  const double m = static_cast<double>(planted.items.size());
  const auto report = engine->HeavyHitters(0.05);
  const auto expected =
      truth.HeavyHitters(static_cast<uint64_t>(0.05 * m) + 1);
  ASSERT_EQ(report.size(), expected.size());
  for (size_t i = 0; i < report.size(); ++i) {
    EXPECT_EQ(report[i].item, expected[i].item);
    EXPECT_EQ(report[i].estimate, static_cast<double>(expected[i].count));
  }
}

TEST(ShardedEngineTest, MisraGriesShardingKeepsTheContract) {
  for (const StreamOrder order :
       {StreamOrder::kShuffled, StreamOrder::kHeaviesLast,
        StreamOrder::kBursty}) {
    const auto planted = TestStream(60000, order);
    auto engine = ShardedEngine::Create(
        EngineOptions("misra_gries", 4, planted.items.size()));
    ASSERT_NE(engine, nullptr);
    engine->UpdateBatch(planted.items);

    const double m = static_cast<double>(planted.items.size());
    const auto report = engine->HeavyHitters(0.05);
    for (size_t i = 0; i < planted.planted_ids.size(); ++i) {
      EXPECT_TRUE(Reported(report, planted.planted_ids[i]))
          << "order " << static_cast<int>(order) << " missed planted item "
          << planted.planted_ids[i];
      // MG undercounts by <= eps*m on the merged stream.
      EXPECT_NEAR(engine->Estimate(planted.planted_ids[i]),
                  static_cast<double>(planted.planted_counts[i]),
                  0.02 * m + 1.0);
    }
  }
}

// The flagship configuration ISSUE 3 unlocks: the paper's space-optimal
// Algorithm 2 across 4 shards.  Every shard walks the shared epoch
// schedule over its own substream; the merged view must keep the
// (eps, phi) contract across stream orders, including heavies-last
// (shards park at different epochs, so reconciliation really fires).
TEST(ShardedEngineTest, BdwOptimalShardingKeepsTheContract) {
  for (const StreamOrder order :
       {StreamOrder::kShuffled, StreamOrder::kHeaviesLast,
        StreamOrder::kBursty}) {
    const auto planted = TestStream(60000, order);
    auto engine = ShardedEngine::Create(
        EngineOptions("bdw_optimal", 4, planted.items.size()));
    ASSERT_NE(engine, nullptr)
        << "engine refused bdw_optimal at K > 1 (order "
        << static_cast<int>(order) << ")";
    engine->UpdateBatch(planted.items);

    const double m = static_cast<double>(planted.items.size());
    const auto report = engine->HeavyHitters(0.05);
    for (size_t i = 0; i < planted.planted_ids.size(); ++i) {
      EXPECT_TRUE(Reported(report, planted.planted_ids[i]))
          << "order " << static_cast<int>(order) << " missed planted item "
          << planted.planted_ids[i];
      // Sharded accelerated counters sit lower on the epoch schedule than
      // a single instance, so allow 1.5x the single-instance tolerance.
      EXPECT_NEAR(engine->Estimate(planted.planted_ids[i]),
                  static_cast<double>(planted.planted_counts[i]),
                  1.5 * 0.02 * m);
    }
  }
}

TEST(ShardedEngineTest, BackpressureOnTinyRingsLosesNothing) {
  const auto planted = TestStream(120000);
  auto opts = EngineOptions("exact", 4, planted.items.size());
  opts.queue_capacity = 64;  // force constant ring-full stalls
  opts.drain_batch = 16;
  opts.num_threads = 2;  // two shards per worker
  auto engine = ShardedEngine::Create(opts);
  ASSERT_NE(engine, nullptr);
  // Mix per-item and batched ingestion across many small chunks.
  const auto& items = planted.items;
  size_t i = 0;
  while (i < items.size()) {
    const size_t chunk = std::min<size_t>(1009, items.size() - i);
    if (i % 3 == 0) {
      for (size_t j = 0; j < chunk; ++j) engine->Update(items[i + j]);
    } else {
      engine->UpdateBatch({items.data() + i, chunk});
    }
    i += chunk;
  }
  engine->Flush();
  EXPECT_EQ(engine->ItemsProcessed(), items.size());
  for (size_t p = 0; p < planted.planted_ids.size(); ++p) {
    EXPECT_EQ(engine->Estimate(planted.planted_ids[p]),
              static_cast<double>(planted.planted_counts[p]));
  }
}

TEST(ShardedEngineTest, WeightedUpdateMatchesRepeated) {
  auto engine = ShardedEngine::Create(EngineOptions("exact", 2, 100));
  ASSERT_NE(engine, nullptr);
  engine->Update(5, 7);
  engine->Update(9);
  engine->Flush();
  EXPECT_EQ(engine->ItemsProcessed(), 8u);
  EXPECT_EQ(engine->Estimate(5), 7.0);
  EXPECT_EQ(engine->Estimate(9), 1.0);
}

// --------------------------------------------------------------------------
// Merged view and its epoch cache.

TEST(ShardedEngineTest, MergedViewReflectsNewItemsAfterCacheHit) {
  auto engine = ShardedEngine::Create(EngineOptions("exact", 4, 1000));
  ASSERT_NE(engine, nullptr);
  std::vector<uint64_t> first(300, 42);
  engine->UpdateBatch(first);
  EXPECT_EQ(engine->HeavyHitters(0.05).size(), 1u);
  // Cache hit: same epoch, same view object answers again.
  const Summary& view1 = engine->MergedView();
  const Summary& view2 = engine->MergedView();
  EXPECT_EQ(&view1, &view2);
  EXPECT_EQ(view1.ItemsProcessed(), 300u);
  // New items must invalidate the cache.
  std::vector<uint64_t> second(700, 43);
  engine->UpdateBatch(second);
  const Summary& view3 = engine->MergedView();
  EXPECT_EQ(view3.ItemsProcessed(), 1000u);
  const auto report = engine->HeavyHitters(0.05);
  EXPECT_TRUE(Reported(report, 42));
  EXPECT_TRUE(Reported(report, 43));
}

TEST(ShardedEngineTest, SingleShardServesAnyAlgorithmWithoutMerge) {
  const auto planted = TestStream();
  for (const char* name : {"lossy_counting", "bdw_optimal"}) {
    auto engine = ShardedEngine::Create(
        EngineOptions(name, 1, planted.items.size()));
    ASSERT_NE(engine, nullptr) << name;
    engine->UpdateBatch(planted.items);
    const auto report = engine->HeavyHitters(0.05);
    for (const uint64_t id : planted.planted_ids) {
      EXPECT_TRUE(Reported(report, id)) << name << " missed " << id;
    }
  }
}

TEST(ShardedEngineTest, MemoryUsageCountsShardsAndRings) {
  auto engine = ShardedEngine::Create(EngineOptions("misra_gries", 4, 1000));
  ASSERT_NE(engine, nullptr);
  auto single = MakeSummary("misra_gries", EngineOptions("misra_gries", 4,
                                                         1000)
                                               .summary);
  ASSERT_NE(single, nullptr);
  // Four shard summaries + four rings must dominate one bare summary.
  EXPECT_GT(engine->MemoryUsageBytes(), single->MemoryUsageBytes());
}

// --------------------------------------------------------------------------
// K x P ring grid: multi-producer variants of the suites above, so the
// grid inherits the same contracts the single-producer controller met.

TEST(ShardedEngineTest, MemoryUsageCountsTheFullProducerGrid) {
  auto narrow_opts = EngineOptions("misra_gries", 4, 1000);
  auto wide_opts = narrow_opts;
  wide_opts.max_producers = 5;
  auto narrow = ShardedEngine::Create(narrow_opts);
  auto wide = ShardedEngine::Create(wide_opts);
  ASSERT_NE(narrow, nullptr);
  ASSERT_NE(wide, nullptr);
  // Five producer slots mean 5 rings per shard instead of 1; the
  // accounting must charge for the whole K x P grid, not just column 0.
  EXPECT_GT(wide->MemoryUsageBytes(), narrow->MemoryUsageBytes());
  EXPECT_EQ(wide->max_producers(), 5u);
  EXPECT_EQ(narrow->max_producers(), 1u);
}

// The flagship configuration under concurrent ingest: the paper's
// space-optimal Algorithm 2 across 4 shards fed by 4 racing producers.
// Shard routing is by item hash, so each shard receives the same item
// MULTISET as in the single-producer run — only the within-shard order
// changes — and the (eps, phi) contract is order-insensitive.
TEST(ShardedEngineTest, BdwOptimalGridKeepsTheContractUnderFourProducers) {
  const auto planted = TestStream();
  auto opts = EngineOptions("bdw_optimal", 4, planted.items.size());
  opts.max_producers = 5;  // 4 external + slot 0
  opts.num_threads = 2;
  Status status;
  auto engine = ShardedEngine::Create(opts, &status);
  ASSERT_NE(engine, nullptr) << status.ToString();

  const auto& items = planted.items;
  std::vector<std::thread> threads;
  for (size_t p = 0; p < 4; ++p) {
    auto producer = engine->RegisterProducer(&status);
    ASSERT_NE(producer, nullptr) << status.ToString();
    const size_t begin = p * items.size() / 4;
    const size_t end = (p + 1) * items.size() / 4;
    threads.emplace_back(
        [&items, begin, end, producer = std::move(producer)]() mutable {
          size_t i = begin;
          while (i < end) {
            const size_t chunk = std::min<size_t>(1009, end - i);
            producer->UpdateBatch({items.data() + i, chunk});
            i += chunk;
          }
          producer.reset();
        });
  }
  for (auto& thread : threads) thread.join();
  engine->Flush();
  EXPECT_EQ(engine->ItemsProcessed(), items.size());
  EXPECT_EQ(engine->active_producers(), 0u);

  const double m = static_cast<double>(items.size());
  const auto report = engine->HeavyHitters(0.05);
  for (size_t i = 0; i < planted.planted_ids.size(); ++i) {
    EXPECT_TRUE(Reported(report, planted.planted_ids[i]))
        << "grid run missed planted item " << planted.planted_ids[i];
    EXPECT_NEAR(engine->Estimate(planted.planted_ids[i]),
                static_cast<double>(planted.planted_counts[i]),
                1.5 * 0.02 * m);
  }
}

// Backpressure on the grid: tiny rings, three producers racing the
// controller slot, exact structure — nothing may be dropped and the
// final counts must be exact despite constant ring-full stalls on every
// column of the grid.
TEST(ShardedEngineTest, TinyRingGridBackpressureLosesNothing) {
  const auto planted = TestStream(90000);
  auto opts = EngineOptions("exact", 4, planted.items.size());
  opts.queue_capacity = 64;
  opts.drain_batch = 16;
  opts.num_threads = 2;
  opts.max_producers = 4;  // 3 external + slot 0
  Status status;
  auto engine = ShardedEngine::Create(opts, &status);
  ASSERT_NE(engine, nullptr) << status.ToString();

  const auto& items = planted.items;
  const size_t third = items.size() / 3;
  std::vector<std::thread> threads;
  for (size_t p = 0; p < 3; ++p) {
    auto producer = engine->RegisterProducer(&status);
    ASSERT_NE(producer, nullptr) << status.ToString();
    const size_t begin = p * third;
    const size_t end = p == 2 ? items.size() : (p + 1) * third;
    threads.emplace_back(
        [&items, begin, end, producer = std::move(producer)]() mutable {
          // Mix per-item and batched pushes, like the single-producer
          // backpressure test above.
          size_t i = begin;
          while (i < end) {
            const size_t chunk = std::min<size_t>(509, end - i);
            if (i % 2 == 0) {
              for (size_t j = 0; j < chunk; ++j) {
                producer->Update(items[i + j]);
              }
            } else {
              producer->UpdateBatch({items.data() + i, chunk});
            }
            i += chunk;
          }
          producer.reset();
        });
  }
  for (auto& thread : threads) thread.join();
  engine->Flush();
  EXPECT_EQ(engine->ItemsProcessed(), items.size());
  for (size_t p = 0; p < planted.planted_ids.size(); ++p) {
    EXPECT_EQ(engine->Estimate(planted.planted_ids[p]),
              static_cast<double>(planted.planted_counts[p]));
  }
}

}  // namespace
}  // namespace l1hh
