#include "core/unknown_length.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "stream/stream_generator.h"
#include "stream/vote_generator.h"
#include "summary/exact_counter.h"

namespace l1hh {
namespace {

BdwSimple::Options HHBase(double eps, double phi) {
  BdwSimple::Options opt;
  opt.epsilon = eps;
  opt.phi = phi;
  opt.delta = 0.1;
  opt.universe_size = uint64_t{1} << 24;
  opt.stream_length = 0;  // unknown; the wrapper fills per instance
  return opt;
}

TEST(UnknownLengthTest, AtMostTwoInstances) {
  auto w = MakeUnknownLengthListHeavyHitters(HHBase(0.1, 0.4), 1 << 22, 1);
  Rng rng(2);
  for (int i = 0; i < 300000; ++i) {
    w.Insert(rng.UniformU64(100));
    ASSERT_LE(w.live_instances(), 2);
  }
  EXPECT_GE(w.level(), 2);  // must have rotated at least once
}

TEST(UnknownLengthTest, HeavyHittersFoundWithoutKnowingM) {
  // Stream length spans several windows; heavies must still be caught.
  const double eps = 0.1, phi = 0.35;
  int failures = 0;
  const int trials = 6;
  for (int t = 0; t < trials; ++t) {
    auto w = MakeUnknownLengthListHeavyHitters(HHBase(eps, phi), 1 << 22,
                                               10 + t);
    Rng rng(20 + t);
    const uint64_t m = 200000;
    // Item 5 at 50%, rest uniform noise.
    for (uint64_t i = 0; i < m; ++i) {
      w.Insert((rng.NextU64() & 1) != 0 ? 5 : 1000 + rng.UniformU64(10000));
    }
    std::unordered_set<uint64_t> reported;
    for (const auto& hh : w.Reporter().Report()) reported.insert(hh.item);
    if (reported.count(5) == 0) ++failures;
    // Nothing from the light tail may be reported.
    for (const auto& hh : w.Reporter().Report()) {
      if (hh.item != 5) ++failures;
    }
  }
  EXPECT_LE(failures, 1);
}

TEST(UnknownLengthTest, MaximumTrackedAcrossWindows) {
  EpsilonMaximum::Options base;
  base.epsilon = 0.1;
  base.delta = 0.1;
  base.universe_size = uint64_t{1} << 20;
  auto w = MakeUnknownLengthMaximum(base, 1 << 22, 3);
  Rng rng(4);
  const uint64_t m = 150000;
  for (uint64_t i = 0; i < m; ++i) {
    w.Insert(rng.UniformU64(3) == 0 ? 77 : rng.UniformU64(5000));
  }
  EXPECT_EQ(w.Reporter().Report().item, 77u);
}

TEST(UnknownLengthTest, SpaceStaysBoundedAsStreamGrows) {
  auto w = MakeUnknownLengthListHeavyHitters(HHBase(0.1, 0.4), 1 << 22, 5);
  Rng rng(6);
  size_t peak = 0;
  for (int i = 0; i < 400000; ++i) {
    w.Insert(rng.UniformU64(50));
    if (i % 10000 == 0) peak = std::max(peak, w.SpaceBits());
  }
  // Two instances + Morris: must stay well under a megabit for eps=0.1.
  EXPECT_LT(peak, 1u << 20);
}

TEST(UnknownLengthTest, MorrisEstimateTracksLength) {
  auto w = MakeUnknownLengthListHeavyHitters(HHBase(0.1, 0.4), 1 << 22, 7);
  const uint64_t m = 1 << 17;
  for (uint64_t i = 0; i < m; ++i) w.Insert(1);
  EXPECT_GE(w.EstimatedLength(), static_cast<double>(m) / 4);
  EXPECT_LE(w.EstimatedLength(), static_cast<double>(m) * 4);
}

TEST(UnknownLengthTest, MinimumUnknownLength) {
  EpsilonMinimum::Options base;
  // eps = 0.07 keeps n = 12 below the large-universe cutoff (15.9).
  base.epsilon = 0.07;
  base.delta = 0.1;
  base.universe_size = 12;
  auto w = MakeUnknownLengthMinimum(base, 1 << 20, 9);
  // Item 11 never occurs.
  Rng rng(10);
  for (int i = 0; i < 100000; ++i) w.Insert(rng.UniformU64(11));
  EXPECT_EQ(w.Reporter().Report().item, 11u);
}

TEST(UnknownLengthTest, BordaUnknownLength) {
  StreamingBorda::Options base;
  base.epsilon = 0.1;
  base.delta = 0.1;
  base.num_candidates = 6;
  auto w = MakeUnknownLengthBorda(base, 1 << 18, 11);
  const auto votes = MakeMallowsVotes(6, 30000, 0.5, 12);
  for (const auto& v : votes) w.Insert(v);
  EXPECT_EQ(w.Reporter().MaxScore().item, 0u);
}

TEST(UnknownLengthTest, MaximinUnknownLength) {
  StreamingMaximin::Options base;
  base.epsilon = 0.15;
  base.delta = 0.1;
  base.num_candidates = 5;
  auto w = MakeUnknownLengthMaximin(base, 1 << 18, 13);
  const auto votes = MakePlantedWinnerVotes(5, 20000, /*winner=*/3, 0.5, 14);
  for (const auto& v : votes) w.Insert(v);
  EXPECT_EQ(w.Reporter().MaxScore().item, 3u);
}

TEST(UnknownLengthTest, SerializeRoundTrip) {
  BdwSimple::Options base = HHBase(0.1, 0.4);
  auto alice = MakeUnknownLengthListHeavyHitters(base, 1 << 20, 15);
  for (int i = 0; i < 50000; ++i) alice.Insert(9);
  BitWriter w;
  alice.Serialize(w);

  const double window = 1.0 / base.epsilon;
  const uint64_t seed = 15;
  auto factory = [base, window, seed](uint64_t assumed) {
    BdwSimple::Options opt = base;
    opt.stream_length = assumed;
    opt.constants.hh_sample_factor *= window;
    return BdwSimple(opt, Mix64(seed ^ assumed));
  };
  BitReader r(w);
  auto bob = UnknownLengthWrapper<BdwSimple>::Deserialize(
      r, factory, window, base.delta, 1 << 20, 16);
  for (int i = 0; i < 50000; ++i) bob.Insert(9);
  const auto report = bob.Reporter().Report();
  ASSERT_GE(report.size(), 1u);
  EXPECT_EQ(report[0].item, 9u);
}

}  // namespace
}  // namespace l1hh
