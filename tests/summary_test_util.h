// Shared helpers for the parameterized summary suites.
#ifndef L1HH_TESTS_SUMMARY_TEST_UTIL_H_
#define L1HH_TESTS_SUMMARY_TEST_UTIL_H_

#include <string>
#include <vector>

#include "summary/summary.h"

namespace l1hh {

/// Registered names whose adapters support Merge under `options` — the
/// algorithm set every merge/shard suite parameterizes over.  Pass the
/// suite's own options so the probe matches what the suite constructs
/// (the BDW adapters, for instance, require stream_length to be set).
inline std::vector<std::string> MergeableSummaryNames(
    const SummaryOptions& options) {
  std::vector<std::string> names;
  for (const auto& name : RegisteredSummaryNames()) {
    auto summary = MakeSummary(name, options);
    if (summary != nullptr && summary->SupportsMerge()) {
      names.push_back(name);
    }
  }
  return names;
}

}  // namespace l1hh

#endif  // L1HH_TESTS_SUMMARY_TEST_UTIL_H_
