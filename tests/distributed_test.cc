// Distributed deployment: every sketch supports Merge() so a fleet of
// nodes can each summarize its own substream and a collector can combine
// them.  These tests verify the merged guarantees:
//   * linear sketches (Count-Min, CountSketch) merge EXACTLY — the merged
//     sketch equals one built over the concatenated stream;
//   * Misra-Gries / Space-Saving merges keep their one-sided error with
//     the errors adding;
//   * BdwSimple (Algorithm 1) merges preserve the (eps, phi) contract,
//     because Bernoulli samples of disjoint streams concatenate;
//   * Borda accumulators add; maximin vote samples concatenate.
#include <gtest/gtest.h>

#include <unordered_set>

#include "core/bdw_simple.h"
#include "core/borda.h"
#include "core/maximin.h"
#include "stream/stream_generator.h"
#include "stream/vote_generator.h"
#include "summary/count_min_sketch.h"
#include "summary/count_sketch.h"
#include "summary/exact_counter.h"
#include "summary/hashed_misra_gries.h"
#include "summary/space_saving.h"
#include "votes/election.h"

namespace l1hh {
namespace {

TEST(DistributedTest, CountMinMergeEqualsSingleSketch) {
  const CountMinSketch::Options opt{128, 4, false};
  CountMinSketch node_a(opt, 7), node_b(opt, 7), single(opt, 7);
  ASSERT_TRUE(node_a.Compatible(node_b));
  Rng rng(1);
  for (int i = 0; i < 20000; ++i) {
    const uint64_t x = rng.UniformU64(1000);
    (i % 2 == 0 ? node_a : node_b).Insert(x);
    single.Insert(x);
  }
  const CountMinSketch merged = CountMinSketch::Merge(node_a, node_b);
  for (uint64_t x = 0; x < 1000; ++x) {
    EXPECT_EQ(merged.Estimate(x), single.Estimate(x));
  }
}

TEST(DistributedTest, CountMinIncompatibleSeedsDetected) {
  const CountMinSketch::Options opt{128, 4, false};
  CountMinSketch a(opt, 7), b(opt, 8);
  EXPECT_FALSE(a.Compatible(b));
}

TEST(DistributedTest, CountSketchMergeEqualsSingleSketch) {
  CountSketch node_a(256, 5, 9), node_b(256, 5, 9), single(256, 5, 9);
  ASSERT_TRUE(node_a.Compatible(node_b));
  Rng rng(2);
  for (int i = 0; i < 20000; ++i) {
    const uint64_t x = rng.UniformU64(500);
    (i % 3 == 0 ? node_a : node_b).Insert(x);
    single.Insert(x);
  }
  const CountSketch merged = CountSketch::Merge(node_a, node_b);
  for (uint64_t x = 0; x < 500; ++x) {
    EXPECT_EQ(merged.Estimate(x), single.Estimate(x));
  }
}

TEST(DistributedTest, MisraGriesMergeGuarantee) {
  // Covered in depth by misra_gries_test; here: three-way merge chain.
  Rng rng(3);
  const size_t k = 20;
  MisraGries n1(k), n2(k), n3(k);
  ExactCounter exact;
  const uint64_t m = 90000;
  for (uint64_t i = 0; i < m; ++i) {
    const uint64_t x = rng.UniformU64(rng.UniformU64(300) + 1);
    (i % 3 == 0 ? n1 : (i % 3 == 1 ? n2 : n3)).Insert(x);
    exact.Insert(x);
  }
  const MisraGries merged =
      MisraGries::Merge(MisraGries::Merge(n1, n2), n3);
  for (uint64_t x = 0; x < 300; ++x) {
    const uint64_t est = merged.Estimate(x);
    EXPECT_LE(est, exact.Count(x));
    EXPECT_LE(exact.Count(x) - est, 3 * m / (k + 1) + 3);
  }
}

TEST(DistributedTest, SpaceSavingMergeOverestimates) {
  Rng rng(4);
  const size_t k = 24;
  SpaceSaving a(k), b(k);
  ExactCounter exact;
  const uint64_t m = 60000;
  for (uint64_t i = 0; i < m; ++i) {
    const uint64_t x = rng.UniformU64(rng.UniformU64(200) + 1);
    (i % 2 == 0 ? a : b).Insert(x);
    exact.Insert(x);
  }
  const uint64_t budget = a.MinCount() + b.MinCount();
  const SpaceSaving merged = SpaceSaving::Merge(a, b);
  for (const auto& e : merged.Entries()) {
    EXPECT_GE(e.count + 1, exact.Count(e.item));  // still an overestimate
    EXPECT_LE(e.count - std::min(e.count, exact.Count(e.item)),
              budget + 1);
  }
}

TEST(DistributedTest, HashedMisraGriesMergeKeepsTopIds) {
  Rng hash_rng(5);
  const UniversalHash h = UniversalHash::Draw(hash_rng, 1 << 20);
  HashedMisraGries a(64, 3, h, 32), b(64, 3, h, 32);
  for (int i = 0; i < 3000; ++i) a.Insert(111);
  for (int i = 0; i < 1000; ++i) a.Insert(222);
  for (int i = 0; i < 2500; ++i) b.Insert(333);
  for (int i = 0; i < 2000; ++i) b.Insert(222);
  const HashedMisraGries merged = HashedMisraGries::Merge(a, b);
  const auto top = merged.TopEntries();
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].item, 111u);  // 3000
  EXPECT_EQ(top[1].item, 222u);  // 3000 combined
  EXPECT_EQ(top[2].item, 333u);  // 2500
}

TEST(DistributedTest, BdwSimpleTwoNodeContract) {
  const double eps = 0.02, phi = 0.1;
  const uint64_t m = 60000;
  int failures = 0;
  const int trials = 10;
  for (int t = 0; t < trials; ++t) {
    const PlantedSpec spec{{2 * phi, phi}, uint64_t{1} << 24, m};
    const PlantedStream s = MakePlantedStream(spec, 600 + t);
    BdwSimple::Options opt;
    opt.epsilon = eps;
    opt.phi = phi;
    opt.universe_size = uint64_t{1} << 24;
    opt.stream_length = m;  // TOTAL length, known to both nodes
    // Same seed => same hash function and sampling rate.
    BdwSimple node_a(opt, 700 + t), node_b(opt, 700 + t);
    for (uint64_t i = 0; i < s.items.size(); ++i) {
      (i < s.items.size() / 2 ? node_a : node_b).Insert(s.items[i]);
    }
    const BdwSimple merged = BdwSimple::Merge(node_a, node_b);
    std::unordered_set<uint64_t> reported;
    for (const auto& hh : merged.Report()) reported.insert(hh.item);
    if (reported.count(s.planted_ids[0]) == 0 ||
        reported.count(s.planted_ids[1]) == 0) {
      ++failures;
    }
  }
  EXPECT_LE(failures, 2);
}

TEST(DistributedTest, BordaMergeAddsScores) {
  StreamingBorda::Options opt;
  opt.epsilon = 0.05;
  opt.num_candidates = 6;
  opt.stream_length = 20000;
  StreamingBorda a(opt, 11), b(opt, 11);
  const auto votes = MakeMallowsVotes(6, 20000, 0.6, 12);
  Election exact(6);
  for (size_t i = 0; i < votes.size(); ++i) {
    (i % 2 == 0 ? a : b).InsertVote(votes[i]);
    exact.AddVote(votes[i]);
  }
  const StreamingBorda merged = StreamingBorda::Merge(a, b);
  const auto est = merged.Scores();
  const auto truth = exact.BordaScores();
  for (uint32_t c = 0; c < 6; ++c) {
    EXPECT_NEAR(est[c], static_cast<double>(truth[c]),
                0.05 * 20000.0 * 6);
  }
}

TEST(DistributedTest, MaximinMergeConcatenatesSamples) {
  StreamingMaximin::Options opt;
  opt.epsilon = 0.1;
  opt.num_candidates = 5;
  opt.stream_length = 10000;
  StreamingMaximin a(opt, 13), b(opt, 13);
  const auto votes =
      MakePlantedWinnerVotes(5, 10000, /*winner=*/2, 0.5, 14);
  for (size_t i = 0; i < votes.size(); ++i) {
    (i % 2 == 0 ? a : b).InsertVote(votes[i]);
  }
  const StreamingMaximin merged = StreamingMaximin::Merge(a, b);
  EXPECT_EQ(merged.samples_taken(),
            a.samples_taken() + b.samples_taken());
  EXPECT_EQ(merged.MaxScore().item, 2u);
}

}  // namespace
}  // namespace l1hh
