// Hostile-input battery for the dependency-free telemetry listener
// (src/obs/http_exporter.h, ctest label "obs").
//
// The exporter faces whatever a scraper, a load balancer health check, or
// a port scanner throws at it, so beyond the happy GET path this pins the
// rejection matrix (405 / 404 / 400), the oversized-header cap, torn
// requests, query-string stripping, and that Stop() is idempotent and
// actually frees the port.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/http_exporter.h"
#include "obs/metrics.h"

namespace l1hh {
namespace obs {
namespace {

class HttpExporterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetEnabled(true);
    Registry::Get().ResetForTest();
  }
};

int Connect(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  return fd;
}

// Sends `request` raw and reads the response to EOF (the exporter always
// closes after one exchange).
std::string Roundtrip(uint16_t port, const std::string& request) {
  const int fd = Connect(port);
  size_t off = 0;
  while (off < request.size()) {
    // MSG_NOSIGNAL: a server that rejects early may close while we are
    // still writing; that must surface as an error, not a SIGPIPE.
    const ssize_t n = ::send(fd, request.data() + off, request.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) break;
    off += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string Get(uint16_t port, const std::string& target) {
  return Roundtrip(port, "GET " + target + " HTTP/1.1\r\nHost: t\r\n\r\n");
}

std::unique_ptr<HttpExporter> MakeExporter(
    std::map<std::string, HttpExporter::Handler> handlers,
    HttpExporterOptions options = {}) {
  Status status;
  auto exporter = HttpExporter::Create(options, std::move(handlers), &status);
  EXPECT_TRUE(status.ok()) << status.message();
  EXPECT_NE(exporter, nullptr);
  EXPECT_NE(exporter->port(), 0);
  return exporter;
}

TEST_F(HttpExporterTest, ServesHandlerBodiesWithStatusLines) {
  auto exporter = MakeExporter(
      {{"/metrics",
        [] {
          HttpResponse r;
          r.content_type = "text/plain; version=0.0.4";
          r.body = "l1hh_up 1\n";
          return r;
        }},
       {"/healthz", [] {
          HttpResponse r;
          r.body = "ok\n";
          return r;
        }}});

  const std::string metrics = Get(exporter->port(), "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(metrics.find("Content-Type: text/plain; version=0.0.4\r\n"),
            std::string::npos);
  EXPECT_NE(metrics.find("Content-Length: 10\r\n"), std::string::npos);
  EXPECT_NE(metrics.find("Connection: close\r\n"), std::string::npos);
  EXPECT_NE(metrics.find("\r\n\r\nl1hh_up 1\n"), std::string::npos);

  EXPECT_NE(Get(exporter->port(), "/healthz").find("\r\n\r\nok\n"),
            std::string::npos);
  // Query strings are stripped before handler lookup.
  EXPECT_NE(Get(exporter->port(), "/healthz?verbose=1").find("200 OK"),
            std::string::npos);
}

TEST_F(HttpExporterTest, RejectionMatrix) {
  auto exporter = MakeExporter({{"/healthz", [] {
                                   HttpResponse r;
                                   r.body = "ok\n";
                                   return r;
                                 }}});
  const uint16_t port = exporter->port();

  EXPECT_NE(Get(port, "/nope").find("HTTP/1.1 404"), std::string::npos);
  EXPECT_NE(
      Roundtrip(port, "POST /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
          .find("HTTP/1.1 405"),
      std::string::npos);
  EXPECT_NE(Roundtrip(port, "garbage\r\n\r\n").find("HTTP/1.1 400"),
            std::string::npos);
  // Request line must spell an absolute path and an HTTP version.
  EXPECT_NE(Roundtrip(port, "GET healthz HTTP/1.1\r\n\r\n")
                .find("HTTP/1.1 400"),
            std::string::npos);
  EXPECT_NE(Roundtrip(port, "GET /healthz FTP/1.0\r\n\r\n")
                .find("HTTP/1.1 400"),
            std::string::npos);

  // Oversized header block: exactly max_request_bytes with no terminator,
  // so the server rejects without leaving unread bytes behind (a close
  // with unread data RSTs and could race away the 400).
  auto tiny = MakeExporter({{"/healthz", [] { return HttpResponse{}; }}},
                           HttpExporterOptions{.max_request_bytes = 2048});
  std::string huge = "GET /healthz HTTP/1.1\r\nX-Pad: ";
  huge += std::string(2048 - huge.size(), 'a');
  EXPECT_NE(Roundtrip(tiny->port(), huge).find("HTTP/1.1 400"),
            std::string::npos);

  // The rejections were counted where an operator can see them.
  EXPECT_GE(GetCounter("l1hh_http_requests_total", "code=\"400\"")->Value(),
            4u);
  EXPECT_GE(GetCounter("l1hh_http_requests_total", "code=\"404\"")->Value(),
            1u);
  EXPECT_GE(GetCounter("l1hh_http_requests_total", "code=\"405\"")->Value(),
            1u);
}

TEST_F(HttpExporterTest, TornRequestDoesNotWedgeTheListener) {
  auto exporter = MakeExporter({{"/healthz",
                                 [] {
                                   HttpResponse r;
                                   r.body = "ok\n";
                                   return r;
                                 }}},
                               HttpExporterOptions{.read_timeout_ms = 200});
  const uint16_t port = exporter->port();

  // Half a request line, then hang up.
  const int fd = Connect(port);
  ASSERT_GT(::write(fd, "GET /hea", 8), 0);
  ::close(fd);

  // A connection that just goes silent holds its socket until the read
  // timeout; the listener must still answer afterwards.
  const int silent = Connect(port);
  EXPECT_NE(Get(port, "/healthz").find("200 OK"), std::string::npos);
  ::close(silent);
  EXPECT_NE(Get(port, "/healthz").find("200 OK"), std::string::npos);
}

TEST_F(HttpExporterTest, ConcurrentScrapesSeeConsistentExposition) {
  // The /metrics handler renders the live registry while other threads
  // hammer counters — the TSan leg of CI runs this test.
  auto exporter = MakeExporter({{"/metrics", [] {
                                   HttpResponse r;
                                   std::string body;
                                   for (const std::string& line :
                                        Registry::Get().ExpositionLines()) {
                                     body += line;
                                     body += '\n';
                                   }
                                   r.body = body;
                                   return r;
                                 }}});
  Counter* hits = GetCounter("obstest_http_hits_total");

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load(std::memory_order_relaxed)) hits->Inc();
  });
  for (int i = 0; i < 16; ++i) {
    const std::string response = Get(exporter->port(), "/metrics");
    EXPECT_NE(response.find("obstest_http_hits_total"), std::string::npos);
  }
  stop.store(true);
  writer.join();
}

TEST_F(HttpExporterTest, StopIsIdempotentAndFreesThePort) {
  HttpExporterOptions options;
  auto exporter = MakeExporter({{"/healthz", [] {
                                   HttpResponse r;
                                   r.body = "ok\n";
                                   return r;
                                 }}});
  const uint16_t port = exporter->port();
  EXPECT_NE(Get(port, "/healthz").find("200 OK"), std::string::npos);

  exporter->Stop();
  exporter->Stop();  // second Stop is a no-op, not a crash

  // The listener is really gone: rebinding the same fixed port succeeds.
  options.port = port;
  Status status;
  auto rebound = HttpExporter::Create(
      options,
      {{"/healthz",
        [] {
          HttpResponse r;
          r.body = "again\n";
          return r;
        }}},
      &status);
  ASSERT_TRUE(status.ok()) << status.message();
  ASSERT_NE(rebound, nullptr);
  EXPECT_EQ(rebound->port(), port);
  EXPECT_NE(Get(port, "/healthz").find("again"), std::string::npos);
}

TEST_F(HttpExporterTest, FixedPortConflictReportsError) {
  auto first = MakeExporter({{"/healthz", [] { return HttpResponse{}; }}});
  HttpExporterOptions options;
  options.port = first->port();
  Status status;
  auto second = HttpExporter::Create(
      options, {{"/healthz", [] { return HttpResponse{}; }}}, &status);
  EXPECT_EQ(second, nullptr);
  EXPECT_FALSE(status.ok());
}

}  // namespace
}  // namespace obs
}  // namespace l1hh
