#include "count/morris_counter.h"

#include <gtest/gtest.h>

#include <cmath>

namespace l1hh {
namespace {

TEST(MorrisCounterTest, ZeroInitially) {
  MorrisCounter c;
  EXPECT_DOUBLE_EQ(c.Estimate(), 0.0);
  EXPECT_EQ(c.exponent(), 0u);
}

TEST(MorrisCounterTest, UnbiasedEstimate) {
  // E[estimate] == true count for the Morris counter.
  Rng rng(1);
  const int trials = 3000;
  const int count = 1000;
  double sum = 0;
  for (int t = 0; t < trials; ++t) {
    MorrisCounter c(2.0);
    for (int i = 0; i < count; ++i) c.Increment(rng);
    sum += c.Estimate();
  }
  const double mean = sum / trials;
  // std of a single Morris estimate ~ count/sqrt(2); mean of `trials`.
  const double tolerance = 6.0 * count / std::sqrt(2.0 * trials);
  EXPECT_NEAR(mean, count, tolerance);
}

TEST(MorrisCounterTest, SmallerBaseIsMoreAccurate) {
  Rng rng(2);
  const int trials = 500;
  const int count = 2000;
  double var_small = 0, var_big = 0;
  for (int t = 0; t < trials; ++t) {
    MorrisCounter small(1.1), big(2.0);
    for (int i = 0; i < count; ++i) {
      small.Increment(rng);
      big.Increment(rng);
    }
    var_small += std::pow(small.Estimate() - count, 2);
    var_big += std::pow(big.Estimate() - count, 2);
  }
  EXPECT_LT(var_small, var_big);
}

TEST(MorrisCounterTest, SpaceIsLogLog) {
  Rng rng(3);
  MorrisCounter c(2.0);
  for (int i = 0; i < 1 << 20; ++i) c.Increment(rng);
  // Exponent ~ log2(2^20) = 20 -> 5-6 bits of state.
  EXPECT_LE(c.SpaceBits(), 8);
  EXPECT_GE(c.exponent(), 10u);
  EXPECT_LE(c.exponent(), 40u);
}

TEST(MorrisCounterTest, IncrementReportsExponentChange) {
  Rng rng(4);
  MorrisCounter c(2.0);
  EXPECT_TRUE(c.Increment(rng));  // 0 -> 1 always
  int changes = 1;
  for (int i = 0; i < 10000; ++i) {
    if (c.Increment(rng)) ++changes;
  }
  // Exponent changes only O(log) times.
  EXPECT_LT(changes, 64);
  EXPECT_EQ(static_cast<uint32_t>(changes), c.exponent());
}

TEST(MorrisCounterTest, SerializeRoundTrip) {
  Rng rng(5);
  MorrisCounter c(2.0);
  for (int i = 0; i < 5000; ++i) c.Increment(rng);
  BitWriter w;
  c.Serialize(w);
  BitReader r(w);
  MorrisCounter c2(2.0);
  c2.Deserialize(r);
  EXPECT_EQ(c.exponent(), c2.exponent());
  EXPECT_DOUBLE_EQ(c.Estimate(), c2.Estimate());
}

TEST(MorrisEnsembleTest, ForStreamSizesK) {
  const auto e = MorrisCounterEnsemble::ForStream(1 << 30, 0.05, 1);
  // k = 2 log2(log2(m)/delta) = 2 log2(30/0.05) ~ 18.5.
  EXPECT_GE(e.k(), 10);
  EXPECT_LE(e.k(), 30);
}

TEST(MorrisEnsembleTest, ConstantFactorAtEveryCheckpoint) {
  // Theorem 7's requirement: correct within a factor of ~4 at every
  // power-of-two position, whp.
  auto e = MorrisCounterEnsemble::ForStream(1 << 18, 0.05, 7);
  uint64_t n = 0;
  uint64_t next_checkpoint = 64;
  int violations = 0;
  while (n < (1 << 18)) {
    e.Increment();
    ++n;
    if (n == next_checkpoint) {
      const double est = e.Estimate();
      if (est < static_cast<double>(n) / 4 ||
          est > static_cast<double>(n) * 4) {
        ++violations;
      }
      next_checkpoint *= 2;
    }
  }
  EXPECT_EQ(violations, 0);
}

TEST(MorrisEnsembleTest, SerializeRoundTrip) {
  auto e = MorrisCounterEnsemble::ForStream(1 << 20, 0.1, 11);
  for (int i = 0; i < 10000; ++i) e.Increment();
  BitWriter w;
  e.Serialize(w);
  BitReader r(w);
  auto e2 = MorrisCounterEnsemble::ForStream(1 << 20, 0.1, 12);
  e2.Deserialize(r);
  EXPECT_DOUBLE_EQ(e.Estimate(), e2.Estimate());
}

// Sweep stream lengths: the ensemble estimate tracks the true length
// within a factor of 4 at the end.
class MorrisLengthSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MorrisLengthSweep, EndEstimateWithinFactorFour) {
  const uint64_t m = GetParam();
  auto e = MorrisCounterEnsemble::ForStream(m, 0.05, 13 + m);
  for (uint64_t i = 0; i < m; ++i) e.Increment();
  EXPECT_GE(e.Estimate(), static_cast<double>(m) / 4);
  EXPECT_LE(e.Estimate(), static_cast<double>(m) * 4);
}

INSTANTIATE_TEST_SUITE_P(Lengths, MorrisLengthSweep,
                         ::testing::Values(100, 1000, 10000, 100000,
                                           1000000));

}  // namespace
}  // namespace l1hh
