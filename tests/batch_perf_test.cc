// The batch-vs-scalar regression GATE, moved out of
// bench/bench_sharded_throughput.cc into a ctest target (label "perf",
// RUN_SERIAL) so it has what a timing assertion actually needs: a
// machine not also running the rest of the suite, a tolerance the
// environment can tune instead of a hard-coded retry heuristic, and a
// failure that names itself in ctest output rather than a non-zero bench
// exit buried in a CI log.
//
// The claim gated here is deliberately modest: for every registered
// algorithm, UpdateBatch and UpdateColumn must not be SLOWER than the
// scalar Update loop beyond the noise tolerance.  They exist to be
// faster; an adapter change that quietly reverts a tight loop to
// per-item virtual dispatch shows up as a 1.3-2x regression, far outside
// any honest tolerance.
//
//   L1HH_PERF_TOLERANCE   max allowed (batch ns) / (scalar ns), as a
//                         float.  Default 1.35: roomy enough for a
//                         saturated CI runner, tight enough to catch a
//                         reverted fast path.  Set e.g. 2.0 on very
//                         noisy machines, or 10 to neuter the gate
//                         without touching the build.
//
// A second gate pins the src/obs/ telemetry overhead: engine ingest with
// instrumentation enabled vs disabled (the obs::Enabled() switch), same
// min-of-N interleaved discipline, plus one remeasure before failing.
//
//   L1HH_OBS_TOLERANCE    max allowed (instrumented ns) / (disabled ns).
//                         Default 1.05 — the instrumented hot path is one
//                         relaxed load plus per-batch (not per-item)
//                         relaxed adds, so 5% is already generous.
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/sharded_engine.h"
#include "obs/metrics.h"
#include "stream/stream_generator.h"
#include "summary/summary.h"

namespace l1hh {
namespace {

double Tolerance() {
  const char* env = std::getenv("L1HH_PERF_TOLERANCE");
  if (env != nullptr) {
    const double parsed = std::atof(env);
    if (parsed > 0) return parsed;
  }
  return 1.35;
}

SummaryOptions PerfOptions(uint64_t stream_length) {
  SummaryOptions o;
  o.epsilon = 0.005;
  o.phi = 0.02;
  o.delta = 0.05;
  o.universe_size = uint64_t{1} << 22;
  o.stream_length = stream_length;
  o.seed = 42;
  return o;
}

enum class Route { kScalar, kBatch, kColumn };

double TimeRoute(const std::string& name, const SummaryOptions& options,
                 const std::vector<uint64_t>& stream, Route route) {
  auto summary = MakeSummary(name, options);
  const auto start = std::chrono::steady_clock::now();
  switch (route) {
    case Route::kScalar:
      for (const uint64_t x : stream) summary->Update(x);
      break;
    case Route::kBatch:
      summary->UpdateBatch(stream);
      break;
    case Route::kColumn:
      summary->UpdateColumn(stream.data(), stream.size());
      break;
  }
  const auto end = std::chrono::steady_clock::now();
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
          .count());
}

// Min-of-5, routes interleaved within each rep: frequency scaling and
// noisy neighbors hit whole time windows, so alternating keeps any one
// disturbance from landing entirely on one route, and min() discards the
// disturbed reps instead of averaging them in.
void Measure(const std::string& name, const SummaryOptions& options,
             const std::vector<uint64_t>& stream, double& scalar_ns,
             double& batch_ns, double& column_ns) {
  scalar_ns = batch_ns = column_ns = 0;
  for (int rep = 0; rep < 5; ++rep) {
    const double s = TimeRoute(name, options, stream, Route::kScalar);
    const double b = TimeRoute(name, options, stream, Route::kBatch);
    const double c = TimeRoute(name, options, stream, Route::kColumn);
    scalar_ns = rep == 0 ? s : std::min(scalar_ns, s);
    batch_ns = rep == 0 ? b : std::min(batch_ns, b);
    column_ns = rep == 0 ? c : std::min(column_ns, c);
  }
}

TEST(BatchPerfTest, BatchAndColumnNeverSlowerThanScalar) {
  const double tolerance = Tolerance();
  const uint64_t m = uint64_t{1} << 18;
  const auto stream =
      MakeZipfStream(uint64_t{1} << 22, 1.1, m, /*seed=*/3);
  const SummaryOptions options = PerfOptions(m);
  for (const auto& name : RegisteredSummaryNames()) {
    SCOPED_TRACE(name);
    double scalar_ns = 0, batch_ns = 0, column_ns = 0;
    Measure(name, options, stream, scalar_ns, batch_ns, column_ns);
    const double per_item = 1.0 / static_cast<double>(stream.size());
    RecordProperty(name + "_scalar_ns_per_item", scalar_ns * per_item);
    RecordProperty(name + "_batch_ns_per_item", batch_ns * per_item);
    RecordProperty(name + "_column_ns_per_item", column_ns * per_item);
    EXPECT_LE(batch_ns, tolerance * scalar_ns)
        << name << ": UpdateBatch " << batch_ns * per_item
        << " ns/item vs scalar " << scalar_ns * per_item
        << " ns/item exceeds L1HH_PERF_TOLERANCE=" << tolerance;
    EXPECT_LE(column_ns, tolerance * scalar_ns)
        << name << ": UpdateColumn " << column_ns * per_item
        << " ns/item vs scalar " << scalar_ns * per_item
        << " ns/item exceeds L1HH_PERF_TOLERANCE=" << tolerance;
  }
}

// ---- telemetry overhead gate ------------------------------------------

double ObsTolerance() {
  const char* env = std::getenv("L1HH_OBS_TOLERANCE");
  if (env != nullptr) {
    const double parsed = std::atof(env);
    if (parsed > 0) return parsed;
  }
  return 1.05;
}

// One full engine ingest (UpdateBatch + Flush) with the telemetry switch in
// the given state; returns wall nanoseconds of the ingest.
double TimeEngineIngest(const std::vector<uint64_t>& stream, bool obs_on) {
  ShardedEngineOptions o;
  o.algorithm = "space_saving";
  o.num_shards = 2;
  o.summary.epsilon = 0.005;
  o.summary.phi = 0.02;
  o.summary.delta = 0.05;
  o.summary.universe_size = uint64_t{1} << 22;
  o.summary.stream_length = stream.size();
  o.summary.seed = 42;
  auto engine = ShardedEngine::Create(o);
  if (engine == nullptr) {
    ADD_FAILURE() << "ShardedEngine::Create failed";
    return 0;
  }
  obs::SetEnabled(obs_on);
  const auto start = std::chrono::steady_clock::now();
  engine->UpdateBatch(stream);
  engine->Flush();
  const auto end = std::chrono::steady_clock::now();
  obs::SetEnabled(true);
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
          .count());
}

// Min-of-5 interleaved (same rationale as Measure above); returns the
// instrumented/disabled ratio.
double MeasureObsRatio(const std::vector<uint64_t>& stream) {
  double on_ns = 0, off_ns = 0;
  for (int rep = 0; rep < 5; ++rep) {
    const double on = TimeEngineIngest(stream, /*obs_on=*/true);
    const double off = TimeEngineIngest(stream, /*obs_on=*/false);
    on_ns = rep == 0 ? on : std::min(on_ns, on);
    off_ns = rep == 0 ? off : std::min(off_ns, off);
  }
  return off_ns > 0 ? on_ns / off_ns : 1.0;
}

TEST(BatchPerfTest, ObsInstrumentationOverheadBounded) {
  const double tolerance = ObsTolerance();
  const uint64_t m = uint64_t{1} << 18;
  const auto stream = MakeZipfStream(uint64_t{1} << 22, 1.1, m, /*seed=*/3);
  double ratio = MeasureObsRatio(stream);
  RecordProperty("obs_overhead_ratio_first", ratio);
  if (ratio > tolerance) {
    // One remeasure: a single scheduler hiccup on a loaded runner can land
    // entirely on the instrumented arm even with interleaving.
    ratio = MeasureObsRatio(stream);
    RecordProperty("obs_overhead_ratio_retry", ratio);
  }
  EXPECT_LE(ratio, tolerance)
      << "instrumented engine ingest is " << ratio
      << "x the disabled baseline, exceeding L1HH_OBS_TOLERANCE=" << tolerance;
}

}  // namespace
}  // namespace l1hh
