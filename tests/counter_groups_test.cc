#include "summary/counter_groups.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "util/random.h"

namespace l1hh {
namespace {

TEST(CounterGroupsTest, InsertAndFind) {
  CounterGroups g(4);
  EXPECT_EQ(g.Find(7), -1);
  const int e = g.InsertNew(7);
  EXPECT_GE(e, 0);
  EXPECT_EQ(g.Find(7), e);
  EXPECT_EQ(g.Count(7), 1u);
  EXPECT_EQ(g.live_size(), 1u);
}

TEST(CounterGroupsTest, IncrementMovesBetweenGroups) {
  CounterGroups g(4);
  const int e = g.InsertNew(1);
  g.Increment(e);
  g.Increment(e);
  EXPECT_EQ(g.Count(1), 3u);
  g.InsertNew(2);
  EXPECT_EQ(g.Count(2), 1u);
  EXPECT_EQ(g.MinCount(), 1u);
  EXPECT_EQ(g.MaxCount(), 3u);
}

TEST(CounterGroupsTest, DecrementAllEvictsLowest) {
  CounterGroups g(2);
  const int a = g.InsertNew(10);
  g.Increment(a);       // 10 -> 2
  g.InsertNew(20);      // 20 -> 1, table full
  g.DecrementAll();     // 10 -> 1, 20 -> 0 (zombie)
  EXPECT_EQ(g.Count(10), 1u);
  EXPECT_EQ(g.Count(20), 0u);
  EXPECT_EQ(g.live_size(), 1u);
  EXPECT_FALSE(g.Full());
  EXPECT_EQ(g.decrement_count(), 1u);
}

TEST(CounterGroupsTest, ZombieSlotIsReused) {
  CounterGroups g(2);
  g.InsertNew(1);
  g.InsertNew(2);
  g.DecrementAll();  // both become zombies
  EXPECT_EQ(g.live_size(), 0u);
  g.InsertNew(3);    // must cannibalize a zombie slot
  EXPECT_EQ(g.Count(3), 1u);
  EXPECT_EQ(g.live_size(), 1u);
}

TEST(CounterGroupsTest, FindGarbageCollectsZombies) {
  CounterGroups g(1);
  g.InsertNew(5);
  g.DecrementAll();
  EXPECT_EQ(g.Find(5), -1);  // zombie reads as absent
  EXPECT_FALSE(g.Full());
  g.InsertNew(5);
  EXPECT_EQ(g.Count(5), 1u);
}

TEST(CounterGroupsTest, ReplaceMinSwapsKeyAndIncrements) {
  CounterGroups g(2);
  const int a = g.InsertNew(1);
  g.Increment(a);    // 1 -> 2
  g.InsertNew(2);    // 2 -> 1
  const uint64_t old_min = g.ReplaceMin(3);  // replaces key 2
  EXPECT_EQ(old_min, 1u);
  EXPECT_EQ(g.Count(2), 0u);
  EXPECT_EQ(g.Count(3), 2u);  // min+1
  EXPECT_EQ(g.Count(1), 2u);
}

TEST(CounterGroupsTest, ForEachVisitsLiveEntries) {
  CounterGroups g(8);
  for (uint64_t k = 0; k < 5; ++k) {
    const int e = g.InsertNew(k);
    for (uint64_t c = 0; c < k; ++c) g.Increment(e);
  }
  std::map<uint64_t, uint64_t> seen;
  g.ForEach([&](uint64_t k, uint64_t c) { seen[k] = c; });
  ASSERT_EQ(seen.size(), 5u);
  for (uint64_t k = 0; k < 5; ++k) EXPECT_EQ(seen[k], k + 1);
}

TEST(CounterGroupsTest, SerializeRoundTrip) {
  CounterGroups g(8);
  for (uint64_t k = 0; k < 6; ++k) {
    const int e = g.InsertNew(k * 11);
    for (uint64_t c = 0; c < k * 3; ++c) g.Increment(e);
  }
  BitWriter w;
  g.Serialize(w);
  BitReader r(w);
  CounterGroups g2(1);
  g2.Deserialize(r);
  EXPECT_EQ(g2.capacity(), g.capacity());
  EXPECT_EQ(g2.live_size(), g.live_size());
  for (uint64_t k = 0; k < 6; ++k) {
    EXPECT_EQ(g2.Count(k * 11), g.Count(k * 11));
  }
}

// Differential test against a straightforward map-based Misra-Gries
// reference across random operation streams.
TEST(CounterGroupsTest, MatchesReferenceMisraGries) {
  Rng rng(99);
  const size_t k = 8;
  CounterGroups g(k);
  std::map<uint64_t, uint64_t> ref;

  for (int step = 0; step < 200000; ++step) {
    const uint64_t item = rng.UniformU64(40);
    // Reference MG insert.
    auto it = ref.find(item);
    if (it != ref.end()) {
      ++it->second;
    } else if (ref.size() < k) {
      ref[item] = 1;
    } else {
      for (auto iter = ref.begin(); iter != ref.end();) {
        if (--iter->second == 0) {
          iter = ref.erase(iter);
        } else {
          ++iter;
        }
      }
    }
    // CounterGroups MG insert.
    const int e = g.Find(item);
    if (e >= 0) {
      g.Increment(e);
    } else if (!g.Full()) {
      g.InsertNew(item);
    } else {
      g.DecrementAll();
    }
    if (step % 1000 == 0) {
      for (uint64_t x = 0; x < 40; ++x) {
        const auto rit = ref.find(x);
        const uint64_t expected = rit == ref.end() ? 0 : rit->second;
        ASSERT_EQ(g.Count(x), expected) << "item " << x << " step " << step;
      }
    }
  }
}

TEST(CounterGroupsTest, SpaceBitsAccountsKeysAndCounts) {
  CounterGroups g(4);
  // Capacity-based: 4 slots x (16 key bits + 1 value bit) + offset width.
  EXPECT_EQ(g.SpaceBits(16), 4u * 17u + 1u);
  const int e = g.InsertNew(1);
  for (int i = 0; i < 7; ++i) g.Increment(e);  // max count 8 -> 4 bits
  EXPECT_EQ(g.SpaceBits(16), 4u * 20u + 1u);
}

}  // namespace
}  // namespace l1hh
