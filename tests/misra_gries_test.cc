#include "summary/misra_gries.h"

#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "stream/stream_generator.h"
#include "summary/exact_counter.h"
#include "util/random.h"

namespace l1hh {
namespace {

TEST(MisraGriesTest, ExactWhenUniverseFits) {
  MisraGries mg(10);
  for (int rep = 0; rep < 7; ++rep) {
    for (uint64_t x = 0; x < 5; ++x) {
      for (uint64_t c = 0; c <= x; ++c) mg.Insert(x);
    }
  }
  for (uint64_t x = 0; x < 5; ++x) {
    EXPECT_EQ(mg.Estimate(x), 7 * (x + 1));
  }
  EXPECT_EQ(mg.ErrorBound(), 0u);
}

// The deterministic Misra-Gries guarantee:
//   f(x) - m/(k+1) <= Estimate(x) <= f(x).
TEST(MisraGriesTest, DeterministicGuarantee) {
  Rng rng(1);
  const size_t k = 20;
  MisraGries mg(k);
  ExactCounter exact;
  const uint64_t m = 100000;
  for (uint64_t i = 0; i < m; ++i) {
    // Skewed-ish stream.
    const uint64_t x = rng.UniformU64(rng.UniformU64(1000) + 1);
    mg.Insert(x);
    exact.Insert(x);
  }
  for (uint64_t x = 0; x < 1000; ++x) {
    const uint64_t est = mg.Estimate(x);
    const uint64_t truth = exact.Count(x);
    EXPECT_LE(est, truth);
    EXPECT_LE(truth - est, m / (k + 1) + 1);
  }
}

TEST(MisraGriesTest, AllHeavyItemsSurvive) {
  // Any item with f > m/(k+1) must be tracked.
  const PlantedSpec spec{
      {0.3, 0.2, 0.1}, /*universe=*/1 << 16, /*length=*/50000};
  const PlantedStream s = MakePlantedStream(spec, 7);
  MisraGries mg(20);
  for (const uint64_t x : s.items) mg.Insert(x);
  for (size_t i = 0; i < s.planted_ids.size(); ++i) {
    EXPECT_GT(mg.Estimate(s.planted_ids[i]), 0u)
        << "planted item " << i << " lost";
  }
}

TEST(MisraGriesTest, TracksAtMostKItems) {
  Rng rng(2);
  MisraGries mg(5);
  for (int i = 0; i < 10000; ++i) mg.Insert(rng.UniformU64(1000));
  EXPECT_LE(mg.tracked(), 5u);
  EXPECT_LE(mg.Entries().size(), 5u);
}

TEST(MisraGriesTest, EntriesSortedDescending) {
  MisraGries mg(8);
  for (int c = 0; c < 5; ++c) mg.Insert(1);
  for (int c = 0; c < 9; ++c) mg.Insert(2);
  for (int c = 0; c < 2; ++c) mg.Insert(3);
  const auto entries = mg.Entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].item, 2u);
  EXPECT_EQ(entries[1].item, 1u);
  EXPECT_EQ(entries[2].item, 3u);
}

TEST(MisraGriesTest, EntriesAboveThreshold) {
  MisraGries mg(8);
  for (int c = 0; c < 10; ++c) mg.Insert(1);
  for (int c = 0; c < 3; ++c) mg.Insert(2);
  EXPECT_EQ(mg.EntriesAbove(5).size(), 1u);
  EXPECT_EQ(mg.EntriesAbove(1).size(), 2u);
  EXPECT_EQ(mg.EntriesAbove(11).size(), 0u);
}

TEST(MisraGriesTest, MergePreservesGuarantee) {
  Rng rng(3);
  const size_t k = 15;
  MisraGries a(k), b(k);
  ExactCounter exact;
  for (int i = 0; i < 30000; ++i) {
    const uint64_t x = rng.UniformU64(rng.UniformU64(200) + 1);
    a.Insert(x);
    exact.Insert(x);
  }
  for (int i = 0; i < 30000; ++i) {
    const uint64_t x = rng.UniformU64(rng.UniformU64(200) + 1);
    b.Insert(x);
    exact.Insert(x);
  }
  const MisraGries merged = MisraGries::Merge(a, b);
  const uint64_t m = 60000;
  EXPECT_LE(merged.tracked(), k);
  for (uint64_t x = 0; x < 200; ++x) {
    const uint64_t est = merged.Estimate(x);
    const uint64_t truth = exact.Count(x);
    EXPECT_LE(est, truth);
    // Merged error <= m_a/(k+1) + m_b/(k+1) + (k+1)-th largest <= 2m/(k+1).
    EXPECT_LE(truth - est, 2 * m / (k + 1) + 2);
  }
}

TEST(MisraGriesTest, SerializeRoundTrip) {
  Rng rng(4);
  MisraGries mg(12, 20);
  for (int i = 0; i < 20000; ++i) mg.Insert(rng.UniformU64(100));
  BitWriter w;
  mg.Serialize(w);
  BitReader r(w);
  const MisraGries mg2 = MisraGries::Deserialize(r);
  EXPECT_EQ(mg2.items_processed(), mg.items_processed());
  for (uint64_t x = 0; x < 100; ++x) {
    EXPECT_EQ(mg2.Estimate(x), mg.Estimate(x));
  }
}

TEST(MisraGriesTest, SingleItemStream) {
  MisraGries mg(4);
  for (int i = 0; i < 1000; ++i) mg.Insert(42);
  EXPECT_EQ(mg.Estimate(42), 1000u);
}

TEST(MisraGriesTest, KOne) {
  // Boyer-Moore majority with a single counter.
  MisraGries mg(1);
  for (int i = 0; i < 60; ++i) mg.Insert(1);
  for (int i = 0; i < 40; ++i) mg.Insert(2);
  EXPECT_GT(mg.Estimate(1), 0u);  // majority survives
  EXPECT_EQ(mg.Estimate(2), 0u);
}

// Property sweep over k and distribution skew.
struct MgSweepParam {
  size_t k;
  double zipf_alpha;
};

class MgGuaranteeSweep : public ::testing::TestWithParam<MgSweepParam> {};

TEST_P(MgGuaranteeSweep, GuaranteeHolds) {
  const auto [k, alpha] = GetParam();
  const uint64_t m = 60000;
  const auto stream = MakeZipfStream(1 << 14, alpha, m, 17 + k);
  MisraGries mg(k);
  ExactCounter exact;
  for (const uint64_t x : stream) {
    mg.Insert(x);
    exact.Insert(x);
  }
  for (const auto& e : exact.SortedByCountDesc()) {
    const uint64_t est = mg.Estimate(e.item);
    EXPECT_LE(est, e.count);
    EXPECT_LE(e.count - est, m / (k + 1) + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MgGuaranteeSweep,
    ::testing::Values(MgSweepParam{5, 0.8}, MgSweepParam{5, 1.2},
                      MgSweepParam{20, 0.0}, MgSweepParam{20, 1.5},
                      MgSweepParam{100, 1.0}, MgSweepParam{100, 2.0}));

}  // namespace
}  // namespace l1hh
