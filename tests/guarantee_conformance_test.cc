// Statistical guarantee-conformance suite (ISSUE 2): every registered
// summary is run over R independent seeds on Zipf and adversarial planted
// workloads, and each run is checked against the paper's Definition 1
// ((eps, phi)-List l1-heavy hitters) contract:
//   * recall     — every item with f(x) > phi*m is reported;
//   * soundness  — nothing reported has f(x) < (phi - eps)*m;
//   * estimates  — reported/heavy items are estimated within ~eps*m.
// Randomized structures are allowed to fail whole runs with probability
// delta, so the suite asserts the observed failure count stays within a
// binomial tolerance (mean + 3 sigma) of R*delta; deterministic
// structures must never fail.  Seeds are fixed, so the verdicts are
// reproducible bit-for-bit.  Every mergeable structure additionally runs
// the same battery through a 4-shard ShardedEngine (shard-then-merge must
// not cost any part of the contract; see the second suite below).
//
// ctest labels: slow, conformance (run under ASan/UBSan in CI's
// sanitizer job; excluded from nothing — the suite is sized to stay
// tier-1 fast).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "engine/sharded_engine.h"
#include "stream/stream_generator.h"
#include "summary/exact_counter.h"
#include "summary/summary.h"
#include "summary_test_util.h"

namespace l1hh {
namespace {

constexpr double kEpsilon = 0.02;
constexpr double kPhi = 0.05;
constexpr double kDelta = 0.05;
constexpr uint64_t kUniverse = uint64_t{1} << 18;
constexpr uint64_t kStreamLength = 40000;
constexpr int kRuns = 10;  // independent seeds per workload

// Estimation slack beyond eps*m: the sampling-based estimators
// (bdw_simple, bdw_optimal, count_sketch) carry constant-factor noise at
// any fixed seed; 1.5x matches the repo's interface-test calibration.
constexpr double kEstimateSlack = 1.5;

/// Binomial failure budget: with per-run failure probability delta, the
/// observed failures over R runs stay below mean + 3*sigma except with
/// probability < ~1e-3 — loose enough to keep the suite deterministic-
/// green at fixed seeds, tight enough to catch a broken guarantee (which
/// fails most runs, not three).
int AllowedFailures(int runs, double delta) {
  const double mean = runs * delta;
  const double sigma = std::sqrt(runs * delta * (1.0 - delta));
  return static_cast<int>(std::ceil(mean + 3.0 * sigma));
}

/// Structures whose Definition-1 contract is deterministic: every run
/// must pass, no failure budget.
bool IsDeterministic(const std::string& name) {
  return name == "misra_gries" || name == "space_saving" ||
         name == "lossy_counting" || name == "exact";
}

struct Workload {
  const char* name;
  std::vector<uint64_t> items;
};

/// Zipf(1.2) — the canonical skewed draw — and an adversarial planted
/// stream: exact frequencies straddling the contract's thresholds, with
/// all heavy occurrences at the END of the stream (the paper makes no
/// ordering assumption; tail-loaded heavies are the worst case for
/// sampling/bucket schemes that commit early).
std::vector<Workload> MakeWorkloads(uint64_t seed) {
  std::vector<Workload> workloads;
  workloads.push_back(
      {"zipf", MakeZipfStream(kUniverse, /*alpha=*/1.2, kStreamLength,
                              seed)});
  PlantedSpec spec;
  // Two clear heavies, one just above phi, one just below (phi - eps):
  // the last must never be reported, the first three always.
  spec.planted_fractions = {0.12, 0.08, kPhi + 0.006, kPhi - kEpsilon -
                                                          0.005};
  spec.universe_size = kUniverse;
  spec.stream_length = kStreamLength;
  spec.order = StreamOrder::kHeaviesLast;
  workloads.push_back(
      {"adversarial", MakePlantedStream(spec, seed).items});
  return workloads;
}

struct RunVerdict {
  bool ok = true;
  std::string detail;  // first violation, for the failure message
};

/// Runs one workload through the summary (shards == 1) or through a
/// shard-then-merge ShardedEngine (shards > 1: hash-partitioned ingest,
/// epoch/state reconciliation at merge, global answers from the merged
/// view) and checks the Definition 1 contract either way.  Sharding must
/// not cost any part of the guarantee — that is the engine's correctness
/// claim, and for bdw_optimal it is the ISSUE 3 acceptance criterion.
RunVerdict CheckDefinitionOneContract(const std::string& algorithm,
                                      const std::vector<uint64_t>& stream,
                                      uint64_t seed, size_t shards = 1) {
  SummaryOptions options;
  options.epsilon = kEpsilon;
  options.phi = kPhi;
  options.delta = kDelta;
  options.universe_size = kUniverse;
  options.stream_length = stream.size();
  options.seed = seed;

  std::unique_ptr<Summary> summary;
  std::unique_ptr<ShardedEngine> engine;
  if (shards == 1) {
    summary = MakeSummary(algorithm, options);
    if (summary == nullptr) return {false, "factory returned nullptr"};
    summary->UpdateBatch(stream);
  } else {
    ShardedEngineOptions engine_options;
    engine_options.algorithm = algorithm;
    engine_options.summary = options;
    engine_options.num_shards = shards;
    engine = ShardedEngine::Create(engine_options);
    if (engine == nullptr) return {false, "engine refused the algorithm"};
    engine->UpdateBatch(stream);
  }
  auto estimate = [&](uint64_t item) {
    return engine != nullptr ? engine->Estimate(item)
                             : summary->Estimate(item);
  };

  ExactCounter exact;
  for (const uint64_t x : stream) exact.Insert(x);
  const double m = static_cast<double>(stream.size());
  const auto report = engine != nullptr ? engine->HeavyHitters(kPhi)
                                        : summary->HeavyHitters(kPhi);
  RunVerdict verdict;
  auto fail = [&verdict](std::string detail) {
    if (verdict.ok) {
      verdict.ok = false;
      verdict.detail = std::move(detail);
    }
  };

  // Recall: every f > phi*m item is in the report.
  for (const auto& t :
       exact.HeavyHitters(static_cast<uint64_t>(kPhi * m) + 1)) {
    const bool reported = std::any_of(
        report.begin(), report.end(),
        [&t](const ItemEstimate& e) { return e.item == t.item; });
    if (!reported) {
      fail("missed heavy item " + std::to_string(t.item) + " with f=" +
           std::to_string(t.count));
    }
    // Estimates of true heavies within the contract's additive error.
    const double est = estimate(t.item);
    if (std::abs(est - static_cast<double>(t.count)) >
        kEstimateSlack * kEpsilon * m) {
      fail("estimate " + std::to_string(est) + " for heavy item " +
           std::to_string(t.item) + " off from f=" +
           std::to_string(t.count));
    }
  }
  // Soundness: nothing below (phi - eps)*m is reported (the -1 absorbs
  // the ceil at the threshold boundary).
  for (const auto& r : report) {
    const auto f = static_cast<double>(exact.Count(r.item));
    if (f < (kPhi - kEpsilon) * m - 1.0) {
      fail("reported light item " + std::to_string(r.item) + " with f=" +
           std::to_string(static_cast<uint64_t>(f)));
    }
  }
  return verdict;
}

class GuaranteeConformanceTest
    : public testing::TestWithParam<std::string> {};

TEST_P(GuaranteeConformanceTest, DefinitionOneContractHoldsOverSeeds) {
  const std::string& algorithm = GetParam();
  const int budget =
      IsDeterministic(algorithm) ? 0 : AllowedFailures(kRuns, kDelta);

  std::map<std::string, int> failures;
  std::map<std::string, std::string> details;
  for (int run = 0; run < kRuns; ++run) {
    // Stream seed and summary seed both vary per run (independent
    // trials); all fixed, so reruns are identical.
    const uint64_t seed = 1000 + 17 * static_cast<uint64_t>(run);
    for (auto& workload : MakeWorkloads(seed)) {
      const RunVerdict verdict = CheckDefinitionOneContract(
          algorithm, workload.items, /*summary seed=*/seed + 1);
      if (!verdict.ok) {
        ++failures[workload.name];
        details[workload.name] += "\n  seed " + std::to_string(seed) +
                                  ": " + verdict.detail;
      }
    }
  }
  for (const char* workload_name : {"zipf", "adversarial"}) {
    EXPECT_LE(failures[workload_name], budget)
        << algorithm << " on " << workload_name << ": "
        << failures[workload_name] << " of " << kRuns
        << " runs violated the (eps, phi) contract (budget " << budget
        << ")" << details[workload_name];
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllRegistered, GuaranteeConformanceTest,
    testing::ValuesIn(RegisteredSummaryNames()),
    [](const testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

// The same battery, ingested through a 4-shard ShardedEngine instead of a
// single summary: hash-partitioned substreams, one same-seed instance per
// shard, answers from the engine's merged view.  Shard-then-merge must
// preserve the Definition 1 contract under the SAME failure budget — this
// is what lets the repo claim the paper's optimal algorithm *sharded*
// (bdw_optimal's epoch-reconciled merge), and it covers every other
// mergeable structure for free.
std::vector<std::string> MergeableNames() {
  SummaryOptions probe_options;
  probe_options.stream_length = kStreamLength;
  return MergeableSummaryNames(probe_options);
}

class ShardedGuaranteeConformanceTest
    : public testing::TestWithParam<std::string> {};

TEST_P(ShardedGuaranteeConformanceTest,
       ShardThenMergePreservesDefinitionOneOverSeeds) {
  const std::string& algorithm = GetParam();
  const int budget =
      IsDeterministic(algorithm) ? 0 : AllowedFailures(kRuns, kDelta);

  std::map<std::string, int> failures;
  std::map<std::string, std::string> details;
  for (int run = 0; run < kRuns; ++run) {
    const uint64_t seed = 1000 + 17 * static_cast<uint64_t>(run);
    for (auto& workload : MakeWorkloads(seed)) {
      const RunVerdict verdict = CheckDefinitionOneContract(
          algorithm, workload.items, /*summary seed=*/seed + 1,
          /*shards=*/4);
      if (!verdict.ok) {
        ++failures[workload.name];
        details[workload.name] += "\n  seed " + std::to_string(seed) +
                                  ": " + verdict.detail;
      }
    }
  }
  for (const char* workload_name : {"zipf", "adversarial"}) {
    EXPECT_LE(failures[workload_name], budget)
        << algorithm << " sharded on " << workload_name << ": "
        << failures[workload_name] << " of " << kRuns
        << " runs violated the (eps, phi) contract (budget " << budget
        << ")" << details[workload_name];
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMergeable, ShardedGuaranteeConformanceTest,
    testing::ValuesIn(MergeableNames()),
    [](const testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

}  // namespace
}  // namespace l1hh
