// Unit suite for the sliding-window container (src/window/): factory
// spelling, ring rotation/eviction mechanics, merge alignment rules,
// cache invalidation, and snapshot geometry checks.  The statistical
// eps + 1/B contract over drifting streams lives in
// windowed_conformance_test.cc; both carry the ctest label `window`.
#include "window/sliding_window_summary.h"

#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "io/snapshot.h"
#include "summary/summary.h"

namespace l1hh {
namespace {

SummaryOptions WindowOptions(uint64_t window, uint64_t buckets) {
  SummaryOptions opt;
  opt.epsilon = 0.02;
  opt.phi = 0.05;
  opt.universe_size = 1 << 16;
  opt.stream_length = 1 << 16;
  opt.seed = 7;
  opt.window_size = window;
  opt.window_buckets = buckets;
  return opt;
}

std::unique_ptr<SlidingWindowSummary> MakeWindow(
    const std::string& inner, uint64_t window, uint64_t buckets,
    Status* status = nullptr) {
  return SlidingWindowSummary::Create(inner, WindowOptions(window, buckets),
                                      status);
}

TEST(SlidingWindowFactoryTest, RegistrySpellingRoundTrips) {
  auto summary = MakeSummary("windowed:count_min", WindowOptions(1000, 4));
  ASSERT_NE(summary, nullptr);
  EXPECT_EQ(summary->Name(), "windowed:count_min");
  EXPECT_TRUE(summary->SupportsMerge());
  EXPECT_TRUE(summary->SupportsSnapshot());
  // Options echo the EFFECTIVE geometry so snapshot headers reconstruct
  // an identical ring.
  const SummaryOptions echoed = summary->Options();
  EXPECT_EQ(echoed.window_size, 1000u);
  EXPECT_EQ(echoed.window_buckets, 4u);
}

TEST(SlidingWindowFactoryTest, GeometryDefaultsAndRounding) {
  // window_size == 0 defaults to stream_length; buckets 0 defaults to 8.
  SummaryOptions opt = WindowOptions(0, 0);
  auto summary = MakeSummary("windowed:misra_gries", opt);
  ASSERT_NE(summary, nullptr);
  EXPECT_EQ(summary->Options().window_size, opt.stream_length);
  EXPECT_EQ(summary->Options().window_buckets, 8u);
  // Non-divisible W rounds down to a multiple of B.
  auto rounded = MakeWindow("exact", 103, 4);
  ASSERT_NE(rounded, nullptr);
  EXPECT_EQ(rounded->bucket_width(), 25u);
  EXPECT_EQ(rounded->window_size(), 100u);
}

TEST(SlidingWindowFactoryTest, RejectsUnusableInnerStructures) {
  Status status;
  EXPECT_EQ(MakeWindow("no_such_algo", 100, 4, &status), nullptr);
  EXPECT_NE(status.ToString().find("unknown"), std::string::npos);
  // Non-mergeable structures have no window semantics to offer.
  EXPECT_EQ(MakeWindow("lossy_counting", 100, 4, &status), nullptr);
  EXPECT_NE(status.ToString().find("Merge"), std::string::npos);
  // The refusal reason travels through the registry factory too, so the
  // CLI and the engine can show it instead of "unknown algorithm".
  EXPECT_EQ(MakeSummary("windowed:lossy_counting", WindowOptions(100, 4),
                        &status),
            nullptr);
  EXPECT_NE(status.ToString().find("Merge"), std::string::npos);
  EXPECT_EQ(MakeWindow("sticky_sampling", 100, 4, &status), nullptr);
  // No nested windows.
  EXPECT_EQ(MakeWindow("windowed:exact", 100, 4, &status), nullptr);
  EXPECT_EQ(MakeSummary("windowed:windowed:exact", WindowOptions(100, 4)),
            nullptr);
  // Hostile bucket counts must not size an allocation.
  EXPECT_EQ(MakeWindow("exact", 100, SlidingWindowSummary::kMaxBuckets + 1,
                       &status),
            nullptr);
  EXPECT_NE(status.ToString().find("window_buckets"), std::string::npos);
}

TEST(SlidingWindowTest, RotationIsLazyAndCoverageIsBounded) {
  auto window = MakeWindow("exact", 100, 4);  // q = 25
  ASSERT_NE(window, nullptr);
  for (uint64_t i = 0; i < 100; ++i) window->Update(i % 10);
  // Lazy rotation: a stream ending exactly on a bucket boundary still
  // covers a full window; the boundary rotation waits for the next item.
  EXPECT_EQ(window->rotations(), 3u);
  EXPECT_EQ(window->window_items(), 100u);
  EXPECT_EQ(window->ItemsProcessed(), 100u);
  window->Update(42);
  EXPECT_EQ(window->rotations(), 4u);
  EXPECT_EQ(window->window_items(), 76u);  // 3 full buckets + 1 live item
  EXPECT_EQ(window->ItemsProcessed(), 101u);
  // Coverage stays within (W - q, W] forever after.
  for (uint64_t i = 0; i < 1000; ++i) {
    window->Update(i);
    EXPECT_GT(window->window_items(), 75u);
    EXPECT_LE(window->window_items(), 100u);
  }
}

TEST(SlidingWindowTest, ExpiredItemsLeaveWithinOneWindow) {
  auto window = MakeWindow("exact", 100, 4);
  ASSERT_NE(window, nullptr);
  // A burst of one heavy item, then background: after a full window of
  // other items the heavy one must be completely evicted.
  for (int i = 0; i < 50; ++i) window->Update(7);
  EXPECT_GT(window->Estimate(7), 0.0);
  for (uint64_t i = 0; i < 100; ++i) window->Update(1000 + i);
  EXPECT_EQ(window->Estimate(7), 0.0);
  for (const auto& hh : window->HeavyHitters(0.05)) {
    EXPECT_NE(hh.item, 7u);
  }
}

TEST(SlidingWindowTest, ExactInnerReportsExactSuffixCounts) {
  auto window = MakeWindow("exact", 200, 8);  // q = 25
  ASSERT_NE(window, nullptr);
  std::vector<uint64_t> stream;
  for (uint64_t i = 0; i < 555; ++i) stream.push_back(i % 13);
  window->UpdateBatch(stream);
  // The covered suffix is the last window_items() of the stream; a
  // windowed exact counter must report exactly its counts.
  const uint64_t covered = window->window_items();
  ASSERT_LE(covered, 200u);
  std::vector<uint64_t> truth(13, 0);
  for (size_t i = stream.size() - covered; i < stream.size(); ++i) {
    ++truth[stream[i]];
  }
  for (uint64_t x = 0; x < 13; ++x) {
    EXPECT_EQ(window->Estimate(x), static_cast<double>(truth[x]))
        << "item " << x;
  }
}

TEST(SlidingWindowTest, WeightedUpdatesCrossBucketBoundaries) {
  auto window = MakeWindow("exact", 100, 4);  // q = 25
  ASSERT_NE(window, nullptr);
  window->Update(5, 120);  // spans 4+ buckets in one call
  EXPECT_EQ(window->ItemsProcessed(), 120u);
  EXPECT_EQ(window->rotations(), 4u);
  // Coverage: 3 full buckets of 25 plus 20 in the live bucket.
  EXPECT_EQ(window->window_items(), 95u);
  EXPECT_EQ(window->Estimate(5), 95.0);
}

TEST(SlidingWindowTest, QueriesReflectUpdatesImmediately) {
  auto window = MakeWindow("exact", 100, 4);
  ASSERT_NE(window, nullptr);
  window->Update(3, 10);
  EXPECT_EQ(window->Estimate(3), 10.0);  // builds the merged cache
  window->Update(3, 5);                  // must invalidate it
  EXPECT_EQ(window->Estimate(3), 15.0);
  const auto before = window->HeavyHitters(0.05);
  ASSERT_FALSE(before.empty());
  for (uint64_t i = 0; i < 110; ++i) window->Update(200 + i);
  EXPECT_EQ(window->Estimate(3), 0.0);  // rotation invalidated, 3 evicted
}

TEST(SlidingWindowMergeTest, PristineRingAdoptsAlignment) {
  auto a = MakeWindow("exact", 100, 4);
  auto b = MakeWindow("exact", 100, 4);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  for (uint64_t i = 0; i < 130; ++i) a->Update(i % 3);
  auto merged = MakeWindow("exact", 100, 4);
  ASSERT_TRUE(merged->Merge(*a).ok());
  EXPECT_EQ(merged->rotations(), a->rotations());
  EXPECT_EQ(merged->window_items(), a->window_items());
  EXPECT_EQ(merged->Estimate(0), a->Estimate(0));
  // Merging an untouched ring is a no-op, not an alignment error.
  ASSERT_TRUE(a->Merge(*b).ok());
  EXPECT_EQ(a->ItemsProcessed(), 130u);
}

TEST(SlidingWindowMergeTest, RejectsMisalignedAndForeignRings) {
  auto a = MakeWindow("exact", 100, 4);
  auto b = MakeWindow("exact", 100, 4);
  for (uint64_t i = 0; i < 130; ++i) a->Update(i);  // 5 rotations
  for (uint64_t i = 0; i < 30; ++i) b->Update(i);   // 1 rotation
  const Status misaligned = a->Merge(*b);
  EXPECT_FALSE(misaligned.ok());
  EXPECT_NE(misaligned.ToString().find("rotation"), std::string::npos);
  // Different geometry or inner structure is incompatible outright.
  auto geometry = MakeWindow("exact", 200, 4);
  EXPECT_FALSE(a->Merge(*geometry).ok());
  auto inner = MakeWindow("misra_gries", 100, 4);
  EXPECT_FALSE(a->Merge(*inner).ok());
  auto plain = MakeSummary("exact", WindowOptions(100, 4));
  EXPECT_FALSE(a->Merge(*plain).ok());
}

TEST(SlidingWindowMergeTest, ShardStyleDisjointMergeMatchesSingleRing) {
  // Engine-style split: two rings in external-rotation mode ingest
  // disjoint halves of one global stream and rotate on the global clock;
  // their merge must equal one ring over the whole stream.
  auto single = MakeWindow("exact", 100, 4);
  auto left = MakeWindow("exact", 100, 4);
  auto right = MakeWindow("exact", 100, 4);
  left->set_external_rotation(true);
  right->set_external_rotation(true);
  const uint64_t q = single->bucket_width();
  for (uint64_t pos = 0; pos < 137; ++pos) {
    if (pos % q == 0 && pos != 0) {
      left->Rotate();
      right->Rotate();
    }
    const uint64_t item = (pos * 31) % 11;
    single->Update(item);
    (item % 2 == 0 ? left : right)->Update(item);
  }
  auto merged = MakeWindow("exact", 100, 4);
  ASSERT_TRUE(merged->Merge(*left).ok());
  ASSERT_TRUE(merged->Merge(*right).ok());
  EXPECT_EQ(merged->window_items(), single->window_items());
  for (uint64_t x = 0; x < 11; ++x) {
    EXPECT_EQ(merged->Estimate(x), single->Estimate(x)) << "item " << x;
  }
}

TEST(SlidingWindowSnapshotTest, GeometryMismatchIsCorruption) {
  auto a = MakeWindow("exact", 100, 4);
  for (uint64_t i = 0; i < 60; ++i) a->Update(i);
  BitWriter payload;
  ASSERT_TRUE(a->SaveTo(payload).ok());
  // Same payload into a ring with a different bucket width: refused as a
  // shape mismatch, exactly like every adapter's LoadFrom.
  auto b = MakeWindow("exact", 200, 4);
  BitReader reader(payload);
  const Status loaded = b->LoadFrom(reader);
  EXPECT_FALSE(loaded.ok());
  EXPECT_NE(loaded.ToString().find("shape"), std::string::npos);
}

TEST(SlidingWindowSnapshotTest, ContainerRoundTripsThroughLoadSummary) {
  auto a = MakeWindow("count_min", 400, 8);
  ASSERT_NE(a, nullptr);
  for (uint64_t i = 0; i < 777; ++i) a->Update(i % 50);  // mid-bucket stop
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(SaveSummary(*a, &bytes).ok());
  Status status;
  auto restored = LoadSummary(bytes, &status);
  ASSERT_NE(restored, nullptr) << status.ToString();
  EXPECT_EQ(restored->Name(), "windowed:count_min");
  auto* ring = dynamic_cast<SlidingWindowSummary*>(restored.get());
  ASSERT_NE(ring, nullptr);
  EXPECT_EQ(ring->rotations(), a->rotations());
  EXPECT_EQ(ring->window_items(), a->window_items());
  EXPECT_EQ(ring->ItemsProcessed(), a->ItemsProcessed());
  for (uint64_t x = 0; x < 50; ++x) {
    EXPECT_EQ(restored->Estimate(x), a->Estimate(x)) << "item " << x;
  }
}

}  // namespace
}  // namespace l1hh
