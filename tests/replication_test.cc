// Warm-standby replication end to end (ctest label: engine): fork a real
// l1hh_serve primary and a real l1hh_replica follower, ingest through the
// primary while the follower tails delta syncs, then KILL the primary and
// assert the follower keeps answering — matching what an in-process
// engine run over the same stream answers.  Determinism makes "matching"
// exact: both sides hold the same shard summaries (same seed, same hash
// partition) and merge them in the same order for queries.
#include <gtest/gtest.h>

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include "engine/sharded_engine.h"
#include "stream/stream_generator.h"
#include "summary/exact_counter.h"

#ifndef L1HH_SERVE_BINARY
#error "build must define L1HH_SERVE_BINARY (see tests/CMakeLists.txt)"
#endif
#ifndef L1HH_REPLICA_BINARY
#error "build must define L1HH_REPLICA_BINARY (see tests/CMakeLists.txt)"
#endif

namespace l1hh {
namespace {

// ---- tiny blocking client (same idiom as serve_test) -------------------

class Client {
 public:
  explicit Client(const std::string& socket_path) { Connect(socket_path); }

  void Connect(const std::string& socket_path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd_, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    ASSERT_LT(socket_path.size(), sizeof(addr.sun_path));
    std::strncpy(addr.sun_path, socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    int rc = -1;
    for (int attempt = 0; attempt < 200; ++attempt) {
      rc = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
      if (rc == 0) break;
      ::usleep(50 * 1000);
    }
    ASSERT_EQ(rc, 0) << "cannot connect to " << socket_path << ": "
                     << std::strerror(errno);
    timeval timeout{};
    timeout.tv_sec = 60;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  }

  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  void SendRaw(const void* data, size_t n) {
    const char* bytes = static_cast<const char*>(data);
    size_t done = 0;
    while (done < n) {
      const ssize_t wrote = ::write(fd_, bytes + done, n - done);
      ASSERT_GT(wrote, 0) << std::strerror(errno);
      done += static_cast<size_t>(wrote);
    }
  }

  void SendLine(const std::string& line) {
    const std::string framed = line + "\n";
    SendRaw(framed.data(), framed.size());
  }

  std::string ReadLine() {
    while (true) {
      const size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        const std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
      if (n <= 0) {
        ADD_FAILURE() << "server hung up mid-reply ("
                      << std::strerror(errno) << ")";
        return {};
      }
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

  std::map<uint64_t, double> Heavy(double phi) {
    char request[64];
    std::snprintf(request, sizeof(request), "heavy %.6f", phi);
    SendLine(request);
    const std::string head = ReadLine();
    std::map<uint64_t, double> report;
    unsigned long long count = 0;
    if (std::sscanf(head.c_str(), "hh %llu", &count) != 1) {
      ADD_FAILURE() << "bad heavy reply header '" << head << "'";
      return report;
    }
    for (unsigned long long i = 0; i < count; ++i) {
      const std::string entry = ReadLine();
      unsigned long long item = 0;
      double estimate = 0;
      if (std::sscanf(entry.c_str(), "%llu %lf", &item, &estimate) != 2) {
        ADD_FAILURE() << "bad heavy reply entry '" << entry << "'";
        return report;
      }
      report[item] = estimate;
    }
    return report;
  }

  double EstimateOf(uint64_t item) {
    SendLine("estimate " + std::to_string(item));
    const std::string reply = ReadLine();
    unsigned long long echoed = 0;
    double estimate = 0;
    if (std::sscanf(reply.c_str(), "est %llu %lf", &echoed, &estimate) != 2 ||
        echoed != item) {
      ADD_FAILURE() << "bad estimate reply '" << reply << "'";
      return -1;
    }
    return estimate;
  }

  std::string Stats() {
    SendLine("stats");
    return ReadLine();
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

pid_t StartPrimary(const std::string& socket_path,
                   const std::vector<std::string>& extra) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  std::vector<std::string> flags = {L1HH_SERVE_BINARY,
                                    "--socket=" + socket_path};
  flags.insert(flags.end(), extra.begin(), extra.end());
  std::vector<char*> argv;
  argv.reserve(flags.size() + 1);
  for (std::string& flag : flags) argv.push_back(flag.data());
  argv.push_back(nullptr);
  ::execv(L1HH_SERVE_BINARY, argv.data());
  std::perror("execv " L1HH_SERVE_BINARY);
  ::_exit(127);
}

pid_t StartReplica(const std::string& primary_path,
                   const std::string& socket_path) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  const std::string primary_flag = "--primary=" + primary_path;
  const std::string socket_flag = "--socket=" + socket_path;
  ::execl(L1HH_REPLICA_BINARY, L1HH_REPLICA_BINARY, primary_flag.c_str(),
          socket_flag.c_str(), "--interval-ms=50", "--phi=0.05",
          static_cast<char*>(nullptr));
  std::perror("execl " L1HH_REPLICA_BINARY);
  ::_exit(127);
}

// Polls the replica's stats line until `want` is a substring (the item
// count at the last completed sync, or primary=lost after a kill).
void AwaitStats(Client& replica, const std::string& want) {
  std::string stats;
  for (int attempt = 0; attempt < 400; ++attempt) {
    stats = replica.Stats();
    if (stats.find(want) != std::string::npos) return;
    ::usleep(50 * 1000);
  }
  FAIL() << "replica never reached '" << want << "'; last stats: " << stats;
}

void ExpectExitedCleanly(pid_t pid) {
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  EXPECT_TRUE(WIFEXITED(wstatus));
  EXPECT_EQ(WEXITSTATUS(wstatus), 0);
}

// ---- Failover against exact ground truth -------------------------------

// Primary runs `exact` over a planted stream; after the primary is shut
// down, the standby must answer the heavy-hitter report and point
// estimates with the exact final counts.
TEST(ReplicationTest, StandbyServesExactAnswersAfterPrimaryDies) {
  PlantedSpec spec;
  spec.planted_fractions = {0.20, 0.12, 0.08};
  spec.universe_size = uint64_t{1} << 20;
  spec.stream_length = 30000;
  spec.order = StreamOrder::kShuffled;
  const PlantedStream planted = MakePlantedStream(spec, /*seed=*/7);
  const auto& items = planted.items;

  const std::string primary_sock =
      testing::TempDir() + "/repl_primary.sock";
  const std::string replica_sock =
      testing::TempDir() + "/repl_standby.sock";
  const pid_t primary = StartPrimary(
      primary_sock, {"--algo=exact", "--shards=2", "--producers=2",
                     "--m=" + std::to_string(items.size())});
  ASSERT_GT(primary, 0);
  const pid_t replica = StartReplica(primary_sock, replica_sock);
  ASSERT_GT(replica, 0);

  // Force the initial full sync to happen against the PRIMARY'S PRISTINE
  // state (regression: empty counter-group snapshots used to be refused
  // as Corruption, killing replication before the first item).
  Client standby(replica_sock);
  AwaitStats(standby, "primary=up");

  // Ingest the full stream through the primary.
  {
    Client writer(primary_sock);
    std::string block;
    for (size_t i = 0; i < items.size(); ++i) {
      block += std::to_string(items[i]);
      block += '\n';
      if (block.size() >= 32768 || i + 1 == items.size()) {
        writer.SendRaw(block.data(), block.size());
        block.clear();
      }
    }
    writer.SendLine("flush");
    EXPECT_EQ(writer.ReadLine(), "ok " + std::to_string(items.size()));
    writer.SendLine("quit");
  }

  // Wait until the standby's last completed sync covers the whole stream.
  AwaitStats(standby, "items=" + std::to_string(items.size()));
  AwaitStats(standby, "algo=exact");

  // Kill the primary (orderly shutdown — the failover being tested is the
  // standby's, not the primary's crash handling).
  {
    Client admin(primary_sock);
    admin.SendLine("shutdown");
    EXPECT_EQ(admin.ReadLine(), "ok");
  }
  ExpectExitedCleanly(primary);
  AwaitStats(standby, "primary=lost");

  // The standby now IS the service.  Its report must equal the exact
  // final counts of the stream the dead primary ingested.
  ExactCounter truth;
  for (const uint64_t x : items) truth.Insert(x);
  const auto report = standby.Heavy(0.05);
  const auto expected = truth.HeavyHitters(
      static_cast<uint64_t>(0.05 * static_cast<double>(items.size())) + 1);
  ASSERT_EQ(report.size(), expected.size());
  for (const auto& hh : expected) {
    const auto it = report.find(hh.item);
    ASSERT_NE(it, report.end()) << "missing item " << hh.item;
    EXPECT_EQ(it->second, static_cast<double>(hh.count));
  }
  for (const uint64_t planted_item : planted.planted_ids) {
    EXPECT_EQ(standby.EstimateOf(planted_item),
              static_cast<double>(truth.Count(planted_item)));
  }

  standby.SendLine("shutdown");
  EXPECT_EQ(standby.ReadLine(), "ok");
  ExpectExitedCleanly(replica);
}

// ---- Windowed primary: the delta path carries the syncs -----------------

// A windowed primary rotates buckets as the stream advances, so the
// follower's incremental syncs ride the delta frames (only the dirty
// tail crosses the wire).  After several ingest/sync rounds and a
// failover, the standby must answer exactly like an in-process engine
// built with the same construction parameters over the same stream.
TEST(ReplicationTest, WindowedStandbyTailsDeltasAndSurvivesFailover) {
  const uint64_t kUniverse = uint64_t{1} << 20;
  const uint64_t kLength = 24000;
  const auto items = MakeZipfStream(kUniverse, 1.2, kLength, /*seed=*/5);

  const std::string primary_sock =
      testing::TempDir() + "/repl_win_primary.sock";
  const std::string replica_sock =
      testing::TempDir() + "/repl_win_standby.sock";
  const pid_t primary = StartPrimary(
      primary_sock,
      {"--algo=windowed:space_saving", "--shards=2", "--producers=2",
       "--epsilon=0.02", "--phi=0.05", "--delta=0.05",
       "--n=" + std::to_string(kUniverse), "--m=" + std::to_string(kLength),
       "--seed=1", "--window=16384", "--buckets=8"});
  ASSERT_GT(primary, 0);
  const pid_t replica = StartReplica(primary_sock, replica_sock);
  ASSERT_GT(replica, 0);

  // Feed in chunks with a pause after each, so the follower completes a
  // sync round between chunks — every round after the first moves only
  // the changed tail.
  Client standby(replica_sock);
  // The initial full sync happens against the pristine windowed ring
  // (empty-state snapshots must round-trip — the failover regression).
  AwaitStats(standby, "primary=up");
  {
    Client writer(primary_sock);
    const size_t kChunk = 6000;
    size_t sent = 0;
    while (sent < items.size()) {
      const size_t n = std::min(kChunk, items.size() - sent);
      std::string block;
      for (size_t i = 0; i < n; ++i) {
        block += std::to_string(items[sent + i]);
        block += '\n';
      }
      writer.SendRaw(block.data(), block.size());
      writer.SendLine("flush");
      EXPECT_EQ(writer.ReadLine().rfind("ok ", 0), 0u);
      sent += n;
      // Let the follower observe this intermediate state.
      AwaitStats(standby, "items=" + std::to_string(sent) + " ");
    }
    writer.SendLine("quit");
  }

  // Multiple sync rounds happened (one per chunk at minimum); the stats
  // line exposes the count.
  const std::string stats = standby.Stats();
  unsigned long long synced_items = 0, shard_count = 0, sync_rounds = 0;
  ASSERT_EQ(std::sscanf(stats.c_str(),
                        "stats items=%llu shards=%llu syncs=%llu",
                        &synced_items, &shard_count, &sync_rounds),
            3)
      << stats;
  EXPECT_EQ(synced_items, items.size());
  EXPECT_EQ(shard_count, 2u);
  EXPECT_GE(sync_rounds, 4u);

  {
    Client admin(primary_sock);
    admin.SendLine("shutdown");
    EXPECT_EQ(admin.ReadLine(), "ok");
  }
  ExpectExitedCleanly(primary);
  AwaitStats(standby, "primary=lost");

  // Offline reference: an in-process engine with the primary's exact
  // construction parameters over the same stream.  Shard summaries are
  // deterministic (same seed, same hash partition, same ingest order per
  // shard), and both query paths merge shards in index order, so the
  // standby's answers must be EQUAL, not merely within eps.
  ShardedEngineOptions opt;
  opt.algorithm = "windowed:space_saving";
  opt.num_shards = 2;
  opt.summary.epsilon = 0.02;
  opt.summary.phi = 0.05;
  opt.summary.delta = 0.05;
  opt.summary.universe_size = kUniverse;
  opt.summary.stream_length = kLength;
  opt.summary.seed = 1;
  opt.summary.window_size = 16384;
  opt.summary.window_buckets = 8;
  Status status;
  auto reference = ShardedEngine::Create(opt, &status);
  ASSERT_NE(reference, nullptr) << status.ToString();
  reference->UpdateBatch(items);

  const auto reference_report = reference->HeavyHitters(0.05);
  const auto standby_report = standby.Heavy(0.05);
  ASSERT_EQ(standby_report.size(), reference_report.size());
  for (const ItemEstimate& hh : reference_report) {
    const auto it = standby_report.find(hh.item);
    ASSERT_NE(it, standby_report.end()) << "missing item " << hh.item;
    EXPECT_EQ(it->second, hh.estimate) << "item " << hh.item;
  }
  for (size_t i = 0; i < 32; ++i) {
    const uint64_t probe = items[i * (items.size() / 32)];
    EXPECT_EQ(standby.EstimateOf(probe), reference->Estimate(probe))
        << "item " << probe;
  }

  standby.SendLine("shutdown");
  EXPECT_EQ(standby.ReadLine(), "ok");
  ExpectExitedCleanly(replica);
}

}  // namespace
}  // namespace l1hh
