#include "summary/space_saving.h"

#include <gtest/gtest.h>

#include "stream/stream_generator.h"
#include "summary/exact_counter.h"
#include "util/random.h"

namespace l1hh {
namespace {

// The Space-Saving guarantee: f(x) <= Estimate(x) <= f(x) + MinCount,
// with MinCount <= m/k.
TEST(SpaceSavingTest, OverestimateGuarantee) {
  Rng rng(1);
  const size_t k = 20;
  SpaceSaving ss(k);
  ExactCounter exact;
  const uint64_t m = 100000;
  for (uint64_t i = 0; i < m; ++i) {
    const uint64_t x = rng.UniformU64(rng.UniformU64(500) + 1);
    ss.Insert(x);
    exact.Insert(x);
  }
  EXPECT_LE(ss.MinCount(), m / k + 1);
  for (const auto& e : ss.Entries()) {
    const uint64_t truth = exact.Count(e.item);
    EXPECT_GE(e.count, truth);
    EXPECT_LE(e.count - truth, ss.MinCount());
  }
}

TEST(SpaceSavingTest, HeavyItemsAlwaysTracked) {
  const PlantedSpec spec{{0.4, 0.2, 0.1}, 1 << 16, 40000};
  const PlantedStream s = MakePlantedStream(spec, 3);
  SpaceSaving ss(16);
  for (const uint64_t x : s.items) ss.Insert(x);
  for (size_t i = 0; i < s.planted_ids.size(); ++i) {
    EXPECT_GE(ss.Estimate(s.planted_ids[i]), s.planted_counts[i]);
  }
}

TEST(SpaceSavingTest, ExactWhenUniverseFits) {
  SpaceSaving ss(10);
  for (uint64_t x = 0; x < 5; ++x) {
    for (uint64_t c = 0; c <= 2 * x; ++c) ss.Insert(x);
  }
  for (uint64_t x = 0; x < 5; ++x) {
    EXPECT_EQ(ss.Estimate(x), 2 * x + 1);
  }
  EXPECT_EQ(ss.MinCount(), 0u);  // never filled
}

TEST(SpaceSavingTest, CountsSumToStreamLength) {
  // Invariant: sum of all counters == number of insertions.
  Rng rng(2);
  SpaceSaving ss(8);
  const uint64_t m = 50000;
  for (uint64_t i = 0; i < m; ++i) ss.Insert(rng.UniformU64(300));
  uint64_t total = 0;
  for (const auto& e : ss.Entries()) total += e.count;
  EXPECT_EQ(total, m);
}

TEST(SpaceSavingTest, SerializeRoundTrip) {
  Rng rng(3);
  SpaceSaving ss(12, 24);
  for (int i = 0; i < 30000; ++i) ss.Insert(rng.UniformU64(150));
  BitWriter w;
  ss.Serialize(w);
  BitReader r(w);
  const SpaceSaving ss2 = SpaceSaving::Deserialize(r);
  for (uint64_t x = 0; x < 150; ++x) {
    EXPECT_EQ(ss2.Estimate(x), ss.Estimate(x));
  }
}

TEST(SpaceSavingTest, EntriesAbove) {
  SpaceSaving ss(8);
  for (int i = 0; i < 100; ++i) ss.Insert(1);
  for (int i = 0; i < 10; ++i) ss.Insert(2);
  EXPECT_EQ(ss.EntriesAbove(50).size(), 1u);
  EXPECT_EQ(ss.EntriesAbove(5).size(), 2u);
}

class SpaceSavingSweep : public ::testing::TestWithParam<double> {};

TEST_P(SpaceSavingSweep, GuaranteeAcrossSkew) {
  const double alpha = GetParam();
  const uint64_t m = 60000;
  const size_t k = 32;
  const auto stream = MakeZipfStream(1 << 14, alpha, m, 41);
  SpaceSaving ss(k);
  ExactCounter exact;
  for (const uint64_t x : stream) {
    ss.Insert(x);
    exact.Insert(x);
  }
  for (const auto& e : ss.Entries()) {
    EXPECT_GE(e.count, exact.Count(e.item));
    EXPECT_LE(e.count - exact.Count(e.item), m / k + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Skews, SpaceSavingSweep,
                         ::testing::Values(0.0, 0.5, 1.0, 1.5, 2.0));

}  // namespace
}  // namespace l1hh
