// Integration test for the l1hh_serve front end (ctest label: engine):
// forks the real binary on a Unix socket, drives it with two concurrent
// writer connections (text lines AND binary batches) while a third
// connection interleaves live heavy/stats queries, then asserts the
// final report matches an offline run over the same stream.  The server
// runs the exact structure, so "matches" means bit-for-bit equal counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include "stream/stream_generator.h"
#include "summary/exact_counter.h"

#ifndef L1HH_SERVE_BINARY
#error "build must define L1HH_SERVE_BINARY (see tests/CMakeLists.txt)"
#endif

namespace l1hh {
namespace {

// ---- tiny blocking client ---------------------------------------------

class Client {
 public:
  explicit Client(const std::string& socket_path) { Connect(socket_path); }

  // gtest fatal assertions cannot live in a constructor (they expand to
  // value returns), so the connecting lives in a void helper.
  void Connect(const std::string& socket_path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd_, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    ASSERT_LT(socket_path.size(), sizeof(addr.sun_path));
    std::strncpy(addr.sun_path, socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    // The server needs a moment to bind after fork; retry briefly.
    int rc = -1;
    for (int attempt = 0; attempt < 200; ++attempt) {
      rc = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
      if (rc == 0) break;
      ::usleep(50 * 1000);
    }
    ASSERT_EQ(rc, 0) << "cannot connect to " << socket_path << ": "
                     << std::strerror(errno);
    // A broken server must fail the test, not hang ctest.
    timeval timeout{};
    timeout.tv_sec = 60;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  }

  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  void SendRaw(const void* data, size_t n) {
    const char* bytes = static_cast<const char*>(data);
    size_t done = 0;
    while (done < n) {
      const ssize_t wrote = ::write(fd_, bytes + done, n - done);
      ASSERT_GT(wrote, 0) << std::strerror(errno);
      done += static_cast<size_t>(wrote);
    }
  }

  void SendLine(const std::string& line) {
    const std::string framed = line + "\n";
    SendRaw(framed.data(), framed.size());
  }

  std::string ReadLine() {
    while (true) {
      const size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        const std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
      if (n <= 0) {
        ADD_FAILURE() << "server hung up mid-reply ("
                      << std::strerror(errno) << ")";
        return {};
      }
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

  // Issues `heavy phi` and returns {item -> estimate}.
  std::map<uint64_t, double> Heavy(double phi) {
    char request[64];
    std::snprintf(request, sizeof(request), "heavy %.6f", phi);
    SendLine(request);
    const std::string head = ReadLine();
    std::map<uint64_t, double> report;
    unsigned long long count = 0;
    if (std::sscanf(head.c_str(), "hh %llu", &count) != 1) {
      ADD_FAILURE() << "bad heavy reply header '" << head << "'";
      return report;
    }
    for (unsigned long long i = 0; i < count; ++i) {
      const std::string entry = ReadLine();
      unsigned long long item = 0;
      double estimate = 0;
      if (std::sscanf(entry.c_str(), "%llu %lf", &item, &estimate) != 2) {
        ADD_FAILURE() << "bad heavy reply entry '" << entry << "'";
        return report;
      }
      report[item] = estimate;
    }
    return report;
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

// Issues `metrics` and returns {exposition name -> value}, asserting every
// line is well-formed `name{labels} value`.
std::map<std::string, long long> Scrape(Client& client) {
  client.SendLine("metrics");
  const std::string head = client.ReadLine();
  std::map<std::string, long long> out;
  unsigned long long count = 0;
  if (std::sscanf(head.c_str(), "metrics %llu", &count) != 1) {
    ADD_FAILURE() << "bad metrics reply header '" << head << "'";
    return out;
  }
  for (unsigned long long i = 0; i < count; ++i) {
    const std::string line = client.ReadLine();
    const size_t space = line.rfind(' ');
    if (space == std::string::npos) {
      ADD_FAILURE() << "bad exposition line '" << line << "'";
      continue;
    }
    const std::string name = line.substr(0, space);
    const std::string value = line.substr(space + 1);
    // Metric names are [a-z0-9_:] with an optional {label="..."} block.
    const size_t brace = name.find('{');
    const std::string bare = name.substr(0, brace);
    EXPECT_FALSE(bare.empty()) << line;
    for (const char c : bare) {
      EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                  c == '_' || c == ':')
          << "bad metric name char '" << c << "' in '" << line << "'";
    }
    if (brace != std::string::npos) {
      EXPECT_EQ(name.back(), '}') << line;
    }
    errno = 0;
    char* end = nullptr;
    const long long v = std::strtoll(value.c_str(), &end, 10);
    EXPECT_TRUE(errno == 0 && end != nullptr && *end == '\0')
        << "bad exposition value in '" << line << "'";
    out[name] = v;
  }
  return out;
}

pid_t StartServer(const std::string& socket_path, uint64_t stream_length) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  const std::string m_flag = "--m=" + std::to_string(stream_length);
  const std::string socket_flag = "--socket=" + socket_path;
  ::execl(L1HH_SERVE_BINARY, L1HH_SERVE_BINARY, socket_flag.c_str(),
          "--algo=exact", "--shards=2", "--producers=4", "--phi=0.05",
          m_flag.c_str(), static_cast<char*>(nullptr));
  std::perror("execl " L1HH_SERVE_BINARY);
  ::_exit(127);
}

TEST(ServeTest, ConcurrentWritersMatchOfflineRun) {
  PlantedSpec spec;
  spec.planted_fractions = {0.20, 0.12, 0.08};
  spec.universe_size = uint64_t{1} << 20;
  spec.stream_length = 40000;
  spec.order = StreamOrder::kShuffled;
  const PlantedStream planted = MakePlantedStream(spec, /*seed=*/11);
  const auto& items = planted.items;

  const std::string socket_path = testing::TempDir() + "/l1hh_serve.sock";
  const pid_t server = StartServer(socket_path, items.size());
  ASSERT_GT(server, 0);

  // Two concurrent writers, one half of the stream each: writer 0 sends
  // text lines, writer 1 sends binary batches — both wire formats race.
  const size_t half = items.size() / 2;
  std::thread writer_text([&socket_path, &items, half] {
    Client client(socket_path);
    std::string block;
    for (size_t i = 0; i < half; ++i) {
      block += std::to_string(items[i]);
      block += '\n';
      if (block.size() >= 32768 || i + 1 == half) {
        client.SendRaw(block.data(), block.size());
        block.clear();
      }
    }
    client.SendLine("flush");
    EXPECT_EQ(client.ReadLine().rfind("ok ", 0), 0u);
    client.SendLine("quit");
  });
  std::thread writer_binary([&socket_path, &items, half] {
    Client client(socket_path);
    size_t i = half;
    while (i < items.size()) {
      const size_t chunk = std::min<size_t>(4096, items.size() - i);
      client.SendLine("bin " + std::to_string(chunk));
      // The wire format is little-endian u64 == host order on the CI
      // targets; serialize explicitly anyway.
      std::vector<unsigned char> payload(chunk * 8);
      for (size_t j = 0; j < chunk; ++j) {
        uint64_t v = items[i + j];
        for (int b = 0; b < 8; ++b) {
          payload[j * 8 + static_cast<size_t>(b)] =
              static_cast<unsigned char>(v & 0xff);
          v >>= 8;
        }
      }
      client.SendRaw(payload.data(), payload.size());
      i += chunk;
    }
    client.SendLine("flush");
    EXPECT_EQ(client.ReadLine().rfind("ok ", 0), 0u);
    client.SendLine("quit");
  });

  // A third, query-only connection interleaves live reads with the
  // writers.  It must never claim a producer slot, and every report it
  // sees must be a consistent snapshot (estimates never exceed the
  // planted item's final exact count).
  ExactCounter truth;
  for (const uint64_t x : items) truth.Insert(x);
  {
    Client reader(socket_path);
    for (int round = 0; round < 5; ++round) {
      const auto live = reader.Heavy(0.05);
      for (const auto& [item, estimate] : live) {
        EXPECT_LE(estimate,
                  static_cast<double>(truth.Count(item)) + 0.5)
            << "live estimate overshoots the exact final count";
      }
      reader.SendLine("stats");
      const std::string stats = reader.ReadLine();
      EXPECT_EQ(stats.rfind("stats items=", 0), 0u) << stats;
      EXPECT_NE(stats.find("algo=exact"), std::string::npos) << stats;
    }
    reader.SendLine("quit");
  }

  writer_text.join();
  writer_binary.join();

  // Final report vs the offline run: the server ran `exact` over the
  // same multiset, so the heavy-hitter sets and counts must be EQUAL.
  {
    Client reader(socket_path);
    reader.SendLine("flush");
    const std::string flushed = reader.ReadLine();
    EXPECT_EQ(flushed, "ok " + std::to_string(items.size()));

    const auto report = reader.Heavy(0.05);
    const auto expected = truth.HeavyHitters(
        static_cast<uint64_t>(0.05 * static_cast<double>(items.size())) + 1);
    ASSERT_EQ(report.size(), expected.size());
    for (const auto& hh : expected) {
      const auto it = report.find(hh.item);
      ASSERT_NE(it, report.end()) << "missing item " << hh.item;
      EXPECT_EQ(it->second, static_cast<double>(hh.count));
    }

    // Unknown requests answer err without poisoning the connection.
    reader.SendLine("bogus request");
    EXPECT_EQ(reader.ReadLine().rfind("err ", 0), 0u);

    reader.SendLine("shutdown");
    EXPECT_EQ(reader.ReadLine(), "ok");
  }

  int wstatus = 0;
  ASSERT_EQ(::waitpid(server, &wstatus, 0), server);
  EXPECT_TRUE(WIFEXITED(wstatus));
  EXPECT_EQ(WEXITSTATUS(wstatus), 0);
}

// Telemetry surface on the wire: the `metrics` verb returns well-formed
// exposition whose ingest counter exactly matches the items sent, monotone
// counters never decrease across scrapes, and `stats` reports per-slot
// enqueued counts.
TEST(ServeTest, MetricsScrapeCountsIngestExactly) {
  const std::string socket_path =
      testing::TempDir() + "/l1hh_serve_metrics.sock";
  const pid_t pid = ::fork();
  if (pid == 0) {
    const std::string socket_flag = "--socket=" + socket_path;
    ::execl(L1HH_SERVE_BINARY, L1HH_SERVE_BINARY, socket_flag.c_str(),
            "--algo=space_saving", "--shards=2", "--producers=4",
            static_cast<char*>(nullptr));
    ::_exit(127);
  }
  ASSERT_GT(pid, 0);

  Client client(socket_path);
  constexpr uint64_t kFirst = 300;
  for (uint64_t i = 0; i < kFirst; ++i) {
    client.SendLine(std::to_string(i % 13));
  }
  client.SendLine("flush");
  EXPECT_EQ(client.ReadLine(), "ok " + std::to_string(kFirst));

  const auto before = Scrape(client);
  {
    const auto it = before.find("l1hh_serve_ingest_items_total");
    ASSERT_NE(it, before.end());
    EXPECT_EQ(it->second, static_cast<long long>(kFirst));
  }
  EXPECT_GE(before.count("l1hh_serve_connections_total"), 1u);
  EXPECT_GE(before.count("l1hh_engine_items_applied_total"), 1u);
  {
    // The scrape publishes per-slot gauges; this connection owns slot 1
    // (slot 0 is the merge view), so its enqueued count is the full ingest.
    const auto it = before.find("l1hh_engine_slot_enqueued{slot=\"1\"}");
    ASSERT_NE(it, before.end());
    EXPECT_EQ(it->second, static_cast<long long>(kFirst));
  }

  // Second batch, then re-scrape: counters must be monotone.
  constexpr uint64_t kSecond = 200;
  for (uint64_t i = 0; i < kSecond; ++i) {
    client.SendLine(std::to_string(i % 5));
  }
  client.SendLine("flush");
  EXPECT_EQ(client.ReadLine(), "ok " + std::to_string(kFirst + kSecond));

  const auto after = Scrape(client);
  {
    const auto it = after.find("l1hh_serve_ingest_items_total");
    ASSERT_NE(it, after.end());
    EXPECT_EQ(it->second, static_cast<long long>(kFirst + kSecond));
  }
  auto monotone = [](const std::string& name) {
    auto ends_with = [&name](const char* suffix) {
      const size_t n = std::strlen(suffix);
      return name.size() >= n && name.compare(name.size() - n, n, suffix) == 0;
    };
    const size_t brace = name.find('{');
    const std::string bare = name.substr(0, brace);
    return ends_with("_total") || ends_with("_sum") || ends_with("_count") ||
           (bare.size() > 7 &&
            bare.compare(bare.size() - 7, 7, "_bucket") == 0);
  };
  for (const auto& [name, value] : before) {
    if (!monotone(name)) continue;  // gauges may move either way
    const auto it = after.find(name);
    ASSERT_NE(it, after.end()) << name << " vanished between scrapes";
    EXPECT_GE(it->second, value) << name << " decreased between scrapes";
  }

  // `stats` reports slot occupancy and per-slot enqueued counts.
  client.SendLine("stats");
  const std::string stats = client.ReadLine();
  EXPECT_EQ(stats.rfind("stats items=", 0), 0u) << stats;
  EXPECT_NE(stats.find(" slots=1/4"), std::string::npos) << stats;
  EXPECT_NE(stats.find(" slot1=" + std::to_string(kFirst + kSecond) + "*"),
            std::string::npos)
      << stats;

  client.SendLine("shutdown");
  EXPECT_EQ(client.ReadLine(), "ok");
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  EXPECT_TRUE(WIFEXITED(wstatus));
  EXPECT_EQ(WEXITSTATUS(wstatus), 0);
}

// Slot exhaustion on the wire: with --producers=1, a second ingesting
// connection gets a clean err for ingest but can still query.
TEST(ServeTest, SlotExhaustionRefusesIngestButServesQueries) {
  const std::string socket_path =
      testing::TempDir() + "/l1hh_serve_slots.sock";
  const pid_t pid = ::fork();
  if (pid == 0) {
    const std::string socket_flag = "--socket=" + socket_path;
    ::execl(L1HH_SERVE_BINARY, L1HH_SERVE_BINARY, socket_flag.c_str(),
            "--algo=exact", "--shards=1", "--producers=1",
            static_cast<char*>(nullptr));
    ::_exit(127);
  }
  ASSERT_GT(pid, 0);

  Client first(socket_path);
  first.SendLine("41");
  first.SendLine("flush");
  EXPECT_EQ(first.ReadLine(), "ok 1");  // first connection owns the slot

  Client second(socket_path);
  second.SendLine("99");  // no slot left: refused...
  EXPECT_EQ(second.ReadLine().rfind("err ", 0), 0u);
  const auto report = second.Heavy(0.5);  // ...but queries still served
  ASSERT_EQ(report.size(), 1u);
  EXPECT_EQ(report.count(41), 1u);

  // `first` stays open across the shutdown: the server must kick it off
  // its read and join cleanly rather than hang.
  second.SendLine("shutdown");
  EXPECT_EQ(second.ReadLine(), "ok");
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  EXPECT_TRUE(WIFEXITED(wstatus));
  EXPECT_EQ(WEXITSTATUS(wstatus), 0);
}

}  // namespace
}  // namespace l1hh
