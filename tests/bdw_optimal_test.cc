#include "core/bdw_optimal.h"

#include <gtest/gtest.h>

#include <cmath>
#include <unordered_set>

#include "core/bdw_simple.h"
#include "stream/stream_generator.h"
#include "summary/exact_counter.h"
#include "summary/misra_gries.h"

namespace l1hh {
namespace {

BdwOptimal::Options MakeOptions(double eps, double phi, uint64_t m,
                                uint64_t n = uint64_t{1} << 24) {
  BdwOptimal::Options opt;
  opt.epsilon = eps;
  opt.phi = phi;
  opt.delta = 0.1;
  opt.universe_size = n;
  opt.stream_length = m;
  return opt;
}

TEST(BdwOptimalTest, StructureMatchesFormulas) {
  const BdwOptimal sketch(MakeOptions(0.01, 0.1, 1 << 20), 1);
  // R = Theta(log(1/phi)), odd.
  EXPECT_EQ(sketch.repetitions() % 2, 1u);
  EXPECT_GE(sketch.repetitions(), 5u);
  // rows = Theta(1/eps).
  EXPECT_GE(sketch.rows(), 100u);
  EXPECT_LE(sketch.rows(), 6400u);
}

TEST(BdwOptimalTest, HeavyHitterContractOnPlantedStream) {
  const double eps = 0.02, phi = 0.1;
  const uint64_t m = 60000;
  int failures = 0;
  const int trials = 12;
  for (int t = 0; t < trials; ++t) {
    const PlantedSpec spec{{2 * phi, phi, phi - 2 * eps}, 1 << 24, m};
    const PlantedStream s = MakePlantedStream(spec, 300 + t);
    BdwOptimal sketch(MakeOptions(eps, phi, m), 700 + t);
    ExactCounter exact;
    for (const uint64_t x : s.items) {
      sketch.Insert(x);
      exact.Insert(x);
    }
    bool ok = true;
    std::unordered_set<uint64_t> reported;
    for (const auto& hh : sketch.Report()) {
      reported.insert(hh.item);
      if (exact.Count(hh.item) <= static_cast<uint64_t>((phi - eps) * m)) {
        ok = false;  // false positive
      }
      if (std::abs(hh.estimated_count -
                   static_cast<double>(exact.Count(hh.item))) >
          eps * static_cast<double>(m)) {
        ok = false;  // estimate out of tolerance
      }
    }
    if (reported.count(s.planted_ids[0]) == 0) ok = false;
    if (reported.count(s.planted_ids[1]) == 0) ok = false;
    if (!ok) ++failures;
  }
  EXPECT_LE(failures, 3);
}

TEST(BdwOptimalTest, AccuracyOnZipfStream) {
  const double eps = 0.02, phi = 0.08;
  const uint64_t m = 80000;
  const auto stream = MakeZipfStream(1 << 16, 1.3, m, 5);
  BdwOptimal sketch(MakeOptions(eps, phi, m), 7);
  ExactCounter exact;
  for (const uint64_t x : stream) {
    sketch.Insert(x);
    exact.Insert(x);
  }
  // The head of the Zipf distribution must be reported accurately.
  const auto truth = exact.SortedByCountDesc();
  std::unordered_set<uint64_t> reported;
  double max_err = 0;
  for (const auto& hh : sketch.Report()) {
    reported.insert(hh.item);
    max_err = std::max(max_err,
                       std::abs(hh.estimated_count -
                                static_cast<double>(exact.Count(hh.item))));
  }
  for (const auto& e : truth) {
    if (e.count >= static_cast<uint64_t>((phi + eps) * m)) {
      EXPECT_TRUE(reported.count(e.item) == 1) << "missing head item";
    }
  }
  EXPECT_LE(max_err, 1.5 * eps * m);
}

TEST(BdwOptimalTest, EstimateCountNearTruthForHeavies) {
  const uint64_t m = 60000;
  BdwOptimal sketch(MakeOptions(0.02, 0.2, m), 11);
  for (uint64_t i = 0; i < m; ++i) sketch.Insert(i % 3);
  for (uint64_t x = 0; x < 3; ++x) {
    EXPECT_NEAR(sketch.EstimateCount(x), m / 3.0, 0.04 * m);
  }
}

TEST(BdwOptimalTest, TopKOrderedAndBounded) {
  const uint64_t m = 40000;
  const PlantedSpec spec{{0.3, 0.2, 0.1}, 1 << 24, m};
  const PlantedStream s = MakePlantedStream(spec, 41);
  BdwOptimal sketch(MakeOptions(0.02, 0.08, m), 43);
  for (const uint64_t x : s.items) sketch.Insert(x);
  const auto top3 = sketch.TopK(3);
  ASSERT_EQ(top3.size(), 3u);
  EXPECT_EQ(top3[0].item, s.planted_ids[0]);
  EXPECT_EQ(top3[1].item, s.planted_ids[1]);
  EXPECT_EQ(top3[2].item, s.planted_ids[2]);
  EXPECT_GE(top3[0].estimated_count, top3[1].estimated_count);
  EXPECT_GE(top3[1].estimated_count, top3[2].estimated_count);
}

TEST(BdwOptimalTest, NoFalsePositivesOnUniform) {
  const uint64_t m = 40000;
  const auto stream = MakeUniformStream(2000, m, 13);
  BdwOptimal sketch(MakeOptions(0.05, 0.25, m), 17);
  for (const uint64_t x : stream) sketch.Insert(x);
  EXPECT_TRUE(sketch.Report().empty());
}

TEST(BdwOptimalTest, SerializeRoundTripAndResume) {
  const uint64_t m = 30000;
  BdwOptimal alice(MakeOptions(0.05, 0.25, m), 19);
  for (uint64_t i = 0; i < m / 2; ++i) alice.Insert(7);
  BitWriter w;
  alice.Serialize(w);
  BitReader r(w);
  BdwOptimal bob = BdwOptimal::Deserialize(r, 23);
  EXPECT_EQ(bob.samples_taken(), alice.samples_taken());
  for (uint64_t i = 0; i < m / 2; ++i) bob.Insert(7);
  const auto report = bob.Report();
  ASSERT_GE(report.size(), 1u);
  EXPECT_EQ(report[0].item, 7u);
}

// The headline claim of Table 1, in its laptop-measurable form: as log n
// grows, Misra-Gries pays eps^-1 additional bits per unit of log n (it
// stores ids in every one of its eps^-1 slots), while Algorithm 2 pays
// only phi^-1 (ids live only in the small T1 candidate table).  With
// eps^-1 / phi^-1 = 64 the slope ratio must be large.  (The absolute
// crossover needs log n + log m to exceed Algorithm 2's leading constant,
// i.e. astronomically long streams — EXPERIMENTS.md discusses this.)
TEST(BdwOptimalTest, SpaceSlopeInLogNBeatsMisraGries) {
  const double eps = 1.0 / 256, phi = 0.25;
  const uint64_t m = 1 << 18;
  const uint64_t n_small = uint64_t{1} << 20;
  const uint64_t n_large = uint64_t{1} << 60;

  auto measure = [&](uint64_t n, uint64_t seed) {
    BdwOptimal optimal(MakeOptions(eps, phi, m, n), seed);
    MisraGries mg(static_cast<size_t>(1.0 / eps), UniverseBits(n));
    Rng rng(seed + 1);
    for (uint64_t i = 0; i < m; ++i) {
      const uint64_t x = rng.UniformU64(n);
      optimal.Insert(x);
      mg.Insert(x);
    }
    return std::make_pair(optimal.SpaceBits(), mg.SpaceBits());
  };
  const auto [opt_small, mg_small] = measure(n_small, 29);
  const auto [opt_large, mg_large] = measure(n_large, 37);
  const double opt_slope =
      static_cast<double>(opt_large) - static_cast<double>(opt_small);
  const double mg_slope =
      static_cast<double>(mg_large) - static_cast<double>(mg_small);
  EXPECT_GT(mg_slope, 8 * std::max(opt_slope, 1.0));
}

// The merge-enabling property of the epoch scheme: the epoch is a pure
// function of (Options, samples taken) — identical across instances with
// the same options, monotone in the sample position, and clamped to
// [0, max_epoch].  (Per-instance state like the hash draws must not leak
// into it; that is what makes shard epochs reconcilable.)
TEST(BdwOptimalTest, EpochScheduleIsSharedDeterministicAndMonotone) {
  const uint64_t m = 60000;
  const BdwOptimal a(MakeOptions(0.02, 0.1, m), 1);
  const BdwOptimal b(MakeOptions(0.02, 0.1, m), 999);  // different seed
  int prev = -1;
  for (uint64_t s = 0; s <= m; s += 997) {
    const int t = a.EpochAtSample(s);
    EXPECT_EQ(t, b.EpochAtSample(s)) << "schedule depends on the seed";
    EXPECT_GE(t, prev) << "schedule not monotone at s=" << s;
    EXPECT_GE(t, 0);
    EXPECT_LE(t, a.max_epoch());
    prev = t;
  }
  // The schedule leaves epoch 0 once eps*phi*s clears the scale, so a
  // full-length run must actually exercise several epochs.
  EXPECT_GT(a.EpochAtSample(m), 2);
}

// current_epoch() tracks the schedule during ingestion: with these
// options the sampler keeps everything (l > m), so samples == inserts.
TEST(BdwOptimalTest, CurrentEpochFollowsScheduleDuringIngest) {
  const uint64_t m = 50000;
  BdwOptimal sketch(MakeOptions(0.02, 0.1, m), 5);
  for (uint64_t i = 0; i < m; ++i) {
    sketch.Insert(i % 100);
    if (i % 5000 == 0) {
      EXPECT_EQ(sketch.current_epoch(),
                sketch.EpochAtSample(sketch.samples_taken()));
    }
  }
  EXPECT_EQ(sketch.samples_taken(), m);
  EXPECT_EQ(sketch.current_epoch(), sketch.EpochAtSample(m));
}

class BdwOptimalGrid
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(BdwOptimalGrid, RecallHolds) {
  const auto [eps, phi] = GetParam();
  const uint64_t m = 40000;
  int failures = 0;
  const int trials = 8;
  for (int t = 0; t < trials; ++t) {
    const PlantedSpec spec{{phi * 1.5, phi * 1.1}, 1 << 24, m};
    const PlantedStream s = MakePlantedStream(spec, 5000 + t);
    BdwOptimal sketch(MakeOptions(eps, phi, m), 6000 + t);
    for (const uint64_t x : s.items) sketch.Insert(x);
    std::unordered_set<uint64_t> reported;
    for (const auto& hh : sketch.Report()) reported.insert(hh.item);
    if (reported.count(s.planted_ids[0]) == 0 ||
        reported.count(s.planted_ids[1]) == 0) {
      ++failures;
    }
  }
  EXPECT_LE(failures, 2);
}

// phi < ~0.35 keeps the two planted items (2.6*phi total) satisfiable.
INSTANTIATE_TEST_SUITE_P(Grid, BdwOptimalGrid,
                         ::testing::Values(std::make_pair(0.02, 0.1),
                                           std::make_pair(0.05, 0.2),
                                           std::make_pair(0.1, 0.3),
                                           std::make_pair(0.03, 0.15)));

}  // namespace
}  // namespace l1hh
