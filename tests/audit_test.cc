// Battery for the live accuracy auditor (src/obs/audit.h, ctest label
// "obs").
//
// The auditor's whole value is that an alert MEANS something: sampling is
// deterministic per (seed, rate) so shards compose exactly, shadow counts
// are exact so honest summaries score eps_ratio <= 1, and a summary that
// lies about its estimates or drops heavy hitters is driven OVER the
// threshold.  Each of those claims is pinned here, including the bounded
// -memory cap accounting.

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "obs/audit.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "stream/zipf.h"
#include "summary/summary.h"
#include "util/random.h"

namespace l1hh {
namespace obs {
namespace {

class AuditTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetEnabled(true);
    Registry::Get().ResetForTest();
    TraceRing::Get().ResetForTest();
  }
};

std::vector<uint64_t> MakeStream(uint64_t m, uint64_t seed) {
  ZipfDistribution zipf(1 << 16, 1.2);
  Rng rng(seed);
  std::vector<uint64_t> stream;
  stream.reserve(m);
  for (uint64_t i = 0; i < m; ++i) stream.push_back(zipf.Sample(rng));
  return stream;
}

std::unique_ptr<Summary> RunSummary(const std::string& algo,
                                    const std::vector<uint64_t>& stream,
                                    double epsilon, double phi) {
  SummaryOptions options;
  options.epsilon = epsilon;
  options.phi = phi;
  options.universe_size = 1 << 16;
  options.stream_length = stream.size();
  options.seed = 7;
  auto summary = MakeSummary(algo, options);
  EXPECT_NE(summary, nullptr);
  for (const uint64_t item : stream) summary->Update(item);
  return summary;
}

// A summary whose Estimate lies by +10*eps*m and whose HeavyHitters
// report is empty: the "corrupted server" the auditor exists to catch.
class CorruptedSummary : public Summary {
 public:
  CorruptedSummary(std::unique_ptr<Summary> inner, double epsilon)
      : inner_(std::move(inner)), epsilon_(epsilon) {}

  std::string_view Name() const override { return inner_->Name(); }
  void Update(uint64_t item, uint64_t weight = 1) override {
    inner_->Update(item, weight);
  }
  double Estimate(uint64_t item) const override {
    return inner_->Estimate(item) +
           10.0 * epsilon_ * static_cast<double>(inner_->ItemsProcessed());
  }
  std::vector<ItemEstimate> HeavyHitters(double) const override {
    return {};  // drops every heavy hitter
  }
  uint64_t ItemsProcessed() const override {
    return inner_->ItemsProcessed();
  }
  size_t MemoryUsageBytes() const override {
    return inner_->MemoryUsageBytes();
  }

 private:
  std::unique_ptr<Summary> inner_;
  double epsilon_;
};

TEST_F(AuditTest, SamplingIsDeterministicPerSeedAndDecorrelated) {
  AccuracyAuditor a({.sample_rate = 16, .seed = 3});
  AccuracyAuditor b({.sample_rate = 16, .seed = 3});
  AccuracyAuditor c({.sample_rate = 16, .seed = 4});
  size_t sampled = 0;
  size_t agree_c = 0;
  for (uint64_t key = 0; key < 100000; ++key) {
    ASSERT_EQ(a.SampledKey(key), b.SampledKey(key));
    if (a.SampledKey(key)) ++sampled;
    if (a.SampledKey(key) && c.SampledKey(key)) ++agree_c;
  }
  // ~1/16 of keys sampled (binomial, generous bounds), and a different
  // seed picks an essentially independent subspace.
  EXPECT_GT(sampled, 100000 / 16 / 2);
  EXPECT_LT(sampled, 100000 / 16 * 2);
  EXPECT_LT(agree_c, sampled / 4);

  // rate <= 1 samples everything.
  AccuracyAuditor all({.sample_rate = 1, .seed = 3});
  EXPECT_TRUE(all.SampledKey(0));
  EXPECT_TRUE(all.SampledKey(12345));
}

TEST_F(AuditTest, ShadowCountsAreExactAndShardsCompose) {
  const auto stream = MakeStream(50000, 11);
  AuditorOptions options{.sample_rate = 8, .seed = 5};
  AccuracyAuditor whole(options);
  whole.ObserveColumn(stream.data(), stream.size());

  // Split the stream in half across two "shards" and merge: identical
  // shadow, because membership depends only on (key, seed).
  AccuracyAuditor left(options);
  AccuracyAuditor right(options);
  const size_t half = stream.size() / 2;
  left.ObserveColumn(stream.data(), half);
  for (size_t i = half; i < stream.size(); ++i) right.Observe(stream[i]);
  ASSERT_TRUE(left.MergeFrom(right).ok());

  EXPECT_EQ(left.items_seen(), whole.items_seen());
  const auto expect = whole.TopShadow(0);
  const auto got = left.TopShadow(0);
  ASSERT_EQ(got.size(), expect.size());
  for (size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(got[i], expect[i]);
  }

  // And the counts really are exact: recount a few keys by brute force.
  for (size_t i = 0; i < std::min<size_t>(5, expect.size()); ++i) {
    const uint64_t key = expect[i].first;
    uint64_t exact = 0;
    for (const uint64_t item : stream) exact += item == key ? 1 : 0;
    EXPECT_EQ(expect[i].second, exact);
  }

  // Mismatched seed or rate must refuse to merge.
  AccuracyAuditor other_seed({.sample_rate = 8, .seed = 6});
  EXPECT_FALSE(left.MergeFrom(other_seed).ok());
  AccuracyAuditor other_rate({.sample_rate = 4, .seed = 5});
  EXPECT_FALSE(left.MergeFrom(other_rate).ok());
}

TEST_F(AuditTest, ShadowMemoryIsBoundedWithDroppedAccounting) {
  AuditorOptions options{.sample_rate = 1, .seed = 9, .max_shadow_keys = 32};
  AccuracyAuditor auditor(options);
  for (uint64_t key = 0; key < 1000; ++key) auditor.Observe(key);
  auditor.Observe(5);  // existing keys still count past the cap

  const auto report = auditor.Audit(
      [](const std::vector<uint64_t>& keys) {
        return std::vector<double>(keys.size(), 1.0);
      },
      [](double) { return std::vector<ItemEstimate>{}; }, 1001);
  EXPECT_EQ(report.shadow_keys, 32u);
  EXPECT_EQ(report.dropped_items, 1000u - 32u);
  EXPECT_EQ(report.items_seen, 1001u);
  const auto top = auditor.TopShadow(0);
  ASSERT_EQ(top.size(), 32u);
  EXPECT_EQ(top[0].first, 5u);  // the double-counted key leads
  EXPECT_EQ(top[0].second, 2u);
}

TEST_F(AuditTest, HonestSummariesStayWithinTolerance) {
  const double epsilon = 0.01;
  const double phi = 0.05;
  const auto stream = MakeStream(200000, 13);
  for (const char* algo : {"space_saving", "misra_gries"}) {
    auto summary = RunSummary(algo, stream, epsilon, phi);
    AccuracyAuditor auditor(
        {.sample_rate = 4, .seed = 2, .epsilon = epsilon, .phi = phi});
    auditor.ObserveColumn(stream.data(), stream.size());
    const AuditReport report = auditor.AuditSummary(*summary);
    EXPECT_GT(report.audited_keys, 0u) << algo;
    // Definition 1: estimates within eps*m of truth -> ratio <= 1.
    EXPECT_LE(report.eps_ratio, 1.0) << algo;
    EXPECT_DOUBLE_EQ(report.recall, 1.0) << algo;
  }
}

TEST_F(AuditTest, CorruptedSummaryDrivesRatioOverOneAndRecallDown) {
  const double epsilon = 0.01;
  const double phi = 0.05;
  const auto stream = MakeStream(200000, 13);
  // rate=1: every key shadowed, so shadow heavies certainly exist and the
  // corrupted (empty) HeavyHitters report must miss all of them.
  AccuracyAuditor auditor(
      {.sample_rate = 1, .seed = 2, .epsilon = epsilon, .phi = phi});
  auditor.ObserveColumn(stream.data(), stream.size());

  CorruptedSummary corrupted(RunSummary("space_saving", stream, epsilon, phi),
                             epsilon);
  const AuditReport report = auditor.AuditSummary(corrupted);
  EXPECT_GT(report.eps_ratio, 1.0);  // the +10*eps*m lie is caught
  EXPECT_GT(report.shadow_heavies, 0u);
  EXPECT_LT(report.recall, 1.0);
  EXPECT_EQ(report.recalled, 0u);

  // The published gauges carry the verdict (what /metrics would scrape).
  EXPECT_GT(GetFloatGauge("l1hh_audit_observed_eps_ratio")->Value(), 1.0);
  EXPECT_LT(GetFloatGauge("l1hh_audit_shadow_recall")->Value(), 1.0);
  EXPECT_EQ(GetCounter("l1hh_audit_runs_total")->Value(), 1u);
}

TEST_F(AuditTest, AuditPublishesInstrumentsForHonestRun) {
  const auto stream = MakeStream(100000, 17);
  auto summary = RunSummary("space_saving", stream, 0.01, 0.05);
  AccuracyAuditor auditor(
      {.sample_rate = 1, .seed = 2, .epsilon = 0.01, .phi = 0.05});
  auditor.ObserveColumn(stream.data(), stream.size());
  const AuditReport report = auditor.AuditSummary(*summary);
  EXPECT_LE(report.eps_ratio, 1.0);
  EXPECT_DOUBLE_EQ(
      GetFloatGauge("l1hh_audit_observed_eps_ratio")->Value(),
      report.eps_ratio);
  EXPECT_DOUBLE_EQ(GetFloatGauge("l1hh_audit_shadow_recall")->Value(), 1.0);
  EXPECT_EQ(
      static_cast<size_t>(GetGauge("l1hh_audit_shadow_keys")->Value()),
      report.shadow_keys);
  EXPECT_GT(GetHistogram("l1hh_audit_observed_abs_error")->Count(), 0u);
}

}  // namespace
}  // namespace obs
}  // namespace l1hh
