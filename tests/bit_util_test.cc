#include "util/bit_util.h"

#include <gtest/gtest.h>

namespace l1hh {
namespace {

TEST(BitUtilTest, BitWidth) {
  EXPECT_EQ(BitWidth(0), 1);
  EXPECT_EQ(BitWidth(1), 1);
  EXPECT_EQ(BitWidth(2), 2);
  EXPECT_EQ(BitWidth(3), 2);
  EXPECT_EQ(BitWidth(4), 3);
  EXPECT_EQ(BitWidth(255), 8);
  EXPECT_EQ(BitWidth(256), 9);
  EXPECT_EQ(BitWidth(UINT64_MAX), 64);
}

TEST(BitUtilTest, FloorLog2) {
  EXPECT_EQ(FloorLog2(1), 0);
  EXPECT_EQ(FloorLog2(2), 1);
  EXPECT_EQ(FloorLog2(3), 1);
  EXPECT_EQ(FloorLog2(4), 2);
  EXPECT_EQ(FloorLog2(uint64_t{1} << 40), 40);
  EXPECT_EQ(FloorLog2((uint64_t{1} << 40) + 1), 40);
}

TEST(BitUtilTest, CeilLog2) {
  EXPECT_EQ(CeilLog2(1), 0);
  EXPECT_EQ(CeilLog2(2), 1);
  EXPECT_EQ(CeilLog2(3), 2);
  EXPECT_EQ(CeilLog2(4), 2);
  EXPECT_EQ(CeilLog2(5), 3);
  EXPECT_EQ(CeilLog2((uint64_t{1} << 40) + 1), 41);
}

TEST(BitUtilTest, PowerOfTwoRounding) {
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(64));
  EXPECT_FALSE(IsPowerOfTwo(63));
  EXPECT_EQ(RoundDownPowerOfTwo(63), 32u);
  EXPECT_EQ(RoundDownPowerOfTwo(64), 64u);
  EXPECT_EQ(RoundUpPowerOfTwo(63), 64u);
  EXPECT_EQ(RoundUpPowerOfTwo(65), 128u);
}

TEST(BitUtilTest, ProbabilityToPow2ExponentRoundsDown) {
  // Footnote 3: the largest 2^-k <= p.
  EXPECT_EQ(ProbabilityToPow2Exponent(1.0), 0);
  EXPECT_EQ(ProbabilityToPow2Exponent(0.5), 1);
  EXPECT_EQ(ProbabilityToPow2Exponent(0.6), 1);   // 1/2 <= 0.6 < 1
  EXPECT_EQ(ProbabilityToPow2Exponent(0.25), 2);
  EXPECT_EQ(ProbabilityToPow2Exponent(0.3), 2);   // 1/4 <= 0.3 < 1/2
  EXPECT_EQ(ProbabilityToPow2Exponent(0.1), 4);   // 1/16 <= 0.1 < 1/8
}

TEST(BitUtilTest, EliasGammaBits) {
  EXPECT_EQ(EliasGammaBits(1), 1);
  EXPECT_EQ(EliasGammaBits(2), 3);
  EXPECT_EQ(EliasGammaBits(3), 3);
  EXPECT_EQ(EliasGammaBits(4), 5);
  EXPECT_EQ(CounterBits(0), 1);  // codes v+1
  EXPECT_EQ(CounterBits(1), 3);
}

// Property: gamma length is monotone nondecreasing in v.
TEST(BitUtilTest, GammaLengthMonotone) {
  int prev = 0;
  for (uint64_t v = 1; v < 5000; ++v) {
    const int len = EliasGammaBits(v);
    EXPECT_GE(len, prev);
    prev = len;
  }
}

}  // namespace
}  // namespace l1hh
