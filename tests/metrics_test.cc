// Unit battery for the src/obs/ telemetry layer (ctest label "obs").
//
// Covers the contracts the instrumented hot paths rely on: striped counters
// lose no increments under concurrency (the TSan leg runs this suite), log2
// histogram bucket boundaries match BucketIndex/BucketBound, exposition text
// renders stable golden lines, and the trace ring survives wraparound
// without tearing or reordering.

#include <algorithm>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace.h"

namespace l1hh {
namespace obs {
namespace {

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetEnabled(true);
    Registry::Get().ResetForTest();
    TraceRing::Get().ResetForTest();
    SlowQueryRing::Get().ResetForTest();
    SetSlowQueryThresholdNs(0);
  }
};

TEST_F(ObsTest, ConcurrentIncrementsLoseNothing) {
  Counter* c = GetCounter("obstest_concurrent_total");
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (uint64_t i = 0; i < kPerThread; ++i) c->Inc();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c->Value(), kThreads * kPerThread);
}

TEST_F(ObsTest, ConcurrentHistogramAndGauge) {
  Histogram* h = GetHistogram("obstest_concurrent_ns");
  Gauge* g = GetGauge("obstest_concurrent_gauge");
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([h, g, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        h->Observe(i % 7);
        g->Add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(h->Count(), kThreads * kPerThread);
  EXPECT_EQ(g->Value(),
            static_cast<int64_t>(kThreads) * static_cast<int64_t>(kPerThread));
}

TEST_F(ObsTest, DisabledSwitchFreezesValues) {
  Counter* c = GetCounter("obstest_switch_total");
  c->Inc(3);
  SetEnabled(false);
  c->Inc(100);
  GetGauge("obstest_switch_gauge")->Set(42);
  GetHistogram("obstest_switch_ns")->Observe(9);
  SetEnabled(true);
  EXPECT_EQ(c->Value(), 3u);
  EXPECT_EQ(GetGauge("obstest_switch_gauge")->Value(), 0);
  EXPECT_EQ(GetHistogram("obstest_switch_ns")->Count(), 0u);
}

TEST_F(ObsTest, HistogramBucketBoundaries) {
  // bucket 0 is exactly v == 0; bucket i >= 1 covers [2^(i-1), 2^i).
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(Histogram::BucketIndex(1023), 10u);
  EXPECT_EQ(Histogram::BucketIndex(1024), 11u);
  EXPECT_EQ(Histogram::BucketIndex(UINT64_MAX), 64u);

  EXPECT_EQ(Histogram::BucketBound(0), 0u);
  EXPECT_EQ(Histogram::BucketBound(1), 1u);
  EXPECT_EQ(Histogram::BucketBound(2), 3u);
  EXPECT_EQ(Histogram::BucketBound(3), 7u);
  EXPECT_EQ(Histogram::BucketBound(64), UINT64_MAX);

  // Every value lands in a bucket whose inclusive bound admits it and whose
  // predecessor's bound excludes it.
  for (uint64_t v : {uint64_t{0}, uint64_t{1}, uint64_t{2}, uint64_t{3},
                     uint64_t{7}, uint64_t{8}, uint64_t{255}, uint64_t{256},
                     uint64_t{1} << 40, UINT64_MAX}) {
    const size_t i = Histogram::BucketIndex(v);
    ASSERT_LT(i, Histogram::kBuckets);
    EXPECT_LE(v, Histogram::BucketBound(i)) << "v=" << v;
    if (i > 0) {
      EXPECT_GT(v, Histogram::BucketBound(i - 1)) << "v=" << v;
    }
  }

  Histogram h;
  h.Observe(0);
  h.Observe(1);
  h.Observe(5);
  h.Observe(5);
  EXPECT_EQ(h.BucketCount(0), 1u);
  EXPECT_EQ(h.BucketCount(1), 1u);
  EXPECT_EQ(h.BucketCount(3), 2u);  // 5 in [4, 8)
  EXPECT_EQ(h.Count(), 4u);
  EXPECT_EQ(h.Sum(), 11u);
}

TEST_F(ObsTest, ExpositionGoldenLines) {
  GetCounter("obstest_expo_total")->Inc(7);
  GetCounter("obstest_expo_labeled_total", "shard=\"2\"")->Inc(3);
  GetGauge("obstest_expo_gauge")->Set(-4);
  Histogram* h = GetHistogram("obstest_expo_ns");
  h->Observe(0);
  h->Observe(3);
  h->Observe(3);

  const std::vector<std::string> lines = Registry::Get().ExpositionLines();
  auto has = [&lines](const std::string& want) {
    return std::find(lines.begin(), lines.end(), want) != lines.end();
  };
  EXPECT_TRUE(has("obstest_expo_total 7"));
  EXPECT_TRUE(has("obstest_expo_labeled_total{shard=\"2\"} 3"));
  EXPECT_TRUE(has("obstest_expo_gauge -4"));
  // Cumulative buckets: le="0" admits the zero, le="1" adds nothing, le="3"
  // admits both 3s (bucket [2,4), inclusive upper bound 3), +Inf everything.
  EXPECT_TRUE(has("obstest_expo_ns_bucket{le=\"0\"} 1"));
  EXPECT_TRUE(has("obstest_expo_ns_bucket{le=\"1\"} 1"));
  EXPECT_TRUE(has("obstest_expo_ns_bucket{le=\"3\"} 3"));
  EXPECT_TRUE(has("obstest_expo_ns_bucket{le=\"+Inf\"} 3"));
  EXPECT_TRUE(has("obstest_expo_ns_sum 6"));
  EXPECT_TRUE(has("obstest_expo_ns_count 3"));

  // Output is sorted, hence stable across scrapes.
  EXPECT_TRUE(std::is_sorted(lines.begin(), lines.end()));

  // Exposition() is the joined form of ExpositionLines().
  std::string joined;
  for (const auto& l : lines) {
    joined += l;
    joined += '\n';
  }
  EXPECT_EQ(Registry::Get().Exposition(), joined);
}

TEST_F(ObsTest, RegistryReturnsStablePointers) {
  Counter* a = GetCounter("obstest_stable_total");
  for (int i = 0; i < 200; ++i) {
    GetCounter("obstest_churn_total_" + std::to_string(i));
  }
  EXPECT_EQ(GetCounter("obstest_stable_total"), a);
  a->Inc();
  EXPECT_EQ(a->Value(), 1u);
  Registry::Get().ResetForTest();
  EXPECT_EQ(a->Value(), 0u);
  EXPECT_EQ(GetCounter("obstest_stable_total"), a);
}

TEST_F(ObsTest, TraceRingRecordsAndRenders) {
  Trace(Severity::kInfo, "obstest.event", 11, 22);
  Trace(Severity::kWarn, "obstest.warn", -1);
  const std::vector<TraceEvent> events = TraceRing::Get().Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_STREQ(events[0].name, "obstest.event");
  EXPECT_EQ(events[0].a, 11);
  EXPECT_EQ(events[0].b, 22);
  EXPECT_EQ(events[1].sev, Severity::kWarn);
  EXPECT_EQ(events[1].a, -1);

  const std::vector<std::string> text = TraceRing::Get().DrainText();
  ASSERT_EQ(text.size(), 2u);
  EXPECT_NE(text[0].find("obstest.event a=11 b=22"), std::string::npos);
  EXPECT_NE(text[1].find("warn obstest.warn"), std::string::npos);

  // Disabled switch silences the convenience wrapper too.
  SetEnabled(false);
  Trace(Severity::kInfo, "obstest.silenced");
  SetEnabled(true);
  EXPECT_EQ(TraceRing::Get().emitted(), 2u);
}

TEST_F(ObsTest, TraceRingWraparoundKeepsNewestInOrder) {
  constexpr uint64_t kTotal = TraceRing::kCapacity + 137;
  for (uint64_t i = 0; i < kTotal; ++i) {
    Trace(Severity::kDebug, "obstest.wrap", static_cast<int64_t>(i));
  }
  EXPECT_EQ(TraceRing::Get().emitted(), kTotal);
  const std::vector<TraceEvent> events = TraceRing::Get().Snapshot();
  ASSERT_EQ(events.size(), TraceRing::kCapacity);
  // Oldest surviving event is kTotal - kCapacity; order is strictly by seq.
  EXPECT_EQ(events.front().seq, kTotal - TraceRing::kCapacity);
  EXPECT_EQ(events.back().seq, kTotal - 1);
  for (size_t i = 1; i < events.size(); ++i) {
    ASSERT_EQ(events[i].seq, events[i - 1].seq + 1);
    ASSERT_EQ(events[i].a, static_cast<int64_t>(events[i].seq));
  }
}

TEST_F(ObsTest, TraceRingConcurrentEmitSnapshotIsClean) {
  // Writers hammer the ring while a reader snapshots; the reader must never
  // observe a torn event (name/seq mismatch). TSan validates the atomics.
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&stop, t] {
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        Trace(Severity::kDebug, "obstest.stress", t, static_cast<int64_t>(i++));
      }
    });
  }
  for (int round = 0; round < 50; ++round) {
    const std::vector<TraceEvent> events = TraceRing::Get().Snapshot();
    for (size_t i = 1; i < events.size(); ++i) {
      ASSERT_GT(events[i].seq, events[i - 1].seq);
    }
    for (const TraceEvent& e : events) {
      ASSERT_STREQ(e.name, "obstest.stress");
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& w : writers) w.join();
}

TEST_F(ObsTest, FloatGaugeRendersAndFreezes) {
  FloatGauge* g = GetFloatGauge("obstest_ratio");
  EXPECT_EQ(GetFloatGauge("obstest_ratio"), g);  // stable pointer
  g->Set(0.25);
  EXPECT_DOUBLE_EQ(g->Value(), 0.25);
  const std::vector<std::string> lines = Registry::Get().ExpositionLines();
  EXPECT_NE(std::find(lines.begin(), lines.end(), "obstest_ratio 0.25"),
            lines.end());

  SetEnabled(false);
  g->Set(99.0);
  SetEnabled(true);
  EXPECT_DOUBLE_EQ(g->Value(), 0.25);

  Registry::Get().ResetForTest();
  EXPECT_DOUBLE_EQ(g->Value(), 0.0);
}

TEST_F(ObsTest, DrainTextFiltersBySeverityAndCount) {
  Trace(Severity::kDebug, "obstest.d1");
  Trace(Severity::kInfo, "obstest.i1");
  Trace(Severity::kWarn, "obstest.w1");
  Trace(Severity::kInfo, "obstest.i2");

  EXPECT_EQ(TraceRing::Get().DrainText().size(), 4u);
  const auto info_up = TraceRing::Get().DrainText(0, Severity::kInfo);
  ASSERT_EQ(info_up.size(), 3u);
  EXPECT_NE(info_up[0].find("obstest.i1"), std::string::npos);
  const auto warn_only = TraceRing::Get().DrainText(0, Severity::kWarn);
  ASSERT_EQ(warn_only.size(), 1u);
  EXPECT_NE(warn_only[0].find("obstest.w1"), std::string::npos);
  // max_events keeps the NEWEST survivors after the severity filter.
  const auto last_two_info = TraceRing::Get().DrainText(2, Severity::kInfo);
  ASSERT_EQ(last_two_info.size(), 2u);
  EXPECT_NE(last_two_info[0].find("obstest.w1"), std::string::npos);
  EXPECT_NE(last_two_info[1].find("obstest.i2"), std::string::npos);

  Severity sev = Severity::kDebug;
  EXPECT_TRUE(ParseSeverity("warn", &sev));
  EXPECT_EQ(sev, Severity::kWarn);
  EXPECT_TRUE(ParseSeverity("info", &sev));
  EXPECT_EQ(sev, Severity::kInfo);
  EXPECT_FALSE(ParseSeverity("loud", &sev));
}

TEST_F(ObsTest, QuerySpanObservesTotalAndPhases) {
  {
    QuerySpan span("obstest_verb");
    {
      ScopedPhase phase("obstest_phase_a");
    }
    {
      ScopedPhase phase("obstest_phase_a");  // same name accumulates
    }
    {
      ScopedPhase phase("obstest_phase_b");
    }
  }
  EXPECT_EQ(
      GetHistogram("l1hh_query_latency_ns", "verb=\"obstest_verb\"")->Count(),
      1u);
  EXPECT_EQ(GetHistogram("l1hh_query_phase_ns",
                         "phase=\"obstest_phase_a\",verb=\"obstest_verb\"")
                ->Count(),
            1u);  // merged, not two observations
  EXPECT_EQ(GetHistogram("l1hh_query_phase_ns",
                         "phase=\"obstest_phase_b\",verb=\"obstest_verb\"")
                ->Count(),
            1u);
}

TEST_F(ObsTest, NestedSpanIsInertAndOuterAbsorbsPhases) {
  {
    QuerySpan outer("obstest_outer");
    EXPECT_EQ(QuerySpan::Current(), &outer);
    {
      QuerySpan inner("obstest_inner");  // flattened: inert
      EXPECT_EQ(QuerySpan::Current(), &outer);
      ScopedPhase phase("obstest_nested_phase");
    }
  }
  EXPECT_EQ(QuerySpan::Current(), nullptr);
  EXPECT_EQ(
      GetHistogram("l1hh_query_latency_ns", "verb=\"obstest_outer\"")->Count(),
      1u);
  EXPECT_EQ(
      GetHistogram("l1hh_query_latency_ns", "verb=\"obstest_inner\"")->Count(),
      0u);
  EXPECT_EQ(GetHistogram("l1hh_query_phase_ns",
                         "phase=\"obstest_nested_phase\","
                         "verb=\"obstest_outer\"")
                ->Count(),
            1u);
}

TEST_F(ObsTest, ScopedPhaseWithoutSpanIsANoop) {
  ScopedPhase phase("obstest_orphan");  // must not crash or observe anything
  EXPECT_EQ(QuerySpan::Current(), nullptr);
}

TEST_F(ObsTest, SlowQueryRingCapturesOverThreshold) {
  SetSlowQueryThresholdNs(1);  // everything is slow
  {
    QuerySpan span("obstest_slow");
    ScopedPhase phase("obstest_slow_phase");
    // A span of nonzero duration: NowNs is monotonic, one clock tick is
    // enough, but burn a little work to be safe on coarse clocks.
    volatile uint64_t sink = 0;
    for (int i = 0; i < 1000; ++i) sink = sink + static_cast<uint64_t>(i);
  }
  EXPECT_EQ(GetCounter("l1hh_slow_queries_total")->Value(), 1u);
  const std::vector<SlowQuery> slow = SlowQueryRing::Get().Snapshot();
  ASSERT_EQ(slow.size(), 1u);
  EXPECT_STREQ(slow[0].verb, "obstest_slow");
  ASSERT_EQ(slow[0].phase_count, 1u);
  EXPECT_STREQ(slow[0].phase_names[0], "obstest_slow_phase");
  const std::vector<std::string> text = SlowQueryRing::Get().DrainText();
  ASSERT_EQ(text.size(), 1u);
  EXPECT_NE(text[0].find("obstest_slow"), std::string::npos);
  EXPECT_NE(text[0].find("total_us="), std::string::npos);
  EXPECT_NE(text[0].find("obstest_slow_phase_us="), std::string::npos);

  // Under the (disabled) threshold nothing is recorded.
  SetSlowQueryThresholdNs(0);
  {
    QuerySpan span("obstest_fast");
  }
  EXPECT_EQ(GetCounter("l1hh_slow_queries_total")->Value(), 1u);
  EXPECT_EQ(SlowQueryRing::Get().Snapshot().size(), 1u);
}

TEST_F(ObsTest, SlowQueryRingWraparoundKeepsNewest) {
  SetSlowQueryThresholdNs(1);
  constexpr uint64_t kTotal = SlowQueryRing::kCapacity + 9;
  for (uint64_t i = 0; i < kTotal; ++i) {
    QuerySpan span("obstest_wrap");
  }
  const std::vector<SlowQuery> slow = SlowQueryRing::Get().Snapshot();
  ASSERT_EQ(slow.size(), SlowQueryRing::kCapacity);
  EXPECT_EQ(slow.front().seq, kTotal - SlowQueryRing::kCapacity);
  EXPECT_EQ(slow.back().seq, kTotal - 1);
}

TEST_F(ObsTest, DisabledSwitchMakesSpansInert) {
  SetEnabled(false);
  SetSlowQueryThresholdNs(1);
  {
    QuerySpan span("obstest_disabled");
    EXPECT_EQ(QuerySpan::Current(), nullptr);
    ScopedPhase phase("obstest_disabled_phase");
  }
  SetEnabled(true);
  EXPECT_EQ(GetHistogram("l1hh_query_latency_ns",
                         "verb=\"obstest_disabled\"")
                ->Count(),
            0u);
  EXPECT_EQ(SlowQueryRing::Get().Snapshot().size(), 0u);
}

}  // namespace
}  // namespace obs
}  // namespace l1hh
