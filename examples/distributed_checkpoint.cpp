// Snapshots end to end: the two deployment moves docs/SNAPSHOTS.md
// describes, as one runnable program.
//
//   1. Scatter/gather: two worker processes (simulated here) each
//      summarize their own partition of a stream — same options, same
//      seed, --m set to the COMBINED length — and write snapshot files.
//      A coordinator that never saw a raw item loads and merges the
//      files into one Definition-1-conformant fleet-wide report.
//   2. Crash/resume: a 4-shard engine checkpoints mid-stream, "crashes"
//      (is destroyed), is restored from the checkpoint directory, and
//      finishes the stream.  The restored run reports exactly what an
//      uninterrupted run would.
//
// Expected output: the planted heavy item 424242 at ~10% in the merged
// coordinator report; then identical heavy-hitter lines from the
// uninterrupted and the checkpoint-restored engine, and a final
// "restored == uninterrupted: yes".
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "engine/sharded_engine.h"
#include "io/snapshot.h"
#include "stream/stream_generator.h"
#include "summary/summary.h"

int main() {
  using namespace l1hh;

  const uint64_t m = 1 << 19;
  SummaryOptions opt;
  opt.epsilon = 0.01;
  opt.phi = 0.05;
  opt.universe_size = uint64_t{1} << 24;
  opt.stream_length = m;  // the COMBINED length, fleet-wide
  opt.seed = 42;          // shared seed = merge-compatible summaries

  // A Zipf stream with one planted cross-partition heavy item.
  std::vector<uint64_t> stream =
      MakeZipfStream(opt.universe_size, 1.1, m, /*seed=*/7);
  for (size_t i = 0; i < stream.size(); i += 10) stream[i] = 424242;

  const std::string dir =
      (std::filesystem::temp_directory_path() / "l1hh_checkpoint_demo")
          .string();
  std::filesystem::create_directories(dir);

  // ---- 1. Scatter/gather via snapshot files ----------------------------
  // Item-partitioned, like the engine's hash partitioning: every
  // occurrence of an id lands on the same worker.
  auto worker_a = MakeSummary("bdw_optimal", opt);
  auto worker_b = MakeSummary("bdw_optimal", opt);
  for (const uint64_t x : stream) {
    (x % 2 == 0 ? worker_a : worker_b)->Update(x);
  }
  const std::string file_a = dir + "/worker_a.l1hh";
  const std::string file_b = dir + "/worker_b.l1hh";
  SaveSummaryToFile(*worker_a, file_a);
  SaveSummaryToFile(*worker_b, file_b);

  Status status;
  auto merged = LoadSummaryFromFile(file_a, &status);
  auto other = LoadSummaryFromFile(file_b, &status);
  if (merged == nullptr || other == nullptr) {
    std::fprintf(stderr, "coordinator load failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  status = merged->Merge(*other);
  if (!status.ok()) {
    std::fprintf(stderr, "coordinator merge failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  std::printf("coordinator: merged %llu + %llu worker items from "
              "%zu-byte snapshots\n",
              static_cast<unsigned long long>(worker_a->ItemsProcessed()),
              static_cast<unsigned long long>(worker_b->ItemsProcessed()),
              static_cast<size_t>(std::filesystem::file_size(file_a)));
  for (const auto& hh : merged->HeavyHitters(opt.phi)) {
    std::printf("  item %-10llu ~%.0f (%.1f%%)\n",
                static_cast<unsigned long long>(hh.item), hh.estimate,
                100.0 * hh.estimate / static_cast<double>(m));
  }

  // ---- 2. Crash/resume via engine checkpoint ---------------------------
  ShardedEngineOptions engine_opt;
  engine_opt.algorithm = "bdw_optimal";
  engine_opt.summary = opt;
  engine_opt.num_shards = 4;

  auto uninterrupted = ShardedEngine::Create(engine_opt, &status);
  auto doomed = ShardedEngine::Create(engine_opt, &status);
  const size_t half = stream.size() / 2;
  uninterrupted->UpdateBatch(stream);
  doomed->UpdateBatch({stream.data(), half});
  const std::string ckpt = dir + "/engine_ckpt";
  if (!doomed->Checkpoint(ckpt).ok()) return 1;
  doomed.reset();  // "crash"

  auto restored = ShardedEngine::Restore(ckpt, &status);
  if (restored == nullptr) {
    std::fprintf(stderr, "restore failed: %s\n", status.ToString().c_str());
    return 1;
  }
  restored->UpdateBatch({stream.data() + half, stream.size() - half});

  const auto a = uninterrupted->HeavyHitters(opt.phi);
  const auto b = restored->HeavyHitters(opt.phi);
  bool identical = a.size() == b.size();
  for (size_t i = 0; identical && i < a.size(); ++i) {
    identical = a[i].item == b[i].item && a[i].estimate == b[i].estimate;
    std::printf("  uninterrupted %-10llu %.0f | restored %-10llu %.0f\n",
                static_cast<unsigned long long>(a[i].item), a[i].estimate,
                static_cast<unsigned long long>(b[i].item), b[i].estimate);
  }
  std::printf("restored == uninterrupted: %s\n", identical ? "yes" : "NO");

  std::filesystem::remove_all(dir);
  return identical ? 0 : 1;
}
