// Anomaly detection with eps-Minimum (paper Section 1.2): a known fleet of
// sensors broadcasts packets; the one that barely transmits is down.
//
// The "From:" field of each packet is the stream item.  Frequencies are
// heartbeats; the minimum-frequency sensor is the defective one.  Note the
// problem only makes sense for a small universe — exactly the regime
// Algorithm 3 is built for (its space has NO log n term at all).
//
// Expected output: the suspected defective sensor id matching the ground
// truth (the planted sensor that sent ~450 of 500k packets against a
// fleet median of ~21k), the decision path the algorithm took, and a
// sketch size of a few hundred bits.
#include <cstdio>

#include "core/epsilon_minimum.h"
#include "util/random.h"

int main() {
  using namespace l1hh;

  const uint64_t sensors = 24;
  const uint64_t packets = 500000;
  const uint64_t broken = 17;  // transmits ~50x less than its peers

  EpsilonMinimum::Options opt;
  opt.epsilon = 0.02;
  opt.delta = 0.05;
  opt.universe_size = sensors;
  opt.stream_length = packets;
  EpsilonMinimum sketch(opt, 1);

  Rng rng(2);
  std::vector<uint64_t> truth(sensors, 0);
  for (uint64_t i = 0; i < packets; ++i) {
    // Healthy sensors heartbeat uniformly; the broken one rarely.
    uint64_t from = rng.UniformU64(sensors);
    if (from == broken && rng.UniformU64(50) != 0) {
      from = (broken + 1 + rng.UniformU64(sensors - 1)) % sensors;
    }
    ++truth[from];
    sketch.Insert(from);
  }

  const auto r = sketch.Report();
  const char* branch_names[] = {"large-universe", "unsampled-item",
                                "few-distinct", "truncated-counters"};
  std::printf("fleet of %llu sensors, %llu packets observed\n",
              static_cast<unsigned long long>(sensors),
              static_cast<unsigned long long>(packets));
  std::printf("suspected defective sensor: #%llu (est. ~%.0f packets; "
              "decision path: %s)\n",
              static_cast<unsigned long long>(r.item), r.estimated_count,
              branch_names[static_cast<int>(r.branch)]);
  std::printf("ground truth: sensor #%llu sent %llu packets (fleet median "
              "~%llu)\n",
              static_cast<unsigned long long>(broken),
              static_cast<unsigned long long>(truth[broken]),
              static_cast<unsigned long long>(packets / sensors));
  std::printf("sketch used %zu bits — note: independent of the universe "
              "beyond the bit vectors, and only loglog in m\n",
              sketch.SpaceBits());
  return r.item == broken ? 0 : 1;
}
