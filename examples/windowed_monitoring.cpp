// Continuous monitoring with a sliding window: "heavy in the last W
// items", not "heavy since boot".
//
// A synthetic service-traffic stream drifts: a content push makes a new
// set of hot keys every "hour" (phase), and yesterday's hot keys go
// quiet.  Two monitors watch the same stream —
//   * a whole-stream summary (the classic deployment), which averages
//     over all history, and
//   * a windowed:space_saving ring (src/window/, docs/WINDOWS.md) sized
//     to one hour, which answers for the last W items only —
// and the report after the last switch shows the difference: the
// windowed monitor lists exactly the CURRENT hot set, while the
// whole-stream monitor still ranks expired keys near the top.
//
// Expected output: three phases; after the final one the windowed report
// contains the phase-3 keys (shares ~16%/~12% of the window) and none of
// the phase-1/2 keys (evicted within one window of going quiet), while
// the whole-stream report still carries earlier-phase keys at ~4-5%
// lifetime share.  Exit code 0 iff the windowed monitor got the current
// set exactly right.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "stream/stream_generator.h"
#include "summary/summary.h"
#include "window/sliding_window_summary.h"

int main() {
  using namespace l1hh;

  // One "hour" of traffic per phase; the window spans one hour in 32
  // two-minute buckets (query slack eps + 1/32).
  const uint64_t phase_length = 1 << 18;
  const size_t phases = 3;

  DriftSpec spec;
  spec.planted_fractions = {0.16, 0.12};
  spec.phases = phases;
  spec.universe_size = uint64_t{1} << 24;
  spec.stream_length = phases * phase_length;
  const DriftStream traffic = MakePlantedDriftStream(spec, /*seed=*/41);

  SummaryOptions options;
  options.epsilon = 0.01;
  options.phi = 0.08;
  options.universe_size = spec.universe_size;
  options.stream_length = spec.stream_length;
  options.seed = 41;
  options.window_size = phase_length;  // one hour
  options.window_buckets = 32;

  auto whole = MakeSummary("space_saving", options);
  auto windowed = MakeSummary("windowed:space_saving", options);
  whole->UpdateBatch(traffic.items);
  windowed->UpdateBatch(traffic.items);

  const auto* ring =
      dynamic_cast<const SlidingWindowSummary*>(windowed.get());
  std::printf("traffic: %zu items in %zu phases; window = last %llu items "
              "(%zu buckets)\n",
              traffic.items.size(), phases,
              static_cast<unsigned long long>(ring->window_size()),
              ring->num_buckets());

  const auto current = windowed->HeavyHitters(options.phi);
  std::printf("\nwindowed monitor (last hour), phi=%.0f%%:\n",
              100.0 * options.phi);
  const double covered = static_cast<double>(ring->window_items());
  for (const auto& hh : current) {
    std::printf("  key %-12llu ~%5.1f%% of the window\n",
                static_cast<unsigned long long>(hh.item),
                100.0 * hh.estimate / covered);
  }

  // The whole-stream monitor, queried at the LIFETIME share the same keys
  // would need: each phase's heavies own ~16%/12% of one third of the
  // stream, i.e. ~4-5% lifetime — stale keys keep qualifying forever.
  const auto lifetime = whole->HeavyHitters(0.04);
  std::printf("\nwhole-stream monitor, phi=4%%:\n");
  size_t stale = 0;
  for (const auto& hh : lifetime) {
    bool expired = false;
    for (size_t p = 0; p + 1 < phases; ++p) {
      expired |= std::count(traffic.planted_ids[p].begin(),
                            traffic.planted_ids[p].end(), hh.item) > 0;
    }
    stale += expired ? 1 : 0;
    std::printf("  key %-12llu ~%5.1f%% lifetime%s\n",
                static_cast<unsigned long long>(hh.item),
                100.0 * hh.estimate /
                    static_cast<double>(traffic.items.size()),
                expired ? "   <- expired an hour ago" : "");
  }
  std::printf("\nwhole-stream report carries %zu expired key(s); the "
              "windowed report carries none.\n",
              stale);

  // Self-check: the windowed report is exactly the current heavy set.
  const auto& fresh = traffic.planted_ids[phases - 1];
  bool ok = current.size() == fresh.size();
  for (const uint64_t key : fresh) {
    ok = ok && std::any_of(current.begin(), current.end(),
                           [key](const ItemEstimate& e) {
                             return e.item == key;
                           });
  }
  std::printf("windowed monitor %s the current hot set.\n",
              ok ? "matches" : "MISSED");
  return ok ? 0 : 1;
}
