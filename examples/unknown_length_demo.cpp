// Streams of unknown length (Theorem 7): the operator never tells the
// sketch how long the stream will be.
//
// A Morris counter (O(log log m) bits) drives an epoch scheme that keeps
// at most two sketch instances alive; the reporter instance always covers
// all but an eps-fraction prefix of the stream.  We interrupt the stream
// at several points and query — the answers stay correct throughout.
//
// Expected output: one row per interruption point (1k to ~1M items) with
// the Morris counter's length estimate tracking the true position within
// its constant-factor guarantee, space staying flat at a few KB, at most
// two live instances, and the same true heavy item reported every time.
#include <cstdio>

#include "core/unknown_length.h"
#include "stream/stream_generator.h"

int main() {
  using namespace l1hh;

  BdwSimple::Options base;
  base.epsilon = 0.05;
  base.phi = 0.3;
  base.delta = 0.1;
  base.universe_size = uint64_t{1} << 24;
  base.stream_length = 0;  // unknown!

  auto sketch = MakeUnknownLengthListHeavyHitters(base, uint64_t{1} << 24,
                                                  /*seed=*/5);

  Rng rng(6);
  const uint64_t total = 2000000;
  uint64_t next_checkpoint = 1000;
  std::printf("%10s %10s %12s %10s %8s\n", "position", "morris",
              "space bits", "instances", "top item");
  for (uint64_t i = 1; i <= total; ++i) {
    // Item 7 carries 40% of the stream at every prefix.
    const uint64_t x =
        rng.UniformU64(10) < 4 ? 7 : 1000 + rng.UniformU64(100000);
    sketch.Insert(x);
    if (i == next_checkpoint) {
      const auto report = sketch.Reporter().Report();
      const long long top =
          report.empty() ? -1 : static_cast<long long>(report[0].item);
      std::printf("%10llu %10.0f %12zu %10d %8lld\n",
                  static_cast<unsigned long long>(i),
                  sketch.EstimatedLength(), sketch.SpaceBits(),
                  sketch.live_instances(), top);
      next_checkpoint *= 4;
    }
  }
  std::printf("\nitem 7 (40%% of every prefix) should be the top item at "
              "every checkpoint after warm-up;\nspace stays bounded while "
              "the stream grows 2000x.\n");
  return 0;
}
