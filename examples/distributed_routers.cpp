// Distributed heavy hitters: four edge routers each sketch their own
// traffic; the collector merges the four sketches into one fleet-wide
// view.  Because Bernoulli samples of disjoint streams concatenate, the
// merged sketch carries the same (eps, phi) guarantee as a single sketch
// over all traffic — no raw packets ever leave a router.
//
// Expected output: the total bits shipped to the collector (a few KB for
// 4 x 256k packets), then the fleet-wide heavy-hitter list containing the
// planted elephant flow 0xbeef at ~11-12% of total traffic — a flow no
// single router sees above the reporting threshold.
#include <cstdio>
#include <vector>

#include "core/bdw_simple.h"
#include "stream/stream_generator.h"
#include "util/bit_stream.h"

int main() {
  using namespace l1hh;

  constexpr int kRouters = 4;
  const uint64_t per_router = 1 << 18;
  const uint64_t total = kRouters * per_router;

  BdwSimple::Options opt;
  opt.epsilon = 0.01;
  opt.phi = 0.05;
  opt.universe_size = uint64_t{1} << 32;
  opt.stream_length = total;  // fleet-wide length, part of the config

  // One cross-router elephant (a DDoS target) plus per-router noise.
  const uint64_t elephant = 0xdead0000beefULL % (uint64_t{1} << 32);

  std::vector<BitWriter> wires(kRouters);
  size_t message_bits = 0;
  for (int r = 0; r < kRouters; ++r) {
    BdwSimple sketch(opt, /*seed=*/42);  // same seed fleet-wide
    Rng rng(1000 + r);
    for (uint64_t i = 0; i < per_router; ++i) {
      // 12% of each router's packets hit the elephant.
      const uint64_t flow = rng.UniformU64(100) < 12
                                ? elephant
                                : rng.UniformU64(uint64_t{1} << 32);
      sketch.Insert(flow);
    }
    sketch.Serialize(wires[r]);
    message_bits += wires[r].size_bits();
  }

  // Collector: deserialize and fold.
  BitReader r0(wires[0]);
  BdwSimple fleet = BdwSimple::Deserialize(r0, 1);
  for (int r = 1; r < kRouters; ++r) {
    BitReader rr(wires[r]);
    fleet = BdwSimple::Merge(fleet, BdwSimple::Deserialize(rr, 1));
  }

  std::printf("%d routers x %llu packets; %zu bits total on the wire "
              "(%.1f KB)\n\n",
              kRouters, static_cast<unsigned long long>(per_router),
              message_bits, message_bits / 8192.0);
  std::printf("fleet-wide heavy hitters (>5%% of ALL traffic):\n");
  for (const HeavyHitter& hh : fleet.Report()) {
    std::printf("  flow %12llx  ~%.1f%% of fleet traffic%s\n",
                static_cast<unsigned long long>(hh.item),
                100.0 * hh.estimated_fraction,
                hh.item == elephant ? "   <- the planted elephant" : "");
  }
  return 0;
}
