// Elephant-flow detection on a router, the paper's flagship application
// ([EV03]: "focusing on the elephants, ignoring the mice").
//
// A synthetic packet trace over (src, dst) flow ids: a handful of planted
// elephants (bulk transfers) drown in a sea of mice.  The router keeps one
// small sketch per interface; a collector later merges the picture by
// deserializing each sketch — exactly the handoff the serialization layer
// exists for.  No real trace is needed: the guarantees are
// distribution-free (DESIGN.md substitution #2).
//
// Expected output: the router->collector message size (~2 KB for a 1M
// packet trace), then the three planted elephant flows listed with
// estimated traffic shares (~25%, ~12%, ~8%) — and none of the mice.
#include <cstdio>

#include "core/bdw_simple.h"
#include "stream/stream_generator.h"
#include "util/bit_stream.h"

namespace {

uint64_t FlowId(uint32_t src, uint32_t dst) {
  return (static_cast<uint64_t>(src) << 32) | dst;
}

void PrintIp(uint32_t ip) {
  std::printf("%u.%u.%u.%u", ip >> 24, (ip >> 16) & 0xff, (ip >> 8) & 0xff,
              ip & 0xff);
}

}  // namespace

int main() {
  using namespace l1hh;

  const uint64_t packets = 1 << 20;
  Rng rng(7);

  // Three bulk flows own ~45% of traffic; 100k mouse flows split the rest.
  const uint64_t elephants[3] = {FlowId(0x0a000001, 0xc0a80101),
                                 FlowId(0x0a000002, 0xc0a80102),
                                 FlowId(0xac100003, 0x08080808)};
  const double shares[3] = {0.25, 0.12, 0.08};

  BdwSimple::Options opt;
  opt.epsilon = 0.01;
  opt.phi = 0.05;
  opt.universe_size = UINT64_MAX;  // 64-bit flow id space
  opt.stream_length = packets;
  BdwSimple router_sketch(opt, 99);

  for (uint64_t i = 0; i < packets; ++i) {
    const double u = rng.UniformDouble();
    uint64_t flow;
    if (u < shares[0]) {
      flow = elephants[0];
    } else if (u < shares[0] + shares[1]) {
      flow = elephants[1];
    } else if (u < shares[0] + shares[1] + shares[2]) {
      flow = elephants[2];
    } else {
      flow = FlowId(static_cast<uint32_t>(rng.NextU64()),
                    static_cast<uint32_t>(rng.UniformU64(100000)));
    }
    router_sketch.Insert(flow);
  }

  // Ship the sketch to the collector (this is the whole point: the trace
  // is gone, only these bits travel).
  BitWriter wire;
  router_sketch.Serialize(wire);
  std::printf("router -> collector message: %zu bits (%.1f KB); trace was "
              "%llu packets\n\n",
              wire.size_bits(), wire.size_bits() / 8192.0,
              static_cast<unsigned long long>(packets));

  BitReader reader(wire);
  const BdwSimple collector = BdwSimple::Deserialize(reader, 100);

  std::printf("elephant flows (>5%% of packets):\n");
  for (const HeavyHitter& hh : collector.Report()) {
    std::printf("  ");
    PrintIp(static_cast<uint32_t>(hh.item >> 32));
    std::printf(" -> ");
    PrintIp(static_cast<uint32_t>(hh.item & 0xffffffff));
    std::printf("  ~%.1f%% of traffic (est. %.0f packets)\n",
                100.0 * hh.estimated_fraction, hh.estimated_count);
  }
  return 0;
}
