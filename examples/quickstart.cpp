// Quickstart: find the l1-heavy hitters of a skewed stream in a few lines.
//
// Scenario: the smallest possible end-to-end use of the library — generate
// a Zipf-skewed stream, pick an algorithm from the Summary factory by
// name, feed the stream, and list everything above a 5% frequency.
// Swap the name string ("bdw_optimal", "misra_gries", "space_saving",
// "count_min", ... — see `l1hh_cli list`) to compare algorithms without
// touching any other line.
//
// Expected output: a header line, then 3-4 heavy hitters (the head of the
// Zipf(1.2) distribution) with estimated counts within eps*m = ~10k of the
// truth, descending, followed by the sketch's memory footprint of a few
// KB — thousands of times smaller than the exact 2^20-entry table.
//
// Build & run:
//   cmake -B build -S . && cmake --build build --target quickstart
//   ./build/examples/quickstart
#include <cstdio>

#include "stream/stream_generator.h"
#include "summary/summary.h"

int main() {
  using namespace l1hh;

  // A million draws from a Zipf(1.2) distribution over 2^24 items.
  const uint64_t m = 1 << 20;
  const auto stream = MakeZipfStream(/*n=*/1 << 24, /*alpha=*/1.2, m,
                                     /*seed=*/2024);

  // Ask for every item above 5% of the stream, with 1% slack: items above
  // 5% are guaranteed in, items below 4% are guaranteed out, and every
  // reported count is within 1% of m of the truth.
  SummaryOptions opt;
  opt.epsilon = 0.01;
  opt.phi = 0.05;
  opt.universe_size = uint64_t{1} << 24;
  opt.stream_length = m;
  opt.seed = 1;

  // Any name from RegisteredSummaryNames() works here.
  auto sketch = MakeSummary("bdw_optimal", opt);
  if (sketch == nullptr) {
    std::fprintf(stderr, "unknown algorithm name; try `l1hh_cli list`\n");
    return 1;
  }
  sketch->UpdateBatch(stream);  // O(1) per item

  std::printf("heavy hitters (phi=5%%, eps=1%%):\n");
  std::printf("%12s %14s %10s\n", "item", "est. count", "est. %");
  for (const ItemEstimate& hh : sketch->HeavyHitters(opt.phi)) {
    std::printf("%12llu %14.0f %9.2f%%\n",
                static_cast<unsigned long long>(hh.item), hh.estimate,
                100.0 * hh.estimate / static_cast<double>(m));
  }
  std::printf("\nsketch state: %zu bytes (stream was %llu items)\n",
              sketch->MemoryUsageBytes(),
              static_cast<unsigned long long>(m));
  return 0;
}
