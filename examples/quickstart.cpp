// Quickstart: find the l1-heavy hitters of a skewed stream in a few lines.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build --target quickstart
//   ./build/examples/quickstart
#include <cstdio>

#include "core/bdw_optimal.h"
#include "stream/stream_generator.h"

int main() {
  using namespace l1hh;

  // A million draws from a Zipf(1.2) distribution over 2^24 items.
  const uint64_t m = 1 << 20;
  const auto stream = MakeZipfStream(/*n=*/1 << 24, /*alpha=*/1.2, m,
                                     /*seed=*/2024);

  // Ask for every item above 5% of the stream, with 1% slack: items above
  // 5% are guaranteed in, items below 4% are guaranteed out, and every
  // reported count is within 1% of m of the truth.
  BdwOptimal::Options opt;
  opt.epsilon = 0.01;
  opt.phi = 0.05;
  opt.universe_size = uint64_t{1} << 24;
  opt.stream_length = m;

  BdwOptimal sketch(opt, /*seed=*/1);
  for (const uint64_t item : stream) {
    sketch.Insert(item);  // O(1) per item
  }

  std::printf("heavy hitters (phi=5%%, eps=1%%):\n");
  std::printf("%12s %14s %10s\n", "item", "est. count", "est. %");
  for (const HeavyHitter& hh : sketch.Report()) {
    std::printf("%12llu %14.0f %9.2f%%\n",
                static_cast<unsigned long long>(hh.item),
                hh.estimated_count, 100.0 * hh.estimated_fraction);
  }
  std::printf("\nsketch state: %zu bits (stream was %llu items)\n",
              sketch.SpaceBits(), static_cast<unsigned long long>(m));
  return 0;
}
