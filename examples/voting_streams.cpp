// Streaming election: winners under plurality, Borda, and maximin from a
// stream of rankings — the paper's Section 1.2 motivation (online polling,
// recommender systems, clickstream aggregation).
//
// Votes arrive as full rankings (e.g. the order a user visits site
// sections).  We never store the votes; three small sketches answer:
//   * plurality winner  (eps-Maximum over first choices, Theorem 3),
//   * Borda scores      (Theorem 5),
//   * maximin scores    (Theorem 6).
//
// Expected output: for 200k synthetic voters over 8 candidates, the
// plurality, Borda, and maximin winners, each next to the exact winner
// computed from the full vote tally — all three agree with the exact
// count on this stream (the planted favourite "Cleo" wins every rule).
#include <cstdio>

#include "core/borda.h"
#include "core/epsilon_maximum.h"
#include "core/maximin.h"
#include "stream/vote_generator.h"
#include "votes/election.h"

int main() {
  using namespace l1hh;

  const uint32_t candidates = 8;
  const uint64_t voters = 200000;
  const char* names[] = {"Ada", "Bert", "Cleo", "Dana",
                         "Ezra", "Faye", "Gus",  "Hana"};

  // Electorate model: Mallows around Cleo > Dana > ... with an extra
  // direct boost for Cleo (index 2 after relabeling by the generator's
  // identity center; we promote her explicitly).
  const auto votes =
      MakePlantedWinnerVotes(candidates, voters, /*winner=*/2,
                             /*boost=*/0.35, /*seed=*/11);

  EpsilonMaximum::Options po;
  po.epsilon = 0.02;
  po.universe_size = candidates;
  po.stream_length = voters;
  EpsilonMaximum plurality(po, 1);

  StreamingBorda::Options bo;
  bo.epsilon = 0.02;
  bo.num_candidates = candidates;
  bo.stream_length = voters;
  StreamingBorda borda(bo, 2);

  StreamingMaximin::Options mo;
  mo.epsilon = 0.05;
  mo.num_candidates = candidates;
  mo.stream_length = voters;
  StreamingMaximin maximin(mo, 3);

  Election exact(candidates);  // ground truth, for the demo printout only
  for (const Ranking& vote : votes) {
    plurality.Insert(vote.At(0));
    borda.InsertVote(vote);
    maximin.InsertVote(vote);
    exact.AddVote(vote);
  }

  std::printf("%llu voters, %u candidates\n\n",
              static_cast<unsigned long long>(voters), candidates);

  const auto p = plurality.Report();
  std::printf("plurality winner : %-5s (~%.1f%% of first choices)  [exact: "
              "%s]\n",
              names[p.item], 100.0 * p.estimated_fraction,
              names[exact.PluralityWinner()]);

  const auto b = borda.MaxScore();
  std::printf("Borda winner     : %-5s (score ~%.0f)              [exact: "
              "%s]\n",
              names[b.item], b.estimated_count,
              names[exact.BordaWinner()]);

  const auto x = maximin.MaxScore();
  std::printf("maximin winner   : %-5s (score ~%.0f)              [exact: "
              "%s]\n",
              names[x.item], x.estimated_count,
              names[exact.MaximinWinner()]);

  std::printf("\nfull Borda board (estimated vs exact):\n");
  const auto est = borda.Scores();
  const auto truth = exact.BordaScores();
  for (uint32_t c = 0; c < candidates; ++c) {
    std::printf("  %-5s %12.0f %12llu\n", names[c], est[c],
                static_cast<unsigned long long>(truth[c]));
  }

  std::printf("\nsketch sizes: plurality %zu b, Borda %zu b, maximin %zu "
              "b — the maximin/Borda gap is Theorem 13's n/eps^2 at work\n",
              plurality.SpaceBits(), borda.SpaceBits(),
              maximin.SpaceBits());
  return 0;
}
