// Sharded-engine throughput: single-thread scalar vs batched ingestion
// vs the ShardedEngine at 2 and 4 shards, for every registered summary.
//
//   ./bench_sharded_throughput [m] [alpha]     (defaults: 2^20 items, 1.1)
//
// Columns are ns/item and aggregate items/sec; `x-batch` is the K-shard
// engine's speedup over the single-thread batched loop (the honest
// baseline — the engine also pays its ring-buffer hop).  Parallel speedup
// requires actual cores: on a 1-core machine the engine column measures
// the overhead of the ring + drain threads, not the scale-out.
//
// This binary is informational only and always exits 0.  The
// batch-vs-scalar regression GATE lives in tests/batch_perf_test.cc
// (ctest label "perf", RUN_SERIAL, tolerance tunable via
// L1HH_PERF_TOLERANCE): the retry-once heuristic this bench used to
// carry still flaked on saturated CI runners, and a gate that cries
// wolf gets ignored.  A slow batch loop here is worth reading, not
// worth failing the bench stage over.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "engine/sharded_engine.h"
#include "stream/stream_generator.h"
#include "summary/summary.h"

namespace {

using namespace l1hh;

double NsPerItem(const std::chrono::steady_clock::time_point& start,
                 const std::chrono::steady_clock::time_point& end,
                 size_t items) {
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(end -
                                                                  start)
                 .count()) /
         static_cast<double>(items == 0 ? 1 : items);
}

double TimeScalar(const std::string& name, const SummaryOptions& options,
                  const std::vector<uint64_t>& stream) {
  auto summary = MakeSummary(name, options);
  const auto start = std::chrono::steady_clock::now();
  for (const uint64_t x : stream) summary->Update(x);
  return NsPerItem(start, std::chrono::steady_clock::now(), stream.size());
}

double TimeBatch(const std::string& name, const SummaryOptions& options,
                 const std::vector<uint64_t>& stream) {
  auto summary = MakeSummary(name, options);
  const auto start = std::chrono::steady_clock::now();
  summary->UpdateBatch(stream);
  return NsPerItem(start, std::chrono::steady_clock::now(), stream.size());
}

/// Returns ns/item through the engine (ingest + flush), or < 0 when the
/// engine refuses the configuration (non-mergeable structure).
double TimeEngine(const std::string& name, const SummaryOptions& options,
                  const std::vector<uint64_t>& stream, size_t shards) {
  ShardedEngineOptions engine_options;
  engine_options.algorithm = name;
  engine_options.summary = options;
  engine_options.num_shards = shards;
  auto engine = ShardedEngine::Create(engine_options);
  if (engine == nullptr) return -1.0;
  const auto start = std::chrono::steady_clock::now();
  engine->UpdateBatch(stream);
  engine->Flush();
  return NsPerItem(start, std::chrono::steady_clock::now(), stream.size());
}

/// ns/item with `producers` concurrent producer threads driving the
/// K x P ring grid: contiguous chunks, one RegisterProducer handle per
/// thread, timed spawn-to-flush.  Returns < 0 if the engine refuses the
/// configuration.
double TimeProducers(const std::string& name, const SummaryOptions& options,
                     const std::vector<uint64_t>& stream, size_t shards,
                     size_t producers) {
  ShardedEngineOptions engine_options;
  engine_options.algorithm = name;
  engine_options.summary = options;
  engine_options.num_shards = shards;
  engine_options.max_producers = producers + 1;  // externals + slot 0
  auto engine = ShardedEngine::Create(engine_options);
  if (engine == nullptr) return -1.0;
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(producers);
  for (size_t p = 0; p < producers; ++p) {
    auto producer = engine->RegisterProducer();
    if (producer == nullptr) return -1.0;
    const size_t begin = p * stream.size() / producers;
    const size_t end = (p + 1) * stream.size() / producers;
    threads.emplace_back(
        [&stream, begin, end, producer = std::move(producer)]() mutable {
          producer->UpdateBatch(
              {stream.data() + begin, end - begin});
          producer.reset();
        });
  }
  for (auto& thread : threads) thread.join();
  engine->Flush();
  return NsPerItem(start, std::chrono::steady_clock::now(), stream.size());
}

/// Min-of-3 alternating scalar/batch measurement (see the comment at the
/// call site for why min, and why alternating).
void MeasureScalarVsBatch(const std::string& name,
                          const SummaryOptions& options,
                          const std::vector<uint64_t>& stream,
                          double& scalar_ns, double& batch_ns) {
  scalar_ns = TimeScalar(name, options, stream);
  batch_ns = TimeBatch(name, options, stream);
  for (int rep = 1; rep < 3; ++rep) {
    scalar_ns = std::min(scalar_ns, TimeScalar(name, options, stream));
    batch_ns = std::min(batch_ns, TimeBatch(name, options, stream));
  }
}

void PrintEngineCell(double ns, double batch_ns) {
  if (ns < 0) {
    std::printf("%10s %8s", "n/a", "");
    return;
  }
  std::printf("%10.1f %7.2fx", ns, batch_ns / ns);
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t m = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                              : uint64_t{1} << 20;
  const double alpha = argc > 2 ? std::atof(argv[2]) : 1.1;
  const uint64_t n = uint64_t{1} << 22;

  SummaryOptions options;
  options.epsilon = 0.005;
  options.phi = 0.02;
  options.delta = 0.05;
  options.universe_size = n;
  options.stream_length = m;
  options.seed = 42;

  const auto stream = MakeZipfStream(n, alpha, m, /*seed=*/3);
  std::printf("sharded-engine throughput: zipf(%.2f), n=2^22, m=%llu, "
              "hardware threads=%u\n",
              alpha, static_cast<unsigned long long>(m),
              std::thread::hardware_concurrency());
  std::printf("(all columns ns/item; engine columns show speedup over the "
              "single-thread batch baseline)\n\n");
  std::printf("%-20s %10s %10s %8s %18s %18s\n", "algorithm", "scalar",
              "batch", "b/s", "engine K=2", "engine K=4");

  for (const auto& name : RegisteredSummaryNames()) {
    // Alternate scalar/batch and keep the min of three reps: on shared or
    // frequency-scaled machines the first timed loop runs turbo-boosted
    // and later ones throttled (or a noisy neighbor steals a slice),
    // which otherwise skews a single-measurement ratio by 10-15%.
    double scalar_ns = 0;
    double batch_ns = 0;
    MeasureScalarVsBatch(name, options, stream, scalar_ns, batch_ns);
    std::printf("%-20s %10.1f %10.1f %7.2fx", name.c_str(), scalar_ns,
                batch_ns, scalar_ns / batch_ns);
    PrintEngineCell(TimeEngine(name, options, stream, 2), batch_ns);
    PrintEngineCell(TimeEngine(name, options, stream, 4), batch_ns);
    std::printf("\n");
  }

  // The paper's algorithms through the engine: bdw_optimal is the
  // structure the epoch-reconciled merge newly unlocked at K > 1.
  std::printf("\nitems/sec at batch baseline vs 4-shard engine:\n");
  for (const char* name : {"misra_gries", "count_min", "bdw_optimal"}) {
    const double batch_ns = TimeBatch(name, options, stream);
    const double engine_ns = TimeEngine(name, options, stream, 4);
    std::printf("  %-14s %.2fM/s -> %.2fM/s (%.2fx aggregate)\n", name,
                1e3 / batch_ns, 1e3 / engine_ns, batch_ns / engine_ns);
  }

  // Multi-producer ingest scaling through the K x P ring grid.  Speedup
  // over P=1 requires spare cores for the extra producer threads: on a
  // 1-core container (most CI runners) every producer, worker, and the
  // flush all timeshare one CPU, so these numbers are CONTENTION-BOUND
  // and P > 1 typically costs rather than pays.  The column to watch
  // there is how small the penalty is (grid overhead), not the speedup.
  std::printf("\nmulti-producer ingest scaling (K=4 grid, spawn-to-flush "
              "ns/item):\n");
  for (const char* name : {"misra_gries", "count_min", "bdw_optimal"}) {
    const double p1 = TimeProducers(name, options, stream, 4, 1);
    const double p2 = TimeProducers(name, options, stream, 4, 2);
    const double p4 = TimeProducers(name, options, stream, 4, 4);
    if (p1 < 0 || p2 < 0 || p4 < 0) {
      std::printf("  %-14s n/a\n", name);
      continue;
    }
    std::printf("  %-14s P=1 %8.1f   P=2 %8.1f (%.2fx)   P=4 %8.1f "
                "(%.2fx)\n",
                name, p1, p2, p1 / p2, p4, p1 / p4);
  }
  return 0;
}
