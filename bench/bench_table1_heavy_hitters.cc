// Table 1, row 1: (eps, phi)-Heavy Hitters.
//
// Paper upper bound:  O(eps^-1 log phi^-1 + phi^-1 log n + log log m) bits
// (Theorems 1-2, 7); prior art (Misra-Gries et al.):
// O(eps^-1 (log n + log m)).  This bench measures the space actually used
// by our Algorithm 1, Algorithm 2, and the five classical baselines across
// eps / phi / n / m sweeps, next to the formulas, demonstrating the paper's
// "nearly quadratic gap" shape: for constant phi and eps^-1 ~ log n the new
// algorithms' space grows like eps^-1 while Misra-Gries grows like
// eps^-1 log n.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "core/bdw_optimal.h"
#include "core/bdw_simple.h"
#include "stream/stream_generator.h"
#include "summary/count_min_sketch.h"
#include "summary/lossy_counting.h"
#include "summary/misra_gries.h"
#include "summary/space_saving.h"

namespace l1hh {
namespace {

struct Measured {
  double simple;
  double optimal;
  double mg;
  double ss;
  double cms;
  double lossy;
};

Measured MeasureAll(double eps, double phi, uint64_t n, uint64_t m,
                    uint64_t seed) {
  const auto stream = MakeZipfStream(n, 1.1, m, seed);

  BdwSimple::Options so;
  so.epsilon = eps;
  so.phi = phi;
  so.universe_size = n;
  so.stream_length = m;
  BdwSimple simple(so, seed + 1);

  BdwOptimal::Options oo;
  oo.epsilon = eps;
  oo.phi = phi;
  oo.universe_size = n;
  oo.stream_length = m;
  BdwOptimal optimal(oo, seed + 2);

  const int id_bits = UniverseBits(n);
  MisraGries mg(static_cast<size_t>(1.0 / eps), id_bits);
  SpaceSaving ss(static_cast<size_t>(1.0 / eps), id_bits);
  CountMinSketch cms = CountMinSketch::ForError(eps, 0.05, seed + 3);
  LossyCounting lossy(eps, id_bits);

  for (const uint64_t x : stream) {
    simple.Insert(x);
    optimal.Insert(x);
    mg.Insert(x);
    ss.Insert(x);
    cms.Insert(x);
    lossy.Insert(x);
  }
  return {static_cast<double>(simple.SpaceBits()),
          static_cast<double>(optimal.SpaceBits()),
          static_cast<double>(mg.SpaceBits()),
          static_cast<double>(ss.SpaceBits()),
          static_cast<double>(cms.SpaceBits()),
          static_cast<double>(lossy.SpaceBits())};
}

double PaperFormula(double eps, double phi, uint64_t n, uint64_t m) {
  return (1.0 / eps) * std::log2(1.0 / phi) +
         (1.0 / phi) * std::log2(static_cast<double>(n)) +
         std::log2(std::log2(static_cast<double>(m)));
}

double MgFormula(double eps, uint64_t n, uint64_t m) {
  return (1.0 / eps) * (std::log2(static_cast<double>(n)) +
                        std::log2(static_cast<double>(m)));
}

}  // namespace
}  // namespace l1hh

int main() {
  using namespace l1hh;
  std::printf("Table 1 row 1: (eps,phi)-List Heavy Hitters — space in bits\n");
  std::printf("paper bound: eps^-1 log(1/phi) + phi^-1 log n + loglog m\n");
  std::printf("prior (MG):  eps^-1 (log n + log m)\n");

  // --- Sweep 1: eps at fixed phi, n, m ---
  {
    const double phi = 0.25;
    const uint64_t n = uint64_t{1} << 26, m = uint64_t{1} << 20;
    bench::PrintHeader(
        "eps sweep (phi=1/4, n=2^26, m=2^20)",
        {"1/eps", "Alg1", "Alg2", "MG", "SpaceSav", "CountMin", "Lossy",
         "paper~", "mg~"});
    for (const int inv_eps : {16, 32, 64, 128, 256}) {
      const double eps = 1.0 / inv_eps;
      const auto s = MeasureAll(eps, phi, n, m, 1000 + inv_eps);
      bench::PrintRow({static_cast<double>(inv_eps), s.simple, s.optimal,
                       s.mg, s.ss, s.cms, s.lossy,
                       PaperFormula(eps, phi, n, m), MgFormula(eps, n, m)});
    }
    bench::PrintNote(
        "shape check: Alg1/Alg2 grow ~eps^-1; MG/SpaceSaving grow "
        "~eps^-1 log n (the paper's nearly-quadratic gap at log n ~ 1/eps)");
  }

  // --- Sweep 2: phi at fixed eps ---
  {
    const double eps = 1.0 / 64;
    const uint64_t n = uint64_t{1} << 26, m = uint64_t{1} << 20;
    bench::PrintHeader("phi sweep (eps=1/64, n=2^26, m=2^20)",
                       {"1/phi", "Alg1", "Alg2", "MG", "paper~"});
    for (const int inv_phi : {4, 8, 16, 32}) {
      const double phi = 1.0 / inv_phi;
      const auto s = MeasureAll(eps, phi, n, m, 2000 + inv_phi);
      bench::PrintRow({static_cast<double>(inv_phi), s.simple, s.optimal,
                       s.mg, PaperFormula(eps, phi, n, m)});
    }
    bench::PrintNote("Alg1/Alg2 pay phi^-1 log n only in the id table; MG "
                     "is phi-independent (and bigger throughout)");
  }

  // --- Sweep 3: universe size n ---
  {
    const double eps = 1.0 / 64, phi = 0.25;
    const uint64_t m = uint64_t{1} << 20;
    bench::PrintHeader("n sweep (eps=1/64, phi=1/4, m=2^20)",
                       {"log2 n", "Alg1", "Alg2", "MG", "paper~", "mg~"});
    for (const int log_n : {12, 16, 20, 26, 32}) {
      const uint64_t n = uint64_t{1} << log_n;
      const auto s = MeasureAll(eps, phi, n, m, 3000 + log_n);
      bench::PrintRow({static_cast<double>(log_n), s.simple, s.optimal,
                       s.mg, PaperFormula(eps, phi, n, m),
                       MgFormula(eps, n, m)});
    }
    bench::PrintNote("Alg1/Alg2: only the phi^-1-sized id table grows with "
                     "log n; MG pays log n on every one of its eps^-1 slots");
  }

  // --- Sweep 4: stream length m (the log log m term) ---
  {
    const double eps = 1.0 / 32, phi = 0.25;
    const uint64_t n = uint64_t{1} << 26;
    bench::PrintHeader("m sweep (eps=1/32, phi=1/4, n=2^26)",
                       {"log2 m", "Alg1", "Alg2", "MG", "paper~", "mg~"});
    for (const int log_m : {14, 16, 18, 20, 22}) {
      const uint64_t m = uint64_t{1} << log_m;
      const auto s = MeasureAll(eps, phi, n, m, 4000 + log_m);
      bench::PrintRow({static_cast<double>(log_m), s.simple, s.optimal,
                       s.mg, PaperFormula(eps, phi, n, m),
                       MgFormula(eps, n, m)});
    }
    bench::PrintNote("Alg1/Alg2 are nearly flat in m (sampling decouples "
                     "counters from the stream); MG counters grow with log m");
  }
  return 0;
}
