// Accuracy battery: the Definition 1 contract, measured.
//
// For each (workload, algorithm) cell this bench runs independent trials
// and reports recall of must-report items (f >= phi m), precision against
// must-not-report items (f <= (phi - eps) m), and the worst estimate error
// in eps*m units.  The paper claims all three hold with probability
// >= 1 - delta; the trials make that claim measurable.
#include <cmath>
#include <cstdio>
#include <unordered_set>

#include "bench_util.h"
#include "core/bdw_optimal.h"
#include "core/bdw_simple.h"
#include "stream/stream_generator.h"
#include "summary/exact_counter.h"
#include "summary/misra_gries.h"
#include "summary/space_saving.h"

namespace l1hh {
namespace {

struct Battery {
  double recall = 0;
  double precision = 0;
  double max_err_eps = 0;  // in eps*m units
};

template <typename MakeSketch, typename GetReport>
Battery RunBattery(double eps, double phi, uint64_t m, double zipf_alpha,
                   const MakeSketch& make, const GetReport& report_fn,
                   int trials, uint64_t seed) {
  Battery b;
  int must = 0, got = 0, bad = 0, reported_total = 0;
  for (int t = 0; t < trials; ++t) {
    const auto stream =
        MakeZipfStream(uint64_t{1} << 24, zipf_alpha, m, seed + t);
    auto sketch = make(seed + 1000 + t);
    ExactCounter exact;
    for (const uint64_t x : stream) {
      sketch.Insert(x);
      exact.Insert(x);
    }
    const auto reported = report_fn(sketch);
    std::unordered_set<uint64_t> rep_set;
    for (const auto& hh : reported) {
      rep_set.insert(hh.item);
      ++reported_total;
      const double truth = static_cast<double>(exact.Count(hh.item));
      if (truth <= (phi - eps) * static_cast<double>(m)) ++bad;
      b.max_err_eps = std::max(
          b.max_err_eps, std::abs(hh.estimated_count - truth) /
                             (eps * static_cast<double>(m)));
    }
    for (const auto& e : exact.SortedByCountDesc()) {
      if (e.count >= static_cast<uint64_t>(phi * m)) {
        ++must;
        if (rep_set.count(e.item) != 0) ++got;
      } else {
        break;
      }
    }
  }
  b.recall = must == 0 ? 1.0 : static_cast<double>(got) / must;
  b.precision = reported_total == 0
                    ? 1.0
                    : 1.0 - static_cast<double>(bad) / reported_total;
  return b;
}

}  // namespace
}  // namespace l1hh

int main() {
  using namespace l1hh;
  std::printf("Accuracy battery: Definition 1 contract over trials\n");

  const uint64_t m = 60000;
  const double eps = 0.02, phi = 0.08;
  const int trials = 8;

  bench::PrintHeader(
      "Zipf-alpha sweep, Algorithm 1 vs Algorithm 2 (eps=.02 phi=.08)",
      {"alpha*100", "alg1 rec", "alg1 prec", "alg1 err", "alg2 rec",
       "alg2 prec", "alg2 err"});
  for (const double alpha : {0.8, 1.0, 1.2, 1.5}) {
    const auto b1 = RunBattery(
        eps, phi, m, alpha,
        [&](uint64_t seed) {
          BdwSimple::Options o;
          o.epsilon = eps;
          o.phi = phi;
          o.universe_size = uint64_t{1} << 24;
          o.stream_length = m;
          return BdwSimple(o, seed);
        },
        [](const BdwSimple& s) { return s.Report(); }, trials,
        static_cast<uint64_t>(alpha * 1000));
    const auto b2 = RunBattery(
        eps, phi, m, alpha,
        [&](uint64_t seed) {
          BdwOptimal::Options o;
          o.epsilon = eps;
          o.phi = phi;
          o.universe_size = uint64_t{1} << 24;
          o.stream_length = m;
          return BdwOptimal(o, seed);
        },
        [](const BdwOptimal& s) { return s.Report(); }, trials,
        static_cast<uint64_t>(alpha * 2000));
    bench::PrintRow({alpha * 100, b1.recall, b1.precision, b1.max_err_eps,
                     b2.recall, b2.precision, b2.max_err_eps});
  }
  bench::PrintNote("recall/precision should be ~1.0 (delta=0.1 failure "
                   "budget); err in eps*m units should be <= ~1");

  bench::PrintHeader(
      "adversarial order sweep, Algorithm 2 (planted 2phi & phi heavies)",
      {"order", "recall", "precision", "err"});
  const char* names[] = {"shuffled", "first", "last", "bursty"};
  int oi = 0;
  for (const StreamOrder order :
       {StreamOrder::kShuffled, StreamOrder::kHeaviesFirst,
        StreamOrder::kHeaviesLast, StreamOrder::kBursty}) {
    int must = 0, got = 0;
    double max_err = 0;
    for (int t = 0; t < trials; ++t) {
      PlantedSpec spec{{2 * phi, phi}, uint64_t{1} << 24, m};
      spec.order = order;
      const PlantedStream s = MakePlantedStream(spec, 5000 + t);
      BdwOptimal::Options o;
      o.epsilon = eps;
      o.phi = phi;
      o.universe_size = uint64_t{1} << 24;
      o.stream_length = m;
      BdwOptimal sketch(o, 6000 + t);
      ExactCounter exact;
      for (const uint64_t x : s.items) {
        sketch.Insert(x);
        exact.Insert(x);
      }
      std::unordered_set<uint64_t> rep;
      for (const auto& hh : sketch.Report()) {
        rep.insert(hh.item);
        max_err = std::max(
            max_err,
            std::abs(hh.estimated_count -
                     static_cast<double>(exact.Count(hh.item))) /
                (eps * static_cast<double>(m)));
      }
      for (const uint64_t id : s.planted_ids) {
        ++must;
        if (rep.count(id) != 0) ++got;
      }
    }
    std::printf("%16s", names[oi++]);
    bench::PrintRow({static_cast<double>(got) / must, 1.0, max_err});
  }
  bench::PrintNote("the guarantees are order-oblivious: all rows alike");
  return 0;
}
