// Lemma 1 / Proposition 2 substrate bench: the O(log log m)-bit sampler
// and the Morris counter behind every "log log m" in Table 1.
//
// Reports (a) the coin-flip sampler's state size and randomness budget as
// the target probability 1/m shrinks, (b) Morris accuracy vs ensemble size
// k (Theorem 7 uses k = 2 log2(log2 m / delta)).
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "count/morris_counter.h"
#include "sampling/coin_flip_sampler.h"
#include "sampling/geometric_skip.h"
#include "util/random.h"

int main() {
  using namespace l1hh;
  std::printf("Lemma 1 sampler + Morris counter substrates\n");

  bench::PrintHeader("sampler state vs target probability 1/m",
                     {"log2 m", "state bits", "loglog m", "words/trial"});
  for (const int log_m : {8, 16, 24, 32, 48, 62}) {
    const auto s = CoinFlipSampler::FromExponent(log_m);
    Rng rng(1);
    const uint64_t w0 = rng.words_drawn();
    for (int i = 0; i < 1000; ++i) s.Sample(rng);
    bench::PrintRow({static_cast<double>(log_m),
                     static_cast<double>(s.SpaceBits()),
                     std::log2(static_cast<double>(log_m)),
                     static_cast<double>(rng.words_drawn() - w0) / 1000.0});
  }
  bench::PrintNote("state = the exponent only: Theta(log log m) bits, "
                   "matching Proposition 2's optimality");

  bench::PrintHeader("Morris ensemble relative error vs k (m=2^20)",
                     {"k", "mean rel err %", "state bits"});
  for (const int k : {1, 2, 4, 8, 16}) {
    const uint64_t m = uint64_t{1} << 20;
    double err = 0;
    int bits = 0;
    const int trials = 10;
    for (int t = 0; t < trials; ++t) {
      MorrisCounterEnsemble e(k, 2.0, 100 + t);
      for (uint64_t i = 0; i < m; ++i) e.Increment();
      err += std::abs(e.Estimate() - static_cast<double>(m)) /
             static_cast<double>(m);
      bits = e.SpaceBits();
    }
    bench::PrintRow({static_cast<double>(k), 100.0 * err / trials,
                     static_cast<double>(bits)});
  }
  bench::PrintNote("error ~ 1/sqrt(2k); Theorem 7 needs only a constant "
                   "factor, i.e. k ~ 2 log2(log2 m / delta)");

  bench::PrintHeader("geometric-skip sampler: work per stream item",
                     {"1/p", "rng words/item"});
  for (const int inv_p : {16, 256, 4096, 65536}) {
    Rng rng(7);
    auto s = GeometricSkipSampler::FromProbability(1.0 / inv_p, rng);
    const uint64_t w0 = rng.words_drawn();
    const int n = 1 << 20;
    for (int i = 0; i < n; ++i) s.Offer(rng);
    bench::PrintRow({static_cast<double>(inv_p),
                     static_cast<double>(rng.words_drawn() - w0) /
                         static_cast<double>(n)});
  }
  bench::PrintNote("O(1) worst-case updates: rarer samples mean LESS "
                   "randomness per item, not more");
  return 0;
}
