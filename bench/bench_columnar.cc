// Columnar ingest throughput: the three single-thread routes per
// algorithm, the engine's per-item scatter vs partition-pass routes, and
// the grouped (per-key) scalar vs columnar routes.
//
//   ./bench_columnar [m] [alpha]       (defaults: 2^20 items, 1.1)
//
// Columns are ns/item (min of 3 alternating reps).  What each section
// claims:
//
//   * summaries — `column` must at least match `batch`; algorithms with a
//     native UpdateColumn (count_min's tiled hash pre-pass) should beat
//     it, the loop-forwarding overrides should tie it.
//   * routing kernels — the two producer-side dispatch strategies in
//     isolation (no worker threads, hand-off to a sink buffer): per-item
//     staged scatter exactly as ScatterPush does it (Mix64 then a
//     modulo by the RUNTIME shard count, staging push_back, bulk
//     hand-off at drain_batch) vs the partition pass exactly as
//     PartitionPush does it (Mix64 sweep with the hoisted power-of-two
//     mask, histogram -> prefix-sum -> scatter per 8K tile, one
//     contiguous hand-off per shard).  This is the headline number: the
//     partition pass keeps the 64-bit divide out of the hot loop and
//     replaces per-item staging bookkeeping with sequential sweeps.
//   * engine — the same two routes through the LIVE engine (UpdateBatch
//     vs UpdateColumn, ingest + flush).  On a single-core container the
//     workers timeshare the producer's core, so this wall-clock is
//     apply-bound and shows only a few percent between routes; on real
//     hardware the producer is the bottleneck for cheap summaries and
//     the routing-kernel gap is what scales.
//   * grouped — GroupedSummary::UpdateColumn's run detection on a
//     group-clustered column vs the scalar Update(group, item) loop.
//
// docs/GROUPED.md quotes this bench's numbers; re-run after touching the
// hot paths.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <cstdlib>
#include <string>
#include <vector>

#include "engine/sharded_engine.h"
#include "util/random.h"
#include "group/grouped_summary.h"
#include "stream/stream_generator.h"
#include "summary/summary.h"

namespace {

using namespace l1hh;

using Clock = std::chrono::steady_clock;

double NsPerItem(const Clock::time_point& start, const Clock::time_point& end,
                 size_t items) {
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
                 .count()) /
         static_cast<double>(items == 0 ? 1 : items);
}

template <typename Body>
double TimeOnce(size_t items, Body&& body) {
  const auto start = Clock::now();
  body();
  return NsPerItem(start, Clock::now(), items);
}

template <typename Body>
double MinOf3(size_t items, Body&& body) {
  double best = TimeOnce(items, body);
  for (int rep = 1; rep < 3; ++rep) best = std::min(best, TimeOnce(items, body));
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t m = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                              : uint64_t{1} << 20;
  const double alpha = argc > 2 ? std::atof(argv[2]) : 1.1;
  const uint64_t n = uint64_t{1} << 22;

  SummaryOptions options;
  options.epsilon = 0.005;
  options.phi = 0.02;
  options.delta = 0.05;
  options.universe_size = n;
  options.stream_length = m;
  options.seed = 42;

  const auto stream = MakeZipfStream(n, alpha, m, /*seed=*/3);
  std::printf("columnar ingest: zipf(%.2f), n=2^22, m=%llu\n", alpha,
              static_cast<unsigned long long>(m));
  std::printf("(all columns ns/item, min of 3 alternating reps)\n\n");

  // ---- Single-thread routes per algorithm ------------------------------
  std::printf("%-20s %10s %10s %10s %9s\n", "algorithm", "scalar", "batch",
              "column", "col/batch");
  for (const auto& name : RegisteredSummaryNames()) {
    const double scalar_ns = MinOf3(stream.size(), [&] {
      auto s = MakeSummary(name, options);
      for (const uint64_t x : stream) s->Update(x);
    });
    const double batch_ns = MinOf3(stream.size(), [&] {
      auto s = MakeSummary(name, options);
      s->UpdateBatch(stream);
    });
    const double column_ns = MinOf3(stream.size(), [&] {
      auto s = MakeSummary(name, options);
      s->UpdateColumn(stream.data(), stream.size());
    });
    std::printf("%-20s %10.1f %10.1f %10.1f %8.2fx\n", name.c_str(),
                scalar_ns, batch_ns, column_ns, batch_ns / column_ns);
  }

  // ---- Routing kernels: producer-side dispatch in isolation ------------
  // Mirrors of ShardedEngine::ScatterPush and Producer::PartitionPush
  // with the ring hand-off replaced by a sink memcpy, so the comparison
  // measures the routing work itself free of worker-thread contention.
  {
    const size_t num_shards = 4;
    // Defeat constant folding: ScatterPush's modulo divides by the
    // runtime shard count, and so must the mirrored baseline.
    volatile size_t runtime_shards = num_shards;
    const size_t k = runtime_shards;
    std::vector<uint64_t> sink(stream.size());
    const double staged_ns = MinOf3(stream.size(), [&] {
      std::vector<std::vector<uint64_t>> staging(k);
      for (auto& s : staging) s.reserve(1024);
      size_t out = 0;
      for (const uint64_t item : stream) {
        const size_t s = Mix64(item) % k;
        staging[s].push_back(item);
        if (staging[s].size() >= 1024) {
          std::memcpy(sink.data() + out, staging[s].data(), 1024 * 8);
          out += 1024;
          staging[s].clear();
        }
      }
      for (auto& s : staging) {
        std::memcpy(sink.data() + out, s.data(), s.size() * 8);
        out += s.size();
        s.clear();
      }
    });
    const double partition_ns = MinOf3(stream.size(), [&] {
      constexpr size_t kTile = 8192;
      const uint64_t mask = k - 1;  // k is a power of two here
      std::vector<uint32_t> ids(kTile);
      std::vector<uint64_t> scratch(kTile);
      std::vector<size_t> starts(k + 1), cursors(k);
      size_t out = 0;
      for (size_t base = 0; base < stream.size(); base += kTile) {
        const size_t take = std::min(kTile, stream.size() - base);
        std::fill(starts.begin(), starts.end(), 0);
        for (size_t i = 0; i < take; ++i) {
          const auto s = static_cast<uint32_t>(Mix64(stream[base + i]) & mask);
          ids[i] = s;
          ++starts[s + 1];
        }
        for (size_t s = 1; s <= k; ++s) starts[s] += starts[s - 1];
        for (size_t s = 0; s < k; ++s) cursors[s] = starts[s];
        for (size_t i = 0; i < take; ++i) {
          scratch[cursors[ids[i]]++] = stream[base + i];
        }
        for (size_t s = 0; s < k; ++s) {
          std::memcpy(sink.data() + out, scratch.data() + starts[s],
                      (starts[s + 1] - starts[s]) * 8);
          out += starts[s + 1] - starts[s];
        }
      }
    });
    std::printf("\nrouting kernels, K=4 (producer-side dispatch only, no "
                "workers):\n");
    std::printf("  per-item staged scatter %8.2f ns/item\n", staged_ns);
    std::printf("  partition pass          %8.2f ns/item  (%.2fx)\n",
                partition_ns, staged_ns / partition_ns);
  }

  // ---- Engine routes: per-item scatter vs partition pass ---------------
  std::printf("\nengine K=4 (ingest + flush): per-item scatter (UpdateBatch) "
              "vs partition pass (UpdateColumn)\n");
  std::printf("%-20s %10s %10s %9s\n", "algorithm", "per-item", "partition",
              "speedup");
  for (const char* name : {"misra_gries", "space_saving", "count_min",
                           "bdw_optimal"}) {
    ShardedEngineOptions engine_options;
    engine_options.algorithm = name;
    engine_options.summary = options;
    engine_options.num_shards = 4;
    const double scatter_ns = MinOf3(stream.size(), [&] {
      auto engine = ShardedEngine::Create(engine_options);
      engine->UpdateBatch(stream);
      engine->Flush();
    });
    const double partition_ns = MinOf3(stream.size(), [&] {
      auto engine = ShardedEngine::Create(engine_options);
      engine->UpdateColumn(stream.data(), stream.size());
      engine->Flush();
    });
    std::printf("%-20s %10.1f %10.1f %8.2fx\n", name, scatter_ns,
                partition_ns, scatter_ns / partition_ns);
  }

  // ---- Grouped routes --------------------------------------------------
  // A group-clustered column (each tenant's rows arrive in runs of 64, the
  // shape a columnar scan of a sorted/partitioned table produces): run
  // detection pays one table lookup per run instead of per row.
  constexpr uint64_t kTenants = 32;
  std::vector<uint64_t> groups(stream.size());
  for (size_t i = 0; i < stream.size(); ++i) {
    groups[i] = (i / 64) % kTenants;
  }
  std::printf("\ngrouped (%llu tenants, runs of 64): scalar Update vs "
              "columnar run detection\n",
              static_cast<unsigned long long>(kTenants));
  std::printf("%-20s %10s %10s %9s\n", "algorithm", "scalar", "column",
              "speedup");
  for (const char* name : {"space_saving", "count_min"}) {
    GroupedSummaryOptions grouped_options;
    grouped_options.algorithm = name;
    grouped_options.summary = options;
    const double scalar_ns = MinOf3(stream.size(), [&] {
      auto g = GroupedSummary::Create(grouped_options);
      for (size_t i = 0; i < stream.size(); ++i) {
        g->Update(groups[i], stream[i]);
      }
    });
    const double column_ns = MinOf3(stream.size(), [&] {
      auto g = GroupedSummary::Create(grouped_options);
      g->UpdateColumn(groups.data(), stream.data(), stream.size());
    });
    std::printf("%-20s %10.1f %10.1f %8.2fx\n", name, scalar_ns, column_ns,
                scalar_ns / column_ns);
  }
  return 0;
}
