// Update-time microbenchmarks (google-benchmark).
//
// The paper claims O(1) worst-case update for its algorithms (Section
// 3.1): non-sampled items cost a single skip decrement, and sampled-item
// work is spread.  These benchmarks measure per-insert latency for the
// paper's algorithms and every baseline on identical Zipf streams, plus
// reporting time.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/bdw_optimal.h"
#include "core/bdw_simple.h"
#include "core/epsilon_maximum.h"
#include "core/epsilon_minimum.h"
#include "stream/stream_generator.h"
#include "summary/count_min_sketch.h"
#include "summary/count_sketch.h"
#include "summary/lossy_counting.h"
#include "summary/misra_gries.h"
#include "summary/space_saving.h"
#include "summary/sticky_sampling.h"

namespace l1hh {
namespace {

constexpr uint64_t kUniverse = uint64_t{1} << 24;
constexpr uint64_t kStreamLen = uint64_t{1} << 18;

const std::vector<uint64_t>& SharedStream() {
  static const std::vector<uint64_t> stream =
      MakeZipfStream(kUniverse, 1.1, kStreamLen, 42);
  return stream;
}

void BM_BdwSimpleInsert(benchmark::State& state) {
  const auto& stream = SharedStream();
  BdwSimple::Options opt;
  opt.epsilon = 1.0 / state.range(0);
  opt.phi = 0.1;
  opt.universe_size = kUniverse;
  opt.stream_length = kStreamLen * 64;  // realistic sampling rate
  BdwSimple sketch(opt, 1);
  size_t i = 0;
  for (auto _ : state) {
    sketch.Insert(stream[i]);
    i = (i + 1) % stream.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BdwSimpleInsert)->Arg(16)->Arg(64)->Arg(256);

void BM_BdwOptimalInsert(benchmark::State& state) {
  const auto& stream = SharedStream();
  BdwOptimal::Options opt;
  opt.epsilon = 1.0 / state.range(0);
  opt.phi = 0.1;
  opt.universe_size = kUniverse;
  opt.stream_length = kStreamLen * 64;
  BdwOptimal sketch(opt, 2);
  size_t i = 0;
  for (auto _ : state) {
    sketch.Insert(stream[i]);
    i = (i + 1) % stream.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BdwOptimalInsert)->Arg(16)->Arg(64)->Arg(256);

void BM_EpsilonMaximumInsert(benchmark::State& state) {
  const auto& stream = SharedStream();
  EpsilonMaximum::Options opt;
  opt.epsilon = 1.0 / state.range(0);
  opt.universe_size = kUniverse;
  opt.stream_length = kStreamLen * 64;
  EpsilonMaximum sketch(opt, 3);
  size_t i = 0;
  for (auto _ : state) {
    sketch.Insert(stream[i]);
    i = (i + 1) % stream.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EpsilonMaximumInsert)->Arg(64);

void BM_EpsilonMinimumInsert(benchmark::State& state) {
  EpsilonMinimum::Options opt;
  opt.epsilon = 1.0 / state.range(0);
  opt.universe_size = static_cast<uint64_t>(state.range(0) / 2);
  opt.stream_length = kStreamLen * 64;
  EpsilonMinimum sketch(opt, 4);
  Rng rng(5);
  const uint64_t n = opt.universe_size;
  std::vector<uint64_t> stream(1 << 16);
  for (auto& x : stream) x = rng.UniformU64(n);
  size_t i = 0;
  for (auto _ : state) {
    sketch.Insert(stream[i]);
    i = (i + 1) % stream.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EpsilonMinimumInsert)->Arg(64);

void BM_MisraGriesInsert(benchmark::State& state) {
  const auto& stream = SharedStream();
  MisraGries mg(static_cast<size_t>(state.range(0)), 24);
  size_t i = 0;
  for (auto _ : state) {
    mg.Insert(stream[i]);
    i = (i + 1) % stream.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MisraGriesInsert)->Arg(16)->Arg(64)->Arg(256);

void BM_SpaceSavingInsert(benchmark::State& state) {
  const auto& stream = SharedStream();
  SpaceSaving ss(static_cast<size_t>(state.range(0)), 24);
  size_t i = 0;
  for (auto _ : state) {
    ss.Insert(stream[i]);
    i = (i + 1) % stream.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpaceSavingInsert)->Arg(64);

void BM_CountMinInsert(benchmark::State& state) {
  const auto& stream = SharedStream();
  CountMinSketch cms(CountMinSketch::Options{1024, 4, false}, 6);
  size_t i = 0;
  for (auto _ : state) {
    cms.Insert(stream[i]);
    i = (i + 1) % stream.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CountMinInsert);

void BM_CountSketchInsert(benchmark::State& state) {
  const auto& stream = SharedStream();
  CountSketch cs(1024, 5, 7);
  size_t i = 0;
  for (auto _ : state) {
    cs.Insert(stream[i]);
    i = (i + 1) % stream.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CountSketchInsert);

void BM_LossyCountingInsert(benchmark::State& state) {
  const auto& stream = SharedStream();
  LossyCounting lc(0.01, 24);
  size_t i = 0;
  for (auto _ : state) {
    lc.Insert(stream[i]);
    i = (i + 1) % stream.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LossyCountingInsert);

void BM_StickySamplingInsert(benchmark::State& state) {
  const auto& stream = SharedStream();
  StickySampling st(0.01, 0.05, 0.1, 8, 24);
  size_t i = 0;
  for (auto _ : state) {
    st.Insert(stream[i]);
    i = (i + 1) % stream.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StickySamplingInsert);

void BM_BdwOptimalReport(benchmark::State& state) {
  const auto& stream = SharedStream();
  BdwOptimal::Options opt;
  opt.epsilon = 0.02;
  opt.phi = 0.1;
  opt.universe_size = kUniverse;
  opt.stream_length = kStreamLen;
  BdwOptimal sketch(opt, 9);
  for (const uint64_t x : stream) sketch.Insert(x);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sketch.Report());
  }
}
BENCHMARK(BM_BdwOptimalReport);

void BM_BdwSimpleReport(benchmark::State& state) {
  const auto& stream = SharedStream();
  BdwSimple::Options opt;
  opt.epsilon = 0.02;
  opt.phi = 0.1;
  opt.universe_size = kUniverse;
  opt.stream_length = kStreamLen;
  BdwSimple sketch(opt, 10);
  for (const uint64_t x : stream) sketch.Insert(x);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sketch.Report());
  }
}
BENCHMARK(BM_BdwSimpleReport);

}  // namespace
}  // namespace l1hh
