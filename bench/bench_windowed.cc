// Sliding-window cost model: what rotation and the merged-view query cost
// as the bucket count B varies, for a representative set of mergeable
// structures.
//
//   ./bench_windowed [m] [window]     (defaults: 2^20 items, 2^18 window)
//
// Three measurements per (algorithm, B):
//   * ingest ns/item — includes every rotation (one bucket construction
//     + eviction per W/B items), vs the unwindowed baseline column, so
//     the amortized rotation overhead is directly visible;
//   * rotate us     — mean wall-clock of one Rotate() in isolation
//     (evict + fresh bucket construction), the latency spike a boundary
//     inserts into an ingestion pipeline;
//   * query us      — HeavyHitters(phi) on a COLD merged-view cache
//     (the worst case: B-1 bucket merges + the report), which is the
//     number the invalidate-on-rotate cache protects repeated queries
//     from; a warm query is a cache hit and costs the report alone.
//
// Expectation, confirmed by the table: ingest cost is flat in B (rotation
// amortizes away), rotation cost is flat (one bucket construction), and
// cold-query cost grows roughly linearly in B (B bucket merges) — which
// is the B tradeoff: finer buckets = smaller eps + 1/B slack but costlier
// cold queries.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "stream/stream_generator.h"
#include "summary/summary.h"
#include "window/sliding_window_summary.h"

namespace {

using namespace l1hh;

constexpr double kPhi = 0.05;

double NsPerItem(const std::chrono::steady_clock::time_point& start,
                 const std::chrono::steady_clock::time_point& end,
                 size_t items) {
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(end -
                                                                  start)
                 .count()) /
         static_cast<double>(items == 0 ? 1 : items);
}

SummaryOptions MakeOptions(uint64_t m, uint64_t window, uint64_t buckets) {
  SummaryOptions options;
  options.epsilon = 0.01;
  options.phi = kPhi;
  options.universe_size = uint64_t{1} << 24;
  options.stream_length = m;
  options.seed = 3;
  options.window_size = window;
  options.window_buckets = buckets;
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t m = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                              : uint64_t{1} << 20;
  const uint64_t window = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                   : uint64_t{1} << 18;
  const auto stream =
      MakeZipfStream(uint64_t{1} << 24, 1.1, m, /*seed=*/3);
  std::printf("windowed ingestion/rotation/query cost vs bucket count\n"
              "m=%llu window=%llu zipf(1.1) eps=0.01 phi=%.2f\n",
              static_cast<unsigned long long>(m),
              static_cast<unsigned long long>(window), kPhi);

  const std::vector<std::string> algorithms = {
      "misra_gries", "space_saving", "count_min", "bdw_optimal"};
  const std::vector<uint64_t> bucket_counts = {4, 8, 16, 32, 64};

  for (const auto& name : algorithms) {
    bench::PrintHeader("windowed:" + name,
                       {"buckets", "base ns/it", "ingest ns/it",
                        "rotate us", "query us", "reported"});
    // Unwindowed baseline: the same structure over the same stream.
    const SummaryOptions base_options = MakeOptions(m, window, 8);
    double base_ns = 0;
    {
      auto baseline = MakeSummary(name, base_options);
      const auto start = std::chrono::steady_clock::now();
      baseline->UpdateBatch(stream);
      base_ns = NsPerItem(start, std::chrono::steady_clock::now(),
                          stream.size());
    }
    for (const uint64_t buckets : bucket_counts) {
      const SummaryOptions options = MakeOptions(m, window, buckets);
      auto summary = MakeSummary("windowed:" + name, options);
      if (summary == nullptr) continue;
      const auto ingest_start = std::chrono::steady_clock::now();
      summary->UpdateBatch(stream);
      const double ingest_ns = NsPerItem(
          ingest_start, std::chrono::steady_clock::now(), stream.size());

      auto* ring = dynamic_cast<SlidingWindowSummary*>(summary.get());
      // Isolated rotation latency: rotate a few times on a warm ring.
      constexpr int kRotations = 8;
      const auto rotate_start = std::chrono::steady_clock::now();
      for (int i = 0; i < kRotations; ++i) ring->Rotate();
      const double rotate_us =
          NsPerItem(rotate_start, std::chrono::steady_clock::now(),
                    kRotations) /
          1000.0;

      // Cold query: one Update invalidates the merged-view cache, so the
      // HeavyHitters call pays the full B-bucket merge.
      summary->Update(stream[0]);
      const auto query_start = std::chrono::steady_clock::now();
      const auto report = summary->HeavyHitters(kPhi);
      const double query_us =
          static_cast<double>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - query_start)
                  .count()) /
          1000.0;

      bench::PrintRow({static_cast<double>(buckets), base_ns, ingest_ns,
                       rotate_us, query_us,
                       static_cast<double>(report.size())});
    }
  }
  bench::PrintNote(
      "base = unwindowed structure over the same stream; ingest includes "
      "all rotations.");
  bench::PrintNote(
      "query is a COLD merged-view cache (B bucket merges); warm queries "
      "are cache hits.");
  return 0;
}
