// Section 4 lower bounds, executed.
//
// Each communication game runs the paper's reduction end to end; the table
// reports success rates (must meet the reduction's stated probability) and
// Alice's exact message sizes next to the Omega(.) formulas they are
// subject to.  The lower bounds say NO algorithm can beat these shapes —
// our sketches' serialized sizes are the upper-bound side of the same
// coin.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "comm/greater_than_game.h"
#include "comm/indexing_game.h"
#include "comm/maximin_game.h"
#include "comm/perm_game.h"

int main() {
  using namespace l1hh;
  std::printf("Section 4: lower-bound reductions, executed\n");

  // Theorem 9: Omega(eps^-1 log phi^-1) for heavy hitters.
  bench::PrintHeader(
      "Thm 9: Indexing -> (eps,phi)-HH (phi=0.25, m=1e5, 8 trials)",
      {"1/eps", "success", "msg bits", "eps^-1*log(1/phi)"});
  for (const int inv_eps : {10, 20, 40}) {
    HeavyHittersIndexingParams p;
    p.epsilon = 1.0 / inv_eps;
    p.phi = 0.25;
    p.stream_length = 100000;
    const GameStats s = RepeatGame(RunHeavyHittersIndexingGame, p, 8,
                                   77 + inv_eps);
    bench::PrintRow({static_cast<double>(inv_eps), s.success_rate(),
                     static_cast<double>(s.message_bits),
                     inv_eps * std::log2(4.0)});
  }

  // Theorem 10: Omega(eps^-1 log eps^-1) for eps-Maximum.
  bench::PrintHeader("Thm 10: Indexing -> eps-Maximum (m=1e5, 8 trials)",
                     {"1/eps", "success", "msg bits", "eps^-1*log(1/eps)"});
  for (const int inv_eps : {8, 16, 32}) {
    MaximumIndexingParams p;
    p.epsilon = 1.0 / inv_eps;
    p.stream_length = 100000;
    const GameStats s =
        RepeatGame(RunMaximumIndexingGame, p, 8, 99 + inv_eps);
    bench::PrintRow({static_cast<double>(inv_eps), s.success_rate(),
                     static_cast<double>(s.message_bits),
                     inv_eps * std::log2(static_cast<double>(inv_eps))});
  }

  // Theorem 11: Omega(eps^-1) for eps-Minimum.
  bench::PrintHeader("Thm 11: Indexing_2 -> eps-Minimum (10 trials)",
                     {"1/eps", "success", "msg bits", "5/eps"});
  for (const int inv_eps : {5, 10, 20, 40}) {
    MinimumIndexingParams p;
    p.epsilon = 1.0 / inv_eps;
    const GameStats s =
        RepeatGame(RunMinimumIndexingGame, p, 10, 111 + inv_eps);
    bench::PrintRow({static_cast<double>(inv_eps), s.success_rate(),
                     static_cast<double>(s.message_bits),
                     5.0 * inv_eps});
  }

  // Theorem 12: Omega(n log(1/eps)) for eps-Borda.
  bench::PrintHeader("Thm 12: eps-Perm -> eps-Borda (blocks=8, 6 trials)",
                     {"n", "success", "msg bits", "n*log(blocks)"});
  for (const uint32_t n : {32, 64, 128, 256}) {
    PermGameParams p;
    p.n = n;
    p.blocks = 8;
    GameStats s;
    for (int t = 0; t < 6; ++t) {
      const GameResult r = RunPermGame(p, 131 + n + t);
      ++s.trials;
      if (r.success) ++s.successes;
      s.message_bits = r.message_bits;
    }
    bench::PrintRow({static_cast<double>(n), s.success_rate(),
                     static_cast<double>(s.message_bits),
                     n * std::log2(8.0)});
  }

  // Theorem 13: Omega(n eps^-2) for eps-Maximin.
  bench::PrintHeader("Thm 13: Indexing -> eps-Maximin (n=32, 12 trials)",
                     {"gamma", "success", "msg bits", "n*gamma"});
  for (const uint32_t gamma : {64, 128, 256}) {
    MaximinGameParams p;
    p.n = 32;
    p.gamma = gamma;
    GameStats s;
    for (int t = 0; t < 12; ++t) {
      const GameResult r = RunMaximinGame(p, 151 + gamma + t);
      ++s.trials;
      if (r.success) ++s.successes;
      s.message_bits = r.message_bits;
    }
    bench::PrintRow({static_cast<double>(gamma), s.success_rate(),
                     static_cast<double>(s.message_bits),
                     32.0 * gamma});
  }

  // Theorem 14: Omega(log log m), universe of size 2.
  bench::PrintHeader("Thm 14: Greater-than (universe {0,1}, 10 trials)",
                     {"max exp", "success", "msg bits"});
  for (const int max_e : {8, 12, 16}) {
    GreaterThanParams p;
    p.max_exponent = max_e;
    GameStats s;
    for (int t = 0; t < 10; ++t) {
      const GameResult r = RunGreaterThanGame(p, 171 + max_e + t);
      ++s.trials;
      if (r.success) ++s.successes;
      s.message_bits = r.message_bits;
    }
    bench::PrintRow({static_cast<double>(max_e), s.success_rate(),
                     static_cast<double>(s.message_bits)});
  }
  bench::PrintNote("success rates meet the reductions' stated constants; "
                   "message bits track the Omega(.) columns' growth");
  return 0;
}
