// Theorems 7-8: unknown stream length.
//
// The bench feeds streams of growing length through the Morris-driven
// two-instance wrapper and reports: space vs the known-m sketch on the
// same stream, the number of live instances (must be <= 2), and the
// Morris estimate quality — the log log m machinery made visible.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "core/bdw_simple.h"
#include "core/unknown_length.h"
#include "stream/stream_generator.h"

namespace l1hh {
namespace {

BdwSimple::Options Base(double eps, double phi, uint64_t m) {
  BdwSimple::Options opt;
  opt.epsilon = eps;
  opt.phi = phi;
  opt.delta = 0.1;
  opt.universe_size = uint64_t{1} << 24;
  opt.stream_length = m;
  return opt;
}

}  // namespace
}  // namespace l1hh

int main() {
  using namespace l1hh;
  std::printf("Theorem 7: unknown stream length via Morris + 2 instances\n");

  const double eps = 0.1, phi = 0.3;
  bench::PrintHeader("m sweep (eps=0.1, phi=0.3, heavy item at 50%)",
                     {"log2 m", "unk bits", "known bits", "instances",
                      "morris/m", "found"});
  for (const int log_m : {12, 14, 16, 18, 20}) {
    const uint64_t m = uint64_t{1} << log_m;
    auto unknown = MakeUnknownLengthListHeavyHitters(Base(eps, phi, 0),
                                                     uint64_t{1} << 22,
                                                     100 + log_m);
    BdwSimple known(Base(eps, phi, m), 200 + log_m);
    Rng rng(300 + log_m);
    for (uint64_t i = 0; i < m; ++i) {
      const uint64_t x =
          (rng.NextU64() & 1) != 0 ? 7 : 100 + rng.UniformU64(10000);
      unknown.Insert(x);
      known.Insert(x);
    }
    bool found = false;
    for (const auto& hh : unknown.Reporter().Report()) {
      if (hh.item == 7) found = true;
    }
    bench::PrintRow({static_cast<double>(log_m),
                     static_cast<double>(unknown.SpaceBits()),
                     static_cast<double>(known.SpaceBits()),
                     static_cast<double>(unknown.live_instances()),
                     unknown.EstimatedLength() / static_cast<double>(m),
                     found ? 1.0 : 0.0});
  }
  bench::PrintNote("unk/known ratio is a constant (two instances + "
                   "oversampling); morris/m within [1/4, 4] per Theorem 7");

  bench::PrintHeader("Morris counter state vs m (the loglog m term itself)",
                     {"log2 m", "morris bits", "loglog m"});
  for (const int log_m : {10, 14, 18, 22, 26}) {
    const uint64_t m = uint64_t{1} << log_m;
    auto morris = MorrisCounterEnsemble::ForStream(m, 0.1, 42);
    const uint64_t steps = std::min<uint64_t>(m, uint64_t{1} << 22);
    for (uint64_t i = 0; i < steps; ++i) morris.Increment();
    bench::PrintRow({static_cast<double>(log_m),
                     static_cast<double>(morris.SpaceBits()),
                     std::log2(static_cast<double>(log_m))});
  }
  return 0;
}
