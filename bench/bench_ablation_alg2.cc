// Ablation study for Algorithm 2's design choices (DESIGN.md §2/core).
//
// Algorithm 2 has four coupled knobs the paper fixes at proof-friendly
// values: the sample budget (l = c_sample/eps^2), the hash width
// (c_rows/eps rows), the repetition count (c_rep log(12/phi) medians), and
// the epoch scale (where the shared accelerated-counter schedule starts
// decimating).  This bench isolates each knob: estimate error (in eps*m
// units, mean over trials of the worst heavy-hitter error) and space side
// by side, plus the price of sharding: K-way shard-then-merge vs a single
// instance (shards sit lower on the epoch schedule, so their counting
// probabilities lag and the merged estimator's variance grows with K).
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_util.h"
#include "core/bdw_optimal.h"
#include "stream/stream_generator.h"
#include "summary/exact_counter.h"

namespace l1hh {
namespace {

struct AblationResult {
  double mean_err_eps;  // worst per-trial heavy error, averaged, / eps*m
  double space_bits;
  double contract_failures;  // fraction of trials violating Definition 1
};

/// Ingest the stream into `shards` same-seed instances (hash-partitioned
/// like the engine) and merge them; shards == 1 is the plain single run.
AblationResult Run(const Constants& constants, int trials, uint64_t seed,
                   size_t shards = 1) {
  const double eps = 0.02, phi = 0.1;
  const uint64_t m = 50000;
  AblationResult out{0, 0, 0};
  for (int t = 0; t < trials; ++t) {
    const PlantedSpec spec{{2 * phi, phi}, uint64_t{1} << 24, m};
    const PlantedStream s = MakePlantedStream(spec, seed + t);
    BdwOptimal::Options opt;
    opt.epsilon = eps;
    opt.phi = phi;
    opt.universe_size = uint64_t{1} << 24;
    opt.stream_length = m;
    opt.constants = constants;
    std::vector<BdwOptimal> parts;
    for (size_t k = 0; k < shards; ++k) {
      parts.emplace_back(opt, seed + 100 + t);
    }
    ExactCounter exact;
    for (const uint64_t x : s.items) {
      parts[static_cast<size_t>(Mix64(x) % shards)].Insert(x);
      exact.Insert(x);
    }
    BdwOptimal& sketch = parts[0];
    for (size_t k = 1; k < shards; ++k) {
      const Status st = sketch.MergeFrom(parts[k]);
      if (!st.ok()) {
        std::fprintf(stderr, "merge failed: %s\n", st.ToString().c_str());
        std::exit(1);
      }
    }
    double worst = 0;
    bool violated = false;
    int found = 0;
    for (const auto& hh : sketch.Report()) {
      const double truth = static_cast<double>(exact.Count(hh.item));
      worst = std::max(worst, std::abs(hh.estimated_count - truth));
      if (truth <= (phi - eps) * m) violated = true;
      if (hh.item == s.planted_ids[0] || hh.item == s.planted_ids[1]) {
        ++found;
      }
      if (std::abs(hh.estimated_count - truth) > eps * m) violated = true;
    }
    if (found < 2) violated = true;
    out.mean_err_eps += worst / (eps * m);
    out.space_bits += static_cast<double>(sketch.SpaceBits());
    out.contract_failures += violated ? 1 : 0;
  }
  out.mean_err_eps /= trials;
  out.space_bits /= trials;
  out.contract_failures /= trials;
  return out;
}

}  // namespace
}  // namespace l1hh

int main() {
  using namespace l1hh;
  const int trials = 6;
  std::printf("Algorithm 2 ablations (eps=0.02 phi=0.1 m=5e4, planted "
              "2phi & phi heavies, %d trials/row)\n", trials);

  bench::PrintHeader("sample budget: l = c/eps^2",
                     {"c_sample", "err/eps*m", "space", "violations"});
  for (const double c : {25.0, 50.0, 150.0, 400.0}) {
    Constants k = Constants::Practical();
    k.opt_sample_factor = c;
    const auto r = Run(k, trials, 1000 + static_cast<uint64_t>(c));
    bench::PrintRow({c, r.mean_err_eps, r.space_bits, r.contract_failures});
  }
  bench::PrintNote("error ~ 1/sqrt(c_sample); space grows with the sample "
                   "only through counter contents");

  bench::PrintHeader("hash width: c_rows/eps rows per repetition",
                     {"c_rows", "err/eps*m", "space", "violations"});
  for (const double c : {2.0, 4.0, 8.0, 16.0}) {
    Constants k = Constants::Practical();
    k.opt_rows_factor = c;
    const auto r = Run(k, trials, 2000 + static_cast<uint64_t>(c));
    bench::PrintRow({c, r.mean_err_eps, r.space_bits, r.contract_failures});
  }
  bench::PrintNote("narrow tables collide heavy ids (positive bias); wide "
                   "tables pay space linearly");

  bench::PrintHeader("repetitions: R = max(5, c_rep log2(12/phi)) | 1",
                     {"c_rep", "err/eps*m", "space", "violations"});
  for (const double c : {1.0, 2.0, 3.0, 6.0}) {
    Constants k = Constants::Practical();
    k.opt_rep_factor = c;
    const auto r = Run(k, trials, 3000 + static_cast<uint64_t>(c));
    bench::PrintRow({c, r.mean_err_eps, r.space_bits, r.contract_failures});
  }
  bench::PrintNote("the median over R repetitions buys failure "
                   "probability, linearly in space");

  bench::PrintHeader(
      "epoch scale: decimation starts at eps*phi*samples ~ scale",
      {"scale", "err/eps*m", "space", "violations"});
  for (const double c : {4.0, 8.0, 32.0, 128.0}) {
    Constants k = Constants::Practical();
    k.opt_epoch_scale = c;
    const auto r = Run(k, trials, 4000 + static_cast<uint64_t>(c));
    bench::PrintRow({c, r.mean_err_eps, r.space_bits, r.contract_failures});
  }
  bench::PrintNote("early decimation (small scale) saves counter bits but "
                   "raises variance; the paper's 1000 is very conservative");

  bench::PrintHeader(
      "shard-then-merge: K same-seed instances, epoch-reconciled merge",
      {"K", "err/eps*m", "space", "violations"});
  for (const size_t shards : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    const auto r = Run(Constants::Practical(), trials,
                       5000 + static_cast<uint64_t>(shards), shards);
    bench::PrintRow({static_cast<double>(shards), r.mean_err_eps,
                     r.space_bits, r.contract_failures});
  }
  bench::PrintNote("each shard's schedule lags the global sample position "
                   "by ~log2(K) epochs, so shards count at lower "
                   "probabilities: the merged T3 is sparser (less space) "
                   "and the estimator's variance grows mildly with K");
  return 0;
}
