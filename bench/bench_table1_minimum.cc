// Table 1, row 3: eps-Minimum.
//
// Paper bound: O(eps^-1 log log(1/(eps delta)) + log log m) bits
// (Theorem 4) against Omega(eps^-1 + log log m) (Theorem 11).  Running an
// (eps, eps)-heavy-hitters algorithm instead would cost
// Omega(eps^-1 log eps^-1) — the bench shows our dedicated structure stays
// below that shape, and that the report branch logic returns items within
// eps*m of the true minimum.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "core/epsilon_minimum.h"
#include "summary/exact_counter.h"
#include "util/random.h"

namespace l1hh {
namespace {

double PaperFormula(double eps, double delta, uint64_t m) {
  return (1.0 / eps) * std::log2(std::log2(6.0 / (eps * delta))) +
         std::log2(std::log2(static_cast<double>(m)));
}

double HeavyHitterAlternative(double eps, uint64_t m) {
  // (eps, eps)-heavy hitters would cost ~eps^-1 log eps^-1 + loglog m.
  return (1.0 / eps) * std::log2(1.0 / eps) +
         std::log2(std::log2(static_cast<double>(m)));
}

}  // namespace
}  // namespace l1hh

int main() {
  using namespace l1hh;
  std::printf("Table 1 row 3: eps-Minimum — space (bits) and accuracy\n");
  std::printf("paper: eps^-1 loglog(1/(eps delta)) + loglog m  vs  lower "
              "bound eps^-1 + loglog m\n");

  const uint64_t m = uint64_t{1} << 20;
  bench::PrintHeader(
      "eps sweep (universe = 0.8/eps, m=2^20, skewed)",
      {"1/eps", "ours", "paper~", "hh-alt~", "branch", "err/eps*m"});
  for (const int inv_eps : {8, 16, 32, 64, 128}) {
    const double eps = 1.0 / inv_eps;
    const uint64_t n = static_cast<uint64_t>(0.8 / eps) + 2;
    EpsilonMinimum::Options opt;
    opt.epsilon = eps;
    opt.delta = 0.1;
    opt.universe_size = n;
    opt.stream_length = m;
    EpsilonMinimum sketch(opt, 100 + inv_eps);
    ExactCounter exact;
    Rng rng(200 + inv_eps);
    for (uint64_t i = 0; i < m; ++i) {
      // Skewed over the small universe; item 0 rare but present.
      const uint64_t x =
          rng.UniformU64(1000) < 2 ? 0 : 1 + rng.UniformU64(n - 1);
      sketch.Insert(x);
      exact.Insert(x);
    }
    const auto r = sketch.Report();
    const double truth = static_cast<double>(exact.MinOverUniverse(n).count);
    const double mine = static_cast<double>(exact.Count(r.item));
    bench::PrintRow({static_cast<double>(inv_eps),
                     static_cast<double>(sketch.SpaceBits()),
                     PaperFormula(eps, 0.1, m),
                     HeavyHitterAlternative(eps, m),
                     static_cast<double>(static_cast<int>(r.branch)),
                     (mine - truth) / (eps * static_cast<double>(m))});
  }
  bench::PrintNote("branch: 0=large-universe 1=unsampled 2=fewdistinct "
                   "3=truncated; err<=1 means the contract held");

  bench::PrintHeader("m sweep (eps=1/32): the loglog m term",
                     {"log2 m", "ours", "paper~"});
  for (const int log_m : {12, 16, 20, 24}) {
    const uint64_t mm = uint64_t{1} << log_m;
    const double eps = 1.0 / 32;
    const uint64_t n = static_cast<uint64_t>(0.8 / eps) + 2;
    EpsilonMinimum::Options opt;
    opt.epsilon = eps;
    opt.universe_size = n;
    opt.stream_length = mm;
    EpsilonMinimum sketch(opt, 300 + log_m);
    Rng rng(400 + log_m);
    const uint64_t len = std::min<uint64_t>(mm, 1 << 20);
    for (uint64_t i = 0; i < len; ++i) {
      sketch.Insert(1 + rng.UniformU64(n - 1));
    }
    bench::PrintRow({static_cast<double>(log_m),
                     static_cast<double>(sketch.SpaceBits()),
                     PaperFormula(eps, 0.1, mm)});
  }
  bench::PrintNote("space moves only through the truncation cap and "
                   "sampler exponents — doubly logarithmic in m");
  return 0;
}
