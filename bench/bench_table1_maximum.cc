// Table 1, row 2: eps-Maximum / l_infinity approximation (IITK Q3).
//
// Paper bound: Theta(eps^-1 log eps^-1 + log n + log log m) bits
// (Theorem 3); the previous best was Omega(eps^-1 log n).  The bench
// measures our sketch's space against the formula and against the
// "eps^-1 log n" prior-art shape (Misra-Gries storing raw ids), plus the
// additive-eps*m accuracy contract.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "core/epsilon_maximum.h"
#include "stream/stream_generator.h"
#include "summary/exact_counter.h"
#include "summary/misra_gries.h"

namespace l1hh {
namespace {

double PaperFormula(double eps, uint64_t n, uint64_t m) {
  return (1.0 / eps) * std::log2(1.0 / eps) +
         std::log2(static_cast<double>(n)) +
         std::log2(std::log2(static_cast<double>(m)));
}

double PriorFormula(double eps, uint64_t n) {
  return (1.0 / eps) * std::log2(static_cast<double>(n));
}

}  // namespace
}  // namespace l1hh

int main() {
  using namespace l1hh;
  std::printf("Table 1 row 2: eps-Maximum — space (bits) and accuracy\n");
  std::printf("paper bound: eps^-1 log(1/eps) + log n + loglog m\n");
  std::printf("prior art:   eps^-1 log n\n");

  const uint64_t n = uint64_t{1} << 26;
  const uint64_t m = uint64_t{1} << 20;

  bench::PrintHeader(
      "eps sweep (n=2^26, m=2^20, Zipf 1.2)",
      {"1/eps", "ours", "MG(ids)", "paper~", "prior~", "err/eps*m"});
  for (const int inv_eps : {16, 32, 64, 128, 256}) {
    const double eps = 1.0 / inv_eps;
    const auto stream = MakeZipfStream(n, 1.2, m, 100 + inv_eps);

    EpsilonMaximum::Options opt;
    opt.epsilon = eps;
    opt.universe_size = n;
    opt.stream_length = m;
    EpsilonMaximum sketch(opt, 200 + inv_eps);
    MisraGries mg(static_cast<size_t>(1.0 / eps), UniverseBits(n));
    ExactCounter exact;
    for (const uint64_t x : stream) {
      sketch.Insert(x);
      mg.Insert(x);
      exact.Insert(x);
    }
    const double err =
        std::abs(sketch.EstimateMaxCount() -
                 static_cast<double>(exact.Max().count));
    bench::PrintRow({static_cast<double>(inv_eps),
                     static_cast<double>(sketch.SpaceBits()),
                     static_cast<double>(mg.SpaceBits()),
                     PaperFormula(eps, n, m), PriorFormula(eps, n),
                     err / (eps * static_cast<double>(m))});
  }
  bench::PrintNote("err/eps*m <= 1 means the additive contract held; "
                   "ours grows ~eps^-1 log(1/eps), prior ~eps^-1 log n");

  bench::PrintHeader("n sweep (eps=1/64, m=2^20)",
                     {"log2 n", "ours", "MG(ids)", "paper~", "prior~"});
  for (const int log_n : {12, 16, 20, 26, 32}) {
    const uint64_t nn = uint64_t{1} << log_n;
    const double eps = 1.0 / 64;
    const auto stream = MakeZipfStream(nn, 1.2, m, 300 + log_n);
    EpsilonMaximum::Options opt;
    opt.epsilon = eps;
    opt.universe_size = nn;
    opt.stream_length = m;
    EpsilonMaximum sketch(opt, 400 + log_n);
    MisraGries mg(static_cast<size_t>(1.0 / eps), UniverseBits(nn));
    for (const uint64_t x : stream) {
      sketch.Insert(x);
      mg.Insert(x);
    }
    bench::PrintRow({static_cast<double>(log_n),
                     static_cast<double>(sketch.SpaceBits()),
                     static_cast<double>(mg.SpaceBits()),
                     PaperFormula(eps, nn, m), PriorFormula(eps, nn)});
  }
  bench::PrintNote("ours pays log n ONCE (the tracked id); the prior-art "
                   "shape pays it per counter");
  return 0;
}
