// Shared helpers for the Table 1 reproduction benches.
//
// Every bench binary prints self-describing fixed-width tables: one row per
// parameter setting, with measured space/accuracy next to the paper's
// formula evaluated at the same parameters, so EXPERIMENTS.md can quote the
// output verbatim.
//
// The unified comparison harness lives in src/summary/evaluation.h
// (l1hh::RunRegisteredSummary): it drives any algorithm registered in the
// Summary factory over a stream and scores the report against exact
// ground truth, so the comparative benches — and `l1hh_cli run` — sweep
// algorithms by name through one code path.
#ifndef L1HH_BENCH_BENCH_UTIL_H_
#define L1HH_BENCH_BENCH_UTIL_H_

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "summary/evaluation.h"

namespace l1hh::bench {

inline void PrintHeader(const std::string& title,
                        const std::vector<std::string>& columns) {
  std::printf("\n== %s ==\n", title.c_str());
  for (const auto& c : columns) std::printf("%16s", c.c_str());
  std::printf("\n");
  for (size_t i = 0; i < columns.size(); ++i) std::printf("%16s", "----");
  std::printf("\n");
}

inline void PrintCell(double v) {
  if (v == static_cast<int64_t>(v) && std::abs(v) < 1e15) {
    std::printf("%16lld", static_cast<long long>(v));
  } else {
    std::printf("%16.3f", v);
  }
}

inline void PrintRow(const std::vector<double>& cells) {
  for (const double v : cells) PrintCell(v);
  std::printf("\n");
}

inline void PrintNote(const std::string& note) {
  std::printf("   %s\n", note.c_str());
}

}  // namespace l1hh::bench

#endif  // L1HH_BENCH_BENCH_UTIL_H_
