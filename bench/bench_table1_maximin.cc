// Table 1, row 5: eps-Maximin.
//
// Paper bound: O(n eps^-2 log^2 n + log log m) (Theorem 6) against
// Omega(n (eps^-2 + log n) + log log m) (Theorem 13).  The headline: heavy
// hitters under maximin are polynomially MORE expensive than under Borda —
// the eps^-2 factor multiplies n.  The bench sweeps n and eps and prints
// maximin space next to Borda space on the same streams.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "core/borda.h"
#include "core/maximin.h"
#include "stream/vote_generator.h"
#include "votes/election.h"

namespace l1hh {
namespace {

double PaperFormula(double eps, uint32_t n, uint64_t m) {
  const double logn = std::log2(static_cast<double>(n));
  return static_cast<double>(n) / (eps * eps) * logn * logn +
         std::log2(std::log2(static_cast<double>(m)));
}

double LowerFormula(double eps, uint32_t n) {
  return static_cast<double>(n) * (1.0 / (eps * eps) +
                                   std::log2(static_cast<double>(n)));
}

}  // namespace
}  // namespace l1hh

int main() {
  using namespace l1hh;
  std::printf("Table 1 row 5: eps-Maximin — space (bits) and accuracy\n");
  std::printf("paper: n eps^-2 log^2 n (upper), n(eps^-2 + log n) (lower)\n");

  const uint64_t m = 30000;

  bench::PrintHeader(
      "n sweep (eps=0.2, m=3e4)",
      {"n", "maximin", "borda", "upper~", "lower~", "err/eps*m"});
  for (const uint32_t n : {8, 16, 32, 64}) {
    const double eps = 0.2;
    StreamingMaximin::Options opt;
    opt.epsilon = eps;
    opt.num_candidates = n;
    opt.stream_length = m;
    StreamingMaximin sketch(opt, 100 + n);

    StreamingBorda::Options bopt;
    bopt.epsilon = eps;
    bopt.num_candidates = n;
    bopt.stream_length = m;
    StreamingBorda borda(bopt, 150 + n);

    Election exact(n);
    const auto votes = MakeMallowsVotes(n, m, 0.85, 200 + n);
    for (const auto& v : votes) {
      sketch.InsertVote(v);
      borda.InsertVote(v);
      exact.AddVote(v);
    }
    const auto est = sketch.Scores();
    const auto truth = exact.MaximinScores();
    double worst = 0;
    for (uint32_t c = 0; c < n; ++c) {
      worst = std::max(worst,
                       std::abs(est[c] - static_cast<double>(truth[c])));
    }
    bench::PrintRow({static_cast<double>(n),
                     static_cast<double>(sketch.SpaceBits()),
                     static_cast<double>(borda.SpaceBits()),
                     PaperFormula(eps, n, m), LowerFormula(eps, n),
                     worst / (eps * static_cast<double>(m))});
  }
  bench::PrintNote("maximin must STORE votes (n log n bits each, eps^-2 of "
                   "them); Borda needs only n counters — the paper's gap");

  bench::PrintHeader("eps sweep (n=16, m=3e4)",
                     {"1/eps", "maximin", "borda", "upper~", "err/eps*m"});
  for (const int inv_eps : {4, 6, 8, 12}) {
    const double eps = 1.0 / inv_eps;
    const uint32_t n = 16;
    StreamingMaximin::Options opt;
    opt.epsilon = eps;
    opt.num_candidates = n;
    opt.stream_length = m;
    StreamingMaximin sketch(opt, 300 + inv_eps);
    StreamingBorda::Options bopt;
    bopt.epsilon = eps;
    bopt.num_candidates = n;
    bopt.stream_length = m;
    StreamingBorda borda(bopt, 350 + inv_eps);
    Election exact(n);
    const auto votes = MakeMallowsVotes(n, m, 0.85, 400 + inv_eps);
    for (const auto& v : votes) {
      sketch.InsertVote(v);
      borda.InsertVote(v);
      exact.AddVote(v);
    }
    const auto est = sketch.Scores();
    const auto truth = exact.MaximinScores();
    double worst = 0;
    for (uint32_t c = 0; c < n; ++c) {
      worst = std::max(worst,
                       std::abs(est[c] - static_cast<double>(truth[c])));
    }
    bench::PrintRow({static_cast<double>(inv_eps),
                     static_cast<double>(sketch.SpaceBits()),
                     static_cast<double>(borda.SpaceBits()),
                     PaperFormula(eps, n, m),
                     worst / (eps * static_cast<double>(m))});
  }
  bench::PrintNote("maximin space grows ~eps^-2 (stored sample size); "
                   "Borda's counters barely move (log eps^-1 widths)");
  return 0;
}
