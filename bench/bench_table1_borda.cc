// Table 1, row 4: eps-Borda.
//
// Paper bound: Theta(n (log eps^-1 + log n) + log log m) bits (Theorem 5 /
// Theorem 12).  The bench sweeps n and eps, prints measured space next to
// the formula, verifies every candidate's Borda score lands within
// eps*m*n, and contrasts with the naive "store exact pairwise matrix"
// cost of n^2 log m bits.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "core/borda.h"
#include "stream/vote_generator.h"
#include "votes/election.h"

namespace l1hh {
namespace {

double PaperFormula(double eps, uint32_t n, uint64_t m) {
  return static_cast<double>(n) *
             (std::log2(1.0 / eps) + std::log2(static_cast<double>(n))) +
         std::log2(std::log2(static_cast<double>(m)));
}

double NaiveMatrixFormula(uint32_t n, uint64_t m) {
  return static_cast<double>(n) * n * std::log2(static_cast<double>(m));
}

double MaxScoreError(const StreamingBorda& sketch, const Election& exact) {
  const auto est = sketch.Scores();
  const auto truth = exact.BordaScores();
  double worst = 0;
  for (uint32_t c = 0; c < est.size(); ++c) {
    worst = std::max(worst,
                     std::abs(est[c] - static_cast<double>(truth[c])));
  }
  return worst;
}

}  // namespace
}  // namespace l1hh

int main() {
  using namespace l1hh;
  std::printf("Table 1 row 4: eps-Borda — space (bits) and accuracy\n");
  std::printf("paper: n(log(1/eps) + log n) + loglog m\n");

  const uint64_t m = 50000;

  bench::PrintHeader("n sweep (eps=0.05, m=5e4, Mallows 0.8)",
                     {"n", "ours", "paper~", "naive-n^2~", "err/eps*m*n"});
  for (const uint32_t n : {8, 16, 32, 64, 128}) {
    const double eps = 0.05;
    StreamingBorda::Options opt;
    opt.epsilon = eps;
    opt.num_candidates = n;
    opt.stream_length = m;
    StreamingBorda sketch(opt, 100 + n);
    Election exact(n);
    const auto votes = MakeMallowsVotes(n, m, 0.8, 200 + n);
    for (const auto& v : votes) {
      sketch.InsertVote(v);
      exact.AddVote(v);
    }
    bench::PrintRow({static_cast<double>(n),
                     static_cast<double>(sketch.SpaceBits()),
                     PaperFormula(eps, n, m), NaiveMatrixFormula(n, m),
                     MaxScoreError(sketch, exact) /
                         (eps * static_cast<double>(m) * n)});
  }
  bench::PrintNote("err <= 1: all n scores simultaneously within eps*m*n");

  bench::PrintHeader("eps sweep (n=32, m=5e4)",
                     {"1/eps", "ours", "paper~", "err/eps*m*n"});
  for (const int inv_eps : {8, 16, 32, 64}) {
    const double eps = 1.0 / inv_eps;
    const uint32_t n = 32;
    StreamingBorda::Options opt;
    opt.epsilon = eps;
    opt.num_candidates = n;
    opt.stream_length = m;
    StreamingBorda sketch(opt, 300 + inv_eps);
    Election exact(n);
    const auto votes = MakeMallowsVotes(n, m, 0.8, 400 + inv_eps);
    for (const auto& v : votes) {
      sketch.InsertVote(v);
      exact.AddVote(v);
    }
    bench::PrintRow({static_cast<double>(inv_eps),
                     static_cast<double>(sketch.SpaceBits()),
                     PaperFormula(eps, n, m),
                     MaxScoreError(sketch, exact) /
                         (eps * static_cast<double>(m) * n)});
  }
  bench::PrintNote("space grows only logarithmically in 1/eps (counter "
                   "widths), exactly the n log(1/eps) term");
  return 0;
}
