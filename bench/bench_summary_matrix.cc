// The unified comparison matrix: every algorithm registered in the
// Summary factory, driven over identical Zipf streams through the single
// RunRegisteredSummary harness in bench_util.h.
//
// One row per (algorithm, workload) cell: recall / precision against the
// Definition 1 contract, worst estimate error in eps*m units, memory, and
// mean per-update latency.  This is the bench the Summary interface
// exists for — adding an algorithm to the registry adds its rows here
// with zero bench code.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "io/snapshot.h"
#include "stream/stream_generator.h"
#include "summary/summary.h"

int main() {
  using namespace l1hh;
  using namespace l1hh::bench;

  const double eps = 0.01;
  const double phi = 0.05;
  const uint64_t n = uint64_t{1} << 24;

  std::printf("Summary matrix: all registered algorithms, eps=%.3f "
              "phi=%.3f n=2^24\n",
              eps, phi);

  for (const double alpha : {1.05, 1.3}) {
    for (const uint64_t m : {uint64_t{1} << 17, uint64_t{1} << 20}) {
      const auto stream = MakeZipfStream(n, alpha, m, /*seed=*/42);
      char title[128];
      std::snprintf(title, sizeof(title), "zipf(%.2f), m=%llu", alpha,
                    static_cast<unsigned long long>(m));
      PrintHeader(title, {"algorithm", "recall", "precision", "max_err",
                          "KB", "ns/update"});
      for (const std::string& name : RegisteredSummaryNames()) {
        SummaryOptions opt;
        opt.epsilon = eps;
        opt.phi = phi;
        opt.universe_size = n;
        opt.stream_length = m;
        opt.seed = 7;
        const auto r = RunRegisteredSummary(name, opt, stream, phi);
        std::printf("%16s", name.c_str());
        PrintRow({r.recall, r.precision,
                  r.max_abs_err / (eps * static_cast<double>(m)),
                  static_cast<double>(r.memory_bytes) / 1024.0,
                  r.update_ns});
      }
      PrintNote("max_err in eps*m units; recall vs f > phi*m, precision "
                "vs f >= (phi-eps)*m");
    }
  }

  // ---- Snapshot sizes at the paper's headline operating point ----------
  // What the space-optimality claim looks like ON THE WIRE: the actual
  // persisted bit-size (src/io/snapshot.h) next to the in-memory
  // paper-style accounting (SpaceBits) and the Theorem 2 shape
  // eps^-1 log2(1/phi) + phi^-1 log2(n) + log2 log2 m evaluated with unit
  // constants.  docs/SNAPSHOTS.md quotes this table.
  {
    const uint64_t m = uint64_t{1} << 20;
    const auto stream = MakeZipfStream(n, 1.1, m, /*seed=*/42);
    const double theory_bits = (1.0 / eps) * std::log2(1.0 / phi) +
                               (1.0 / phi) * std::log2(static_cast<double>(n)) +
                               std::log2(std::log2(static_cast<double>(m)));
    PrintHeader("snapshot bytes vs memory vs Theorem 2 shape "
                "(eps=0.01 phi=0.05, zipf(1.1), m=2^20)",
                {"algorithm", "payload_B", "file_B", "memory_B",
                 "theory_B", "payld/mem"});
    for (const std::string& name : RegisteredSummaryNames()) {
      SummaryOptions opt;
      opt.epsilon = eps;
      opt.phi = phi;
      opt.universe_size = n;
      opt.stream_length = m;
      opt.seed = 7;
      auto summary = MakeSummary(name, opt);
      summary->UpdateBatch(stream);
      std::vector<uint8_t> bytes;
      if (!SaveSummary(*summary, &bytes).ok()) continue;
      SnapshotInfo info;
      if (!ReadSnapshotInfo(bytes, &info).ok()) continue;
      const double payload_bytes =
          static_cast<double>(info.payload_bits) / 8.0;
      const double memory_bytes =
          static_cast<double>(summary->MemoryUsageBytes());
      std::printf("%16s", name.c_str());
      PrintRow({payload_bytes, static_cast<double>(bytes.size()),
                memory_bytes, theory_bits / 8.0,
                payload_bytes / memory_bytes});
    }
    PrintNote("payload_B = SaveTo bit payload / 8; file_B adds the "
              "container (header + CRC); memory_B = SpaceBits-derived "
              "MemoryUsageBytes; theory_B = Theorem 2 shape, unit "
              "constants (exact is unbounded by design)");
  }
  return 0;
}
