// The unified comparison matrix: every algorithm registered in the
// Summary factory, driven over identical Zipf streams through the single
// RunRegisteredSummary harness in bench_util.h.
//
// One row per (algorithm, workload) cell: recall / precision against the
// Definition 1 contract, worst estimate error in eps*m units, memory, and
// mean per-update latency.  This is the bench the Summary interface
// exists for — adding an algorithm to the registry adds its rows here
// with zero bench code.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "stream/stream_generator.h"
#include "summary/summary.h"

int main() {
  using namespace l1hh;
  using namespace l1hh::bench;

  const double eps = 0.01;
  const double phi = 0.05;
  const uint64_t n = uint64_t{1} << 24;

  std::printf("Summary matrix: all registered algorithms, eps=%.3f "
              "phi=%.3f n=2^24\n",
              eps, phi);

  for (const double alpha : {1.05, 1.3}) {
    for (const uint64_t m : {uint64_t{1} << 17, uint64_t{1} << 20}) {
      const auto stream = MakeZipfStream(n, alpha, m, /*seed=*/42);
      char title[128];
      std::snprintf(title, sizeof(title), "zipf(%.2f), m=%llu", alpha,
                    static_cast<unsigned long long>(m));
      PrintHeader(title, {"algorithm", "recall", "precision", "max_err",
                          "KB", "ns/update"});
      for (const std::string& name : RegisteredSummaryNames()) {
        SummaryOptions opt;
        opt.epsilon = eps;
        opt.phi = phi;
        opt.universe_size = n;
        opt.stream_length = m;
        opt.seed = 7;
        const auto r = RunRegisteredSummary(name, opt, stream, phi);
        std::printf("%16s", name.c_str());
        PrintRow({r.recall, r.precision,
                  r.max_abs_err / (eps * static_cast<double>(m)),
                  static_cast<double>(r.memory_bytes) / 1024.0,
                  r.update_ns});
      }
      PrintNote("max_err in eps*m units; recall vs f > phi*m, precision "
                "vs f >= (phi-eps)*m");
    }
  }
  return 0;
}
