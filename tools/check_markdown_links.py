#!/usr/bin/env python3
"""Intra-repo markdown link checker (CI docs job; see .github/workflows).

Scans the user-facing docs (README.md, ROADMAP.md, docs/*.md) for inline
markdown links `[text](target)` and fails when

  * a relative file target does not exist in the repository, or
  * a `#fragment` (bare or on a .md target) does not match any header's
    GitHub-style anchor slug in the target file.

External links (http/https/mailto) are deliberately NOT fetched — the
job must be hermetic and offline-safe.  Usage:

  python3 tools/check_markdown_links.py [repo_root]

Exit code 0 when every link resolves, 1 otherwise (each dangling link is
reported on stderr as file:line: message).
"""

import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"\[[^\]]*\]\(([^()\s]+(?:\([^()]*\))?)\)")
HEADER_RE = re.compile(r"^(#{1,6})\s+(.*)$")
EXTERNAL = ("http://", "https://", "mailto:")


def slugify(header: str) -> str:
    """GitHub's anchor slug: lowercase, drop punctuation, spaces->hyphens."""
    text = header.strip().replace("`", "")
    # Drop markdown links/emphasis inside headers: keep the visible text.
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)
    text = text.lower()
    out = []
    for ch in text:
        if ch.isalnum() or ch in "_-":
            out.append(ch)
        elif ch == " ":
            out.append("-")
        # every other character (punctuation, em-dashes, ...) is dropped
    return "".join(out)


def anchors_of(path: Path) -> set:
    anchors = set()
    in_code_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if line.lstrip().startswith("```"):
            in_code_fence = not in_code_fence
            continue
        if in_code_fence:
            continue
        m = HEADER_RE.match(line)
        if m:
            anchors.add(slugify(m.group(2)))
    return anchors


def check_file(md: Path, root: Path, anchor_cache: dict) -> list:
    errors = []
    in_code_fence = False
    for lineno, line in enumerate(
            md.read_text(encoding="utf-8").splitlines(), start=1):
        if line.lstrip().startswith("```"):
            in_code_fence = not in_code_fence
            continue
        if in_code_fence:
            continue
        for m in LINK_RE.finditer(line):
            target = m.group(1)
            if target.startswith(EXTERNAL):
                continue
            path_part, _, fragment = target.partition("#")
            if path_part:
                resolved = (md.parent / path_part).resolve()
                if not resolved.exists():
                    errors.append(f"{md.relative_to(root)}:{lineno}: "
                                  f"dangling link target '{target}'")
                    continue
            else:
                resolved = md.resolve()
            if fragment and resolved.suffix == ".md":
                if resolved not in anchor_cache:
                    anchor_cache[resolved] = anchors_of(resolved)
                if fragment.lower() not in anchor_cache[resolved]:
                    errors.append(
                        f"{md.relative_to(root)}:{lineno}: anchor "
                        f"'#{fragment}' not found in "
                        f"{resolved.relative_to(root)}")
    return errors


def main() -> int:
    root = Path(sys.argv[1] if len(sys.argv) > 1 else ".").resolve()
    files = [root / "README.md", root / "ROADMAP.md"]
    files += sorted((root / "docs").glob("*.md"))
    files = [f for f in files if f.exists()]
    if not files:
        print("check_markdown_links: no markdown files found", file=sys.stderr)
        return 1

    anchor_cache = {}
    errors = []
    for md in files:
        errors += check_file(md, root, anchor_cache)
    for e in errors:
        print(e, file=sys.stderr)
    print(f"check_markdown_links: {len(files)} files, "
          f"{len(errors)} dangling link(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
