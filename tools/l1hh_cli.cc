// l1hh_cli — command-line front end for the library.
//
// Algorithms are selected by registry name (see `l1hh_cli list`); every
// structure behind the unified l1hh::Summary interface is available.
//
//   l1hh_cli list                             # registered algorithm names
//   l1hh_cli generate --kind=zipf --alpha=1.1 --n=16777216 --m=1000000
//       [--seed=1]                            # one item id per line, stdout
//   l1hh_cli run --algo=bdw_optimal [--epsilon=0.01 --phi=0.05 ...]
//                                             # self-generated Zipf stream,
//                                             # reports HH + recall vs truth
//   l1hh_cli run --algo=misra_gries --shards=4 [--threads=2]
//                                             # same run through the sharded
//                                             # parallel engine (src/engine/)
//   l1hh_cli heavy --algo=misra_gries --m=<length> [--phi=...]
//                                             # reads ids from stdin
//   l1hh_cli max --epsilon=0.01 --m=<length>  # approximate maximum
//   l1hh_cli min --epsilon=0.05 --n=<universe> --m=<length>
//
// Flags accept both `--key=value` and `--key value`.  Legacy names
// (optimal, simple, mg, spacesaving) are accepted as --algo aliases.
// `l1hh_cli --algo=<name>` with no command is shorthand for `run`.
// With no arguments at all, runs a self-contained demo.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/epsilon_maximum.h"
#include "core/epsilon_minimum.h"
#include "stream/stream_generator.h"
#include "summary/evaluation.h"
#include "summary/summary.h"

namespace {

using namespace l1hh;

struct Args {
  std::string command;
  std::string kind = "zipf";
  std::string algorithm = "bdw_optimal";
  double alpha = 1.1;
  double epsilon = 0.01;
  double phi = 0.05;
  double delta = 0.05;
  uint64_t n = uint64_t{1} << 24;
  // 0 = "not given": stdin-reading commands fall back to the piped stream's
  // length; generate/run fall back to kDefaultM.
  uint64_t m = 0;
  uint64_t seed = 1;
  // Sharded-engine knobs for `run`: shards=1 runs the summary directly;
  // shards>1 ingests through ShardedEngine (threads=0 -> one per shard).
  uint64_t shards = 1;
  uint64_t threads = 0;
};

constexpr uint64_t kDefaultM = 1 << 20;

std::string CanonicalAlgoName(const std::string& name) {
  if (name == "optimal") return "bdw_optimal";
  if (name == "simple") return "bdw_simple";
  if (name == "mg") return "misra_gries";
  if (name == "spacesaving") return "space_saving";
  return name;
}

bool Parse(int argc, char** argv, Args* out) {
  int i = 1;
  if (i < argc && argv[i][0] != '-') {
    out->command = argv[i];
    ++i;
  }
  for (; i < argc; ++i) {
    std::string key = argv[i];
    std::string value;
    const size_t eq = key.find('=');
    if (eq != std::string::npos) {
      value = key.substr(eq + 1);
      key = key.substr(0, eq);
    } else {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flag %s needs a value\n", key.c_str());
        return false;
      }
      value = argv[++i];
    }
    if (value.empty()) {
      std::fprintf(stderr, "flag %s needs a non-empty value\n", key.c_str());
      return false;
    }
    if (key == "--kind") {
      out->kind = value;
    } else if (key == "--algo" || key == "--algorithm") {
      out->algorithm = CanonicalAlgoName(value);
    } else if (key == "--alpha") {
      out->alpha = std::atof(value.c_str());
    } else if (key == "--epsilon") {
      out->epsilon = std::atof(value.c_str());
    } else if (key == "--phi") {
      out->phi = std::atof(value.c_str());
    } else if (key == "--delta") {
      out->delta = std::atof(value.c_str());
    } else if (key == "--n") {
      out->n = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "--m") {
      out->m = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "--seed") {
      out->seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "--shards") {
      out->shards = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "--threads") {
      out->threads = std::strtoull(value.c_str(), nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", key.c_str());
      return false;
    }
  }
  if (out->epsilon <= 0 || out->phi <= 0 || out->delta <= 0) {
    std::fprintf(stderr, "--epsilon, --phi, and --delta must be > 0\n");
    return false;
  }
  if (out->shards == 0) {
    std::fprintf(stderr, "--shards must be >= 1\n");
    return false;
  }
  return true;
}

std::vector<uint64_t> ReadStdinItems() {
  std::vector<uint64_t> items;
  char line[64];
  while (std::fgets(line, sizeof(line), stdin) != nullptr) {
    if (line[0] == '\n' || line[0] == '#') continue;
    items.push_back(std::strtoull(line, nullptr, 10));
  }
  return items;
}

SummaryOptions ToSummaryOptions(const Args& a, uint64_t stream_length) {
  SummaryOptions opt;
  opt.epsilon = a.epsilon;
  opt.phi = a.phi;
  opt.delta = a.delta;
  opt.universe_size = a.n;
  opt.stream_length = stream_length;
  opt.seed = a.seed;
  return opt;
}

int CmdList() {
  for (const auto& name : RegisteredSummaryNames()) {
    std::printf("%s\n", name.c_str());
  }
  return 0;
}

int CmdGenerate(const Args& a) {
  const uint64_t m = a.m != 0 ? a.m : kDefaultM;
  std::vector<uint64_t> stream;
  if (a.kind == "zipf") {
    stream = MakeZipfStream(a.n, a.alpha, m, a.seed);
  } else if (a.kind == "uniform") {
    stream = MakeUniformStream(a.n, m, a.seed);
  } else {
    std::fprintf(stderr, "unknown --kind %s (zipf|uniform)\n",
                 a.kind.c_str());
    return 2;
  }
  for (const uint64_t x : stream) {
    std::printf("%llu\n", static_cast<unsigned long long>(x));
  }
  return 0;
}

/// Drives one registered summary over `items` and prints its report.
int CmdHeavy(const Args& a, const std::vector<uint64_t>& items) {
  const uint64_t m = a.m != 0 ? a.m : items.size();
  auto summary = MakeSummary(a.algorithm, ToSummaryOptions(a, m));
  if (summary == nullptr) {
    std::fprintf(stderr, "unknown --algo %s; try `l1hh_cli list`\n",
                 a.algorithm.c_str());
    return 2;
  }
  summary->UpdateBatch(items);
  const auto hitters = summary->HeavyHitters(a.phi);
  std::printf("# %s: %zu heavy hitters at phi=%.3f over m=%llu "
              "(%zu bytes)\n",
              a.algorithm.c_str(), hitters.size(), a.phi,
              static_cast<unsigned long long>(m),
              summary->MemoryUsageBytes());
  for (const auto& hh : hitters) {
    std::printf("%-20s %12llu %14.0f %8.2f%%\n", a.algorithm.c_str(),
                static_cast<unsigned long long>(hh.item), hh.estimate,
                100.0 * hh.estimate / static_cast<double>(m));
  }
  return 0;
}

/// Self-contained accuracy run: generates the stream and scores the
/// report against exact ground truth via the shared evaluation harness.
int CmdRun(const Args& a) {
  const uint64_t m_arg = a.m != 0 ? a.m : kDefaultM;
  const auto stream = MakeZipfStream(a.n, a.alpha, m_arg, a.seed);
  const SummaryOptions options = ToSummaryOptions(a, stream.size());
  const SummaryRunResult r =
      a.shards > 1 ? RunShardedSummary(a.algorithm, options, stream, a.phi,
                                       a.shards, a.threads)
                   : RunRegisteredSummary(a.algorithm, options, stream,
                                          a.phi);
  if (!r.ok) {
    std::fprintf(stderr, "%s; try `l1hh_cli list`\n", r.error.c_str());
    return 2;
  }
  std::printf("algo=%s  zipf(alpha=%.2f)  n=%llu  m=%llu  eps=%.3f  "
              "phi=%.3f  seed=%llu\n",
              a.algorithm.c_str(), a.alpha,
              static_cast<unsigned long long>(a.n),
              static_cast<unsigned long long>(m_arg), a.epsilon, a.phi,
              static_cast<unsigned long long>(a.seed));
  if (a.shards > 1) {
    std::printf("engine: %llu shards, %llu threads (0 = one per shard), "
                "%.1f ns/item end-to-end\n",
                static_cast<unsigned long long>(a.shards),
                static_cast<unsigned long long>(a.threads), r.update_ns);
  }
  std::printf("%-24s %14s %14s %9s\n", "item", "estimate", "exact", "err");
  for (size_t i = 0; i < r.report.size(); ++i) {
    const double f = static_cast<double>(r.report_exact[i]);
    std::printf("%-24llu %14.0f %14.0f %8.2f%%\n",
                static_cast<unsigned long long>(r.report[i].item),
                r.report[i].estimate, f,
                f > 0 ? 100.0 * (r.report[i].estimate - f) / f : 0.0);
  }
  std::printf("true phi-heavy items: %zu   recalled: %zu   reported: %zu   "
              "memory: %zu bytes\n",
              r.true_heavies, r.recalled, r.report.size(), r.memory_bytes);
  return r.recalled == r.true_heavies ? 0 : 1;
}

int CmdMax(const Args& a, const std::vector<uint64_t>& items) {
  EpsilonMaximum::Options opt;
  opt.epsilon = a.epsilon;
  opt.delta = a.delta;
  opt.universe_size = a.n;
  opt.stream_length = a.m != 0 ? a.m : items.size();
  EpsilonMaximum sketch(opt, a.seed);
  for (const uint64_t x : items) sketch.Insert(x);
  const HeavyHitter hh = sketch.Report();
  std::printf("approx-max item %llu  count ~%.0f  (sketch: %zu bits)\n",
              static_cast<unsigned long long>(hh.item), hh.estimated_count,
              sketch.SpaceBits());
  return 0;
}

int CmdMin(const Args& a, const std::vector<uint64_t>& items) {
  EpsilonMinimum::Options opt;
  opt.epsilon = a.epsilon;
  opt.delta = a.delta;
  opt.universe_size = a.n;
  opt.stream_length = a.m != 0 ? a.m : items.size();
  EpsilonMinimum sketch(opt, a.seed);
  for (const uint64_t x : items) sketch.Insert(x);
  const auto r = sketch.Report();
  std::printf("approx-min item %llu  count ~%.0f  (sketch: %zu bits)\n",
              static_cast<unsigned long long>(r.item), r.estimated_count,
              sketch.SpaceBits());
  return 0;
}

int Demo() {
  std::printf("l1hh demo: 2^20 Zipf(1.2) items, phi=5%%, eps=1%%\n");
  Args a;
  a.alpha = 1.2;
  a.seed = 7;
  return CmdRun(a);
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (argc < 2) {
    return Demo();
  }
  if (!Parse(argc, argv, &args)) {
    return 2;
  }
  if (args.command == "list") return CmdList();
  if (args.command == "generate") return CmdGenerate(args);
  if (args.command.empty() || args.command == "run") return CmdRun(args);
  // Validate the command BEFORE draining stdin, so a typo'd command prints
  // usage instead of blocking on a terminal until EOF.
  if (args.command != "heavy" && args.command != "max" &&
      args.command != "min") {
    std::fprintf(stderr,
                 "usage: l1hh_cli list|generate|run|heavy|max|min [flags]\n"
                 "see the header comment of tools/l1hh_cli.cc\n");
    return 2;
  }
  const std::vector<uint64_t> items = ReadStdinItems();
  if (args.command == "heavy") return CmdHeavy(args, items);
  if (args.command == "max") return CmdMax(args, items);
  return CmdMin(args, items);
}
