// l1hh_cli — command-line front end for the library.
//
//   l1hh_cli generate --kind zipf --alpha 1.1 --n 16777216 --m 1000000
//       [--seed 1]                          # one item id per line to stdout
//   l1hh_cli heavy --epsilon 0.01 --phi 0.05 --m <length>
//       [--algorithm optimal|simple|mg|spacesaving] [--n <universe>]
//                                           # reads ids from stdin
//   l1hh_cli max --epsilon 0.01 --m <length>        # approximate maximum
//   l1hh_cli min --epsilon 0.05 --n <universe> --m <length>
//
// With no arguments, runs a self-contained demo.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/bdw_optimal.h"
#include "core/bdw_simple.h"
#include "core/epsilon_maximum.h"
#include "core/epsilon_minimum.h"
#include "stream/stream_generator.h"
#include "summary/misra_gries.h"
#include "summary/space_saving.h"

namespace {

using namespace l1hh;

struct Args {
  std::string command;
  std::string kind = "zipf";
  std::string algorithm = "optimal";
  double alpha = 1.1;
  double epsilon = 0.01;
  double phi = 0.05;
  double delta = 0.05;
  uint64_t n = uint64_t{1} << 24;
  uint64_t m = 1 << 20;
  uint64_t seed = 1;
};

bool Parse(int argc, char** argv, Args* out) {
  if (argc < 2) return false;
  out->command = argv[1];
  for (int i = 2; i + 1 < argc; i += 2) {
    const std::string key = argv[i];
    const char* value = argv[i + 1];
    if (key == "--kind") {
      out->kind = value;
    } else if (key == "--algorithm") {
      out->algorithm = value;
    } else if (key == "--alpha") {
      out->alpha = std::atof(value);
    } else if (key == "--epsilon") {
      out->epsilon = std::atof(value);
    } else if (key == "--phi") {
      out->phi = std::atof(value);
    } else if (key == "--delta") {
      out->delta = std::atof(value);
    } else if (key == "--n") {
      out->n = std::strtoull(value, nullptr, 10);
    } else if (key == "--m") {
      out->m = std::strtoull(value, nullptr, 10);
    } else if (key == "--seed") {
      out->seed = std::strtoull(value, nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", key.c_str());
      return false;
    }
  }
  return true;
}

std::vector<uint64_t> ReadStdinItems() {
  std::vector<uint64_t> items;
  char line[64];
  while (std::fgets(line, sizeof(line), stdin) != nullptr) {
    if (line[0] == '\n' || line[0] == '#') continue;
    items.push_back(std::strtoull(line, nullptr, 10));
  }
  return items;
}

int CmdGenerate(const Args& a) {
  std::vector<uint64_t> stream;
  if (a.kind == "zipf") {
    stream = MakeZipfStream(a.n, a.alpha, a.m, a.seed);
  } else if (a.kind == "uniform") {
    stream = MakeUniformStream(a.n, a.m, a.seed);
  } else {
    std::fprintf(stderr, "unknown --kind %s (zipf|uniform)\n",
                 a.kind.c_str());
    return 2;
  }
  for (const uint64_t x : stream) {
    std::printf("%llu\n", static_cast<unsigned long long>(x));
  }
  return 0;
}

int CmdHeavy(const Args& a, const std::vector<uint64_t>& items) {
  const uint64_t m = a.m != 0 ? a.m : items.size();
  const auto print = [&](const char* name, size_t bits, uint64_t item,
                         double count) {
    std::printf("%-12s %12llu %14.0f %8.2f%%  (sketch: %zu bits)\n", name,
                static_cast<unsigned long long>(item), count,
                100.0 * count / static_cast<double>(m), bits);
  };
  if (a.algorithm == "optimal") {
    BdwOptimal::Options opt;
    opt.epsilon = a.epsilon;
    opt.phi = a.phi;
    opt.delta = a.delta;
    opt.universe_size = a.n;
    opt.stream_length = m;
    BdwOptimal sketch(opt, a.seed);
    for (const uint64_t x : items) sketch.Insert(x);
    for (const auto& hh : sketch.Report()) {
      print("optimal", sketch.SpaceBits(), hh.item, hh.estimated_count);
    }
  } else if (a.algorithm == "simple") {
    BdwSimple::Options opt;
    opt.epsilon = a.epsilon;
    opt.phi = a.phi;
    opt.delta = a.delta;
    opt.universe_size = a.n;
    opt.stream_length = m;
    BdwSimple sketch(opt, a.seed);
    for (const uint64_t x : items) sketch.Insert(x);
    for (const auto& hh : sketch.Report()) {
      print("simple", sketch.SpaceBits(), hh.item, hh.estimated_count);
    }
  } else if (a.algorithm == "mg") {
    MisraGries sketch(static_cast<size_t>(1.0 / a.epsilon),
                      UniverseBits(a.n));
    for (const uint64_t x : items) sketch.Insert(x);
    for (const auto& e : sketch.EntriesAbove(static_cast<uint64_t>(
             (a.phi - a.epsilon) * static_cast<double>(m)))) {
      print("mg", sketch.SpaceBits(), e.item,
            static_cast<double>(e.count));
    }
  } else if (a.algorithm == "spacesaving") {
    SpaceSaving sketch(static_cast<size_t>(1.0 / a.epsilon),
                       UniverseBits(a.n));
    for (const uint64_t x : items) sketch.Insert(x);
    for (const auto& e : sketch.EntriesAbove(static_cast<uint64_t>(
             a.phi * static_cast<double>(m)))) {
      print("spacesaving", sketch.SpaceBits(), e.item,
            static_cast<double>(e.count));
    }
  } else {
    std::fprintf(stderr, "unknown --algorithm %s\n", a.algorithm.c_str());
    return 2;
  }
  return 0;
}

int CmdMax(const Args& a, const std::vector<uint64_t>& items) {
  EpsilonMaximum::Options opt;
  opt.epsilon = a.epsilon;
  opt.delta = a.delta;
  opt.universe_size = a.n;
  opt.stream_length = a.m != 0 ? a.m : items.size();
  EpsilonMaximum sketch(opt, a.seed);
  for (const uint64_t x : items) sketch.Insert(x);
  const HeavyHitter hh = sketch.Report();
  std::printf("approx-max item %llu  count ~%.0f  (sketch: %zu bits)\n",
              static_cast<unsigned long long>(hh.item), hh.estimated_count,
              sketch.SpaceBits());
  return 0;
}

int CmdMin(const Args& a, const std::vector<uint64_t>& items) {
  EpsilonMinimum::Options opt;
  opt.epsilon = a.epsilon;
  opt.delta = a.delta;
  opt.universe_size = a.n;
  opt.stream_length = a.m != 0 ? a.m : items.size();
  EpsilonMinimum sketch(opt, a.seed);
  for (const uint64_t x : items) sketch.Insert(x);
  const auto r = sketch.Report();
  std::printf("approx-min item %llu  count ~%.0f  (sketch: %zu bits)\n",
              static_cast<unsigned long long>(r.item), r.estimated_count,
              sketch.SpaceBits());
  return 0;
}

int Demo() {
  std::printf("l1hh demo: 2^20 Zipf(1.2) items, phi=5%%, eps=1%%\n");
  Args a;
  const auto stream = MakeZipfStream(a.n, 1.2, a.m, 7);
  return CmdHeavy(a, stream);
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!Parse(argc, argv, &args)) {
    return Demo();
  }
  if (args.command == "generate") return CmdGenerate(args);
  const std::vector<uint64_t> items = ReadStdinItems();
  if (args.command == "heavy") return CmdHeavy(args, items);
  if (args.command == "max") return CmdMax(args, items);
  if (args.command == "min") return CmdMin(args, items);
  std::fprintf(stderr,
               "usage: l1hh_cli generate|heavy|max|min [flags]\n"
               "see the header comment of tools/l1hh_cli.cc\n");
  return 2;
}
