// l1hh_cli — command-line front end for the library.
//
// Algorithms are selected by registry name (see `l1hh_cli list`); every
// structure behind the unified l1hh::Summary interface is available.
//
//   l1hh_cli list                             # registered algorithm names
//   l1hh_cli generate --kind=zipf --alpha=1.1 --n=16777216 --m=1000000
//       [--seed=1]                            # one item id per line, stdout
//   l1hh_cli run --algo=bdw_optimal [--epsilon=0.01 --phi=0.05 ...]
//                                             # self-generated Zipf stream,
//                                             # reports HH + recall vs truth
//   l1hh_cli run --algo=misra_gries --shards=4 [--threads=2]
//                                             # same run through the sharded
//                                             # parallel engine (src/engine/)
//   l1hh_cli run --algo=count_min --save=run.l1hh
//                                             # ... and snapshot the summary
//                                             # (sharded: the merged view)
//   l1hh_cli run --algo=windowed:count_min --window=1000000 --buckets=8
//                                             # heavy in the LAST W items:
//                                             # the bucket-ring container
//                                             # (src/window/, docs/WINDOWS.md);
//                                             # --window auto-wraps a bare
//                                             # --algo name
//   l1hh_cli run --algo=misra_gries --format=json
//                                             # machine-readable one-line
//                                             # JSON report (also: merge)
//   l1hh_cli heavy --algo=misra_gries --m=<length> [--phi=...]
//                                             # reads ids from stdin
//   l1hh_cli save --algo=count_min --out=a.l1hh --m=<FULL stream length>
//                                             # ingest stdin, write snapshot
//                                             # (see docs/SNAPSHOTS.md)
//   l1hh_cli load a.l1hh [--phi=...]          # print a snapshot's header +
//                                             # heavy-hitter report
//   l1hh_cli merge a.l1hh b.l1hh [--phi=P]    # coordinator: merge snapshots
//                                             # from N processes, report HH
//   l1hh_cli max --epsilon=0.01 --m=<length>  # approximate maximum
//   l1hh_cli min --epsilon=0.05 --n=<universe> --m=<length>
//
// Flags accept both `--key=value` and `--key value`; unknown flags are
// rejected (with a did-you-mean hint), never silently ignored.  Legacy
// names (optimal, simple, mg, spacesaving) are accepted as --algo aliases.
// `l1hh_cli --algo=<name>` with no command is shorthand for `run`.
// With no arguments at all, runs a self-contained demo.
//
// Distributed workflow (docs/SNAPSHOTS.md has the worked version): N
// processes each `save` a summary of their partition — built with the
// SAME --epsilon/--phi/--seed and with --m set to the FULL combined
// stream length — and a coordinator `merge`s the snapshot files into one
// Definition-1-conformant report.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "core/epsilon_maximum.h"
#include "core/epsilon_minimum.h"
#include "engine/sharded_engine.h"
#include "io/snapshot.h"
#include "stream/stream_generator.h"
#include "summary/evaluation.h"
#include "summary/summary.h"

namespace {

using namespace l1hh;

struct Args {
  std::string command;
  std::string kind = "zipf";
  std::string algorithm = "bdw_optimal";
  double alpha = 1.1;
  double epsilon = 0.01;
  double phi = 0.05;
  bool phi_given = false;  // load/merge default to the snapshot's phi
  double delta = 0.05;
  uint64_t n = uint64_t{1} << 24;
  // 0 = "not given": stdin-reading commands fall back to the piped stream's
  // length; generate/run fall back to kDefaultM.
  uint64_t m = 0;
  uint64_t seed = 1;
  // Sharded-engine knobs for `run`: shards=1 runs the summary directly;
  // shards>1 ingests through ShardedEngine (threads=0 -> one per shard).
  uint64_t shards = 1;
  uint64_t threads = 0;
  // Sliding-window knobs: --window=1000000 answers for the last million
  // items via the windowed:<algo> container (auto-wrapping a bare --algo
  // name; the value is a plain integer — no 1e6 spellings); W is covered
  // by --buckets tumbling sub-windows (0 = the default 8).
  uint64_t window = 0;
  uint64_t buckets = 0;
  // Report format for run/merge: "text" (default) or "json" — one JSON
  // object per run with the scored fields, for CI smokes to assert on.
  std::string format = "text";
  // Snapshot paths: --out for `save`, --save for `run`, positionals for
  // `load` / `merge`.
  std::string out;
  std::string save_path;
  std::vector<std::string> positional;
};

constexpr uint64_t kDefaultM = 1 << 20;

std::string CanonicalAlgoName(const std::string& name) {
  // Aliases apply inside a windowed: spelling too (windowed:mg).
  if (IsWindowedSummaryName(name)) {
    return std::string(kWindowedPrefix) +
           CanonicalAlgoName(name.substr(kWindowedPrefix.size()));
  }
  if (name == "optimal") return "bdw_optimal";
  if (name == "simple") return "bdw_simple";
  if (name == "mg") return "misra_gries";
  if (name == "spacesaving") return "space_saving";
  return name;
}

/// Flags the parser understands, for the did-you-mean hint.
const char* const kKnownFlags[] = {
    "--kind",  "--algo", "--algorithm", "--alpha",   "--epsilon",
    "--phi",   "--delta", "--n",        "--m",       "--seed",
    "--shards", "--threads", "--out",   "--save",    "--window",
    "--buckets", "--format",
};

size_t EditDistance(const std::string& a, const std::string& b) {
  std::vector<size_t> row(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    size_t diag = row[0];
    row[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      const size_t up = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1,
                         diag + (a[i - 1] == b[j - 1] ? 0 : 1)});
      diag = up;
    }
  }
  return row[b.size()];
}

void PrintUnknownFlag(const std::string& key) {
  std::string best;
  size_t best_distance = 3;  // suggest only near misses
  for (const char* known : kKnownFlags) {
    const size_t d = EditDistance(key, known);
    if (d < best_distance) {
      best_distance = d;
      best = known;
    }
  }
  if (best.empty()) {
    std::fprintf(stderr, "unknown flag: %s\n", key.c_str());
  } else {
    std::fprintf(stderr, "unknown flag: %s (did you mean %s?)\n",
                 key.c_str(), best.c_str());
  }
}

bool Parse(int argc, char** argv, Args* out) {
  int i = 1;
  if (i < argc && argv[i][0] != '-') {
    out->command = argv[i];
    ++i;
  }
  for (; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) {
      // Bare tokens after the command are positional arguments (the
      // snapshot files of `load` / `merge`).
      out->positional.push_back(key);
      continue;
    }
    std::string value;
    const size_t eq = key.find('=');
    if (eq != std::string::npos) {
      value = key.substr(eq + 1);
      key = key.substr(0, eq);
    } else {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flag %s needs a value\n", key.c_str());
        return false;
      }
      value = argv[++i];
    }
    if (value.empty()) {
      std::fprintf(stderr, "flag %s needs a non-empty value\n", key.c_str());
      return false;
    }
    if (key == "--kind") {
      out->kind = value;
    } else if (key == "--algo" || key == "--algorithm") {
      out->algorithm = CanonicalAlgoName(value);
    } else if (key == "--alpha") {
      out->alpha = std::atof(value.c_str());
    } else if (key == "--epsilon") {
      out->epsilon = std::atof(value.c_str());
    } else if (key == "--phi") {
      out->phi = std::atof(value.c_str());
      out->phi_given = true;
    } else if (key == "--delta") {
      out->delta = std::atof(value.c_str());
    } else if (key == "--n") {
      out->n = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "--m") {
      out->m = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "--seed") {
      out->seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "--shards") {
      out->shards = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "--threads") {
      out->threads = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "--out") {
      out->out = value;
    } else if (key == "--save") {
      out->save_path = value;
    } else if (key == "--window") {
      out->window = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "--buckets") {
      out->buckets = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "--format") {
      out->format = value;
    } else {
      PrintUnknownFlag(key);
      return false;
    }
  }
  if (out->epsilon <= 0 || out->phi <= 0 || out->delta <= 0) {
    std::fprintf(stderr, "--epsilon, --phi, and --delta must be > 0\n");
    return false;
  }
  if (out->shards == 0) {
    std::fprintf(stderr, "--shards must be >= 1\n");
    return false;
  }
  if (out->format != "text" && out->format != "json") {
    std::fprintf(stderr, "--format must be text or json\n");
    return false;
  }
  // Only run (incl. the empty-command shorthand) and merge emit JSON;
  // accepting the flag elsewhere would silently print prose into a JSON
  // consumer's pipe.
  if (out->format == "json" && !out->command.empty() &&
      out->command != "run" && out->command != "merge") {
    std::fprintf(stderr, "--format=json is supported by run and merge\n");
    return false;
  }
  // --buckets shapes a window; on a plain algorithm with no --window it
  // would be silently ignored — reject, like any other unusable flag.
  if (out->buckets != 0 && out->window == 0 &&
      !IsWindowedSummaryName(out->algorithm)) {
    std::fprintf(stderr,
                 "--buckets requires --window=W or a windowed:<algo> "
                 "--algo name\n");
    return false;
  }
  // --window asks for sliding-window semantics; wrap a bare algorithm
  // name in the windowed container so `run --algo=count_min
  // --window=1000000` and `run --algo=windowed:count_min
  // --window=1000000` mean the same thing.
  if (out->window != 0 && !IsWindowedSummaryName(out->algorithm)) {
    out->algorithm = std::string(kWindowedPrefix) + out->algorithm;
  }
  return true;
}

std::vector<uint64_t> ReadStdinItems() {
  std::vector<uint64_t> items;
  char line[64];
  while (std::fgets(line, sizeof(line), stdin) != nullptr) {
    if (line[0] == '\n' || line[0] == '#') continue;
    items.push_back(std::strtoull(line, nullptr, 10));
  }
  return items;
}

SummaryOptions ToSummaryOptions(const Args& a, uint64_t stream_length) {
  SummaryOptions opt;
  opt.epsilon = a.epsilon;
  opt.phi = a.phi;
  opt.delta = a.delta;
  opt.universe_size = a.n;
  opt.stream_length = stream_length;
  opt.seed = a.seed;
  opt.window_size = a.window;
  if (a.buckets != 0) opt.window_buckets = a.buckets;
  return opt;
}

int CmdList() {
  for (const auto& name : RegisteredSummaryNames()) {
    std::printf("%s\n", name.c_str());
  }
  return 0;
}

int CmdGenerate(const Args& a) {
  const uint64_t m = a.m != 0 ? a.m : kDefaultM;
  std::vector<uint64_t> stream;
  if (a.kind == "zipf") {
    stream = MakeZipfStream(a.n, a.alpha, m, a.seed);
  } else if (a.kind == "uniform") {
    stream = MakeUniformStream(a.n, m, a.seed);
  } else {
    std::fprintf(stderr, "unknown --kind %s (zipf|uniform)\n",
                 a.kind.c_str());
    return 2;
  }
  for (const uint64_t x : stream) {
    std::printf("%llu\n", static_cast<unsigned long long>(x));
  }
  return 0;
}

/// Drives one registered summary over `items` and prints its report.
int CmdHeavy(const Args& a, const std::vector<uint64_t>& items) {
  const uint64_t m = a.m != 0 ? a.m : items.size();
  Status status;
  auto summary = MakeSummary(a.algorithm, ToSummaryOptions(a, m), &status);
  if (summary == nullptr) {
    std::fprintf(stderr, "--algo %s: %s; try `l1hh_cli list`\n",
                 a.algorithm.c_str(), status.ToString().c_str());
    return 2;
  }
  summary->UpdateBatch(items);
  const auto hitters = summary->HeavyHitters(a.phi);
  // Windowed: the report (and its percentages) cover the ring's suffix,
  // not the whole stream.  CoveredItems == ItemsProcessed for plain
  // structures, so the generic surface handles both.
  const bool windowed = IsWindowedSummaryName(summary->Name());
  const uint64_t over = windowed ? summary->CoveredItems() : m;
  std::printf("# %s: %zu heavy hitters at phi=%.3f over %s%llu items "
              "(%zu bytes)\n",
              a.algorithm.c_str(), hitters.size(), a.phi,
              windowed ? "the last " : "m=",
              static_cast<unsigned long long>(over),
              summary->MemoryUsageBytes());
  for (const auto& hh : hitters) {
    std::printf("%-20s %12llu %14.0f %8.2f%%\n", a.algorithm.c_str(),
                static_cast<unsigned long long>(hh.item), hh.estimate,
                100.0 * hh.estimate / static_cast<double>(over));
  }
  return 0;
}

/// Ingests stdin into one summary and writes a snapshot file.  In the
/// distributed workflow every worker runs this over its own partition,
/// with --m set to the FULL combined stream length (the sampling-based
/// structures size their rate by it) and identical contract flags.
int CmdSave(const Args& a, const std::vector<uint64_t>& items) {
  if (a.out.empty()) {
    std::fprintf(stderr, "save needs --out=FILE\n");
    return 2;
  }
  const uint64_t m = a.m != 0 ? a.m : items.size();
  Status status;
  auto summary = MakeSummary(a.algorithm, ToSummaryOptions(a, m), &status);
  if (summary == nullptr) {
    std::fprintf(stderr, "--algo %s: %s; try `l1hh_cli list`\n",
                 a.algorithm.c_str(), status.ToString().c_str());
    return 2;
  }
  summary->UpdateBatch(items);
  const Status saved = SaveSummaryToFile(*summary, a.out);
  if (!saved.ok()) {
    std::fprintf(stderr, "save failed: %s\n", saved.ToString().c_str());
    return 1;
  }
  std::printf("saved %s: %zu items -> %s (%zu bytes in memory)\n",
              a.algorithm.c_str(), items.size(), a.out.c_str(),
              summary->MemoryUsageBytes());
  return 0;
}

void PrintSnapshotHeader(const char* path, const SnapshotInfo& info) {
  std::printf("# %s: algo=%s  eps=%.4f  phi=%.4f  delta=%.4f  n=%llu  "
              "m=%llu  seed=%llu  items=%llu  payload=%llu bits  "
              "file=%llu bytes\n",
              path, info.algorithm.c_str(), info.options.epsilon,
              info.options.phi, info.options.delta,
              static_cast<unsigned long long>(info.options.universe_size),
              static_cast<unsigned long long>(info.options.stream_length),
              static_cast<unsigned long long>(info.options.seed),
              static_cast<unsigned long long>(info.items_processed),
              static_cast<unsigned long long>(info.payload_bits),
              static_cast<unsigned long long>(info.total_bytes));
}

void PrintReport(const Summary& summary, double phi) {
  const auto hitters = summary.HeavyHitters(phi);
  // A windowed summary answers for its covered suffix, not everything it
  // ever ingested; report percentages against what the report is over.
  // CoveredItems/Options are the generic surface for exactly this.
  const bool windowed = IsWindowedSummaryName(summary.Name());
  const uint64_t over = summary.CoveredItems();
  const auto m = static_cast<double>(over);
  if (windowed) {
    const SummaryOptions options = summary.Options();
    std::printf("# %zu heavy hitters at phi=%.3f over the last %llu of "
                "%llu ingested items (window of %llu in %llu buckets)\n",
                hitters.size(), phi, static_cast<unsigned long long>(over),
                static_cast<unsigned long long>(summary.ItemsProcessed()),
                static_cast<unsigned long long>(options.window_size),
                static_cast<unsigned long long>(options.window_buckets));
  } else {
    std::printf("# %zu heavy hitters at phi=%.3f over %llu ingested "
                "items\n",
                hitters.size(), phi,
                static_cast<unsigned long long>(over));
  }
  for (const auto& hh : hitters) {
    std::printf("%-24llu %14.0f %8.2f%%\n",
                static_cast<unsigned long long>(hh.item), hh.estimate,
                m > 0 ? 100.0 * hh.estimate / m : 0.0);
  }
}

/// Prints a snapshot's header and heavy-hitter report.
int CmdLoad(const Args& a) {
  if (a.positional.size() != 1) {
    std::fprintf(stderr, "usage: l1hh_cli load <snapshot> [--phi=P]\n");
    return 2;
  }
  const std::string& path = a.positional[0];
  // One file read; the header peek and the reconstruction each parse the
  // shared buffer (twice through the container — fine on a CLI path, and
  // it guarantees both views describe the same bytes).
  std::ifstream file(path, std::ios::binary);
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(file)),
                             std::istreambuf_iterator<char>());
  if (!file && bytes.empty()) {
    std::fprintf(stderr, "load failed: cannot read '%s'\n", path.c_str());
    return 1;
  }
  SnapshotInfo info;
  Status status = ReadSnapshotInfo(bytes, &info);
  if (!status.ok()) {
    std::fprintf(stderr, "load failed: %s\n", status.ToString().c_str());
    return 1;
  }
  auto summary = LoadSummary(bytes, &status);
  if (summary == nullptr) {
    std::fprintf(stderr, "load failed: %s\n", status.ToString().c_str());
    return 1;
  }
  PrintSnapshotHeader(path.c_str(), info);
  PrintReport(*summary, a.phi_given ? a.phi : info.options.phi);
  return 0;
}

/// Machine-readable `run` report (--format=json): one JSON object on one
/// line, so CI smokes can assert on fields instead of grepping prose.
/// Keys are stable; `window` is null for non-windowed runs.
void PrintJsonRunReport(const Args& a, const SummaryRunResult& r,
                        uint64_t m) {
  std::printf("{\"command\":\"run\",\"algo\":\"%s\",\"m\":%llu,"
              "\"epsilon\":%.6g,\"phi\":%.6g,\"seed\":%llu,"
              "\"shards\":%llu,\"threads\":%llu,",
              a.algorithm.c_str(), static_cast<unsigned long long>(m),
              a.epsilon, a.phi, static_cast<unsigned long long>(a.seed),
              static_cast<unsigned long long>(a.shards),
              static_cast<unsigned long long>(a.threads));
  if (r.windowed) {
    // The EFFECTIVE geometry (defaulted/rounded by the window factory),
    // not the raw flags — so "covered" <= "size" always holds.
    std::printf("\"window\":{\"size\":%llu,\"buckets\":%llu,"
                "\"covered\":%llu},",
                static_cast<unsigned long long>(r.window_size),
                static_cast<unsigned long long>(r.window_buckets),
                static_cast<unsigned long long>(r.scored_items));
  } else {
    std::printf("\"window\":null,");
  }
  std::printf("\"true_heavies\":%zu,\"recalled\":%zu,\"reported\":%zu,"
              "\"recall\":%.6f,\"precision\":%.6f,"
              "\"max_abs_estimate_error\":%.3f,\"space_bits\":%zu,"
              "\"update_ns\":%.1f,\"report\":[",
              r.true_heavies, r.recalled, r.report.size(), r.recall,
              r.precision, r.max_abs_err, r.memory_bytes * 8,
              r.update_ns);
  for (size_t i = 0; i < r.report.size(); ++i) {
    std::printf("%s{\"item\":%llu,\"estimate\":%.1f,\"exact\":%llu}",
                i == 0 ? "" : ",",
                static_cast<unsigned long long>(r.report[i].item),
                r.report[i].estimate,
                static_cast<unsigned long long>(r.report_exact[i]));
  }
  std::printf("]}\n");
}

/// Coordinator end of the distributed workflow: loads every snapshot,
/// merges them into one summary, and prints the combined report.
int CmdMerge(const Args& a) {
  if (a.positional.empty()) {
    std::fprintf(stderr,
                 "usage: l1hh_cli merge <snapshot>... [--phi=P]\n");
    return 2;
  }
  Status status;
  auto merged = LoadSummaryFromFile(a.positional[0], &status);
  if (merged == nullptr) {
    std::fprintf(stderr, "merge: cannot load '%s': %s\n",
                 a.positional[0].c_str(), status.ToString().c_str());
    return 1;
  }
  for (size_t i = 1; i < a.positional.size(); ++i) {
    auto next = LoadSummaryFromFile(a.positional[i], &status);
    if (next == nullptr) {
      std::fprintf(stderr, "merge: cannot load '%s': %s\n",
                   a.positional[i].c_str(), status.ToString().c_str());
      return 1;
    }
    status = merged->Merge(*next);
    if (!status.ok()) {
      std::fprintf(stderr, "merge: '%s' + '%s': %s\n",
                   a.positional[0].c_str(), a.positional[i].c_str(),
                   status.ToString().c_str());
      return 1;
    }
  }
  const double phi = a.phi_given ? a.phi : merged->Options().phi;
  if (a.format == "json") {
    // No ground truth at a coordinator; the JSON carries the merged
    // report and the size accounting (recall/precision are `run` fields).
    const auto hitters = merged->HeavyHitters(phi);
    std::printf("{\"command\":\"merge\",\"algo\":\"%s\",\"snapshots\":%zu,"
                "\"items\":%llu,\"phi\":%.6g,\"space_bits\":%zu,"
                "\"report\":[",
                std::string(merged->Name()).c_str(), a.positional.size(),
                static_cast<unsigned long long>(merged->ItemsProcessed()),
                phi, merged->MemoryUsageBytes() * 8);
    for (size_t i = 0; i < hitters.size(); ++i) {
      std::printf("%s{\"item\":%llu,\"estimate\":%.1f}",
                  i == 0 ? "" : ",",
                  static_cast<unsigned long long>(hitters[i].item),
                  hitters[i].estimate);
    }
    std::printf("]}\n");
    return 0;
  }
  std::printf("# merged %zu snapshot(s), algo=%s\n", a.positional.size(),
              std::string(merged->Name()).c_str());
  PrintReport(*merged, phi);
  return 0;
}

/// Self-contained accuracy run: generates the stream and scores the
/// report against exact ground truth via the shared evaluation harness.
int CmdRun(const Args& a) {
  const uint64_t m_arg = a.m != 0 ? a.m : kDefaultM;
  const auto stream = MakeZipfStream(a.n, a.alpha, m_arg, a.seed);
  const SummaryOptions options = ToSummaryOptions(a, stream.size());
  std::unique_ptr<Summary> summary;
  std::unique_ptr<ShardedEngine> engine;
  const SummaryRunResult r =
      a.shards > 1 ? RunShardedSummary(a.algorithm, options, stream, a.phi,
                                       a.shards, a.threads, &engine)
                   : RunRegisteredSummary(a.algorithm, options, stream,
                                          a.phi, &summary);
  if (!r.ok) {
    std::fprintf(stderr, "%s; try `l1hh_cli list`\n", r.error.c_str());
    return 2;
  }
  if (a.format == "json") {
    PrintJsonRunReport(a, r, m_arg);
  } else {
    std::printf("algo=%s  zipf(alpha=%.2f)  n=%llu  m=%llu  eps=%.3f  "
                "phi=%.3f  seed=%llu\n",
                a.algorithm.c_str(), a.alpha,
                static_cast<unsigned long long>(a.n),
                static_cast<unsigned long long>(m_arg), a.epsilon, a.phi,
                static_cast<unsigned long long>(a.seed));
    if (a.shards > 1) {
      std::printf("engine: %llu shards, %llu threads (0 = one per shard), "
                  "%.1f ns/item end-to-end\n",
                  static_cast<unsigned long long>(a.shards),
                  static_cast<unsigned long long>(a.threads), r.update_ns);
    }
    if (r.windowed) {
      std::printf("window: last %llu of %llu items covered; recall/exact "
                  "columns score that suffix\n",
                  static_cast<unsigned long long>(r.scored_items),
                  static_cast<unsigned long long>(m_arg));
    }
    std::printf("%-24s %14s %14s %9s\n", "item", "estimate", "exact",
                "err");
    for (size_t i = 0; i < r.report.size(); ++i) {
      const double f = static_cast<double>(r.report_exact[i]);
      std::printf("%-24llu %14.0f %14.0f %8.2f%%\n",
                  static_cast<unsigned long long>(r.report[i].item),
                  r.report[i].estimate, f,
                  f > 0 ? 100.0 * (r.report[i].estimate - f) / f : 0.0);
    }
    std::printf("true phi-heavy items: %zu   recalled: %zu   reported: "
                "%zu   memory: %zu bytes\n",
                r.true_heavies, r.recalled, r.report.size(),
                r.memory_bytes);
  }
  if (!a.save_path.empty()) {
    // Sharded runs snapshot the merged view — one file a coordinator can
    // merge with other runs, same as a single-summary snapshot.
    const Status saved =
        a.shards > 1 ? SaveSummaryToFile(engine->MergedView(), a.save_path)
                     : SaveSummaryToFile(*summary, a.save_path);
    if (!saved.ok()) {
      std::fprintf(stderr, "--save failed: %s\n", saved.ToString().c_str());
      return 1;
    }
    // Keep stdout pure JSON in json mode (one object per run).
    std::fprintf(a.format == "json" ? stderr : stdout,
                 "snapshot written to %s\n", a.save_path.c_str());
  }
  return r.recalled == r.true_heavies ? 0 : 1;
}

int CmdMax(const Args& a, const std::vector<uint64_t>& items) {
  EpsilonMaximum::Options opt;
  opt.epsilon = a.epsilon;
  opt.delta = a.delta;
  opt.universe_size = a.n;
  opt.stream_length = a.m != 0 ? a.m : items.size();
  EpsilonMaximum sketch(opt, a.seed);
  for (const uint64_t x : items) sketch.Insert(x);
  const HeavyHitter hh = sketch.Report();
  std::printf("approx-max item %llu  count ~%.0f  (sketch: %zu bits)\n",
              static_cast<unsigned long long>(hh.item), hh.estimated_count,
              sketch.SpaceBits());
  return 0;
}

int CmdMin(const Args& a, const std::vector<uint64_t>& items) {
  EpsilonMinimum::Options opt;
  opt.epsilon = a.epsilon;
  opt.delta = a.delta;
  opt.universe_size = a.n;
  opt.stream_length = a.m != 0 ? a.m : items.size();
  EpsilonMinimum sketch(opt, a.seed);
  for (const uint64_t x : items) sketch.Insert(x);
  const auto r = sketch.Report();
  std::printf("approx-min item %llu  count ~%.0f  (sketch: %zu bits)\n",
              static_cast<unsigned long long>(r.item), r.estimated_count,
              sketch.SpaceBits());
  return 0;
}

int Demo() {
  std::printf("l1hh demo: 2^20 Zipf(1.2) items, phi=5%%, eps=1%%\n");
  Args a;
  a.alpha = 1.2;
  a.seed = 7;
  return CmdRun(a);
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (argc < 2) {
    return Demo();
  }
  if (!Parse(argc, argv, &args)) {
    return 2;
  }
  if (args.command == "list") return CmdList();
  if (args.command == "generate") return CmdGenerate(args);
  if (args.command.empty() || args.command == "run") return CmdRun(args);
  if (args.command == "load") return CmdLoad(args);
  if (args.command == "merge") return CmdMerge(args);
  // Validate the command BEFORE draining stdin, so a typo'd command prints
  // usage instead of blocking on a terminal until EOF.
  if (args.command != "heavy" && args.command != "save" &&
      args.command != "max" && args.command != "min") {
    std::fprintf(
        stderr,
        "usage: l1hh_cli list|generate|run|heavy|save|load|merge|max|min "
        "[flags]\n"
        "  run    [--algo --shards --threads --save=FILE ...]  self-scored "
        "Zipf run\n"
        "  heavy  --algo=NAME --m=M [--phi=P]     report HH over stdin "
        "ids\n"
        "  save   --algo=NAME --out=FILE --m=M    ingest stdin, write "
        "snapshot\n"
        "  load   <snapshot> [--phi=P]            print snapshot header + "
        "report\n"
        "  merge  <snapshot>... [--phi=P]         combine worker "
        "snapshots\n"
        "see the header comment of tools/l1hh_cli.cc and "
        "docs/SNAPSHOTS.md\n");
    return 2;
  }
  const std::vector<uint64_t> items = ReadStdinItems();
  if (args.command == "heavy") return CmdHeavy(args, items);
  if (args.command == "save") return CmdSave(args, items);
  if (args.command == "max") return CmdMax(args, items);
  return CmdMin(args, items);
}
