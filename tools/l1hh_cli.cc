// l1hh_cli — command-line front end for the library.
//
// Algorithms are selected by registry name (see `l1hh_cli list`); every
// structure behind the unified l1hh::Summary interface is available.
//
//   l1hh_cli list                             # registered algorithm names
//   l1hh_cli generate --kind=zipf --alpha=1.1 --n=16777216 --m=1000000
//       [--seed=1]                            # one item id per line, stdout
//   l1hh_cli run --algo=bdw_optimal [--epsilon=0.01 --phi=0.05 ...]
//                                             # self-generated Zipf stream,
//                                             # reports HH + recall vs truth
//   l1hh_cli run --algo=misra_gries --shards=4 [--threads=2]
//                                             # same run through the sharded
//                                             # parallel engine (src/engine/)
//   l1hh_cli run --algo=count_min --save=run.l1hh
//                                             # ... and snapshot the summary
//                                             # (sharded: the merged view)
//   l1hh_cli run --algo=windowed:count_min --window=1000000 --buckets=8
//                                             # heavy in the LAST W items:
//                                             # the bucket-ring container
//                                             # (src/window/, docs/WINDOWS.md);
//                                             # --window auto-wraps a bare
//                                             # --algo name
//   l1hh_cli run --algo=misra_gries --format=json
//                                             # machine-readable one-line
//                                             # JSON report (also: merge)
//   l1hh_cli run --algo=space_saving --shards=4 --stats[=json]
//                                             # print the telemetry registry
//                                             # after the run (exposition
//                                             # text or JSON; with
//                                             # --format=json it embeds as a
//                                             # "metrics" object — see
//                                             # docs/OBSERVABILITY.md)
//   l1hh_cli generate --groups=4 --m=1000000  # "group item" per line: G
//                                             # tenants' Zipf streams,
//                                             # clustered in runs of 64
//   l1hh_cli run --algo=space_saving --group-col --groups=4
//                                             # per-tenant heavy hitters
//                                             # (src/group/, docs/GROUPED.md):
//                                             # one summary per group key,
//                                             # per-group recall vs truth
//   l1hh_cli heavy --algo=misra_gries --m=<length> [--phi=...]
//                                             # reads ids from stdin
//   l1hh_cli heavy --algo=space_saving --group-col
//                                             # stdin is "group item" lines;
//                                             # report per observed group
//   l1hh_cli save --algo=count_min --out=a.l1hh --m=<FULL stream length>
//                                             # ingest stdin, write snapshot
//                                             # (see docs/SNAPSHOTS.md)
//   l1hh_cli load a.l1hh [--phi=...]          # print a snapshot's header +
//                                             # heavy-hitter report
//   l1hh_cli merge a.l1hh b.l1hh [--phi=P]    # coordinator: merge snapshots
//                                             # from N processes, report HH
//   l1hh_cli max --epsilon=0.01 --m=<length>  # approximate maximum
//   l1hh_cli min --epsilon=0.05 --n=<universe> --m=<length>
//
// Flags accept both `--key=value` and `--key value`; unknown flags are
// rejected (with a did-you-mean hint), never silently ignored.  Legacy
// names (optimal, simple, mg, spacesaving) are accepted as --algo aliases.
// `l1hh_cli --algo=<name>` with no command is shorthand for `run`.
// With no arguments at all, runs a self-contained demo.
//
// Distributed workflow (docs/SNAPSHOTS.md has the worked version): N
// processes each `save` a summary of their partition — built with the
// SAME --epsilon/--phi/--seed and with --m set to the FULL combined
// stream length — and a coordinator `merge`s the snapshot files into one
// Definition-1-conformant report.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/epsilon_maximum.h"
#include "core/epsilon_minimum.h"
#include "engine/sharded_engine.h"
#include "group/grouped_summary.h"
#include "io/snapshot.h"
#include "obs/audit.h"
#include "obs/metrics.h"
#include "stream/stream_generator.h"
#include "summary/evaluation.h"
#include "summary/summary.h"

namespace {

using namespace l1hh;

struct Args {
  std::string command;
  std::string kind = "zipf";
  std::string algorithm = "bdw_optimal";
  double alpha = 1.1;
  double epsilon = 0.01;
  double phi = 0.05;
  bool phi_given = false;  // load/merge default to the snapshot's phi
  double delta = 0.05;
  uint64_t n = uint64_t{1} << 24;
  // 0 = "not given": stdin-reading commands fall back to the piped stream's
  // length; generate/run fall back to kDefaultM.
  uint64_t m = 0;
  uint64_t seed = 1;
  // Sharded-engine knobs for `run`: shards=1 runs the summary directly;
  // shards>1 ingests through ShardedEngine (threads=0 -> one per shard).
  uint64_t shards = 1;
  uint64_t threads = 0;
  // Sliding-window knobs: --window=1000000 answers for the last million
  // items via the windowed:<algo> container (auto-wrapping a bare --algo
  // name; the value is a plain integer — no 1e6 spellings); W is covered
  // by --buckets tumbling sub-windows (0 = the default 8).
  uint64_t window = 0;
  uint64_t buckets = 0;
  // Report format for run/merge: "text" (default) or "json" — one JSON
  // object per run with the scored fields, for CI smokes to assert on.
  std::string format = "text";
  // Grouped (per-key) mode: --group-col switches run/heavy to the
  // GroupedSummary path (src/group/), where heavy reads "group item"
  // lines from stdin and run generates --groups tenants itself; --groups
  // also makes `generate` emit two-column grouped output.
  bool group_col = false;
  uint64_t groups = 0;
  // Telemetry printing for `run`: empty = off, "text" prints the registry
  // as Prometheus-style exposition lines after the report, "json" prints
  // one {"metrics":{...}} object (with --format=json either value embeds
  // a "metrics" object in the run report instead).
  std::string stats;
  // Accuracy audit for `run`: --audit[=RATE] replays the generated
  // stream through an AccuracyAuditor (hash-sampled exact shadow,
  // src/obs/audit.h) and reports the observed eps-ratio and shadow
  // recall beside the ground-truth score.
  bool audit = false;
  uint64_t audit_rate = 64;
  // Snapshot paths: --out for `save`, --save for `run`, positionals for
  // `load` / `merge`.
  std::string out;
  std::string save_path;
  std::vector<std::string> positional;
};

constexpr uint64_t kDefaultM = 1 << 20;

std::string CanonicalAlgoName(const std::string& name) {
  // Aliases apply inside a windowed: spelling too (windowed:mg).
  if (IsWindowedSummaryName(name)) {
    return std::string(kWindowedPrefix) +
           CanonicalAlgoName(name.substr(kWindowedPrefix.size()));
  }
  if (name == "optimal") return "bdw_optimal";
  if (name == "simple") return "bdw_simple";
  if (name == "mg") return "misra_gries";
  if (name == "spacesaving") return "space_saving";
  return name;
}

/// Flags the parser understands, for the did-you-mean hint.
const char* const kKnownFlags[] = {
    "--kind",  "--algo", "--algorithm", "--alpha",   "--epsilon",
    "--phi",   "--delta", "--n",        "--m",       "--seed",
    "--shards", "--threads", "--out",   "--save",    "--window",
    "--buckets", "--format", "--group-col", "--groups", "--stats",
    "--audit",
};

size_t EditDistance(const std::string& a, const std::string& b) {
  std::vector<size_t> row(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    size_t diag = row[0];
    row[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      const size_t up = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1,
                         diag + (a[i - 1] == b[j - 1] ? 0 : 1)});
      diag = up;
    }
  }
  return row[b.size()];
}

void PrintUnknownFlag(const std::string& key) {
  std::string best;
  size_t best_distance = 3;  // suggest only near misses
  for (const char* known : kKnownFlags) {
    const size_t d = EditDistance(key, known);
    if (d < best_distance) {
      best_distance = d;
      best = known;
    }
  }
  if (best.empty()) {
    std::fprintf(stderr, "unknown flag: %s\n", key.c_str());
  } else {
    std::fprintf(stderr, "unknown flag: %s (did you mean %s?)\n",
                 key.c_str(), best.c_str());
  }
}

bool Parse(int argc, char** argv, Args* out) {
  int i = 1;
  if (i < argc && argv[i][0] != '-') {
    out->command = argv[i];
    ++i;
  }
  for (; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) {
      // Bare tokens after the command are positional arguments (the
      // snapshot files of `load` / `merge`).
      out->positional.push_back(key);
      continue;
    }
    if (key == "--group-col") {
      // A boolean flag: its presence is the value.
      out->group_col = true;
      continue;
    }
    if (key == "--stats" || key.rfind("--stats=", 0) == 0) {
      // Presence-only (defaults to text exposition) or --stats=json;
      // intercepted here so bare --stats never swallows the next token.
      out->stats = key == "--stats" ? "text" : key.substr(8);
      if (out->stats != "text" && out->stats != "json") {
        std::fprintf(stderr, "--stats must be text or json\n");
        return false;
      }
      continue;
    }
    if (key == "--audit" || key.rfind("--audit=", 0) == 0) {
      // Presence-only (default sampling rate) or --audit=RATE; like
      // --stats, intercepted so bare --audit never swallows a token.
      out->audit = true;
      if (key != "--audit") {
        out->audit_rate = std::strtoull(key.c_str() + 8, nullptr, 10);
        if (out->audit_rate == 0) {
          std::fprintf(stderr, "--audit rate must be >= 1\n");
          return false;
        }
      }
      continue;
    }
    std::string value;
    const size_t eq = key.find('=');
    if (eq != std::string::npos) {
      value = key.substr(eq + 1);
      key = key.substr(0, eq);
    } else {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flag %s needs a value\n", key.c_str());
        return false;
      }
      value = argv[++i];
    }
    if (value.empty()) {
      std::fprintf(stderr, "flag %s needs a non-empty value\n", key.c_str());
      return false;
    }
    if (key == "--kind") {
      out->kind = value;
    } else if (key == "--algo" || key == "--algorithm") {
      out->algorithm = CanonicalAlgoName(value);
    } else if (key == "--alpha") {
      out->alpha = std::atof(value.c_str());
    } else if (key == "--epsilon") {
      out->epsilon = std::atof(value.c_str());
    } else if (key == "--phi") {
      out->phi = std::atof(value.c_str());
      out->phi_given = true;
    } else if (key == "--delta") {
      out->delta = std::atof(value.c_str());
    } else if (key == "--n") {
      out->n = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "--m") {
      out->m = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "--seed") {
      out->seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "--shards") {
      out->shards = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "--threads") {
      out->threads = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "--out") {
      out->out = value;
    } else if (key == "--save") {
      out->save_path = value;
    } else if (key == "--window") {
      out->window = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "--buckets") {
      out->buckets = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "--format") {
      out->format = value;
    } else if (key == "--groups") {
      out->groups = std::strtoull(value.c_str(), nullptr, 10);
    } else {
      PrintUnknownFlag(key);
      return false;
    }
  }
  if (out->epsilon <= 0 || out->phi <= 0 || out->delta <= 0) {
    std::fprintf(stderr, "--epsilon, --phi, and --delta must be > 0\n");
    return false;
  }
  if (out->shards == 0) {
    std::fprintf(stderr, "--shards must be >= 1\n");
    return false;
  }
  if (out->format != "text" && out->format != "json") {
    std::fprintf(stderr, "--format must be text or json\n");
    return false;
  }
  // Only run (incl. the empty-command shorthand) and merge emit JSON;
  // accepting the flag elsewhere would silently print prose into a JSON
  // consumer's pipe.
  if (out->format == "json" && !out->command.empty() &&
      out->command != "run" && out->command != "merge") {
    std::fprintf(stderr, "--format=json is supported by run and merge\n");
    return false;
  }
  // The registry only fills during an actual run; printing it after any
  // other command would show zeros and mislead — reject.
  if (!out->stats.empty() && !out->command.empty() &&
      out->command != "run") {
    std::fprintf(stderr, "--stats is supported by run\n");
    return false;
  }
  // The auditor shadows the WHOLE stream; a window forgets, a grouped
  // run has no single global summary to audit — reject both, and any
  // command that never ingests.
  if (out->audit) {
    if (!out->command.empty() && out->command != "run") {
      std::fprintf(stderr, "--audit is supported by run\n");
      return false;
    }
    if (out->window != 0 || IsWindowedSummaryName(out->algorithm)) {
      std::fprintf(stderr, "--audit cannot be combined with --window\n");
      return false;
    }
    if (out->group_col) {
      std::fprintf(stderr, "--audit cannot be combined with --group-col\n");
      return false;
    }
  }
  // Grouped mode only exists where a GroupedSummary can be driven; on
  // any other command the flag would be silently ignored — reject.
  if (out->group_col && !out->command.empty() && out->command != "run" &&
      out->command != "heavy") {
    std::fprintf(stderr, "--group-col is supported by run and heavy\n");
    return false;
  }
  if (out->groups != 0 && !out->command.empty() &&
      out->command != "generate" && out->command != "run") {
    std::fprintf(stderr, "--groups is supported by generate and run\n");
    return false;
  }
  // A GroupedSummary is a single-threaded object; the sharded engine has
  // no per-key routing (yet).
  if (out->group_col && out->shards > 1) {
    std::fprintf(stderr, "--group-col does not combine with --shards\n");
    return false;
  }
  // --buckets shapes a window; on a plain algorithm with no --window it
  // would be silently ignored — reject, like any other unusable flag.
  if (out->buckets != 0 && out->window == 0 &&
      !IsWindowedSummaryName(out->algorithm)) {
    std::fprintf(stderr,
                 "--buckets requires --window=W or a windowed:<algo> "
                 "--algo name\n");
    return false;
  }
  // --window asks for sliding-window semantics; wrap a bare algorithm
  // name in the windowed container so `run --algo=count_min
  // --window=1000000` and `run --algo=windowed:count_min
  // --window=1000000` mean the same thing.
  if (out->window != 0 && !IsWindowedSummaryName(out->algorithm)) {
    out->algorithm = std::string(kWindowedPrefix) + out->algorithm;
  }
  return true;
}

std::vector<uint64_t> ReadStdinItems() {
  std::vector<uint64_t> items;
  char line[64];
  while (std::fgets(line, sizeof(line), stdin) != nullptr) {
    if (line[0] == '\n' || line[0] == '#') continue;
    items.push_back(std::strtoull(line, nullptr, 10));
  }
  return items;
}

/// Parallel columns, same index = same row — the shape
/// GroupedSummary::UpdateColumn takes directly.
struct GroupedColumns {
  std::vector<uint64_t> groups;
  std::vector<uint64_t> items;
};

/// stdin lines of "group item" (whitespace separated), # and blank lines
/// skipped — the two-column form `generate --groups=G` emits.
GroupedColumns ReadStdinGroupedItems() {
  GroupedColumns in;
  char line[64];
  while (std::fgets(line, sizeof(line), stdin) != nullptr) {
    if (line[0] == '\n' || line[0] == '#') continue;
    char* rest = nullptr;
    in.groups.push_back(std::strtoull(line, &rest, 10));
    in.items.push_back(std::strtoull(rest, nullptr, 10));
  }
  return in;
}

/// The multi-tenant stream shared by `generate --groups` and `run
/// --group-col`: every tenant draws its own independently-seeded stream
/// of m/G items, and rows arrive clustered in runs of 64 — the shape a
/// columnar scan of a partitioned table produces, which is what the
/// grouped run-detection fast path is built for.
GroupedColumns MakeGroupedStream(const Args& a, uint64_t tenants,
                                 uint64_t m_total) {
  const uint64_t per_tenant = std::max<uint64_t>(1, m_total / tenants);
  std::vector<std::vector<uint64_t>> tenant(tenants);
  for (uint64_t t = 0; t < tenants; ++t) {
    const uint64_t seed = a.seed + 101 * t;
    tenant[t] = a.kind == "uniform"
                    ? MakeUniformStream(a.n, per_tenant, seed)
                    : MakeZipfStream(a.n, a.alpha, per_tenant, seed);
  }
  GroupedColumns out;
  out.groups.reserve(per_tenant * tenants);
  out.items.reserve(per_tenant * tenants);
  constexpr uint64_t kRun = 64;
  for (uint64_t base = 0; base < per_tenant; base += kRun) {
    const uint64_t take = std::min(kRun, per_tenant - base);
    for (uint64_t t = 0; t < tenants; ++t) {
      for (uint64_t i = 0; i < take; ++i) {
        out.groups.push_back(t);
        out.items.push_back(tenant[t][base + i]);
      }
    }
  }
  return out;
}

SummaryOptions ToSummaryOptions(const Args& a, uint64_t stream_length) {
  SummaryOptions opt;
  opt.epsilon = a.epsilon;
  opt.phi = a.phi;
  opt.delta = a.delta;
  opt.universe_size = a.n;
  opt.stream_length = stream_length;
  opt.seed = a.seed;
  opt.window_size = a.window;
  if (a.buckets != 0) opt.window_buckets = a.buckets;
  return opt;
}

int CmdList() {
  for (const auto& name : RegisteredSummaryNames()) {
    std::printf("%s\n", name.c_str());
  }
  return 0;
}

int CmdGenerate(const Args& a) {
  const uint64_t m = a.m != 0 ? a.m : kDefaultM;
  if (a.kind != "zipf" && a.kind != "uniform") {
    std::fprintf(stderr, "unknown --kind %s (zipf|uniform)\n",
                 a.kind.c_str());
    return 2;
  }
  if (a.groups != 0) {
    const GroupedColumns gs = MakeGroupedStream(a, a.groups, m);
    for (size_t i = 0; i < gs.items.size(); ++i) {
      std::printf("%llu %llu\n",
                  static_cast<unsigned long long>(gs.groups[i]),
                  static_cast<unsigned long long>(gs.items[i]));
    }
    return 0;
  }
  const std::vector<uint64_t> stream =
      a.kind == "zipf" ? MakeZipfStream(a.n, a.alpha, m, a.seed)
                       : MakeUniformStream(a.n, m, a.seed);
  for (const uint64_t x : stream) {
    std::printf("%llu\n", static_cast<unsigned long long>(x));
  }
  return 0;
}

/// Drives one registered summary over `items` and prints its report.
int CmdHeavy(const Args& a, const std::vector<uint64_t>& items) {
  const uint64_t m = a.m != 0 ? a.m : items.size();
  Status status;
  auto summary = MakeSummary(a.algorithm, ToSummaryOptions(a, m), &status);
  if (summary == nullptr) {
    std::fprintf(stderr, "--algo %s: %s; try `l1hh_cli list`\n",
                 a.algorithm.c_str(), status.ToString().c_str());
    return 2;
  }
  summary->UpdateBatch(items);
  const auto hitters = summary->HeavyHitters(a.phi);
  // Windowed: the report (and its percentages) cover the ring's suffix,
  // not the whole stream.  CoveredItems == ItemsProcessed for plain
  // structures, so the generic surface handles both.
  const bool windowed = IsWindowedSummaryName(summary->Name());
  const uint64_t over = windowed ? summary->CoveredItems() : m;
  std::printf("# %s: %zu heavy hitters at phi=%.3f over %s%llu items "
              "(%zu bytes)\n",
              a.algorithm.c_str(), hitters.size(), a.phi,
              windowed ? "the last " : "m=",
              static_cast<unsigned long long>(over),
              summary->MemoryUsageBytes());
  for (const auto& hh : hitters) {
    std::printf("%-20s %12llu %14.0f %8.2f%%\n", a.algorithm.c_str(),
                static_cast<unsigned long long>(hh.item), hh.estimate,
                100.0 * hh.estimate / static_cast<double>(over));
  }
  return 0;
}

/// `heavy --group-col`: stdin is "group item" rows; one lazily-created
/// summary per observed group key, reported group by group.
int CmdHeavyGrouped(const Args& a) {
  const GroupedColumns in = ReadStdinGroupedItems();
  GroupedSummaryOptions grouped_options;
  grouped_options.algorithm = a.algorithm;
  grouped_options.summary =
      ToSummaryOptions(a, a.m != 0 ? a.m : in.items.size());
  Status status;
  auto grouped = GroupedSummary::Create(grouped_options, &status);
  if (grouped == nullptr) {
    std::fprintf(stderr, "--algo %s: %s; try `l1hh_cli list`\n",
                 a.algorithm.c_str(), status.ToString().c_str());
    return 2;
  }
  grouped->UpdateColumn(in.groups.data(), in.items.data(), in.items.size());
  std::printf("# %s: %zu groups over %llu rows (%zu bytes)\n",
              a.algorithm.c_str(), grouped->group_count(),
              static_cast<unsigned long long>(grouped->ItemsProcessed()),
              grouped->MemoryUsageBytes());
  for (const uint64_t g : grouped->GroupKeys()) {
    const Summary* summary = grouped->Find(g);
    const auto hitters = grouped->HeavyHitters(g, a.phi);
    const auto over = static_cast<double>(summary->CoveredItems());
    std::printf("# group %llu: %zu heavy hitters at phi=%.3f over %llu "
                "items\n",
                static_cast<unsigned long long>(g), hitters.size(), a.phi,
                static_cast<unsigned long long>(summary->ItemsProcessed()));
    for (const auto& hh : hitters) {
      std::printf("%-12llu %12llu %14.0f %8.2f%%\n",
                  static_cast<unsigned long long>(g),
                  static_cast<unsigned long long>(hh.item), hh.estimate,
                  over > 0 ? 100.0 * hh.estimate / over : 0.0);
    }
  }
  return 0;
}

/// Ingests stdin into one summary and writes a snapshot file.  In the
/// distributed workflow every worker runs this over its own partition,
/// with --m set to the FULL combined stream length (the sampling-based
/// structures size their rate by it) and identical contract flags.
int CmdSave(const Args& a, const std::vector<uint64_t>& items) {
  if (a.out.empty()) {
    std::fprintf(stderr, "save needs --out=FILE\n");
    return 2;
  }
  const uint64_t m = a.m != 0 ? a.m : items.size();
  Status status;
  auto summary = MakeSummary(a.algorithm, ToSummaryOptions(a, m), &status);
  if (summary == nullptr) {
    std::fprintf(stderr, "--algo %s: %s; try `l1hh_cli list`\n",
                 a.algorithm.c_str(), status.ToString().c_str());
    return 2;
  }
  summary->UpdateBatch(items);
  const Status saved = SaveSummaryToFile(*summary, a.out);
  if (!saved.ok()) {
    std::fprintf(stderr, "save failed: %s\n", saved.ToString().c_str());
    return 1;
  }
  std::printf("saved %s: %zu items -> %s (%zu bytes in memory)\n",
              a.algorithm.c_str(), items.size(), a.out.c_str(),
              summary->MemoryUsageBytes());
  return 0;
}

void PrintSnapshotHeader(const char* path, const SnapshotInfo& info) {
  std::printf("# %s: algo=%s  eps=%.4f  phi=%.4f  delta=%.4f  n=%llu  "
              "m=%llu  seed=%llu  items=%llu  payload=%llu bits  "
              "file=%llu bytes\n",
              path, info.algorithm.c_str(), info.options.epsilon,
              info.options.phi, info.options.delta,
              static_cast<unsigned long long>(info.options.universe_size),
              static_cast<unsigned long long>(info.options.stream_length),
              static_cast<unsigned long long>(info.options.seed),
              static_cast<unsigned long long>(info.items_processed),
              static_cast<unsigned long long>(info.payload_bits),
              static_cast<unsigned long long>(info.total_bytes));
}

void PrintReport(const Summary& summary, double phi) {
  const auto hitters = summary.HeavyHitters(phi);
  // A windowed summary answers for its covered suffix, not everything it
  // ever ingested; report percentages against what the report is over.
  // CoveredItems/Options are the generic surface for exactly this.
  const bool windowed = IsWindowedSummaryName(summary.Name());
  const uint64_t over = summary.CoveredItems();
  const auto m = static_cast<double>(over);
  if (windowed) {
    const SummaryOptions options = summary.Options();
    std::printf("# %zu heavy hitters at phi=%.3f over the last %llu of "
                "%llu ingested items (window of %llu in %llu buckets)\n",
                hitters.size(), phi, static_cast<unsigned long long>(over),
                static_cast<unsigned long long>(summary.ItemsProcessed()),
                static_cast<unsigned long long>(options.window_size),
                static_cast<unsigned long long>(options.window_buckets));
  } else {
    std::printf("# %zu heavy hitters at phi=%.3f over %llu ingested "
                "items\n",
                hitters.size(), phi,
                static_cast<unsigned long long>(over));
  }
  for (const auto& hh : hitters) {
    std::printf("%-24llu %14.0f %8.2f%%\n",
                static_cast<unsigned long long>(hh.item), hh.estimate,
                m > 0 ? 100.0 * hh.estimate / m : 0.0);
  }
}

/// Prints a snapshot's header and heavy-hitter report.
int CmdLoad(const Args& a) {
  if (a.positional.size() != 1) {
    std::fprintf(stderr, "usage: l1hh_cli load <snapshot> [--phi=P]\n");
    return 2;
  }
  const std::string& path = a.positional[0];
  // One file read; the header peek and the reconstruction each parse the
  // shared buffer (twice through the container — fine on a CLI path, and
  // it guarantees both views describe the same bytes).
  std::ifstream file(path, std::ios::binary);
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(file)),
                             std::istreambuf_iterator<char>());
  if (!file && bytes.empty()) {
    std::fprintf(stderr, "load failed: cannot read '%s'\n", path.c_str());
    return 1;
  }
  // A grouped container (`run --group-col --save=FILE`) reloads into the
  // per-group report; the magic in the first 8 bytes says which family
  // this file is.
  if (bytes.size() >= 8 && std::memcmp(bytes.data(), "L1HHGRUP", 8) == 0) {
    Status status;
    auto grouped = LoadGrouped(bytes, &status);
    if (grouped == nullptr) {
      std::fprintf(stderr, "load failed: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("# %s: grouped, %zu groups, %llu items, %llu evicted "
                "groups, file=%zu bytes\n",
                path.c_str(), grouped->group_count(),
                static_cast<unsigned long long>(grouped->ItemsProcessed()),
                static_cast<unsigned long long>(grouped->evicted_groups()),
                bytes.size());
    for (const uint64_t g : grouped->GroupKeys()) {
      const Summary* summary = grouped->Find(g);
      const double phi = a.phi_given ? a.phi : summary->Options().phi;
      const auto over = static_cast<double>(summary->CoveredItems());
      for (const auto& hh : grouped->HeavyHitters(g, phi)) {
        std::printf("%-12llu %12llu %14.0f %8.2f%%\n",
                    static_cast<unsigned long long>(g),
                    static_cast<unsigned long long>(hh.item), hh.estimate,
                    over > 0 ? 100.0 * hh.estimate / over : 0.0);
      }
    }
    return 0;
  }
  SnapshotInfo info;
  Status status = ReadSnapshotInfo(bytes, &info);
  if (!status.ok()) {
    std::fprintf(stderr, "load failed: %s\n", status.ToString().c_str());
    return 1;
  }
  auto summary = LoadSummary(bytes, &status);
  if (summary == nullptr) {
    std::fprintf(stderr, "load failed: %s\n", status.ToString().c_str());
    return 1;
  }
  PrintSnapshotHeader(path.c_str(), info);
  PrintReport(*summary, a.phi_given ? a.phi : info.options.phi);
  return 0;
}

/// The telemetry registry as one JSON object: exposition line names
/// (label quotes escaped) keyed to their integer values.
std::string MetricsJsonObject() {
  std::string out = "{";
  bool first = true;
  for (const std::string& line : obs::Registry::Get().ExpositionLines()) {
    const size_t space = line.rfind(' ');
    if (space == std::string::npos) continue;
    std::string key;
    for (const char c : line.substr(0, space)) {
      if (c == '"') key += '\\';
      key += c;
    }
    out += (first ? "\"" : ",\"") + key + "\":" + line.substr(space + 1);
    first = false;
  }
  out += "}";
  return out;
}

/// `--stats[=json]` output when it is NOT embedded in a JSON run report:
/// raw exposition lines, or one {"metrics":{...}} object on one line.
void PrintStats(const std::string& mode) {
  if (mode == "json") {
    std::printf("{\"metrics\":%s}\n", MetricsJsonObject().c_str());
    return;
  }
  std::fputs(obs::Registry::Get().Exposition().c_str(), stdout);
}

/// Machine-readable `run` report (--format=json): one JSON object on one
/// line, so CI smokes can assert on fields instead of grepping prose.
/// Keys are stable; `window` is null for non-windowed runs.  With
/// `--stats` a "metrics" object (the telemetry registry) rides along.
void PrintJsonRunReport(const Args& a, const SummaryRunResult& r,
                        uint64_t m, const obs::AuditReport* audit) {
  std::printf("{\"command\":\"run\",\"algo\":\"%s\",\"m\":%llu,"
              "\"epsilon\":%.6g,\"phi\":%.6g,\"seed\":%llu,"
              "\"shards\":%llu,\"threads\":%llu,",
              a.algorithm.c_str(), static_cast<unsigned long long>(m),
              a.epsilon, a.phi, static_cast<unsigned long long>(a.seed),
              static_cast<unsigned long long>(a.shards),
              static_cast<unsigned long long>(a.threads));
  if (r.windowed) {
    // The EFFECTIVE geometry (defaulted/rounded by the window factory),
    // not the raw flags — so "covered" <= "size" always holds.
    std::printf("\"window\":{\"size\":%llu,\"buckets\":%llu,"
                "\"covered\":%llu},",
                static_cast<unsigned long long>(r.window_size),
                static_cast<unsigned long long>(r.window_buckets),
                static_cast<unsigned long long>(r.scored_items));
  } else {
    std::printf("\"window\":null,");
  }
  std::printf("\"true_heavies\":%zu,\"recalled\":%zu,\"reported\":%zu,"
              "\"recall\":%.6f,\"precision\":%.6f,"
              "\"max_abs_estimate_error\":%.3f,\"space_bits\":%zu,"
              "\"update_ns\":%.1f,\"report\":[",
              r.true_heavies, r.recalled, r.report.size(), r.recall,
              r.precision, r.max_abs_err, r.memory_bytes * 8,
              r.update_ns);
  for (size_t i = 0; i < r.report.size(); ++i) {
    std::printf("%s{\"item\":%llu,\"estimate\":%.1f,\"exact\":%llu}",
                i == 0 ? "" : ",",
                static_cast<unsigned long long>(r.report[i].item),
                r.report[i].estimate,
                static_cast<unsigned long long>(r.report_exact[i]));
  }
  std::printf("]");
  if (audit != nullptr) {
    std::printf(",\"audit\":{\"rate\":%llu,\"shadow_keys\":%zu,"
                "\"audited_keys\":%zu,\"max_abs_error\":%.3f,"
                "\"eps_ratio\":%.6f,\"shadow_heavies\":%zu,"
                "\"recall\":%.6f}",
                static_cast<unsigned long long>(a.audit_rate),
                audit->shadow_keys, audit->audited_keys,
                audit->max_abs_error, audit->eps_ratio,
                audit->shadow_heavies, audit->recall);
  }
  if (!a.stats.empty()) {
    std::printf(",\"metrics\":%s", MetricsJsonObject().c_str());
  }
  std::printf("}\n");
}

/// Coordinator end of the distributed workflow: loads every snapshot,
/// merges them into one summary, and prints the combined report.
int CmdMerge(const Args& a) {
  if (a.positional.empty()) {
    std::fprintf(stderr,
                 "usage: l1hh_cli merge <snapshot>... [--phi=P]\n");
    return 2;
  }
  Status status;
  auto merged = LoadSummaryFromFile(a.positional[0], &status);
  if (merged == nullptr) {
    std::fprintf(stderr, "merge: cannot load '%s': %s\n",
                 a.positional[0].c_str(), status.ToString().c_str());
    return 1;
  }
  for (size_t i = 1; i < a.positional.size(); ++i) {
    auto next = LoadSummaryFromFile(a.positional[i], &status);
    if (next == nullptr) {
      std::fprintf(stderr, "merge: cannot load '%s': %s\n",
                   a.positional[i].c_str(), status.ToString().c_str());
      return 1;
    }
    status = merged->Merge(*next);
    if (!status.ok()) {
      std::fprintf(stderr, "merge: '%s' + '%s': %s\n",
                   a.positional[0].c_str(), a.positional[i].c_str(),
                   status.ToString().c_str());
      return 1;
    }
  }
  const double phi = a.phi_given ? a.phi : merged->Options().phi;
  if (a.format == "json") {
    // No ground truth at a coordinator; the JSON carries the merged
    // report and the size accounting (recall/precision are `run` fields).
    const auto hitters = merged->HeavyHitters(phi);
    std::printf("{\"command\":\"merge\",\"algo\":\"%s\",\"snapshots\":%zu,"
                "\"items\":%llu,\"phi\":%.6g,\"space_bits\":%zu,"
                "\"report\":[",
                std::string(merged->Name()).c_str(), a.positional.size(),
                static_cast<unsigned long long>(merged->ItemsProcessed()),
                phi, merged->MemoryUsageBytes() * 8);
    for (size_t i = 0; i < hitters.size(); ++i) {
      std::printf("%s{\"item\":%llu,\"estimate\":%.1f}",
                  i == 0 ? "" : ",",
                  static_cast<unsigned long long>(hitters[i].item),
                  hitters[i].estimate);
    }
    std::printf("]}\n");
    return 0;
  }
  std::printf("# merged %zu snapshot(s), algo=%s\n", a.positional.size(),
              std::string(merged->Name()).c_str());
  PrintReport(*merged, phi);
  return 0;
}

/// `run --group-col`: self-contained grouped accuracy run.  Generates
/// --groups tenants' Zipf streams (clustered in runs, as MakeGroupedStream
/// documents), ingests them through GroupedSummary::UpdateColumn, and
/// scores every tenant's report against its own exact ground truth — the
/// per-group analogue of CmdRun's Definition-1 scoring.
int CmdRunGrouped(const Args& a) {
  const uint64_t tenants = a.groups != 0 ? a.groups : 2;
  const uint64_t m_total = a.m != 0 ? a.m : kDefaultM;
  const GroupedColumns gs = MakeGroupedStream(a, tenants, m_total);
  const uint64_t per_tenant = gs.items.size() / tenants;
  GroupedSummaryOptions grouped_options;
  grouped_options.algorithm = a.algorithm;
  // Per-tenant stream length: every tenant's summary sizes itself (and
  // the bdw thresholds derive) from ITS stream, not the union.
  grouped_options.summary = ToSummaryOptions(a, per_tenant);
  Status status;
  auto grouped = GroupedSummary::Create(grouped_options, &status);
  if (grouped == nullptr) {
    std::fprintf(stderr, "--algo %s: %s; try `l1hh_cli list`\n",
                 a.algorithm.c_str(), status.ToString().c_str());
    return 2;
  }
  const auto start = std::chrono::steady_clock::now();
  grouped->UpdateColumn(gs.groups.data(), gs.items.data(), gs.items.size());
  const auto end = std::chrono::steady_clock::now();
  const double update_ns =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
              .count()) /
      static_cast<double>(gs.items.size());

  // Exact per-tenant truth, same convention as the evaluation harness:
  // heavy means f > phi * (that tenant's length).
  std::vector<std::unordered_map<uint64_t, uint64_t>> exact(tenants);
  for (size_t i = 0; i < gs.items.size(); ++i) {
    ++exact[gs.groups[i]][gs.items[i]];
  }
  struct GroupScore {
    uint64_t group = 0;
    uint64_t items = 0;
    size_t true_heavies = 0;
    size_t recalled = 0;
    size_t reported = 0;
  };
  std::vector<GroupScore> scores(tenants);
  bool all_recalled = true;
  for (uint64_t t = 0; t < tenants; ++t) {
    GroupScore& s = scores[t];
    s.group = t;
    const Summary* summary = grouped->Find(t);
    s.items = summary != nullptr ? summary->ItemsProcessed() : 0;
    const auto report = grouped->HeavyHitters(t, a.phi);
    s.reported = report.size();
    std::unordered_set<uint64_t> reported_set;
    for (const auto& hh : report) reported_set.insert(hh.item);
    const double threshold = a.phi * static_cast<double>(s.items);
    for (const auto& [item, count] : exact[t]) {
      if (static_cast<double>(count) > threshold) {
        ++s.true_heavies;
        if (reported_set.count(item) != 0) ++s.recalled;
      }
    }
    if (s.recalled != s.true_heavies) all_recalled = false;
  }

  if (!a.stats.empty()) grouped->PublishMetrics();
  if (a.format == "json") {
    std::printf("{\"command\":\"run\",\"grouped\":true,\"algo\":\"%s\","
                "\"tenants\":%llu,\"m_per_tenant\":%llu,\"epsilon\":%.6g,"
                "\"phi\":%.6g,\"seed\":%llu,\"update_ns\":%.1f,"
                "\"space_bits\":%zu,\"groups\":[",
                a.algorithm.c_str(),
                static_cast<unsigned long long>(tenants),
                static_cast<unsigned long long>(per_tenant), a.epsilon,
                a.phi, static_cast<unsigned long long>(a.seed), update_ns,
                grouped->MemoryUsageBytes() * 8);
    for (uint64_t t = 0; t < tenants; ++t) {
      const GroupScore& s = scores[t];
      std::printf("%s{\"group\":%llu,\"items\":%llu,\"true_heavies\":%zu,"
                  "\"recalled\":%zu,\"reported\":%zu,\"recall\":%.6f}",
                  t == 0 ? "" : ",",
                  static_cast<unsigned long long>(s.group),
                  static_cast<unsigned long long>(s.items), s.true_heavies,
                  s.recalled, s.reported,
                  s.true_heavies == 0
                      ? 1.0
                      : static_cast<double>(s.recalled) /
                            static_cast<double>(s.true_heavies));
    }
    std::printf("]");
    if (!a.stats.empty()) {
      std::printf(",\"metrics\":%s", MetricsJsonObject().c_str());
    }
    std::printf("}\n");
  } else {
    std::printf("algo=%s  grouped: %llu tenants x %llu zipf(alpha=%.2f) "
                "items  eps=%.3f  phi=%.3f  seed=%llu  %.1f ns/item\n",
                a.algorithm.c_str(),
                static_cast<unsigned long long>(tenants),
                static_cast<unsigned long long>(per_tenant), a.alpha,
                a.epsilon, a.phi,
                static_cast<unsigned long long>(a.seed), update_ns);
    std::printf("%-12s %12s %14s %10s %10s\n", "group", "items",
                "true-heavies", "recalled", "reported");
    for (const GroupScore& s : scores) {
      std::printf("%-12llu %12llu %14zu %10zu %10zu\n",
                  static_cast<unsigned long long>(s.group),
                  static_cast<unsigned long long>(s.items), s.true_heavies,
                  s.recalled, s.reported);
    }
    std::printf("groups: %zu live   memory: %zu bytes\n",
                grouped->group_count(), grouped->MemoryUsageBytes());
    if (!a.stats.empty()) PrintStats(a.stats);
  }
  if (!a.save_path.empty()) {
    const Status saved = SaveGroupedToFile(*grouped, a.save_path);
    if (!saved.ok()) {
      std::fprintf(stderr, "--save failed: %s\n", saved.ToString().c_str());
      return 1;
    }
    std::fprintf(a.format == "json" ? stderr : stdout,
                 "grouped snapshot written to %s\n", a.save_path.c_str());
  }
  return all_recalled ? 0 : 1;
}

/// Self-contained accuracy run: generates the stream and scores the
/// report against exact ground truth via the shared evaluation harness.
int CmdRun(const Args& a) {
  if (a.group_col) return CmdRunGrouped(a);
  const uint64_t m_arg = a.m != 0 ? a.m : kDefaultM;
  const auto stream = MakeZipfStream(a.n, a.alpha, m_arg, a.seed);
  const SummaryOptions options = ToSummaryOptions(a, stream.size());
  std::unique_ptr<Summary> summary;
  std::unique_ptr<ShardedEngine> engine;
  const SummaryRunResult r =
      a.shards > 1 ? RunShardedSummary(a.algorithm, options, stream, a.phi,
                                       a.shards, a.threads, &engine)
                   : RunRegisteredSummary(a.algorithm, options, stream,
                                          a.phi, &summary);
  if (!r.ok) {
    std::fprintf(stderr, "%s; try `l1hh_cli list`\n", r.error.c_str());
    return 2;
  }
  // Scrape-time gauges (per-shard applied/high-water, per-slot enqueued)
  // are published by the engine; counters/histograms are already live.
  if (!a.stats.empty() && engine != nullptr) engine->PublishMetrics();
  // --audit: the run already consumed the stream, and sampling is by key
  // identity with exact per-key counts, so replaying the same generated
  // stream into the auditor AFTER the fact builds the identical shadow an
  // inline tap would have.
  obs::AuditReport audit_report;
  if (a.audit) {
    obs::AuditorOptions audit_options;
    audit_options.sample_rate = a.audit_rate;
    audit_options.seed = a.seed;
    audit_options.epsilon = a.epsilon;
    audit_options.phi = a.phi;
    obs::AccuracyAuditor auditor(audit_options);
    auditor.ObserveColumn(stream.data(), stream.size());
    if (engine != nullptr) {
      audit_report = auditor.Audit(
          [&engine](const std::vector<uint64_t>& keys) {
            return engine->EstimateBatch(keys);
          },
          [&engine](double phi) { return engine->HeavyHitters(phi); },
          engine->ItemsProcessed());
    } else {
      audit_report = auditor.AuditSummary(*summary);
    }
  }
  if (a.format == "json") {
    PrintJsonRunReport(a, r, m_arg, a.audit ? &audit_report : nullptr);
  } else {
    std::printf("algo=%s  zipf(alpha=%.2f)  n=%llu  m=%llu  eps=%.3f  "
                "phi=%.3f  seed=%llu\n",
                a.algorithm.c_str(), a.alpha,
                static_cast<unsigned long long>(a.n),
                static_cast<unsigned long long>(m_arg), a.epsilon, a.phi,
                static_cast<unsigned long long>(a.seed));
    if (a.shards > 1) {
      std::printf("engine: %llu shards, %llu threads (0 = one per shard), "
                  "%.1f ns/item end-to-end\n",
                  static_cast<unsigned long long>(a.shards),
                  static_cast<unsigned long long>(a.threads), r.update_ns);
    }
    if (r.windowed) {
      std::printf("window: last %llu of %llu items covered; recall/exact "
                  "columns score that suffix\n",
                  static_cast<unsigned long long>(r.scored_items),
                  static_cast<unsigned long long>(m_arg));
    }
    std::printf("%-24s %14s %14s %9s\n", "item", "estimate", "exact",
                "err");
    for (size_t i = 0; i < r.report.size(); ++i) {
      const double f = static_cast<double>(r.report_exact[i]);
      std::printf("%-24llu %14.0f %14.0f %8.2f%%\n",
                  static_cast<unsigned long long>(r.report[i].item),
                  r.report[i].estimate, f,
                  f > 0 ? 100.0 * (r.report[i].estimate - f) / f : 0.0);
    }
    std::printf("true phi-heavy items: %zu   recalled: %zu   reported: "
                "%zu   memory: %zu bytes\n",
                r.true_heavies, r.recalled, r.report.size(),
                r.memory_bytes);
    if (a.audit) {
      std::printf("audit: rate=1/%llu shadow_keys=%zu audited=%zu "
                  "max_abs_err=%.1f eps_ratio=%.4f recall=%.3f (%zu/%zu "
                  "shadow heavies)\n",
                  static_cast<unsigned long long>(a.audit_rate),
                  audit_report.shadow_keys, audit_report.audited_keys,
                  audit_report.max_abs_error, audit_report.eps_ratio,
                  audit_report.recall, audit_report.recalled,
                  audit_report.shadow_heavies);
    }
    if (!a.stats.empty()) PrintStats(a.stats);
  }
  if (!a.save_path.empty()) {
    // Sharded runs snapshot the merged view — one file a coordinator can
    // merge with other runs, same as a single-summary snapshot.
    const Status saved =
        a.shards > 1 ? SaveSummaryToFile(engine->MergedView(), a.save_path)
                     : SaveSummaryToFile(*summary, a.save_path);
    if (!saved.ok()) {
      std::fprintf(stderr, "--save failed: %s\n", saved.ToString().c_str());
      return 1;
    }
    // Keep stdout pure JSON in json mode (one object per run).
    std::fprintf(a.format == "json" ? stderr : stdout,
                 "snapshot written to %s\n", a.save_path.c_str());
  }
  return r.recalled == r.true_heavies ? 0 : 1;
}

int CmdMax(const Args& a, const std::vector<uint64_t>& items) {
  EpsilonMaximum::Options opt;
  opt.epsilon = a.epsilon;
  opt.delta = a.delta;
  opt.universe_size = a.n;
  opt.stream_length = a.m != 0 ? a.m : items.size();
  EpsilonMaximum sketch(opt, a.seed);
  for (const uint64_t x : items) sketch.Insert(x);
  const HeavyHitter hh = sketch.Report();
  std::printf("approx-max item %llu  count ~%.0f  (sketch: %zu bits)\n",
              static_cast<unsigned long long>(hh.item), hh.estimated_count,
              sketch.SpaceBits());
  return 0;
}

int CmdMin(const Args& a, const std::vector<uint64_t>& items) {
  EpsilonMinimum::Options opt;
  opt.epsilon = a.epsilon;
  opt.delta = a.delta;
  opt.universe_size = a.n;
  opt.stream_length = a.m != 0 ? a.m : items.size();
  EpsilonMinimum sketch(opt, a.seed);
  for (const uint64_t x : items) sketch.Insert(x);
  const auto r = sketch.Report();
  std::printf("approx-min item %llu  count ~%.0f  (sketch: %zu bits)\n",
              static_cast<unsigned long long>(r.item), r.estimated_count,
              sketch.SpaceBits());
  return 0;
}

int Demo() {
  std::printf("l1hh demo: 2^20 Zipf(1.2) items, phi=5%%, eps=1%%\n");
  Args a;
  a.alpha = 1.2;
  a.seed = 7;
  return CmdRun(a);
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (argc < 2) {
    return Demo();
  }
  if (!Parse(argc, argv, &args)) {
    return 2;
  }
  if (args.command == "list") return CmdList();
  if (args.command == "generate") return CmdGenerate(args);
  if (args.command.empty() || args.command == "run") return CmdRun(args);
  if (args.command == "load") return CmdLoad(args);
  if (args.command == "merge") return CmdMerge(args);
  // Validate the command BEFORE draining stdin, so a typo'd command prints
  // usage instead of blocking on a terminal until EOF.
  if (args.command != "heavy" && args.command != "save" &&
      args.command != "max" && args.command != "min") {
    std::fprintf(
        stderr,
        "usage: l1hh_cli list|generate|run|heavy|save|load|merge|max|min "
        "[flags]\n"
        "  run    [--algo --shards --threads --save=FILE ...]  self-scored "
        "Zipf run\n"
        "         [--group-col --groups=G]        per-tenant grouped run\n"
        "  heavy  --algo=NAME --m=M [--phi=P]     report HH over stdin "
        "ids\n"
        "         [--group-col]                   stdin is \"group item\" "
        "rows\n"
        "  save   --algo=NAME --out=FILE --m=M    ingest stdin, write "
        "snapshot\n"
        "  load   <snapshot> [--phi=P]            print snapshot header + "
        "report\n"
        "  merge  <snapshot>... [--phi=P]         combine worker "
        "snapshots\n"
        "see the header comment of tools/l1hh_cli.cc and "
        "docs/SNAPSHOTS.md\n");
    return 2;
  }
  // Grouped heavy reads the two-column form itself.
  if (args.command == "heavy" && args.group_col) {
    return CmdHeavyGrouped(args);
  }
  const std::vector<uint64_t> items = ReadStdinItems();
  if (args.command == "heavy") return CmdHeavy(args, items);
  if (args.command == "save") return CmdSave(args, items);
  if (args.command == "max") return CmdMax(args, items);
  return CmdMin(args, items);
}
