// l1hh_serve — long-running serving front end over the sharded engine.
//
// Listens on a Unix-domain socket, ingests item streams from CONCURRENT
// connections (each connection lazily binds to its own engine producer
// slot — the K x P ring grid keeps every ingest path lock-free), and
// answers live queries from the merged-view cache with snapshot
// isolation: a query reflects everything flushed at its start, never a
// torn mid-batch state.
//
//   l1hh_serve --socket=/tmp/l1hh.sock --algo=space_saving
//       [--epsilon=0.01 --phi=0.05 --delta=0.05 --n=16777216 --m=1048576]
//       [--shards=4 --threads=0 --producers=8 --seed=1]
//       [--window=W --buckets=B]
//       [--http=PORT] [--audit-rate=R --audit-interval-ms=1000]
//       [--slow-query-us=10000]
//
// Observability (docs/OBSERVABILITY.md):
//   * Every query verb runs under a QuerySpan with park-wait /
//     merge-rebuild / report / reply-write phases; queries slower than
//     --slow-query-us land in the slow-query ring (`slow` verb below)
//     and bump l1hh_slow_queries_total.
//   * --audit-rate=R hash-samples 1/R of the key space into an exact
//     shadow counter and audits the engine's answers against it every
//     --audit-interval-ms (and at every /metrics scrape), publishing
//     l1hh_audit_observed_eps_ratio et al.  Refused with --window (the
//     shadow counts the whole stream; a window forgets).
//   * --http=PORT (0 = ephemeral; the bound port is printed as
//     "http <port>" after the readiness line) serves GET /metrics
//     (Prometheus text exposition), /healthz, and /readyz on loopback.
//
// Wire protocol, one request per line (replies are lines too):
//
//   <digits>            ingest one item id (no reply — the fast path)
//   bin <N>             ingest a binary batch: N little-endian u64 ids
//                       follow the newline (no reply)
//   flush               wait until everything this server has accepted
//                       is applied; replies "ok <items_applied>"
//   heavy [phi]         heavy-hitter report; replies "hh <count>" then
//                       one "<item> <estimate>" line per hitter
//   estimate <item>     point estimate; replies "est <item> <value>"
//   stats               replies "stats items=.. shards=.. threads=..
//                       producers=.. algo=.. slots=<active>/<total>
//                       slot<p>=<enqueued>..." (one slot<p> field per
//                       producer slot, slot 0 being the engine's own)
//   metrics             replies "metrics <N>" then N lines of
//                       Prometheus-style text exposition
//                       (name{label="v"} value) from the process-wide
//                       telemetry registry (docs/OBSERVABILITY.md)
//   trace [N [sev]]     replies "trace <K>" then the K most recent
//                       lifecycle events from the trace ring; N caps the
//                       count (0 = all), sev in {debug,info,warn} drops
//                       events below that severity
//   slow                replies "slow <N>" then the N most recent
//                       slow-query records (per-phase breakdowns)
//   replicate           start (or restart) replication on this
//                       connection: replies "rconf shards=<K> algo=<A>",
//                       then one full frame per shard, then
//                       "rsync <items>"
//   sync                incremental replication step: one frame per
//                       shard that changed since this connection's last
//                       replicate/sync (delta frames for windowed
//                       shards whose tail still fits the ring, full
//                       frames otherwise; clean shards send nothing),
//                       then "rsync <items>"
//   quit                close this connection
//   shutdown            replies "ok", stops the server process
//
// A frame is "frame <full|delta> <shard> <nbytes>\n" followed by exactly
// nbytes of raw snapshot ("L1HHSNAP") or delta ("L1HHDELT") container
// bytes (src/io/snapshot.h) — self-describing and CRC-sealed, so the
// follower (tools/l1hh_replica.cc) validates each frame before applying
// it.  Replication baselines are per-connection: a reconnecting follower
// just sends "replicate" again and gets a fresh full sync.
//
// Anything else gets "err <reason>".  A connection that only queries
// never claims a producer slot; when all --producers slots are taken,
// ingest lines on additional connections get "err" but queries still
// work.  The final item count is printed on stdout at exit.
#include <algorithm>
#include <atomic>
#include <bit>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "engine/sharded_engine.h"
#include "obs/audit.h"
#include "obs/http_exporter.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "summary/summary.h"
#include "util/status.h"

namespace {

using namespace l1hh;

struct ServeArgs {
  std::string socket_path;
  std::string algorithm = "space_saving";
  double epsilon = 0.01;
  double phi = 0.05;
  double delta = 0.05;
  uint64_t n = uint64_t{1} << 24;
  uint64_t m = uint64_t{1} << 20;
  uint64_t seed = 1;
  uint64_t shards = 4;
  uint64_t threads = 0;
  // External producer slots (max concurrent ingesting connections).
  uint64_t producers = 8;
  uint64_t window = 0;
  uint64_t buckets = 0;
  // Observability knobs.
  bool http_enabled = false;  // --http given (port 0 = ephemeral)
  uint64_t http_port = 0;
  uint64_t audit_rate = 0;  // 0 = auditor off
  uint64_t audit_interval_ms = 1000;
  uint64_t slow_query_us = 10000;  // 0 = slow-query capture off
};

const char* const kKnownFlags[] = {
    "--socket", "--algo",    "--algorithm", "--epsilon", "--phi",
    "--delta",  "--n",       "--m",         "--seed",    "--shards",
    "--threads", "--producers", "--window", "--buckets",
    "--http", "--audit-rate", "--audit-interval-ms", "--slow-query-us",
};

bool Parse(int argc, char** argv, ServeArgs* out) {
  for (int i = 1; i < argc; ++i) {
    std::string key = argv[i];
    std::string value;
    const size_t eq = key.find('=');
    if (eq != std::string::npos) {
      value = key.substr(eq + 1);
      key = key.substr(0, eq);
    } else {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flag %s needs a value\n", key.c_str());
        return false;
      }
      value = argv[++i];
    }
    if (value.empty()) {
      std::fprintf(stderr, "flag %s needs a non-empty value\n", key.c_str());
      return false;
    }
    if (key == "--socket") {
      out->socket_path = value;
    } else if (key == "--algo" || key == "--algorithm") {
      out->algorithm = value;
    } else if (key == "--epsilon") {
      out->epsilon = std::atof(value.c_str());
    } else if (key == "--phi") {
      out->phi = std::atof(value.c_str());
    } else if (key == "--delta") {
      out->delta = std::atof(value.c_str());
    } else if (key == "--n") {
      out->n = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "--m") {
      out->m = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "--seed") {
      out->seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "--shards") {
      out->shards = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "--threads") {
      out->threads = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "--producers") {
      out->producers = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "--window") {
      out->window = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "--buckets") {
      out->buckets = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "--http") {
      out->http_enabled = true;
      out->http_port = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "--audit-rate") {
      out->audit_rate = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "--audit-interval-ms") {
      out->audit_interval_ms = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "--slow-query-us") {
      out->slow_query_us = std::strtoull(value.c_str(), nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag: %s\nknown flags:", key.c_str());
      for (const char* known : kKnownFlags) {
        std::fprintf(stderr, " %s", known);
      }
      std::fprintf(stderr, "\n");
      return false;
    }
  }
  if (out->socket_path.empty()) {
    std::fprintf(stderr, "--socket=<path> is required\n");
    return false;
  }
  if (out->epsilon <= 0 || out->phi <= 0 || out->delta <= 0) {
    std::fprintf(stderr, "--epsilon, --phi, and --delta must be > 0\n");
    return false;
  }
  if (out->shards == 0 || out->producers == 0) {
    std::fprintf(stderr, "--shards and --producers must be >= 1\n");
    return false;
  }
  if (out->http_port > 65535) {
    std::fprintf(stderr, "--http port must be <= 65535\n");
    return false;
  }
  if (out->audit_rate != 0 && out->window != 0) {
    // The shadow counts the WHOLE stream; a windowed engine forgets, so
    // every comparison would flag phantom over-estimates.
    std::fprintf(stderr, "--audit-rate cannot be combined with --window\n");
    return false;
  }
  if (out->window != 0 && !IsWindowedSummaryName(out->algorithm)) {
    out->algorithm = std::string(kWindowedPrefix) + out->algorithm;
  }
  return true;
}

// ---- Socket helpers ---------------------------------------------------

bool WriteAll(int fd, const char* data, size_t n) {
  size_t done = 0;
  while (done < n) {
    const ssize_t wrote = ::write(fd, data + done, n - done);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<size_t>(wrote);
  }
  return true;
}

bool WriteLine(int fd, const std::string& line) {
  return WriteAll(fd, (line + "\n").c_str(), line.size() + 1);
}

// Buffered reader that supports both newline framing (text requests)
// and exact-length reads (the `bin N` payload).
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  // Strips the trailing newline; false on EOF or error.
  bool ReadLine(std::string* line) {
    while (true) {
      const size_t nl = buffer_.find('\n', pos_);
      if (nl != std::string::npos) {
        line->assign(buffer_, pos_, nl - pos_);
        pos_ = nl + 1;
        Compact();
        return true;
      }
      if (!Fill()) return false;
    }
  }

  bool ReadExact(char* out, size_t n) {
    size_t got = 0;
    const size_t buffered = std::min(n, buffer_.size() - pos_);
    std::memcpy(out, buffer_.data() + pos_, buffered);
    pos_ += buffered;
    got += buffered;
    Compact();
    while (got < n) {
      const ssize_t r = ::read(fd_, out + got, n - got);
      if (r < 0 && errno == EINTR) continue;
      if (r <= 0) return false;
      got += static_cast<size_t>(r);
    }
    return true;
  }

 private:
  bool Fill() {
    Compact();
    char chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) return true;
    if (n <= 0) return false;
    buffer_.append(chunk, static_cast<size_t>(n));
    return true;
  }

  void Compact() {
    if (pos_ == 0) return;
    buffer_.erase(0, pos_);
    pos_ = 0;
  }

  int fd_;
  std::string buffer_;
  size_t pos_ = 0;
};

// ---- Server -----------------------------------------------------------

// A binary batch above this is a protocol error, not a workload (guards
// a garbage length from allocating the machine away).
constexpr uint64_t kMaxBinaryBatch = uint64_t{1} << 26;

struct Server {
  ShardedEngine* engine = nullptr;
  obs::AccuracyAuditor* auditor = nullptr;  // null = auditing off
  double default_phi = 0.05;
  std::atomic<bool> stop{false};
  int listen_fd = -1;
  std::mutex conn_mutex;
  std::vector<int> conn_fds;
};

// One audit pass against the live engine: flush so the shadow and the
// engine agree on the stream prefix, then compare.  Caller guarantees
// server->auditor != nullptr.
obs::AuditReport RunAudit(Server* server) {
  ShardedEngine& engine = *server->engine;
  engine.Flush();
  const uint64_t total = engine.ItemsProcessed();
  return server->auditor->Audit(
      [&engine](const std::vector<uint64_t>& keys) {
        return engine.EstimateBatch(keys);
      },
      [&engine](double phi) { return engine.HeavyHitters(phi); }, total);
}

Server* g_server = nullptr;

void OnSignal(int) {
  // Async-signal-safe shutdown: flag + close the listener so the accept
  // loop wakes; the loop does the orderly teardown.
  if (g_server != nullptr) {
    g_server->stop.store(true, std::memory_order_relaxed);
    const int fd = g_server->listen_fd;
    if (fd >= 0) ::close(fd);
  }
}

bool ParseU64(const char* text, uint64_t* out) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (end == text || errno == ERANGE) return false;
  while (*end == ' ') ++end;
  if (*end != '\0') return false;
  *out = static_cast<uint64_t>(value);
  return true;
}

// One thread per connection.  The producer slot is claimed lazily on the
// first ingest request, so query-only clients (dashboards) never consume
// one, and released when the connection closes.
void HandleConnection(Server* server, int fd) {
  static obs::Counter* const connections_ctr =
      obs::GetCounter("l1hh_serve_connections_total");
  static obs::Gauge* const active_conns =
      obs::GetGauge("l1hh_serve_active_connections");
  static obs::Counter* const ingest_ctr =
      obs::GetCounter("l1hh_serve_ingest_items_total");
  static obs::Counter* const ingest_err_ctr =
      obs::GetCounter("l1hh_serve_ingest_errors_total");
  static obs::Counter* const queries_ctr =
      obs::GetCounter("l1hh_serve_queries_total");
  connections_ctr->Inc();
  active_conns->Add(1);
  LineReader reader(fd);
  std::unique_ptr<ShardedEngine::Producer> producer;
  ShardedEngine& engine = *server->engine;
  std::string line;
  std::vector<uint64_t> batch;
  // Per-connection replication baselines: what the follower on the other
  // end of THIS socket holds per shard (empty until "replicate").
  std::vector<ShardBaseline> replica_baselines;
  auto ensure_producer = [&]() -> bool {
    if (producer != nullptr) return true;
    Status status;
    producer = engine.RegisterProducer(&status);
    if (producer == nullptr) {
      WriteLine(fd, "err " + status.ToString());
      return false;
    }
    return true;
  };
  while (reader.ReadLine(&line)) {
    if (line.empty()) continue;
    if (line[0] >= '0' && line[0] <= '9') {
      uint64_t item = 0;
      if (!ParseU64(line.c_str(), &item)) {
        ingest_err_ctr->Inc();
        WriteLine(fd, "err malformed item id '" + line + "'");
        continue;
      }
      if (!ensure_producer()) {
        ingest_err_ctr->Inc();
        continue;
      }
      producer->Update(item);
      if (server->auditor != nullptr) server->auditor->Observe(item);
      ingest_ctr->Inc();
      continue;
    }
    if (line.rfind("bin ", 0) == 0) {
      uint64_t count = 0;
      if (!ParseU64(line.c_str() + 4, &count) || count > kMaxBinaryBatch) {
        ingest_err_ctr->Inc();
        WriteLine(fd, "err malformed binary batch header '" + line + "'");
        break;  // the payload length is unknown; the stream is desynced
      }
      batch.resize(static_cast<size_t>(count));
      if (!reader.ReadExact(reinterpret_cast<char*>(batch.data()),
                            static_cast<size_t>(count) * sizeof(uint64_t))) {
        break;
      }
      // The wire format is little-endian u64; byte-swap on a big-endian
      // host so snapshots of the served stream stay portable.
      if constexpr (std::endian::native == std::endian::big) {
        for (uint64_t& item : batch) item = __builtin_bswap64(item);
      }
      if (!ensure_producer()) {
        ingest_err_ctr->Inc();
        continue;
      }
      producer->UpdateBatch(batch);
      if (server->auditor != nullptr) {
        server->auditor->ObserveColumn(batch.data(), batch.size());
      }
      ingest_ctr->Inc(count);
      continue;
    }
    if (line == "flush") {
      queries_ctr->Inc();
      engine.Flush();
      WriteLine(fd, "ok " + std::to_string(engine.ItemsProcessed()));
      continue;
    }
    if (line == "heavy" || line.rfind("heavy ", 0) == 0) {
      queries_ctr->Inc();
      double phi = server->default_phi;
      if (line.size() > 6) {
        phi = std::atof(line.c_str() + 6);
        if (phi <= 0) {
          WriteLine(fd, "err phi must be > 0");
          continue;
        }
      }
      // The span owns the whole verb: the engine's park-wait /
      // merge-rebuild / report phases land on it, reply_write is ours.
      obs::QuerySpan span("heavy");
      const std::vector<ItemEstimate> report = engine.HeavyHitters(phi);
      std::string reply = "hh " + std::to_string(report.size());
      char entry[64];
      for (const ItemEstimate& hh : report) {
        std::snprintf(entry, sizeof(entry), "\n%llu %.17g",
                      static_cast<unsigned long long>(hh.item), hh.estimate);
        reply += entry;
      }
      {
        obs::ScopedPhase write_phase("reply_write");
        WriteLine(fd, reply);
      }
      continue;
    }
    if (line.rfind("estimate ", 0) == 0) {
      queries_ctr->Inc();
      uint64_t item = 0;
      if (!ParseU64(line.c_str() + 9, &item)) {
        WriteLine(fd, "err malformed item id in '" + line + "'");
        continue;
      }
      obs::QuerySpan span("estimate");
      char reply[64];
      std::snprintf(reply, sizeof(reply), "est %llu %.17g",
                    static_cast<unsigned long long>(item),
                    engine.Estimate(item));
      {
        obs::ScopedPhase write_phase("reply_write");
        WriteLine(fd, reply);
      }
      continue;
    }
    if (line == "stats") {
      queries_ctr->Inc();
      obs::QuerySpan span("stats");
      // Per-slot enqueued counts + slot occupancy ride after the legacy
      // fields (existing clients key on the prefix).  Slot exhaustion is
      // visible here BEFORE ingesting connections start drawing "err".
      const EngineMetrics m = engine.Metrics();
      std::string reply =
          "stats items=" + std::to_string(engine.ItemsProcessed()) +
          " shards=" + std::to_string(engine.num_shards()) +
          " threads=" + std::to_string(engine.num_threads()) +
          " producers=" + std::to_string(m.active_producers) +
          " algo=" + engine.algorithm() +
          " slots=" + std::to_string(m.active_producers) + "/" +
          std::to_string(m.max_producers - 1);
      for (size_t p = 0; p < m.slot_enqueued.size(); ++p) {
        reply += " slot" + std::to_string(p) + "=" +
                 std::to_string(m.slot_enqueued[p]) +
                 (m.slot_active[p] != 0 ? "*" : "");
      }
      {
        obs::ScopedPhase write_phase("reply_write");
        WriteLine(fd, reply);
      }
      continue;
    }
    if (line == "metrics") {
      queries_ctr->Inc();
      // Point-in-time gauges are published at scrape time; counters and
      // histograms are already live.  An enabled auditor runs a pass here
      // too, so a scrape always reads a fresh eps-ratio.
      engine.PublishMetrics();
      if (server->auditor != nullptr) RunAudit(server);
      const std::vector<std::string> lines =
          obs::Registry::Get().ExpositionLines();
      std::string reply = "metrics " + std::to_string(lines.size());
      for (const std::string& metric_line : lines) {
        reply += "\n" + metric_line;
      }
      WriteLine(fd, reply);
      continue;
    }
    if (line == "trace" || line.rfind("trace ", 0) == 0) {
      queries_ctr->Inc();
      uint64_t max_events = 0;  // 0 = everything in the ring
      obs::Severity min_sev = obs::Severity::kDebug;
      bool args_ok = true;
      if (line.size() > 5) {
        std::istringstream in(line.substr(6));
        std::string count_text, sev_text, extra;
        in >> count_text >> sev_text >> extra;
        if (!count_text.empty() && !ParseU64(count_text.c_str(), &max_events)) {
          args_ok = false;
        }
        if (args_ok && !sev_text.empty() &&
            !obs::ParseSeverity(sev_text, &min_sev)) {
          args_ok = false;
        }
        if (!extra.empty()) args_ok = false;
      }
      if (!args_ok) {
        WriteLine(fd, "err usage: trace [N [debug|info|warn]]");
        continue;
      }
      const std::vector<std::string> lines = obs::TraceRing::Get().DrainText(
          static_cast<size_t>(max_events), min_sev);
      std::string reply = "trace " + std::to_string(lines.size());
      for (const std::string& event_line : lines) {
        reply += "\n" + event_line;
      }
      WriteLine(fd, reply);
      continue;
    }
    if (line == "slow") {
      queries_ctr->Inc();
      const std::vector<std::string> lines =
          obs::SlowQueryRing::Get().DrainText();
      std::string reply = "slow " + std::to_string(lines.size());
      for (const std::string& slow_line : lines) {
        reply += "\n" + slow_line;
      }
      WriteLine(fd, reply);
      continue;
    }
    if (line == "replicate" || line == "sync") {
      // "sync" before any "replicate" degenerates to a cold full sync:
      // the connection has no baselines, so every shard ships full.
      const bool cold = line == "replicate" || replica_baselines.empty();
      std::vector<ShardFrame> frames;
      uint64_t total = 0;
      const Status captured = engine.CaptureFrames(
          cold ? std::vector<ShardBaseline>{} : replica_baselines,
          ShardedEngine::kMaxDeltaChain, &frames, &total);
      if (!captured.ok()) {
        WriteLine(fd, "err " + captured.ToString());
        continue;
      }
      if (cold) {
        replica_baselines.assign(engine.num_shards(), ShardBaseline{});
        if (!WriteLine(fd, "rconf shards=" +
                               std::to_string(engine.num_shards()) +
                               " algo=" + engine.algorithm())) {
          break;
        }
      }
      bool io_ok = true;
      for (const ShardFrame& frame : frames) {
        const std::string header =
            std::string("frame ") + (frame.delta ? "delta" : "full") + " " +
            std::to_string(frame.shard) + " " +
            std::to_string(frame.bytes.size());
        if (!WriteLine(fd, header) ||
            !WriteAll(fd, reinterpret_cast<const char*>(frame.bytes.data()),
                      frame.bytes.size())) {
          io_ok = false;
          break;
        }
        // The follower now holds this state; the next sync diffs
        // against it.
        ShardBaseline& baseline = replica_baselines[frame.shard];
        baseline.chain = frame.delta ? baseline.chain + 1 : 0;
        baseline.valid = true;
        baseline.applied = frame.applied;
        baseline.rotations = frame.rotations;
      }
      if (io_ok && server->auditor != nullptr) {
        // Ship exact shadow truth alongside the frames, so the follower
        // can audit ITS merged view against the primary's sampled
        // substream without ever seeing the raw stream.  `total` is the
        // applied count the frames advance the follower to — the same m
        // the shadow's counts were taken at (CaptureFrames flushed).
        const obs::AuditorOptions& opts = server->auditor->options();
        const auto shadow = server->auditor->TopShadow(opts.audit_top_k);
        char header[160];
        std::snprintf(header, sizeof(header),
                      "audit %llu %.17g %.17g %llu %zu",
                      static_cast<unsigned long long>(opts.sample_rate),
                      opts.epsilon, opts.phi,
                      static_cast<unsigned long long>(total), shadow.size());
        io_ok = WriteLine(fd, header);
        for (const auto& [key, count] : shadow) {
          if (!io_ok) break;
          io_ok = WriteLine(fd, std::to_string(key) + " " +
                                    std::to_string(count));
        }
      }
      if (!io_ok || !WriteLine(fd, "rsync " + std::to_string(total))) break;
      continue;
    }
    if (line == "quit") break;
    if (line == "shutdown") {
      WriteLine(fd, "ok");
      server->stop.store(true, std::memory_order_relaxed);
      // Wake the accept loop the same way the signal handler does.
      ::shutdown(server->listen_fd, SHUT_RDWR);
      break;
    }
    WriteLine(fd, "err unknown request '" + line + "'");
  }
  active_conns->Add(-1);
  // ~Producer releases the slot for the next connection.
}

int Serve(const ServeArgs& args) {
  ShardedEngineOptions options;
  options.algorithm = args.algorithm;
  options.summary.epsilon = args.epsilon;
  options.summary.phi = args.phi;
  options.summary.delta = args.delta;
  options.summary.universe_size = args.n;
  options.summary.stream_length = args.m;
  options.summary.seed = args.seed;
  options.summary.window_size = args.window;
  if (args.buckets != 0) options.summary.window_buckets = args.buckets;
  options.num_shards = static_cast<size_t>(args.shards);
  options.num_threads = static_cast<size_t>(args.threads);
  options.max_producers = static_cast<size_t>(args.producers) + 1;
  Status status;
  auto engine = ShardedEngine::Create(options, &status);
  if (engine == nullptr) {
    std::fprintf(stderr, "cannot create engine: %s\n",
                 status.ToString().c_str());
    return 2;
  }

  obs::EmitBuildInfo("l1hh_serve", args.algorithm);
  obs::SetSlowQueryThresholdNs(args.slow_query_us * 1000);

  std::unique_ptr<obs::AccuracyAuditor> auditor;
  if (args.audit_rate != 0) {
    obs::AuditorOptions audit_options;
    audit_options.sample_rate = args.audit_rate;
    audit_options.seed = args.seed;
    audit_options.epsilon = args.epsilon;
    audit_options.phi = args.phi;
    auditor = std::make_unique<obs::AccuracyAuditor>(audit_options);
  }

  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    std::perror("socket");
    return 2;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (args.socket_path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "--socket path too long (max %zu bytes)\n",
                 sizeof(addr.sun_path) - 1);
    return 2;
  }
  std::strncpy(addr.sun_path, args.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  ::unlink(args.socket_path.c_str());
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    std::perror("bind");
    return 2;
  }
  if (::listen(listen_fd, 64) != 0) {
    std::perror("listen");
    return 2;
  }

  Server server;
  server.engine = engine.get();
  server.auditor = auditor.get();
  server.default_phi = args.phi;
  server.listen_fd = listen_fd;
  g_server = &server;
  std::signal(SIGPIPE, SIG_IGN);
  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);

  // HTTP telemetry surface.  /metrics publishes gauges and (when on)
  // runs an audit pass at scrape time, so every scrape is fresh;
  // /healthz says the process is alive, /readyz that it is accepting
  // (for the primary, alive == ready — it owns the truth).
  std::unique_ptr<obs::HttpExporter> exporter;
  if (args.http_enabled) {
    obs::HttpExporterOptions http_options;
    http_options.port = static_cast<uint16_t>(args.http_port);
    std::map<std::string, obs::HttpExporter::Handler> handlers;
    handlers["/metrics"] = [&server] {
      server.engine->PublishMetrics();
      if (server.auditor != nullptr) RunAudit(&server);
      const std::vector<std::string> lines =
          obs::Registry::Get().ExpositionLines();
      std::string body;
      for (const std::string& metric_line : lines) {
        body += metric_line;
        body += '\n';
      }
      return obs::HttpResponse{200, "text/plain; version=0.0.4", body};
    };
    handlers["/healthz"] = [] {
      return obs::HttpResponse{200, "text/plain; charset=utf-8", "ok\n"};
    };
    handlers["/readyz"] = [&server] {
      const bool ready = !server.stop.load(std::memory_order_relaxed);
      return obs::HttpResponse{ready ? 200 : 503,
                               "text/plain; charset=utf-8",
                               ready ? "ok\n" : "stopping\n"};
    };
    Status http_status;
    exporter = obs::HttpExporter::Create(http_options, std::move(handlers),
                                         &http_status);
    if (exporter == nullptr) {
      std::fprintf(stderr, "cannot start http exporter: %s\n",
                   http_status.ToString().c_str());
      return 2;
    }
  }

  // Periodic audit thread: keeps the l1hh_audit_* gauges warm even when
  // nobody scrapes (operators watching `metrics` over the socket).
  std::thread audit_thread;
  std::mutex audit_mutex;
  std::condition_variable audit_cv;
  bool audit_stop = false;
  if (auditor != nullptr && args.audit_interval_ms != 0) {
    audit_thread = std::thread([&] {
      std::unique_lock<std::mutex> lock(audit_mutex);
      while (!audit_cv.wait_for(
          lock, std::chrono::milliseconds(args.audit_interval_ms),
          [&] { return audit_stop; })) {
        lock.unlock();
        RunAudit(&server);
        lock.lock();
      }
    });
  }

  // The readiness line clients (and tests/serve_test.cc) wait for.
  std::printf("listening %s\n", args.socket_path.c_str());
  if (exporter != nullptr) {
    std::printf("http %u\n", static_cast<unsigned>(exporter->port()));
  }
  std::fflush(stdout);

  std::vector<std::thread> connections;
  while (!server.stop.load(std::memory_order_relaxed)) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed by shutdown/signal
    }
    {
      std::lock_guard<std::mutex> lock(server.conn_mutex);
      server.conn_fds.push_back(fd);
    }
    connections.emplace_back(
        [&server, fd] { HandleConnection(&server, fd); });
  }

  // Orderly teardown: kick every live connection off its read, join the
  // handlers (releasing their producer slots), then report and exit.
  {
    std::lock_guard<std::mutex> lock(server.conn_mutex);
    for (const int fd : server.conn_fds) ::shutdown(fd, SHUT_RDWR);
  }
  for (auto& thread : connections) thread.join();
  {
    std::lock_guard<std::mutex> lock(server.conn_mutex);
    for (const int fd : server.conn_fds) ::close(fd);
  }
  // The exporter and the audit thread reference the engine; stop both
  // before it goes away.
  if (exporter != nullptr) exporter->Stop();
  if (audit_thread.joinable()) {
    {
      std::lock_guard<std::mutex> lock(audit_mutex);
      audit_stop = true;
    }
    audit_cv.notify_all();
    audit_thread.join();
  }
  ::close(listen_fd);
  ::unlink(args.socket_path.c_str());
  engine->Flush();
  std::printf("served %llu items\n",
              static_cast<unsigned long long>(engine->ItemsProcessed()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ServeArgs args;
  if (!Parse(argc, argv, &args)) return 2;
  return Serve(args);
}
