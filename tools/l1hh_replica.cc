// l1hh_replica — warm standby for an l1hh_serve primary.
//
// Connects to a primary's Unix socket, performs an initial full sync
// ("replicate"), then tails incremental frames ("sync" every
// --interval-ms): full snapshot containers for plain or heavily-rotated
// shards, delta containers carrying only the changed window tail for
// everything else.  Every frame is CRC-validated and clock-checked by
// the snapshot layer before it touches replica state, so a torn or
// reordered frame is a refused frame, never a silently wrong standby.
//
// The replica simultaneously serves queries on its OWN socket with the
// same text protocol as the primary's read side — and keeps serving
// after the primary dies (the failover story: answers reflect the last
// completed sync, within the structures' eps guarantee of the primary's
// final state, as tests/replication_test.cc and the CI smoke pin).
//
//   l1hh_replica --primary=/tmp/l1hh.sock --socket=/tmp/l1hh-replica.sock
//       [--interval-ms=200] [--http=PORT] [--ready-lag=65536]
//       [--slow-query-us=10000]
//
// Replica-side protocol (one request per line):
//
//   heavy [phi]         heavy-hitter report from the replicated state
//   estimate <item>     point estimate
//   stats               "stats items=<primary items at last sync>
//                       shards=<K> syncs=<completed syncs>
//                       primary=<up|lost> algo=<name> lag_items=<n>"
//                       (lag_items = primary items at the last rsync
//                       minus items applied to replica state, clamped at
//                       0 — the warm-standby health signal)
//   metrics             "metrics <N>" then N lines of Prometheus-style
//                       text exposition from the telemetry registry
//   trace [N [sev]]     "trace <K>" then the K most recent trace events
//                       (N caps, sev in {debug,info,warn} filters)
//   slow                "slow <N>" then the recent slow-query records
//   quit                close this connection
//   shutdown            replies "ok", stops the replica process
//
// Observability: query verbs run under spans with the same phase
// taxonomy as the primary's, and the post-sync re-merge cost is exported
// as l1hh_replica_view_rebuild_seconds (the ROADMAP's "replica rebuild
// is invisible" residue).  When the primary runs --audit-rate, each sync
// round ships its exact shadow truth ("audit" header + key/count pairs);
// the replica audits ITS merged view against that shadow at every
// /metrics scrape, so a standby serving stale or corrupt answers is an
// alert, not a surprise at failover.  --http=PORT mounts /metrics,
// /healthz, and /readyz; readiness means at least one completed sync AND
// lag_items <= --ready-lag, or the primary is lost (failover mode: the
// last synced view is by definition the best answer available).
#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_set>
#include <utility>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "io/snapshot.h"
#include "obs/audit.h"
#include "obs/http_exporter.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "summary/summary.h"
#include "util/status.h"

namespace {

using namespace l1hh;

struct ReplicaArgs {
  std::string primary_path;
  std::string socket_path;
  uint64_t interval_ms = 200;
  double default_phi = 0.05;
  bool http_enabled = false;  // --http given (port 0 = ephemeral)
  uint64_t http_port = 0;
  uint64_t ready_lag = 65536;  // /readyz red above this lag_items
  uint64_t slow_query_us = 10000;
};

bool Parse(int argc, char** argv, ReplicaArgs* out) {
  for (int i = 1; i < argc; ++i) {
    std::string key = argv[i];
    std::string value;
    const size_t eq = key.find('=');
    if (eq != std::string::npos) {
      value = key.substr(eq + 1);
      key = key.substr(0, eq);
    } else {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flag %s needs a value\n", key.c_str());
        return false;
      }
      value = argv[++i];
    }
    if (value.empty()) {
      std::fprintf(stderr, "flag %s needs a non-empty value\n", key.c_str());
      return false;
    }
    if (key == "--primary") {
      out->primary_path = value;
    } else if (key == "--socket") {
      out->socket_path = value;
    } else if (key == "--interval-ms") {
      out->interval_ms = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "--phi") {
      out->default_phi = std::atof(value.c_str());
    } else if (key == "--http") {
      out->http_enabled = true;
      out->http_port = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "--ready-lag") {
      out->ready_lag = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "--slow-query-us") {
      out->slow_query_us = std::strtoull(value.c_str(), nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "unknown flag: %s\nknown flags: --primary --socket "
                   "--interval-ms --phi --http --ready-lag --slow-query-us\n",
                   key.c_str());
      return false;
    }
  }
  if (out->primary_path.empty() || out->socket_path.empty()) {
    std::fprintf(stderr, "--primary=<sock> and --socket=<sock> are required\n");
    return false;
  }
  if (out->http_port > 65535) {
    std::fprintf(stderr, "--http port must be <= 65535\n");
    return false;
  }
  return true;
}

// ---- Socket helpers (same wire idioms as l1hh_serve.cc) ----------------

bool WriteAll(int fd, const char* data, size_t n) {
  size_t done = 0;
  while (done < n) {
    const ssize_t wrote = ::write(fd, data + done, n - done);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<size_t>(wrote);
  }
  return true;
}

bool WriteLine(int fd, const std::string& line) {
  return WriteAll(fd, (line + "\n").c_str(), line.size() + 1);
}

class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  bool ReadLine(std::string* line) {
    while (true) {
      const size_t nl = buffer_.find('\n', pos_);
      if (nl != std::string::npos) {
        line->assign(buffer_, pos_, nl - pos_);
        pos_ = nl + 1;
        Compact();
        return true;
      }
      if (!Fill()) return false;
    }
  }

  bool ReadExact(char* out, size_t n) {
    size_t got = 0;
    const size_t buffered = std::min(n, buffer_.size() - pos_);
    std::memcpy(out, buffer_.data() + pos_, buffered);
    pos_ += buffered;
    got += buffered;
    Compact();
    while (got < n) {
      const ssize_t r = ::read(fd_, out + got, n - got);
      if (r < 0 && errno == EINTR) continue;
      if (r <= 0) return false;
      got += static_cast<size_t>(r);
    }
    return true;
  }

 private:
  bool Fill() {
    Compact();
    char chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) return true;
    if (n <= 0) return false;
    buffer_.append(chunk, static_cast<size_t>(n));
    return true;
  }

  void Compact() {
    if (pos_ == 0) return;
    buffer_.erase(0, pos_);
    pos_ = 0;
  }

  int fd_;
  std::string buffer_;
  size_t pos_ = 0;
};

// ---- Replicated state --------------------------------------------------

// A frame above this is a protocol error, not a snapshot (same guard as
// the primary's binary-batch bound).
constexpr uint64_t kMaxFrameBytes = uint64_t{1} << 28;

struct ReplicaState {
  std::mutex mutex;
  // Shard summaries, rebuilt/advanced frame by frame.  Queries merge them
  // on demand behind the usual epoch cache.
  std::vector<std::unique_ptr<Summary>> shards;
  std::string algorithm;
  uint64_t items = 0;  // primary's applied count at the last completed sync
  uint64_t syncs = 0;  // completed replicate/sync rounds
  std::atomic<bool> primary_up{false};

  std::unique_ptr<Summary> merged;
  uint64_t merged_epoch = ~uint64_t{0};

  // Shadow truth shipped by an auditing primary ("audit" lines in the
  // sync stream): exact per-key counts for the primary's sampled key
  // subspace, at the stream position audit_items.  Guarded by `mutex`.
  bool audit_valid = false;
  double audit_epsilon = 0.0;
  double audit_phi = 0.0;
  uint64_t audit_items = 0;
  std::vector<std::pair<uint64_t, uint64_t>> audit_shadow;

  std::atomic<bool> stop{false};
  int listen_fd = -1;
};

ReplicaState* g_state = nullptr;

void OnSignal(int) {
  if (g_state != nullptr) {
    g_state->stop.store(true, std::memory_order_relaxed);
    const int fd = g_state->listen_fd;
    if (fd >= 0) ::close(fd);
  }
}

// Items applied to replica state (sum over shard summaries).  Caller
// holds state.mutex.
uint64_t ReplicaAppliedLocked(const ReplicaState& state) {
  uint64_t applied = 0;
  for (const auto& shard : state.shards) {
    if (shard != nullptr) applied += shard->ItemsProcessed();
  }
  return applied;
}

// The warm-standby health signal: primary items at the last completed
// rsync minus items applied here.  Frames land BEFORE the rsync that
// commits their round, so applied can transiently exceed items — clamp
// at 0 rather than reporting a bogus negative lag.  Caller holds
// state.mutex.
uint64_t LagItemsLocked(const ReplicaState& state) {
  const uint64_t applied = ReplicaAppliedLocked(state);
  return state.items > applied ? state.items - applied : 0;
}

// The query view: the lone shard itself for K == 1 (supports
// non-mergeable algorithms), otherwise an on-demand merge of all shards,
// cached until the next completed sync.  Caller holds state.mutex.
const Summary* QueryView(ReplicaState& state) {
  if (state.shards.empty()) return nullptr;
  // The handshake sizes the shard vector before the first round lands;
  // until every slot has applied a full frame there is nothing to serve.
  for (const auto& shard : state.shards) {
    if (shard == nullptr) return nullptr;
  }
  if (state.shards.size() == 1) return state.shards[0].get();
  if (state.merged != nullptr && state.merged_epoch == state.syncs) {
    return state.merged.get();
  }
  // Post-sync re-merge: the cost every first query after a sync round
  // pays.  Exported per ROADMAP — an operator sizing --interval-ms needs
  // to see it, not infer it from latency spikes.
  static obs::Histogram* const rebuild_hist =
      obs::GetHistogram("l1hh_replica_view_rebuild_ns");
  static obs::FloatGauge* const rebuild_seconds =
      obs::GetFloatGauge("l1hh_replica_view_rebuild_seconds");
  static obs::Counter* const rebuild_ctr =
      obs::GetCounter("l1hh_replica_view_rebuilds_total");
  obs::ScopedPhase phase("merge_rebuild");
  const bool obs_on = obs::Enabled();
  const uint64_t t0 = obs_on ? obs::TraceRing::NowNs() : 0;
  Status status;
  auto merged = MakeSummary(state.shards[0]->Name(),
                            state.shards[0]->Options(), &status);
  if (merged == nullptr) return nullptr;
  for (const auto& shard : state.shards) {
    if (!merged->Merge(*shard).ok()) return nullptr;
  }
  state.merged = std::move(merged);
  state.merged_epoch = state.syncs;
  if (obs_on) {
    const uint64_t elapsed = obs::TraceRing::NowNs() - t0;
    rebuild_hist->Observe(elapsed);
    rebuild_seconds->Set(static_cast<double>(elapsed) * 1e-9);
    rebuild_ctr->Inc();
  }
  return state.merged.get();
}

// Audits the replica's merged view against the primary-shipped exact
// shadow (no-op report when no auditing primary has synced).  Caller
// holds state.mutex.  This is the failover insurance: a replica whose
// frames decoded into a wrong view drifts its eps-ratio above 1 while
// it is still a standby.
obs::AuditReport AuditReplicaLocked(ReplicaState& state) {
  obs::AuditReport report;
  if (!state.audit_valid || state.audit_shadow.empty()) return report;
  const Summary* view = QueryView(state);
  if (view == nullptr) return report;
  report.items_seen = state.audit_items;
  report.shadow_keys = state.audit_shadow.size();
  report.audited_keys = state.audit_shadow.size();
  static obs::Histogram* const abs_error_hist =
      obs::GetHistogram("l1hh_audit_observed_abs_error");
  // The shadow is exact at audit_items; the replica's view is at
  // ReplicaAppliedLocked() <= audit_items (frames land before the rsync
  // that commits the shadow).  The residual lag is genuine staleness and
  // is exactly what this audit should surface — no correction applied.
  for (const auto& [key, count] : state.audit_shadow) {
    const double err =
        std::fabs(view->Estimate(key) - static_cast<double>(count));
    report.max_abs_error = std::max(report.max_abs_error, err);
    abs_error_hist->Observe(static_cast<uint64_t>(std::llround(err)));
  }
  const double denom =
      state.audit_epsilon * static_cast<double>(state.audit_items);
  report.eps_ratio = denom > 0 ? report.max_abs_error / denom : 0.0;
  const double heavy_threshold =
      state.audit_phi * static_cast<double>(state.audit_items);
  std::vector<uint64_t> heavies;
  for (const auto& [key, count] : state.audit_shadow) {
    if (static_cast<double>(count) > heavy_threshold) heavies.push_back(key);
  }
  report.shadow_heavies = heavies.size();
  if (!heavies.empty()) {
    const std::vector<ItemEstimate> reported =
        view->HeavyHitters(state.audit_phi);
    std::unordered_set<uint64_t> reported_keys;
    reported_keys.reserve(reported.size());
    for (const ItemEstimate& hh : reported) reported_keys.insert(hh.item);
    for (const uint64_t key : heavies) {
      if (reported_keys.count(key) != 0) ++report.recalled;
    }
    report.recall = static_cast<double>(report.recalled) /
                    static_cast<double>(report.shadow_heavies);
  }
  obs::PublishAuditReport(report);
  return report;
}

// ---- Replication client (primary-facing) -------------------------------

// Reads frames off `reader` until the closing "rsync <items>", applying
// each to the pending shard set; commits clocks only when the round
// completes, so a half-received sync never shows up in queries.
bool DrainSyncRound(ReplicaState& state, LineReader& reader,
                    size_t expected_shards) {
  std::string line;
  std::vector<uint8_t> bytes;
  while (reader.ReadLine(&line)) {
    if (line.rfind("frame ", 0) == 0) {
      char kind[8] = {0};
      unsigned long long shard = 0;
      unsigned long long nbytes = 0;
      if (std::sscanf(line.c_str(), "frame %7s %llu %llu", kind, &shard,
                      &nbytes) != 3 ||
          shard >= expected_shards || nbytes > kMaxFrameBytes ||
          (std::strcmp(kind, "full") != 0 &&
           std::strcmp(kind, "delta") != 0)) {
        std::fprintf(stderr, "replica: malformed frame header '%s'\n",
                     line.c_str());
        return false;
      }
      bytes.resize(static_cast<size_t>(nbytes));
      if (!reader.ReadExact(reinterpret_cast<char*>(bytes.data()),
                            bytes.size())) {
        return false;
      }
      obs::GetCounter("l1hh_replica_frames_total",
                      std::strcmp(kind, "full") == 0 ? "kind=\"full\""
                                                     : "kind=\"delta\"")
          ->Inc();
      std::lock_guard<std::mutex> lock(state.mutex);
      if (std::strcmp(kind, "full") == 0) {
        Status status;
        auto summary = LoadSummary(bytes, &status);
        if (summary == nullptr) {
          std::fprintf(stderr, "replica: refused full frame for shard %llu: %s\n",
                       shard, status.ToString().c_str());
          return false;
        }
        state.shards[static_cast<size_t>(shard)] = std::move(summary);
      } else {
        Summary* target = state.shards[static_cast<size_t>(shard)].get();
        if (target == nullptr) {
          std::fprintf(stderr,
                       "replica: delta frame for shard %llu before any "
                       "full frame\n",
                       shard);
          return false;
        }
        const Status applied = ApplySummaryDelta(bytes, target);
        if (!applied.ok()) {
          std::fprintf(stderr, "replica: refused delta frame for shard %llu: %s\n",
                       shard, applied.ToString().c_str());
          return false;
        }
      }
      continue;
    }
    if (line.rfind("audit ", 0) == 0) {
      // Shadow truth from an auditing primary: header + nkeys pair lines
      // (docs/OBSERVABILITY.md#the-live-accuracy-auditor).
      unsigned long long rate = 0, m = 0, nkeys = 0;
      double eps = 0.0, phi = 0.0;
      if (std::sscanf(line.c_str(), "audit %llu %lg %lg %llu %llu", &rate,
                      &eps, &phi, &m, &nkeys) != 5 ||
          nkeys > (1u << 20)) {
        std::fprintf(stderr, "replica: malformed audit header '%s'\n",
                     line.c_str());
        return false;
      }
      std::vector<std::pair<uint64_t, uint64_t>> shadow;
      shadow.reserve(static_cast<size_t>(nkeys));
      for (unsigned long long i = 0; i < nkeys; ++i) {
        unsigned long long key = 0, count = 0;
        if (!reader.ReadLine(&line) ||
            std::sscanf(line.c_str(), "%llu %llu", &key, &count) != 2) {
          std::fprintf(stderr, "replica: torn audit shadow\n");
          return false;
        }
        shadow.emplace_back(key, count);
      }
      std::lock_guard<std::mutex> lock(state.mutex);
      state.audit_valid = true;
      state.audit_epsilon = eps;
      state.audit_phi = phi;
      state.audit_items = m;
      state.audit_shadow = std::move(shadow);
      continue;
    }
    if (line.rfind("rsync ", 0) == 0) {
      std::lock_guard<std::mutex> lock(state.mutex);
      state.items = std::strtoull(line.c_str() + 6, nullptr, 10);
      ++state.syncs;
      obs::GetCounter("l1hh_replica_sync_rounds_total")->Inc();
      obs::GetGauge("l1hh_replica_lag_items")
          ->Set(static_cast<int64_t>(LagItemsLocked(state)));
      obs::Trace(obs::Severity::kDebug, "replica.sync",
                 static_cast<int64_t>(state.syncs),
                 static_cast<int64_t>(state.items));
      return true;
    }
    std::fprintf(stderr, "replica: unexpected line from primary: '%s'\n",
                 line.c_str());
    return false;
  }
  return false;  // primary closed mid-round; nothing was committed
}

// Connects, full-syncs, then tails incremental syncs until the primary
// dies or the replica is told to stop.  Leaves the last completed sync
// in `state` either way — failover keeps serving it.
void ReplicationLoop(ReplicaState& state, const ReplicaArgs& args) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("replica: socket");
    return;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, args.primary_path.c_str(),
               sizeof(addr.sun_path) - 1);
  // The primary may still be binding its socket (a replica is typically
  // started right beside it); retry briefly before declaring it gone.
  int rc = -1;
  for (int attempt = 0; attempt < 200; ++attempt) {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    if (rc == 0 || state.stop.load(std::memory_order_relaxed)) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  if (rc != 0) {
    std::fprintf(stderr, "replica: cannot connect to primary '%s': %s\n",
                 args.primary_path.c_str(), std::strerror(errno));
    ::close(fd);
    return;
  }

  LineReader reader(fd);
  std::string line;
  if (!WriteLine(fd, "replicate") || !reader.ReadLine(&line) ||
      line.rfind("rconf ", 0) != 0) {
    std::fprintf(stderr, "replica: bad replicate handshake ('%s')\n",
                 line.c_str());
    ::close(fd);
    return;
  }
  unsigned long long shards = 0;
  char algo[128] = {0};
  if (std::sscanf(line.c_str(), "rconf shards=%llu algo=%127s", &shards,
                  algo) != 2 ||
      shards == 0 || shards > (1u << 16)) {
    std::fprintf(stderr, "replica: malformed rconf '%s'\n", line.c_str());
    ::close(fd);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(state.mutex);
    state.shards.resize(static_cast<size_t>(shards));
    state.algorithm = algo;
  }
  if (!DrainSyncRound(state, reader, static_cast<size_t>(shards))) {
    ::close(fd);
    return;
  }
  state.primary_up.store(true, std::memory_order_relaxed);
  obs::GetGauge("l1hh_replica_primary_up")->Set(1);
  obs::GetCounter("l1hh_replica_primary_transitions_total")->Inc();
  obs::Trace(obs::Severity::kInfo, "replica.primary_up",
             static_cast<int64_t>(shards));
  std::printf("synced %s shards=%llu\n", algo, shards);
  std::fflush(stdout);

  while (!state.stop.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(args.interval_ms));
    if (state.stop.load(std::memory_order_relaxed)) break;
    if (!WriteLine(fd, "sync") ||
        !DrainSyncRound(state, reader, static_cast<size_t>(shards))) {
      break;  // primary gone: stop syncing, keep serving (failover)
    }
  }
  state.primary_up.store(false, std::memory_order_relaxed);
  obs::GetGauge("l1hh_replica_primary_up")->Set(0);
  obs::GetCounter("l1hh_replica_primary_transitions_total")->Inc();
  obs::Trace(obs::Severity::kWarn, "replica.primary_lost");
  ::close(fd);
}

// ---- Query server (client-facing) --------------------------------------

void HandleQueryConnection(ReplicaState* state, const ReplicaArgs* args,
                           int fd) {
  LineReader reader(fd);
  std::string line;
  while (reader.ReadLine(&line)) {
    if (line.empty()) continue;
    if (line == "heavy" || line.rfind("heavy ", 0) == 0) {
      double phi = args->default_phi;
      if (line.size() > 6) {
        phi = std::atof(line.c_str() + 6);
        if (phi <= 0) {
          WriteLine(fd, "err phi must be > 0");
          continue;
        }
      }
      obs::QuerySpan span("heavy");
      std::string reply;
      {
        std::lock_guard<std::mutex> lock(state->mutex);
        const Summary* view = QueryView(*state);
        if (view == nullptr) {
          WriteLine(fd, "err replica has no synced state yet");
          continue;
        }
        std::vector<ItemEstimate> report;
        {
          obs::ScopedPhase report_phase("report");
          report = view->HeavyHitters(phi);
        }
        reply = "hh " + std::to_string(report.size());
        char entry[64];
        for (const ItemEstimate& hh : report) {
          std::snprintf(entry, sizeof(entry), "\n%llu %.17g",
                        static_cast<unsigned long long>(hh.item),
                        hh.estimate);
          reply += entry;
        }
      }
      {
        obs::ScopedPhase write_phase("reply_write");
        WriteLine(fd, reply);
      }
      continue;
    }
    if (line.rfind("estimate ", 0) == 0) {
      char* end = nullptr;
      const unsigned long long item = std::strtoull(line.c_str() + 9, &end, 10);
      if (end == line.c_str() + 9) {
        WriteLine(fd, "err malformed item id in '" + line + "'");
        continue;
      }
      obs::QuerySpan span("estimate");
      char reply[64];
      {
        std::lock_guard<std::mutex> lock(state->mutex);
        const Summary* view = QueryView(*state);
        if (view == nullptr) {
          WriteLine(fd, "err replica has no synced state yet");
          continue;
        }
        obs::ScopedPhase report_phase("report");
        std::snprintf(reply, sizeof(reply), "est %llu %.17g", item,
                      view->Estimate(static_cast<uint64_t>(item)));
      }
      {
        obs::ScopedPhase write_phase("reply_write");
        WriteLine(fd, reply);
      }
      continue;
    }
    if (line == "stats") {
      obs::QuerySpan span("stats");
      std::string reply;
      {
        std::lock_guard<std::mutex> lock(state->mutex);
        const uint64_t lag = LagItemsLocked(*state);
        obs::GetGauge("l1hh_replica_lag_items")
            ->Set(static_cast<int64_t>(lag));
        reply = "stats items=" + std::to_string(state->items) +
                " shards=" + std::to_string(state->shards.size()) +
                " syncs=" + std::to_string(state->syncs) + " primary=" +
                (state->primary_up.load(std::memory_order_relaxed)
                     ? "up"
                     : "lost") +
                " algo=" + state->algorithm +
                " lag_items=" + std::to_string(lag);
      }
      {
        obs::ScopedPhase write_phase("reply_write");
        WriteLine(fd, reply);
      }
      continue;
    }
    if (line == "metrics") {
      {
        // Scrape-time work, same as the primary: publish point-in-time
        // gauges, audit the view when an auditing primary shipped truth.
        std::lock_guard<std::mutex> lock(state->mutex);
        obs::GetGauge("l1hh_replica_lag_items")
            ->Set(static_cast<int64_t>(LagItemsLocked(*state)));
        AuditReplicaLocked(*state);
      }
      const std::vector<std::string> lines =
          obs::Registry::Get().ExpositionLines();
      std::string reply = "metrics " + std::to_string(lines.size());
      for (const std::string& metric_line : lines) {
        reply += "\n" + metric_line;
      }
      WriteLine(fd, reply);
      continue;
    }
    if (line == "trace" || line.rfind("trace ", 0) == 0) {
      uint64_t max_events = 0;
      obs::Severity min_sev = obs::Severity::kDebug;
      bool args_ok = true;
      if (line.size() > 5) {
        std::istringstream in(line.substr(6));
        std::string count_text, sev_text, extra;
        in >> count_text >> sev_text >> extra;
        if (!count_text.empty()) {
          char* end = nullptr;
          max_events = std::strtoull(count_text.c_str(), &end, 10);
          if (end == count_text.c_str() || *end != '\0') args_ok = false;
        }
        if (args_ok && !sev_text.empty() &&
            !obs::ParseSeverity(sev_text, &min_sev)) {
          args_ok = false;
        }
        if (!extra.empty()) args_ok = false;
      }
      if (!args_ok) {
        WriteLine(fd, "err usage: trace [N [debug|info|warn]]");
        continue;
      }
      const std::vector<std::string> lines = obs::TraceRing::Get().DrainText(
          static_cast<size_t>(max_events), min_sev);
      std::string reply = "trace " + std::to_string(lines.size());
      for (const std::string& event_line : lines) {
        reply += "\n" + event_line;
      }
      WriteLine(fd, reply);
      continue;
    }
    if (line == "slow") {
      const std::vector<std::string> lines =
          obs::SlowQueryRing::Get().DrainText();
      std::string reply = "slow " + std::to_string(lines.size());
      for (const std::string& slow_line : lines) {
        reply += "\n" + slow_line;
      }
      WriteLine(fd, reply);
      continue;
    }
    if (line == "quit") break;
    if (line == "shutdown") {
      WriteLine(fd, "ok");
      state->stop.store(true, std::memory_order_relaxed);
      ::shutdown(state->listen_fd, SHUT_RDWR);
      break;
    }
    WriteLine(fd, "err unknown request '" + line + "'");
  }
}

int RunReplica(const ReplicaArgs& args) {
  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    std::perror("socket");
    return 2;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (args.socket_path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "--socket path too long (max %zu bytes)\n",
                 sizeof(addr.sun_path) - 1);
    return 2;
  }
  std::strncpy(addr.sun_path, args.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  ::unlink(args.socket_path.c_str());
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    std::perror("bind");
    return 2;
  }
  if (::listen(listen_fd, 64) != 0) {
    std::perror("listen");
    return 2;
  }

  ReplicaState state;
  state.listen_fd = listen_fd;
  g_state = &state;
  std::signal(SIGPIPE, SIG_IGN);
  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);

  obs::EmitBuildInfo("l1hh_replica", "replica");
  obs::SetSlowQueryThresholdNs(args.slow_query_us * 1000);

  // HTTP telemetry surface.  Readiness is the standby-specific call:
  // green only when this replica could take over right now — synced at
  // least once AND within --ready-lag of the primary, or the primary is
  // lost (the last synced view is then the best answer that exists).
  std::unique_ptr<obs::HttpExporter> exporter;
  if (args.http_enabled) {
    obs::HttpExporterOptions http_options;
    http_options.port = static_cast<uint16_t>(args.http_port);
    std::map<std::string, obs::HttpExporter::Handler> handlers;
    handlers["/metrics"] = [&state, &args] {
      {
        std::lock_guard<std::mutex> lock(state.mutex);
        const uint64_t lag = LagItemsLocked(state);
        obs::GetGauge("l1hh_replica_lag_items")
            ->Set(static_cast<int64_t>(lag));
        // The 0/1 readiness gauge behind /readyz, so a plain /metrics
        // scrape can alert on readiness flapping without a prober.
        const bool ready =
            state.syncs > 0 &&
            (lag <= args.ready_lag ||
             !state.primary_up.load(std::memory_order_relaxed));
        obs::GetGauge("l1hh_replica_ready")->Set(ready ? 1 : 0);
        AuditReplicaLocked(state);
      }
      const std::vector<std::string> lines =
          obs::Registry::Get().ExpositionLines();
      std::string body;
      for (const std::string& metric_line : lines) {
        body += metric_line;
        body += '\n';
      }
      return obs::HttpResponse{200, "text/plain; version=0.0.4", body};
    };
    handlers["/healthz"] = [] {
      return obs::HttpResponse{200, "text/plain; charset=utf-8", "ok\n"};
    };
    handlers["/readyz"] = [&state, &args] {
      uint64_t syncs = 0, lag = 0;
      {
        std::lock_guard<std::mutex> lock(state.mutex);
        syncs = state.syncs;
        lag = LagItemsLocked(state);
      }
      const bool primary_up =
          state.primary_up.load(std::memory_order_relaxed);
      const bool ready =
          syncs > 0 && (lag <= args.ready_lag || !primary_up);
      obs::GetGauge("l1hh_replica_ready")->Set(ready ? 1 : 0);
      const std::string body =
          (ready ? "ok" : "not ready") + std::string(" syncs=") +
          std::to_string(syncs) + " lag_items=" + std::to_string(lag) +
          " primary=" + (primary_up ? "up" : "lost") + "\n";
      return obs::HttpResponse{ready ? 200 : 503,
                               "text/plain; charset=utf-8", body};
    };
    Status http_status;
    exporter = obs::HttpExporter::Create(http_options, std::move(handlers),
                                         &http_status);
    if (exporter == nullptr) {
      std::fprintf(stderr, "cannot start http exporter: %s\n",
                   http_status.ToString().c_str());
      return 2;
    }
  }

  // The readiness line tests wait for (before the first sync completes;
  // queries until then answer "err replica has no synced state yet").
  std::printf("listening %s\n", args.socket_path.c_str());
  if (exporter != nullptr) {
    std::printf("http %u\n", static_cast<unsigned>(exporter->port()));
  }
  std::fflush(stdout);

  std::thread replication(
      [&state, &args] { ReplicationLoop(state, args); });

  std::vector<std::thread> connections;
  std::vector<int> conn_fds;
  std::mutex conn_mutex;
  while (!state.stop.load(std::memory_order_relaxed)) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;
    }
    {
      std::lock_guard<std::mutex> lock(conn_mutex);
      conn_fds.push_back(fd);
    }
    connections.emplace_back(
        [&state, &args, fd] { HandleQueryConnection(&state, &args, fd); });
  }

  state.stop.store(true, std::memory_order_relaxed);
  // The exporter's handlers read `state`; stop it before teardown.
  if (exporter != nullptr) exporter->Stop();
  replication.join();
  {
    std::lock_guard<std::mutex> lock(conn_mutex);
    for (const int fd : conn_fds) ::shutdown(fd, SHUT_RDWR);
  }
  for (auto& thread : connections) thread.join();
  {
    std::lock_guard<std::mutex> lock(conn_mutex);
    for (const int fd : conn_fds) ::close(fd);
  }
  ::close(listen_fd);
  ::unlink(args.socket_path.c_str());
  std::printf("replicated %llu items over %llu syncs\n",
              static_cast<unsigned long long>(state.items),
              static_cast<unsigned long long>(state.syncs));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ReplicaArgs args;
  if (!Parse(argc, argv, &args)) return 2;
  return RunReplica(args);
}
