// l1hh_replica — warm standby for an l1hh_serve primary.
//
// Connects to a primary's Unix socket, performs an initial full sync
// ("replicate"), then tails incremental frames ("sync" every
// --interval-ms): full snapshot containers for plain or heavily-rotated
// shards, delta containers carrying only the changed window tail for
// everything else.  Every frame is CRC-validated and clock-checked by
// the snapshot layer before it touches replica state, so a torn or
// reordered frame is a refused frame, never a silently wrong standby.
//
// The replica simultaneously serves queries on its OWN socket with the
// same text protocol as the primary's read side — and keeps serving
// after the primary dies (the failover story: answers reflect the last
// completed sync, within the structures' eps guarantee of the primary's
// final state, as tests/replication_test.cc and the CI smoke pin).
//
//   l1hh_replica --primary=/tmp/l1hh.sock --socket=/tmp/l1hh-replica.sock
//       [--interval-ms=200]
//
// Replica-side protocol (one request per line):
//
//   heavy [phi]         heavy-hitter report from the replicated state
//   estimate <item>     point estimate
//   stats               "stats items=<primary items at last sync>
//                       shards=<K> syncs=<completed syncs>
//                       primary=<up|lost> algo=<name> lag_items=<n>"
//                       (lag_items = primary items at the last rsync
//                       minus items applied to replica state, clamped at
//                       0 — the warm-standby health signal)
//   metrics             "metrics <N>" then N lines of Prometheus-style
//                       text exposition from the telemetry registry
//   quit                close this connection
//   shutdown            replies "ok", stops the replica process
#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "io/snapshot.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "summary/summary.h"
#include "util/status.h"

namespace {

using namespace l1hh;

struct ReplicaArgs {
  std::string primary_path;
  std::string socket_path;
  uint64_t interval_ms = 200;
  double default_phi = 0.05;
};

bool Parse(int argc, char** argv, ReplicaArgs* out) {
  for (int i = 1; i < argc; ++i) {
    std::string key = argv[i];
    std::string value;
    const size_t eq = key.find('=');
    if (eq != std::string::npos) {
      value = key.substr(eq + 1);
      key = key.substr(0, eq);
    } else {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flag %s needs a value\n", key.c_str());
        return false;
      }
      value = argv[++i];
    }
    if (value.empty()) {
      std::fprintf(stderr, "flag %s needs a non-empty value\n", key.c_str());
      return false;
    }
    if (key == "--primary") {
      out->primary_path = value;
    } else if (key == "--socket") {
      out->socket_path = value;
    } else if (key == "--interval-ms") {
      out->interval_ms = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "--phi") {
      out->default_phi = std::atof(value.c_str());
    } else {
      std::fprintf(stderr,
                   "unknown flag: %s\nknown flags: --primary --socket "
                   "--interval-ms --phi\n",
                   key.c_str());
      return false;
    }
  }
  if (out->primary_path.empty() || out->socket_path.empty()) {
    std::fprintf(stderr, "--primary=<sock> and --socket=<sock> are required\n");
    return false;
  }
  return true;
}

// ---- Socket helpers (same wire idioms as l1hh_serve.cc) ----------------

bool WriteAll(int fd, const char* data, size_t n) {
  size_t done = 0;
  while (done < n) {
    const ssize_t wrote = ::write(fd, data + done, n - done);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<size_t>(wrote);
  }
  return true;
}

bool WriteLine(int fd, const std::string& line) {
  return WriteAll(fd, (line + "\n").c_str(), line.size() + 1);
}

class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  bool ReadLine(std::string* line) {
    while (true) {
      const size_t nl = buffer_.find('\n', pos_);
      if (nl != std::string::npos) {
        line->assign(buffer_, pos_, nl - pos_);
        pos_ = nl + 1;
        Compact();
        return true;
      }
      if (!Fill()) return false;
    }
  }

  bool ReadExact(char* out, size_t n) {
    size_t got = 0;
    const size_t buffered = std::min(n, buffer_.size() - pos_);
    std::memcpy(out, buffer_.data() + pos_, buffered);
    pos_ += buffered;
    got += buffered;
    Compact();
    while (got < n) {
      const ssize_t r = ::read(fd_, out + got, n - got);
      if (r < 0 && errno == EINTR) continue;
      if (r <= 0) return false;
      got += static_cast<size_t>(r);
    }
    return true;
  }

 private:
  bool Fill() {
    Compact();
    char chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) return true;
    if (n <= 0) return false;
    buffer_.append(chunk, static_cast<size_t>(n));
    return true;
  }

  void Compact() {
    if (pos_ == 0) return;
    buffer_.erase(0, pos_);
    pos_ = 0;
  }

  int fd_;
  std::string buffer_;
  size_t pos_ = 0;
};

// ---- Replicated state --------------------------------------------------

// A frame above this is a protocol error, not a snapshot (same guard as
// the primary's binary-batch bound).
constexpr uint64_t kMaxFrameBytes = uint64_t{1} << 28;

struct ReplicaState {
  std::mutex mutex;
  // Shard summaries, rebuilt/advanced frame by frame.  Queries merge them
  // on demand behind the usual epoch cache.
  std::vector<std::unique_ptr<Summary>> shards;
  std::string algorithm;
  uint64_t items = 0;  // primary's applied count at the last completed sync
  uint64_t syncs = 0;  // completed replicate/sync rounds
  std::atomic<bool> primary_up{false};

  std::unique_ptr<Summary> merged;
  uint64_t merged_epoch = ~uint64_t{0};

  std::atomic<bool> stop{false};
  int listen_fd = -1;
};

ReplicaState* g_state = nullptr;

void OnSignal(int) {
  if (g_state != nullptr) {
    g_state->stop.store(true, std::memory_order_relaxed);
    const int fd = g_state->listen_fd;
    if (fd >= 0) ::close(fd);
  }
}

// Items applied to replica state (sum over shard summaries).  Caller
// holds state.mutex.
uint64_t ReplicaAppliedLocked(const ReplicaState& state) {
  uint64_t applied = 0;
  for (const auto& shard : state.shards) {
    if (shard != nullptr) applied += shard->ItemsProcessed();
  }
  return applied;
}

// The warm-standby health signal: primary items at the last completed
// rsync minus items applied here.  Frames land BEFORE the rsync that
// commits their round, so applied can transiently exceed items — clamp
// at 0 rather than reporting a bogus negative lag.  Caller holds
// state.mutex.
uint64_t LagItemsLocked(const ReplicaState& state) {
  const uint64_t applied = ReplicaAppliedLocked(state);
  return state.items > applied ? state.items - applied : 0;
}

// The query view: the lone shard itself for K == 1 (supports
// non-mergeable algorithms), otherwise an on-demand merge of all shards,
// cached until the next completed sync.  Caller holds state.mutex.
const Summary* QueryView(ReplicaState& state) {
  if (state.shards.empty()) return nullptr;
  // The handshake sizes the shard vector before the first round lands;
  // until every slot has applied a full frame there is nothing to serve.
  for (const auto& shard : state.shards) {
    if (shard == nullptr) return nullptr;
  }
  if (state.shards.size() == 1) return state.shards[0].get();
  if (state.merged != nullptr && state.merged_epoch == state.syncs) {
    return state.merged.get();
  }
  Status status;
  auto merged = MakeSummary(state.shards[0]->Name(),
                            state.shards[0]->Options(), &status);
  if (merged == nullptr) return nullptr;
  for (const auto& shard : state.shards) {
    if (!merged->Merge(*shard).ok()) return nullptr;
  }
  state.merged = std::move(merged);
  state.merged_epoch = state.syncs;
  return state.merged.get();
}

// ---- Replication client (primary-facing) -------------------------------

// Reads frames off `reader` until the closing "rsync <items>", applying
// each to the pending shard set; commits clocks only when the round
// completes, so a half-received sync never shows up in queries.
bool DrainSyncRound(ReplicaState& state, LineReader& reader,
                    size_t expected_shards) {
  std::string line;
  std::vector<uint8_t> bytes;
  while (reader.ReadLine(&line)) {
    if (line.rfind("frame ", 0) == 0) {
      char kind[8] = {0};
      unsigned long long shard = 0;
      unsigned long long nbytes = 0;
      if (std::sscanf(line.c_str(), "frame %7s %llu %llu", kind, &shard,
                      &nbytes) != 3 ||
          shard >= expected_shards || nbytes > kMaxFrameBytes ||
          (std::strcmp(kind, "full") != 0 &&
           std::strcmp(kind, "delta") != 0)) {
        std::fprintf(stderr, "replica: malformed frame header '%s'\n",
                     line.c_str());
        return false;
      }
      bytes.resize(static_cast<size_t>(nbytes));
      if (!reader.ReadExact(reinterpret_cast<char*>(bytes.data()),
                            bytes.size())) {
        return false;
      }
      obs::GetCounter("l1hh_replica_frames_total",
                      std::strcmp(kind, "full") == 0 ? "kind=\"full\""
                                                     : "kind=\"delta\"")
          ->Inc();
      std::lock_guard<std::mutex> lock(state.mutex);
      if (std::strcmp(kind, "full") == 0) {
        Status status;
        auto summary = LoadSummary(bytes, &status);
        if (summary == nullptr) {
          std::fprintf(stderr, "replica: refused full frame for shard %llu: %s\n",
                       shard, status.ToString().c_str());
          return false;
        }
        state.shards[static_cast<size_t>(shard)] = std::move(summary);
      } else {
        Summary* target = state.shards[static_cast<size_t>(shard)].get();
        if (target == nullptr) {
          std::fprintf(stderr,
                       "replica: delta frame for shard %llu before any "
                       "full frame\n",
                       shard);
          return false;
        }
        const Status applied = ApplySummaryDelta(bytes, target);
        if (!applied.ok()) {
          std::fprintf(stderr, "replica: refused delta frame for shard %llu: %s\n",
                       shard, applied.ToString().c_str());
          return false;
        }
      }
      continue;
    }
    if (line.rfind("rsync ", 0) == 0) {
      std::lock_guard<std::mutex> lock(state.mutex);
      state.items = std::strtoull(line.c_str() + 6, nullptr, 10);
      ++state.syncs;
      obs::GetCounter("l1hh_replica_sync_rounds_total")->Inc();
      obs::GetGauge("l1hh_replica_lag_items")
          ->Set(static_cast<int64_t>(LagItemsLocked(state)));
      obs::Trace(obs::Severity::kDebug, "replica.sync",
                 static_cast<int64_t>(state.syncs),
                 static_cast<int64_t>(state.items));
      return true;
    }
    std::fprintf(stderr, "replica: unexpected line from primary: '%s'\n",
                 line.c_str());
    return false;
  }
  return false;  // primary closed mid-round; nothing was committed
}

// Connects, full-syncs, then tails incremental syncs until the primary
// dies or the replica is told to stop.  Leaves the last completed sync
// in `state` either way — failover keeps serving it.
void ReplicationLoop(ReplicaState& state, const ReplicaArgs& args) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("replica: socket");
    return;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, args.primary_path.c_str(),
               sizeof(addr.sun_path) - 1);
  // The primary may still be binding its socket (a replica is typically
  // started right beside it); retry briefly before declaring it gone.
  int rc = -1;
  for (int attempt = 0; attempt < 200; ++attempt) {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    if (rc == 0 || state.stop.load(std::memory_order_relaxed)) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  if (rc != 0) {
    std::fprintf(stderr, "replica: cannot connect to primary '%s': %s\n",
                 args.primary_path.c_str(), std::strerror(errno));
    ::close(fd);
    return;
  }

  LineReader reader(fd);
  std::string line;
  if (!WriteLine(fd, "replicate") || !reader.ReadLine(&line) ||
      line.rfind("rconf ", 0) != 0) {
    std::fprintf(stderr, "replica: bad replicate handshake ('%s')\n",
                 line.c_str());
    ::close(fd);
    return;
  }
  unsigned long long shards = 0;
  char algo[128] = {0};
  if (std::sscanf(line.c_str(), "rconf shards=%llu algo=%127s", &shards,
                  algo) != 2 ||
      shards == 0 || shards > (1u << 16)) {
    std::fprintf(stderr, "replica: malformed rconf '%s'\n", line.c_str());
    ::close(fd);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(state.mutex);
    state.shards.resize(static_cast<size_t>(shards));
    state.algorithm = algo;
  }
  if (!DrainSyncRound(state, reader, static_cast<size_t>(shards))) {
    ::close(fd);
    return;
  }
  state.primary_up.store(true, std::memory_order_relaxed);
  obs::GetGauge("l1hh_replica_primary_up")->Set(1);
  obs::GetCounter("l1hh_replica_primary_transitions_total")->Inc();
  obs::Trace(obs::Severity::kInfo, "replica.primary_up",
             static_cast<int64_t>(shards));
  std::printf("synced %s shards=%llu\n", algo, shards);
  std::fflush(stdout);

  while (!state.stop.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(args.interval_ms));
    if (state.stop.load(std::memory_order_relaxed)) break;
    if (!WriteLine(fd, "sync") ||
        !DrainSyncRound(state, reader, static_cast<size_t>(shards))) {
      break;  // primary gone: stop syncing, keep serving (failover)
    }
  }
  state.primary_up.store(false, std::memory_order_relaxed);
  obs::GetGauge("l1hh_replica_primary_up")->Set(0);
  obs::GetCounter("l1hh_replica_primary_transitions_total")->Inc();
  obs::Trace(obs::Severity::kWarn, "replica.primary_lost");
  ::close(fd);
}

// ---- Query server (client-facing) --------------------------------------

void HandleQueryConnection(ReplicaState* state, const ReplicaArgs* args,
                           int fd) {
  LineReader reader(fd);
  std::string line;
  while (reader.ReadLine(&line)) {
    if (line.empty()) continue;
    if (line == "heavy" || line.rfind("heavy ", 0) == 0) {
      double phi = args->default_phi;
      if (line.size() > 6) {
        phi = std::atof(line.c_str() + 6);
        if (phi <= 0) {
          WriteLine(fd, "err phi must be > 0");
          continue;
        }
      }
      std::lock_guard<std::mutex> lock(state->mutex);
      const Summary* view = QueryView(*state);
      if (view == nullptr) {
        WriteLine(fd, "err replica has no synced state yet");
        continue;
      }
      const std::vector<ItemEstimate> report = view->HeavyHitters(phi);
      std::string reply = "hh " + std::to_string(report.size());
      char entry[64];
      for (const ItemEstimate& hh : report) {
        std::snprintf(entry, sizeof(entry), "\n%llu %.17g",
                      static_cast<unsigned long long>(hh.item), hh.estimate);
        reply += entry;
      }
      WriteLine(fd, reply);
      continue;
    }
    if (line.rfind("estimate ", 0) == 0) {
      char* end = nullptr;
      const unsigned long long item = std::strtoull(line.c_str() + 9, &end, 10);
      if (end == line.c_str() + 9) {
        WriteLine(fd, "err malformed item id in '" + line + "'");
        continue;
      }
      std::lock_guard<std::mutex> lock(state->mutex);
      const Summary* view = QueryView(*state);
      if (view == nullptr) {
        WriteLine(fd, "err replica has no synced state yet");
        continue;
      }
      char reply[64];
      std::snprintf(reply, sizeof(reply), "est %llu %.17g", item,
                    view->Estimate(static_cast<uint64_t>(item)));
      WriteLine(fd, reply);
      continue;
    }
    if (line == "stats") {
      std::lock_guard<std::mutex> lock(state->mutex);
      const uint64_t lag = LagItemsLocked(*state);
      obs::GetGauge("l1hh_replica_lag_items")
          ->Set(static_cast<int64_t>(lag));
      WriteLine(fd,
                "stats items=" + std::to_string(state->items) +
                    " shards=" + std::to_string(state->shards.size()) +
                    " syncs=" + std::to_string(state->syncs) + " primary=" +
                    (state->primary_up.load(std::memory_order_relaxed)
                         ? "up"
                         : "lost") +
                    " algo=" + state->algorithm +
                    " lag_items=" + std::to_string(lag));
      continue;
    }
    if (line == "metrics") {
      const std::vector<std::string> lines =
          obs::Registry::Get().ExpositionLines();
      std::string reply = "metrics " + std::to_string(lines.size());
      for (const std::string& metric_line : lines) {
        reply += "\n" + metric_line;
      }
      WriteLine(fd, reply);
      continue;
    }
    if (line == "quit") break;
    if (line == "shutdown") {
      WriteLine(fd, "ok");
      state->stop.store(true, std::memory_order_relaxed);
      ::shutdown(state->listen_fd, SHUT_RDWR);
      break;
    }
    WriteLine(fd, "err unknown request '" + line + "'");
  }
}

int RunReplica(const ReplicaArgs& args) {
  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    std::perror("socket");
    return 2;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (args.socket_path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "--socket path too long (max %zu bytes)\n",
                 sizeof(addr.sun_path) - 1);
    return 2;
  }
  std::strncpy(addr.sun_path, args.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  ::unlink(args.socket_path.c_str());
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    std::perror("bind");
    return 2;
  }
  if (::listen(listen_fd, 64) != 0) {
    std::perror("listen");
    return 2;
  }

  ReplicaState state;
  state.listen_fd = listen_fd;
  g_state = &state;
  std::signal(SIGPIPE, SIG_IGN);
  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);

  // The readiness line tests wait for (before the first sync completes;
  // queries until then answer "err replica has no synced state yet").
  std::printf("listening %s\n", args.socket_path.c_str());
  std::fflush(stdout);

  std::thread replication(
      [&state, &args] { ReplicationLoop(state, args); });

  std::vector<std::thread> connections;
  std::vector<int> conn_fds;
  std::mutex conn_mutex;
  while (!state.stop.load(std::memory_order_relaxed)) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;
    }
    {
      std::lock_guard<std::mutex> lock(conn_mutex);
      conn_fds.push_back(fd);
    }
    connections.emplace_back(
        [&state, &args, fd] { HandleQueryConnection(&state, &args, fd); });
  }

  state.stop.store(true, std::memory_order_relaxed);
  replication.join();
  {
    std::lock_guard<std::mutex> lock(conn_mutex);
    for (const int fd : conn_fds) ::shutdown(fd, SHUT_RDWR);
  }
  for (auto& thread : connections) thread.join();
  {
    std::lock_guard<std::mutex> lock(conn_mutex);
    for (const int fd : conn_fds) ::close(fd);
  }
  ::close(listen_fd);
  ::unlink(args.socket_path.c_str());
  std::printf("replicated %llu items over %llu syncs\n",
              static_cast<unsigned long long>(state.items),
              static_cast<unsigned long long>(state.syncs));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ReplicaArgs args;
  if (!Parse(argc, argv, &args)) return 2;
  return RunReplica(args);
}
