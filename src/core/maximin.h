// Theorem 6: (eps, phi)-List maximin / eps-Maximin on a stream of rankings.
//
// Sample ~l = O(eps^-2 log(n/delta)) votes and STORE them (each vote costs
// n ceil(log2 n) bits, giving the O(n eps^-2 log^2 n) space of Table 1 row
// 5 — provably near-optimal by Theorem 13's Omega(n eps^-2) bound, i.e.
// maximin really is polynomially more expensive than Borda).  At report
// time the pairwise-defeat matrix D_S(x, y) of the sample determines every
// maximin score within eps*m/2 whp.
#ifndef L1HH_CORE_MAXIMIN_H_
#define L1HH_CORE_MAXIMIN_H_

#include <cstdint>
#include <vector>

#include "core/common.h"
#include "sampling/geometric_skip.h"
#include "util/bit_stream.h"
#include "util/random.h"
#include "votes/ranking.h"

namespace l1hh {

class StreamingMaximin {
 public:
  struct Options {
    double epsilon = 0.1;
    double phi = 0.0;  // used by ListAbove(); 0 disables
    double delta = 0.1;
    uint32_t num_candidates = 0;
    uint64_t stream_length = 0;
    Constants constants = Constants::Practical();

    Status Validate() const {
      if (!(epsilon > 0.0) || !(epsilon < 1.0)) {
        return Status::InvalidArgument("epsilon must be in (0,1)");
      }
      if (num_candidates == 0 || stream_length == 0) {
        return Status::InvalidArgument("empty election");
      }
      return Status::Ok();
    }
  };

  StreamingMaximin(const Options& options, uint64_t seed);

  void InsertVote(const Ranking& vote);
  /// Alias so generic wrappers (unknown stream length) can treat votes
  /// like items.
  void Insert(const Ranking& vote) { InsertVote(vote); }

  /// Estimated maximin score of every candidate, rescaled to the full
  /// stream (in [0, m]).
  std::vector<double> Scores() const;

  /// Candidates with estimated maximin score >= (phi - eps/2) m
  /// (Definition 8).
  std::vector<HeavyHitter> ListAbove() const;

  /// The eps-Maximin winner (Definition 9).
  HeavyHitter MaxScore() const;

  /// Pairwise defeats within the sample: D_S(x, y).
  uint64_t SampledPairwise(uint32_t x, uint32_t y) const;

  /// Distributed merge over disjoint vote substreams (same options/rate):
  /// the vote samples concatenate.
  static StreamingMaximin Merge(const StreamingMaximin& a,
                                const StreamingMaximin& b);

  uint64_t votes_processed() const { return position_; }
  uint64_t samples_taken() const { return sampled_votes_.size(); }
  const Options& options() const { return opt_; }

  size_t SpaceBits() const;

  void Serialize(BitWriter& out) const;
  static StreamingMaximin Deserialize(BitReader& in, uint64_t seed);

 private:
  Options opt_;
  Rng rng_;
  GeometricSkipSampler sampler_;
  std::vector<Ranking> sampled_votes_;
  uint64_t position_ = 0;
};

}  // namespace l1hh

#endif  // L1HH_CORE_MAXIMIN_H_
