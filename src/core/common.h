// Shared types for the paper's algorithms (Section 3).
//
// Every algorithm is parameterized by (epsilon, phi, delta), the universe
// size n, and — for the known-length variants (Theorems 1–6) — the stream
// length m.  The leading constants of the paper's analysis are collected in
// `Constants`:
//   * Constants::Paper() reproduces the literal values from the pseudocode
//     (Algorithm 2's l = 10^5 eps^-2 etc.), chosen there to make a
//     union-bound proof go through;
//   * Constants::Practical() (the default) keeps every formula's *shape*
//     with smaller leading constants; the accuracy benches re-verify the
//     (eps, phi) contract empirically over trial batteries.
// This is substitution #1 in DESIGN.md and affects no Table 1 comparison,
// which are all about asymptotic shape.
#ifndef L1HH_CORE_COMMON_H_
#define L1HH_CORE_COMMON_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace l1hh {

using ItemId = uint64_t;

/// One reported heavy hitter.
struct HeavyHitter {
  ItemId item = 0;
  /// Estimated count over the *full* stream (sampled counts rescaled).
  double estimated_count = 0;
  /// estimated_count / m.
  double estimated_fraction = 0;
};

struct Constants {
  // ---- Algorithm 1 (Theorem 1) ----
  /// Expected sample size = hh_sample_factor * ln(6/delta) / eps^2.
  double hh_sample_factor = 3.0;
  /// T1 length = hh_mg_factor / eps.  2 splits the eps budget evenly
  /// between sampling error and Misra-Gries undercount.
  double hh_mg_factor = 2.0;
  /// Hashed id range = hh_hash_range_factor * l^2 / delta.
  double hh_hash_range_factor = 4.0;
  /// T2 length = hh_top_factor / phi.
  double hh_top_factor = 2.0;

  // ---- Algorithm 2 (Theorem 2) ----
  /// Expected sample size = opt_sample_factor / eps^2.
  double opt_sample_factor = 150.0;
  /// T1 (Misra–Gries over true ids) length = opt_t1_factor / phi.
  double opt_t1_factor = 2.0;
  /// Repetitions R = max(opt_min_reps, opt_rep_factor * log2(12/phi)).
  double opt_rep_factor = 3.0;
  int opt_min_reps = 5;
  /// T2/T3 rows per repetition = opt_rows_factor / eps.
  double opt_rows_factor = 8.0;
  /// Epoch scale of the shared accelerated-counter schedule: after s
  /// samples the epoch is t = floor(2 log2(eps phi s / opt_epoch_scale)),
  /// i.e. the epoch the paper's per-cell rule (t = floor(2 log2(T2 /
  /// scale)), scale 1000 in the pseudocode) would assign to an exactly
  /// phi-heavy cell.  Keying the schedule to the sample position instead
  /// of per-cell T2 values is what makes two instances' epochs
  /// reconcilable at Merge time (docs/ALGORITHMS.md, BdwOptimal section).
  double opt_epoch_scale = 8.0;

  // ---- Algorithm 3 (Theorem 4, epsilon-Minimum) ----
  /// l1 = min_s1_factor * ln(6/(eps delta)) / eps.
  double min_s1_factor = 6.0;
  /// l2 = min_s2_factor * ln(6/delta) / eps^2.
  double min_s2_factor = 6.0;
  /// l3 = min_s3_factor * ln^3(6/(eps delta)) / eps.  (The paper uses
  /// log^6; cubic keeps the same "polylog(1/eps)/eps" shape at usable
  /// scale — substitution documented in DESIGN.md.)
  double min_s3_factor = 6.0;
  /// S2 active while #distinct <= 1 / (min_distinct_factor * eps * ln(1/eps)).
  double min_distinct_factor = 1.0;

  // ---- Borda / Maximin (Theorems 5–6) ----
  /// Borda sample size = borda_sample_factor * ln(6 n / delta) / eps^2.
  double borda_sample_factor = 6.0;
  /// Maximin sample size = maximin_sample_factor * ln(6 n / delta) / eps^2.
  double maximin_sample_factor = 8.0;

  // ---- Unknown stream length (Theorems 7–8) ----
  /// Epoch window factor W (the paper uses 1/eps); boundaries at W^k.
  /// 0 means "derive from eps".
  double unknown_window_factor = 0.0;

  static Constants Practical() { return Constants{}; }

  /// The literal constants from the paper's pseudocode and proofs.
  static Constants Paper() {
    Constants c;
    c.hh_sample_factor = 36.0;  // l = 6 log(6/delta)/eps^2 sampled at 6l/m
    c.hh_mg_factor = 1.0;
    c.hh_hash_range_factor = 4.0;
    c.hh_top_factor = 1.0;
    c.opt_sample_factor = 1e5;
    c.opt_t1_factor = 2.0;
    c.opt_rep_factor = 200.0;
    c.opt_min_reps = 1;
    c.opt_rows_factor = 100.0;
    c.opt_epoch_scale = 1000.0;
    c.min_s1_factor = 6.0;
    c.min_s2_factor = 6.0;
    c.min_s3_factor = 6.0;
    c.borda_sample_factor = 36.0;
    c.maximin_sample_factor = 48.0;
    return c;
  }
};

/// Validation shared by the algorithm Options structs.
Status ValidateHeavyHitterParams(double epsilon, double phi, double delta,
                                 uint64_t universe_size,
                                 uint64_t stream_length);

/// Number of bits to address a universe of size n.
int UniverseBits(uint64_t universe_size);

/// Clamps possibly-corrupted parameters into their valid domains.  Every
/// Deserialize() runs wire data through this before the values can reach a
/// constructor (where epsilon = 0 or NaN would mean division blow-ups and
/// undefined float-to-int casts).
void SanitizeWireParams(double& epsilon, double& phi, double& delta,
                        uint64_t& universe_size, uint64_t& stream_length);

}  // namespace l1hh

#endif  // L1HH_CORE_COMMON_H_
