// Summary-interface adapters for the paper's own algorithms: Algorithm 1
// (BdwSimple, Theorem 1) and Algorithm 2 (BdwOptimal, Theorem 2).  Kept in
// core/ so the summary layer never includes core headers; summary.cc pulls
// these in through internal::RegisterCoreSummaries().
#include <algorithm>
#include <cmath>
#include <memory>
#include <string_view>
#include <vector>

#include "core/bdw_optimal.h"
#include "core/bdw_simple.h"
#include "summary/summary.h"

namespace l1hh {
namespace {

// Both algorithms assume the stream length m is known up front (Theorems
// 1-2); the factory caller must set SummaryOptions::stream_length.  The
// adapters report in full-stream units, like the underlying Report().

std::vector<ItemEstimate> FilterTopK(const std::vector<HeavyHitter>& top,
                                     double phi, double epsilon,
                                     uint64_t stream_length) {
  const double threshold =
      (phi - epsilon / 2.0) * static_cast<double>(stream_length);
  std::vector<ItemEstimate> out;
  for (const auto& hh : top) {
    if (hh.estimated_count >= threshold) {
      out.push_back({hh.item, hh.estimated_count});
    }
  }
  SortByEstimateDesc(out);
  return out;
}

class BdwSimpleSummary : public Summary {
 public:
  explicit BdwSimpleSummary(const SummaryOptions& o)
      : options_(o), seed_(o.seed), impl_(MakeOptions(o), o.seed) {}

  std::string_view Name() const override { return "bdw_simple"; }
  SummaryOptions Options() const override { return options_; }

  void Update(uint64_t item, uint64_t weight) override {
    for (uint64_t i = 0; i < weight; ++i) impl_.Insert(item);
  }

  void UpdateBatch(std::span<const uint64_t> items) override {
    for (const uint64_t x : items) impl_.Insert(x);
  }

  // Sequential by necessity: Insert draws from the sampling PRNG, so the
  // column loop must consume randomness in exactly the scalar order.  The
  // win over the default is amortized virtual dispatch only.
  void UpdateColumn(const uint64_t* items, size_t n) override {
    for (size_t i = 0; i < n; ++i) impl_.Insert(items[i]);
  }

  double Estimate(uint64_t item) const override {
    return impl_.EstimateCount(item);
  }

  std::vector<ItemEstimate> HeavyHitters(double phi) const override {
    return FilterTopK(impl_.TopK(static_cast<size_t>(-1)), phi,
                      impl_.options().epsilon,
                      impl_.options().stream_length);
  }

  uint64_t ItemsProcessed() const override {
    return impl_.items_processed();
  }
  size_t MemoryUsageBytes() const override {
    return (impl_.SpaceBits() + 7) / 8;
  }

  bool SupportsMerge() const override { return true; }
  Status Merge(const Summary& other) override {
    const auto* rhs = dynamic_cast<const BdwSimpleSummary*>(&other);
    // Same seed => same hash function and sampling rate, the precondition
    // of BdwSimple::Merge.
    if (rhs == nullptr || rhs->seed_ != seed_) {
      return Status::InvalidArgument(
          "Merge requires another 'bdw_simple' with the same options and "
          "seed");
    }
    impl_ = BdwSimple::Merge(impl_, rhs->impl_);
    return Status::Ok();
  }

  bool SupportsSnapshot() const override { return true; }
  Status SaveTo(BitWriter& out) const override {
    impl_.Serialize(out);
    impl_.SerializeRngState(out);
    return Status::Ok();
  }
  Status LoadFrom(BitReader& in) override {
    BdwSimple loaded = BdwSimple::Deserialize(in, seed_);
    loaded.DeserializeRngState(in);
    if (in.overflow()) return in.status();
    // The wire carries the sketch's own options; they must agree with the
    // header options this adapter was constructed from.
    const BdwSimple::Options& a = loaded.options();
    const BdwSimple::Options& b = impl_.options();
    if (a.epsilon != b.epsilon || a.phi != b.phi || a.delta != b.delta ||
        a.universe_size != b.universe_size ||
        a.stream_length != b.stream_length) {
      return Status::Corruption(
          "'bdw_simple' snapshot payload options disagree with the header");
    }
    impl_ = std::move(loaded);
    return Status::Ok();
  }

 private:
  static BdwSimple::Options MakeOptions(const SummaryOptions& o) {
    BdwSimple::Options opt;
    opt.epsilon = o.epsilon;
    opt.phi = o.phi;
    opt.delta = o.delta;
    opt.universe_size = o.universe_size;
    opt.stream_length = o.stream_length;
    return opt;
  }

  SummaryOptions options_;
  uint64_t seed_;
  BdwSimple impl_;
};

class BdwOptimalSummary : public Summary {
 public:
  explicit BdwOptimalSummary(const SummaryOptions& o)
      : options_(o), seed_(o.seed), impl_(MakeOptions(o), o.seed) {}

  std::string_view Name() const override { return "bdw_optimal"; }
  SummaryOptions Options() const override { return options_; }

  void Update(uint64_t item, uint64_t weight) override {
    for (uint64_t i = 0; i < weight; ++i) impl_.Insert(item);
  }

  void UpdateBatch(std::span<const uint64_t> items) override {
    for (const uint64_t x : items) impl_.Insert(x);
  }

  // Algorithm 2's Insert consumes PRNG draws (sampling + accelerated-
  // counter epochs), so the column loop stays strictly sequential; the
  // saving over the default path is the per-item virtual call.
  void UpdateColumn(const uint64_t* items, size_t n) override {
    for (size_t i = 0; i < n; ++i) impl_.Insert(items[i]);
  }

  double Estimate(uint64_t item) const override {
    return impl_.EstimateCount(item);
  }

  std::vector<ItemEstimate> HeavyHitters(double phi) const override {
    return FilterTopK(impl_.TopK(static_cast<size_t>(-1)), phi,
                      impl_.options().epsilon,
                      impl_.options().stream_length);
  }

  uint64_t ItemsProcessed() const override {
    return impl_.items_processed();
  }
  size_t MemoryUsageBytes() const override {
    return (impl_.SpaceBits() + 7) / 8;
  }

  bool SupportsMerge() const override { return true; }
  Status Merge(const Summary& other) override {
    const auto* rhs = dynamic_cast<const BdwOptimalSummary*>(&other);
    // Same seed => same hash functions, sampling rate, and epoch
    // schedule; BdwOptimal::Compatible re-verifies the derived shape.
    if (rhs == nullptr || rhs->seed_ != seed_ ||
        !BdwOptimal::Compatible(impl_, rhs->impl_)) {
      return Status::InvalidArgument(
          "Merge requires another 'bdw_optimal' with the same options and "
          "seed");
    }
    return impl_.MergeFrom(rhs->impl_);
  }

  bool SupportsSnapshot() const override { return true; }
  // Snapshots use the sparse T2/T3 grid encoding (the mostly-zero dense
  // grids dominated the wire size); the comm games keep sending the
  // dense Serialize(), so their measured message sizes still track the
  // cell count.
  Status SaveTo(BitWriter& out) const override {
    impl_.SerializeSparse(out);
    impl_.SerializeRngState(out);
    return Status::Ok();
  }
  Status LoadFrom(BitReader& in) override {
    BdwOptimal loaded = BdwOptimal::DeserializeSparse(in, seed_);
    loaded.DeserializeRngState(in);
    if (in.overflow()) return in.status();
    // Compatible() re-verifies the full derived shape (rows, repetitions,
    // epoch schedule, drawn hashes) against the instance the header
    // options constructed — the same precondition Merge relies on.
    if (!BdwOptimal::Compatible(impl_, loaded)) {
      return Status::Corruption(
          "'bdw_optimal' snapshot payload options disagree with the header");
    }
    impl_ = std::move(loaded);
    return Status::Ok();
  }

 private:
  static BdwOptimal::Options MakeOptions(const SummaryOptions& o) {
    BdwOptimal::Options opt;
    opt.epsilon = o.epsilon;
    opt.phi = o.phi;
    opt.delta = o.delta;
    opt.universe_size = o.universe_size;
    opt.stream_length = o.stream_length;
    return opt;
  }

  SummaryOptions options_;
  uint64_t seed_;
  BdwOptimal impl_;
};

}  // namespace

namespace internal {

void RegisterCoreSummaries() {
  RegisterSummary("bdw_simple", [](const SummaryOptions& o) {
    return std::unique_ptr<Summary>(new BdwSimpleSummary(o));
  });
  RegisterSummary("bdw_optimal", [](const SummaryOptions& o) {
    return std::unique_ptr<Summary>(new BdwOptimalSummary(o));
  });
}

}  // namespace internal
}  // namespace l1hh
