#include "core/common.h"

#include "util/bit_util.h"

namespace l1hh {

Status ValidateHeavyHitterParams(double epsilon, double phi, double delta,
                                 uint64_t universe_size,
                                 uint64_t stream_length) {
  if (!(epsilon > 0.0) || !(epsilon < 1.0)) {
    return Status::InvalidArgument("epsilon must be in (0, 1)");
  }
  if (!(phi > epsilon) || !(phi <= 1.0)) {
    return Status::InvalidArgument("phi must satisfy eps < phi <= 1");
  }
  if (!(delta > 0.0) || !(delta >= 0.0 && delta < 1.0)) {
    return Status::InvalidArgument("delta must be in (0, 1)");
  }
  if (universe_size == 0) {
    return Status::InvalidArgument("universe_size must be positive");
  }
  if (stream_length == 0) {
    return Status::InvalidArgument("stream_length must be positive");
  }
  return Status::Ok();
}

int UniverseBits(uint64_t universe_size) {
  return BitWidth(universe_size == 0 ? 1 : universe_size - 1);
}

void SanitizeWireParams(double& epsilon, double& phi, double& delta,
                        uint64_t& universe_size, uint64_t& stream_length) {
  // The negated comparisons are deliberate: they also reject NaN.
  if (!(epsilon > 1e-12 && epsilon < 1.0)) epsilon = 0.25;
  if (!(phi > epsilon && phi <= 1.0)) {
    phi = epsilon * 2.0 < 1.0 ? epsilon * 2.0 : 1.0;
  }
  if (!(delta > 1e-12 && delta < 1.0)) delta = 0.5;
  if (universe_size == 0) universe_size = 1;
  if (stream_length == 0) stream_length = 1;
}

}  // namespace l1hh
