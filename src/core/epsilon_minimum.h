// Algorithm 3 of the paper (Theorem 4): the eps-Minimum problem — find an
// item whose frequency is within eps*m of the minimum over the whole
// universe (items that never occur count as frequency zero).
//
// Space O(eps^-1 log log(1/(eps delta)) + log log m) bits via a four-way
// case analysis, mirrored exactly by Report():
//   1. |U| > 1/((1-delta) eps): a random item among the first
//      1/((1-delta)eps) ids is correct whp (at most 1/eps items can be
//      eps-heavy) — no stream state at all;
//   2. some item never entered the S1 Bernoulli sample (rate ~l1 =
//      O(log(1/(eps delta))/eps)): that item's frequency is < eps*m whp;
//   3. few distinct items (<= 1/(eps ln(1/eps))): S2 keeps exact counts of
//      an O(eps^-2)-rate sample — return its minimum;
//   4. otherwise the minimum frequency lies in
//      [eps m / ln(1/eps), eps m ln(1/eps)]: S3's truncated counters (cap =
//      polylog(1/(eps delta)) => O(log log) bits each) resolve it.
#ifndef L1HH_CORE_EPSILON_MINIMUM_H_
#define L1HH_CORE_EPSILON_MINIMUM_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/common.h"
#include "sampling/geometric_skip.h"
#include "util/bit_stream.h"
#include "util/random.h"

namespace l1hh {

class EpsilonMinimum {
 public:
  struct Options {
    double epsilon = 0.05;
    double delta = 0.1;
    uint64_t universe_size = 0;  // must be set; minimum is universe-relative
    uint64_t stream_length = 0;
    Constants constants = Constants::Practical();

    Status Validate() const {
      if (!(epsilon > 0.0) || !(epsilon < 1.0)) {
        return Status::InvalidArgument("epsilon must be in (0, 1)");
      }
      if (universe_size == 0 || stream_length == 0) {
        return Status::InvalidArgument("universe and stream must be nonempty");
      }
      return Status::Ok();
    }
  };

  /// Which case of the paper's REPORT procedure fired (for tests/benches).
  enum class ReportBranch {
    kLargeUniverse,
    kUnsampledItem,
    kFewDistinct,
    kTruncatedCounters,
  };

  struct Result {
    ItemId item = 0;
    /// Estimated frequency of `item` over the full stream (may be 0).
    double estimated_count = 0;
    ReportBranch branch = ReportBranch::kLargeUniverse;
  };

  EpsilonMinimum(const Options& options, uint64_t seed);

  void Insert(ItemId item);

  Result Report() const;

  uint64_t items_processed() const { return position_; }
  uint64_t distinct_items() const { return distinct_; }
  const Options& options() const { return opt_; }
  uint64_t truncation_cap() const { return cap_; }

  size_t SpaceBits() const;

  void Serialize(BitWriter& out) const;
  static EpsilonMinimum Deserialize(BitReader& in, uint64_t seed);

 private:
  Options opt_;
  Rng rng_;

  bool large_universe_ = false;
  ItemId random_item_ = 0;  // branch-1 answer, fixed at construction

  // Small-universe state.
  GeometricSkipSampler s1_sampler_, s2_sampler_, s3_sampler_;
  double p2_ = 0, p3_ = 0;
  uint64_t distinct_threshold_ = 0;
  uint64_t cap_ = 0;
  std::vector<bool> seen_;     // exact distinct tracking over U
  uint64_t distinct_ = 0;
  std::vector<bool> s1_bits_;  // B1: which items entered sample S1
  bool s2_active_ = true;
  std::unordered_map<ItemId, uint64_t> s2_;  // exact counts of sample S2
  std::unordered_map<ItemId, uint64_t> s3_;  // truncated counts of S3
  uint64_t position_ = 0;
};

}  // namespace l1hh

#endif  // L1HH_CORE_EPSILON_MINIMUM_H_
