#include "core/epsilon_maximum.h"

#include <algorithm>
#include <cmath>

#include "util/bit_util.h"

namespace l1hh {

namespace {

uint64_t ExpectedSamples(const EpsilonMaximum::Options& opt) {
  const double l = opt.constants.hh_sample_factor *
                   std::log(6.0 / opt.delta) /
                   (opt.epsilon * opt.epsilon);
  return std::max<uint64_t>(16, static_cast<uint64_t>(std::ceil(l)));
}

HashedMisraGries MakeTable(const EpsilonMaximum::Options& opt,
                           uint64_t seed) {
  Rng hash_rng(Mix64(seed) ^ 0x7f4a7c159e3779b9ULL);
  const uint64_t l = ExpectedSamples(opt);
  const double range_d = opt.constants.hh_hash_range_factor *
                         static_cast<double>(l) * static_cast<double>(l) /
                         opt.delta;
  const uint64_t range = static_cast<uint64_t>(std::min(range_d, 9.0e18));
  // Table length min(c/eps, n): a universe smaller than the table is
  // tracked exactly (the min{1/eps, n} term of Theorem 3).
  const double c_over_eps = opt.constants.hh_mg_factor / opt.epsilon;
  const size_t counters = static_cast<size_t>(std::ceil(std::min(
      c_over_eps, static_cast<double>(opt.universe_size) + 1.0)));
  return HashedMisraGries(counters, /*top_ids=*/0,
                          UniversalHash::Draw(hash_rng,
                                              std::max<uint64_t>(range, 2)),
                          UniverseBits(opt.universe_size));
}

}  // namespace

EpsilonMaximum::EpsilonMaximum(const Options& options, uint64_t seed)
    : EpsilonMaximum(options, seed, MakeTable(options, seed)) {}

EpsilonMaximum::EpsilonMaximum(const Options& options, uint64_t seed,
                               HashedMisraGries table)
    : opt_(options), rng_(seed), table_(std::move(table)) {
  const uint64_t l = ExpectedSamples(opt_);
  const double p = std::min(
      1.0, static_cast<double>(l) /
               static_cast<double>(std::max<uint64_t>(opt_.stream_length, 1)));
  sampler_ = GeometricSkipSampler::FromProbability(p, rng_);
}

void EpsilonMaximum::Insert(ItemId item) {
  ++position_;
  if (!sampler_.Offer(rng_)) return;
  ++sampled_;
  table_.Insert(item);
  const uint64_t count = table_.EstimateByHash(item);
  if (!has_max_ || count >= table_.EstimateByHash(max_item_)) {
    max_item_ = item;
    has_max_ = true;
  }
}

HeavyHitter EpsilonMaximum::Report() const {
  HeavyHitter hh;
  if (!has_max_ || sampled_ == 0) return hh;
  const double scale = static_cast<double>(opt_.stream_length) /
                       static_cast<double>(sampled_);
  hh.item = max_item_;
  hh.estimated_count =
      static_cast<double>(table_.EstimateByHash(max_item_)) * scale;
  hh.estimated_fraction =
      hh.estimated_count / static_cast<double>(opt_.stream_length);
  return hh;
}

size_t EpsilonMaximum::SpaceBits() const {
  return table_.SpaceBits() + static_cast<size_t>(sampler_.SpaceBits()) +
         BitWidth(sampled_) +
         static_cast<size_t>(UniverseBits(opt_.universe_size));  // max id
}

void EpsilonMaximum::Serialize(BitWriter& out) const {
  out.WriteDouble(opt_.epsilon);
  out.WriteDouble(opt_.delta);
  out.WriteU64(opt_.universe_size);
  out.WriteU64(opt_.stream_length);
  out.WriteCounter(position_);
  out.WriteCounter(sampled_);
  out.WriteBool(has_max_);
  out.WriteU64(max_item_);
  sampler_.Serialize(out);
  table_.Serialize(out);
}

EpsilonMaximum EpsilonMaximum::Deserialize(BitReader& in, uint64_t seed) {
  Options opt;
  opt.epsilon = in.ReadDouble();
  opt.delta = in.ReadDouble();
  opt.universe_size = in.ReadU64();
  opt.stream_length = in.ReadU64();
  double phi_unused = 1.0;
  SanitizeWireParams(opt.epsilon, phi_unused, opt.delta, opt.universe_size,
                     opt.stream_length);
  const uint64_t position = in.ReadCounter();
  const uint64_t sampled = in.ReadCounter();
  const bool has_max = in.ReadBool();
  const ItemId max_item = in.ReadU64();
  GeometricSkipSampler sampler;
  sampler.Deserialize(in);
  HashedMisraGries table = HashedMisraGries::Deserialize(in);
  EpsilonMaximum out(opt, seed, std::move(table));
  out.position_ = position;
  out.sampled_ = sampled;
  out.has_max_ = has_max;
  out.max_item_ = max_item;
  out.sampler_ = sampler;
  return out;
}

}  // namespace l1hh
