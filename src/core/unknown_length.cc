#include "core/unknown_length.h"

#include <algorithm>

namespace l1hh {

namespace {

double WindowFor(double epsilon, const Constants& constants) {
  if (constants.unknown_window_factor >= 2.0) {
    return constants.unknown_window_factor;
  }
  // The paper's choice: W = 1/eps (so the discarded prefix is <= eps m).
  return std::max(4.0, 1.0 / epsilon);
}

}  // namespace

UnknownLengthWrapper<BdwSimple> MakeUnknownLengthListHeavyHitters(
    const BdwSimple::Options& base, uint64_t max_length_hint, uint64_t seed) {
  const double window = WindowFor(base.epsilon, base.constants);
  auto factory = [base, window, seed](uint64_t assumed) {
    BdwSimple::Options opt = base;
    opt.stream_length = assumed;
    opt.constants.hh_sample_factor *= window;  // the eps^-3 oversampling
    return BdwSimple(opt, Mix64(seed ^ assumed));
  };
  return UnknownLengthWrapper<BdwSimple>(factory, window, base.delta,
                                         max_length_hint, seed);
}

UnknownLengthWrapper<EpsilonMaximum> MakeUnknownLengthMaximum(
    const EpsilonMaximum::Options& base, uint64_t max_length_hint,
    uint64_t seed) {
  const double window = WindowFor(base.epsilon, base.constants);
  auto factory = [base, window, seed](uint64_t assumed) {
    EpsilonMaximum::Options opt = base;
    opt.stream_length = assumed;
    opt.constants.hh_sample_factor *= window;
    return EpsilonMaximum(opt, Mix64(seed ^ assumed));
  };
  return UnknownLengthWrapper<EpsilonMaximum>(factory, window, base.delta,
                                              max_length_hint, seed);
}

UnknownLengthWrapper<EpsilonMinimum> MakeUnknownLengthMinimum(
    const EpsilonMinimum::Options& base, uint64_t max_length_hint,
    uint64_t seed) {
  const double window = WindowFor(base.epsilon, base.constants);
  auto factory = [base, window, seed](uint64_t assumed) {
    EpsilonMinimum::Options opt = base;
    opt.stream_length = assumed;
    opt.constants.min_s1_factor *= window;
    opt.constants.min_s2_factor *= window;
    opt.constants.min_s3_factor *= window;
    return EpsilonMinimum(opt, Mix64(seed ^ assumed));
  };
  return UnknownLengthWrapper<EpsilonMinimum>(factory, window, base.delta,
                                              max_length_hint, seed);
}

UnknownLengthWrapper<StreamingBorda> MakeUnknownLengthBorda(
    const StreamingBorda::Options& base, uint64_t max_length_hint,
    uint64_t seed) {
  const double window = WindowFor(base.epsilon, base.constants);
  auto factory = [base, window, seed](uint64_t assumed) {
    StreamingBorda::Options opt = base;
    opt.stream_length = assumed;
    opt.constants.borda_sample_factor *= window;
    return StreamingBorda(opt, Mix64(seed ^ assumed));
  };
  return UnknownLengthWrapper<StreamingBorda>(factory, window, base.delta,
                                              max_length_hint, seed);
}

UnknownLengthWrapper<StreamingMaximin> MakeUnknownLengthMaximin(
    const StreamingMaximin::Options& base, uint64_t max_length_hint,
    uint64_t seed) {
  const double window = WindowFor(base.epsilon, base.constants);
  auto factory = [base, window, seed](uint64_t assumed) {
    StreamingMaximin::Options opt = base;
    opt.stream_length = assumed;
    opt.constants.maximin_sample_factor *= window;
    return StreamingMaximin(opt, Mix64(seed ^ assumed));
  };
  return UnknownLengthWrapper<StreamingMaximin>(factory, window, base.delta,
                                                max_length_hint, seed);
}

}  // namespace l1hh
