#include "core/maximin.h"

#include <algorithm>
#include <cmath>

#include "util/bit_util.h"
#include "votes/election.h"

namespace l1hh {

StreamingMaximin::StreamingMaximin(const Options& opt, uint64_t seed)
    : opt_(opt), rng_(seed) {
  const double l = opt_.constants.maximin_sample_factor *
                   std::log(6.0 * opt_.num_candidates / opt_.delta) /
                   (opt_.epsilon * opt_.epsilon);
  const double p = std::min(
      1.0, l / static_cast<double>(std::max<uint64_t>(opt_.stream_length, 1)));
  sampler_ = GeometricSkipSampler::FromProbability(p, rng_);
}

void StreamingMaximin::InsertVote(const Ranking& vote) {
  ++position_;
  if (!sampler_.Offer(rng_)) return;
  sampled_votes_.push_back(vote);
}

std::vector<double> StreamingMaximin::Scores() const {
  const uint32_t n = opt_.num_candidates;
  std::vector<double> out(n, 0.0);
  if (sampled_votes_.empty()) return out;
  Election tally(n);
  for (const Ranking& v : sampled_votes_) tally.AddVote(v);
  const std::vector<uint64_t> mm = tally.MaximinScores();
  const double scale = static_cast<double>(opt_.stream_length) /
                       static_cast<double>(sampled_votes_.size());
  for (uint32_t i = 0; i < n; ++i) {
    out[i] = static_cast<double>(mm[i]) * scale;
  }
  return out;
}

std::vector<HeavyHitter> StreamingMaximin::ListAbove() const {
  const std::vector<double> scores = Scores();
  const double m = static_cast<double>(opt_.stream_length);
  const double threshold = (opt_.phi - opt_.epsilon / 2.0) * m;
  std::vector<HeavyHitter> out;
  for (uint32_t i = 0; i < scores.size(); ++i) {
    if (scores[i] >= threshold) {
      out.push_back({i, scores[i], scores[i] / m});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const HeavyHitter& a, const HeavyHitter& b) {
              return a.estimated_count > b.estimated_count;
            });
  return out;
}

HeavyHitter StreamingMaximin::MaxScore() const {
  const std::vector<double> scores = Scores();
  uint32_t best = 0;
  for (uint32_t i = 1; i < scores.size(); ++i) {
    if (scores[i] > scores[best]) best = i;
  }
  const double m = static_cast<double>(opt_.stream_length);
  return {best, scores.empty() ? 0 : scores[best],
          scores.empty() ? 0 : scores[best] / m};
}

uint64_t StreamingMaximin::SampledPairwise(uint32_t x, uint32_t y) const {
  uint64_t count = 0;
  for (const Ranking& v : sampled_votes_) {
    if (v.Prefers(x, y)) ++count;
  }
  return count;
}

StreamingMaximin StreamingMaximin::Merge(const StreamingMaximin& a,
                                         const StreamingMaximin& b) {
  StreamingMaximin merged = a;
  if (b.opt_.num_candidates != merged.opt_.num_candidates) return merged;
  merged.sampled_votes_.insert(merged.sampled_votes_.end(),
                               b.sampled_votes_.begin(),
                               b.sampled_votes_.end());
  merged.position_ += b.position_;
  return merged;
}

size_t StreamingMaximin::SpaceBits() const {
  const size_t per_vote = static_cast<size_t>(opt_.num_candidates) *
                          static_cast<size_t>(CeilLog2(
                              std::max<uint64_t>(opt_.num_candidates, 2)));
  return sampled_votes_.size() * per_vote + sampler_.SpaceBits() +
         BitWidth(static_cast<uint64_t>(sampled_votes_.size()));
}

void StreamingMaximin::Serialize(BitWriter& out) const {
  out.WriteDouble(opt_.epsilon);
  out.WriteDouble(opt_.phi);
  out.WriteDouble(opt_.delta);
  out.WriteU32(opt_.num_candidates);
  out.WriteU64(opt_.stream_length);
  out.WriteCounter(position_);
  sampler_.Serialize(out);
  out.WriteGamma(sampled_votes_.size() + 1);
  for (const Ranking& v : sampled_votes_) v.CompactEncode(out);
}

StreamingMaximin StreamingMaximin::Deserialize(BitReader& in, uint64_t seed) {
  Options opt;
  opt.epsilon = in.ReadDouble();
  opt.phi = in.ReadDouble();
  opt.delta = in.ReadDouble();
  opt.num_candidates = in.ReadU32();
  opt.stream_length = in.ReadU64();
  if (!(opt.epsilon > 1e-12 && opt.epsilon < 1.0)) opt.epsilon = 0.25;
  if (!(opt.phi >= 0.0 && opt.phi <= 1.0)) opt.phi = 0.0;
  if (!(opt.delta > 1e-12 && opt.delta < 1.0)) opt.delta = 0.5;
  if (opt.stream_length == 0) opt.stream_length = 1;
  opt.num_candidates = static_cast<uint32_t>(std::min<uint64_t>(
      opt.num_candidates, in.remaining_bits() + 64));
  StreamingMaximin out(opt, seed);
  out.position_ = in.ReadCounter();
  out.sampler_.Deserialize(in);
  const size_t k = in.CheckedCount(in.ReadGamma() - 1);
  out.sampled_votes_.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    out.sampled_votes_.push_back(
        Ranking::CompactDecode(in, opt.num_candidates));
  }
  return out;
}

}  // namespace l1hh
