#include "core/bdw_simple.h"

#include <algorithm>
#include <cmath>

#include "util/bit_util.h"

namespace l1hh {

namespace {

uint64_t ExpectedSamples(const BdwSimple::Options& opt) {
  const double l = opt.constants.hh_sample_factor *
                   std::log(6.0 / opt.delta) /
                   (opt.epsilon * opt.epsilon);
  return std::max<uint64_t>(16, static_cast<uint64_t>(std::ceil(l)));
}

}  // namespace

HashedMisraGries BdwSimple::MakeTable(const Options& opt, uint64_t seed) {
  Rng hash_rng(Mix64(seed) ^ 0x9d8f3c1b2a4e5d6fULL);
  const uint64_t l = ExpectedSamples(opt);
  // Hash range ~ hh_hash_range_factor * l^2 / delta, capped to avoid
  // overflow for tiny eps; collisions on the sample stay o(delta)-likely.
  const double range_d = opt.constants.hh_hash_range_factor *
                         static_cast<double>(l) * static_cast<double>(l) /
                         opt.delta;
  const uint64_t range =
      static_cast<uint64_t>(std::min(range_d, 9.0e18));
  const auto counters = static_cast<size_t>(
      std::ceil(opt.constants.hh_mg_factor / opt.epsilon));
  const auto top = static_cast<size_t>(
      std::ceil(opt.constants.hh_top_factor / opt.phi));
  return HashedMisraGries(counters, top,
                          UniversalHash::Draw(hash_rng, std::max<uint64_t>(
                                                            range, 2)),
                          UniverseBits(opt.universe_size));
}

BdwSimple::BdwSimple(const Options& options, uint64_t seed)
    : BdwSimple(options, seed, MakeTable(options, seed)) {}

BdwSimple::BdwSimple(const Options& options, uint64_t seed,
                     HashedMisraGries table)
    : opt_(options), rng_(seed), table_(std::move(table)) {
  const uint64_t l = ExpectedSamples(opt_);
  const double p = std::min(
      1.0, static_cast<double>(l) /
               static_cast<double>(std::max<uint64_t>(opt_.stream_length, 1)));
  sampler_ = GeometricSkipSampler::FromProbability(p, rng_);
}

void BdwSimple::Insert(ItemId item) {
  ++position_;
  if (!sampler_.Offer(rng_)) return;
  ++sampled_;
  table_.Insert(item);
}

std::vector<HeavyHitter> BdwSimple::Report() const {
  std::vector<HeavyHitter> out;
  if (sampled_ == 0) return out;
  const double scale = static_cast<double>(opt_.stream_length) /
                       static_cast<double>(sampled_);
  const double threshold = (opt_.phi - opt_.epsilon / 2.0) *
                           static_cast<double>(sampled_);
  for (const auto& entry : table_.TopEntries()) {
    if (static_cast<double>(entry.count) >= threshold) {
      HeavyHitter hh;
      hh.item = entry.item;
      hh.estimated_count = static_cast<double>(entry.count) * scale;
      hh.estimated_fraction =
          hh.estimated_count / static_cast<double>(opt_.stream_length);
      out.push_back(hh);
    }
  }
  return out;
}

std::vector<HeavyHitter> BdwSimple::TopK(size_t k) const {
  std::vector<HeavyHitter> out;
  if (sampled_ == 0) return out;
  const double scale = static_cast<double>(opt_.stream_length) /
                       static_cast<double>(sampled_);
  for (const auto& entry : table_.TopEntries()) {
    if (out.size() >= k) break;
    HeavyHitter hh;
    hh.item = entry.item;
    hh.estimated_count = static_cast<double>(entry.count) * scale;
    hh.estimated_fraction =
        hh.estimated_count / static_cast<double>(opt_.stream_length);
    out.push_back(hh);
  }
  return out;
}

double BdwSimple::EstimateCount(ItemId item) const {
  if (sampled_ == 0) return 0;
  const double scale = static_cast<double>(opt_.stream_length) /
                       static_cast<double>(sampled_);
  return static_cast<double>(table_.EstimateByHash(item)) * scale;
}

BdwSimple BdwSimple::Merge(const BdwSimple& a, const BdwSimple& b) {
  BdwSimple merged(a.opt_, /*seed=*/0,
                   HashedMisraGries::Merge(a.table_, b.table_));
  merged.position_ = a.position_ + b.position_;
  merged.sampled_ = a.sampled_ + b.sampled_;
  merged.sampler_ = a.sampler_;  // continue a's skip schedule if resumed
  return merged;
}

size_t BdwSimple::SpaceBits() const {
  return table_.SpaceBits() + static_cast<size_t>(sampler_.SpaceBits()) +
         BitWidth(sampled_);
}

void BdwSimple::Serialize(BitWriter& out) const {
  out.WriteDouble(opt_.epsilon);
  out.WriteDouble(opt_.phi);
  out.WriteDouble(opt_.delta);
  out.WriteU64(opt_.universe_size);
  out.WriteU64(opt_.stream_length);
  out.WriteCounter(position_);
  out.WriteCounter(sampled_);
  sampler_.Serialize(out);
  table_.Serialize(out);
}

BdwSimple BdwSimple::Deserialize(BitReader& in, uint64_t seed) {
  Options opt;
  opt.epsilon = in.ReadDouble();
  opt.phi = in.ReadDouble();
  opt.delta = in.ReadDouble();
  opt.universe_size = in.ReadU64();
  opt.stream_length = in.ReadU64();
  SanitizeWireParams(opt.epsilon, opt.phi, opt.delta, opt.universe_size,
                     opt.stream_length);
  const uint64_t position = in.ReadCounter();
  const uint64_t sampled = in.ReadCounter();
  GeometricSkipSampler sampler;
  sampler.Deserialize(in);
  HashedMisraGries table = HashedMisraGries::Deserialize(in);
  BdwSimple out(opt, seed, std::move(table));
  out.position_ = position;
  out.sampled_ = sampled;
  out.sampler_ = sampler;
  return out;
}

void BdwSimple::SerializeRngState(BitWriter& out) const {
  rng_.Serialize(out);
}

void BdwSimple::DeserializeRngState(BitReader& in) { rng_.Deserialize(in); }

}  // namespace l1hh
