// Theorems 7–8: running the algorithms when the stream length m is NOT
// known in advance.
//
// The paper's scheme, generalized: pick a window factor W (the paper uses
// W = 1/eps).  A Morris counter (O(log log m + k) bits, correct within a
// constant factor at every power-of-two position whp) tracks the stream
// length.  Instance I_k is started when the estimate crosses W^k and is
// built for an assumed length of ~W^{k+2}; when the estimate crosses
// W^{k+1}, I_{k-1} is discarded.  At most two instances are ever live, the
// reporter is the older one, and the prefix it missed is at most a 1/W <=
// eps fraction of the stream.  Instances oversample by a factor W so they
// hold enough samples throughout their reporting window — this is exactly
// why the paper's Theorem 7 uses l = log(6/delta)/eps^3 per instance.
#ifndef L1HH_CORE_UNKNOWN_LENGTH_H_
#define L1HH_CORE_UNKNOWN_LENGTH_H_

#include <cmath>
#include <cstdint>
#include <functional>
#include <memory>

#include "core/bdw_simple.h"
#include "core/borda.h"
#include "core/epsilon_maximum.h"
#include "core/epsilon_minimum.h"
#include "core/maximin.h"
#include "count/morris_counter.h"

namespace l1hh {

template <typename Sketch>
class UnknownLengthWrapper {
 public:
  using Factory = std::function<Sketch(uint64_t assumed_length)>;

  /// `window_factor` W >= 2; the discarded prefix is a <= 1/W fraction.
  UnknownLengthWrapper(Factory factory, double window_factor, double delta,
                       uint64_t max_length_hint, uint64_t seed)
      : factory_(std::move(factory)),
        window_(window_factor < 2.0 ? 2.0 : window_factor),
        morris_(MorrisCounterEnsemble::ForStream(max_length_hint, delta,
                                                 Mix64(seed))) {
    // Safety factor 8 absorbs the Morris counter's constant-factor error.
    old_ = std::make_unique<Sketch>(factory_(Assumed(2)));
    next_boundary_ = window_;
    level_ = 1;
  }

  template <typename Arg>
  void Insert(const Arg& item) {
    ++true_length_;  // debug/testing only; not charged to the algorithm
    old_->Insert(item);
    if (fresh_) fresh_->Insert(item);
    if (morris_.Increment()) MaybeRotate();
  }

  /// The instance answering queries (the paper reports from the older of
  /// the two running instances).
  const Sketch& Reporter() const { return *old_; }

  double EstimatedLength() const { return morris_.Estimate(); }
  int level() const { return level_; }
  int live_instances() const { return fresh_ ? 2 : 1; }

  size_t SpaceBits() const {
    size_t bits = old_->SpaceBits() + morris_.SpaceBits();
    if (fresh_) bits += fresh_->SpaceBits();
    return bits;
  }

  /// Serializes the full state (both instances + the Morris counter); this
  /// is what Alice sends in the Greater-than game of Theorem 14, where the
  /// stream length is inherently unknown to her.
  void Serialize(BitWriter& out) const {
    out.WriteBits(static_cast<uint64_t>(level_), 32);
    morris_.Serialize(out);
    old_->Serialize(out);
    out.WriteBool(fresh_ != nullptr);
    if (fresh_) fresh_->Serialize(out);
  }

  /// Rebuilds a wrapper from a serialized message.  The receiving side must
  /// supply the same factory/window parameters (they are protocol
  /// constants, not part of the message).
  static UnknownLengthWrapper Deserialize(BitReader& in, Factory factory,
                                          double window_factor, double delta,
                                          uint64_t max_length_hint,
                                          uint64_t seed) {
    UnknownLengthWrapper w(std::move(factory), window_factor, delta,
                           max_length_hint, seed);
    w.level_ = static_cast<int>(in.ReadBits(32));
    w.next_boundary_ = std::pow(w.window_, static_cast<double>(w.level_));
    w.morris_.Deserialize(in);
    *w.old_ = Sketch::Deserialize(in, Mix64(seed ^ 0x01dULL));
    if (in.ReadBool()) {
      w.fresh_ = std::make_unique<Sketch>(
          Sketch::Deserialize(in, Mix64(seed ^ 0xf4e5ULL)));
    }
    return w;
  }

 private:
  uint64_t Assumed(int level) const {
    const double a = 8.0 * std::pow(window_, static_cast<double>(level));
    if (a > 9.0e18) return uint64_t{9000000000000000000ULL};
    return static_cast<uint64_t>(a);
  }

  void MaybeRotate() {
    while (morris_.Estimate() >= next_boundary_) {
      if (fresh_) old_ = std::move(fresh_);
      fresh_ = std::make_unique<Sketch>(factory_(Assumed(level_ + 2)));
      ++level_;
      next_boundary_ *= window_;
    }
  }

  Factory factory_;
  double window_;
  MorrisCounterEnsemble morris_;
  std::unique_ptr<Sketch> old_;
  std::unique_ptr<Sketch> fresh_;
  double next_boundary_ = 0;
  int level_ = 1;
  uint64_t true_length_ = 0;
};

/// Theorem 7 instantiations: list heavy hitters and eps-Maximum with
/// unknown m.  The factories oversample by the window factor, matching the
/// eps^-3 sample size of the paper's proof.
UnknownLengthWrapper<BdwSimple> MakeUnknownLengthListHeavyHitters(
    const BdwSimple::Options& base, uint64_t max_length_hint, uint64_t seed);

UnknownLengthWrapper<EpsilonMaximum> MakeUnknownLengthMaximum(
    const EpsilonMaximum::Options& base, uint64_t max_length_hint,
    uint64_t seed);

/// Theorem 8 instantiations.
UnknownLengthWrapper<EpsilonMinimum> MakeUnknownLengthMinimum(
    const EpsilonMinimum::Options& base, uint64_t max_length_hint,
    uint64_t seed);

UnknownLengthWrapper<StreamingBorda> MakeUnknownLengthBorda(
    const StreamingBorda::Options& base, uint64_t max_length_hint,
    uint64_t seed);

UnknownLengthWrapper<StreamingMaximin> MakeUnknownLengthMaximin(
    const StreamingMaximin::Options& base, uint64_t max_length_hint,
    uint64_t seed);

}  // namespace l1hh

#endif  // L1HH_CORE_UNKNOWN_LENGTH_H_
