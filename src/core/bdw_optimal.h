// Algorithm 2 of the paper (Theorem 2): the space-optimal
// (eps, phi)-List heavy hitters algorithm.
//
// Structure, mirroring the pseudocode:
//   * Bernoulli sample of ~l = O(eps^-2) items (geometric-skip, O(1) w.c.);
//   * T1: Misra–Gries over *true* ids with O(1/phi) counters — the
//     candidate set (every phi-heavy item of the sample survives);
//   * for each of R = O(log(1/phi)) repetitions j, a universal hash h_j
//     into O(1/eps) rows;
//   * T2[i][j]: eps-subsampled running count of hashed id i — a factor-4
//     tracker of f_i used to decide the current *epoch*;
//   * T3[i][j][t]: the "accelerated counters": an arrival in epoch t is
//     counted with probability min(eps 2^t, 1), so counting probability
//     grows as Theta(eps^2 f_i) and each estimator has O(eps^-2) variance;
//   * estimate = median over j of sum_t T3[i][j][t] / min(eps 2^t, 1);
//     report T1 candidates whose estimate clears (phi - eps/2) * sample.
//
// Space: O(eps^-1 log phi^-1 + phi^-1 log n + log log m) bits — optimal by
// the paper's Theorems 9 and 14.
#ifndef L1HH_CORE_BDW_OPTIMAL_H_
#define L1HH_CORE_BDW_OPTIMAL_H_

#include <cstdint>
#include <vector>

#include "core/common.h"
#include "count/compact_counter_array.h"
#include "hash/universal_hash.h"
#include "sampling/geometric_skip.h"
#include "summary/misra_gries.h"
#include "util/bit_stream.h"
#include "util/random.h"

namespace l1hh {

class BdwOptimal {
 public:
  struct Options {
    double epsilon = 0.01;
    double phi = 0.05;
    double delta = 0.1;  // the paper states Theorem 2 for constant delta
    uint64_t universe_size = uint64_t{1} << 32;
    uint64_t stream_length = 0;
    Constants constants = Constants::Practical();

    Status Validate() const {
      return ValidateHeavyHitterParams(epsilon, phi, delta, universe_size,
                                       stream_length);
    }
  };

  BdwOptimal(const Options& options, uint64_t seed);

  /// Processes one stream item.  O(R) on the (rare) sampled items, O(1)
  /// worst-case after the paper's spreading argument; O(1) always for
  /// non-sampled items.
  void Insert(ItemId item);

  std::vector<HeavyHitter> Report() const;

  /// The k candidates with the highest median estimates, unthresholded.
  std::vector<HeavyHitter> TopK(size_t k) const;

  /// Median accelerated-counter estimate for an arbitrary item, rescaled
  /// to full-stream units.
  double EstimateCount(ItemId item) const;

  uint64_t samples_taken() const { return sampled_; }
  uint64_t items_processed() const { return position_; }
  size_t repetitions() const { return hashes_.size(); }
  size_t rows() const { return rows_; }
  const Options& options() const { return opt_; }

  /// Paper-style accounting: T1 + T2 (content) + T3 (sparse: only epochs
  /// actually opened per cell are charged) + hash seeds + sampler.
  size_t SpaceBits() const;

  void Serialize(BitWriter& out) const;
  static BdwOptimal Deserialize(BitReader& in, uint64_t seed);

 private:
  size_t T2Cell(size_t row, size_t rep) const { return row * reps_ + rep; }
  size_t T3Cell(size_t row, size_t rep, int epoch) const {
    return (row * reps_ + rep) * static_cast<size_t>(max_epoch_ + 1) +
           static_cast<size_t>(epoch);
  }

  /// Epoch for a T2 value v: floor(2 log2(v / epoch_scale)), clamped to
  /// [-1, max_epoch_]; -1 means "pre-epoch" (no T3 counting yet).
  int EpochFor(uint64_t v) const;

  /// Per-repetition estimate of the sampled-stream frequency of item's
  /// hashed id.
  double EstimateRep(ItemId item, size_t rep) const;

  Options opt_;
  Rng rng_;
  GeometricSkipSampler sampler_;
  MisraGries t1_;
  std::vector<UniversalHash> hashes_;
  size_t rows_ = 0;
  size_t reps_ = 0;
  int eps_exp_ = 0;    // T2 subsampling probability = 2^{-eps_exp}
  int max_epoch_ = 0;
  double epoch_scale_ = 8.0;
  CompactCounterArray t2_;
  CompactCounterArray t3_;
  uint64_t position_ = 0;
  uint64_t sampled_ = 0;
};

}  // namespace l1hh

#endif  // L1HH_CORE_BDW_OPTIMAL_H_
