// Algorithm 2 of the paper (Theorem 2): the space-optimal
// (eps, phi)-List heavy hitters algorithm.
//
// Structure, mirroring the pseudocode:
//   * Bernoulli sample of ~l = O(eps^-2) items (geometric-skip, O(1) w.c.);
//   * T1: Misra–Gries over *true* ids with O(1/phi) counters — the
//     candidate set (every phi-heavy item of the sample survives);
//   * for each of R = O(log(1/phi)) repetitions j, a universal hash h_j
//     into O(1/eps) rows;
//   * T2[i][j]: eps-subsampled running count of hashed id i — the paper's
//     factor-4 frequency tracker, kept here for space accounting and as a
//     cross-check of the epoch schedule;
//   * T3[i][j][t]: the "accelerated counters": an arrival in epoch t is
//     counted with probability min(eps 2^t, 1), so counting probability
//     grows as Theta(eps^2 f_i) for phi-heavy items and each estimator has
//     O(eps^-2) variance;
//   * estimate = median over j of sum_t T3[i][j][t] / min(eps 2^t, 1);
//     report T1 candidates whose estimate clears (phi - eps/2) * sample.
//
// Epoch schedule (deviation from the pseudocode, documented in
// docs/ALGORITHMS.md): the paper advances each cell's epoch from its own
// T2 value, which makes epochs *instance-local* — two sketches built over
// disjoint substreams disagree about which probability an epoch-t count
// was taken at relative to the union stream, so their T3 tables cannot be
// reconciled.  Here the epoch is a pure function of the shared, seeded
// configuration and the number of samples taken:
//
//     epoch(s) = clamp(floor(2 log2(eps phi s / scale)), 0, max_epoch)
//
// — the epoch the paper's rule would give an exactly phi-heavy cell after
// s samples.  Every instance with the same Options walks the same
// schedule, epochs only ever increase, and two instances at different
// sample positions merge by fast-forwarding the behind one to the common
// epoch (FastForwardToEpoch) and summing T2/T3 cell-wise: each T3[t]
// count is divided by its *own* epoch's probability at estimate time, so
// the merged estimator stays unbiased regardless of which instance
// counted at which epoch.  See MergeFrom.
//
// Space: O(eps^-1 log phi^-1 + phi^-1 log n + log log m) bits — optimal by
// the paper's Theorems 9 and 14.
#ifndef L1HH_CORE_BDW_OPTIMAL_H_
#define L1HH_CORE_BDW_OPTIMAL_H_

#include <cstdint>
#include <vector>

#include "core/common.h"
#include "count/compact_counter_array.h"
#include "hash/universal_hash.h"
#include "sampling/geometric_skip.h"
#include "summary/misra_gries.h"
#include "util/bit_stream.h"
#include "util/random.h"

namespace l1hh {

class BdwOptimal {
 public:
  struct Options {
    double epsilon = 0.01;
    double phi = 0.05;
    double delta = 0.1;  // the paper states Theorem 2 for constant delta
    uint64_t universe_size = uint64_t{1} << 32;
    uint64_t stream_length = 0;
    Constants constants = Constants::Practical();

    Status Validate() const {
      return ValidateHeavyHitterParams(epsilon, phi, delta, universe_size,
                                       stream_length);
    }
  };

  BdwOptimal(const Options& options, uint64_t seed);

  /// Processes one stream item.  O(R) on the (rare) sampled items, O(1)
  /// worst-case after the paper's spreading argument; O(1) always for
  /// non-sampled items.
  void Insert(ItemId item);

  std::vector<HeavyHitter> Report() const;

  /// The k candidates with the highest median estimates, unthresholded.
  std::vector<HeavyHitter> TopK(size_t k) const;

  /// Median accelerated-counter estimate for an arbitrary item, rescaled
  /// to full-stream units.
  double EstimateCount(ItemId item) const;

  // ---- Distributed merge ----------------------------------------------

  /// True iff the two sketches follow the same epoch schedule and hash
  /// layout: equal (eps, phi, delta, n, m) options, equal derived shape
  /// (rows, repetitions, subsampling exponent, epoch scale/cap), and the
  /// same drawn hash functions (i.e. the same construction seed).  This
  /// is the precondition of MergeFrom.
  static bool Compatible(const BdwOptimal& a, const BdwOptimal& b);

  /// In-place merge with a Compatible sketch built over a disjoint
  /// substream (their combined length covered by options.stream_length).
  /// Reconciliation: both instances sit somewhere on the shared epoch
  /// schedule; this instance fast-forwards to the common (maximum)
  /// epoch, then T1 merges by the classic Misra–Gries merge and T2/T3
  /// combine cell-wise.  Summing T3 across instances is sound because
  /// the estimator divides each epoch-t count by that epoch's own
  /// probability — it never needs to know which instance counted it.
  /// Afterwards this sketch answers for the concatenation of both
  /// substreams.  Returns InvalidArgument (and changes nothing) when the
  /// sketches are not Compatible.
  Status MergeFrom(const BdwOptimal& other);

  /// Raises the epoch floor to `epoch` (clamped to [current floor,
  /// max_epoch]): future arrivals are counted at probability
  /// min(eps 2^epoch, 1) or better.  Never lowers the epoch.  Past T3
  /// counts are untouched — they remain divided by their own recorded
  /// epoch's probability, so estimates stay unbiased; fast-forwarding
  /// only trades a little space (higher counting rate) for variance no
  /// worse than before.  Called by MergeFrom; public for tests and for
  /// coordinators that know a global stream position.
  void FastForwardToEpoch(int epoch);

  /// The shared schedule: epoch after s samples, before any fast-forward
  /// floor.  Deterministic in (Options, s); identical across instances
  /// with equal Options.
  int EpochAtSample(uint64_t s) const;

  /// The epoch new arrivals are currently counted in:
  /// max(EpochAtSample(samples_taken()), fast-forward floor).
  int current_epoch() const { return current_epoch_; }

  uint64_t samples_taken() const { return sampled_; }
  uint64_t items_processed() const { return position_; }
  size_t repetitions() const { return hashes_.size(); }
  size_t rows() const { return rows_; }
  int max_epoch() const { return max_epoch_; }
  const Options& options() const { return opt_; }

  /// Paper-style accounting: T1 + T2 (content) + T3 (sparse: only epochs
  /// actually opened per cell are charged) + hash seeds + sampler.
  size_t SpaceBits() const;

  /// Message encoding (dense T2/T3 grids, one gamma code per cell): what
  /// the Section 4 communication games send, so the measured message
  /// size tracks the structure's cell count.
  void Serialize(BitWriter& out) const;
  static BdwOptimal Deserialize(BitReader& in, uint64_t seed);

  /// Snapshot encoding: identical except T2/T3 use the sparse gap-coded
  /// cell format (CompactCounterArray::SerializeSparse), collapsing the
  /// zero runs that dominate the dense grids — this is what SaveTo
  /// persists; see docs/SNAPSHOTS.md#measured-sizes.
  void SerializeSparse(BitWriter& out) const;
  static BdwOptimal DeserializeSparse(BitReader& in, uint64_t seed);

  /// Snapshot support: persists the live PRNG state so a restored sketch
  /// continues the exact random sequence of the saved one (same contract
  /// as BdwSimple::SerializeRngState).
  void SerializeRngState(BitWriter& out) const;
  void DeserializeRngState(BitReader& in);

 private:
  void SerializeImpl(BitWriter& out, bool sparse_grids) const;
  static BdwOptimal DeserializeImpl(BitReader& in, uint64_t seed,
                                    bool sparse_grids);

  size_t T2Cell(size_t row, size_t rep) const { return row * reps_ + rep; }
  size_t T3Cell(size_t row, size_t rep, int epoch) const {
    return (row * reps_ + rep) * static_cast<size_t>(max_epoch_ + 1) +
           static_cast<size_t>(epoch);
  }

  /// Per-repetition estimate of the sampled-stream frequency of item's
  /// hashed id.
  double EstimateRep(ItemId item, size_t rep) const;

  Options opt_;
  Rng rng_;
  GeometricSkipSampler sampler_;
  MisraGries t1_;
  std::vector<UniversalHash> hashes_;
  size_t rows_ = 0;
  size_t reps_ = 0;
  int eps_exp_ = 0;    // T2 subsampling probability = 2^{-eps_exp}
  int max_epoch_ = 0;
  double epoch_scale_ = 8.0;
  CompactCounterArray t2_;
  CompactCounterArray t3_;
  uint64_t position_ = 0;
  uint64_t sampled_ = 0;
  // Epoch state: current_epoch_ = max(EpochAtSample(sampled_),
  // epoch_floor_); the floor is raised by FastForwardToEpoch so a merge
  // chain never lowers an instance's counting probability (keeps the
  // schedule monotone and merges associative).
  int current_epoch_ = 0;
  int epoch_floor_ = 0;
};

}  // namespace l1hh

#endif  // L1HH_CORE_BDW_OPTIMAL_H_
