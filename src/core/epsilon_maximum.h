// Theorem 3: the eps-Maximum problem — estimate the maximum frequency (and
// return an item achieving it) within additive eps*m.
//
// This is Algorithm 1 with one change (paper, proof of Theorem 3):
// "instead of maintaining the table T2, we just store the actual id of the
// item with maximum frequency in the sampled items."  Resolves Question 3
// of the IITK 2006 workshop for l1 insertion streams:
// O(eps^-1 (log eps^-1 + log log delta^-1) + log n + log log m) bits.
#ifndef L1HH_CORE_EPSILON_MAXIMUM_H_
#define L1HH_CORE_EPSILON_MAXIMUM_H_

#include <cstdint>

#include "core/common.h"
#include "sampling/geometric_skip.h"
#include "summary/hashed_misra_gries.h"
#include "util/bit_stream.h"
#include "util/random.h"

namespace l1hh {

class EpsilonMaximum {
 public:
  struct Options {
    double epsilon = 0.01;
    double delta = 0.1;
    uint64_t universe_size = uint64_t{1} << 32;
    uint64_t stream_length = 0;
    Constants constants = Constants::Practical();

    Status Validate() const {
      return ValidateHeavyHitterParams(epsilon, /*phi=*/1.0, delta,
                                       universe_size, stream_length);
    }
  };

  EpsilonMaximum(const Options& options, uint64_t seed);

  void Insert(ItemId item);

  /// The tracked approximate-maximum item and its rescaled count estimate.
  HeavyHitter Report() const;

  /// Estimated maximum frequency (count units over the full stream).
  double EstimateMaxCount() const { return Report().estimated_count; }

  uint64_t samples_taken() const { return sampled_; }
  uint64_t items_processed() const { return position_; }
  const Options& options() const { return opt_; }

  size_t SpaceBits() const;

  void Serialize(BitWriter& out) const;
  static EpsilonMaximum Deserialize(BitReader& in, uint64_t seed);

 private:
  EpsilonMaximum(const Options& options, uint64_t seed,
                 HashedMisraGries table);

  Options opt_;
  Rng rng_;
  GeometricSkipSampler sampler_;
  HashedMisraGries table_;  // with a zero-length T2; max id kept separately
  ItemId max_item_ = 0;
  bool has_max_ = false;
  uint64_t position_ = 0;
  uint64_t sampled_ = 0;
};

}  // namespace l1hh

#endif  // L1HH_CORE_EPSILON_MAXIMUM_H_
