#include "core/epsilon_minimum.h"

#include <algorithm>
#include <cmath>

#include "util/bit_util.h"

namespace l1hh {

EpsilonMinimum::EpsilonMinimum(const Options& options, uint64_t seed)
    : opt_(options), rng_(seed) {
  const double eps = opt_.epsilon;
  const double delta = opt_.delta;
  const double m = static_cast<double>(std::max<uint64_t>(
      opt_.stream_length, 1));

  const double universe_cutoff = 1.0 / ((1.0 - delta) * eps);
  if (static_cast<double>(opt_.universe_size) > universe_cutoff) {
    large_universe_ = true;
    const uint64_t prefix = std::max<uint64_t>(
        1, static_cast<uint64_t>(universe_cutoff));
    random_item_ = rng_.UniformU64(std::min(prefix, opt_.universe_size));
    return;
  }

  const uint64_t n = opt_.universe_size;
  const double ln_eps_inv = std::max(1.0, std::log(1.0 / eps));
  const Constants& c = opt_.constants;

  const double l1 = c.min_s1_factor * std::log(6.0 / (eps * delta)) / eps;
  const double l2 =
      c.min_s2_factor * std::log(6.0 / delta) / (eps * eps);
  const double lg = std::log(6.0 / (eps * delta));
  const double l3 = c.min_s3_factor * lg * lg * lg / eps;

  const double p1 = std::min(1.0, 6.0 * l1 / m);
  p2_ = std::min(1.0, 6.0 * l2 / m);
  p3_ = std::min(1.0, 6.0 * l3 / m);
  s1_sampler_ = GeometricSkipSampler::FromProbability(p1, rng_);
  s2_sampler_ = GeometricSkipSampler::FromProbability(p2_, rng_);
  s3_sampler_ = GeometricSkipSampler::FromProbability(p3_, rng_);
  // Footnote-3 rounding: remember the probabilities actually used.
  p2_ = s2_sampler_.probability();
  p3_ = s3_sampler_.probability();

  distinct_threshold_ = std::max<uint64_t>(
      1, static_cast<uint64_t>(
             1.0 / (c.min_distinct_factor * eps * ln_eps_inv)));
  // Counters of S3 only matter below ~p3 * (eps m ln(1/eps)); cap at 4x.
  const double cap = 4.0 * p3_ * m * eps * ln_eps_inv;
  cap_ = std::max<uint64_t>(16, static_cast<uint64_t>(std::ceil(cap)));

  seen_.assign(n, false);
  s1_bits_.assign(n, false);
}

void EpsilonMinimum::Insert(ItemId item) {
  ++position_;
  if (large_universe_) return;
  if (item >= opt_.universe_size) return;  // out-of-universe items ignored

  if (!seen_[item]) {
    seen_[item] = true;
    ++distinct_;
    if (s2_active_ && distinct_ > distinct_threshold_) {
      s2_active_ = false;
      s2_.clear();  // "we stop" — reclaim the space (paper, 3.3 overview)
    }
  }
  if (s1_sampler_.Offer(rng_)) {
    s1_bits_[item] = true;
  }
  if (s2_active_ && s2_sampler_.Offer(rng_)) {
    ++s2_[item];
  }
  if (s3_sampler_.Offer(rng_)) {
    uint64_t& c3 = s3_[item];
    if (c3 < cap_) ++c3;
  }
}

EpsilonMinimum::Result EpsilonMinimum::Report() const {
  Result r;
  if (large_universe_) {
    r.item = random_item_;
    r.branch = ReportBranch::kLargeUniverse;
    r.estimated_count = 0;
    return r;
  }
  const uint64_t n = opt_.universe_size;

  // Branch 2: an item that never entered S1 has frequency < eps*m whp.
  for (uint64_t x = 0; x < n; ++x) {
    if (!s1_bits_[x]) {
      r.item = x;
      r.branch = ReportBranch::kUnsampledItem;
      r.estimated_count = 0;
      return r;
    }
  }

  // Branch 3: few distinct items — S2's exact sampled counts decide.
  if (s2_active_) {
    ItemId best = 0;
    uint64_t best_count = UINT64_MAX;
    for (uint64_t x = 0; x < n; ++x) {
      const auto it = s2_.find(x);
      const uint64_t cnt = it == s2_.end() ? 0 : it->second;
      if (cnt < best_count) {
        best_count = cnt;
        best = x;
      }
    }
    r.item = best;
    r.branch = ReportBranch::kFewDistinct;
    r.estimated_count = static_cast<double>(best_count) / p2_;
    return r;
  }

  // Branch 4: truncated counters.
  ItemId best = 0;
  uint64_t best_count = UINT64_MAX;
  for (uint64_t x = 0; x < n; ++x) {
    const auto it = s3_.find(x);
    const uint64_t cnt = it == s3_.end() ? 0 : it->second;
    if (cnt < best_count) {
      best_count = cnt;
      best = x;
    }
  }
  r.item = best;
  r.branch = ReportBranch::kTruncatedCounters;
  r.estimated_count = static_cast<double>(best_count) / p3_;
  return r;
}

size_t EpsilonMinimum::SpaceBits() const {
  if (large_universe_) {
    return static_cast<size_t>(UniverseBits(opt_.universe_size));
  }
  const auto id_bits = static_cast<size_t>(UniverseBits(opt_.universe_size));
  size_t bits = seen_.size() + s1_bits_.size() + BitWidth(distinct_);
  bits += static_cast<size_t>(s1_sampler_.SpaceBits()) +
          static_cast<size_t>(s2_sampler_.SpaceBits()) +
          static_cast<size_t>(s3_sampler_.SpaceBits());
  for (const auto& [id, cnt] : s2_) {
    (void)id;
    bits += id_bits + static_cast<size_t>(CounterBits(cnt));
  }
  // S3 counters are truncated, so each costs only log2(cap) bits.
  bits += s3_.size() * (id_bits + static_cast<size_t>(BitWidth(cap_)));
  return bits;
}

void EpsilonMinimum::Serialize(BitWriter& out) const {
  out.WriteDouble(opt_.epsilon);
  out.WriteDouble(opt_.delta);
  out.WriteU64(opt_.universe_size);
  out.WriteU64(opt_.stream_length);
  out.WriteCounter(position_);
  out.WriteBool(large_universe_);
  if (large_universe_) {
    out.WriteU64(random_item_);
    return;
  }
  s1_sampler_.Serialize(out);
  s2_sampler_.Serialize(out);
  s3_sampler_.Serialize(out);
  out.WriteCounter(distinct_);
  out.WriteBool(s2_active_);
  for (uint64_t x = 0; x < opt_.universe_size; ++x) {
    out.WriteBool(seen_[x]);
    out.WriteBool(s1_bits_[x]);
  }
  const int id_bits = UniverseBits(opt_.universe_size);
  out.WriteGamma(s2_.size() + 1);
  for (const auto& [id, cnt] : s2_) {
    out.WriteBits(id, id_bits);
    out.WriteCounter(cnt);
  }
  out.WriteGamma(s3_.size() + 1);
  for (const auto& [id, cnt] : s3_) {
    out.WriteBits(id, id_bits);
    out.WriteCounter(cnt);
  }
}

EpsilonMinimum EpsilonMinimum::Deserialize(BitReader& in, uint64_t seed) {
  Options opt;
  opt.epsilon = in.ReadDouble();
  opt.delta = in.ReadDouble();
  opt.universe_size = in.ReadU64();
  opt.stream_length = in.ReadU64();
  // Corruption guards.  Reject non-finite parameters, and — for the
  // small-universe mode only, whose message carries 2 bits per universe
  // item and whose constructor allocates universe-sized vectors — reject a
  // universe larger than the remaining message could describe.  (A genuine
  // large-universe message stores just one id, so it is exempt.)
  bool hostile = !(opt.epsilon > 0.0 && opt.epsilon < 1.0) ||
                 !(opt.delta > 0.0 && opt.delta < 1.0);
  if (!hostile) {
    const double cutoff = 1.0 / ((1.0 - opt.delta) * opt.epsilon);
    if (static_cast<double>(opt.universe_size) <= cutoff &&
        opt.universe_size > in.remaining_bits() + 64) {
      hostile = true;
    }
  }
  if (hostile) {
    opt.epsilon = 0.5;
    opt.delta = 0.5;
    opt.universe_size = 1;
    opt.stream_length = 1;
    EpsilonMinimum bad(opt, seed);
    return bad;
  }
  EpsilonMinimum out(opt, seed);
  out.position_ = in.ReadCounter();
  out.large_universe_ = in.ReadBool();
  if (out.large_universe_) {
    out.random_item_ = in.ReadU64();
    return out;
  }
  // The wire flag is authoritative: if a corrupted header made the
  // constructor pick large-universe mode, the small-universe vectors were
  // never allocated — create them, but only if the payload could plausibly
  // describe that universe (2 bits per item).
  if (opt.universe_size > in.remaining_bits() / 2 + 64) {
    Options tiny;
    tiny.epsilon = 0.5;
    tiny.delta = 0.5;
    tiny.universe_size = 1;
    tiny.stream_length = 1;
    return EpsilonMinimum(tiny, seed);
  }
  out.large_universe_ = false;
  out.seen_.assign(opt.universe_size, false);
  out.s1_bits_.assign(opt.universe_size, false);
  out.s1_sampler_.Deserialize(in);
  out.s2_sampler_.Deserialize(in);
  out.s3_sampler_.Deserialize(in);
  out.distinct_ = in.ReadCounter();
  out.s2_active_ = in.ReadBool();
  for (uint64_t x = 0; x < opt.universe_size; ++x) {
    out.seen_[x] = in.ReadBool();
    out.s1_bits_[x] = in.ReadBool();
  }
  const int id_bits = UniverseBits(opt.universe_size);
  const size_t n2 = in.CheckedCount(in.ReadGamma() - 1);
  out.s2_.clear();
  for (size_t i = 0; i < n2; ++i) {
    const uint64_t id = in.ReadBits(id_bits);
    out.s2_[id] = in.ReadCounter();
  }
  const size_t n3 = in.CheckedCount(in.ReadGamma() - 1);
  out.s3_.clear();
  for (size_t i = 0; i < n3; ++i) {
    const uint64_t id = in.ReadBits(id_bits);
    out.s3_[id] = in.ReadCounter();
  }
  return out;
}

}  // namespace l1hh
