// Algorithm 1 of the paper (Theorem 1): the "simpler, near-optimal"
// (eps, phi)-List heavy hitters algorithm.
//
//   1. Bernoulli-sample ~l = O(log(1/delta) / eps^2) stream items
//      (geometric-skip sampling => O(1) worst-case update);
//   2. feed the *hashed* ids (universal hash into a poly(1/eps) range,
//      collision-free on the sample by Lemma 2) into a Misra–Gries table
//      T1 of O(1/eps) counters;
//   3. maintain the true ids of the top O(1/phi) keys in a side table T2.
//
// Space: O(eps^-1 (log eps^-1 + log log delta^-1) + phi^-1 log n
//          + log log m) bits.
// Report: items of T2 whose rescaled count clears (phi - eps/2) m, each
// with a count estimate within eps*m of truth w.p. 1 - delta.
#ifndef L1HH_CORE_BDW_SIMPLE_H_
#define L1HH_CORE_BDW_SIMPLE_H_

#include <cstdint>
#include <vector>

#include "core/common.h"
#include "sampling/geometric_skip.h"
#include "summary/hashed_misra_gries.h"
#include "util/bit_stream.h"
#include "util/random.h"

namespace l1hh {

class BdwSimple {
 public:
  struct Options {
    double epsilon = 0.01;
    double phi = 0.05;
    double delta = 0.1;
    uint64_t universe_size = uint64_t{1} << 32;
    uint64_t stream_length = 0;  // must be set (Theorem 1 assumes known m)
    Constants constants = Constants::Practical();

    Status Validate() const {
      return ValidateHeavyHitterParams(epsilon, phi, delta, universe_size,
                                       stream_length);
    }
  };

  BdwSimple(const Options& options, uint64_t seed);

  /// Processes one stream item.  O(1) worst case.
  void Insert(ItemId item);

  /// Items with estimated frequency >= (phi - eps/2); satisfies the
  /// Definition 1 contract w.p. >= 1 - delta.
  std::vector<HeavyHitter> Report() const;

  /// The paper's "top-k / most popular items" framing: the k tracked items
  /// with the highest estimates, unthresholded (k <= T2 capacity).
  std::vector<HeavyHitter> TopK(size_t k) const;

  /// Rescaled count estimate for an arbitrary item (via its hashed key).
  double EstimateCount(ItemId item) const;

  /// Distributed merge of two sketches built with the SAME options and
  /// seed (so they share the hash function and sampling rate) over
  /// disjoint substreams whose combined length is options.stream_length.
  /// The union of two Bernoulli(p) samples of disjoint streams is a
  /// Bernoulli(p) sample of the concatenation, so the merged sketch obeys
  /// the same (eps, phi) contract as a single-node run.
  static BdwSimple Merge(const BdwSimple& a, const BdwSimple& b);

  uint64_t samples_taken() const { return sampled_; }
  uint64_t items_processed() const { return position_; }
  const Options& options() const { return opt_; }

  /// Paper-accounting space: T1 + T2 + hash seed + sampler + the sampled
  /// counter (log of sample size bits).
  size_t SpaceBits() const;

  void Serialize(BitWriter& out) const;
  static BdwSimple Deserialize(BitReader& in, uint64_t seed);

  /// Snapshot support: persists the live PRNG state so a restored sketch
  /// continues the exact random sequence of the saved one.  Appended after
  /// Serialize() by the snapshot payloads (src/io/); the communication
  /// games keep sending Serialize() alone — Bob never inserts with Alice's
  /// generator, and the message stays at its measured bit size.
  void SerializeRngState(BitWriter& out) const;
  void DeserializeRngState(BitReader& in);

 private:
  BdwSimple(const Options& options, uint64_t seed, HashedMisraGries table);

  static HashedMisraGries MakeTable(const Options& options, uint64_t seed);

  Options opt_;
  Rng rng_;
  GeometricSkipSampler sampler_;
  HashedMisraGries table_;
  uint64_t position_ = 0;
  uint64_t sampled_ = 0;
};

}  // namespace l1hh

#endif  // L1HH_CORE_BDW_SIMPLE_H_
