#include "core/borda.h"

#include <algorithm>
#include <cmath>

#include "util/bit_util.h"

namespace l1hh {

StreamingBorda::StreamingBorda(const Options& opt, uint64_t seed)
    : opt_(opt), rng_(seed), acc_(opt.num_candidates, 0) {
  const double l = opt_.constants.borda_sample_factor *
                   std::log(6.0 * opt_.num_candidates / opt_.delta) /
                   (opt_.epsilon * opt_.epsilon);
  const double p = std::min(
      1.0, l / static_cast<double>(std::max<uint64_t>(opt_.stream_length, 1)));
  sampler_ = GeometricSkipSampler::FromProbability(p, rng_);
}

void StreamingBorda::InsertVote(const Ranking& vote) {
  ++position_;
  if (!sampler_.Offer(rng_)) return;
  ++sampled_;
  const uint32_t n = opt_.num_candidates;
  for (uint32_t p = 0; p < n && p < vote.size(); ++p) {
    acc_[vote.At(p)] += n - 1 - p;
  }
}

std::vector<double> StreamingBorda::Scores() const {
  std::vector<double> out(opt_.num_candidates, 0.0);
  if (sampled_ == 0) return out;
  const double scale = static_cast<double>(opt_.stream_length) /
                       static_cast<double>(sampled_);
  for (uint32_t i = 0; i < opt_.num_candidates; ++i) {
    out[i] = static_cast<double>(acc_[i]) * scale;
  }
  return out;
}

std::vector<HeavyHitter> StreamingBorda::ListAbove() const {
  const std::vector<double> scores = Scores();
  const double mn = static_cast<double>(opt_.stream_length) *
                    static_cast<double>(opt_.num_candidates);
  const double threshold = (opt_.phi - opt_.epsilon / 2.0) * mn;
  std::vector<HeavyHitter> out;
  for (uint32_t i = 0; i < scores.size(); ++i) {
    if (scores[i] >= threshold) {
      out.push_back({i, scores[i], scores[i] / mn});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const HeavyHitter& a, const HeavyHitter& b) {
              return a.estimated_count > b.estimated_count;
            });
  return out;
}

HeavyHitter StreamingBorda::MaxScore() const {
  const std::vector<double> scores = Scores();
  uint32_t best = 0;
  for (uint32_t i = 1; i < scores.size(); ++i) {
    if (scores[i] > scores[best]) best = i;
  }
  const double mn = static_cast<double>(opt_.stream_length) *
                    static_cast<double>(opt_.num_candidates);
  return {best, scores.empty() ? 0 : scores[best],
          scores.empty() ? 0 : scores[best] / mn};
}

StreamingBorda StreamingBorda::Merge(const StreamingBorda& a,
                                     const StreamingBorda& b) {
  StreamingBorda merged = a;
  if (b.acc_.size() != merged.acc_.size()) return merged;
  for (size_t i = 0; i < merged.acc_.size(); ++i) {
    merged.acc_[i] += b.acc_[i];
  }
  merged.position_ += b.position_;
  merged.sampled_ += b.sampled_;
  return merged;
}

size_t StreamingBorda::SpaceBits() const {
  size_t bits = BitWidth(sampled_) + sampler_.SpaceBits();
  for (const uint64_t a : acc_) {
    bits += static_cast<size_t>(CounterBits(a));
  }
  return bits;
}

void StreamingBorda::Serialize(BitWriter& out) const {
  out.WriteDouble(opt_.epsilon);
  out.WriteDouble(opt_.phi);
  out.WriteDouble(opt_.delta);
  out.WriteU32(opt_.num_candidates);
  out.WriteU64(opt_.stream_length);
  out.WriteCounter(position_);
  out.WriteCounter(sampled_);
  sampler_.Serialize(out);
  for (const uint64_t a : acc_) out.WriteCounter(a);
}

StreamingBorda StreamingBorda::Deserialize(BitReader& in, uint64_t seed) {
  Options opt;
  opt.epsilon = in.ReadDouble();
  opt.phi = in.ReadDouble();
  opt.delta = in.ReadDouble();
  opt.num_candidates = in.ReadU32();
  opt.stream_length = in.ReadU64();
  // phi = 0 is a legal "no threshold" setting here; sanitize the rest.
  if (!(opt.epsilon > 1e-12 && opt.epsilon < 1.0)) opt.epsilon = 0.25;
  if (!(opt.phi >= 0.0 && opt.phi <= 1.0)) opt.phi = 0.0;
  if (!(opt.delta > 1e-12 && opt.delta < 1.0)) opt.delta = 0.5;
  if (opt.stream_length == 0) opt.stream_length = 1;
  // Each candidate owns at least one counter bit in the payload.
  opt.num_candidates = static_cast<uint32_t>(std::min<uint64_t>(
      opt.num_candidates, in.remaining_bits() + 64));
  StreamingBorda out(opt, seed);
  out.position_ = in.ReadCounter();
  out.sampled_ = in.ReadCounter();
  out.sampler_.Deserialize(in);
  for (auto& a : out.acc_) a = in.ReadCounter();
  return out;
}

}  // namespace l1hh
