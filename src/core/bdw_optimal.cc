#include "core/bdw_optimal.h"

#include <algorithm>
#include <cmath>

#include "util/bit_util.h"

namespace l1hh {

namespace {

uint64_t ExpectedSamples(const BdwOptimal::Options& opt) {
  const double l =
      opt.constants.opt_sample_factor / (opt.epsilon * opt.epsilon);
  return std::max<uint64_t>(64, static_cast<uint64_t>(std::ceil(l)));
}

}  // namespace

BdwOptimal::BdwOptimal(const Options& opt, uint64_t seed)
    : opt_(opt),
      rng_(seed),
      t1_(static_cast<size_t>(std::ceil(opt.constants.opt_t1_factor /
                                        opt.phi)),
          UniverseBits(opt.universe_size)),
      epoch_scale_(opt.constants.opt_epoch_scale) {
  const uint64_t l = ExpectedSamples(opt_);
  const double p = std::min(
      1.0, static_cast<double>(l) /
               static_cast<double>(std::max<uint64_t>(opt_.stream_length, 1)));
  sampler_ = GeometricSkipSampler::FromProbability(p, rng_);

  rows_ = static_cast<size_t>(
      std::ceil(opt_.constants.opt_rows_factor / opt_.epsilon));
  rows_ = std::max<size_t>(rows_, 4);

  size_t reps = static_cast<size_t>(std::ceil(
      opt_.constants.opt_rep_factor * std::log2(12.0 / opt_.phi)));
  reps = std::max<size_t>(reps,
                          static_cast<size_t>(opt_.constants.opt_min_reps));
  reps_ = reps | 1;  // odd, so the median is well defined

  eps_exp_ = ProbabilityToPow2Exponent(opt_.epsilon);

  // Highest epoch the schedule can reach: the sample stays within ~10 l
  // whp (and within m when m < l), so cap the schedule value
  // eps * phi * s there.
  const double v_max = std::max(
      4.0 * epoch_scale_,
      10.0 * opt_.epsilon * opt_.phi * static_cast<double>(l));
  max_epoch_ = std::max(
      1, static_cast<int>(std::ceil(2.0 * std::log2(v_max / epoch_scale_))));

  Rng hash_rng(Mix64(seed) ^ 0x5bd1e9955bd1e995ULL);
  hashes_.reserve(reps_);
  for (size_t j = 0; j < reps_; ++j) {
    hashes_.push_back(UniversalHash::Draw(hash_rng, rows_));
  }
  t2_.Reset(rows_ * reps_);
  t3_.Reset(rows_ * reps_ * static_cast<size_t>(max_epoch_ + 1));
}

int BdwOptimal::EpochAtSample(uint64_t s) const {
  // epoch(s) = floor(2 log2(eps phi s / scale)) — the epoch the paper's
  // per-cell rule would give an exactly phi-heavy cell after s samples —
  // clamped to [0, max_epoch_].  Epoch 0 opens immediately (its counting
  // probability, ~eps, is T2's subsampling rate), so unlike the per-cell
  // scheme there is no invisible pre-epoch prefix to bias-correct.
  const double v =
      opt_.epsilon * opt_.phi * static_cast<double>(s);
  if (v < epoch_scale_) return 0;  // below the scale the formula is negative
  const int t = static_cast<int>(std::floor(2.0 * std::log2(v / epoch_scale_)));
  return std::min(t, max_epoch_);
}

void BdwOptimal::FastForwardToEpoch(int epoch) {
  epoch_floor_ = std::min(std::max(epoch, epoch_floor_), max_epoch_);
  if (current_epoch_ < epoch_floor_) current_epoch_ = epoch_floor_;
}

void BdwOptimal::Insert(ItemId item) {
  ++position_;
  if (!sampler_.Offer(rng_)) return;
  ++sampled_;
  if (current_epoch_ < max_epoch_) {
    const int scheduled = EpochAtSample(sampled_);
    if (scheduled > current_epoch_) current_epoch_ = scheduled;
  }
  t1_.Insert(item);
  const int t = current_epoch_;
  // Count with probability min(eps * 2^t, 1) = 2^{-(eps_exp - t)}.
  const int k = std::max(eps_exp_ - t, 0);
  for (size_t j = 0; j < reps_; ++j) {
    const size_t i = static_cast<size_t>(hashes_[j](item));
    if (rng_.AllZeroBits(eps_exp_)) {
      t2_.Increment(T2Cell(i, j));
    }
    if (rng_.AllZeroBits(k)) {
      t3_.Increment(T3Cell(i, j, t));
    }
  }
}

bool BdwOptimal::Compatible(const BdwOptimal& a, const BdwOptimal& b) {
  return a.opt_.epsilon == b.opt_.epsilon && a.opt_.phi == b.opt_.phi &&
         a.opt_.delta == b.opt_.delta &&
         a.opt_.universe_size == b.opt_.universe_size &&
         a.opt_.stream_length == b.opt_.stream_length &&
         a.rows_ == b.rows_ && a.reps_ == b.reps_ &&
         a.t1_.k() == b.t1_.k() &&  // MG merge truncates to the left k
         a.eps_exp_ == b.eps_exp_ && a.max_epoch_ == b.max_epoch_ &&
         a.epoch_scale_ == b.epoch_scale_ &&
         a.sampler_.exponent() == b.sampler_.exponent() &&
         a.hashes_ == b.hashes_;  // same seed <=> same drawn functions
}

Status BdwOptimal::MergeFrom(const BdwOptimal& other) {
  if (!Compatible(*this, other)) {
    return Status::InvalidArgument(
        "BdwOptimal::MergeFrom requires sketches built with the same "
        "options and seed");
  }
  // Reconcile epochs BEFORE combining: both instances sit on the shared
  // schedule, so the common epoch is simply the maximum; fast-forward the
  // behind side (us).  `other.current_epoch_` already dominates
  // `other.epoch_floor_`, so floors propagate through merge chains.
  FastForwardToEpoch(other.current_epoch_);
  // T1: classic Misra–Gries merge — every item that is phi-heavy in the
  // combined sample survives the (k+1)-st-largest subtraction.
  t1_ = MisraGries::Merge(t1_, other.t1_);
  // T2/T3: cell-wise sums.  Sound for any position-disjoint split: T2 is
  // a plain subsampled count, and each T3[t] count is rescaled by its own
  // epoch's probability at estimate time.
  t2_.AddFrom(other.t2_);
  t3_.AddFrom(other.t3_);
  position_ += other.position_;
  sampled_ += other.sampled_;
  // The combined sample position may put the schedule past the common
  // epoch; catch up so post-merge inserts count at the scheduled rate.
  const int scheduled = EpochAtSample(sampled_);
  if (scheduled > current_epoch_) current_epoch_ = scheduled;
  return Status::Ok();
}

double BdwOptimal::EstimateRep(ItemId item, size_t rep) const {
  const size_t i = static_cast<size_t>(hashes_[rep](item));
  double estimate = 0;
  for (int t = 0; t <= max_epoch_; ++t) {
    const uint64_t c = t3_.Get(T3Cell(i, rep, t));
    if (c == 0) continue;
    const int k = std::max(eps_exp_ - t, 0);
    estimate += static_cast<double>(c) * std::ldexp(1.0, k);  // c * 2^k
  }
  return estimate;
}

std::vector<HeavyHitter> BdwOptimal::Report() const {
  std::vector<HeavyHitter> out;
  if (sampled_ == 0) return out;
  const double scale = static_cast<double>(opt_.stream_length) /
                       static_cast<double>(sampled_);
  const double threshold = (opt_.phi - opt_.epsilon / 2.0) *
                           static_cast<double>(sampled_);
  std::vector<double> reps(reps_);
  for (const auto& entry : t1_.Entries()) {
    for (size_t j = 0; j < reps_; ++j) {
      reps[j] = EstimateRep(entry.item, j);
    }
    std::nth_element(reps.begin(), reps.begin() + reps_ / 2, reps.end());
    const double med = reps[reps_ / 2];
    if (med >= threshold) {
      HeavyHitter hh;
      hh.item = entry.item;
      hh.estimated_count = med * scale;
      hh.estimated_fraction =
          hh.estimated_count / static_cast<double>(opt_.stream_length);
      out.push_back(hh);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const HeavyHitter& a, const HeavyHitter& b) {
              return a.estimated_count > b.estimated_count;
            });
  return out;
}

std::vector<HeavyHitter> BdwOptimal::TopK(size_t k) const {
  std::vector<HeavyHitter> out;
  if (sampled_ == 0) return out;
  const double scale = static_cast<double>(opt_.stream_length) /
                       static_cast<double>(sampled_);
  std::vector<double> reps(reps_);
  for (const auto& entry : t1_.Entries()) {
    for (size_t j = 0; j < reps_; ++j) {
      reps[j] = EstimateRep(entry.item, j);
    }
    std::nth_element(reps.begin(), reps.begin() + reps_ / 2, reps.end());
    HeavyHitter hh;
    hh.item = entry.item;
    hh.estimated_count = reps[reps_ / 2] * scale;
    hh.estimated_fraction =
        hh.estimated_count / static_cast<double>(opt_.stream_length);
    out.push_back(hh);
  }
  std::sort(out.begin(), out.end(),
            [](const HeavyHitter& a, const HeavyHitter& b) {
              return a.estimated_count > b.estimated_count;
            });
  if (out.size() > k) out.resize(k);
  return out;
}

double BdwOptimal::EstimateCount(ItemId item) const {
  if (sampled_ == 0) return 0;
  std::vector<double> reps(reps_);
  for (size_t j = 0; j < reps_; ++j) reps[j] = EstimateRep(item, j);
  std::nth_element(reps.begin(), reps.begin() + reps_ / 2, reps.end());
  const double scale = static_cast<double>(opt_.stream_length) /
                       static_cast<double>(sampled_);
  return reps[reps_ / 2] * scale;
}

size_t BdwOptimal::SpaceBits() const {
  size_t bits = t1_.SpaceBits();
  bits += t2_.SpaceBits();
  // Sparse T3 accounting (the paper's Claim 3): a cell's epoch list only
  // exists up to the highest epoch it ever opened.
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = 0; j < reps_; ++j) {
      int top = -1;
      for (int t = max_epoch_; t >= 0; --t) {
        if (t3_.Get(T3Cell(i, j, t)) != 0) {
          top = t;
          break;
        }
      }
      for (int t = 0; t <= top; ++t) {
        const uint64_t c = t3_.Get(T3Cell(i, j, t));
        bits += c == 0 ? 1 : static_cast<size_t>(CounterBits(c));
      }
    }
  }
  for (const auto& h : hashes_) bits += static_cast<size_t>(h.SeedBits());
  bits += static_cast<size_t>(sampler_.SpaceBits());
  bits += BitWidth(sampled_);
  return bits;
}

void BdwOptimal::Serialize(BitWriter& out) const {
  SerializeImpl(out, /*sparse_grids=*/false);
}

void BdwOptimal::SerializeSparse(BitWriter& out) const {
  SerializeImpl(out, /*sparse_grids=*/true);
}

void BdwOptimal::SerializeImpl(BitWriter& out, bool sparse_grids) const {
  out.WriteDouble(opt_.epsilon);
  out.WriteDouble(opt_.phi);
  out.WriteDouble(opt_.delta);
  out.WriteU64(opt_.universe_size);
  out.WriteU64(opt_.stream_length);
  out.WriteDouble(opt_.constants.opt_sample_factor);
  out.WriteDouble(opt_.constants.opt_t1_factor);
  out.WriteDouble(opt_.constants.opt_rep_factor);
  out.WriteBits(static_cast<uint64_t>(opt_.constants.opt_min_reps), 16);
  out.WriteDouble(opt_.constants.opt_rows_factor);
  out.WriteDouble(opt_.constants.opt_epoch_scale);
  out.WriteCounter(position_);
  out.WriteCounter(sampled_);
  out.WriteCounter(static_cast<uint64_t>(epoch_floor_));
  sampler_.Serialize(out);
  for (const auto& h : hashes_) h.Serialize(out);
  t1_.Serialize(out);
  if (sparse_grids) {
    t2_.SerializeSparse(out);
    t3_.SerializeSparse(out);
  } else {
    t2_.Serialize(out);
    t3_.Serialize(out);
  }
}

BdwOptimal BdwOptimal::Deserialize(BitReader& in, uint64_t seed) {
  return DeserializeImpl(in, seed, /*sparse_grids=*/false);
}

BdwOptimal BdwOptimal::DeserializeSparse(BitReader& in, uint64_t seed) {
  return DeserializeImpl(in, seed, /*sparse_grids=*/true);
}

BdwOptimal BdwOptimal::DeserializeImpl(BitReader& in, uint64_t seed,
                                       bool sparse_grids) {
  Options opt;
  opt.epsilon = in.ReadDouble();
  opt.phi = in.ReadDouble();
  opt.delta = in.ReadDouble();
  opt.universe_size = in.ReadU64();
  opt.stream_length = in.ReadU64();
  opt.constants.opt_sample_factor = in.ReadDouble();
  opt.constants.opt_t1_factor = in.ReadDouble();
  opt.constants.opt_rep_factor = in.ReadDouble();
  opt.constants.opt_min_reps = static_cast<int>(in.ReadBits(16));
  opt.constants.opt_rows_factor = in.ReadDouble();
  opt.constants.opt_epoch_scale = in.ReadDouble();
  SanitizeWireParams(opt.epsilon, opt.phi, opt.delta, opt.universe_size,
                     opt.stream_length);
  // The constants also size allocations; clamp them to sane ranges.
  const Constants defaults;
  auto clamp = [](double& v, double lo, double hi, double fallback) {
    if (!(v >= lo && v <= hi)) v = fallback;
  };
  clamp(opt.constants.opt_sample_factor, 1.0, 1e7,
        defaults.opt_sample_factor);
  clamp(opt.constants.opt_t1_factor, 0.5, 100.0, defaults.opt_t1_factor);
  clamp(opt.constants.opt_rep_factor, 0.5, 1e3, defaults.opt_rep_factor);
  if (opt.constants.opt_min_reps < 1 || opt.constants.opt_min_reps > 4096) {
    opt.constants.opt_min_reps = defaults.opt_min_reps;
  }
  clamp(opt.constants.opt_rows_factor, 1.0, 1e4,
        defaults.opt_rows_factor);
  clamp(opt.constants.opt_epoch_scale, 2.0, 1e6,
        defaults.opt_epoch_scale);
  BdwOptimal out(opt, seed);
  out.position_ = in.ReadCounter();
  out.sampled_ = in.ReadCounter();
  out.epoch_floor_ = static_cast<int>(std::min<uint64_t>(
      in.ReadCounter(), static_cast<uint64_t>(out.max_epoch_)));
  out.current_epoch_ =
      std::max(out.epoch_floor_, out.EpochAtSample(out.sampled_));
  out.sampler_.Deserialize(in);
  for (auto& h : out.hashes_) h = UniversalHash::Deserialize(in);
  out.t1_ = MisraGries::Deserialize(in);
  if (sparse_grids) {
    // Expected grid shapes come from the (sanitized) wire options the
    // constructor just sized `out` by — the sparse encoding's size field
    // is validated against them, never trusted for an allocation.
    out.t2_.DeserializeSparse(in, out.rows_ * out.reps_);
    out.t3_.DeserializeSparse(in, out.rows_ * out.reps_ *
                                      static_cast<size_t>(out.max_epoch_ +
                                                          1));
  } else {
    out.t2_.Deserialize(in);
    out.t3_.Deserialize(in);
  }
  return out;
}

void BdwOptimal::SerializeRngState(BitWriter& out) const {
  rng_.Serialize(out);
}

void BdwOptimal::DeserializeRngState(BitReader& in) { rng_.Deserialize(in); }

}  // namespace l1hh
