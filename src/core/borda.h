// Theorem 5: (eps, phi)-List Borda / eps-Borda on a stream of rankings.
//
// Sample each vote with probability ~l/m for l = O(eps^-2 log(n/delta));
// for each sampled vote, add every candidate's Borda points exactly.  The
// exact counters cost O(n log(n l)) = O(n (log n + log eps^-1 +
// log log delta^-1)) bits, plus O(log log m) for the sampler — matching
// Table 1 row 4, and optimal up to the log log n vs log eps^-1 fine print
// by Theorem 12.  Rescaled scores are within eps*m*n of truth for ALL n
// candidates simultaneously whp.
#ifndef L1HH_CORE_BORDA_H_
#define L1HH_CORE_BORDA_H_

#include <cstdint>
#include <vector>

#include "core/common.h"
#include "sampling/geometric_skip.h"
#include "util/bit_stream.h"
#include "util/random.h"
#include "votes/ranking.h"

namespace l1hh {

class StreamingBorda {
 public:
  struct Options {
    double epsilon = 0.05;
    double phi = 0.0;  // used by ListAbove(); 0 disables the threshold
    double delta = 0.1;
    uint32_t num_candidates = 0;
    uint64_t stream_length = 0;  // number of votes, known in advance
    Constants constants = Constants::Practical();

    Status Validate() const {
      if (!(epsilon > 0.0) || !(epsilon < 1.0)) {
        return Status::InvalidArgument("epsilon must be in (0,1)");
      }
      if (num_candidates == 0 || stream_length == 0) {
        return Status::InvalidArgument("empty election");
      }
      return Status::Ok();
    }
  };

  StreamingBorda(const Options& options, uint64_t seed);

  void InsertVote(const Ranking& vote);
  /// Alias so generic wrappers (unknown stream length) can treat votes
  /// like items.
  void Insert(const Ranking& vote) { InsertVote(vote); }

  /// Estimated Borda score of every candidate over the full stream
  /// (in [0, m*(n-1)]).
  std::vector<double> Scores() const;

  /// Candidates with estimated score >= (phi - eps/2) * m * n
  /// (Definition 6's contract).
  std::vector<HeavyHitter> ListAbove() const;

  /// Candidate with the maximum estimated Borda score (the eps-Borda
  /// winner, Definition 7).
  HeavyHitter MaxScore() const;

  /// Distributed merge over disjoint vote substreams (same options/rate):
  /// the exact per-candidate accumulators simply add.
  static StreamingBorda Merge(const StreamingBorda& a,
                              const StreamingBorda& b);

  uint64_t votes_processed() const { return position_; }
  uint64_t samples_taken() const { return sampled_; }
  const Options& options() const { return opt_; }

  size_t SpaceBits() const;

  void Serialize(BitWriter& out) const;
  static StreamingBorda Deserialize(BitReader& in, uint64_t seed);

 private:
  Options opt_;
  Rng rng_;
  GeometricSkipSampler sampler_;
  std::vector<uint64_t> acc_;  // exact Borda points within the sample
  uint64_t position_ = 0;
  uint64_t sampled_ = 0;
};

}  // namespace l1hh

#endif  // L1HH_CORE_BORDA_H_
