// Indexing reductions: Theorems 9, 10 and 11 of the paper.
//
//   * Theorem 9:  Indexing_{1/(2(phi-eps)), 1/(2 eps)} -> (eps,phi)-heavy
//     hitters, giving Omega(eps^-1 log phi^-1) bits.
//   * Theorem 10: Indexing_{1/eps, 1/eps} -> eps-Maximum, giving
//     Omega(eps^-1 log eps^-1) bits.
//   * Theorem 11: Indexing_{2, 5/eps} -> eps-Minimum, giving
//     Omega(eps^-1) bits.
//
// In every game Alice encodes her string as item frequencies, sends the
// sketch, Bob appends "column i" items and decodes x_i from the report.
#ifndef L1HH_COMM_INDEXING_GAME_H_
#define L1HH_COMM_INDEXING_GAME_H_

#include <cstdint>

#include "comm/one_way_protocol.h"

namespace l1hh {

struct HeavyHittersIndexingParams {
  double epsilon = 0.05;  // game epsilon; phi > 2 eps required
  double phi = 0.25;
  uint64_t stream_length = 200000;  // target m (actual within rounding)
  bool use_optimal = true;          // Algorithm 2 vs Algorithm 1 as carrier
};

/// One run of the Theorem 9 game with a random string and index.
GameResult RunHeavyHittersIndexingGame(const HeavyHittersIndexingParams& p,
                                       uint64_t seed);

struct MaximumIndexingParams {
  double epsilon = 0.1;
  uint64_t stream_length = 200000;
};

/// One run of the Theorem 10 game.
GameResult RunMaximumIndexingGame(const MaximumIndexingParams& p,
                                  uint64_t seed);

struct MinimumIndexingParams {
  double epsilon = 0.1;  // game epsilon; t = 5/eps bits in Alice's string
};

/// One run of the Theorem 11 game.
GameResult RunMinimumIndexingGame(const MinimumIndexingParams& p,
                                  uint64_t seed);

/// Repeats a game `trials` times with distinct seeds.
template <typename Params, typename Fn>
GameStats RepeatGame(const Fn& fn, const Params& p, int trials,
                     uint64_t seed) {
  GameStats stats;
  for (int t = 0; t < trials; ++t) {
    const GameResult r = fn(p, seed + static_cast<uint64_t>(t) * 7919);
    ++stats.trials;
    if (r.success) ++stats.successes;
    stats.message_bits = r.message_bits;
  }
  return stats;
}

}  // namespace l1hh

#endif  // L1HH_COMM_INDEXING_GAME_H_
