#include "comm/indexing_game.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/bdw_optimal.h"
#include "core/bdw_simple.h"
#include "core/epsilon_maximum.h"
#include "core/epsilon_minimum.h"
#include "util/bit_stream.h"
#include "util/random.h"

namespace l1hh {

namespace {

// Pair (a, j) -> universe id a * t + j.
uint64_t PairId(uint64_t a, uint64_t j, uint64_t t) { return a * t + j; }

}  // namespace

GameResult RunHeavyHittersIndexingGame(const HeavyHittersIndexingParams& p,
                                       uint64_t seed) {
  GameResult result;
  Rng rng(seed);
  const double eps = p.epsilon;
  const double phi = p.phi;
  const uint64_t t = std::max<uint64_t>(2, static_cast<uint64_t>(
                                               std::floor(1.0 / (2 * eps))));
  const uint64_t alphabet = std::max<uint64_t>(
      2, static_cast<uint64_t>(std::floor(1.0 / (2 * (phi - eps)))));

  // Alice's random string and Bob's random index.
  std::vector<uint64_t> x(t);
  for (auto& v : x) v = rng.UniformU64(alphabet);
  const uint64_t i = rng.UniformU64(t);

  const uint64_t c1 = std::max<uint64_t>(
      1, static_cast<uint64_t>(eps * static_cast<double>(p.stream_length)));
  const uint64_t c2 = std::max<uint64_t>(
      1, static_cast<uint64_t>((phi - eps) *
                               static_cast<double>(p.stream_length)));
  const uint64_t total = t * c1 + alphabet * c2;

  // Algorithm parameters chosen so that the planted item must be reported
  // and every other item must not (Definition 1 applied to the instance).
  const double planted_frac =
      static_cast<double>(c1 + c2) / static_cast<double>(total);
  const double eps_alg =
      static_cast<double>(c1) / (2.0 * static_cast<double>(total));

  BitWriter message;
  if (p.use_optimal) {
    BdwOptimal::Options opt;
    opt.epsilon = eps_alg;
    opt.phi = planted_frac;
    opt.delta = 0.05;
    opt.universe_size = alphabet * t;
    opt.stream_length = total;
    BdwOptimal alice(opt, Mix64(seed ^ 0xa11ceULL));
    for (uint64_t j = 0; j < t; ++j) {
      for (uint64_t c = 0; c < c1; ++c) alice.Insert(PairId(x[j], j, t));
    }
    alice.Serialize(message);

    BitReader reader(message);
    BdwOptimal bob = BdwOptimal::Deserialize(reader, Mix64(seed ^ 0xb0bULL));
    for (uint64_t a = 0; a < alphabet; ++a) {
      for (uint64_t c = 0; c < c2; ++c) bob.Insert(PairId(a, i, t));
    }
    uint64_t decoded = alphabet;  // invalid
    double best = -1;
    for (const HeavyHitter& hh : bob.Report()) {
      if (hh.item % t == i && hh.estimated_count > best) {
        best = hh.estimated_count;
        decoded = hh.item / t;
      }
    }
    result.success = decoded == x[i];
  } else {
    BdwSimple::Options opt;
    opt.epsilon = eps_alg;
    opt.phi = planted_frac;
    opt.delta = 0.05;
    opt.universe_size = alphabet * t;
    opt.stream_length = total;
    BdwSimple alice(opt, Mix64(seed ^ 0xa11ceULL));
    for (uint64_t j = 0; j < t; ++j) {
      for (uint64_t c = 0; c < c1; ++c) alice.Insert(PairId(x[j], j, t));
    }
    alice.Serialize(message);

    BitReader reader(message);
    BdwSimple bob = BdwSimple::Deserialize(reader, Mix64(seed ^ 0xb0bULL));
    for (uint64_t a = 0; a < alphabet; ++a) {
      for (uint64_t c = 0; c < c2; ++c) bob.Insert(PairId(a, i, t));
    }
    uint64_t decoded = alphabet;
    double best = -1;
    for (const HeavyHitter& hh : bob.Report()) {
      if (hh.item % t == i && hh.estimated_count > best) {
        best = hh.estimated_count;
        decoded = hh.item / t;
      }
    }
    result.success = decoded == x[i];
  }
  result.message_bits = message.size_bits();
  return result;
}

GameResult RunMaximumIndexingGame(const MaximumIndexingParams& p,
                                  uint64_t seed) {
  GameResult result;
  Rng rng(seed);
  const uint64_t t = std::max<uint64_t>(
      2, static_cast<uint64_t>(std::floor(1.0 / p.epsilon)));
  std::vector<uint64_t> x(t);
  for (auto& v : x) v = rng.UniformU64(t);
  const uint64_t i = rng.UniformU64(t);

  const uint64_t c = std::max<uint64_t>(
      1, static_cast<uint64_t>(p.epsilon *
                               static_cast<double>(p.stream_length) / 2.0));
  const uint64_t total = 2 * t * c;
  // Error must stay below half the planted gap (gap = c counts).
  const double eps_alg =
      static_cast<double>(c) / (5.0 * static_cast<double>(total));

  EpsilonMaximum::Options opt;
  opt.epsilon = eps_alg;
  opt.delta = 0.05;
  opt.universe_size = t * t;
  opt.stream_length = total;
  EpsilonMaximum alice(opt, Mix64(seed ^ 0xa11ceULL));
  for (uint64_t j = 0; j < t; ++j) {
    for (uint64_t k = 0; k < c; ++k) alice.Insert(PairId(x[j], j, t));
  }
  BitWriter message;
  alice.Serialize(message);

  BitReader reader(message);
  EpsilonMaximum bob =
      EpsilonMaximum::Deserialize(reader, Mix64(seed ^ 0xb0bULL));
  for (uint64_t a = 0; a < t; ++a) {
    for (uint64_t k = 0; k < c; ++k) bob.Insert(PairId(a, i, t));
  }
  const HeavyHitter answer = bob.Report();
  result.success = answer.item == PairId(x[i], i, t);
  result.message_bits = message.size_bits();
  return result;
}

GameResult RunMinimumIndexingGame(const MinimumIndexingParams& p,
                                  uint64_t seed) {
  GameResult result;
  Rng rng(seed);
  const uint64_t t = std::max<uint64_t>(
      4, static_cast<uint64_t>(std::floor(5.0 / p.epsilon)));
  // Alice's bit string and Bob's index.
  std::vector<bool> x(t);
  uint64_t support = 0;
  for (size_t j = 0; j < t; ++j) {
    x[j] = rng.NextU64() & 1;
    support += x[j] ? 1 : 0;
  }
  const uint64_t i = rng.UniformU64(t);

  // Stream length: Alice 2*support, Bob 2*(t-1) + 1 (item t gets 1 copy).
  const uint64_t total = 2 * support + 2 * (t - 1) + 1;
  // eps_alg * total < 1 so frequency-0 vs frequency-1 is resolvable.
  const double eps_alg = 0.49 / static_cast<double>(total);

  EpsilonMinimum::Options opt;
  opt.epsilon = eps_alg;
  opt.delta = 0.1;
  opt.universe_size = t + 1;
  opt.stream_length = total;
  EpsilonMinimum alice(opt, Mix64(seed ^ 0xa11ceULL));
  for (uint64_t j = 0; j < t; ++j) {
    if (x[j]) {
      alice.Insert(j);
      alice.Insert(j);
    }
  }
  BitWriter message;
  alice.Serialize(message);

  BitReader reader(message);
  EpsilonMinimum bob =
      EpsilonMinimum::Deserialize(reader, Mix64(seed ^ 0xb0bULL));
  for (uint64_t j = 0; j < t; ++j) {
    if (j == i) continue;
    bob.Insert(j);
    bob.Insert(j);
  }
  bob.Insert(t);  // one copy of the sentinel item

  const EpsilonMinimum::Result answer = bob.Report();
  const bool decoded_bit = answer.item != i;  // min at i <=> x_i == 0
  result.success = decoded_bit == x[i];
  result.message_bits = message.size_bits();
  return result;
}

}  // namespace l1hh
