// One-way communication game framework for the paper's Section 4 lower
// bounds.
//
// A lower bound cannot be "measured", but every reduction in Section 4 is
// an algorithm, and these games run it end to end: Alice builds her half of
// the instance as a stream, runs the sketch, and Serialize()s it — the
// serialized bits ARE the one-way message whose size the Omega(.) bounds
// constrain.  Bob Deserialize()s, appends his half of the stream, and
// decodes.  Tests assert the decoding succeeds with at least the paper's
// probability; the lower-bound bench charts message bits against the
// Omega(.) formulas.
#ifndef L1HH_COMM_ONE_WAY_PROTOCOL_H_
#define L1HH_COMM_ONE_WAY_PROTOCOL_H_

#include <cstddef>
#include <cstdint>

namespace l1hh {

struct GameResult {
  bool success = false;
  /// Exact size of Alice's message in bits.
  size_t message_bits = 0;
};

/// Aggregate of repeated game trials.
struct GameStats {
  int trials = 0;
  int successes = 0;
  size_t message_bits = 0;  // of the last trial (deterministic given params)

  double success_rate() const {
    return trials == 0 ? 0.0
                       : static_cast<double>(successes) / trials;
  }
};

}  // namespace l1hh

#endif  // L1HH_COMM_ONE_WAY_PROTOCOL_H_
