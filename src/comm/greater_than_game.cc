#include "comm/greater_than_game.h"

#include "core/bdw_simple.h"
#include "core/unknown_length.h"
#include "util/bit_stream.h"
#include "util/random.h"

namespace l1hh {

GameResult RunGreaterThanGame(const GreaterThanParams& p, uint64_t seed) {
  GameResult result;
  Rng rng(seed);
  const int max_e = p.max_exponent < 2 ? 2 : p.max_exponent;
  int x = 1 + static_cast<int>(rng.UniformU64(static_cast<uint64_t>(max_e)));
  int y = 1 + static_cast<int>(rng.UniformU64(static_cast<uint64_t>(max_e)));
  while (y == x) {
    y = 1 + static_cast<int>(rng.UniformU64(static_cast<uint64_t>(max_e)));
  }

  // Protocol constants (known to both parties).
  BdwSimple::Options base;
  base.epsilon = 0.05;
  base.phi = 0.6;  // majority side has frequency >= 2/3 since |x-y| >= 1
  base.delta = 0.02;
  base.universe_size = 2;
  const uint64_t max_m = uint64_t{1} << (max_e + 1);

  auto alice = MakeUnknownLengthListHeavyHitters(base, max_m,
                                                 Mix64(seed ^ 0xa11ceULL));
  const uint64_t alice_copies = uint64_t{1} << x;
  for (uint64_t c = 0; c < alice_copies; ++c) alice.Insert(uint64_t{1});

  BitWriter message;
  alice.Serialize(message);

  // Bob rebuilds with the same protocol constants.
  const double window = 1.0 / base.epsilon;
  auto factory = [base, window, seed](uint64_t assumed) {
    BdwSimple::Options opt = base;
    opt.stream_length = assumed;
    opt.constants.hh_sample_factor *= window;
    return BdwSimple(opt, Mix64(seed ^ assumed));
  };
  BitReader reader(message);
  auto bob = UnknownLengthWrapper<BdwSimple>::Deserialize(
      reader, factory, window, base.delta, max_m, Mix64(seed ^ 0xb0bULL));
  const uint64_t bob_copies = uint64_t{1} << y;
  for (uint64_t c = 0; c < bob_copies; ++c) bob.Insert(uint64_t{0});

  bool one_is_heavy = false;
  for (const HeavyHitter& hh : bob.Reporter().Report()) {
    if (hh.item == 1) one_is_heavy = true;
  }
  result.success = one_is_heavy == (x > y);
  result.message_bits = message.size_bits();
  return result;
}

}  // namespace l1hh
