// Theorem 14: the Greater-than_m reduction showing EVERY problem in the
// paper needs Omega(log log m) bits, even over a universe of size two.
//
// Alice holds x, Bob holds y (both in [log2 m_max]).  Alice streams 2^x
// copies of item 1 — without knowing the eventual stream length, so her
// sketch must be an unknown-length one (this is precisely where the Morris
// counter's O(log log m) bits become unavoidable).  Bob appends 2^y copies
// of item 0 and reports whether 1 is a heavy hitter: it is iff x > y.
#ifndef L1HH_COMM_GREATER_THAN_GAME_H_
#define L1HH_COMM_GREATER_THAN_GAME_H_

#include <cstdint>

#include "comm/one_way_protocol.h"

namespace l1hh {

struct GreaterThanParams {
  /// Exponent range: x, y drawn from [1, max_exponent], x != y.
  int max_exponent = 20;
};

GameResult RunGreaterThanGame(const GreaterThanParams& p, uint64_t seed);

}  // namespace l1hh

#endif  // L1HH_COMM_GREATER_THAN_GAME_H_
