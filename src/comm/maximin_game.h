// Theorem 13: the Indexing-via-Hamming-distance reduction showing
// eps-Maximin needs Omega(n / eps^2) bits.
//
// Alice's string is encoded (through [VWWZ15]'s Lemma 8, see below) as a
// matrix P in {0,1}^{n x gamma}, gamma = 1/eps^2, such that for the pair
// (i, j) Bob queries, the Hamming distance Delta(P_i, P_j) lands
// gamma/2 + sqrt(gamma) or gamma/2 - sqrt(gamma) depending on the indexed
// bit (with constant probability).  P's columns become gamma votes over 2n
// candidates (P adjoined with its complement, so every column has exactly
// n ones).  Bob's extra votes force candidate j's maximin score to equal
// #{Alice votes where j defeats i}, from which Delta — and hence the bit —
// follows, given the row Hamming weights Alice also sends.
//
// Substitution (DESIGN.md #3): Lemma 8's public-randomness encoder is cited
// from [VWWZ15], not reproved in the paper; the harness plants a matrix
// satisfying the lemma's CONCLUSION for the queried pair (row j is row i
// XOR Bernoulli(1/2 +- 2 eps) noise).  Everything downstream — the votes,
// the sketch, Bob's decoding through the maximin score — runs verbatim.
#ifndef L1HH_COMM_MAXIMIN_GAME_H_
#define L1HH_COMM_MAXIMIN_GAME_H_

#include <cstdint>

#include "comm/one_way_protocol.h"

namespace l1hh {

struct MaximinGameParams {
  uint32_t n = 32;      // P has n rows; the election has 2n candidates
  uint32_t gamma = 64;  // 1/eps^2 columns (one vote each)
};

GameResult RunMaximinGame(const MaximinGameParams& p, uint64_t seed);

}  // namespace l1hh

#endif  // L1HH_COMM_MAXIMIN_GAME_H_
