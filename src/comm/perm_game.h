// Theorem 12: the eps-Perm reduction showing eps-Borda needs
// Omega(n log(1/eps)) bits.
//
// Alice holds a permutation sigma of [n], partitioned into `blocks`
// contiguous blocks (blocks = 1/eps in the paper).  She builds ONE vote
// over 3n items — each sigma-block sandwiched between runs of dummy items
// exactly as in the paper's construction — and sends her Borda sketch.
// Bob appends four votes that catapult his item i to the top, then reads
// i's approximate Borda score, which pins down sigma's block containing i.
#ifndef L1HH_COMM_PERM_GAME_H_
#define L1HH_COMM_PERM_GAME_H_

#include <cstdint>

#include "comm/one_way_protocol.h"

namespace l1hh {

struct PermGameParams {
  uint32_t n = 64;       // size of sigma's domain; universe is 3n items
  uint32_t blocks = 8;   // 1/eps blocks; must divide n
};

GameResult RunPermGame(const PermGameParams& p, uint64_t seed);

}  // namespace l1hh

#endif  // L1HH_COMM_PERM_GAME_H_
