#include "comm/perm_game.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "core/borda.h"
#include "util/bit_stream.h"
#include "util/random.h"
#include "votes/ranking.h"

namespace l1hh {

GameResult RunPermGame(const PermGameParams& p, uint64_t seed) {
  GameResult result;
  Rng rng(seed);
  const uint32_t n = p.n;
  const uint32_t blocks = std::max<uint32_t>(1, p.blocks);
  const uint32_t bs = n / blocks;  // sigma items per block
  const uint32_t total_items = 3 * n;  // [n] sigma items + 2n dummies

  // Alice's random permutation sigma over [n]; dummies are n .. 3n-1.
  std::vector<uint32_t> sigma(n);
  std::iota(sigma.begin(), sigma.end(), 0u);
  for (uint32_t i = n; i > 1; --i) {
    std::swap(sigma[i - 1], sigma[rng.UniformU64(i)]);
  }

  // Build Alice's vote: per block, bs dummies > bs sigma items > bs dummies.
  std::vector<uint32_t> order;
  order.reserve(total_items);
  uint32_t next_dummy = n;
  for (uint32_t b = 0; b < blocks; ++b) {
    for (uint32_t k = 0; k < bs; ++k) order.push_back(next_dummy++);
    for (uint32_t k = 0; k < bs; ++k) order.push_back(sigma[b * bs + k]);
    for (uint32_t k = 0; k < bs; ++k) order.push_back(next_dummy++);
  }
  const Ranking alice_vote(std::move(order));

  // Positions (for scoring the ground truth block).
  std::vector<uint32_t> pos(total_items);
  for (uint32_t q = 0; q < total_items; ++q) pos[alice_vote.At(q)] = q;

  // eps_alg small enough that the +-eps*m*n score error is below half a
  // block's width in positions; with m = 5 votes this stays exact unless
  // blocks is enormous.
  const double eps_alg = 1.0 / (32.0 * static_cast<double>(blocks));
  StreamingBorda::Options opt;
  opt.epsilon = eps_alg;
  opt.delta = 0.05;
  opt.num_candidates = total_items;
  opt.stream_length = 5;
  StreamingBorda alice(opt, Mix64(seed ^ 0xa11ceULL));
  alice.InsertVote(alice_vote);

  BitWriter message;
  alice.Serialize(message);

  // Bob.
  const uint32_t i = static_cast<uint32_t>(rng.UniformU64(n));
  BitReader reader(message);
  StreamingBorda bob = StreamingBorda::Deserialize(reader,
                                                   Mix64(seed ^ 0xb0bULL));
  std::vector<uint32_t> fwd;
  fwd.reserve(total_items);
  fwd.push_back(i);
  for (uint32_t c = 0; c < total_items; ++c) {
    if (c != i) fwd.push_back(c);
  }
  std::vector<uint32_t> rev;
  rev.reserve(total_items);
  rev.push_back(i);
  for (uint32_t c = total_items; c-- > 0;) {
    if (c != i) rev.push_back(c);
  }
  const Ranking vote_fwd(std::move(fwd));
  const Ranking vote_rev(std::move(rev));
  bob.InsertVote(vote_fwd);
  bob.InsertVote(vote_fwd);
  bob.InsertVote(vote_rev);
  bob.InsertVote(vote_rev);

  // Decode: score(i) = 4 (3n - 1) from Bob's votes + (3n - 1 - pos_i) from
  // Alice's vote; invert for pos_i, then the block.
  const double s_hat = bob.Scores()[i];
  const double base = 4.0 * (static_cast<double>(total_items) - 1.0);
  const double q_hat =
      (static_cast<double>(total_items) - 1.0) - (s_hat - base);
  const auto block_hat = static_cast<int64_t>(
      std::llround(q_hat) / static_cast<int64_t>(3 * bs));
  const int64_t block_true = pos[i] / (3 * bs);
  result.success = block_hat == block_true;
  result.message_bits = message.size_bits();
  return result;
}

}  // namespace l1hh
