#include "comm/maximin_game.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/maximin.h"
#include "util/bit_stream.h"
#include "util/bit_util.h"
#include "util/random.h"
#include "votes/ranking.h"

namespace l1hh {

GameResult RunMaximinGame(const MaximinGameParams& p, uint64_t seed) {
  GameResult result;
  Rng rng(seed);
  const uint32_t n = std::max<uint32_t>(p.n, 4);
  const uint32_t gamma = std::max<uint32_t>(p.gamma, 16);
  const uint32_t candidates = 2 * n;

  // The queried pair and the indexed bit.
  const uint32_t i = static_cast<uint32_t>(rng.UniformU64(n / 2));
  const uint32_t j =
      n / 2 + static_cast<uint32_t>(rng.UniformU64(n - n / 2));
  const bool bit = (rng.NextU64() & 1) != 0;

  // Plant P: all rows uniform; row j = row i XOR Bernoulli(q) with
  // q = 1/2 + 2/sqrt(gamma) (bit=1, "far") or 1/2 - 2/sqrt(gamma) (bit=0).
  const double flip = 0.5 + (bit ? 2.0 : -2.0) /
                                std::sqrt(static_cast<double>(gamma));
  std::vector<std::vector<uint8_t>> P(n, std::vector<uint8_t>(gamma, 0));
  for (uint32_t r = 0; r < n; ++r) {
    if (r == j) continue;
    for (uint32_t v = 0; v < gamma; ++v) {
      P[r][v] = static_cast<uint8_t>(rng.NextU64() & 1);
    }
  }
  for (uint32_t v = 0; v < gamma; ++v) {
    P[j][v] = P[i][v] ^ static_cast<uint8_t>(rng.Bernoulli(flip) ? 1 : 0);
  }

  // Alice's votes: column v ranks {c : P'[c][v] = 1} (ascending) on top.
  // P' rows 0..n-1 are P; rows n..2n-1 are the complement.
  StreamingMaximin::Options opt;
  opt.epsilon = 1.0 / (4.0 * std::sqrt(static_cast<double>(gamma)));
  opt.delta = 0.1;
  opt.num_candidates = candidates;
  opt.stream_length = 2 * gamma;
  StreamingMaximin alice(opt, Mix64(seed ^ 0xa11ceULL));
  for (uint32_t v = 0; v < gamma; ++v) {
    std::vector<uint32_t> order;
    order.reserve(candidates);
    for (uint32_t c = 0; c < n; ++c) {
      if (P[c][v] != 0) order.push_back(c);
    }
    for (uint32_t c = 0; c < n; ++c) {
      if (P[c][v] == 0) order.push_back(n + c);  // complement rows' ones
    }
    for (uint32_t c = 0; c < n; ++c) {
      if (P[c][v] == 0) order.push_back(c);
    }
    for (uint32_t c = 0; c < n; ++c) {
      if (P[c][v] != 0) order.push_back(n + c);
    }
    alice.InsertVote(Ranking(std::move(order)));
  }

  BitWriter message;
  alice.Serialize(message);
  // Alice also sends every row's Hamming weight (2n * log gamma bits).
  for (uint32_t r = 0; r < n; ++r) {
    uint64_t w = 0;
    for (uint32_t v = 0; v < gamma; ++v) w += P[r][v];
    message.WriteBits(w, BitWidth(gamma));
    message.WriteBits(gamma - w, BitWidth(gamma));  // complement row weight
  }

  // Bob: gamma votes with i first, j second.
  BitReader reader(message);
  StreamingMaximin bob =
      StreamingMaximin::Deserialize(reader, Mix64(seed ^ 0xb0bULL));
  std::vector<uint32_t> bob_order;
  bob_order.reserve(candidates);
  bob_order.push_back(i);
  bob_order.push_back(j);
  for (uint32_t c = 0; c < candidates; ++c) {
    if (c != i && c != j) bob_order.push_back(c);
  }
  const Ranking bob_vote(std::move(bob_order));
  for (uint32_t v = 0; v < gamma; ++v) bob.InsertVote(bob_vote);

  // j's maximin score = #{Alice votes where j beats i} = D_S(j, i); all
  // other opponents give j at least gamma (Bob's votes).
  const double score_j = bob.Scores()[j] *
                         static_cast<double>(bob.samples_taken()) /
                         static_cast<double>(opt.stream_length);
  // Read the weights back (Bob's side of the message).
  // (reader position is already past the sketch.)
  uint64_t wi = 0, wj = 0;
  for (uint32_t r = 0; r < n; ++r) {
    const uint64_t w = reader.ReadBits(BitWidth(gamma));
    reader.ReadBits(BitWidth(gamma));  // complement weight (unused here)
    if (r == i) wi = w;
    if (r == j) wj = w;
  }
  // D(j, i) = |{v: P_i=0, P_j=1}| = (Delta + |P_j| - |P_i|) / 2.
  const double delta_hat = 2.0 * score_j -
                           static_cast<double>(wj) +
                           static_cast<double>(wi);
  const bool decoded = delta_hat > static_cast<double>(gamma) / 2.0;
  result.success = decoded == bit;
  result.message_bits = message.size_bits();
  return result;
}

}  // namespace l1hh
