#include "summary/sticky_sampling.h"

#include <algorithm>
#include <cmath>

#include "util/bit_util.h"

namespace l1hh {

StickySampling::StickySampling(double epsilon, double support, double delta,
                               uint64_t seed, int key_bits)
    : rng_(seed), epsilon_(epsilon), key_bits_(key_bits) {
  const double t =
      std::ceil(std::log(1.0 / (support * delta)) / epsilon);
  t_ = std::max<uint64_t>(1, static_cast<uint64_t>(t));
  next_boundary_ = 2 * t_;
}

void StickySampling::Insert(uint64_t item) {
  ++processed_;
  auto it = table_.find(item);
  if (it != table_.end()) {
    max_count_ = std::max(max_count_, ++it->second);
  } else if (rate_ == 1 || rng_.UniformU64(rate_) == 0) {
    table_.emplace(item, 1);
    peak_tracked_ = std::max(peak_tracked_, table_.size());
  }
  if (processed_ >= next_boundary_) {
    rate_ *= 2;
    next_boundary_ += rate_ * t_;
    Resample();
  }
}

void StickySampling::Resample() {
  // For each entry, repeatedly toss an unbiased coin, diminishing the count
  // by one per tails, until heads; drop entries that reach zero ([MM02]).
  for (auto it = table_.begin(); it != table_.end();) {
    uint64_t count = it->second;
    while (count > 0 && (rng_.NextU64() & 1) != 0) {
      --count;
    }
    if (count == 0) {
      it = table_.erase(it);
    } else {
      it->second = count;
      ++it;
    }
  }
}

uint64_t StickySampling::Estimate(uint64_t item) const {
  const auto it = table_.find(item);
  return it == table_.end() ? 0 : it->second;
}

std::vector<StickySampling::Entry> StickySampling::EntriesAbove(
    uint64_t threshold) const {
  const uint64_t slack =
      static_cast<uint64_t>(epsilon_ * static_cast<double>(processed_));
  std::vector<Entry> out;
  for (const auto& [item, count] : table_) {
    if (count + slack >= threshold) out.push_back({item, count});
  }
  std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
    return a.count > b.count || (a.count == b.count && a.item < b.item);
  });
  return out;
}

size_t StickySampling::SpaceBits() const {
  const size_t per_entry =
      static_cast<size_t>(key_bits_) + BitWidth(max_count_);
  return BitWidth(processed_) + BitWidth(rate_) +
         peak_tracked_ * per_entry;
}

}  // namespace l1hh
