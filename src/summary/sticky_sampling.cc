#include "summary/sticky_sampling.h"

#include <algorithm>
#include <cmath>

#include "util/bit_util.h"

namespace l1hh {

StickySampling::StickySampling(double epsilon, double support, double delta,
                               uint64_t seed, int key_bits)
    : rng_(seed), epsilon_(epsilon), key_bits_(key_bits) {
  const double t =
      std::ceil(std::log(1.0 / (support * delta)) / epsilon);
  t_ = std::max<uint64_t>(1, static_cast<uint64_t>(t));
  next_boundary_ = 2 * t_;
}

void StickySampling::Insert(uint64_t item) {
  ++processed_;
  auto it = table_.find(item);
  if (it != table_.end()) {
    max_count_ = std::max(max_count_, ++it->second);
  } else if (rate_ == 1 || rng_.UniformU64(rate_) == 0) {
    table_.emplace(item, 1);
    peak_tracked_ = std::max(peak_tracked_, table_.size());
  }
  if (processed_ >= next_boundary_) {
    rate_ *= 2;
    next_boundary_ += rate_ * t_;
    Resample();
  }
}

void StickySampling::Resample() {
  // For each entry, repeatedly toss an unbiased coin, diminishing the count
  // by one per tails, until heads; drop entries that reach zero ([MM02]).
  // Entries are visited in sorted item order, NOT hash-map order: two
  // logically equal instances (e.g. one restored from a snapshot, whose
  // map iteration order differs) must consume the PRNG identically for
  // checkpoint -> restore -> continue to match an uninterrupted run.
  std::vector<uint64_t> items;
  items.reserve(table_.size());
  for (const auto& [item, count] : table_) items.push_back(item);
  std::sort(items.begin(), items.end());
  for (const uint64_t item : items) {
    const auto it = table_.find(item);
    uint64_t count = it->second;
    while (count > 0 && (rng_.NextU64() & 1) != 0) {
      --count;
    }
    if (count == 0) {
      table_.erase(it);
    } else {
      it->second = count;
    }
  }
}

uint64_t StickySampling::Estimate(uint64_t item) const {
  const auto it = table_.find(item);
  return it == table_.end() ? 0 : it->second;
}

std::vector<StickySampling::Entry> StickySampling::EntriesAbove(
    uint64_t threshold) const {
  const uint64_t slack =
      static_cast<uint64_t>(epsilon_ * static_cast<double>(processed_));
  std::vector<Entry> out;
  for (const auto& [item, count] : table_) {
    if (count + slack >= threshold) out.push_back({item, count});
  }
  std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
    return a.count > b.count || (a.count == b.count && a.item < b.item);
  });
  return out;
}

void StickySampling::Serialize(BitWriter& out) const {
  rng_.Serialize(out);
  out.WriteCounter(processed_);
  out.WriteCounter(rate_);
  out.WriteCounter(next_boundary_);
  out.WriteCounter(peak_tracked_);
  out.WriteCounter(max_count_);
  out.WriteCounter(table_.size());
  for (const auto& [item, count] : table_) {
    out.WriteU64(item);
    out.WriteCounter(count);
  }
}

void StickySampling::Deserialize(BitReader& in) {
  uint64_t rng_state[Rng::kStateWords];
  for (auto& w : rng_state) w = in.ReadU64();
  const uint64_t processed = in.ReadCounter();
  const uint64_t rate = in.ReadCounter();
  const uint64_t next_boundary = in.ReadCounter();
  const uint64_t peak = in.ReadCounter();
  const uint64_t max_count = in.ReadCounter();
  const uint64_t entries = in.CheckedCount(in.ReadCounter());
  std::unordered_map<uint64_t, uint64_t> table;
  // Each entry costs >= 65 bits, so cap the pre-allocation by what the
  // wire can actually hold (CheckedCount's bound is per-bit, loose).
  table.reserve(std::min<uint64_t>(entries, in.remaining_bits() / 65 + 1));
  for (uint64_t i = 0; i < entries && !in.overflow(); ++i) {
    const uint64_t item = in.ReadU64();
    table[item] = in.ReadCounter();
  }
  if (in.overflow()) return;  // leave this instance untouched
  rng_.RestoreState(rng_state);
  processed_ = processed;
  rate_ = std::max<uint64_t>(1, rate);
  next_boundary_ = next_boundary;
  peak_tracked_ = static_cast<size_t>(peak);
  max_count_ = max_count;
  table_ = std::move(table);
}

size_t StickySampling::SpaceBits() const {
  const size_t per_entry =
      static_cast<size_t>(key_bits_) + BitWidth(max_count_);
  return BitWidth(processed_) + BitWidth(rate_) +
         peak_tracked_ * per_entry;
}

}  // namespace l1hh
