#include "summary/exact_counter.h"

#include <algorithm>

namespace l1hh {

std::vector<ExactCounter::Entry> ExactCounter::HeavyHitters(
    uint64_t threshold) const {
  std::vector<Entry> out;
  for (const auto& [item, count] : table_) {
    if (count >= threshold) out.push_back({item, count});
  }
  std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
    return a.count > b.count || (a.count == b.count && a.item < b.item);
  });
  return out;
}

ExactCounter::Entry ExactCounter::Max() const {
  Entry best{0, 0};
  for (const auto& [item, count] : table_) {
    if (count > best.count || (count == best.count && item < best.item)) {
      best = {item, count};
    }
  }
  return best;
}

ExactCounter::Entry ExactCounter::MinOverUniverse(
    uint64_t universe_size) const {
  // Any item absent from the table has frequency zero.
  if (table_.size() < universe_size) {
    for (uint64_t candidate = 0; candidate < universe_size; ++candidate) {
      if (table_.find(candidate) == table_.end()) return {candidate, 0};
    }
  }
  Entry best{0, UINT64_MAX};
  for (const auto& [item, count] : table_) {
    if (item >= universe_size) continue;
    if (count < best.count || (count == best.count && item < best.item)) {
      best = {item, count};
    }
  }
  if (best.count == UINT64_MAX) return {0, 0};
  return best;
}

std::vector<ExactCounter::Entry> ExactCounter::SortedByCountDesc() const {
  std::vector<Entry> out;
  out.reserve(table_.size());
  for (const auto& [item, count] : table_) out.push_back({item, count});
  std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
    return a.count > b.count || (a.count == b.count && a.item < b.item);
  });
  return out;
}

}  // namespace l1hh
