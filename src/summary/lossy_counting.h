// Lossy Counting [MM02]: deterministic, bucket-based.
//
// With bucket width ceil(1/eps): every item with f > eps*m is reported,
// estimates undercount by at most eps*m, and space is O(eps^-1 log(eps m))
// entries.  Classic baseline from the paper's related-work list.
#ifndef L1HH_SUMMARY_LOSSY_COUNTING_H_
#define L1HH_SUMMARY_LOSSY_COUNTING_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/bit_stream.h"

namespace l1hh {

class LossyCounting {
 public:
  struct Entry {
    uint64_t item;
    uint64_t count;  // undercount; true f <= count + delta
    uint64_t delta;  // max undercount when the entry was created
  };

  explicit LossyCounting(double epsilon, int key_bits = 64);

  void Insert(uint64_t item);

  /// Undercount estimate (0 if dropped).
  uint64_t Estimate(uint64_t item) const;

  /// Items whose (count + delta) >= threshold.
  std::vector<Entry> EntriesAbove(uint64_t threshold) const;
  std::vector<Entry> Entries() const;

  uint64_t items_processed() const { return processed_; }
  size_t tracked() const { return table_.size(); }
  size_t peak_tracked() const { return peak_tracked_; }
  double epsilon() const { return epsilon_; }

  /// Peak-capacity accounting: the table must be sized for its fullest
  /// moment (just before a prune), not the end-of-stream survivors.
  size_t SpaceBits() const;

  void Serialize(BitWriter& out) const;
  static LossyCounting Deserialize(BitReader& in);

 private:
  void PruneBucket();

  double epsilon_;
  int key_bits_;
  uint64_t bucket_width_;
  uint64_t current_bucket_ = 1;
  uint64_t processed_ = 0;
  size_t peak_tracked_ = 0;
  uint64_t max_count_ = 0;
  std::unordered_map<uint64_t, std::pair<uint64_t, uint64_t>> table_;
};

}  // namespace l1hh

#endif  // L1HH_SUMMARY_LOSSY_COUNTING_H_
