#include "summary/counter_groups.h"

#include <algorithm>

namespace l1hh {

CounterGroups::CounterGroups(size_t capacity) : capacity_(capacity) {
  entries_.reserve(capacity);
  index_.reserve(capacity * 2);
}

int CounterGroups::Find(uint64_t key) {
  auto it = index_.find(key);
  if (it == index_.end()) return -1;
  const int e = it->second;
  if (IsZombieGroup(entries_[e].group)) {
    // Garbage-collect the zombie on contact; the caller sees "absent".
    UnlinkEntryFromGroup(e);
    index_.erase(it);
    free_entries_.push_back(e);
    return -1;
  }
  return e;
}

uint64_t CounterGroups::Count(uint64_t key) const {
  const auto it = index_.find(key);
  if (it == index_.end()) return 0;
  const int g = entries_[it->second].group;
  if (IsZombieGroup(g)) return 0;
  return groups_[g].count - offset_;
}

void CounterGroups::Increment(int entry) { PromoteEntry(entry); }

int CounterGroups::InsertNew(uint64_t key) {
  const int e = AllocEntrySlot();
  entries_[e].key = key;
  index_[key] = e;
  // Effective count 1 == absolute offset_ + 1.  The only possible group
  // before it is the (single) zombie group at the head.
  int after = -1;
  if (IsZombieGroup(head_group_)) after = head_group_;
  const int next = after < 0 ? head_group_ : groups_[after].next;
  int g;
  if (next >= 0 && groups_[next].count == offset_ + 1) {
    g = next;
  } else {
    g = InsertGroupAfter(after, offset_ + 1);
  }
  LinkEntryToGroup(e, g);
  ++live_;
  return e;
}

int CounterGroups::InsertWithCount(uint64_t key, uint64_t count) {
  const int e = AllocEntrySlot();
  entries_[e].key = key;
  index_[key] = e;
  const uint64_t absolute = offset_ + count;
  // Walk the (sorted) group list for the insertion point.
  int after = -1;
  int g = head_group_;
  while (g >= 0 && groups_[g].count < absolute) {
    after = g;
    g = groups_[g].next;
  }
  int dest;
  if (g >= 0 && groups_[g].count == absolute) {
    dest = g;
  } else {
    dest = InsertGroupAfter(after, absolute);
  }
  LinkEntryToGroup(e, dest);
  ++live_;
  return e;
}

void CounterGroups::DecrementAll() {
  ++offset_;
  if (IsZombieGroup(head_group_)) {
    live_ -= static_cast<size_t>(groups_[head_group_].size);
  }
}

uint64_t CounterGroups::ReplaceMin(uint64_t key) {
  int g = head_group_;
  if (IsZombieGroup(g)) g = groups_[g].next;
  const int e = groups_[g].head;
  const uint64_t old_count = groups_[g].count - offset_;
  index_.erase(entries_[e].key);
  entries_[e].key = key;
  index_[key] = e;
  PromoteEntry(e);
  return old_count;
}

uint64_t CounterGroups::MinCount() const {
  int g = head_group_;
  if (IsZombieGroup(g)) g = groups_[g].next;
  if (g < 0) return 0;
  return groups_[g].count - offset_;
}

uint64_t CounterGroups::MaxCount() const {
  int g = head_group_;
  if (g < 0) return 0;
  while (groups_[g].next >= 0) g = groups_[g].next;
  if (IsZombieGroup(g)) return 0;
  return groups_[g].count - offset_;
}

void CounterGroups::ForEach(
    const std::function<void(uint64_t, uint64_t)>& fn) const {
  for (int g = head_group_; g >= 0; g = groups_[g].next) {
    if (IsZombieGroup(g)) continue;
    const uint64_t count = groups_[g].count - offset_;
    for (int e = groups_[g].head; e >= 0; e = entries_[e].next) {
      fn(entries_[e].key, count);
    }
  }
}

size_t CounterGroups::SpaceBits(int key_bits) const {
  // Capacity-based accounting, matching the paper's "a table of length k
  // whose key entries store integers in [0, K] and value entries integers
  // in [0, V]": every slot is charged key_bits plus a value width sized to
  // the largest count the table currently holds.  (Content-based gamma
  // accounting would let a churning table on a uniform stream report a
  // handful of bits, which is not what any implementation allocates.)
  const int value_bits = BitWidth(MaxCount());
  return capacity_ * (static_cast<size_t>(key_bits) +
                      static_cast<size_t>(value_bits)) +
         BitWidth(offset_);
}

void CounterGroups::Serialize(BitWriter& out) const {
  out.WriteGamma(capacity_ + 1);
  out.WriteCounter(offset_);
  out.WriteGamma(live_ + 1);
  // Canonical order (count asc, key asc): serializing a deserialized
  // structure reproduces the identical bit string, so messages can be
  // compared and deduplicated byte-wise.
  std::vector<std::pair<uint64_t, uint64_t>> entries;  // (count, key)
  entries.reserve(live_);
  ForEach([&](uint64_t key, uint64_t count) {
    entries.emplace_back(count, key);
  });
  std::sort(entries.begin(), entries.end());
  for (const auto& [count, key] : entries) {
    out.WriteU64(key);
    out.WriteGamma(count);
  }
}

void CounterGroups::Deserialize(BitReader& in) {
  // The capacity field declares the structure's k, not elements present
  // in the stream — an empty or sparse structure legitimately declares a
  // capacity far beyond its remaining bits (the caller validates it
  // against the expected shape).  The bit-plausibility clamp therefore
  // applies to the entry count (each entry is >= 65 wire bits), and the
  // eager reserve is bounded by it, keeping a hostile capacity away from
  // the allocator without rejecting honest sparse states.
  const uint64_t capacity = in.ReadGamma() - 1;
  const uint64_t offset = in.ReadCounter();
  // A corrupted entry count beyond the capacity would dereference a
  // nonexistent zombie group in InsertNew; clamp it.
  const size_t n = static_cast<size_t>(
      std::min<uint64_t>(in.CheckedCount(in.ReadGamma() - 1), capacity));
  *this = CounterGroups(n);
  capacity_ = static_cast<size_t>(capacity);
  offset_ = offset;
  // Reinsert then lift each entry to its serialized count.  Rebuild cost is
  // O(sum of counts) in group moves; acceptable for deserialization.
  const uint64_t saved_offset = offset_;
  offset_ = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint64_t key = in.ReadU64();
    const uint64_t count = in.ReadGamma();
    InsertWithCount(key, count);
  }
  // Restore the offset by shifting every group up, keeping effective counts.
  for (int g = head_group_; g >= 0; g = groups_[g].next) {
    groups_[g].count += saved_offset;
  }
  offset_ = saved_offset;
}

int CounterGroups::AllocGroup(uint64_t count) {
  int g;
  if (!free_groups_.empty()) {
    g = free_groups_.back();
    free_groups_.pop_back();
    groups_[g] = Group();
  } else {
    g = static_cast<int>(groups_.size());
    groups_.emplace_back();
  }
  groups_[g].count = count;
  return g;
}

void CounterGroups::FreeGroup(int g) {
  const int prev = groups_[g].prev;
  const int next = groups_[g].next;
  if (prev >= 0) groups_[prev].next = next;
  if (next >= 0) groups_[next].prev = prev;
  if (head_group_ == g) head_group_ = next;
  free_groups_.push_back(g);
}

int CounterGroups::AllocEntrySlot() {
  if (!free_entries_.empty()) {
    const int e = free_entries_.back();
    free_entries_.pop_back();
    return e;
  }
  if (entries_.size() < capacity_) {
    entries_.emplace_back();
    return static_cast<int>(entries_.size()) - 1;
  }
  // Cannibalize one zombie (head group must be zombie: the caller only
  // inserts when live_ < capacity_, so a slot deficit implies zombies).
  const int g = head_group_;
  const int e = groups_[g].head;
  index_.erase(entries_[e].key);
  UnlinkEntryFromGroup(e);
  return e;
}

void CounterGroups::UnlinkEntryFromGroup(int e) {
  const int g = entries_[e].group;
  const int prev = entries_[e].prev;
  const int next = entries_[e].next;
  if (prev >= 0) entries_[prev].next = next;
  if (next >= 0) entries_[next].prev = prev;
  if (groups_[g].head == e) groups_[g].head = next;
  if (--groups_[g].size == 0) FreeGroup(g);
  entries_[e].group = -1;
  entries_[e].prev = -1;
  entries_[e].next = -1;
}

void CounterGroups::LinkEntryToGroup(int e, int g) {
  entries_[e].group = g;
  entries_[e].prev = -1;
  entries_[e].next = groups_[g].head;
  if (groups_[g].head >= 0) entries_[groups_[g].head].prev = e;
  groups_[g].head = e;
  ++groups_[g].size;
}

void CounterGroups::PromoteEntry(int e) {
  const int g = entries_[e].group;
  const uint64_t target = groups_[g].count + 1;
  const int next = groups_[g].next;
  int dest;
  if (next >= 0 && groups_[next].count == target) {
    dest = next;
  } else {
    dest = InsertGroupAfter(g, target);
  }
  UnlinkEntryFromGroup(e);  // may free g (and fix links), dest stays valid
  LinkEntryToGroup(e, dest);
}

int CounterGroups::InsertGroupAfter(int after, uint64_t count) {
  const int g = AllocGroup(count);
  if (after < 0) {
    groups_[g].next = head_group_;
    if (head_group_ >= 0) groups_[head_group_].prev = g;
    head_group_ = g;
  } else {
    const int next = groups_[after].next;
    groups_[g].prev = after;
    groups_[g].next = next;
    groups_[after].next = g;
    if (next >= 0) groups_[next].prev = g;
  }
  return g;
}

}  // namespace l1hh
