// The unified summary interface: every heavy-hitter structure in this
// repository — the classic baselines in src/summary/ and the paper's
// Algorithm 1/2 wrappers in src/core/ — is usable through one abstract
// API, so the CLI, the Table 1 benches, the examples, and the
// parameterized interface tests can select algorithms by name.
//
// The model follows the paper's Definition 1 ((eps, phi)-List l1-heavy
// hitters): a summary observes an insertion-only stream of item ids,
// answers point queries `Estimate(item)`, and enumerates
// `HeavyHitters(phi)` — every item with frequency > phi*m must appear,
// nothing below (phi - eps)*m may appear, and estimates are within eps*m
// of truth (deterministically or w.p. 1-delta, per structure; see
// docs/ALGORITHMS.md for the exact guarantee each concrete class gives).
//
// Concrete structures keep their rich native APIs; the adapters that
// implement this interface live in summary.cc (baselines) and
// core/summary_adapters.cc (BdwSimple/BdwOptimal) and are reached through
// the string-keyed factory `MakeSummary(name, options)`.
#ifndef L1HH_SUMMARY_SUMMARY_H_
#define L1HH_SUMMARY_SUMMARY_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/bit_stream.h"
#include "util/status.h"

namespace l1hh {

/// One (item, estimated count) pair, in full-stream units (sampling-based
/// structures rescale their internal counts before reporting).
struct ItemEstimate {
  uint64_t item = 0;
  double estimate = 0;
};

/// The canonical report order: estimate descending, ties by item id
/// ascending.  Shared by every adapter so reports compare element-wise.
inline void SortByEstimateDesc(std::vector<ItemEstimate>& entries) {
  std::sort(entries.begin(), entries.end(),
            [](const ItemEstimate& a, const ItemEstimate& b) {
              return a.estimate > b.estimate ||
                     (a.estimate == b.estimate && a.item < b.item);
            });
}

/// Construction parameters shared by every registered summary.  Individual
/// structures consume the subset they need (e.g. MisraGries only uses
/// epsilon and universe_size; the BDW algorithms additionally require
/// stream_length, which Theorems 1-2 assume known).
struct SummaryOptions {
  double epsilon = 0.01;   // additive estimation error, as a fraction of m
  double phi = 0.05;       // heavy-hitter threshold, as a fraction of m
  double delta = 0.05;     // failure probability (randomized structures)
  uint64_t universe_size = uint64_t{1} << 24;  // n: ids are in [0, n)
  uint64_t stream_length = 0;  // m; required by bdw_simple / bdw_optimal
  uint64_t seed = 1;           // PRNG / hash seed (randomized structures)
  // Sliding-window geometry, consumed only by the `windowed:<algo>`
  // container (src/window/): W, the window length in items, and B, the
  // number of tumbling sub-window buckets covering it.  window_size == 0
  // asks for the default (stream_length when known, else 2^20).  Plain
  // structures ignore both; docs/WINDOWS.md has the eps + 1/B accounting.
  uint64_t window_size = 0;   // W: answer for the last W items
  uint64_t window_buckets = 8;  // B: sub-window buckets (query slack 1/B)

  /// Field-wise equality — THE compatibility comparison (window Merge,
  /// cross-shard Restore validation).  Defaulted so a new field can
  /// never be silently left out of one caller's hand-rolled list.
  friend bool operator==(const SummaryOptions&,
                         const SummaryOptions&) = default;
};

// Thread-safety contract: a Summary is a single-threaded object.  No
// method is safe to call concurrently with any other on the same
// instance (including the const queries, which may share scratch state in
// derived classes); callers that want parallelism run one instance per
// thread over disjoint substreams and combine them with Merge — which is
// exactly what the sharded engine (src/engine/) does, with a Flush
// quiescence protocol guarding every read.  Distinct instances never
// share mutable state and may be used from different threads freely.
class Summary {
 public:
  virtual ~Summary() = default;

  /// The registry name this summary was created under (e.g. "misra_gries").
  virtual std::string_view Name() const = 0;

  /// Processes `weight` occurrences of `item`.  Structures whose native
  /// update is unit-weight (Misra-Gries, Space-Saving, the sampling-based
  /// algorithms) apply the update `weight` times, so prefer weight == 1 on
  /// hot paths unless the structure is a linear sketch.
  virtual void Update(uint64_t item, uint64_t weight = 1) = 0;

  /// Processes a batch of unit-weight updates.  The default forwards to
  /// Update; implementations may override with a tighter loop.
  virtual void UpdateBatch(std::span<const uint64_t> items) {
    for (const uint64_t x : items) Update(x, 1);
  }

  /// Columnar ingest: `n` unit-weight updates from a contiguous column
  /// slice (the database deployment shape — one column chunk per call).
  /// Contract: state-identical to calling Update(items[i], 1) for
  /// i = 0..n-1 in order; overrides may only reorder order-independent
  /// work such as hash precomputation (tests/columnar_differential_test.cc
  /// pins bit-for-bit snapshot equality against the scalar loop).  The
  /// default forwards to UpdateBatch; hot adapters override with
  /// slice-tuned loops (see docs/GROUPED.md#columnar-ingest).
  virtual void UpdateColumn(const uint64_t* items, size_t n) {
    UpdateBatch({items, n});
  }

  /// Estimated frequency of `item` in full-stream units.  Whether this
  /// over- or under-estimates (and by how much) is structure-specific.
  virtual double Estimate(uint64_t item) const = 0;

  /// Items estimated at or above roughly a phi fraction of the stream,
  /// sorted by estimate descending.  Each structure thresholds so that its
  /// own (eps, phi)-List contract holds: everything above phi*m is
  /// reported, nothing below (phi - eps)*m.  Caveat: structures that
  /// track a candidate set sized by the construction-time
  /// SummaryOptions::phi (count_min, count_sketch, bdw_simple,
  /// bdw_optimal, hashed_misra_gries) guarantee this only for query
  /// phi >= construction phi; smaller query values are answered
  /// best-effort from the tracked candidates.
  virtual std::vector<ItemEstimate> HeavyHitters(double phi) const = 0;

  /// Total weight processed so far (the stream position m').
  virtual uint64_t ItemsProcessed() const = 0;

  /// The stream suffix the reports answer for: ItemsProcessed() for every
  /// plain structure, the covered window (< ItemsProcessed once eviction
  /// starts) for the `windowed:<algo>` container.  The evaluation harness
  /// scores reports against exactly this many trailing items.
  virtual uint64_t CoveredItems() const { return ItemsProcessed(); }

  /// Paper-style space accounting in bytes (rounded up from the
  /// structure's SpaceBits where available).
  virtual size_t MemoryUsageBytes() const = 0;

  /// Whether Merge() can combine this summary with a compatible sibling
  /// (same registry name, same options/seed) built over a disjoint
  /// substream.
  virtual bool SupportsMerge() const { return false; }

  /// In-place merge with `other`.  After an OK merge this summary answers
  /// for the concatenation of both substreams.
  ///
  /// Preconditions (what adapters check and tests/merge_property_test.cc
  /// enforces):
  ///   * `other` is the same registry type, built from the same
  ///     SummaryOptions — merging, say, an eps=0.1 table into an eps=0.01
  ///     contract would silently loosen the guarantee and is rejected;
  ///   * randomized structures additionally require the same seed (same
  ///     hash functions / sampling rate / epoch schedule);
  ///   * the two summaries observed *position-disjoint* substreams whose
  ///     combined length is covered by options.stream_length (the
  ///     sampling-based structures rescale by it).
  /// Returns FailedPrecondition when the structure does not support
  /// merging and InvalidArgument (leaving this summary unchanged) when
  /// `other` is incompatible.  Merging is commutative and associative
  /// within each structure's documented additive error
  /// (docs/ALGORITHMS.md#mergeability).
  virtual Status Merge(const Summary& other);

  // ---- Snapshots (versioned persistence, docs/SNAPSHOTS.md) -------------
  //
  // Every built-in structure supports snapshots.  SaveTo/LoadFrom move the
  // raw state bits; the self-describing container around them (magic,
  // format version, registry name, options, CRC) lives in src/io/snapshot.h,
  // which is also where `LoadSummary(path)` reconstructs the right concrete
  // type from a header.

  /// Whether SaveTo/LoadFrom can persist this summary's full state.
  virtual bool SupportsSnapshot() const { return false; }

  /// The exact SummaryOptions (including the seed) this summary was
  /// constructed from.  Snapshot headers echo these so LoadSummary can
  /// rebuild the instance; a structure that overrides SupportsSnapshot
  /// must override this too.
  virtual SummaryOptions Options() const { return SummaryOptions{}; }

  /// Appends this summary's complete state (including any live PRNG
  /// state, so a restored instance continues the exact random sequence)
  /// as a raw bit payload.  Returns FailedPrecondition when unsupported.
  virtual Status SaveTo(BitWriter& out) const;

  /// Restores state from a payload written by SaveTo on a summary that was
  /// created with the same registry name, SummaryOptions, and seed — which
  /// is how the snapshot container calls it: construct from the header's
  /// options, then LoadFrom the payload.  On any error (truncated input,
  /// shape mismatch with this instance's construction) returns Corruption
  /// and leaves this summary in a safe (possibly empty) state; it never
  /// invokes UB on hostile bits.
  virtual Status LoadFrom(BitReader& in);
};

// ---------------------------------------------------------------------------
// String-keyed factory / registry.

/// The registry spelling prefix of the sliding-window container:
/// "windowed:<inner>" wraps registered structure <inner> (src/window/).
inline constexpr std::string_view kWindowedPrefix = "windowed:";

/// Whether `name` spells a windowed container.  The single test every
/// layer shares (factory dispatch, evaluation-harness scoring, CLI
/// auto-wrapping), so the prefix cannot silently drift.
inline bool IsWindowedSummaryName(std::string_view name) {
  return name.substr(0, kWindowedPrefix.size()) == kWindowedPrefix;
}

using SummaryFactory =
    std::function<std::unique_ptr<Summary>(const SummaryOptions&)>;

/// Registers (or replaces) a factory under `name`.  The built-in
/// structures self-register on first registry use; call this to add
/// project-local algorithms to the same CLI/bench/test plumbing.
void RegisterSummary(const std::string& name, SummaryFactory factory);

/// Creates a summary by registry name, or nullptr for unknown names.
/// Names of the form "windowed:<inner>" wrap the registered mergeable
/// structure <inner> in the sliding-window container (src/window/), sized
/// by SummaryOptions::{window_size, window_buckets}; the spelling is
/// accepted everywhere a registry name is (CLI --algo, the sharded
/// engine, snapshot headers) without the inner structures knowing.
/// `status`, when non-null, receives WHY a nullptr came back (unknown
/// name vs a windowed refusal such as a non-mergeable inner structure).
std::unique_ptr<Summary> MakeSummary(std::string_view name,
                                     const SummaryOptions& options,
                                     Status* status = nullptr);

/// All registered names, sorted, e.g. for `l1hh_cli list` and the
/// parameterized interface test.
std::vector<std::string> RegisteredSummaryNames();

}  // namespace l1hh

#endif  // L1HH_SUMMARY_SUMMARY_H_
