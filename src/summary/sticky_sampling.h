// Sticky Sampling [MM02]: probabilistic counting with a sampling rate that
// halves the admission probability as the stream doubles.
//
// Parameters (eps, phi-support s, delta): reports every item with
// f > s*m w.p. >= 1 - delta, undercounts by at most eps*m, and keeps
// O(eps^-1 log(1/(s delta))) entries in expectation, independent of m —
// the first sampling-based heavy hitter algorithm, listed in the paper's
// related work.
#ifndef L1HH_SUMMARY_STICKY_SAMPLING_H_
#define L1HH_SUMMARY_STICKY_SAMPLING_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/bit_stream.h"
#include "util/random.h"

namespace l1hh {

class StickySampling {
 public:
  struct Entry {
    uint64_t item;
    uint64_t count;
  };

  StickySampling(double epsilon, double support, double delta, uint64_t seed,
                 int key_bits = 64);

  void Insert(uint64_t item);

  uint64_t Estimate(uint64_t item) const;

  std::vector<Entry> EntriesAbove(uint64_t threshold) const;

  uint64_t items_processed() const { return processed_; }
  size_t tracked() const { return table_.size(); }
  size_t peak_tracked() const { return peak_tracked_; }

  /// Peak-capacity accounting, like LossyCounting.
  size_t SpaceBits() const;

  /// Snapshot support: persists the dynamic state — table, sampling rate,
  /// boundaries, AND the live PRNG state, so a restored instance continues
  /// the exact random sequence of the saved one.  The configuration
  /// (epsilon, support, delta, key_bits) is NOT written; Deserialize is a
  /// member function restoring into an instance constructed with the same
  /// parameters.
  void Serialize(BitWriter& out) const;
  void Deserialize(BitReader& in);

 private:
  void Resample();  // halve admission rate, geometric coin-down per entry

  Rng rng_;
  double epsilon_;
  int key_bits_;
  uint64_t t_;              // 1/eps * log(1/(s*delta))
  uint64_t rate_ = 1;       // current sampling period (1 = keep everything)
  uint64_t next_boundary_;  // stream position where the rate next doubles
  uint64_t processed_ = 0;
  size_t peak_tracked_ = 0;
  uint64_t max_count_ = 0;
  std::unordered_map<uint64_t, uint64_t> table_;
};

}  // namespace l1hh

#endif  // L1HH_SUMMARY_STICKY_SAMPLING_H_
