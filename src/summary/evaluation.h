// Shared evaluation harness for the Summary registry: drive any
// registered algorithm over a stream — single-summary or through the
// sharded engine — and score its HeavyHitters(phi) report against exact
// ground truth.  Single source of truth for the recall/precision
// bookkeeping used by the CLI (`l1hh_cli run`) and the comparative
// benches (bench/bench_util.h, bench/bench_sharded_throughput.cc).
#ifndef L1HH_SUMMARY_EVALUATION_H_
#define L1HH_SUMMARY_EVALUATION_H_

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "engine/sharded_engine.h"
#include "summary/exact_counter.h"
#include "summary/summary.h"

namespace l1hh {

/// One factory-driven run of a registered summary over a stream, scored
/// against the exact counts.  `windowed:<algo>` runs are scored against
/// the stream SUFFIX the window actually covers (scored_items < stream
/// size once the ring has evicted) — "heavy in the last W items" is the
/// contract a windowed summary makes, so that is the truth it is held to.
struct SummaryRunResult {
  bool ok = false;           // false if the name is not registered (or,
                             // for sharded runs, refuses to shard)
  std::string error;         // why ok == false
  size_t true_heavies = 0;   // |{x : f(x) > phi*m}|
  size_t recalled = 0;       // true heavies present in the report
  double recall = 1.0;       // recalled / true_heavies
  double precision = 1.0;    // fraction of reports with f >= (phi-eps)*m
  double max_abs_err = 0;    // max |estimate - f| over reported items
  size_t memory_bytes = 0;
  double update_ns = 0;      // mean wall-clock per update (ingest+flush)
  uint64_t scored_items = 0; // stream suffix scored (== stream size
                             // unless the summary is windowed)
  bool windowed = false;     // summary was a windowed:<algo> container
  uint64_t window_size = 0;  // EFFECTIVE window geometry (post-rounding/
  uint64_t window_buckets = 0;  // defaulting), from the summary's Options
  std::vector<ItemEstimate> report;   // HeavyHitters(phi), sorted
  std::vector<uint64_t> report_exact; // exact f(x) per report entry
};

/// Scores `report` (already filled into `r.report`) against the exact
/// counts of `stream` (for a windowed summary: the covered suffix);
/// fills the recall/precision/error fields.
inline void ScoreSummaryReport(SummaryRunResult& r,
                               std::span<const uint64_t> stream,
                               double phi, double epsilon) {
  r.scored_items = stream.size();
  ExactCounter exact;
  for (const uint64_t x : stream) exact.Insert(x);
  const double m = static_cast<double>(stream.size());
  const auto truth =
      exact.HeavyHitters(static_cast<uint64_t>(phi * m) + 1);

  r.true_heavies = truth.size();
  r.recalled = 0;
  for (const auto& t : truth) {
    for (const auto& rep : r.report) {
      if (rep.item == t.item) {
        ++r.recalled;
        break;
      }
    }
  }
  r.recall = truth.empty() ? 1.0
                           : static_cast<double>(r.recalled) /
                                 static_cast<double>(truth.size());
  size_t precise = 0;
  r.report_exact.clear();
  r.report_exact.reserve(r.report.size());
  r.max_abs_err = 0;
  for (const auto& rep : r.report) {
    const uint64_t f = exact.Count(rep.item);
    r.report_exact.push_back(f);
    if (static_cast<double>(f) >= (phi - epsilon) * m - 1.0) {
      ++precise;
    }
    r.max_abs_err = std::max(
        r.max_abs_err, std::abs(rep.estimate - static_cast<double>(f)));
  }
  r.precision = r.report.empty()
                    ? 1.0
                    : static_cast<double>(precise) /
                          static_cast<double>(r.report.size());
}

/// The suffix of `stream` a summary's report answers for: the covered
/// window for a `windowed:<algo>` container (sets r.windowed and the
/// effective geometry), the whole stream otherwise.  Uses only the
/// generic Summary surface (CoveredItems/Options), so the harness does
/// not depend on window headers.
inline std::span<const uint64_t> ScoringSpan(
    SummaryRunResult& r, const Summary& summary,
    const std::vector<uint64_t>& stream) {
  if (!IsWindowedSummaryName(summary.Name())) {
    return stream;
  }
  r.windowed = true;
  const SummaryOptions options = summary.Options();
  r.window_size = options.window_size;
  r.window_buckets = options.window_buckets;
  const uint64_t covered =
      std::min<uint64_t>(summary.CoveredItems(), stream.size());
  return {stream.data() + (stream.size() - covered),
          static_cast<size_t>(covered)};
}

/// `keep`, when non-null, receives the driven summary after scoring — for
/// callers that want to do more with the state than read the report (the
/// CLI's `run --save=FILE` snapshots it).
inline SummaryRunResult RunRegisteredSummary(
    const std::string& name, const SummaryOptions& options,
    const std::vector<uint64_t>& stream, double phi,
    std::unique_ptr<Summary>* keep = nullptr) {
  SummaryRunResult r;
  Status status;
  auto summary = MakeSummary(name, options, &status);
  if (summary == nullptr) {
    r.error = status.ToString();
    return r;
  }
  r.ok = true;

  const auto start = std::chrono::steady_clock::now();
  summary->UpdateBatch(stream);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  r.update_ns =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
              .count()) /
      static_cast<double>(stream.empty() ? 1 : stream.size());

  r.report = summary->HeavyHitters(phi);
  ScoreSummaryReport(r, ScoringSpan(r, *summary, stream), phi,
                     options.epsilon);
  r.memory_bytes = summary->MemoryUsageBytes();
  if (keep != nullptr) *keep = std::move(summary);
  return r;
}

/// The same contract run driven through the ShardedEngine: ingest via the
/// per-shard rings, flush, and score the merged report.  `update_ns`
/// covers ingest + flush, i.e. end-to-end wall clock per item.
inline SummaryRunResult RunShardedSummary(
    const std::string& name, const SummaryOptions& options,
    const std::vector<uint64_t>& stream, double phi, size_t num_shards,
    size_t num_threads = 0,
    std::unique_ptr<ShardedEngine>* keep = nullptr) {
  SummaryRunResult r;
  ShardedEngineOptions engine_options;
  engine_options.algorithm = name;
  engine_options.summary = options;
  engine_options.num_shards = num_shards;
  engine_options.num_threads = num_threads;
  Status status;
  auto engine = ShardedEngine::Create(engine_options, &status);
  if (engine == nullptr) {
    r.error = status.ToString();
    return r;
  }
  r.ok = true;

  const auto start = std::chrono::steady_clock::now();
  engine->UpdateBatch(stream);
  engine->Flush();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  r.update_ns =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
              .count()) /
      static_cast<double>(stream.empty() ? 1 : stream.size());

  r.report = engine->HeavyHitters(phi);
  // MergedView is the engine-wide summary the report came from; for a
  // windowed engine it is the merged ring, whose coverage is the global
  // window (the shard rings rotate on the global clock).
  ScoreSummaryReport(r, ScoringSpan(r, engine->MergedView(), stream), phi,
                     options.epsilon);
  r.memory_bytes = engine->MemoryUsageBytes();
  if (keep != nullptr) *keep = std::move(engine);
  return r;
}

/// The same contract run ingested by `num_producers` CONCURRENT producer
/// threads through the engine's K x P ring grid: the stream is split into
/// contiguous chunks, each chunk is fed by its own RegisterProducer
/// handle on its own thread, and the merged report is scored exactly like
/// the single-producer paths (the multiset reaching each shard is
/// identical, so every structure's (eps, phi) contract must survive the
/// interleaving).  `update_ns` covers spawn + ingest + join + flush.
/// Refuses windowed algorithms: with racing producers the window covers a
/// nondeterministic interleaving, so no deterministic suffix can be
/// scored (tests/windowed_conformance_test.cc drives that case with
/// coordinated producers instead).
inline SummaryRunResult RunMultiProducerSummary(
    const std::string& name, const SummaryOptions& options,
    const std::vector<uint64_t>& stream, double phi, size_t num_shards,
    size_t num_producers, size_t num_threads = 0,
    std::unique_ptr<ShardedEngine>* keep = nullptr) {
  SummaryRunResult r;
  if (num_producers == 0) {
    r.error = "num_producers must be >= 1";
    return r;
  }
  if (IsWindowedSummaryName(name)) {
    r.error = "windowed summaries have no deterministic multi-producer "
              "scoring span";
    return r;
  }
  ShardedEngineOptions engine_options;
  engine_options.algorithm = name;
  engine_options.summary = options;
  engine_options.num_shards = num_shards;
  engine_options.num_threads = num_threads;
  engine_options.max_producers = num_producers + 1;
  Status status;
  auto engine = ShardedEngine::Create(engine_options, &status);
  if (engine == nullptr) {
    r.error = status.ToString();
    return r;
  }

  const auto start = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> threads;
    threads.reserve(num_producers);
    const size_t base = stream.size() / num_producers;
    const size_t extra = stream.size() % num_producers;
    size_t first = 0;
    for (size_t p = 0; p < num_producers; ++p) {
      const size_t count = base + (p < extra ? 1 : 0);
      auto producer = engine->RegisterProducer(&status);
      if (producer == nullptr) {
        for (auto& t : threads) t.join();
        r.error = status.ToString();
        return r;
      }
      std::span<const uint64_t> chunk{stream.data() + first, count};
      threads.emplace_back(
          [chunk, producer = std::move(producer)]() mutable {
            producer->UpdateBatch(chunk);
            producer.reset();  // release the slot on the owning thread
          });
      first += count;
    }
    for (auto& t : threads) t.join();
  }
  engine->Flush();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  r.ok = true;
  r.update_ns =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
              .count()) /
      static_cast<double>(stream.empty() ? 1 : stream.size());

  r.report = engine->HeavyHitters(phi);
  ScoreSummaryReport(r, stream, phi, options.epsilon);
  r.memory_bytes = engine->MemoryUsageBytes();
  if (keep != nullptr) *keep = std::move(engine);
  return r;
}

}  // namespace l1hh

#endif  // L1HH_SUMMARY_EVALUATION_H_
