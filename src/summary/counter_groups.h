// Differential counter groups: the [DLOM02] structure behind O(1)
// worst-case Misra–Gries and Space-Saving updates.
//
// Entries with equal count live in one doubly-linked group; groups are
// linked in strictly increasing count order.  "Decrement all counters"
// (the Misra–Gries eviction step) is a single offset bump: effective counts
// are (group count - offset), and the at-most-one group that reaches zero
// becomes a pool of reusable ("zombie") slots consumed one per insertion —
// this is what makes the update cost O(1) worst case, not just amortized,
// exactly as the paper claims for its algorithms (Section 3.1 and the
// reference to Section 3.3 of [DLOM02] in the proof of Theorem 4).
#ifndef L1HH_SUMMARY_COUNTER_GROUPS_H_
#define L1HH_SUMMARY_COUNTER_GROUPS_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "util/bit_stream.h"
#include "util/bit_util.h"

namespace l1hh {

class CounterGroups {
 public:
  explicit CounterGroups(size_t capacity);

  size_t capacity() const { return capacity_; }
  /// Number of entries with effective count >= 1.
  size_t live_size() const { return live_; }
  bool Full() const { return live_ >= capacity_; }

  /// Returns the entry handle for `key` or -1.  Zombie entries (effective
  /// count 0) report -1 and are garbage-collected on contact.
  int Find(uint64_t key);

  /// Effective count of a live entry handle.
  uint64_t CountOf(int entry) const {
    return groups_[entries_[entry].group].count - offset_;
  }

  /// Effective count of `key` (0 if absent or zombie).  Const lookup.
  uint64_t Count(uint64_t key) const;

  /// entry must be live; adds one to its count.  O(1).
  void Increment(int entry);

  /// Inserts `key` with effective count 1.  Requires !Full().  O(1): takes a
  /// slot from the free list or cannibalizes one zombie.
  /// Returns the new entry handle.
  int InsertNew(uint64_t key);

  /// Inserts `key` with an arbitrary effective count >= 1.  Requires
  /// !Full().  O(#groups) — used by merge operations, not the hot path.
  int InsertWithCount(uint64_t key, uint64_t count);

  /// Misra–Gries step: subtract one from every counter.  Requires Full()
  /// (the only situation the algorithm calls it in).  O(1).
  void DecrementAll();

  /// Space-Saving step: requires Full(); replaces one minimum-count entry's
  /// key with `key` and increments it.  Returns the replaced minimum count.
  uint64_t ReplaceMin(uint64_t key);

  /// Smallest effective count among live entries (0 if empty).
  uint64_t MinCount() const;
  /// Largest effective count among live entries (0 if empty).
  uint64_t MaxCount() const;

  /// Total decrements applied via DecrementAll (the Misra–Gries
  /// undercount bound).
  uint64_t decrement_count() const { return offset_; }

  /// Visits every live (key, effective count) pair, unordered.
  void ForEach(const std::function<void(uint64_t, uint64_t)>& fn) const;

  /// Paper-style accounting: per slot, `key_bits` for the id plus the
  /// gamma cost of its current value (empty slots cost 1 bit), plus the
  /// offset register.
  size_t SpaceBits(int key_bits) const;

  void Serialize(BitWriter& out) const;
  void Deserialize(BitReader& in);

 private:
  struct Entry {
    uint64_t key = 0;
    int group = -1;
    int prev = -1;
    int next = -1;
  };
  struct Group {
    uint64_t count = 0;  // absolute; effective = count - offset_
    int head = -1;
    int prev = -1;
    int next = -1;
    int size = 0;
  };

  bool IsZombieGroup(int g) const {
    return g >= 0 && groups_[g].count <= offset_;
  }

  int AllocGroup(uint64_t count);
  void FreeGroup(int g);
  int AllocEntrySlot();  // from free list or zombie pool; erases old key
  void UnlinkEntryFromGroup(int e);
  void LinkEntryToGroup(int e, int g);
  /// Moves entry e from its group to the group with count (current + 1).
  void PromoteEntry(int e);
  /// Inserts a fresh group holding `count` immediately after group `after`
  /// (-1 = at head).
  int InsertGroupAfter(int after, uint64_t count);

  size_t capacity_;
  size_t live_ = 0;
  uint64_t offset_ = 0;
  int head_group_ = -1;
  std::vector<Entry> entries_;
  std::vector<Group> groups_;
  std::vector<int> free_entries_;
  std::vector<int> free_groups_;
  std::unordered_map<uint64_t, int> index_;
};

}  // namespace l1hh

#endif  // L1HH_SUMMARY_COUNTER_GROUPS_H_
