#include "summary/count_min_sketch.h"

#include <algorithm>
#include <cmath>

#include "util/bit_util.h"

namespace l1hh {

CountMinSketch::CountMinSketch(const Options& options, uint64_t seed)
    : width_(RoundUpPowerOfTwo(std::max<size_t>(options.width, 2))),
      conservative_(options.conservative) {
  Rng rng(seed);
  const int log2w = CeilLog2(width_);
  hashes_.reserve(options.depth);
  for (size_t i = 0; i < std::max<size_t>(options.depth, 1); ++i) {
    hashes_.push_back(MultiplyShiftHash::Draw(rng, log2w));
  }
  table_.assign(hashes_.size() * width_, 0);
}

CountMinSketch CountMinSketch::ForError(double epsilon, double delta,
                                        uint64_t seed, bool conservative) {
  Options opt;
  opt.width = static_cast<size_t>(std::ceil(std::exp(1.0) / epsilon));
  opt.depth = static_cast<size_t>(std::ceil(std::log(1.0 / delta)));
  opt.conservative = conservative;
  return CountMinSketch(opt, seed);
}

void CountMinSketch::Insert(uint64_t item, uint64_t count) {
  processed_ += count;
  if (!conservative_) {
    for (size_t r = 0; r < hashes_.size(); ++r) {
      table_[Cell(r, item)] += count;
    }
    return;
  }
  // Conservative update: raise only cells below the new lower bound.
  uint64_t current = Estimate(item);
  const uint64_t target = current + count;
  for (size_t r = 0; r < hashes_.size(); ++r) {
    uint64_t& cell = table_[Cell(r, item)];
    cell = std::max(cell, target);
  }
}

uint64_t CountMinSketch::InsertAndEstimate(uint64_t item) {
  ++processed_;
  if (conservative_) {
    // Conservative update raises every row to the new lower bound, which
    // is also the post-insert estimate.
    const uint64_t target = Estimate(item) + 1;
    for (size_t r = 0; r < hashes_.size(); ++r) {
      uint64_t& cell = table_[Cell(r, item)];
      cell = std::max(cell, target);
    }
    return target;
  }
  uint64_t best = UINT64_MAX;
  for (size_t r = 0; r < hashes_.size(); ++r) {
    uint64_t& cell = table_[Cell(r, item)];
    ++cell;
    best = std::min(best, cell);
  }
  return best;
}

uint64_t CountMinSketch::Estimate(uint64_t item) const {
  uint64_t best = UINT64_MAX;
  for (size_t r = 0; r < hashes_.size(); ++r) {
    best = std::min(best, table_[Cell(r, item)]);
  }
  return best == UINT64_MAX ? 0 : best;
}

bool CountMinSketch::Compatible(const CountMinSketch& other) const {
  if (width_ != other.width_ || hashes_.size() != other.hashes_.size() ||
      conservative_ != other.conservative_) {
    return false;
  }
  for (size_t i = 0; i < hashes_.size(); ++i) {
    if (!(hashes_[i] == other.hashes_[i])) return false;
  }
  return true;
}

CountMinSketch CountMinSketch::Merge(const CountMinSketch& a,
                                     const CountMinSketch& b) {
  CountMinSketch merged = a;
  if (!a.Compatible(b)) return merged;  // caller bug; keep a's view
  for (size_t i = 0; i < merged.table_.size(); ++i) {
    merged.table_[i] += b.table_[i];
  }
  merged.processed_ += b.processed_;
  return merged;
}

size_t CountMinSketch::SpaceBits() const {
  size_t bits = 0;
  for (const uint64_t cell : table_) {
    bits += cell == 0 ? 1 : static_cast<size_t>(CounterBits(cell));
  }
  for (const auto& h : hashes_) bits += static_cast<size_t>(h.SeedBits());
  return bits + BitWidth(processed_);
}

CountMinHeavyHitters::CountMinHeavyHitters(double epsilon, double phi,
                                           double delta, uint64_t seed)
    : phi_(phi),
      epsilon_(epsilon),
      cms_(CountMinSketch::ForError(epsilon / 2, delta, seed,
                                    /*conservative=*/false)) {}

void CountMinHeavyHitters::Insert(uint64_t item) {
  const uint64_t est = cms_.InsertAndEstimate(item);
  const uint64_t m_so_far = cms_.items_processed();
  if (static_cast<double>(est) >=
      (phi_ - epsilon_ / 2) * static_cast<double>(m_so_far)) {
    candidates_[item] = est;
    // Prune stale candidates occasionally so the set stays O(1/phi)-ish.
    if (candidates_.size() > 4.0 / phi_) {
      const double threshold =
          (phi_ - epsilon_) * static_cast<double>(m_so_far);
      for (auto it = candidates_.begin(); it != candidates_.end();) {
        if (static_cast<double>(cms_.Estimate(it->first)) < threshold) {
          it = candidates_.erase(it);
        } else {
          ++it;
        }
      }
    }
  }
}

void CountMinHeavyHitters::InsertBatch(const uint64_t* items, size_t n) {
  for (size_t i = 0; i < n; ++i) Insert(items[i]);
}

void CountMinHeavyHitters::InsertColumn(const uint64_t* items, size_t n) {
  // The visitor runs after item i's increments land and before item
  // i+1's, so the candidate checks (and the occasional prune, which
  // re-queries the sketch) see exactly the table state the scalar Insert
  // loop would — bit-for-bit equal snapshots either way.
  cms_.InsertColumn(items, n, [&](size_t i, uint64_t est) {
    const uint64_t m_so_far = cms_.items_processed();
    if (static_cast<double>(est) >=
        (phi_ - epsilon_ / 2) * static_cast<double>(m_so_far)) {
      candidates_[items[i]] = est;
      if (candidates_.size() > 4.0 / phi_) {
        const double threshold =
            (phi_ - epsilon_) * static_cast<double>(m_so_far);
        for (auto it = candidates_.begin(); it != candidates_.end();) {
          if (static_cast<double>(cms_.Estimate(it->first)) < threshold) {
            it = candidates_.erase(it);
          } else {
            ++it;
          }
        }
      }
    }
  });
}

bool CountMinHeavyHitters::Compatible(
    const CountMinHeavyHitters& other) const {
  return phi_ == other.phi_ && epsilon_ == other.epsilon_ &&
         cms_.Compatible(other.cms_);
}

bool CountMinHeavyHitters::MergeFrom(const CountMinHeavyHitters& other) {
  if (!Compatible(other)) return false;
  cms_ = CountMinSketch::Merge(cms_, other.cms_);
  // Stored estimates are stale after the sum, but Report() re-queries the
  // merged sketch, so the union only needs the candidate ids.
  for (const auto& [item, est] : other.candidates_) {
    candidates_.emplace(item, est);
  }
  return true;
}

std::vector<CountMinHeavyHitters::Entry> CountMinHeavyHitters::Report()
    const {
  const double threshold = (phi_ - epsilon_ / 2) *
                           static_cast<double>(cms_.items_processed());
  std::vector<Entry> out;
  for (const auto& [item, est] : candidates_) {
    (void)est;
    const uint64_t fresh = cms_.Estimate(item);
    if (static_cast<double>(fresh) >= threshold) {
      out.push_back({item, fresh});
    }
  }
  std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
    return a.count > b.count || (a.count == b.count && a.item < b.item);
  });
  return out;
}

size_t CountMinHeavyHitters::SpaceBits() const {
  return cms_.SpaceBits() + candidates_.size() * (64 + 32);
}

void CountMinHeavyHitters::Serialize(BitWriter& out) const {
  cms_.Serialize(out);
  out.WriteCounter(candidates_.size());
  for (const auto& [item, est] : candidates_) {
    out.WriteU64(item);
    out.WriteCounter(est);
  }
}

bool CountMinHeavyHitters::DeserializeFrom(BitReader& in) {
  CountMinSketch loaded = CountMinSketch::Deserialize(in);
  if (in.overflow() || !loaded.Compatible(cms_)) return false;
  const uint64_t entries = in.CheckedCount(in.ReadCounter());
  std::unordered_map<uint64_t, uint64_t> candidates;
  // Each entry costs >= 65 bits, so cap the pre-allocation by what the
  // wire can actually hold (CheckedCount's bound is per-bit, loose).
  candidates.reserve(
      std::min<uint64_t>(entries, in.remaining_bits() / 65 + 1));
  for (uint64_t i = 0; i < entries && !in.overflow(); ++i) {
    const uint64_t item = in.ReadU64();
    candidates[item] = in.ReadCounter();
  }
  if (in.overflow()) return false;
  cms_ = std::move(loaded);
  candidates_ = std::move(candidates);
  return true;
}

void CountMinSketch::Serialize(BitWriter& out) const {
  out.WriteGamma(width_);
  out.WriteGamma(hashes_.size());
  out.WriteBool(conservative_);
  out.WriteCounter(processed_);
  for (const auto& h : hashes_) h.Serialize(out);
  for (const uint64_t cell : table_) out.WriteCounter(cell);
}

CountMinSketch CountMinSketch::Deserialize(BitReader& in) {
  Options opt;
  opt.width = in.ReadGamma();
  opt.depth = in.ReadGamma();
  // Every cell costs >= 1 bit on the wire, so a plausible message has at
  // least width * depth bits left; hostile dimensions must not drive the
  // table allocation.  Divide instead of multiplying — the product of two
  // wire-controlled u64s can wrap past the check.
  const uint64_t cm_budget = in.remaining_bits() + 64;
  if (opt.width > cm_budget || opt.depth > cm_budget ||
      opt.width > cm_budget / std::max<size_t>(opt.depth, 1) ||
      in.CheckedCount(opt.width * std::max<size_t>(opt.depth, 1)) == 0) {
    opt.width = 2;
    opt.depth = 1;
  }
  opt.conservative = in.ReadBool();
  CountMinSketch cms(opt, /*seed=*/0);
  cms.processed_ = in.ReadCounter();
  for (size_t i = 0; i < cms.hashes_.size(); ++i) {
    cms.hashes_[i] = MultiplyShiftHash::Deserialize(in);
  }
  for (auto& cell : cms.table_) cell = in.ReadCounter();
  return cms;
}

}  // namespace l1hh
