#include "summary/count_sketch.h"

#include <algorithm>
#include <cmath>

#include "util/bit_util.h"

namespace l1hh {

CountSketch::CountSketch(size_t width, size_t depth, uint64_t seed)
    : width_(RoundUpPowerOfTwo(std::max<size_t>(width, 2))) {
  Rng rng(seed);
  const int log2w = CeilLog2(width_);
  const size_t d = std::max<size_t>(depth, 1) | 1;  // odd depth for a median
  index_hashes_.reserve(d);
  sign_hashes_.reserve(d);
  for (size_t i = 0; i < d; ++i) {
    index_hashes_.push_back(MultiplyShiftHash::Draw(rng, log2w));
    sign_hashes_.push_back(MultiplyShiftHash::Draw(rng, 1));
  }
  table_.assign(d * width_, 0);
}

CountSketch CountSketch::ForError(double epsilon, double delta,
                                  uint64_t seed) {
  const auto width = static_cast<size_t>(std::ceil(3.0 / (epsilon * epsilon)));
  const auto depth =
      static_cast<size_t>(std::ceil(4.0 * std::log(1.0 / delta))) | 1;
  return CountSketch(width, depth, seed);
}

void CountSketch::Insert(uint64_t item, int64_t count) {
  processed_ += static_cast<uint64_t>(count > 0 ? count : -count);
  for (size_t r = 0; r < index_hashes_.size(); ++r) {
    table_[Cell(r, item)] += Sign(r, item) * count;
  }
}

int64_t CountSketch::Estimate(uint64_t item) const {
  std::vector<int64_t> rows;
  rows.reserve(index_hashes_.size());
  for (size_t r = 0; r < index_hashes_.size(); ++r) {
    rows.push_back(Sign(r, item) * table_[Cell(r, item)]);
  }
  const size_t mid = rows.size() / 2;
  std::nth_element(rows.begin(), rows.begin() + mid, rows.end());
  return rows[mid];
}

bool CountSketch::Compatible(const CountSketch& other) const {
  if (width_ != other.width_ ||
      index_hashes_.size() != other.index_hashes_.size()) {
    return false;
  }
  for (size_t i = 0; i < index_hashes_.size(); ++i) {
    if (!(index_hashes_[i] == other.index_hashes_[i])) return false;
    if (!(sign_hashes_[i] == other.sign_hashes_[i])) return false;
  }
  return true;
}

CountSketch CountSketch::Merge(const CountSketch& a, const CountSketch& b) {
  CountSketch merged = a;
  if (!a.Compatible(b)) return merged;
  for (size_t i = 0; i < merged.table_.size(); ++i) {
    merged.table_[i] += b.table_[i];
  }
  merged.processed_ += b.processed_;
  return merged;
}

size_t CountSketch::SpaceBits() const {
  size_t bits = 0;
  for (const int64_t cell : table_) {
    const uint64_t mag = static_cast<uint64_t>(cell >= 0 ? cell : -cell);
    bits += 1 + (mag == 0 ? 1 : static_cast<size_t>(CounterBits(mag)));
  }
  for (const auto& h : index_hashes_) bits += h.SeedBits();
  for (const auto& h : sign_hashes_) bits += h.SeedBits();
  return bits + BitWidth(processed_);
}

void CountSketch::Serialize(BitWriter& out) const {
  out.WriteGamma(width_);
  out.WriteGamma(index_hashes_.size());
  out.WriteCounter(processed_);
  for (const auto& h : index_hashes_) h.Serialize(out);
  for (const auto& h : sign_hashes_) h.Serialize(out);
  for (const int64_t cell : table_) {
    out.WriteBool(cell < 0);
    out.WriteCounter(static_cast<uint64_t>(cell >= 0 ? cell : -cell));
  }
}

CountSketch CountSketch::Deserialize(BitReader& in) {
  size_t width = in.ReadGamma();
  size_t depth = in.ReadGamma();
  // Every cell costs >= 2 bits on the wire; hostile dimensions must not
  // drive the table allocation.  Divide instead of multiplying — the
  // product of two wire-controlled u64s can wrap past the check.
  const uint64_t cs_budget = in.remaining_bits() + 64;
  if (width > cs_budget || depth > cs_budget ||
      width > cs_budget / std::max<size_t>(depth, 1) ||
      in.CheckedCount(width * std::max<size_t>(depth, 1)) == 0) {
    width = 2;
    depth = 1;
  }
  CountSketch cs(width, depth, /*seed=*/0);
  cs.processed_ = in.ReadCounter();
  for (auto& h : cs.index_hashes_) h = MultiplyShiftHash::Deserialize(in);
  for (auto& h : cs.sign_hashes_) h = MultiplyShiftHash::Deserialize(in);
  for (auto& cell : cs.table_) {
    const bool neg = in.ReadBool();
    const auto mag = static_cast<int64_t>(in.ReadCounter());
    cell = neg ? -mag : mag;
  }
  return cs;
}

}  // namespace l1hh
