#include "summary/lossy_counting.h"

#include <algorithm>
#include <cmath>

#include "util/bit_util.h"

namespace l1hh {

LossyCounting::LossyCounting(double epsilon, int key_bits)
    : epsilon_(epsilon),
      key_bits_(key_bits),
      bucket_width_(static_cast<uint64_t>(std::ceil(1.0 / epsilon))) {}

void LossyCounting::Insert(uint64_t item) {
  ++processed_;
  auto it = table_.find(item);
  if (it != table_.end()) {
    max_count_ = std::max(max_count_, ++it->second.first);
  } else {
    table_.emplace(item, std::make_pair(uint64_t{1}, current_bucket_ - 1));
    peak_tracked_ = std::max(peak_tracked_, table_.size());
  }
  if (processed_ % bucket_width_ == 0) {
    PruneBucket();
    ++current_bucket_;
  }
}

void LossyCounting::PruneBucket() {
  for (auto it = table_.begin(); it != table_.end();) {
    if (it->second.first + it->second.second <= current_bucket_) {
      it = table_.erase(it);
    } else {
      ++it;
    }
  }
}

uint64_t LossyCounting::Estimate(uint64_t item) const {
  const auto it = table_.find(item);
  return it == table_.end() ? 0 : it->second.first;
}

std::vector<LossyCounting::Entry> LossyCounting::Entries() const {
  std::vector<Entry> out;
  out.reserve(table_.size());
  for (const auto& [item, cd] : table_) {
    out.push_back({item, cd.first, cd.second});
  }
  std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
    return a.count > b.count || (a.count == b.count && a.item < b.item);
  });
  return out;
}

std::vector<LossyCounting::Entry> LossyCounting::EntriesAbove(
    uint64_t threshold) const {
  std::vector<Entry> out;
  for (const auto& [item, cd] : table_) {
    if (cd.first + cd.second >= threshold) {
      out.push_back({item, cd.first, cd.second});
    }
  }
  std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
    return a.count > b.count || (a.count == b.count && a.item < b.item);
  });
  return out;
}

size_t LossyCounting::SpaceBits() const {
  // Capacity at the fullest moment: peak entry count, each entry holding a
  // key, a count (up to the largest observed) and a bucket tag.
  const size_t per_entry = static_cast<size_t>(key_bits_) +
                           BitWidth(max_count_) +
                           BitWidth(current_bucket_);
  return BitWidth(processed_) + BitWidth(current_bucket_) +
         peak_tracked_ * per_entry;
}

void LossyCounting::Serialize(BitWriter& out) const {
  out.WriteDouble(epsilon_);
  out.WriteBits(static_cast<uint64_t>(key_bits_), 8);
  out.WriteCounter(processed_);
  out.WriteCounter(current_bucket_);
  // Space accounting travels too: SpaceBits() charges the table's peak
  // occupancy and widest counter, which the surviving entries alone
  // cannot reconstruct.
  out.WriteCounter(peak_tracked_);
  out.WriteCounter(max_count_);
  out.WriteGamma(table_.size() + 1);
  for (const auto& [item, cd] : table_) {
    out.WriteU64(item);
    out.WriteCounter(cd.first);
    out.WriteCounter(cd.second);
  }
}

LossyCounting LossyCounting::Deserialize(BitReader& in) {
  double epsilon = in.ReadDouble();
  // A hostile epsilon (0, NaN, negative) would make the constructor's
  // ceil(1/eps) -> integer cast undefined; clamp to the valid domain.
  if (!(epsilon > 1e-9 && epsilon <= 1.0)) epsilon = 0.01;
  const int key_bits = static_cast<int>(in.ReadBits(8));
  LossyCounting lc(epsilon, key_bits);
  lc.processed_ = in.ReadCounter();
  lc.current_bucket_ = in.ReadCounter();
  lc.peak_tracked_ = static_cast<size_t>(in.ReadCounter());
  lc.max_count_ = in.ReadCounter();
  const size_t n = in.CheckedCount(in.ReadGamma() - 1);
  for (size_t i = 0; i < n; ++i) {
    const uint64_t item = in.ReadU64();
    const uint64_t count = in.ReadCounter();
    const uint64_t delta = in.ReadCounter();
    lc.table_.emplace(item, std::make_pair(count, delta));
  }
  lc.peak_tracked_ = std::max(lc.peak_tracked_, lc.table_.size());
  return lc;
}

}  // namespace l1hh
