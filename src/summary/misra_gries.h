// Misra–Gries frequent-items summary [MG82], rediscovered by [DLOM02] and
// [KSP03] — the paper's main deterministic baseline, using
// O(k (log n + log m)) bits with k counters, and also the inner structure
// of the paper's Algorithms 1 and 2.
//
// Deterministic guarantee with k counters over a stream of length m:
//     f(x) - m/(k+1) <= Estimate(x) <= f(x)          for every x,
// and every x with f(x) > m/(k+1) is present in the summary.
//
// Updates are O(1) *worst case* via the CounterGroups structure.
#ifndef L1HH_SUMMARY_MISRA_GRIES_H_
#define L1HH_SUMMARY_MISRA_GRIES_H_

#include <cstdint>
#include <vector>

#include "summary/counter_groups.h"
#include "util/bit_stream.h"

namespace l1hh {

class MisraGries {
 public:
  struct Entry {
    uint64_t item;
    uint64_t count;
  };

  /// `k`: number of counters (table length in the paper's pseudocode).
  /// `key_bits`: bits charged per stored id in SpaceBits() (log n, or the
  /// hashed-universe width when used inside Algorithm 1).
  explicit MisraGries(size_t k, int key_bits = 64);

  void Insert(uint64_t item);

  /// Lower-bound estimate of item's frequency (0 if not tracked).
  uint64_t Estimate(uint64_t item) const { return groups_.Count(item); }

  /// Upper bound on f(x) - Estimate(x), i.e. the number of global
  /// decrements so far (<= m / (k+1)).
  uint64_t ErrorBound() const { return groups_.decrement_count(); }

  /// All tracked items with their counts, sorted by count descending.
  std::vector<Entry> Entries() const;

  /// Items with count >= threshold.
  std::vector<Entry> EntriesAbove(uint64_t threshold) const;

  uint64_t items_processed() const { return processed_; }
  size_t k() const { return groups_.capacity(); }
  size_t tracked() const { return groups_.live_size(); }

  /// Merge of two summaries (for distributed/test use): standard MG merge —
  /// sum counts, then subtract the (k+1)-st largest so at most k survive.
  /// The merged summary keeps the additive guarantee over the union stream.
  static MisraGries Merge(const MisraGries& a, const MisraGries& b);

  size_t SpaceBits() const {
    return groups_.SpaceBits(key_bits_) + BitWidth(processed_);
  }

  void Serialize(BitWriter& out) const;
  static MisraGries Deserialize(BitReader& in);

 private:
  CounterGroups groups_;
  int key_bits_;
  uint64_t processed_ = 0;
};

}  // namespace l1hh

#endif  // L1HH_SUMMARY_MISRA_GRIES_H_
