// Count-Min sketch [CM05] — the classic randomized baseline.
//
// depth d = ceil(ln(1/delta)) rows, width w = ceil(e/eps) counters:
//     f(x) <= Estimate(x) <= f(x) + eps * m    w.p. 1 - delta per query.
// Space Theta(eps^-1 log(1/delta) log m) bits plus a candidate heap when
// used for heavy hitters — the paper's point of comparison at
// O(eps^-1 (log n + log m)).  Supports conservative update, which only
// improves estimates on insertion-only streams.
#ifndef L1HH_SUMMARY_COUNT_MIN_SKETCH_H_
#define L1HH_SUMMARY_COUNT_MIN_SKETCH_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "hash/multiply_shift.h"
#include "util/bit_stream.h"
#include "util/random.h"

namespace l1hh {

class CountMinSketch {
 public:
  struct Options {
    size_t width = 256;            // counters per row (power of two)
    size_t depth = 4;              // rows
    bool conservative = false;     // conservative update variant
  };

  CountMinSketch(const Options& options, uint64_t seed);

  /// Sketch sized for additive error eps*m w.p. 1-delta per query.
  static CountMinSketch ForError(double epsilon, double delta, uint64_t seed,
                                 bool conservative = false);

  void Insert(uint64_t item, uint64_t count = 1);

  /// Insert one occurrence and return the post-insert estimate, hashing
  /// each row once instead of twice — the fused hot path behind
  /// CountMinHeavyHitters::Insert and the batched Summary adapter.
  uint64_t InsertAndEstimate(uint64_t item);

  /// Columnar ingest over a contiguous slice: tiles the column, runs one
  /// multiply-shift hash sweep per row per tile (independent per item, so
  /// the compiler vectorizes it), then applies the increments item by
  /// item in stream order, calling `visit(i, post_insert_estimate)` after
  /// item i lands.  At the moment visit(i, ...) runs, the table holds
  /// exactly the inserts for items 0..i — state-identical to calling
  /// InsertAndEstimate(items[i]) in a loop, which is what the
  /// conservative-update variant falls back to.
  template <typename Visitor>
  void InsertColumn(const uint64_t* items, size_t n, Visitor&& visit) {
    if (conservative_) {
      for (size_t i = 0; i < n; ++i) visit(i, InsertAndEstimate(items[i]));
      return;
    }
    constexpr size_t kTile = 256;
    const size_t depth = hashes_.size();
    column_cells_.resize(depth * kTile);
    for (size_t base = 0; base < n; base += kTile) {
      const size_t take = std::min(kTile, n - base);
      for (size_t r = 0; r < depth; ++r) {
        const MultiplyShiftHash h = hashes_[r];  // hoist a, b, shift
        const size_t row_base = r * width_;
        size_t* cells = column_cells_.data() + r * kTile;
        for (size_t i = 0; i < take; ++i) {
          cells[i] = row_base + static_cast<size_t>(h(items[base + i]));
        }
      }
      for (size_t i = 0; i < take; ++i) {
        ++processed_;
        uint64_t best = UINT64_MAX;
        for (size_t r = 0; r < depth; ++r) {
          uint64_t& cell = table_[column_cells_[r * kTile + i]];
          ++cell;
          best = std::min(best, cell);
        }
        visit(base + i, best);
      }
    }
  }

  /// Overestimate (min over rows).
  uint64_t Estimate(uint64_t item) const;

  /// True iff `other` was built with the same dimensions and hash seeds,
  /// i.e. the sketches are linearly mergeable.
  bool Compatible(const CountMinSketch& other) const;

  /// Cell-wise sum: the merged sketch equals one built over the
  /// concatenated streams (Count-Min is a linear sketch).  Requires
  /// Compatible(other).
  static CountMinSketch Merge(const CountMinSketch& a,
                              const CountMinSketch& b);

  uint64_t items_processed() const { return processed_; }
  size_t width() const { return width_; }
  size_t depth() const { return hashes_.size(); }

  /// Gamma-coded content cost plus hash seeds — honest about the log m
  /// factor every counter carries.
  size_t SpaceBits() const;

  void Serialize(BitWriter& out) const;
  static CountMinSketch Deserialize(BitReader& in);

 private:
  size_t Cell(size_t row, uint64_t item) const {
    return row * width_ + static_cast<size_t>(hashes_[row](item));
  }

  size_t width_;
  bool conservative_;
  uint64_t processed_ = 0;
  std::vector<MultiplyShiftHash> hashes_;
  std::vector<uint64_t> table_;  // depth x width
  std::vector<size_t> column_cells_;  // InsertColumn tile scratch
};

/// Count-Min as a full (eps, phi)-heavy-hitters baseline: the standard
/// construction that checks each inserted item's estimate against the
/// current threshold phi * (items so far) and keeps qualifying candidates.
/// On insertion-only streams estimates only grow, so every item with
/// f >= phi*m is caught at its last occurrence at the latest.
class CountMinHeavyHitters {
 public:
  struct Entry {
    uint64_t item;
    uint64_t count;  // CM overestimate
  };

  CountMinHeavyHitters(double epsilon, double phi, double delta,
                       uint64_t seed);

  void Insert(uint64_t item);

  /// Tight batch ingestion: one pass over `items` without per-item
  /// function-call overhead; state-identical to calling Insert in a loop.
  void InsertBatch(const uint64_t* items, size_t n);

  /// Columnar ingestion: the sketch's tiled hash-prepass path plus the
  /// same candidate bookkeeping Insert does, applied per item as its
  /// increment lands — state-identical to calling Insert in a loop (the
  /// columnar differential battery pins this).
  void InsertColumn(const uint64_t* items, size_t n);

  /// True iff `other` was built with the same (eps, phi) contract and a
  /// Compatible underlying sketch, i.e. MergeFrom(other) is sound.
  bool Compatible(const CountMinHeavyHitters& other) const;

  /// Absorbs a sibling built over a disjoint substream: cell-wise sketch
  /// sum (Count-Min is linear) plus candidate-set union; Report()
  /// re-estimates candidates against the merged sketch.  Returns false
  /// (and leaves this unchanged) when !Compatible(other).
  bool MergeFrom(const CountMinHeavyHitters& other);

  /// Candidates re-filtered at (phi - eps/2) * m, sorted by estimate.
  std::vector<Entry> Report() const;

  uint64_t Estimate(uint64_t item) const { return cms_.Estimate(item); }
  uint64_t items_processed() const { return cms_.items_processed(); }

  size_t SpaceBits() const;

  /// Snapshot support: the sketch plus the tracked candidate set.  The
  /// (eps, phi) contract is NOT written; DeserializeFrom restores into an
  /// instance constructed with the same parameters and returns false
  /// (leaving this unchanged) when the wire sketch's shape differs.
  void Serialize(BitWriter& out) const;
  bool DeserializeFrom(BitReader& in);

 private:
  double phi_;
  double epsilon_;
  CountMinSketch cms_;
  std::unordered_map<uint64_t, uint64_t> candidates_;  // item -> estimate
};

}  // namespace l1hh

#endif  // L1HH_SUMMARY_COUNT_MIN_SKETCH_H_
