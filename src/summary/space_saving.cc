#include "summary/space_saving.h"

#include <algorithm>

namespace l1hh {

SpaceSaving::SpaceSaving(size_t k, int key_bits)
    : groups_(k), key_bits_(key_bits) {}

void SpaceSaving::Insert(uint64_t item) {
  ++processed_;
  const int e = groups_.Find(item);
  if (e >= 0) {
    groups_.Increment(e);
    return;
  }
  if (!groups_.Full()) {
    groups_.InsertNew(item);
    return;
  }
  groups_.ReplaceMin(item);
}

std::vector<SpaceSaving::Entry> SpaceSaving::Entries() const {
  std::vector<Entry> out;
  out.reserve(groups_.live_size());
  groups_.ForEach(
      [&](uint64_t item, uint64_t count) { out.push_back({item, count}); });
  std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
    return a.count > b.count || (a.count == b.count && a.item < b.item);
  });
  return out;
}

std::vector<SpaceSaving::Entry> SpaceSaving::EntriesAbove(
    uint64_t threshold) const {
  std::vector<Entry> all = Entries();
  std::vector<Entry> out;
  for (const Entry& e : all) {
    if (e.count >= threshold) out.push_back(e);
  }
  return out;
}

SpaceSaving SpaceSaving::Merge(const SpaceSaving& a, const SpaceSaving& b) {
  std::vector<Entry> combined = a.Entries();
  for (const Entry& e : b.Entries()) {
    bool found = false;
    for (Entry& c : combined) {
      if (c.item == e.item) {
        c.count += e.count;
        found = true;
        break;
      }
    }
    // Items tracked by only one side get the other side's global
    // overestimate added, keeping the one-sided error invariant.
    if (!found) combined.push_back({e.item, e.count + a.MinCount()});
  }
  for (Entry& c : combined) {
    bool in_b = false;
    for (const Entry& e : b.Entries()) {
      if (e.item == c.item) in_b = true;
    }
    if (!in_b) c.count += b.MinCount();
  }
  std::sort(combined.begin(), combined.end(),
            [](const Entry& x, const Entry& y) { return x.count > y.count; });
  const size_t k = a.k();
  SpaceSaving merged(k, a.key_bits_);
  merged.processed_ = a.processed_ + b.processed_;
  for (size_t i = 0; i < combined.size() && i < k; ++i) {
    merged.groups_.InsertWithCount(combined[i].item, combined[i].count);
  }
  return merged;
}

void SpaceSaving::Serialize(BitWriter& out) const {
  out.WriteBits(static_cast<uint64_t>(key_bits_), 8);
  out.WriteCounter(processed_);
  groups_.Serialize(out);
}

SpaceSaving SpaceSaving::Deserialize(BitReader& in) {
  const int key_bits = static_cast<int>(in.ReadBits(8));
  const uint64_t processed = in.ReadCounter();
  SpaceSaving ss(1, key_bits);
  ss.groups_.Deserialize(in);
  ss.processed_ = processed;
  return ss;
}

}  // namespace l1hh
