// Exact frequency table: the ground truth every test and bench compares
// against.  Deliberately simple; memory is O(distinct items).
#ifndef L1HH_SUMMARY_EXACT_COUNTER_H_
#define L1HH_SUMMARY_EXACT_COUNTER_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace l1hh {

class ExactCounter {
 public:
  struct Entry {
    uint64_t item;
    uint64_t count;
  };

  void Insert(uint64_t item, uint64_t count = 1) {
    table_[item] += count;
    total_ += count;
  }

  uint64_t Count(uint64_t item) const {
    const auto it = table_.find(item);
    return it == table_.end() ? 0 : it->second;
  }

  uint64_t total() const { return total_; }
  size_t distinct() const { return table_.size(); }

  /// Items with count >= threshold, sorted by count descending.
  std::vector<Entry> HeavyHitters(uint64_t threshold) const;

  /// (item, count) of a maximum-frequency item; {0, 0} on empty.
  Entry Max() const;

  /// Minimum frequency over a universe [0, n): items absent from the table
  /// have frequency zero, matching the paper's epsilon-Minimum convention
  /// that unseen items are valid answers.
  Entry MinOverUniverse(uint64_t universe_size) const;

  std::vector<Entry> SortedByCountDesc() const;

 private:
  std::unordered_map<uint64_t, uint64_t> table_;
  uint64_t total_ = 0;
};

}  // namespace l1hh

#endif  // L1HH_SUMMARY_EXACT_COUNTER_H_
