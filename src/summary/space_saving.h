// Space-Saving / Stream-Summary [MAE05] — a randomized-free baseline the
// paper lists among prior work.  With k counters:
//     f(x) <= Estimate(x) <= f(x) + MinCount,   MinCount <= m/k,
// and every item with f(x) > m/k is tracked.  O(1) worst-case update via
// the shared CounterGroups structure.
#ifndef L1HH_SUMMARY_SPACE_SAVING_H_
#define L1HH_SUMMARY_SPACE_SAVING_H_

#include <cstdint>
#include <vector>

#include "summary/counter_groups.h"
#include "util/bit_stream.h"

namespace l1hh {

class SpaceSaving {
 public:
  struct Entry {
    uint64_t item;
    uint64_t count;  // overestimate
  };

  explicit SpaceSaving(size_t k, int key_bits = 64);

  void Insert(uint64_t item);

  /// Overestimate of the frequency (0 if not tracked).
  uint64_t Estimate(uint64_t item) const { return groups_.Count(item); }

  /// Current minimum counter = the global overestimation bound.
  uint64_t MinCount() const { return groups_.Full() ? groups_.MinCount() : 0; }

  std::vector<Entry> Entries() const;
  std::vector<Entry> EntriesAbove(uint64_t threshold) const;

  /// Distributed merge: estimates add (both overestimate), and the merged
  /// summary keeps the k largest, preserving
  /// f(x) <= Estimate(x) <= f(x) + err_a + err_b over the union stream.
  static SpaceSaving Merge(const SpaceSaving& a, const SpaceSaving& b);

  uint64_t items_processed() const { return processed_; }
  size_t k() const { return groups_.capacity(); }

  size_t SpaceBits() const {
    return groups_.SpaceBits(key_bits_) + BitWidth(processed_);
  }

  void Serialize(BitWriter& out) const;
  static SpaceSaving Deserialize(BitReader& in);

 private:
  CounterGroups groups_;
  int key_bits_;
  uint64_t processed_ = 0;
};

}  // namespace l1hh

#endif  // L1HH_SUMMARY_SPACE_SAVING_H_
