#include "summary/hashed_misra_gries.h"

#include <algorithm>

#include "util/bit_util.h"

namespace l1hh {

HashedMisraGries::HashedMisraGries(size_t counters, size_t top_ids,
                                   UniversalHash hash, int id_bits)
    : hash_(hash),
      mg_(counters, BitWidth(hash.range() - 1)),
      top_capacity_(top_ids),
      id_bits_(id_bits) {
  top_true_ids_.reserve(top_ids);
}

void HashedMisraGries::Insert(uint64_t item) {
  const uint64_t key = hash_(item);
  mg_.Insert(key);
  const uint64_t my_count = mg_.Estimate(key);
  if (my_count == 0) return;  // the insert decremented-all; order unchanged

  // Already tracked?  (Also refresh duplicates defensively.)
  for (const uint64_t id : top_true_ids_) {
    if (id == item) return;
  }
  if (top_true_ids_.size() < top_capacity_) {
    top_true_ids_.push_back(item);
    return;
  }
  // Replace the weakest tracked id if this item now outranks it (the
  // paper's Case 2: x enters the top-1/phi set, so some y left it).
  size_t weakest = 0;
  uint64_t weakest_count = UINT64_MAX;
  for (size_t i = 0; i < top_true_ids_.size(); ++i) {
    const uint64_t c = mg_.Estimate(hash_(top_true_ids_[i]));
    if (c < weakest_count) {
      weakest_count = c;
      weakest = i;
    }
  }
  if (my_count > weakest_count) {
    top_true_ids_[weakest] = item;
  }
}

std::vector<HashedMisraGries::Entry> HashedMisraGries::TopEntries() const {
  std::vector<Entry> out;
  out.reserve(top_true_ids_.size());
  for (const uint64_t id : top_true_ids_) {
    const uint64_t c = mg_.Estimate(hash_(id));
    if (c > 0) out.push_back({id, c});
  }
  std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
    return a.count > b.count || (a.count == b.count && a.item < b.item);
  });
  return out;
}

HashedMisraGries HashedMisraGries::Merge(const HashedMisraGries& a,
                                         const HashedMisraGries& b) {
  HashedMisraGries merged(1, a.top_capacity_, a.hash_, a.id_bits_);
  if (!(a.hash_ == b.hash_)) return a;  // incompatible; caller bug
  merged.mg_ = MisraGries::Merge(a.mg_, b.mg_);
  // Union of the tracked ids, ranked by merged T1 counts.
  std::vector<uint64_t> ids = a.top_true_ids_;
  for (const uint64_t id : b.top_true_ids_) {
    bool dup = false;
    for (const uint64_t seen : ids) {
      if (seen == id) dup = true;
    }
    if (!dup) ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end(), [&](uint64_t x, uint64_t y) {
    return merged.mg_.Estimate(merged.hash_(x)) >
           merged.mg_.Estimate(merged.hash_(y));
  });
  if (ids.size() > merged.top_capacity_) ids.resize(merged.top_capacity_);
  merged.top_true_ids_ = std::move(ids);
  return merged;
}

size_t HashedMisraGries::SpaceBits() const {
  // T1 (hashed keys + counts) + T2 (true ids) + the hash seed.
  return mg_.SpaceBits() +
         top_capacity_ * static_cast<size_t>(id_bits_) +
         static_cast<size_t>(hash_.SeedBits());
}

void HashedMisraGries::Serialize(BitWriter& out) const {
  hash_.Serialize(out);
  mg_.Serialize(out);
  out.WriteGamma(top_capacity_ + 1);
  out.WriteBits(static_cast<uint64_t>(id_bits_), 8);
  out.WriteGamma(top_true_ids_.size() + 1);
  for (const uint64_t id : top_true_ids_) out.WriteU64(id);
}

HashedMisraGries HashedMisraGries::Deserialize(BitReader& in) {
  const UniversalHash hash = UniversalHash::Deserialize(in);
  MisraGries mg = MisraGries::Deserialize(in);
  const size_t top_capacity = in.CheckedCount(in.ReadGamma() - 1);
  const int id_bits = static_cast<int>(in.ReadBits(8));
  HashedMisraGries out(1, top_capacity, hash, id_bits);
  out.mg_ = std::move(mg);
  const size_t n_ids = in.CheckedCount(in.ReadGamma() - 1);
  out.top_true_ids_.clear();
  for (size_t i = 0; i < n_ids; ++i) {
    out.top_true_ids_.push_back(in.ReadU64());
  }
  return out;
}

}  // namespace l1hh
