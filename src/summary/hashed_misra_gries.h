// The T1+T2 structure of the paper's Algorithm 1.
//
// T1 is a Misra–Gries table keyed by *hashed* ids: since the sampled stream
// has only l = O(eps^-2) items, hashing ids into [O(l^2 / delta)] keeps them
// collision-free (Lemma 2) while shrinking the per-slot id cost from log n
// to O(log(1/eps) + log(1/delta)) bits.  T2 stores the true ids of only the
// top ceil(1/phi) keys of T1 (log n bits each), kept consistent with T1 as
// values change — this is where the phi^-1 log n term of Theorem 1 comes
// from, and why the eps^-1-sized T1 does not pay log n per slot.
#ifndef L1HH_SUMMARY_HASHED_MISRA_GRIES_H_
#define L1HH_SUMMARY_HASHED_MISRA_GRIES_H_

#include <cstdint>
#include <vector>

#include "hash/universal_hash.h"
#include "summary/misra_gries.h"
#include "util/bit_stream.h"

namespace l1hh {

class HashedMisraGries {
 public:
  struct Entry {
    uint64_t item;   // true id (from T2)
    uint64_t count;  // value of its hashed key in T1
  };

  /// `counters`: T1 length (the paper's 1/eps).
  /// `top_ids`: T2 length (the paper's 1/phi).
  /// `hash`: universal hash mapping [n] -> [hash range]; drawn by caller.
  /// `id_bits`: log2(universe size), the space charge per T2 entry.
  HashedMisraGries(size_t counters, size_t top_ids, UniversalHash hash,
                   int id_bits);

  void Insert(uint64_t item);

  /// Count of the item's hashed key (may alias under collisions, which
  /// Lemma 2 makes improbable for sampled items).
  uint64_t EstimateByHash(uint64_t item) const {
    return mg_.Estimate(hash_(item));
  }

  /// The tracked top ids with their T1 counts, sorted by count descending.
  std::vector<Entry> TopEntries() const;

  /// Distributed merge: requires both sides to share the hash function
  /// (same Draw seed).  T1 merges like Misra-Gries; T2 keeps the top ids
  /// of the union ranked by merged counts.
  static HashedMisraGries Merge(const HashedMisraGries& a,
                                const HashedMisraGries& b);

  uint64_t items_processed() const { return mg_.items_processed(); }
  const UniversalHash& hash() const { return hash_; }
  const MisraGries& table() const { return mg_; }

  size_t SpaceBits() const;

  void Serialize(BitWriter& out) const;
  static HashedMisraGries Deserialize(BitReader& in);

 private:
  UniversalHash hash_;
  MisraGries mg_;                       // T1, keyed by hashed id
  size_t top_capacity_;                 // |T2|
  int id_bits_;
  std::vector<uint64_t> top_true_ids_;  // T2
};

}  // namespace l1hh

#endif  // L1HH_SUMMARY_HASHED_MISRA_GRIES_H_
