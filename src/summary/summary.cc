// Adapters giving every baseline structure in src/summary/ the unified
// Summary interface, plus the string-keyed registry.  The BdwSimple /
// BdwOptimal adapters live in core/summary_adapters.cc (registered via
// internal::RegisterCoreSummaries) so this layer does not include core
// headers.
#include "summary/summary.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_set>
#include <utility>

#include "hash/universal_hash.h"
#include "summary/count_min_sketch.h"
#include "summary/count_sketch.h"
#include "summary/exact_counter.h"
#include "summary/hashed_misra_gries.h"
#include "summary/lossy_counting.h"
#include "summary/misra_gries.h"
#include "summary/space_saving.h"
#include "summary/sticky_sampling.h"
#include "util/bit_util.h"
#include "util/random.h"

namespace l1hh {

namespace internal {
void RegisterCoreSummaries();  // defined in core/summary_adapters.cc
// Defined in window/sliding_window_summary.cc: builds the bucket-ring
// container around a mergeable inner structure.  Kept as a forward
// declaration so the summary layer does not include window headers.
std::unique_ptr<Summary> MakeWindowedSummary(std::string_view inner_name,
                                             const SummaryOptions& options,
                                             Status* status);
}

Status Summary::Merge(const Summary& other) {
  (void)other;
  return Status::FailedPrecondition(std::string(Name()) +
                                    " does not support Merge");
}

Status Summary::SaveTo(BitWriter& out) const {
  (void)out;
  return Status::FailedPrecondition(std::string(Name()) +
                                    " does not support snapshots");
}

Status Summary::LoadFrom(BitReader& in) {
  (void)in;
  return Status::FailedPrecondition(std::string(Name()) +
                                    " does not support snapshots");
}

namespace {

/// ceil(fraction * m), clamped to >= 1 so empty streams report nothing.
uint64_t CeilThreshold(double fraction, uint64_t m) {
  if (fraction <= 0.0 || m == 0) return 1;
  return std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(fraction * static_cast<double>(m))));
}

/// Bits to store one id from [0, n).
int KeyBits(uint64_t universe_size) {
  return BitWidth(std::max<uint64_t>(universe_size, 2) - 1);
}

template <typename Entry>
std::vector<ItemEstimate> ToItemEstimates(const std::vector<Entry>& entries) {
  std::vector<ItemEstimate> out;
  out.reserve(entries.size());
  for (const auto& e : entries) {
    out.push_back({e.item, static_cast<double>(e.count)});
  }
  SortByEstimateDesc(out);
  return out;
}

Status IncompatibleMerge(std::string_view name) {
  return Status::InvalidArgument("Merge requires another '" +
                                 std::string(name) +
                                 "' built with the same options and seed");
}

Status SnapshotShapeMismatch(std::string_view name) {
  return Status::Corruption(
      "'" + std::string(name) +
      "' snapshot payload does not match the shape implied by the header "
      "options");
}

// ---------------------------------------------------------------------------

class MisraGriesSummary : public Summary {
 public:
  explicit MisraGriesSummary(const SummaryOptions& o)
      : options_(o),
        epsilon_(o.epsilon),
        mg_(static_cast<size_t>(std::ceil(1.0 / o.epsilon)),
            KeyBits(o.universe_size)) {}

  std::string_view Name() const override { return "misra_gries"; }
  SummaryOptions Options() const override { return options_; }

  void Update(uint64_t item, uint64_t weight) override {
    for (uint64_t i = 0; i < weight; ++i) mg_.Insert(item);
  }

  void UpdateBatch(std::span<const uint64_t> items) override {
    for (const uint64_t x : items) mg_.Insert(x);
  }

  void UpdateColumn(const uint64_t* items, size_t n) override {
    for (size_t i = 0; i < n; ++i) mg_.Insert(items[i]);
  }

  double Estimate(uint64_t item) const override {
    return static_cast<double>(mg_.Estimate(item));
  }

  // Misra-Gries undercounts by <= m/(k+1) <= eps*m, so threshold at
  // (phi - eps)*m to keep every true phi-heavy item.
  std::vector<ItemEstimate> HeavyHitters(double phi) const override {
    return ToItemEstimates(mg_.EntriesAbove(
        CeilThreshold(phi - epsilon_, mg_.items_processed())));
  }

  uint64_t ItemsProcessed() const override { return mg_.items_processed(); }
  size_t MemoryUsageBytes() const override {
    return (mg_.SpaceBits() + 7) / 8;
  }

  bool SupportsMerge() const override { return true; }
  Status Merge(const Summary& other) override {
    const auto* rhs = dynamic_cast<const MisraGriesSummary*>(&other);
    // Equal k keeps the merged undercount within this summary's eps.
    if (rhs == nullptr || rhs->mg_.k() != mg_.k()) {
      return IncompatibleMerge(Name());
    }
    mg_ = MisraGries::Merge(mg_, rhs->mg_);
    return Status::Ok();
  }

  bool SupportsSnapshot() const override { return true; }
  Status SaveTo(BitWriter& out) const override {
    mg_.Serialize(out);
    return Status::Ok();
  }
  Status LoadFrom(BitReader& in) override {
    MisraGries loaded = MisraGries::Deserialize(in);
    if (in.overflow()) return in.status();
    if (loaded.k() != mg_.k()) return SnapshotShapeMismatch(Name());
    mg_ = std::move(loaded);
    return Status::Ok();
  }

 private:
  SummaryOptions options_;
  double epsilon_;
  MisraGries mg_;
};

class SpaceSavingSummary : public Summary {
 public:
  explicit SpaceSavingSummary(const SummaryOptions& o)
      : options_(o),
        ss_(static_cast<size_t>(std::ceil(1.0 / o.epsilon)),
            KeyBits(o.universe_size)) {}

  std::string_view Name() const override { return "space_saving"; }
  SummaryOptions Options() const override { return options_; }

  void Update(uint64_t item, uint64_t weight) override {
    for (uint64_t i = 0; i < weight; ++i) ss_.Insert(item);
  }

  void UpdateBatch(std::span<const uint64_t> items) override {
    for (const uint64_t x : items) ss_.Insert(x);
  }

  void UpdateColumn(const uint64_t* items, size_t n) override {
    for (size_t i = 0; i < n; ++i) ss_.Insert(items[i]);
  }

  double Estimate(uint64_t item) const override {
    return static_cast<double>(ss_.Estimate(item));
  }

  // Space-Saving overcounts, so thresholding at phi*m keeps every item
  // with true frequency above phi*m.
  std::vector<ItemEstimate> HeavyHitters(double phi) const override {
    return ToItemEstimates(
        ss_.EntriesAbove(CeilThreshold(phi, ss_.items_processed())));
  }

  uint64_t ItemsProcessed() const override { return ss_.items_processed(); }
  size_t MemoryUsageBytes() const override {
    return (ss_.SpaceBits() + 7) / 8;
  }

  bool SupportsMerge() const override { return true; }
  Status Merge(const Summary& other) override {
    const auto* rhs = dynamic_cast<const SpaceSavingSummary*>(&other);
    // Equal k keeps the merged overcount within this summary's eps.
    if (rhs == nullptr || rhs->ss_.k() != ss_.k()) {
      return IncompatibleMerge(Name());
    }
    ss_ = SpaceSaving::Merge(ss_, rhs->ss_);
    return Status::Ok();
  }

  bool SupportsSnapshot() const override { return true; }
  Status SaveTo(BitWriter& out) const override {
    ss_.Serialize(out);
    return Status::Ok();
  }
  Status LoadFrom(BitReader& in) override {
    SpaceSaving loaded = SpaceSaving::Deserialize(in);
    if (in.overflow()) return in.status();
    if (loaded.k() != ss_.k()) return SnapshotShapeMismatch(Name());
    ss_ = std::move(loaded);
    return Status::Ok();
  }

 private:
  SummaryOptions options_;
  SpaceSaving ss_;
};

class LossyCountingSummary : public Summary {
 public:
  explicit LossyCountingSummary(const SummaryOptions& o)
      : options_(o), lc_(o.epsilon, KeyBits(o.universe_size)) {}

  std::string_view Name() const override { return "lossy_counting"; }
  SummaryOptions Options() const override { return options_; }

  void Update(uint64_t item, uint64_t weight) override {
    for (uint64_t i = 0; i < weight; ++i) lc_.Insert(item);
  }

  void UpdateBatch(std::span<const uint64_t> items) override {
    for (const uint64_t x : items) lc_.Insert(x);
  }

  void UpdateColumn(const uint64_t* items, size_t n) override {
    for (size_t i = 0; i < n; ++i) lc_.Insert(items[i]);
  }

  double Estimate(uint64_t item) const override {
    return static_cast<double>(lc_.Estimate(item));
  }

  // EntriesAbove already compensates the undercount via each entry's
  // recorded max undercount delta, so phi*m keeps all true heavies.
  std::vector<ItemEstimate> HeavyHitters(double phi) const override {
    return ToItemEstimates(
        lc_.EntriesAbove(CeilThreshold(phi, lc_.items_processed())));
  }

  uint64_t ItemsProcessed() const override { return lc_.items_processed(); }
  size_t MemoryUsageBytes() const override {
    return (lc_.SpaceBits() + 7) / 8;
  }

  bool SupportsSnapshot() const override { return true; }
  Status SaveTo(BitWriter& out) const override {
    lc_.Serialize(out);
    return Status::Ok();
  }
  Status LoadFrom(BitReader& in) override {
    LossyCounting loaded = LossyCounting::Deserialize(in);
    if (in.overflow()) return in.status();
    if (loaded.epsilon() != lc_.epsilon()) {
      return SnapshotShapeMismatch(Name());
    }
    lc_ = std::move(loaded);
    return Status::Ok();
  }

 private:
  SummaryOptions options_;
  LossyCounting lc_;
};

class StickySamplingSummary : public Summary {
 public:
  explicit StickySamplingSummary(const SummaryOptions& o)
      : options_(o),
        ss_(o.epsilon, o.phi, o.delta, o.seed, KeyBits(o.universe_size)) {}

  std::string_view Name() const override { return "sticky_sampling"; }
  SummaryOptions Options() const override { return options_; }

  void Update(uint64_t item, uint64_t weight) override {
    for (uint64_t i = 0; i < weight; ++i) ss_.Insert(item);
  }

  void UpdateBatch(std::span<const uint64_t> items) override {
    for (const uint64_t x : items) ss_.Insert(x);
  }

  // Sequential by necessity: each Insert draws from the sampling PRNG, so
  // the column loop must consume randomness in exactly the scalar order.
  void UpdateColumn(const uint64_t* items, size_t n) override {
    for (size_t i = 0; i < n; ++i) ss_.Insert(items[i]);
  }

  double Estimate(uint64_t item) const override {
    return static_cast<double>(ss_.Estimate(item));
  }

  // EntriesAbove already compensates the <= eps*m undercount internally
  // (it admits entries with count + eps*m >= threshold), so pass phi*m
  // directly; subtracting eps here would double-compensate and report
  // items as light as (phi - 2 eps)*m.
  std::vector<ItemEstimate> HeavyHitters(double phi) const override {
    return ToItemEstimates(
        ss_.EntriesAbove(CeilThreshold(phi, ss_.items_processed())));
  }

  uint64_t ItemsProcessed() const override { return ss_.items_processed(); }
  size_t MemoryUsageBytes() const override {
    return (ss_.SpaceBits() + 7) / 8;
  }

  bool SupportsSnapshot() const override { return true; }
  Status SaveTo(BitWriter& out) const override {
    ss_.Serialize(out);
    return Status::Ok();
  }
  Status LoadFrom(BitReader& in) override {
    // Member-function Deserialize: configuration stays as constructed from
    // the header options; only the dynamic state (table, rate, PRNG) is
    // replaced, and only if the payload is intact.
    ss_.Deserialize(in);
    return in.status();
  }

 private:
  SummaryOptions options_;
  StickySampling ss_;
};

class ExactCounterSummary : public Summary {
 public:
  explicit ExactCounterSummary(const SummaryOptions& o) : options_(o) {}

  std::string_view Name() const override { return "exact"; }
  SummaryOptions Options() const override { return options_; }

  void Update(uint64_t item, uint64_t weight) override {
    exact_.Insert(item, weight);
  }

  void UpdateBatch(std::span<const uint64_t> items) override {
    for (const uint64_t x : items) exact_.Insert(x);
  }

  void UpdateColumn(const uint64_t* items, size_t n) override {
    for (size_t i = 0; i < n; ++i) exact_.Insert(items[i]);
  }

  double Estimate(uint64_t item) const override {
    return static_cast<double>(exact_.Count(item));
  }

  std::vector<ItemEstimate> HeavyHitters(double phi) const override {
    return ToItemEstimates(
        exact_.HeavyHitters(CeilThreshold(phi, exact_.total())));
  }

  uint64_t ItemsProcessed() const override { return exact_.total(); }

  // No SpaceBits on the ground-truth table; charge a hash-map node per
  // distinct item (two words of payload plus bucket/node overhead).
  size_t MemoryUsageBytes() const override {
    return sizeof(ExactCounter) + exact_.distinct() * 48;
  }

  bool SupportsMerge() const override { return true; }
  Status Merge(const Summary& other) override {
    const auto* rhs = dynamic_cast<const ExactCounterSummary*>(&other);
    if (rhs == nullptr) return IncompatibleMerge(Name());
    for (const auto& e : rhs->exact_.SortedByCountDesc()) {
      exact_.Insert(e.item, e.count);
    }
    return Status::Ok();
  }

  bool SupportsSnapshot() const override { return true; }
  Status SaveTo(BitWriter& out) const override {
    const auto entries = exact_.SortedByCountDesc();
    out.WriteCounter(entries.size());
    for (const auto& e : entries) {
      out.WriteU64(e.item);
      out.WriteCounter(e.count);
    }
    return Status::Ok();
  }
  Status LoadFrom(BitReader& in) override {
    const uint64_t entries = in.CheckedCount(in.ReadCounter());
    ExactCounter loaded;
    for (uint64_t i = 0; i < entries && !in.overflow(); ++i) {
      const uint64_t item = in.ReadU64();
      loaded.Insert(item, in.ReadCounter());
    }
    if (in.overflow()) return in.status();
    exact_ = std::move(loaded);
    return Status::Ok();
  }

 private:
  SummaryOptions options_;
  ExactCounter exact_;
};

class CountMinSummary : public Summary {
 public:
  explicit CountMinSummary(const SummaryOptions& o)
      : options_(o),
        epsilon_(o.epsilon),
        cm_(o.epsilon, o.phi, o.delta, o.seed) {}

  std::string_view Name() const override { return "count_min"; }
  SummaryOptions Options() const override { return options_; }

  void Update(uint64_t item, uint64_t weight) override {
    for (uint64_t i = 0; i < weight; ++i) cm_.Insert(item);
  }

  // Tight batch path: InsertBatch runs the fused insert+estimate loop
  // (one hash per row per item) with no virtual dispatch per item.
  void UpdateBatch(std::span<const uint64_t> items) override {
    cm_.InsertBatch(items.data(), items.size());
  }

  // Native columnar path: a vectorizable multiply-shift hash pre-pass
  // over the slice, then the sequential increment+candidate sweep
  // (state-identical to the scalar Insert loop).
  void UpdateColumn(const uint64_t* items, size_t n) override {
    cm_.InsertColumn(items, n);
  }

  double Estimate(uint64_t item) const override {
    return static_cast<double>(cm_.Estimate(item));
  }

  // The candidate set is tracked against the construction-time phi; the
  // query re-filters it, so phi values below the construction phi are
  // answered best-effort from the tracked candidates.
  std::vector<ItemEstimate> HeavyHitters(double phi) const override {
    const double threshold =
        (phi - epsilon_ / 2.0) *
        static_cast<double>(cm_.items_processed());
    std::vector<ItemEstimate> out;
    for (const auto& e : cm_.Report()) {
      if (static_cast<double>(e.count) >= threshold) {
        out.push_back({e.item, static_cast<double>(e.count)});
      }
    }
    return out;
  }

  uint64_t ItemsProcessed() const override { return cm_.items_processed(); }
  size_t MemoryUsageBytes() const override {
    return (cm_.SpaceBits() + 7) / 8;
  }

  bool SupportsMerge() const override { return true; }
  Status Merge(const Summary& other) override {
    const auto* rhs = dynamic_cast<const CountMinSummary*>(&other);
    // MergeFrom checks sketch compatibility (same dims, same hash seeds)
    // and the (eps, phi) contract, then sums cell-wise (linear sketch).
    if (rhs == nullptr || !cm_.MergeFrom(rhs->cm_)) {
      return IncompatibleMerge(Name());
    }
    return Status::Ok();
  }

  bool SupportsSnapshot() const override { return true; }
  Status SaveTo(BitWriter& out) const override {
    cm_.Serialize(out);
    return Status::Ok();
  }
  Status LoadFrom(BitReader& in) override {
    if (!cm_.DeserializeFrom(in)) {
      return in.overflow() ? in.status() : SnapshotShapeMismatch(Name());
    }
    return Status::Ok();
  }

 private:
  SummaryOptions options_;
  double epsilon_;
  CountMinHeavyHitters cm_;
};

class CountSketchSummary : public Summary {
 public:
  explicit CountSketchSummary(const SummaryOptions& o)
      : options_(o),
        epsilon_(o.epsilon),
        phi_hint_(o.phi),
        max_candidates_(std::max<size_t>(
            64, static_cast<size_t>(std::ceil(8.0 / o.phi)))),
        cs_(CountSketch::ForError(o.epsilon, o.delta, o.seed)) {}

  std::string_view Name() const override { return "count_sketch"; }
  SummaryOptions Options() const override { return options_; }

  // Standard CountSketch gives point queries only; heavy-hitter
  // candidates are tracked the same way CountMinHeavyHitters does: any
  // item whose running estimate clears half the construction-phi
  // threshold is kept, and the set is pruned when it overflows.
  void Update(uint64_t item, uint64_t weight) override {
    cs_.Insert(item, static_cast<int64_t>(weight));
    TrackCandidate(item);
  }

  // Tight batch path: one non-virtual loop over insert + candidate
  // tracking (state-identical to the Update loop).
  void UpdateBatch(std::span<const uint64_t> items) override {
    for (const uint64_t x : items) {
      cs_.Insert(x, 1);
      TrackCandidate(x);
    }
  }

  void UpdateColumn(const uint64_t* items, size_t n) override {
    for (size_t i = 0; i < n; ++i) {
      cs_.Insert(items[i], 1);
      TrackCandidate(items[i]);
    }
  }

  double Estimate(uint64_t item) const override {
    return static_cast<double>(cs_.Estimate(item));
  }

  std::vector<ItemEstimate> HeavyHitters(double phi) const override {
    const double threshold =
        (phi - epsilon_ / 2.0) *
        static_cast<double>(cs_.items_processed());
    std::vector<ItemEstimate> out;
    for (const uint64_t item : candidates_) {
      const double est = static_cast<double>(cs_.Estimate(item));
      if (est >= threshold) out.push_back({item, est});
    }
    SortByEstimateDesc(out);
    return out;
  }

  uint64_t ItemsProcessed() const override { return cs_.items_processed(); }
  size_t MemoryUsageBytes() const override {
    return (cs_.SpaceBits() + 7) / 8 + candidates_.size() * 16;
  }

  bool SupportsMerge() const override { return true; }
  Status Merge(const Summary& other) override {
    const auto* rhs = dynamic_cast<const CountSketchSummary*>(&other);
    if (rhs == nullptr || !cs_.Compatible(rhs->cs_)) {
      return IncompatibleMerge(Name());
    }
    cs_ = CountSketch::Merge(cs_, rhs->cs_);
    candidates_.insert(rhs->candidates_.begin(), rhs->candidates_.end());
    const double m = static_cast<double>(cs_.items_processed());
    Prune(0.5 * phi_hint_ * m);
    return Status::Ok();
  }

  bool SupportsSnapshot() const override { return true; }
  Status SaveTo(BitWriter& out) const override {
    cs_.Serialize(out);
    out.WriteCounter(candidates_.size());
    for (const uint64_t item : candidates_) out.WriteU64(item);
    return Status::Ok();
  }
  Status LoadFrom(BitReader& in) override {
    CountSketch loaded = CountSketch::Deserialize(in);
    if (in.overflow()) return in.status();
    if (!loaded.Compatible(cs_)) return SnapshotShapeMismatch(Name());
    const uint64_t entries = in.CheckedCount(in.ReadCounter());
    std::unordered_set<uint64_t> candidates;
    // Each candidate costs 64 wire bits; don't pre-allocate past that.
    candidates.reserve(
        std::min<uint64_t>(entries, in.remaining_bits() / 64 + 1));
    for (uint64_t i = 0; i < entries && !in.overflow(); ++i) {
      candidates.insert(in.ReadU64());
    }
    if (in.overflow()) return in.status();
    cs_ = std::move(loaded);
    candidates_ = std::move(candidates);
    return Status::Ok();
  }

 private:
  void TrackCandidate(uint64_t item) {
    const double m = static_cast<double>(cs_.items_processed());
    const double track_at = 0.5 * phi_hint_ * m;
    if (static_cast<double>(cs_.Estimate(item)) >= track_at) {
      candidates_.insert(item);
      if (candidates_.size() > max_candidates_) Prune(track_at);
    }
  }

  void Prune(double keep_at) {
    for (auto it = candidates_.begin(); it != candidates_.end();) {
      if (static_cast<double>(cs_.Estimate(*it)) < keep_at) {
        it = candidates_.erase(it);
      } else {
        ++it;
      }
    }
  }

  SummaryOptions options_;
  double epsilon_;
  double phi_hint_;
  size_t max_candidates_;
  CountSketch cs_;
  std::unordered_set<uint64_t> candidates_;
};

class HashedMisraGriesSummary : public Summary {
 public:
  explicit HashedMisraGriesSummary(const SummaryOptions& o)
      : options_(o), epsilon_(o.epsilon), table_(MakeTable(o)) {}

  std::string_view Name() const override { return "hashed_misra_gries"; }
  SummaryOptions Options() const override { return options_; }

  void Update(uint64_t item, uint64_t weight) override {
    for (uint64_t i = 0; i < weight; ++i) table_.Insert(item);
  }

  void UpdateBatch(std::span<const uint64_t> items) override {
    for (const uint64_t x : items) table_.Insert(x);
  }

  void UpdateColumn(const uint64_t* items, size_t n) override {
    for (size_t i = 0; i < n; ++i) table_.Insert(items[i]);
  }

  double Estimate(uint64_t item) const override {
    return static_cast<double>(table_.EstimateByHash(item));
  }

  std::vector<ItemEstimate> HeavyHitters(double phi) const override {
    const uint64_t threshold =
        CeilThreshold(phi - epsilon_, table_.items_processed());
    std::vector<ItemEstimate> out;
    for (const auto& e : table_.TopEntries()) {
      if (e.count >= threshold) {
        out.push_back({e.item, static_cast<double>(e.count)});
      }
    }
    return out;
  }

  uint64_t ItemsProcessed() const override {
    return table_.items_processed();
  }
  size_t MemoryUsageBytes() const override {
    return (table_.SpaceBits() + 7) / 8;
  }

  bool SupportsMerge() const override { return true; }
  Status Merge(const Summary& other) override {
    const auto* rhs = dynamic_cast<const HashedMisraGriesSummary*>(&other);
    if (rhs == nullptr || !(table_.hash() == rhs->table_.hash())) {
      return IncompatibleMerge(Name());
    }
    table_ = HashedMisraGries::Merge(table_, rhs->table_);
    return Status::Ok();
  }

  bool SupportsSnapshot() const override { return true; }
  Status SaveTo(BitWriter& out) const override {
    table_.Serialize(out);
    return Status::Ok();
  }
  Status LoadFrom(BitReader& in) override {
    HashedMisraGries loaded = HashedMisraGries::Deserialize(in);
    if (in.overflow()) return in.status();
    // Same construction seed <=> same drawn hash; anything else is a
    // header/payload mismatch.
    if (!(loaded.hash() == table_.hash())) {
      return SnapshotShapeMismatch(Name());
    }
    table_ = std::move(loaded);
    return Status::Ok();
  }

 private:
  // Standalone sizing (outside Algorithm 1 there is no sampling stage):
  // T1 with 2/eps counters, T2 with 2/phi tracked ids, and a hash range
  // large enough that collisions among universe items are delta-unlikely.
  static HashedMisraGries MakeTable(const SummaryOptions& o) {
    Rng hash_rng(Mix64(o.seed) ^ 0x7c9a1f3b5d2e4c6aULL);
    const double n = static_cast<double>(std::max<uint64_t>(
        o.universe_size, 2));
    const double range_d =
        std::min(9.0e18, std::max(1024.0, n * n / std::max(o.delta, 1e-9)));
    return HashedMisraGries(
        static_cast<size_t>(std::ceil(2.0 / o.epsilon)),
        static_cast<size_t>(std::ceil(2.0 / o.phi)),
        UniversalHash::Draw(hash_rng,
                            static_cast<uint64_t>(range_d)),
        KeyBits(o.universe_size));
  }

  SummaryOptions options_;
  double epsilon_;
  HashedMisraGries table_;
};

// ---------------------------------------------------------------------------
// Registry.

using Registry = std::map<std::string, SummaryFactory>;

Registry& GetRegistry() {
  static Registry* registry = new Registry;
  return *registry;
}

template <typename T>
void RegisterAdapter(const std::string& name) {
  RegisterSummary(name, [](const SummaryOptions& o) {
    return std::unique_ptr<Summary>(new T(o));
  });
}

void EnsureBuiltinsRegistered() {
  static const bool done = [] {
    RegisterAdapter<MisraGriesSummary>("misra_gries");
    RegisterAdapter<SpaceSavingSummary>("space_saving");
    RegisterAdapter<LossyCountingSummary>("lossy_counting");
    RegisterAdapter<StickySamplingSummary>("sticky_sampling");
    RegisterAdapter<ExactCounterSummary>("exact");
    RegisterAdapter<CountMinSummary>("count_min");
    RegisterAdapter<CountSketchSummary>("count_sketch");
    RegisterAdapter<HashedMisraGriesSummary>("hashed_misra_gries");
    internal::RegisterCoreSummaries();
    return true;
  }();
  (void)done;
}

}  // namespace

void RegisterSummary(const std::string& name, SummaryFactory factory) {
  GetRegistry()[name] = std::move(factory);
}

std::unique_ptr<Summary> MakeSummary(std::string_view name,
                                     const SummaryOptions& options,
                                     Status* status) {
  EnsureBuiltinsRegistered();
  if (IsWindowedSummaryName(name)) {
    // The windowed factory refuses for reasons beyond "unknown name"
    // (non-mergeable inner, nested windows, hostile geometry); pass the
    // status through so callers can show the real refusal.
    return internal::MakeWindowedSummary(
        name.substr(kWindowedPrefix.size()), options, status);
  }
  const auto& registry = GetRegistry();
  const std::string key(name);
  const auto it = registry.find(key);
  if (it == registry.end()) {
    if (status != nullptr) {
      *status = Status::InvalidArgument("unknown summary algorithm '" +
                                        key + "'");
    }
    return nullptr;
  }
  if (status != nullptr) *status = Status::Ok();
  return it->second(options);
}

std::vector<std::string> RegisteredSummaryNames() {
  EnsureBuiltinsRegistered();
  std::vector<std::string> names;
  names.reserve(GetRegistry().size());
  for (const auto& [name, factory] : GetRegistry()) names.push_back(name);
  return names;  // std::map iterates sorted
}

}  // namespace l1hh
