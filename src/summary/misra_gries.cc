#include "summary/misra_gries.h"

#include <algorithm>

namespace l1hh {

MisraGries::MisraGries(size_t k, int key_bits)
    : groups_(k), key_bits_(key_bits) {}

void MisraGries::Insert(uint64_t item) {
  ++processed_;
  const int e = groups_.Find(item);
  if (e >= 0) {
    groups_.Increment(e);
    return;
  }
  if (!groups_.Full()) {
    groups_.InsertNew(item);
    return;
  }
  groups_.DecrementAll();
}

std::vector<MisraGries::Entry> MisraGries::Entries() const {
  std::vector<Entry> out;
  out.reserve(groups_.live_size());
  groups_.ForEach(
      [&](uint64_t item, uint64_t count) { out.push_back({item, count}); });
  std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
    return a.count > b.count || (a.count == b.count && a.item < b.item);
  });
  return out;
}

std::vector<MisraGries::Entry> MisraGries::EntriesAbove(
    uint64_t threshold) const {
  std::vector<Entry> out;
  groups_.ForEach([&](uint64_t item, uint64_t count) {
    if (count >= threshold) out.push_back({item, count});
  });
  std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
    return a.count > b.count || (a.count == b.count && a.item < b.item);
  });
  return out;
}

MisraGries MisraGries::Merge(const MisraGries& a, const MisraGries& b) {
  std::vector<Entry> combined = a.Entries();
  for (const Entry& e : b.Entries()) {
    bool found = false;
    for (Entry& c : combined) {
      if (c.item == e.item) {
        c.count += e.count;
        found = true;
        break;
      }
    }
    if (!found) combined.push_back(e);
  }
  std::sort(combined.begin(), combined.end(),
            [](const Entry& x, const Entry& y) { return x.count > y.count; });
  const size_t k = a.k();
  uint64_t cut = 0;
  if (combined.size() > k) cut = combined[k].count;

  MisraGries merged(k, a.key_bits_);
  merged.processed_ = a.processed_ + b.processed_;
  for (size_t i = 0; i < combined.size() && i < k; ++i) {
    if (combined[i].count <= cut) break;
    merged.groups_.InsertWithCount(combined[i].item,
                                   combined[i].count - cut);
  }
  return merged;
}

void MisraGries::Serialize(BitWriter& out) const {
  out.WriteBits(static_cast<uint64_t>(key_bits_), 8);
  out.WriteCounter(processed_);
  groups_.Serialize(out);
}

MisraGries MisraGries::Deserialize(BitReader& in) {
  const int key_bits = static_cast<int>(in.ReadBits(8));
  const uint64_t processed = in.ReadCounter();
  MisraGries mg(1, key_bits);
  mg.groups_.Deserialize(in);
  mg.processed_ = processed;
  return mg;
}

}  // namespace l1hh
