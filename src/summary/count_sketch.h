// CountSketch [CCFC04]: d rows of w signed counters.
//
// Estimate = median over rows of sign * cell; unbiased, with additive error
// O(||f||_2 / sqrt(w)) per row — the classic l2 baseline the paper contrasts
// with (it targets l1).  Included for the baseline sweeps in the Table 1
// benches and for the unbiasedness property tests.
#ifndef L1HH_SUMMARY_COUNT_SKETCH_H_
#define L1HH_SUMMARY_COUNT_SKETCH_H_

#include <cstdint>
#include <vector>

#include "hash/multiply_shift.h"
#include "util/bit_stream.h"
#include "util/random.h"

namespace l1hh {

class CountSketch {
 public:
  CountSketch(size_t width, size_t depth, uint64_t seed);

  static CountSketch ForError(double epsilon, double delta, uint64_t seed);

  void Insert(uint64_t item, int64_t count = 1);

  /// Median-of-rows estimate; can be negative due to noise.
  int64_t Estimate(uint64_t item) const;

  bool Compatible(const CountSketch& other) const;

  /// Cell-wise sum (CountSketch is a linear sketch).  Requires
  /// Compatible(other).
  static CountSketch Merge(const CountSketch& a, const CountSketch& b);

  uint64_t items_processed() const { return processed_; }
  size_t width() const { return width_; }
  size_t depth() const { return index_hashes_.size(); }

  size_t SpaceBits() const;

  void Serialize(BitWriter& out) const;
  static CountSketch Deserialize(BitReader& in);

 private:
  size_t Cell(size_t row, uint64_t item) const {
    return row * width_ + static_cast<size_t>(index_hashes_[row](item));
  }
  int Sign(size_t row, uint64_t item) const {
    return (sign_hashes_[row](item) & 1) != 0 ? 1 : -1;
  }

  size_t width_;
  uint64_t processed_ = 0;
  std::vector<MultiplyShiftHash> index_hashes_;
  std::vector<MultiplyShiftHash> sign_hashes_;
  std::vector<int64_t> table_;
};

}  // namespace l1hh

#endif  // L1HH_SUMMARY_COUNT_SKETCH_H_
