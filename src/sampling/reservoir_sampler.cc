#include "sampling/reservoir_sampler.h"

namespace l1hh {

void ReservoirSampler::Offer(uint64_t item) {
  ++seen_;
  if (reservoir_.size() < capacity_) {
    reservoir_.push_back(item);
    return;
  }
  const uint64_t j = rng_.UniformU64(seen_);
  if (j < capacity_) {
    reservoir_[j] = item;
  }
}

}  // namespace l1hh
