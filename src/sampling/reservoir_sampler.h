// Classic reservoir sampling (Vitter's Algorithm R).
//
// Not part of the paper's algorithms — it keeps a *fixed-size* uniform
// sample, whereas the paper needs Bernoulli samples whose size concentrates
// via Chernoff.  We use it as a reference sampler in tests and as a
// comparison point in the sampling benches.
#ifndef L1HH_SAMPLING_RESERVOIR_SAMPLER_H_
#define L1HH_SAMPLING_RESERVOIR_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "util/random.h"

namespace l1hh {

class ReservoirSampler {
 public:
  explicit ReservoirSampler(size_t capacity, uint64_t seed)
      : rng_(seed), capacity_(capacity) {}

  void Offer(uint64_t item);

  const std::vector<uint64_t>& sample() const { return reservoir_; }
  uint64_t items_seen() const { return seen_; }

 private:
  Rng rng_;
  size_t capacity_;
  uint64_t seen_ = 0;
  std::vector<uint64_t> reservoir_;
};

}  // namespace l1hh

#endif  // L1HH_SAMPLING_RESERVOIR_SAMPLER_H_
