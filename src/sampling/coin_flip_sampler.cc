#include "sampling/coin_flip_sampler.h"

// Header-only logic; this translation unit pins the vtable-free class into
// the library so that downstream users get ODR-clean symbols.
namespace l1hh {}
