// Geometric skip sampling: instead of flipping a Bernoulli(p) coin per
// stream item, draw the gap to the next success once, then count down.
//
// This is how every algorithm in the paper achieves O(1) *worst-case*
// update time (Section 3.1): non-sampled items cost one decrement, and with
// p <= O(eps^2) the expensive per-sample work provably has O(1/eps) slack
// between samples to be spread over.
#ifndef L1HH_SAMPLING_GEOMETRIC_SKIP_H_
#define L1HH_SAMPLING_GEOMETRIC_SKIP_H_

#include <cstdint>

#include "util/bit_stream.h"
#include "util/bit_util.h"
#include "util/random.h"

namespace l1hh {

class GeometricSkipSampler {
 public:
  GeometricSkipSampler() = default;

  /// Acceptance probability is 2^{-exponent} (footnote-3 rounding applied
  /// by the caller or via FromProbability).
  static GeometricSkipSampler FromExponent(int exponent, Rng& rng) {
    GeometricSkipSampler s;
    s.exponent_ = exponent;
    s.ScheduleNext(rng);
    return s;
  }

  static GeometricSkipSampler FromProbability(double p, Rng& rng) {
    return FromExponent(ProbabilityToPow2Exponent(p), rng);
  }

  /// Called once per stream item; returns true iff this item is sampled.
  /// O(1) worst case: one compare + decrement, plus one Geometric draw on
  /// the (rare) sampled items.
  bool Offer(Rng& rng) {
    if (skip_ > 0) {
      --skip_;
      return false;
    }
    ScheduleNext(rng);
    return true;
  }

  double probability() const {
    double p = 1.0;
    for (int i = 0; i < exponent_; ++i) p *= 0.5;
    return p;
  }
  int exponent() const { return exponent_; }

  /// State: the exponent and the remaining skip, which is geometric with
  /// mean 2^k, i.e. O(log(1/p)) bits in expectation.
  int SpaceBits() const {
    return BitWidth(static_cast<uint64_t>(exponent_)) + CounterBits(skip_);
  }

  void Serialize(BitWriter& out) const {
    out.WriteCounter(static_cast<uint64_t>(exponent_));
    out.WriteCounter(skip_);
  }
  void Deserialize(BitReader& in) {
    exponent_ = static_cast<int>(in.ReadCounter());
    skip_ = in.ReadCounter();
  }

 private:
  void ScheduleNext(Rng& rng) { skip_ = rng.Geometric(probability()); }

  int exponent_ = 0;
  uint64_t skip_ = 0;
};

}  // namespace l1hh

#endif  // L1HH_SAMPLING_GEOMETRIC_SKIP_H_
