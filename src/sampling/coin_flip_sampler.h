// Lemma 1 of the paper: "there is an algorithm for choosing an item with
// probability 1/m that has space complexity O(log log m) bits and time
// complexity O(1) in the unit-cost RAM model" — generate a (log2 m)-bit
// integer uniformly at random and accept iff it is zero.
//
// Probabilities are powers of two per footnote 3: any target p is rounded
// down to the largest 2^{-k} <= p.  State is just the exponent k, i.e.,
// O(log k) = O(log log m) bits; Proposition 2 (Appendix B) shows this is
// optimal and the bit-counting Rng lets tests check the randomness budget.
#ifndef L1HH_SAMPLING_COIN_FLIP_SAMPLER_H_
#define L1HH_SAMPLING_COIN_FLIP_SAMPLER_H_

#include <cstdint>

#include "util/bit_stream.h"
#include "util/bit_util.h"
#include "util/random.h"

namespace l1hh {

class CoinFlipSampler {
 public:
  CoinFlipSampler() = default;

  /// Sampler with acceptance probability exactly 2^{-exponent}.
  static CoinFlipSampler FromExponent(int exponent) {
    CoinFlipSampler s;
    s.exponent_ = exponent;
    return s;
  }

  /// Sampler with acceptance probability RoundDownPow2(target_probability).
  /// target_probability must be in (0, 1].
  static CoinFlipSampler FromProbability(double target_probability) {
    return FromExponent(ProbabilityToPow2Exponent(target_probability));
  }

  /// One Bernoulli(2^{-k}) trial: k fresh random bits, accept iff all zero.
  bool Sample(Rng& rng) const { return rng.AllZeroBits(exponent_); }

  int exponent() const { return exponent_; }
  double probability() const {
    double p = 1.0;
    for (int i = 0; i < exponent_; ++i) p *= 0.5;
    return p;
  }

  /// Persistent state is the exponent alone.
  int SpaceBits() const { return BitWidth(static_cast<uint64_t>(exponent_)); }

  void Serialize(BitWriter& out) const {
    out.WriteCounter(static_cast<uint64_t>(exponent_));
  }
  void Deserialize(BitReader& in) {
    exponent_ = static_cast<int>(in.ReadCounter());
  }

 private:
  int exponent_ = 0;
};

}  // namespace l1hh

#endif  // L1HH_SAMPLING_COIN_FLIP_SAMPLER_H_
