#include "sampling/geometric_skip.h"

namespace l1hh {}
