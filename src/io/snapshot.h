// Versioned snapshot container for summaries — the persistence layer that
// makes the paper's headline bit-size claim measurable on the wire.
//
// Every structure in this library already serializes itself bit-exactly
// (util/bit_stream.h); a snapshot wraps that payload in a self-describing
// container so a file written today can be validated, rejected, or
// reconstructed by a different process later:
//
//   bytes  0..7   magic "L1HHSNAP"
//   bytes  8..11  format version (u32 LE) — readers reject other versions
//   bytes 12..19  stream_bits (u64 LE): valid bits in the bit-stream section
//   bytes 20..    bit-stream section, ceil(stream_bits / 64) u64 LE words:
//                   registry name (8-bit length + 8-bit chars)
//                   SummaryOptions: epsilon, phi, delta (doubles),
//                     universe_size, stream_length, seed,
//                     window_size, window_buckets (u64s)
//                   items_processed (u64)
//                   payload_bits (u64)
//                   payload: exactly payload_bits bits from Summary::SaveTo
//   last 4 bytes  CRC-32 (IEEE) over every preceding byte (u32 LE)
//
// Corrupt, truncated, over-long, or version-bumped input always returns a
// Status error — never UB, never a crash (tests/snapshot_roundtrip_test.cc
// fuzzes this under the sanitizer CI job).  `payload_bits` is the honest
// bit-size of the structure state itself, the number the bench layer
// compares against SpaceBits() and the paper's space bound.
//
// Byte-level format spec and compatibility rules: docs/SNAPSHOTS.md.
#ifndef L1HH_IO_SNAPSHOT_H_
#define L1HH_IO_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "summary/summary.h"
#include "util/status.h"

namespace l1hh {

/// The format this build writes; readers accept exactly this version.
/// v2: SummaryOptions gained window_size/window_buckets (two u64s after
/// the seed) for the `windowed:<algo>` container, and bdw_optimal's
/// T2/T3 payloads switched to the sparse gap-coded cell encoding.
inline constexpr uint32_t kSnapshotFormatVersion = 2;

/// Header fields of a snapshot, readable without reconstructing the
/// summary (used by ShardedEngine::Restore and `l1hh_cli load`).
struct SnapshotInfo {
  std::string algorithm;          // registry name, e.g. "bdw_optimal"
  SummaryOptions options;         // construction options incl. seed
  uint64_t items_processed = 0;   // stream position at save time
  uint64_t payload_bits = 0;      // bit-size of the structure state
  uint64_t total_bytes = 0;       // whole container incl. header + CRC
};

/// Serializes `summary` (which must SupportsSnapshot) into a
/// self-describing byte container.
Status SaveSummary(const Summary& summary, std::vector<uint8_t>* out);

/// SaveSummary + atomic-ish file write (write then rename is overkill for
/// this layer; the CRC trailer catches torn writes on load).
Status SaveSummaryToFile(const Summary& summary, const std::string& path);

/// Parses and validates a container header (magic, version, CRC, length
/// consistency) without touching the payload.
Status ReadSnapshotInfo(std::span<const uint8_t> bytes, SnapshotInfo* info);
Status ReadSnapshotInfoFromFile(const std::string& path, SnapshotInfo* info);

/// Reconstructs the summary a container describes: validates the header,
/// creates the registered algorithm from the embedded options, and
/// restores the payload.  Returns nullptr with the reason in *status
/// (always set when non-null) on any failure.
std::unique_ptr<Summary> LoadSummary(std::span<const uint8_t> bytes,
                                     Status* status = nullptr);
std::unique_ptr<Summary> LoadSummaryFromFile(const std::string& path,
                                             Status* status = nullptr);

}  // namespace l1hh

#endif  // L1HH_IO_SNAPSHOT_H_
