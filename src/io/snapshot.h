// Versioned snapshot container for summaries — the persistence layer that
// makes the paper's headline bit-size claim measurable on the wire.
//
// Every structure in this library already serializes itself bit-exactly
// (util/bit_stream.h); a snapshot wraps that payload in a self-describing
// container so a file written today can be validated, rejected, or
// reconstructed by a different process later:
//
//   bytes  0..7   magic "L1HHSNAP"
//   bytes  8..11  format version (u32 LE) — readers reject other versions
//   bytes 12..19  stream_bits (u64 LE): valid bits in the bit-stream section
//   bytes 20..    bit-stream section, ceil(stream_bits / 64) u64 LE words:
//                   registry name (8-bit length + 8-bit chars)
//                   SummaryOptions: epsilon, phi, delta (doubles),
//                     universe_size, stream_length, seed,
//                     window_size, window_buckets (u64s)
//                   items_processed (u64)
//                   payload_bits (u64)
//                   payload: exactly payload_bits bits from Summary::SaveTo
//   last 4 bytes  CRC-32 (IEEE) over every preceding byte (u32 LE)
//
// Corrupt, truncated, over-long, or version-bumped input always returns a
// Status error — never UB, never a crash (tests/snapshot_roundtrip_test.cc
// fuzzes this under the sanitizer CI job).  `payload_bits` is the honest
// bit-size of the structure state itself, the number the bench layer
// compares against SpaceBits() and the paper's space bound.
//
// Byte-level format spec and compatibility rules: docs/SNAPSHOTS.md.
#ifndef L1HH_IO_SNAPSHOT_H_
#define L1HH_IO_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "summary/summary.h"
#include "util/status.h"

namespace l1hh {

/// The format this build writes; readers accept exactly this version.
/// v2: SummaryOptions gained window_size/window_buckets (two u64s after
/// the seed) for the `windowed:<algo>` container, and bdw_optimal's
/// T2/T3 payloads switched to the sparse gap-coded cell encoding.
inline constexpr uint32_t kSnapshotFormatVersion = 2;

/// Header fields of a snapshot, readable without reconstructing the
/// summary (used by ShardedEngine::Restore and `l1hh_cli load`).
struct SnapshotInfo {
  std::string algorithm;          // registry name, e.g. "bdw_optimal"
  SummaryOptions options;         // construction options incl. seed
  uint64_t items_processed = 0;   // stream position at save time
  uint64_t payload_bits = 0;      // bit-size of the structure state
  uint64_t total_bytes = 0;       // whole container incl. header + CRC
};

/// Serializes `summary` (which must SupportsSnapshot) into a
/// self-describing byte container.
Status SaveSummary(const Summary& summary, std::vector<uint8_t>* out);

/// SaveSummary + crash-safe file write: the bytes go through the
/// write-tmp -> fsync -> rename -> fsync-directory protocol
/// (src/io/durable_file.h), so a crash leaves either the complete old
/// file or the complete new one — never a torn snapshot under a valid
/// name.  I/O failures are Status::IOError with the errno text.
Status SaveSummaryToFile(const Summary& summary, const std::string& path);

/// Parses and validates a container header (magic, version, CRC, length
/// consistency) without touching the payload.
Status ReadSnapshotInfo(std::span<const uint8_t> bytes, SnapshotInfo* info);
Status ReadSnapshotInfoFromFile(const std::string& path, SnapshotInfo* info);

/// Reconstructs the summary a container describes: validates the header,
/// creates the registered algorithm from the embedded options, and
/// restores the payload.  Returns nullptr with the reason in *status
/// (always set when non-null) on any failure.
std::unique_ptr<Summary> LoadSummary(std::span<const uint8_t> bytes,
                                     Status* status = nullptr);
std::unique_ptr<Summary> LoadSummaryFromFile(const std::string& path,
                                             Status* status = nullptr);

// ---- Delta snapshots (sliding windows only) ----------------------------
//
// A `windowed:<algo>` summary is mostly immutable between checkpoints:
// sealed buckets never change, so the state at rotation R1 differs from
// the state at rotation R0 only in the buckets sealed after R0 plus the
// live bucket.  A delta container carries exactly that tail — the
// incremental-checkpoint and replication unit (docs/SNAPSHOTS.md):
//
//   bytes  0..7   magic "L1HHDELT"
//   bytes  8..11  delta format version (u32 LE)
//   bytes 12..19  stream_bits (u64 LE)
//   bytes 20..    bit-stream: name, SummaryOptions (same encoding as a
//                 snapshot), base_rotations, base_items, new_rotations,
//                 new_total_items, bucket_count, then the bucket payloads
//   last 4 bytes  CRC-32 over every preceding byte
//
// Applying a delta requires the target to BE the delta's base (same
// name/options, rotations == base_rotations, items == base_items);
// anything else is a Corruption, never a silently wrong window.

inline constexpr uint32_t kDeltaFormatVersion = 1;

/// Serializes the tail of `summary` (a SlidingWindowSummary) that changed
/// since a base checkpoint taken at (base_rotations, base_items).
/// FailedPrecondition for non-windowed summaries; InvalidArgument when the
/// base clocks do not precede the current state or the tail would cover
/// the whole ring (write a full snapshot instead).
Status SaveSummaryDelta(const Summary& summary, uint64_t base_rotations,
                        uint64_t base_items, std::vector<uint8_t>* out);
Status SaveSummaryDeltaToFile(const Summary& summary,
                              uint64_t base_rotations, uint64_t base_items,
                              const std::string& path);

/// Applies a delta container onto `target`, which must be the exact base
/// state the delta was computed against.
Status ApplySummaryDelta(std::span<const uint8_t> bytes, Summary* target);
Status ApplySummaryDeltaFromFile(const std::string& path, Summary* target);

// ---- Grouped snapshots (src/group/grouped_summary.h) -------------------
//
// One container for a whole GroupedSummary — every live per-group summary,
// the recency order, and the eviction counters — so per-tenant monitoring
// state rides the same durable-write machinery as single summaries:
//
//   bytes  0..7   magic "L1HHGRUP"
//   bytes  8..11  grouped format version (u32 LE)
//   bytes 12..19  stream_bits (u64 LE)
//   bytes 20..    bit-stream: per-group algorithm name + base
//                 SummaryOptions (same encoding as a snapshot header),
//                 max_groups, memory_budget_bytes, then the
//                 GroupedSummary::SaveGroups payload (totals, eviction
//                 counters, and each group's key + bit-framed state in
//                 MRU->LRU order)
//   last 4 bytes  CRC-32 over every preceding byte
//
// Same hostility contract as the other containers: corrupt, truncated,
// version-bumped, or domain-violating input is a Status, never UB
// (tests/grouped_summary_test.cc fuzzes this).

/// Version 3 of the container family: the first grouped format.
inline constexpr uint32_t kGroupedFormatVersion = 3;

class GroupedSummary;

/// Serializes a whole grouped summary into a self-describing container.
Status SaveGrouped(const GroupedSummary& grouped, std::vector<uint8_t>* out);
/// SaveGrouped + the crash-safe write-tmp/fsync/rename file protocol.
Status SaveGroupedToFile(const GroupedSummary& grouped,
                         const std::string& path);

/// Reconstructs a GroupedSummary from a container: validates the framing
/// and header options, rebuilds the instance from the embedded
/// GroupedSummaryOptions, and restores every group (per-group seeds are
/// re-derived from the base seed, so restored groups continue their exact
/// random sequences).  Returns nullptr with the reason in *status.
std::unique_ptr<GroupedSummary> LoadGrouped(std::span<const uint8_t> bytes,
                                            Status* status = nullptr);
std::unique_ptr<GroupedSummary> LoadGroupedFromFile(const std::string& path,
                                                    Status* status = nullptr);

}  // namespace l1hh

#endif  // L1HH_IO_SNAPSHOT_H_
