#include "io/durable_file.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace l1hh {
namespace {

// Fault injection state (tests only; see header).
DurableFailMode g_fail_mode = DurableFailMode::kNone;
int g_fail_countdown = 0;

std::string ErrnoText(const std::string& what, const std::string& path) {
  return what + " '" + path + "': " + std::strerror(errno);
}

Status WriteAllFd(int fd, const uint8_t* data, size_t n,
                  const std::string& path) {
  size_t done = 0;
  while (done < n) {
    const ssize_t wrote = ::write(fd, data + done, n - done);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(ErrnoText("cannot write", path));
    }
    done += static_cast<size_t>(wrote);
  }
  return Status::Ok();
}

Status FsyncDirectoryOf(const std::string& path) {
  const std::string dir =
      std::filesystem::path(path).parent_path().string();
  const int fd = ::open(dir.empty() ? "." : dir.c_str(),
                        O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::IOError(ErrnoText("cannot open directory", dir));
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::IOError(ErrnoText("cannot fsync directory", dir));
  }
  return Status::Ok();
}

// Simulates the armed crash: writes whatever the mode says a dying
// process would have gotten onto disk, then reports IOError.  Once
// tripped it stays tripped (countdown pinned negative) so the rest of
// the "process" fails too.
Status InjectFailure(const std::string& tmp_path,
                     std::span<const uint8_t> bytes) {
  g_fail_countdown = -1;
  switch (g_fail_mode) {
    case DurableFailMode::kPartialTmp: {
      const int fd = ::open(tmp_path.c_str(),
                            O_WRONLY | O_CREAT | O_TRUNC, 0644);
      if (fd >= 0) {
        const size_t half = bytes.size() / 2;
        (void)!::write(fd, bytes.data(), half);
        ::close(fd);
      }
      break;
    }
    case DurableFailMode::kAfterTmp: {
      const int fd = ::open(tmp_path.c_str(),
                            O_WRONLY | O_CREAT | O_TRUNC, 0644);
      if (fd >= 0) {
        (void)!::write(fd, bytes.data(), bytes.size());
        ::close(fd);
      }
      break;
    }
    case DurableFailMode::kBeforeTmp:
    case DurableFailMode::kNone:
      break;
  }
  return Status::IOError("injected write failure (simulated crash)");
}

}  // namespace

void SetDurableWriteFailure(DurableFailMode mode, int countdown) {
  g_fail_mode = mode;
  g_fail_countdown = mode == DurableFailMode::kNone ? 0 : countdown;
}

Status DurableWriteFile(const std::string& path,
                        std::span<const uint8_t> bytes) {
  static obs::Counter* const writes_ctr =
      obs::GetCounter("l1hh_io_durable_writes_total");
  static obs::Counter* const bytes_ctr =
      obs::GetCounter("l1hh_io_durable_write_bytes_total");
  static obs::Counter* const errors_ctr =
      obs::GetCounter("l1hh_io_errors_total");
  static obs::Histogram* const fsync_hist =
      obs::GetHistogram("l1hh_io_fsync_ns");
  const std::string tmp_path = path + kDurableTmpSuffix;
  if (g_fail_mode != DurableFailMode::kNone) {
    if (g_fail_countdown <= 0) {
      errors_ctr->Inc();
      return InjectFailure(tmp_path, bytes);
    }
    --g_fail_countdown;
  }
  const int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                        0644);
  if (fd < 0) {
    errors_ctr->Inc();
    return Status::IOError(ErrnoText("cannot create", tmp_path));
  }
  Status s = WriteAllFd(fd, bytes.data(), bytes.size(), tmp_path);
  const uint64_t fsync_t0 = obs::TraceRing::NowNs();
  if (s.ok() && ::fsync(fd) != 0) {
    s = Status::IOError(ErrnoText("cannot fsync", tmp_path));
  }
  if (s.ok() && obs::Enabled()) {
    fsync_hist->Observe(obs::TraceRing::NowNs() - fsync_t0);
  }
  if (::close(fd) != 0 && s.ok()) {
    s = Status::IOError(ErrnoText("cannot close", tmp_path));
  }
  if (!s.ok()) {
    ::unlink(tmp_path.c_str());
    errors_ctr->Inc();
    return s;
  }
  if (::rename(tmp_path.c_str(), path.c_str()) != 0) {
    s = Status::IOError(ErrnoText("cannot rename over", path));
    ::unlink(tmp_path.c_str());
    errors_ctr->Inc();
    return s;
  }
  // Make the rename itself durable; without this the directory entry can
  // still be lost even though the file data is on the device.
  s = FsyncDirectoryOf(path);
  if (!s.ok()) {
    errors_ctr->Inc();
    return s;
  }
  writes_ctr->Inc();
  bytes_ctr->Inc(bytes.size());
  return s;
}

Status DurableWriteFile(const std::string& path, const std::string& text) {
  return DurableWriteFile(
      path, std::span<const uint8_t>(
                reinterpret_cast<const uint8_t*>(text.data()), text.size()));
}

Status ReadFileBytes(const std::string& path, std::vector<uint8_t>* out) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError(ErrnoText("cannot open", path));
  }
  out->clear();
  uint8_t chunk[1 << 16];
  while (true) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status s = Status::IOError(ErrnoText("cannot read", path));
      ::close(fd);
      return s;
    }
    if (n == 0) break;
    out->insert(out->end(), chunk, chunk + n);
  }
  ::close(fd);
  return Status::Ok();
}

}  // namespace l1hh
