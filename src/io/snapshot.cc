#include "io/snapshot.h"

#include <cstring>
#include <fstream>
#include <optional>
#include <utility>

#include "util/bit_stream.h"
#include "util/crc32.h"

namespace l1hh {
namespace {

constexpr char kMagic[8] = {'L', '1', 'H', 'H', 'S', 'N', 'A', 'P'};
constexpr size_t kPreambleBytes = 8 + 4 + 8;  // magic + version + stream_bits
constexpr size_t kTrailerBytes = 4;           // CRC-32
constexpr size_t kMaxNameLength = 128;

void AppendU32(std::vector<uint8_t>& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void AppendU64(std::vector<uint8_t>& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

uint32_t ParseU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}

uint64_t ParseU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

/// Domain check on header options BEFORE they reach a factory: adapter
/// constructors divide by epsilon/phi and cast the results to integers,
/// so a hostile value (0, denormal, negative, NaN) in a CRC-resealed
/// container would be UB or an uncaught length_error, not a Status.
Status ValidateHeaderOptions(const SummaryOptions& opt) {
  const auto in_unit = [](double v) { return v > 1e-9 && v <= 1.0; };
  if (!in_unit(opt.epsilon) || !in_unit(opt.phi) || !in_unit(opt.delta)) {
    return Status::Corruption(
        "snapshot header options out of domain (epsilon/phi/delta must be "
        "in (0, 1])");
  }
  if (opt.universe_size < 2) {
    return Status::Corruption(
        "snapshot header universe_size is implausible");
  }
  return Status::Ok();
}

void WriteHeader(BitWriter& out, const Summary& summary) {
  const std::string name(summary.Name());
  out.WriteBits(name.size(), 8);
  for (const char c : name) {
    out.WriteBits(static_cast<uint8_t>(c), 8);
  }
  const SummaryOptions opt = summary.Options();
  out.WriteDouble(opt.epsilon);
  out.WriteDouble(opt.phi);
  out.WriteDouble(opt.delta);
  out.WriteU64(opt.universe_size);
  out.WriteU64(opt.stream_length);
  out.WriteU64(opt.seed);
  out.WriteU64(opt.window_size);
  out.WriteU64(opt.window_buckets);
  out.WriteU64(summary.ItemsProcessed());
}

/// Validates the container around the bit stream (magic, version, length
/// consistency, CRC) and parses the bit-stream header into *info.  On
/// success *words holds the unpacked bit-stream and *reader is positioned
/// at the first payload bit; *words must outlive *reader.
Status ParseContainer(std::span<const uint8_t> bytes, SnapshotInfo* info,
                      std::vector<uint64_t>* words,
                      std::optional<BitReader>* reader) {
  if (bytes.size() < kPreambleBytes + kTrailerBytes) {
    return Status::Corruption("snapshot too short (" +
                              std::to_string(bytes.size()) + " bytes)");
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("not a l1hh snapshot (bad magic)");
  }
  const uint32_t version = ParseU32(bytes.data() + 8);
  if (version != kSnapshotFormatVersion) {
    return Status::InvalidArgument(
        "unsupported snapshot format version " + std::to_string(version) +
        " (this build reads version " +
        std::to_string(kSnapshotFormatVersion) + ")");
  }
  // CRC over everything but the trailer, checked BEFORE trusting any
  // variable-length field: random corruption and truncation both land here.
  const uint32_t expected_crc = ParseU32(bytes.data() + bytes.size() - 4);
  const uint32_t actual_crc = Crc32(bytes.data(), bytes.size() - 4);
  if (expected_crc != actual_crc) {
    return Status::Corruption("snapshot CRC mismatch (file corrupt)");
  }
  const uint64_t stream_bits = ParseU64(bytes.data() + 12);
  const uint64_t stream_words = (stream_bits + 63) / 64;
  if (kPreambleBytes + stream_words * 8 + kTrailerBytes != bytes.size()) {
    return Status::Corruption(
        "snapshot length disagrees with its header (" +
        std::to_string(bytes.size()) + " bytes for " +
        std::to_string(stream_bits) + " stream bits)");
  }
  words->resize(stream_words);
  for (uint64_t w = 0; w < stream_words; ++w) {
    (*words)[w] = ParseU64(bytes.data() + kPreambleBytes + w * 8);
  }
  reader->emplace(words->data(), words->size(),
                  static_cast<size_t>(stream_bits));
  BitReader& in = **reader;

  const uint64_t name_length = in.ReadBits(8);
  if (name_length == 0 || name_length > kMaxNameLength) {
    return Status::Corruption("snapshot algorithm name has implausible "
                              "length " +
                              std::to_string(name_length));
  }
  std::string name;
  name.reserve(name_length);
  for (uint64_t i = 0; i < name_length; ++i) {
    name.push_back(static_cast<char>(in.ReadBits(8)));
  }
  info->algorithm = std::move(name);
  info->options.epsilon = in.ReadDouble();
  info->options.phi = in.ReadDouble();
  info->options.delta = in.ReadDouble();
  info->options.universe_size = in.ReadU64();
  info->options.stream_length = in.ReadU64();
  info->options.seed = in.ReadU64();
  info->options.window_size = in.ReadU64();
  info->options.window_buckets = in.ReadU64();
  info->items_processed = in.ReadU64();
  info->payload_bits = in.ReadU64();
  info->total_bytes = bytes.size();
  if (in.overflow()) return in.status();
  if (info->payload_bits != in.remaining_bits()) {
    return Status::Corruption(
        "snapshot payload length mismatch: header claims " +
        std::to_string(info->payload_bits) + " bits, container holds " +
        std::to_string(in.remaining_bits()));
  }
  return ValidateHeaderOptions(info->options);
}

}  // namespace

Status SaveSummary(const Summary& summary, std::vector<uint8_t>* out) {
  if (!summary.SupportsSnapshot()) {
    return Status::FailedPrecondition(std::string(summary.Name()) +
                                      " does not support snapshots");
  }
  // The payload goes into its own writer first so its exact bit length is
  // known before the header field announcing it is written.
  BitWriter payload;
  const Status saved = summary.SaveTo(payload);
  if (!saved.ok()) return saved;

  BitWriter stream;
  WriteHeader(stream, summary);
  stream.WriteU64(payload.size_bits());
  size_t left = payload.size_bits();
  for (size_t w = 0; left > 0; ++w) {
    const int chunk = left >= 64 ? 64 : static_cast<int>(left);
    stream.WriteBits(payload.words()[w], chunk);
    left -= static_cast<size_t>(chunk);
  }

  out->clear();
  out->reserve(kPreambleBytes + stream.words().size() * 8 + kTrailerBytes);
  out->insert(out->end(), kMagic, kMagic + sizeof(kMagic));
  AppendU32(*out, kSnapshotFormatVersion);
  AppendU64(*out, stream.size_bits());
  for (const uint64_t word : stream.words()) AppendU64(*out, word);
  AppendU32(*out, Crc32(out->data(), out->size()));
  return Status::Ok();
}

Status SaveSummaryToFile(const Summary& summary, const std::string& path) {
  std::vector<uint8_t> bytes;
  const Status s = SaveSummary(summary, &bytes);
  if (!s.ok()) return s;
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    return Status::InvalidArgument("cannot open '" + path + "' for writing");
  }
  file.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
  file.flush();
  if (!file) {
    return Status::InvalidArgument("short write to '" + path + "'");
  }
  return Status::Ok();
}

Status ReadSnapshotInfo(std::span<const uint8_t> bytes, SnapshotInfo* info) {
  std::vector<uint64_t> words;
  std::optional<BitReader> reader;
  return ParseContainer(bytes, info, &words, &reader);
}

Status ReadSnapshotInfoFromFile(const std::string& path, SnapshotInfo* info) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return Status::InvalidArgument("cannot open '" + path + "' for reading");
  }
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(file)),
                             std::istreambuf_iterator<char>());
  return ReadSnapshotInfo(bytes, info);
}

std::unique_ptr<Summary> LoadSummary(std::span<const uint8_t> bytes,
                                     Status* status) {
  Status local;
  Status& out_status = status != nullptr ? *status : local;

  SnapshotInfo info;
  std::vector<uint64_t> words;
  std::optional<BitReader> reader;
  out_status = ParseContainer(bytes, &info, &words, &reader);
  if (!out_status.ok()) return nullptr;

  Status make_status;
  std::unique_ptr<Summary> summary =
      MakeSummary(info.algorithm, info.options, &make_status);
  if (summary == nullptr) {
    // The factory's own reason: "unknown summary algorithm" for a name
    // this build does not register, the specific windowed refusal
    // (hostile geometry, non-mergeable inner) for a windowed: header.
    out_status = std::move(make_status);
    return nullptr;
  }
  if (!summary->SupportsSnapshot()) {
    out_status = Status::FailedPrecondition(
        "'" + info.algorithm + "' does not support snapshots");
    return nullptr;
  }
  out_status = summary->LoadFrom(*reader);
  if (!out_status.ok()) return nullptr;
  if (reader->overflow()) {
    out_status = reader->status();
    return nullptr;
  }
  if (reader->remaining_bits() != 0) {
    out_status = Status::Corruption(
        "snapshot payload has " + std::to_string(reader->remaining_bits()) +
        " trailing bits after '" + info.algorithm + "' state");
    return nullptr;
  }
  out_status = Status::Ok();
  return summary;
}

std::unique_ptr<Summary> LoadSummaryFromFile(const std::string& path,
                                             Status* status) {
  Status local;
  Status& out_status = status != nullptr ? *status : local;
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    out_status =
        Status::InvalidArgument("cannot open '" + path + "' for reading");
    return nullptr;
  }
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(file)),
                             std::istreambuf_iterator<char>());
  return LoadSummary(bytes, status);
}

}  // namespace l1hh
