#include "io/snapshot.h"

#include <cstring>
#include <optional>
#include <utility>

#include "group/grouped_summary.h"
#include "io/durable_file.h"
#include "util/bit_stream.h"
#include "util/crc32.h"
#include "window/sliding_window_summary.h"

namespace l1hh {
namespace {

constexpr char kMagic[8] = {'L', '1', 'H', 'H', 'S', 'N', 'A', 'P'};
constexpr char kDeltaMagic[8] = {'L', '1', 'H', 'H', 'D', 'E', 'L', 'T'};
constexpr char kGroupedMagic[8] = {'L', '1', 'H', 'H', 'G', 'R', 'U', 'P'};
constexpr size_t kPreambleBytes = 8 + 4 + 8;  // magic + version + stream_bits
constexpr size_t kTrailerBytes = 4;           // CRC-32
constexpr size_t kMaxNameLength = 128;

void AppendU32(std::vector<uint8_t>& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void AppendU64(std::vector<uint8_t>& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

uint32_t ParseU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}

uint64_t ParseU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

/// Domain check on header options BEFORE they reach a factory: adapter
/// constructors divide by epsilon/phi and cast the results to integers,
/// so a hostile value (0, denormal, negative, NaN) in a CRC-resealed
/// container would be UB or an uncaught length_error, not a Status.
Status ValidateHeaderOptions(const SummaryOptions& opt) {
  const auto in_unit = [](double v) { return v > 1e-9 && v <= 1.0; };
  if (!in_unit(opt.epsilon) || !in_unit(opt.phi) || !in_unit(opt.delta)) {
    return Status::Corruption(
        "snapshot header options out of domain (epsilon/phi/delta must be "
        "in (0, 1])");
  }
  if (opt.universe_size < 2) {
    return Status::Corruption(
        "snapshot header universe_size is implausible");
  }
  return Status::Ok();
}

void WriteNameAndOptions(BitWriter& out, const std::string& name,
                         const SummaryOptions& opt) {
  out.WriteBits(name.size(), 8);
  for (const char c : name) {
    out.WriteBits(static_cast<uint8_t>(c), 8);
  }
  out.WriteDouble(opt.epsilon);
  out.WriteDouble(opt.phi);
  out.WriteDouble(opt.delta);
  out.WriteU64(opt.universe_size);
  out.WriteU64(opt.stream_length);
  out.WriteU64(opt.seed);
  out.WriteU64(opt.window_size);
  out.WriteU64(opt.window_buckets);
}

void WriteHeader(BitWriter& out, const Summary& summary) {
  WriteNameAndOptions(out, std::string(summary.Name()), summary.Options());
  out.WriteU64(summary.ItemsProcessed());
}

/// Wraps a finished bit stream in the outer framing: magic, version,
/// stream_bits, the words, and the CRC trailer.
void SealContainer(const char (&magic)[8], uint32_t version,
                   const BitWriter& stream, std::vector<uint8_t>* out) {
  out->clear();
  out->reserve(kPreambleBytes + stream.words().size() * 8 + kTrailerBytes);
  out->insert(out->end(), magic, magic + sizeof(magic));
  AppendU32(*out, version);
  AppendU64(*out, stream.size_bits());
  for (const uint64_t word : stream.words()) AppendU64(*out, word);
  AppendU32(*out, Crc32(out->data(), out->size()));
}

/// Validates the outer framing (magic, version, CRC, length consistency)
/// shared by snapshot and delta containers, and unpacks the bit stream.
/// *words must outlive *reader.
Status OpenContainer(std::span<const uint8_t> bytes,
                     const char (&magic)[8], uint32_t version,
                     const char* kind, std::vector<uint64_t>* words,
                     std::optional<BitReader>* reader) {
  const std::string what(kind);
  if (bytes.size() < kPreambleBytes + kTrailerBytes) {
    return Status::Corruption(what + " too short (" +
                              std::to_string(bytes.size()) + " bytes)");
  }
  if (std::memcmp(bytes.data(), magic, sizeof(kMagic)) != 0) {
    return Status::Corruption("not a l1hh " + what + " (bad magic)");
  }
  const uint32_t file_version = ParseU32(bytes.data() + 8);
  if (file_version != version) {
    return Status::InvalidArgument(
        "unsupported " + what + " format version " +
        std::to_string(file_version) + " (this build reads version " +
        std::to_string(version) + ")");
  }
  // CRC over everything but the trailer, checked BEFORE trusting any
  // variable-length field: random corruption and truncation both land here.
  const uint32_t expected_crc = ParseU32(bytes.data() + bytes.size() - 4);
  const uint32_t actual_crc = Crc32(bytes.data(), bytes.size() - 4);
  if (expected_crc != actual_crc) {
    return Status::Corruption(what + " CRC mismatch (file corrupt)");
  }
  const uint64_t stream_bits = ParseU64(bytes.data() + 12);
  const uint64_t stream_words = (stream_bits + 63) / 64;
  if (kPreambleBytes + stream_words * 8 + kTrailerBytes != bytes.size()) {
    return Status::Corruption(
        what + " length disagrees with its header (" +
        std::to_string(bytes.size()) + " bytes for " +
        std::to_string(stream_bits) + " stream bits)");
  }
  words->resize(stream_words);
  for (uint64_t w = 0; w < stream_words; ++w) {
    (*words)[w] = ParseU64(bytes.data() + kPreambleBytes + w * 8);
  }
  reader->emplace(words->data(), words->size(),
                  static_cast<size_t>(stream_bits));
  return Status::Ok();
}

Status ReadName(BitReader& in, const char* kind, std::string* name) {
  const uint64_t name_length = in.ReadBits(8);
  if (name_length == 0 || name_length > kMaxNameLength) {
    return Status::Corruption(std::string(kind) +
                              " algorithm name has implausible length " +
                              std::to_string(name_length));
  }
  name->clear();
  name->reserve(name_length);
  for (uint64_t i = 0; i < name_length; ++i) {
    name->push_back(static_cast<char>(in.ReadBits(8)));
  }
  return Status::Ok();
}

void ReadOptions(BitReader& in, SummaryOptions* opt) {
  opt->epsilon = in.ReadDouble();
  opt->phi = in.ReadDouble();
  opt->delta = in.ReadDouble();
  opt->universe_size = in.ReadU64();
  opt->stream_length = in.ReadU64();
  opt->seed = in.ReadU64();
  opt->window_size = in.ReadU64();
  opt->window_buckets = in.ReadU64();
}

/// Validates the container around the bit stream (magic, version, length
/// consistency, CRC) and parses the bit-stream header into *info.  On
/// success *words holds the unpacked bit-stream and *reader is positioned
/// at the first payload bit; *words must outlive *reader.
Status ParseContainer(std::span<const uint8_t> bytes, SnapshotInfo* info,
                      std::vector<uint64_t>* words,
                      std::optional<BitReader>* reader) {
  Status s = OpenContainer(bytes, kMagic, kSnapshotFormatVersion,
                           "snapshot", words, reader);
  if (!s.ok()) return s;
  BitReader& in = **reader;

  s = ReadName(in, "snapshot", &info->algorithm);
  if (!s.ok()) return s;
  ReadOptions(in, &info->options);
  info->items_processed = in.ReadU64();
  info->payload_bits = in.ReadU64();
  info->total_bytes = bytes.size();
  if (in.overflow()) return in.status();
  if (info->payload_bits != in.remaining_bits()) {
    return Status::Corruption(
        "snapshot payload length mismatch: header claims " +
        std::to_string(info->payload_bits) + " bits, container holds " +
        std::to_string(in.remaining_bits()));
  }
  return ValidateHeaderOptions(info->options);
}

}  // namespace

Status SaveSummary(const Summary& summary, std::vector<uint8_t>* out) {
  if (!summary.SupportsSnapshot()) {
    return Status::FailedPrecondition(std::string(summary.Name()) +
                                      " does not support snapshots");
  }
  // The payload goes into its own writer first so its exact bit length is
  // known before the header field announcing it is written.
  BitWriter payload;
  const Status saved = summary.SaveTo(payload);
  if (!saved.ok()) return saved;

  BitWriter stream;
  WriteHeader(stream, summary);
  stream.WriteU64(payload.size_bits());
  size_t left = payload.size_bits();
  for (size_t w = 0; left > 0; ++w) {
    const int chunk = left >= 64 ? 64 : static_cast<int>(left);
    stream.WriteBits(payload.words()[w], chunk);
    left -= static_cast<size_t>(chunk);
  }

  SealContainer(kMagic, kSnapshotFormatVersion, stream, out);
  return Status::Ok();
}

Status SaveSummaryToFile(const Summary& summary, const std::string& path) {
  std::vector<uint8_t> bytes;
  const Status s = SaveSummary(summary, &bytes);
  if (!s.ok()) return s;
  return DurableWriteFile(path, bytes);
}

Status ReadSnapshotInfo(std::span<const uint8_t> bytes, SnapshotInfo* info) {
  std::vector<uint64_t> words;
  std::optional<BitReader> reader;
  return ParseContainer(bytes, info, &words, &reader);
}

Status ReadSnapshotInfoFromFile(const std::string& path, SnapshotInfo* info) {
  std::vector<uint8_t> bytes;
  const Status s = ReadFileBytes(path, &bytes);
  if (!s.ok()) return s;
  return ReadSnapshotInfo(bytes, info);
}

std::unique_ptr<Summary> LoadSummary(std::span<const uint8_t> bytes,
                                     Status* status) {
  Status local;
  Status& out_status = status != nullptr ? *status : local;

  SnapshotInfo info;
  std::vector<uint64_t> words;
  std::optional<BitReader> reader;
  out_status = ParseContainer(bytes, &info, &words, &reader);
  if (!out_status.ok()) return nullptr;

  Status make_status;
  std::unique_ptr<Summary> summary =
      MakeSummary(info.algorithm, info.options, &make_status);
  if (summary == nullptr) {
    // The factory's own reason: "unknown summary algorithm" for a name
    // this build does not register, the specific windowed refusal
    // (hostile geometry, non-mergeable inner) for a windowed: header.
    out_status = std::move(make_status);
    return nullptr;
  }
  if (!summary->SupportsSnapshot()) {
    out_status = Status::FailedPrecondition(
        "'" + info.algorithm + "' does not support snapshots");
    return nullptr;
  }
  out_status = summary->LoadFrom(*reader);
  if (!out_status.ok()) return nullptr;
  if (reader->overflow()) {
    out_status = reader->status();
    return nullptr;
  }
  if (reader->remaining_bits() != 0) {
    out_status = Status::Corruption(
        "snapshot payload has " + std::to_string(reader->remaining_bits()) +
        " trailing bits after '" + info.algorithm + "' state");
    return nullptr;
  }
  out_status = Status::Ok();
  return summary;
}

std::unique_ptr<Summary> LoadSummaryFromFile(const std::string& path,
                                             Status* status) {
  Status local;
  Status& out_status = status != nullptr ? *status : local;
  std::vector<uint8_t> bytes;
  out_status = ReadFileBytes(path, &bytes);
  if (!out_status.ok()) return nullptr;
  return LoadSummary(bytes, status);
}

// ---- Delta snapshots ----------------------------------------------------

Status SaveSummaryDelta(const Summary& summary, uint64_t base_rotations,
                        uint64_t base_items, std::vector<uint8_t>* out) {
  const auto* window = dynamic_cast<const SlidingWindowSummary*>(&summary);
  if (window == nullptr) {
    return Status::FailedPrecondition(
        std::string(summary.Name()) +
        " is not a sliding window; delta snapshots only exist for "
        "windowed:<algo> structures");
  }
  if (base_rotations > window->rotations() ||
      base_items > window->ItemsProcessed()) {
    return Status::InvalidArgument(
        "delta base (" + std::to_string(base_rotations) + " rotations, " +
        std::to_string(base_items) + " items) is ahead of the summary (" +
        std::to_string(window->rotations()) + " rotations, " +
        std::to_string(window->ItemsProcessed()) + " items)");
  }
  // The base's live bucket keeps absorbing items until the first
  // post-base rotation, so the dirty tail is one bucket per rotation
  // crossed PLUS the current live bucket.
  const uint64_t bucket_count = window->rotations() - base_rotations + 1;
  if (bucket_count >= window->num_buckets()) {
    return Status::InvalidArgument(
        "delta tail of " + std::to_string(bucket_count) +
        " buckets would cover the whole " +
        std::to_string(window->num_buckets()) +
        "-bucket ring; write a full snapshot instead");
  }

  BitWriter stream;
  WriteNameAndOptions(stream, std::string(window->Name()), window->Options());
  stream.WriteU64(base_rotations);
  stream.WriteU64(base_items);
  stream.WriteU64(window->rotations());
  stream.WriteU64(window->ItemsProcessed());
  stream.WriteU64(bucket_count);
  const Status saved = window->SaveTailTo(stream, bucket_count);
  if (!saved.ok()) return saved;

  SealContainer(kDeltaMagic, kDeltaFormatVersion, stream, out);
  return Status::Ok();
}

Status SaveSummaryDeltaToFile(const Summary& summary,
                              uint64_t base_rotations, uint64_t base_items,
                              const std::string& path) {
  std::vector<uint8_t> bytes;
  const Status s =
      SaveSummaryDelta(summary, base_rotations, base_items, &bytes);
  if (!s.ok()) return s;
  return DurableWriteFile(path, bytes);
}

Status ApplySummaryDelta(std::span<const uint8_t> bytes, Summary* target) {
  if (target == nullptr) {
    return Status::InvalidArgument("delta target is null");
  }
  std::vector<uint64_t> words;
  std::optional<BitReader> reader;
  Status s = OpenContainer(bytes, kDeltaMagic, kDeltaFormatVersion, "delta",
                           &words, &reader);
  if (!s.ok()) return s;
  BitReader& in = *reader;

  std::string name;
  s = ReadName(in, "delta", &name);
  if (!s.ok()) return s;
  SummaryOptions options;
  ReadOptions(in, &options);
  const uint64_t base_rotations = in.ReadU64();
  const uint64_t base_items = in.ReadU64();
  const uint64_t new_rotations = in.ReadU64();
  const uint64_t new_total_items = in.ReadU64();
  const uint64_t bucket_count = in.ReadU64();
  if (in.overflow()) return in.status();
  s = ValidateHeaderOptions(options);
  if (!s.ok()) return s;

  if (name != target->Name()) {
    return Status::Corruption("delta is for '" + name + "' but target is '" +
                              std::string(target->Name()) + "'");
  }
  const SummaryOptions target_opt = target->Options();
  if (options.epsilon != target_opt.epsilon || options.phi != target_opt.phi ||
      options.delta != target_opt.delta ||
      options.universe_size != target_opt.universe_size ||
      options.stream_length != target_opt.stream_length ||
      options.seed != target_opt.seed ||
      options.window_size != target_opt.window_size ||
      options.window_buckets != target_opt.window_buckets) {
    return Status::Corruption(
        "delta options do not match the target summary (different "
        "construction parameters or seed)");
  }
  auto* window = dynamic_cast<SlidingWindowSummary*>(target);
  if (window == nullptr) {
    return Status::FailedPrecondition(
        std::string(target->Name()) +
        " is not a sliding window; cannot apply a delta");
  }
  s = window->ApplyTail(in, base_rotations, base_items, new_rotations,
                        new_total_items, bucket_count);
  if (!s.ok()) return s;
  if (in.overflow()) return in.status();
  if (in.remaining_bits() != 0) {
    return Status::Corruption(
        "delta payload has " + std::to_string(in.remaining_bits()) +
        " trailing bits after the bucket tail");
  }
  return Status::Ok();
}

Status ApplySummaryDeltaFromFile(const std::string& path, Summary* target) {
  std::vector<uint8_t> bytes;
  const Status s = ReadFileBytes(path, &bytes);
  if (!s.ok()) return s;
  return ApplySummaryDelta(bytes, target);
}

// ---- Grouped snapshots --------------------------------------------------

Status SaveGrouped(const GroupedSummary& grouped, std::vector<uint8_t>* out) {
  const GroupedSummaryOptions& opt = grouped.options();
  if (opt.algorithm.empty() || opt.algorithm.size() > kMaxNameLength) {
    return Status::InvalidArgument(
        "grouped snapshot cannot encode algorithm name of length " +
        std::to_string(opt.algorithm.size()));
  }
  BitWriter stream;
  WriteNameAndOptions(stream, opt.algorithm, opt.summary);
  stream.WriteCounter(opt.max_groups);
  stream.WriteCounter(opt.memory_budget_bytes);
  grouped.SaveGroups(stream);
  SealContainer(kGroupedMagic, kGroupedFormatVersion, stream, out);
  return Status::Ok();
}

Status SaveGroupedToFile(const GroupedSummary& grouped,
                         const std::string& path) {
  std::vector<uint8_t> bytes;
  const Status s = SaveGrouped(grouped, &bytes);
  if (!s.ok()) return s;
  return DurableWriteFile(path, bytes);
}

std::unique_ptr<GroupedSummary> LoadGrouped(std::span<const uint8_t> bytes,
                                            Status* status) {
  Status local;
  Status& out_status = status != nullptr ? *status : local;

  std::vector<uint64_t> words;
  std::optional<BitReader> reader;
  out_status = OpenContainer(bytes, kGroupedMagic, kGroupedFormatVersion,
                             "grouped snapshot", &words, &reader);
  if (!out_status.ok()) return nullptr;
  BitReader& in = *reader;

  GroupedSummaryOptions opt;
  out_status = ReadName(in, "grouped snapshot", &opt.algorithm);
  if (!out_status.ok()) return nullptr;
  ReadOptions(in, &opt.summary);
  opt.max_groups = in.ReadCounter();
  opt.memory_budget_bytes = in.ReadCounter();
  if (in.overflow()) {
    out_status = in.status();
    return nullptr;
  }
  // Same domain gate as single snapshots: these options reach every
  // per-group factory construction.
  out_status = ValidateHeaderOptions(opt.summary);
  if (!out_status.ok()) return nullptr;

  std::unique_ptr<GroupedSummary> grouped =
      GroupedSummary::Create(opt, &out_status);
  if (grouped == nullptr) return nullptr;
  out_status = grouped->LoadGroups(in);
  if (!out_status.ok()) return nullptr;
  if (in.remaining_bits() != 0) {
    out_status = Status::Corruption(
        "grouped snapshot has " + std::to_string(in.remaining_bits()) +
        " trailing bits after the group table");
    return nullptr;
  }
  out_status = Status::Ok();
  return grouped;
}

std::unique_ptr<GroupedSummary> LoadGroupedFromFile(const std::string& path,
                                                    Status* status) {
  Status local;
  Status& out_status = status != nullptr ? *status : local;
  std::vector<uint8_t> bytes;
  out_status = ReadFileBytes(path, &bytes);
  if (!out_status.ok()) return nullptr;
  return LoadGrouped(bytes, status);
}

}  // namespace l1hh
