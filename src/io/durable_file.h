// Crash-safe file writes for the checkpoint path.
//
// A plain ofstream write reaches the page cache only: a crash (or power
// cut) after it "succeeds" can leave a truncated, torn, or entirely
// missing file — and a checkpoint whose MANIFEST survived while a shard
// file did not is worse than no checkpoint at all.  Every file in a
// checkpoint therefore goes through the classic durability protocol:
//
//   1. write the full contents to `<path>.tmp`
//   2. fsync the tmp file (data hits the device, not the cache)
//   3. rename(2) tmp over `<path>` — atomic on POSIX: readers see either
//      the complete old file or the complete new file, never a mixture
//   4. fsync the containing directory (the rename itself is durable)
//
// A crash at any step leaves either the old state intact or a stray
// `.tmp` the checkpoint machinery ignores and garbage-collects.  All
// failures are reported as Status::IOError with the errno text, so a
// full disk is distinguishable from a caller bug.
#ifndef L1HH_IO_DURABLE_FILE_H_
#define L1HH_IO_DURABLE_FILE_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/status.h"

namespace l1hh {

/// Suffix of in-flight temporary files; a directory scan may ignore and
/// delete anything ending with it (an interrupted write's leftovers).
inline constexpr const char* kDurableTmpSuffix = ".tmp";

/// Atomically and durably replaces `path` with `bytes` via the
/// write-tmp -> fsync -> rename -> fsync-directory protocol above.
Status DurableWriteFile(const std::string& path,
                        std::span<const uint8_t> bytes);

/// String-payload convenience (manifests are text).
Status DurableWriteFile(const std::string& path, const std::string& text);

/// Reads a whole file; IOError (with errno) when it cannot be opened or
/// read.  Replaces the scattered ifstream-slurp idiom so open failures
/// stop masquerading as InvalidArgument.
Status ReadFileBytes(const std::string& path, std::vector<uint8_t>* out);

// ---- Fault injection (tests only) -------------------------------------
//
// The crash-safety claim is "a crash at ANY write point leaves a
// restorable directory".  tests/checkpoint_fault_test.cc proves it by
// simulating the crash deterministically: after `countdown` further
// DurableWriteFile calls succeed, the next one dies at `mode` (and every
// later call fails too — a dead process writes nothing else).

enum class DurableFailMode {
  kNone,        // injection disabled
  kBeforeTmp,   // crash before anything is written
  kPartialTmp,  // crash mid-write: a torn <path>.tmp is left behind
  kAfterTmp,    // crash after the tmp is complete but before the rename
};

/// Arms (or, with kNone, disarms) the failure point.  Not thread-safe;
/// tests arm it around single-threaded checkpoint calls.
void SetDurableWriteFailure(DurableFailMode mode, int countdown);

}  // namespace l1hh

#endif  // L1HH_IO_DURABLE_FILE_H_
