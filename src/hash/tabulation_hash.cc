#include "hash/tabulation_hash.h"

namespace l1hh {

TabulationHash TabulationHash::Draw(Rng& rng) {
  TabulationHash h;
  for (auto& table : h.tables_) {
    for (auto& entry : table) {
      entry = rng.NextU64();
    }
  }
  return h;
}

}  // namespace l1hh
