#include "hash/universal_hash.h"

namespace l1hh {

UniversalHash UniversalHash::Draw(Rng& rng, uint64_t range) {
  const uint64_t a = 1 + rng.UniformU64(kPrime - 1);  // [1, p-1]
  const uint64_t b = rng.UniformU64(kPrime);          // [0, p-1]
  return UniversalHash(a, b, range);
}

void UniversalHash::Serialize(BitWriter& out) const {
  out.WriteBits(a_, 61);
  out.WriteBits(b_, 61);
  out.WriteGamma(range_);
}

UniversalHash UniversalHash::Deserialize(BitReader& in) {
  const uint64_t a = in.ReadBits(61);
  const uint64_t b = in.ReadBits(61);
  const uint64_t range = in.ReadGamma();
  return UniversalHash(a, b, range == 0 ? 1 : range);
}

}  // namespace l1hh
