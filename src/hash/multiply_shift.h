// Dietzfelbinger et al. multiply-shift hashing ([DHKP97], the paper's cited
// reference for its unit-cost RAM model).
//
// h_a(x) = (a * x) >> (64 - d) for odd a is 2-universal onto [2^d];
// h_{a,b}(x) = (a*x + b) >> (64 - d) is strongly (2-wise independent)
// universal.  One multiply + one shift: this is the hash used on the hot
// paths of the baseline sketches (Count-Min, CountSketch) where speed
// matters more than field structure.
#ifndef L1HH_HASH_MULTIPLY_SHIFT_H_
#define L1HH_HASH_MULTIPLY_SHIFT_H_

#include <cstdint>

#include "util/bit_stream.h"
#include "util/random.h"

namespace l1hh {

class MultiplyShiftHash {
 public:
  MultiplyShiftHash() = default;
  MultiplyShiftHash(uint64_t a, uint64_t b, int log2_range)
      : a_(a | 1), b_(b), log2_range_(log2_range) {}

  /// Draws a function with range [0, 2^log2_range).
  static MultiplyShiftHash Draw(Rng& rng, int log2_range) {
    return MultiplyShiftHash(rng.NextU64(), rng.NextU64(), log2_range);
  }

  uint64_t operator()(uint64_t x) const {
    if (log2_range_ == 0) return 0;
    return (a_ * x + b_) >> (64 - log2_range_);
  }

  uint64_t range() const { return uint64_t{1} << log2_range_; }
  int log2_range() const { return log2_range_; }

  int SeedBits() const { return 128 + 6; }

  bool operator==(const MultiplyShiftHash& other) const {
    return a_ == other.a_ && b_ == other.b_ &&
           log2_range_ == other.log2_range_;
  }

  void Serialize(BitWriter& out) const {
    out.WriteU64(a_);
    out.WriteU64(b_);
    out.WriteBits(static_cast<uint64_t>(log2_range_), 6);
  }
  static MultiplyShiftHash Deserialize(BitReader& in) {
    const uint64_t a = in.ReadU64();
    const uint64_t b = in.ReadU64();
    const int d = static_cast<int>(in.ReadBits(6));
    return MultiplyShiftHash(a, b, d);
  }

 private:
  uint64_t a_ = 1;
  uint64_t b_ = 0;
  int log2_range_ = 0;
};

}  // namespace l1hh

#endif  // L1HH_HASH_MULTIPLY_SHIFT_H_
