// Simple tabulation hashing (Zobrist / Patrascu–Thorup).
//
// 3-independent and much stronger in practice; we use it for CountSketch's
// sign function and as a stress-test comparator for the algebraic families.
// Seed cost is large (8 tables x 256 x 64 bits), so it is NOT used where the
// paper's space accounting matters.
#ifndef L1HH_HASH_TABULATION_HASH_H_
#define L1HH_HASH_TABULATION_HASH_H_

#include <array>
#include <cstdint>

#include "util/random.h"

namespace l1hh {

class TabulationHash {
 public:
  TabulationHash() = default;

  static TabulationHash Draw(Rng& rng);

  uint64_t operator()(uint64_t x) const {
    uint64_t h = 0;
    for (int i = 0; i < 8; ++i) {
      h ^= tables_[i][(x >> (8 * i)) & 0xff];
    }
    return h;
  }

  /// +1 / -1 sign derived from the low bit; 4-independent enough for
  /// CountSketch's analysis in practice.
  int Sign(uint64_t x) const { return ((*this)(x)&1) != 0 ? 1 : -1; }

  int SeedBits() const { return 8 * 256 * 64; }

 private:
  std::array<std::array<uint64_t, 256>, 8> tables_ = {};
};

}  // namespace l1hh

#endif  // L1HH_HASH_TABULATION_HASH_H_
